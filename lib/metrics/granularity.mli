(** The paper's two granularity measures (§II).

    Task granularity [G_T = T_S / N_T] is a property of program and input:
    average useful work per spawned task. Load balancing granularity
    [G_L(p) = T_S / N_M(p)] divides by the number of task migrations —
    steals, for a work-stealing scheduler — and is implementation- and
    processor-count-dependent; the paper (and this reproduction) measures
    it with Wool's steal counts. *)

val task_granularity : Wool_ir.Task_tree.t -> float
(** Cycles of useful work per task, [T_S / N_T]. *)

val load_balancing_granularity : work:int -> steals:int -> float
(** [T_S / N_M] in cycles; [infinity] when no steal happened. *)

(** Both granularities derived from one measured phase (a [Pool.run] or a
    simulated run) instead of a static task tree. *)
type measured = { g_t : float; g_l : float }

val of_measured : work:float -> tasks:int -> migrations:int -> measured
(** [work] in whatever unit the measurement used (cycles or ns); [g_t] is
    [work] itself when [tasks = 0], [g_l] is [infinity] when
    [migrations = 0]. *)

val of_events : work:float -> Wool_trace.Event.t array -> measured
(** Count tasks ([Spawn] events) and migrations ([Steal_ok] events)
    directly from a traced event stream — real or simulated. *)
