(** Cache-line padding helpers for contended data.

    OCaml 5.1 has no [Atomic.make_contended], so padding is done by
    copying a freshly allocated block into a new block rounded up to a
    whole number of 64-byte cache lines ({!copy_as_padded}, the
    multicore-magic technique). The GC moves blocks but never splits
    them, so two distinct padded blocks always keep their first fields at
    least one cache line apart — adjacent contended atomics can never
    false-share. *)

val cache_line_bytes : int
(** 64. *)

val cache_line_words : int
(** Cache line in words (8 on 64-bit). *)

val copy_as_padded : 'a -> 'a
(** Copy a block into a fresh block padded to a multiple of
    {!cache_line_words} fields. Apply to a {e freshly allocated} record
    or atomic only — the original must not escape, or writes through the
    two copies diverge. Immediates, closures, objects, lazies and
    no-scan blocks (strings, float records) pass through unchanged. *)

val padded_atomic : 'a -> 'a Atomic.t
(** [copy_as_padded (Atomic.make v)]: an atomic whose cell owns its
    cache line. *)

val size_words : 'a -> int
(** Field count of the underlying block; 0 for immediates. *)

val is_padded : 'a -> bool
(** The block occupies a whole number of cache lines (>= 1). This is the
    invariant {!copy_as_padded} establishes and the layout regression
    tests probe. *)

val check : unit -> string list
(** Self-test of the padding machinery (value preservation, padding
    sizes, pass-through cases). Returns human-readable violations, [[]]
    when clean. *)
