(* Cache-line padding without Atomic.make_contended (OCaml >= 5.2 only):
   copy a freshly allocated block into a new block whose size is rounded
   up to a whole number of cache lines. Two values padded this way can
   never have their first fields on the same 64-byte line — the GC moves
   blocks but never splits or overlaps them, so any two distinct blocks
   of >= cache_line_words fields keep their payloads >= 64 bytes apart.
   This is the multicore-magic copy_as_padded technique. *)

let cache_line_bytes = 64
let word_bytes = Sys.word_size / 8
let cache_line_words = cache_line_bytes / word_bytes

let copy_as_padded (type a) (x : a) : a =
  let r = Obj.repr x in
  if not (Obj.is_block r) then x
  else
    let tag = Obj.tag r in
    if
      (* only plain scannable blocks (records, tuples, variants) are safe
         to relocate field-by-field *)
      tag >= Obj.no_scan_tag || tag = Obj.lazy_tag || tag = Obj.closure_tag
      || tag = Obj.object_tag || tag = Obj.infix_tag
      || tag = Obj.forward_tag
    then x
    else begin
      let sz = Obj.size r in
      let padded =
        (sz + cache_line_words) / cache_line_words * cache_line_words
      in
      (* Obj.new_block initialises every field to (), so the tail padding
         is always valid for the GC. *)
      let b = Obj.new_block tag padded in
      for i = 0 to sz - 1 do
        Obj.set_field b i (Obj.field r i)
      done;
      (Obj.obj b : a)
    end

let padded_atomic v = copy_as_padded (Atomic.make v)

let size_words x =
  let r = Obj.repr x in
  if Obj.is_block r then Obj.size r else 0

let is_padded x =
  let r = Obj.repr x in
  Obj.is_block r
  && Obj.size r >= cache_line_words
  && Obj.size r mod cache_line_words = 0

(* Self-test of the padding machinery itself; used by the layout
   regression tests and cheap enough to run anywhere. *)
let check () =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  if word_bytes <> 8 then
    add "word size is %d bytes (layout maths assumes 64-bit)" word_bytes;
  let a = padded_atomic 42 in
  if not (is_padded a) then
    add "padded_atomic block has %d words" (size_words a);
  if Atomic.get a <> 42 then add "padded_atomic lost its value";
  Atomic.incr a;
  if Atomic.get a <> 43 then add "padded_atomic is not updatable";
  let r = copy_as_padded (ref 7) in
  if not (is_padded r) then add "copy_as_padded ref has %d words" (size_words r);
  if !r <> 7 then add "copy_as_padded lost a field";
  (* immediates and unsafe tags must pass through unchanged *)
  if copy_as_padded 5 <> 5 then add "copy_as_padded mangled an immediate";
  let f x = x + 1 in
  let f' = copy_as_padded f in
  if f' 1 <> 2 then add "copy_as_padded broke a closure"
  else if is_padded f' then add "copy_as_padded should not touch closures";
  List.rev !errs
