(** Reproducible benchmark harness ("woolbench bench <workload|all>").

    Runs {!Exp_common.Spec} workloads across worker counts and all seven
    scheduler modes ({!Wool.Mode.all}) on the real runtime — the relaxed
    at-least-once modes only on kernels whose specs declare
    [relaxed_ok] — computes Table II-style single-worker spawn/join
    overheads (including the [All_private] vs [All_public] publicity
    split in [Private] mode), speedups, steal counts and measured
    [G_T]/[G_L], and emits a schema-stable [BENCH_<date>.json] (schema
    {!schema_version}, parseable with {!Wool_trace.Json}). [--modes]
    restricts the sweep to a subset (e.g. the relaxed-vs-direct
    comparison without the full matrix). [--compare old.json] re-reads a
    committed baseline, divides out the whole-matrix machine drift
    (median new/old ratio over all shared cells), and flags runs whose
    drift-corrected median lands beyond the baseline's own noise band
    ([p90] + 10% over the median). *)

val schema_version : string
(** ["wool-bench/2"]; bumped on any field change. v2 added the tail
    percentiles [p99]/[p999] to {!stat}; {!of_json} still accepts
    ["wool-bench/1"] documents, defaulting the missing tails to the
    recorded [max]. *)

(** Summary of one timed sample set, in nanoseconds. *)
type stat = {
  n : int;
  mean : float;
  median : float;  (** = p50 *)
  stddev : float;
  min : float;
  max : float;
  p10 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

(** One (workload, mode, publicity, workers) cell. *)
type run = {
  workload : string;
  descr : string;  (** e.g. ["fib(22)"] *)
  mode : string;  (** a canonical {!Wool.Mode.name}, e.g. ["locked"],
                      ["swap_generic"], ["clev"], ["ws_mult"],
                      ["lowsync"]; older baselines' hyphenated spellings
                      are re-parsed via {!Wool.Mode.of_name} *)
  publicity : string;
      (** ["default"] for the mode sweep; ["all-private"] /
          ["all-public"] for the single-worker publicity split *)
  workers : int;
  repeats : int;
  ok : bool;  (** every parallel digest matched the serial digest *)
  serial_ns : stat;
  parallel_ns : stat;
  overhead : float;  (** parallel median / serial median (Table II) *)
  speedup : float;  (** serial median / parallel median *)
  spawns : int;  (** from the last repeat's {!Wool.Stats.aggregate} *)
  steals : int;
  g_t_ns : float;  (** serial median / spawns *)
  g_l_ns : float;  (** serial median / steals; [infinity] if none *)
}

type report = {
  schema : string;
  date : string;
  size : string;  (** ["std" | "tiny"] *)
  ghz : float;  (** {!Wool_util.Clock.ghz} at measurement time *)
  runs : run list;
}

val measure :
  ?size:Exp_common.Spec.size ->
  ?workers:int list ->
  ?repeats:int ->
  ?mode_filter:Wool.Mode.t list ->
  date:string ->
  string list ->
  report
(** [measure ~date names] benches each named workload: the selected
    modes (default all seven) at every worker count (default [[1; 2; 4]],
    [repeats] = 3 timed pool runs per cell, a fresh pool each), plus the
    two publicity cells when [Private] is selected. Relaxed modes are
    skipped (with a note) on kernels without [Spec.relaxed_ok]. Raises
    [Failure] on an unknown name, [Invalid_argument] on an empty mode
    filter, an empty or non-positive worker list, or [repeats < 1]. *)

val to_json : report -> string
(** Render; the result is checked with {!Wool_trace.Json.validate}
    before being returned (raises [Failure] if that ever fails). *)

val of_json : string -> (report, string) result
(** Inverse of {!to_json}; also rejects documents whose ["schema"] is
    neither {!schema_version} nor the previous ["wool-bench/1"]. *)

val write_file : string -> report -> unit
val read_file : string -> (report, string) result

type regression = {
  r_run : run;
  r_baseline : run;
  r_ratio : float;  (** new median / old median, drift-corrected *)
}

val drift_ratio : baseline:report -> report -> float
(** The whole-matrix re-measure delta: the median of [new/old] parallel
    medians over every cell the two reports share, or [1.0] when they
    share fewer than 4 (too few to tell a machine-wide shift from a
    regressed cell). A uniform shift is the machine (frequency scaling,
    co-tenants), not the scheduler. *)

val compare_reports : ?drift:float -> baseline:report -> report -> regression list
(** Cells are matched on (workload, mode, publicity, workers); a cell
    regresses when its drift-corrected new parallel median is above the
    baseline's [p90] {e and} more than 10% over the baseline median.
    [drift] defaults to {!drift_ratio}; cells absent from the baseline
    are skipped. *)

val print_report : report -> unit

val print_drift_caveat : drift:float -> report -> unit
(** Prints the machine-drift caveat line when [drift] is more than 5%
    away from 1.0 (the argument report is the baseline, for its date). *)

val print_regressions : regression list -> unit

val default_out : date:string -> string
(** [BENCH_<date>.json]. *)

val run :
  ?size:Exp_common.Spec.size ->
  ?workers:int list ->
  ?repeats:int ->
  ?mode_names:string list ->
  ?out:string ->
  ?compare_with:string ->
  date:string ->
  string list ->
  int
(** CLI driver: measure ([[]] or [["all"]] = every tier-1 workload;
    [mode_names] are parsed with {!Wool.Mode.of_name}, default all
    seven), print the tables, write [out] (default {!default_out}),
    optionally compare against [compare_with] (printing the drift
    caveat and any drift-corrected regressions), and return the
    regression count (0 when not comparing). Raises [Failure] on
    unknown workloads or modes, digest mismatches, or an unreadable
    baseline. *)
