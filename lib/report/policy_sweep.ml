(* Measured steal-policy sweep ("woolbench policy <workload>"): run one
   workload on the real runtime under each victim-selection x idle-backoff
   combination, reporting wall time and the runtime's own Stats counters
   per policy, then the simulator counterpart under the same Wool_policy
   values so the two sides can be eyeballed together. *)

module Table = Wool_util.Table
module Clock = Wool_util.Clock
module Spec = Exp_common.Spec

type row = {
  policy : Wool_policy.t;
  elapsed_ns : float;
  stats : Wool.Stats.t;  (** aggregate counters of the run's pool *)
}

let policies ~quick =
  if quick then
    List.map
      (fun s -> Wool_policy.make ~selector:s ())
      Wool_policy.Selector.all
  else Wool_policy.sweep ()

let measure ~workers ~policy (spec : Spec.t) =
  let config = Wool.Config.make ~workers ~policy () in
  let pool = Wool.create ~config () in
  let (_ : int), ns = Clock.time (fun () -> Wool.run pool spec.Spec.wool) in
  let stats = Wool.Stats.aggregate pool in
  Wool.shutdown pool;
  { policy; elapsed_ns = ns; stats }

let run ?(workers = 4) ?(quick = false) name =
  let spec = Spec.find name in
  Printf.printf "== steal-policy sweep: %s, %d workers%s ==\n" spec.Spec.descr
    workers
    (if quick then " (quick: selectors only, default backoff)" else "");
  let ps = policies ~quick in
  let rows = List.map (fun policy -> measure ~workers ~policy spec) ps in
  let tbl =
    Table.create ~title:"real runtime"
      ~header:[ "policy"; "ms"; "steals"; "leaps"; "failed"; "spawns" ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [ Wool_policy.name r.policy;
          Table.cell_f ~dec:2 (r.elapsed_ns /. 1e6);
          Table.cell_i r.stats.Wool.Pool.steals;
          Table.cell_i r.stats.Wool.Pool.leap_steals;
          Table.cell_i r.stats.Wool.Pool.failed_steals;
          Table.cell_i r.stats.Wool.Pool.spawns ])
    rows;
  Table.print tbl;
  let module E = Wool_sim.Engine in
  let tree = spec.Spec.sim_tree () in
  let stbl =
    Table.create
      ~title:(Printf.sprintf "simulated counterpart (%s)" spec.Spec.sim_descr)
      ~header:[ "policy"; "cycles"; "steals"; "leaps"; "failed" ]
      ()
  in
  List.iter
    (fun policy ->
      let r =
        E.run ~steal_policy:policy ~policy:Wool_sim.Policy.wool ~workers tree
      in
      Table.add_row stbl
        [ Wool_policy.name policy; Table.cell_i r.E.time;
          Table.cell_i r.E.steals; Table.cell_i r.E.leap_steals;
          Table.cell_i r.E.failed_steals ])
    ps;
  Table.print stbl;
  rows
