(* "woolbench ropes": the lazy-vs-eager splitting experiment for the
   rope collections (ROADMAP item 1).

   Eager splitting commits to a full grain-sized spawn tree up front —
   the classic divide-and-conquer schedule, paying one spawn/join per
   grain regardless of whether anybody ever steals. Lazy splitting
   processes chunks iteratively and only spawns the far half of the
   remainder when {!Wool.steal_pressure} reports hungry thieves, so an
   unstolen loop body costs almost nothing beyond the serial loop.

   The sweep runs both schedules for the rope workloads across every
   scheduler mode and worker count, plus an A/B of the rope one-liner
   workload paths against their hand-rolled spawn trees. *)

module Clock = Wool_util.Clock
module Table = Wool_util.Table
module Spec = Exp_common.Spec

type arm = {
  a_ms : float;  (** median wall time over the repeats *)
  a_spawns : int;
  a_ok : bool;
}

type cell = {
  workload : string;
  mode : string;
  workers : int;
  lazy_arm : arm;
  eager_arm : arm;
}

(* One (mode, workers, body) measurement: [repeats] timed runs on fresh
   pools; median wall time, spawn count of the last run. *)
let measure ~mode ~workers ~repeats ~expected f =
  let samples = Array.make repeats 0.0 in
  let ok = ref true in
  let spawns = ref 0 in
  for i = 0 to repeats - 1 do
    let config =
      Wool.Config.make ~workers ~mode
        ~allow_relaxed:(Wool.Mode.is_relaxed mode) ()
    in
    Wool.with_pool ~config (fun pool ->
        let result, ns = Clock.time (fun () -> Wool.run pool f) in
        if result <> expected then ok := false;
        samples.(i) <- ns;
        spawns := (Wool.Stats.aggregate pool).Wool.Pool.spawns)
  done;
  Array.sort compare samples;
  {
    a_ms = samples.(repeats / 2) /. 1e6;
    a_spawns = !spawns;
    a_ok = !ok;
  }

(* A rope workload: a digest oracle plus the same body under the two
   split schedules. The chunk sizes match the workload defaults, so the
   only difference between the arms is when the range splits. *)
type subject = {
  s_name : string;
  s_expected : int;
  s_lazy : Wool.ctx -> int;
  s_eager : Wool.ctx -> int;
}

let subjects size =
  let module W = Wool_workloads.Wordcount in
  let module H = Wool_workloads.Histogram in
  let text = W.subject (Spec.wordcount_n size) in
  let data = H.subject (Spec.histogram_n size) in
  [
    {
      s_name = "wordcount";
      s_expected = W.serial text;
      s_lazy = (fun ctx -> W.wool ctx ~split:(Wool_ropes.Lazy_split 512) text);
      s_eager = (fun ctx -> W.wool ctx ~split:(Wool_ropes.Eager 512) text);
    };
    {
      s_name = "histogram";
      s_expected = Spec.digest_of_int_array (H.serial data);
      s_lazy =
        (fun ctx ->
          Spec.digest_of_int_array
            (H.wool ctx ~split:(Wool_ropes.Lazy_split 1) data));
      s_eager =
        (fun ctx ->
          Spec.digest_of_int_array (H.wool ctx ~split:(Wool_ropes.Eager 1) data));
    };
  ]

let compute ?(size = Spec.Std) ?(workers = [ 1; 2; 4 ]) ?(repeats = 3) () =
  if repeats < 1 then invalid_arg "Rope_sweep.compute: repeats < 1";
  List.concat_map
    (fun s ->
      List.concat_map
        (fun mode ->
          List.map
            (fun w ->
              {
                workload = s.s_name;
                mode = Wool.Mode.name mode;
                workers = w;
                lazy_arm =
                  measure ~mode ~workers:w ~repeats ~expected:s.s_expected
                    s.s_lazy;
                eager_arm =
                  measure ~mode ~workers:w ~repeats ~expected:s.s_expected
                    s.s_eager;
              })
            workers)
        Wool.Mode.all)
    (subjects size)

(* The workload one-liners vs their hand-rolled spawn trees, default
   mode only: the hand-rolled paths use exactly-once [spawn], so the
   relaxed modes sit this table out. *)
type ab_cell = {
  ab_workload : string;
  ab_workers : int;
  ab_rope : arm;
  ab_hand : arm;
}

let ab_compute ?(size = Spec.Tiny) ?(workers = [ 1; 2; 4 ]) ?(repeats = 3) () =
  let module M = Wool_workloads.Mm in
  let module F = Wool_workloads.Ssf in
  let module S = Wool_workloads.Sort in
  let n = Spec.mm_n size in
  let a = M.random_matrix (Wool_util.Rng.make 11) n
  and b = M.random_matrix (Wool_util.Rng.make 12) n in
  let text = F.subject (match size with Spec.Std -> 11 | Spec.Tiny -> 8) in
  let input =
    let rng = Wool_util.Rng.make 7 in
    Array.init (Spec.sort_n size) (fun _ -> Wool_util.Rng.int rng 1_000_000)
  in
  let digest_pairs arr =
    Array.fold_left (fun acc (x, y) -> (acc * 31) + (x * 7) + y) 0 arr
  in
  let pairs =
    [
      ( "mm",
        Spec.digest_of_matrix (M.serial a b),
        (fun ctx -> Spec.digest_of_matrix (M.wool ctx a b)),
        fun ctx -> Spec.digest_of_matrix (M.wool_handrolled ctx a b) );
      ( "ssf",
        digest_pairs (F.serial text),
        (fun ctx -> digest_pairs (F.wool ctx text)),
        fun ctx -> digest_pairs (F.wool_handrolled ctx text) );
      ( "sort",
        Spec.digest_of_int_array (S.serial input),
        (fun ctx -> Spec.digest_of_int_array (S.wool ctx input)),
        fun ctx -> Spec.digest_of_int_array (S.wool_handrolled ctx input) );
    ]
  in
  List.concat_map
    (fun (name, expected, rope, hand) ->
      List.map
        (fun w ->
          {
            ab_workload = name;
            ab_workers = w;
            ab_rope = measure ~mode:Wool.Private ~workers:w ~repeats ~expected rope;
            ab_hand = measure ~mode:Wool.Private ~workers:w ~repeats ~expected hand;
          })
        workers)
    pairs

let run ?size ?workers ?repeats () =
  print_endline "== rope splitting: lazy (steal-pressure) vs eager (grain tree) ==";
  let cells = compute ?size ?workers ?repeats () in
  let tbl =
    Table.create
      ~header:
        [ "workload"; "mode"; "w"; "lazy ms"; "eager ms"; "eager/lazy";
          "lazy spawns"; "eager spawns"; "ok" ]
      ()
  in
  let all_ok = ref true in
  List.iter
    (fun c ->
      if not (c.lazy_arm.a_ok && c.eager_arm.a_ok) then all_ok := false;
      Table.add_row tbl
        [
          c.workload; c.mode; string_of_int c.workers;
          Table.cell_f ~dec:2 c.lazy_arm.a_ms;
          Table.cell_f ~dec:2 c.eager_arm.a_ms;
          Table.cell_f ~dec:2 (c.eager_arm.a_ms /. c.lazy_arm.a_ms);
          Table.cell_i c.lazy_arm.a_spawns;
          Table.cell_i c.eager_arm.a_spawns;
          (if c.lazy_arm.a_ok && c.eager_arm.a_ok then "ok" else "FAIL");
        ])
    cells;
  Table.print tbl;
  let ab = ab_compute ?size ?workers ?repeats () in
  let tbl =
    Table.create
      ~title:"workload one-liners vs hand-rolled spawn trees (private mode)"
      ~header:
        [ "workload"; "w"; "rope ms"; "hand ms"; "hand/rope";
          "rope spawns"; "hand spawns"; "ok" ]
      ()
  in
  List.iter
    (fun c ->
      if not (c.ab_rope.a_ok && c.ab_hand.a_ok) then all_ok := false;
      Table.add_row tbl
        [
          c.ab_workload; string_of_int c.ab_workers;
          Table.cell_f ~dec:2 c.ab_rope.a_ms;
          Table.cell_f ~dec:2 c.ab_hand.a_ms;
          Table.cell_f ~dec:2 (c.ab_hand.a_ms /. c.ab_rope.a_ms);
          Table.cell_i c.ab_rope.a_spawns;
          Table.cell_i c.ab_hand.a_spawns;
          (if c.ab_rope.a_ok && c.ab_hand.a_ok then "ok" else "FAIL");
        ])
    ab;
  Table.print tbl;
  print_endline
    "lazy spawns stay near zero until thieves probe; eager spawns are fixed \
     by the grain. eager/lazy > 1 means lazy won that cell.";
  if not !all_ok then failwith "ropes: some digests disagreed with serial"
