module Clock = Wool_util.Clock
module Stats = Wool_util.Stats
module F = Wool_workloads.Fib

type row = {
  version : string;
  seconds : float;
  ns_per_task : float;
  cycles_per_task : float;
}

(* The paper's ladder plus the two relaxed (at-least-once) rungs: the
   rows are named after Table II, so this list stays hand-written — the
   constructors themselves come from the canonical {!Wool.Mode}. *)
let ladder =
  [
    ("base (locked)", Some (Wool.Locked, Wool.All_public));
    ("synchronize on task", Some (Wool.Swap_generic, Wool.All_public));
    ("task specific join", Some (Wool.Task_specific, Wool.All_public));
    ("private tasks (no private)", Some (Wool.Private, Wool.All_public));
    ("private tasks (all private)", Some (Wool.Private, Wool.All_private));
    ("fence-free multiplicity", Some (Wool.Ws_mult, Wool.All_public));
    ("low-sync (1 CAS/steal)", Some (Wool.Lowsync, Wool.All_public));
    ("serial", None);
  ]

let compute ?(n = 30) ?(repeats = 3) () =
  let expected = F.serial n in
  let serial_ns =
    Stats.median (Clock.time_ns ~warmup:1 ~repeats (fun () ->
        assert (F.serial n = expected)))
  in
  let measure (mode, publicity) =
    let pool =
      Wool.create
        ~config:
          (Wool.Config.make ~workers:1 ~mode ~publicity
             ~allow_relaxed:(Wool.Mode.is_relaxed mode) ())
        ()
    in
    Fun.protect
      ~finally:(fun () -> Wool.shutdown pool)
      (fun () ->
        let ns =
          Stats.median
            (Clock.time_ns ~warmup:1 ~repeats (fun () ->
                 assert (Wool.run pool (fun ctx -> F.wool ctx n) = expected)))
        in
        let spawns = (Wool.Stats.aggregate pool).Wool.Pool.spawns in
        let runs = repeats + 1 in
        (ns, spawns / runs))
  in
  List.map
    (fun (version, config) ->
      match config with
      | None ->
          { version; seconds = serial_ns *. 1e-9; ns_per_task = 0.0;
            cycles_per_task = 0.0 }
      | Some config ->
          let ns, n_tasks = measure config in
          let per_task = (ns -. serial_ns) /. float_of_int (max 1 n_tasks) in
          {
            version;
            seconds = ns *. 1e-9;
            ns_per_task = per_task;
            cycles_per_task = Clock.to_cycles per_task;
          })
    ladder

let run () =
  print_endline "== Table II: optimizing inlined tasks (real runtime, 1 worker) ==";
  Printf.printf "(cycle scale: %.2f cycles/ns; set WOOL_GHZ to your clock)\n"
    (Clock.ghz ());
  let t =
    Wool_util.Table.create
      ~header:[ "version"; "time (s)"; "overhead (ns/task)"; "overhead (cyc)" ]
      ()
  in
  List.iter
    (fun r ->
      Wool_util.Table.add_row t
        [
          r.version;
          Wool_util.Table.cell_f ~dec:4 r.seconds;
          Wool_util.Table.cell_f ~dec:1 r.ns_per_task;
          Wool_util.Table.cell_f ~dec:1 r.cycles_per_task;
        ])
    (compute ());
  Wool_util.Table.print t
