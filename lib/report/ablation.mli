(** Ablations of Wool's design choices (beyond the paper's own ladders).

    Three studies:
    - {b blocked joins}: leapfrogging (the paper's choice) vs unrestricted
      random stealing (TBB/TPL-style, buried-join prone) vs plain waiting,
      with otherwise identical Wool costs (§I discusses all three).
    - {b public window}: the §III-B trade-off — more public descriptors
      reduce thief starvation but tax the owner's joins; sweeps the
      adaptive window and the all-public extreme on fib and stress.
    - {b victim selection}: uniform random (the provably-good default) vs
      round-robin scanning vs last-successful-victim affinity vs
      leapfrog-biased affinity.
    - {b idle backoff}: the {!Wool_policy.Backoff} ladder under the
      simulator's nap model.
    - {b steal batching}: how many tasks a successful steal migrates. *)

type series = { label : string; speedup_by_p : (int * float) list }
type study = { title : string; series : series list }

val blocked_join : ?workload:Wool_workloads.Workload.t -> unit -> study
val public_window : ?workload:Wool_workloads.Workload.t -> unit -> study
val victim_selection : ?workload:Wool_workloads.Workload.t -> unit -> study

val idle_backoff : ?workload:Wool_workloads.Workload.t -> unit -> study
(** The {!Wool_policy.Backoff} flavours (nap-after-streak, exponential,
    yield-then-nap) under the simulator's idle model, Wool costs. *)

val steal_batch : ?workload:Wool_workloads.Workload.t -> unit -> study
(** Batch stealing (steal-half family, cited in the paper's related
    work): take 1, 2 or 4 tasks per successful steal. *)

val numa : ?workload:Wool_workloads.Workload.t -> unit -> study
(** Dual-socket effects: uniform vs socket-local victim selection when
    cross-socket steals pay the remote surcharge. *)

val run : unit -> unit
