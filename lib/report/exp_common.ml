module E = Wool_sim.Engine
module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module Tt = Wool_ir.Task_tree

let procs = [ 1; 2; 3; 4; 5; 6; 7; 8 ]
let default_seed = 42

let run_sim ?(seed = default_seed) policy p wl =
  E.run ~seed ~policy ~workers:p (W.root wl)

let run_loop costs p (wl : W.t) =
  match wl.W.loop_leaves with
  | None -> invalid_arg "Exp_common.run_loop: workload has no loop shape"
  | Some leaves ->
      Wool_sim.Loop_sim.run ~costs ~workers:p ~reps:wl.W.reps ~leaf_work:leaves

let sim_time ?seed (policy : P.t) p (wl : W.t) =
  match (policy.P.flavor, wl.W.loop_leaves) with
  | P.Loop_static, Some _ -> (run_loop policy.P.costs p wl).Wool_sim.Loop_sim.time
  | P.Loop_static, None ->
      invalid_arg "Exp_common.sim_time: Loop_static needs loop leaves"
  | (P.Steal_child _ | P.Steal_parent), _ -> (run_sim ?seed policy p wl).E.time

let absolute_speedup ?seed policy p wl =
  let work = Tt.work (W.root wl) in
  float_of_int work /. float_of_int (sim_time ?seed policy p wl)

let speedup_series ?seed ~baseline policy wl =
  List.map
    (fun p ->
      (float_of_int p, float_of_int baseline /. float_of_int (sim_time ?seed policy p wl)))
    procs

let fmt_k v =
  if v = infinity then "-"
  else if v >= 100_000.0 then Printf.sprintf "%.0fk" (v /. 1000.0)
  else if v >= 1_000.0 then Printf.sprintf "%.1fk" (v /. 1000.0)
  else Printf.sprintf "%.0f" v

(* ---- the shared real-runtime workload table ----

   One spec per tier-1 kernel, consumed by realcheck, trace_summary,
   policy_sweep, and the benchmark harness. These used to be duplicated
   per report module and had drifted in input sizes and digest
   conventions; every consumer now reads this table (and the parameter
   accessors below, for harnesses that need the raw sizes, e.g. the
   steal-parent ports in realcheck). *)

module Spec = struct
  type size = Std | Tiny

  let fib_n = function Std -> 22 | Tiny -> 12
  let stress_height = function Std -> 8 | Tiny -> 4
  let stress_leaf_iters = function Std -> 200 | Tiny -> 50
  let nqueens_n = function Std -> 9 | Tiny -> 6
  let mm_n = function Std -> 48 | Tiny -> 12
  let sort_n = function Std -> 20_000 | Tiny -> 512
  let wordcount_n = function Std -> 200_000 | Tiny -> 2_000
  let histogram_n = function Std -> 400_000 | Tiny -> 4_000

  (* simulator counterparts may use a smaller input so the
     discrete-event run stays quick *)
  let fib_sim_n = function Std -> 16 | Tiny -> 10

  type t = {
    name : string;
    descr : string;  (** e.g. "fib(22)" *)
    serial : unit -> int;
        (** sequential run (for [T_S]) returning a result digest *)
    wool : Wool.ctx -> int;
        (** parallel run; its digest must equal [serial]'s *)
    relaxed_ok : bool;
        (** the kernel's task bodies are idempotent (pure values or
            write-one-slot), so it runs under the at-least-once modes;
            kernels with shared accumulators or in-place mutation must
            leave this [false] and are skipped in relaxed sweeps *)
    sim_descr : string;
    sim_tree : unit -> Wool_ir.Task_tree.t;  (** simulator counterpart *)
  }

  let digest_of_matrix m =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc v -> (acc * 31) + int_of_float (v *. 1024.0))
          acc row)
      0 m

  let digest_of_int_array a =
    Array.fold_left (fun acc v -> (acc * 31) + v) 0 a

  let fib size =
    let n = fib_n size and sim_n = fib_sim_n size in
    {
      name = "fib";
      descr = Printf.sprintf "fib(%d)" n;
      serial = (fun () -> Wool_workloads.Fib.serial n);
      wool = (fun ctx -> Wool_workloads.Fib.wool ctx n);
      relaxed_ok = true;
      sim_descr = Printf.sprintf "fib(%d)" sim_n;
      sim_tree = (fun () -> Wool_workloads.Fib.tree sim_n);
    }

  let stress size =
    let height = stress_height size
    and leaf_iters = stress_leaf_iters size in
    let module S = Wool_workloads.Stress in
    {
      name = "stress";
      descr = Printf.sprintf "stress(height=%d)" height;
      serial =
        (fun () ->
          S.reset_leaf_result ();
          S.serial ~height ~leaf_iters;
          S.leaf_result ());
      wool =
        (fun ctx ->
          S.reset_leaf_result ();
          S.wool ctx ~height ~leaf_iters;
          S.leaf_result ());
      relaxed_ok = false (* shared leaf-result accumulator *);
      sim_descr = Printf.sprintf "stress(height=%d)" height;
      sim_tree = (fun () -> S.tree ~height ~leaf_iters);
    }

  let nqueens size =
    let n = nqueens_n size in
    {
      name = "nqueens";
      descr = Printf.sprintf "nqueens(%d)" n;
      serial = (fun () -> Wool_workloads.Nqueens.serial n);
      wool = (fun ctx -> Wool_workloads.Nqueens.wool ctx n);
      relaxed_ok = true;
      sim_descr = Printf.sprintf "nqueens(%d)" n;
      sim_tree = (fun () -> Wool_workloads.Nqueens.tree n);
    }

  let mm size =
    let n = mm_n size in
    let a = lazy (Wool_workloads.Mm.random_matrix (Wool_util.Rng.make 11) n) in
    let b = lazy (Wool_workloads.Mm.random_matrix (Wool_util.Rng.make 12) n) in
    {
      name = "mm";
      descr = Printf.sprintf "mm(%dx%d)" n n;
      serial =
        (fun () -> digest_of_matrix (Wool_workloads.Mm.serial (Lazy.force a) (Lazy.force b)));
      wool =
        (fun ctx ->
          digest_of_matrix (Wool_workloads.Mm.wool ctx (Lazy.force a) (Lazy.force b)));
      relaxed_ok = true (* each row task writes only its own row *);
      sim_descr = Printf.sprintf "mm(%dx%d)" n n;
      sim_tree = (fun () -> Wool_workloads.Mm.tree n);
    }

  let sort size =
    let n = sort_n size in
    let input =
      lazy
        (let rng = Wool_util.Rng.make 7 in
         Array.init n (fun _ -> Wool_util.Rng.int rng 1_000_000))
    in
    {
      name = "sort";
      descr = Printf.sprintf "sort(%d)" n;
      serial = (fun () -> digest_of_int_array (Wool_workloads.Sort.serial (Lazy.force input)));
      wool =
        (fun ctx -> digest_of_int_array (Wool_workloads.Sort.wool ctx (Lazy.force input)));
      relaxed_ok = true
        (* the rope block-sort merges into fresh arrays: a duplicate run
           rebuilds the same value instead of racing an in-place twin *);
      sim_descr = Printf.sprintf "sort(%d)" n;
      sim_tree = (fun () -> Wool_workloads.Sort.tree n);
    }

  let wordcount size =
    let n = wordcount_n size in
    let text = lazy (Wool_workloads.Wordcount.subject n) in
    {
      name = "wordcount";
      descr = Printf.sprintf "wordcount(%d)" n;
      serial = (fun () -> Wool_workloads.Wordcount.serial (Lazy.force text));
      wool = (fun ctx -> Wool_workloads.Wordcount.wool ctx (Lazy.force text));
      relaxed_ok = true (* pure per-position folds *);
      sim_descr = Printf.sprintf "wordcount(%d)" n;
      sim_tree = (fun () -> Wool_workloads.Wordcount.tree n);
    }

  let histogram size =
    let n = histogram_n size in
    let data = lazy (Wool_workloads.Histogram.subject n) in
    {
      name = "histogram";
      descr = Printf.sprintf "histogram(%d)" n;
      serial =
        (fun () ->
          digest_of_int_array (Wool_workloads.Histogram.serial (Lazy.force data)));
      wool =
        (fun ctx ->
          digest_of_int_array (Wool_workloads.Histogram.wool ctx (Lazy.force data)));
      relaxed_ok = true (* fresh bucket arrays per block and per combine *);
      sim_descr = Printf.sprintf "histogram(%d)" n;
      sim_tree = (fun () -> Wool_workloads.Histogram.tree n);
    }

  let all size =
    [
      fib size; stress size; nqueens size; mm size; sort size;
      wordcount size; histogram size;
    ]
  let names = List.map (fun s -> s.name) (all Std)

  let find ?(size = Std) name =
    match List.find_opt (fun s -> s.name = name) (all size) with
    | Some s -> s
    | None ->
        failwith
          (Printf.sprintf "unknown workload %S (expected one of: %s)" name
             (String.concat ", " names))
end
