(** Locality policy grid ("woolbench policy --grid").

    Simulates a steal-heavy stress workload at production-scale virtual
    core counts (16/32/64 by default) on a multi-socket
    {!Wool_policy.Topology}, once per locality-relevant selector (flat
    random, socket-local, hierarchical), under the committed topology
    cost model ({!Wool_sim.Costs.t.remote_factor_pct} /
    [core_factor_pct]). Prints the grid plus a hierarchical-vs-random
    crossover summary, and serialises to a schema-stable JSON snapshot
    ([POLICY_GRID.json]) that [--compare] diffs {e exactly} — the
    simulator is deterministic, so any drift is a behaviour change. *)

val schema_version : string
(** ["wool-policy-grid/1"]. *)

val default_seed : int
val default_sockets : int

val default_workers : int list
(** [[16; 32; 64]]. *)

(** One simulated (core count, selector) point. *)
type cell = {
  workers : int;
  selector : string;  (** {!Wool_policy.Selector.name} *)
  time : int;  (** simulated completion time, virtual cycles *)
  steals : int;
  remote : int;  (** successful cross-socket steals *)
  failed : int;
  hash : string;  (** the run's trace hash in hex — the determinism pin *)
}

type grid = {
  schema : string;
  seed : int;
  sockets : int;
  descr : string;  (** the workload, e.g. ["stress(height=12,...)"] *)
  cells : cell list;
}

val compute :
  ?seed:int -> ?sockets:int -> ?workers:int list -> ?height:int ->
  ?leaf_iters:int -> unit -> grid
(** Run the grid (default: seed 42, 4 sockets, 16/32/64 workers, a
    4096-leaf stress tree with ~200-cycle leaves). *)

val find_cell : grid -> workers:int -> selector:string -> cell option
val print : grid -> unit

val to_json : grid -> string
val of_json : string -> (grid, string) result
val write_file : string -> grid -> unit
val read_file : string -> (grid, string) result

val compare_grids : baseline:grid -> fresh:grid -> string list
(** Cell-exact diff (times, counters, trace hashes); empty means
    bit-for-bit reproduction of the committed snapshot. *)

val real_check : ?workers:int -> unit -> unit
(** The real-runtime half of the @topology-smoke alias: run a tiny
    tier-1 kernel on an actual pool under a hierarchical policy and
    verify the digest against the serial run. Raises [Failure] on a
    wrong result. *)
