module E = Wool_sim.Engine
module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module Tt = Wool_ir.Task_tree

type series = { label : string; speedup_by_p : (int * float) list }
type study = { title : string; series : series list }

let procs = [ 1; 2; 4; 8 ]

let default_workload () = W.stress ~reps:16 ~height:8 ~leaf_iters:256 ()

let abs_speedups ?victim_selection policy wl =
  let root = W.root wl in
  let work = float_of_int (Tt.work root) in
  List.map
    (fun p ->
      let r = E.run ?victim_selection ~policy ~workers:p root in
      (p, work /. float_of_int r.E.time))
    procs

let blocked_join ?workload () =
  let wl = match workload with Some w -> w | None -> default_workload () in
  let mk label blocked_join =
    {
      label;
      speedup_by_p =
        abs_speedups
          (P.v ~name:label
             ~flavor:
               (P.Steal_child
                  { sync = P.Nolock_state; blocked_join;
                    publicity = P.Adaptive 4 })
             ~costs:Wool_sim.Costs.wool ())
          wl;
    }
  in
  {
    title = "blocked joins on " ^ W.label wl;
    series =
      [
        mk "leapfrog" P.Leapfrog;
        mk "random-steal" P.Random_steal;
        mk "plain-wait" P.Plain_wait;
      ];
  }

let public_window ?workload () =
  let wl = match workload with Some w -> w | None -> default_workload () in
  let mk label publicity =
    {
      label;
      speedup_by_p =
        abs_speedups
          (P.v ~name:label
             ~flavor:
               (P.Steal_child
                  { sync = P.Nolock_state; blocked_join = P.Leapfrog;
                    publicity })
             ~costs:Wool_sim.Costs.wool ())
          wl;
    }
  in
  {
    title = "public window on " ^ W.label wl;
    series =
      List.map
        (fun w -> mk (Printf.sprintf "adaptive %d" w) (P.Adaptive w))
        [ 1; 2; 4; 8; 16 ]
      @ [ mk "all public" P.All_public ];
  }

let victim_selection ?workload () =
  let wl = match workload with Some w -> w | None -> default_workload () in
  let mk label sel =
    { label; speedup_by_p = abs_speedups ~victim_selection:sel P.wool wl }
  in
  {
    title = "victim selection on " ^ W.label wl;
    series =
      [
        mk "random" E.Random_victim;
        mk "round-robin" E.Round_robin;
        mk "last-victim" E.Last_victim;
        mk "leapfrog-biased" E.Leapfrog_biased;
      ];
  }

let idle_backoff ?workload () =
  let wl = match workload with Some w -> w | None -> default_workload () in
  let root = W.root wl in
  let work = float_of_int (Tt.work root) in
  let mk bo =
    {
      label = Wool_policy.Backoff.name bo;
      speedup_by_p =
        List.map
          (fun p ->
            let sp = Wool_policy.make ~backoff:bo () in
            let r = E.run ~steal_policy:sp ~policy:P.wool ~workers:p root in
            (p, work /. float_of_int r.E.time))
          procs;
    }
  in
  {
    title = "idle backoff on " ^ W.label wl;
    series = List.map mk Wool_policy.Backoff.all;
  }

let steal_batch ?workload () =
  let wl = match workload with Some w -> w | None -> default_workload () in
  let root = W.root wl in
  let work = float_of_int (Tt.work root) in
  let mk batch =
    {
      label = Printf.sprintf "batch %d" batch;
      speedup_by_p =
        List.map
          (fun p ->
            let r = E.run ~steal_batch:batch ~policy:P.wool ~workers:p root in
            (p, work /. float_of_int r.E.time))
          procs;
    }
  in
  {
    title = "steal batch size on " ^ W.label wl;
    series = List.map mk [ 1; 2; 4 ];
  }

let numa ?workload () =
  let wl = match workload with Some w -> w | None -> default_workload () in
  let root = W.root wl in
  let work = float_of_int (Tt.work root) in
  let mk label sockets sel =
    {
      label;
      speedup_by_p =
        List.map
          (fun p ->
            let r =
              E.run ~sockets ~victim_selection:sel ~policy:P.wool ~workers:p
                root
            in
            (p, work /. float_of_int r.E.time))
          procs;
    }
  in
  {
    title = "dual socket on " ^ W.label wl;
    series =
      [
        mk "1 socket, random" 1 E.Random_victim;
        mk "2 sockets, random" 2 E.Random_victim;
        mk "2 sockets, socket-local" 2 E.Socket_local;
      ];
  }

let print_study s =
  let t =
    Wool_util.Table.create ~title:s.title
      ~header:("variant" :: List.map string_of_int procs)
      ()
  in
  List.iter
    (fun sr ->
      Wool_util.Table.add_row t
        (sr.label
        :: List.map
             (fun (_, v) -> Wool_util.Table.cell_f ~dec:2 v)
             sr.speedup_by_p))
    s.series;
  Wool_util.Table.print t

let run () =
  print_endline "== Ablations of the design choices ==";
  print_study (blocked_join ());
  print_study (public_window ());
  print_study (public_window ~workload:(W.fib ~reps:1 24) ());
  print_study (victim_selection ());
  print_study (idle_backoff ());
  print_study (steal_batch ());
  print_study (numa ())
