(** Randomized schedule fuzzing with a sequential oracle ("woolbench
    check").

    Runs seeded fork-join histories — random spawn trees under random
    mode / worker / publicity / steal-policy combinations, half of them
    under an exception-free fault plan that perturbs protocol timing —
    through the real pool, and validates each against ground truth:
    sequential result, exactly-once task execution,
    {!Wool.Invariants.check}, and the trace-stream oracle
    {!Wool_check.Oracle.check_events}. Also fronts the exhaustive
    {!Wool_check.Scenarios} model checker for the CLI. *)

type spec = { id : int; children : spec list }
(** A fork-join workload shape: each node spawns one task per child and
    joins them in LIFO order; its value is its id plus the sum of its
    children. *)

val gen_spec : Wool_util.Rng.t -> budget:int -> spec * int
(** Deterministic random tree of at most [budget] nodes (0-3 children
    per node, depth at most 8); returns the node count actually used. *)

val eval : spec -> int
(** The sequential oracle. *)

type row = {
  seed : int;
  mode : Wool.mode;
  workers : int;
  publicity : Wool.publicity;
  policy : Wool_policy.t;
  faulty : bool;  (** ran under a random (exception-free) fault plan *)
  nodes : int;  (** tasks in the spec tree *)
  stats : Wool.Stats.t;
  elapsed_ns : float;
  violations : string list;  (** oracle violations (must be empty) *)
}

val run_one : seed:int -> row
(** One seeded history: derive workload and configuration from [seed]
    (the mode rotates over consecutive seeds so any window of 5 covers
    all five modes), run it, validate, shut the pool down. *)

val fuzz : ?histories:int -> ?seed0:int -> unit -> row list
(** [histories] (default 100) consecutive seeds starting at [seed0]. *)

val print_rows : row list -> int
(** Print the fuzz table plus any violations in full; returns the
    number of rows with violations (0 = green). *)

val run_scenarios : ?max_schedules:int -> unit -> int
(** Exhaustively explore every {!Wool_check.Scenarios.all} scenario,
    print the schedule-count table, and return the number of failures
    (0 = green). *)
