(** Shared helpers for the per-experiment report modules. *)

val procs : int list
(** Processor counts used throughout: 1–8, as in the paper's figures. *)

val default_seed : int

val run_sim :
  ?seed:int -> Wool_sim.Policy.t -> int -> Wool_workloads.Workload.t ->
  Wool_sim.Engine.result
(** Simulate a workload (its full repetition root) on [p] workers. *)

val run_loop :
  Wool_sim.Costs.t -> int -> Wool_workloads.Workload.t ->
  Wool_sim.Loop_sim.result
(** Static work-sharing run; requires the workload to expose loop leaves. *)

val sim_time :
  ?seed:int -> Wool_sim.Policy.t -> int -> Wool_workloads.Workload.t -> int
(** Completion time only, dispatching loop-shaped OpenMP automatically:
    a [Loop_static] policy uses {!run_loop} when the workload has leaves. *)

val absolute_speedup :
  ?seed:int -> Wool_sim.Policy.t -> int -> Wool_workloads.Workload.t -> float
(** Work of the full root divided by simulated completion time — speedup
    over an ideal sequential execution with zero task overhead, the
    normalisation of Figure 1 (left) and Figure 5's cholesky/mm/ssf
    panels. *)

val speedup_series :
  ?seed:int -> baseline:int -> Wool_sim.Policy.t ->
  Wool_workloads.Workload.t -> (float * float) list
(** [(p, baseline / T_p)] over {!procs}. *)

val fmt_k : float -> string
(** Format a cycle count in "k" (thousands) like Table I's G_L columns. *)

(** The shared real-runtime workload table.

    One spec per tier-1 kernel (fib, stress, nqueens, mm, sort,
    wordcount, histogram), consumed
    by realcheck, trace_summary, policy_sweep, and the benchmark harness;
    the per-module copies these replaced had drifted in input sizes and
    digest conventions. *)
module Spec : sig
  type size =
    | Std  (** the report/trace sizes *)
    | Tiny  (** smoke-test sizes: every run well under a second *)

  (* Raw parameters, for harnesses that re-derive a kernel at the shared
     size (e.g. the steal-parent ports in realcheck). *)
  val fib_n : size -> int
  val stress_height : size -> int
  val stress_leaf_iters : size -> int
  val nqueens_n : size -> int
  val mm_n : size -> int
  val sort_n : size -> int
  val wordcount_n : size -> int
  val histogram_n : size -> int
  val fib_sim_n : size -> int

  type t = {
    name : string;
    descr : string;  (** e.g. "fib(22)" *)
    serial : unit -> int;
        (** sequential run (for [T_S]) returning a result digest *)
    wool : Wool.ctx -> int;
        (** parallel run; its digest must equal [serial]'s *)
    relaxed_ok : bool;
        (** task bodies are idempotent — the kernel may run under the
            at-least-once ([Ws_mult]/[Lowsync]) modes; [false] skips it
            in relaxed sweeps *)
    sim_descr : string;
    sim_tree : unit -> Wool_ir.Task_tree.t;  (** simulator counterpart *)
  }

  val digest_of_matrix : float array array -> int
  val digest_of_int_array : int array -> int

  val all : size -> t list
  (** The tier-1 set, in canonical order. *)

  val names : string list

  val find : ?size:size -> string -> t
  (** Defaults to [Std]. Raises [Failure] on an unknown name. *)
end
