(* Seeded fault-injection stress runner ("woolbench faults"): sweep
   random fault plans x all modes x steal policies, run a
   fork-join workload under each combination, and hold the runtime to
   its protocol invariants afterwards — every descriptor EMPTY, steal
   counters balanced, results correct. Plans that inject task
   exceptions additionally exercise the unwind path: the run must fail
   with Wool_fault.Injected, leave the pool quiescent, and a retried
   run on the same pool must eventually succeed (exception rules are
   fire-bounded per worker). *)

module Table = Wool_util.Table
module Clock = Wool_util.Clock
module Fault = Wool_fault

(* The canonical mode list, relaxed modes included: fault plans perturb
   their (fence-free) steal windows just like everyone else's, and the
   post-quiesce invariant check uses the relaxed counter balances. *)
let all_modes = Wool.Mode.all

(* The workload: naive fork-join fib with a serial cut-off low enough to
   keep plenty of steal traffic but bounded work per task. Pure, hence
   idempotent, hence spawnable on the relaxed modes. *)
let fib_arg = 18

let rec fib_serial n = if n < 2 then n else fib_serial (n - 1) + fib_serial (n - 2)

let rec fib_task ctx n =
  if n < 2 then n
  else begin
    let a = Wool.spawn_idempotent ctx (fun ctx -> fib_task ctx (n - 1)) in
    let b = Wool.call ctx (fun ctx -> fib_task ctx (n - 2)) in
    a |> Wool.join ctx |> ( + ) b
  end

type row = {
  plan : Fault.Plan.t;
  mode : Wool.mode;
  policy : Wool_policy.t;
  elapsed_ns : float;  (** wall time of the whole episode, retries included *)
  runs : int;  (** total runs on the pool (1 + exception retries) *)
  exn_runs : int;  (** runs that ended in [Wool_fault.Injected] *)
  fires : int;  (** total fault fires, all sites and workers *)
  violations : string list;  (** invariant violations (must be empty) *)
}

(* Retry ceiling for plans with exception rules: [Plan.random] bounds
   Raise_exn to <= 2 fires per worker, so with [w] workers at most [2w]
   runs can fail before the rule is exhausted. Anything beyond that is
   itself an invariant violation (the plan misbehaved). *)
let max_runs ~workers = (2 * workers) + 2

let run_one ~workers ~mode ~policy (plan : Fault.Plan.t) =
  let config =
    Wool.Config.make ~workers ~mode ~policy ~faults:plan ~seed:plan.seed
      ~allow_relaxed:(Wool.Mode.is_relaxed mode) ()
  in
  let pool = Wool.create ~config () in
  let expect = fib_serial fib_arg in
  let violations = ref [] in
  let runs = ref 0 in
  let exn_runs = ref 0 in
  let add v = violations := !violations @ v in
  (* Two lifecycle submissions ride every episode: one pre-cancelled,
     one already past its deadline. Their drop sites (Cancel / Expire)
     are in every random plan's site pool, so delays and stalls land
     inside the drop window too; the bodies must never run and the
     tickets must settle to the matching outcome. *)
  let dropped_ran = Atomic.make 0 in
  let cancelled_token = Wool.Cancel.create () in
  Wool.Cancel.cancel cancelled_token;
  let tk_cancel =
    Wool.Submit.submit ~idempotent:true ~cancel:cancelled_token pool
      (fun _ctx -> Atomic.incr dropped_ran)
  in
  let tk_expire =
    Wool.Submit.submit ~idempotent:true ~deadline:(Clock.now_ns () - 1) pool
      (fun _ctx -> Atomic.incr dropped_ran)
  in
  let (), elapsed_ns =
    Clock.time (fun () ->
        (* Run until clean: an injected exception must leave the pool
           quiescent and reusable, so each retry doubles as the
           reusability check. *)
        let rec go () =
          incr runs;
          match Wool.run pool (fun ctx -> fib_task ctx fib_arg) with
          | v ->
              if v <> expect then
                add
                  [
                    Printf.sprintf "wrong result: fib(%d) = %d, expected %d"
                      fib_arg v expect;
                  ]
          | exception Fault.Injected _ ->
              incr exn_runs;
              add (Wool.Invariants.check pool);
              if !runs >= max_runs ~workers then
                add [ "exception rule never exhausted; giving up" ]
              else go ()
        in
        go ();
        add (Wool.Invariants.check pool))
  in
  (match Wool.Submit.await tk_cancel with
  | () -> add [ "cancelled submission completed" ]
  | exception Wool.Submit.Cancelled -> ()
  | exception e ->
      add
        [
          Printf.sprintf "cancelled submission raised %s"
            (Printexc.to_string e);
        ]);
  (match Wool.Submit.await tk_expire with
  | () -> add [ "expired submission completed" ]
  | exception Wool.Submission_expired -> ()
  | exception e ->
      add
        [
          Printf.sprintf "expired submission raised %s" (Printexc.to_string e);
        ]);
  if Atomic.get dropped_ran <> 0 then
    add [ "a dropped submission body executed" ];
  let fires = Fault.Stats.total (Wool.fault_stats pool) in
  Wool.shutdown pool;
  {
    plan;
    mode;
    policy;
    elapsed_ns;
    runs = !runs;
    exn_runs = !exn_runs;
    fires;
    violations = !violations;
  }

let sweep ?(workers = 4) ?(seeds = 20) ?(exceptions = true) () =
  let policies = Array.of_list (Wool_policy.sweep ()) in
  let rows = ref [] in
  List.iter
    (fun mode ->
      for seed = 0 to seeds - 1 do
        let plan = Fault.Plan.random ~exceptions ~seed () in
        (* cycle the steal policies across seeds so the sweep also
           crosses plans with selector/backoff combinations *)
        let policy = policies.(seed mod Array.length policies) in
        rows := run_one ~workers ~mode ~policy plan :: !rows
      done)
    all_modes;
  List.rev !rows

let print_rows rows =
  let tbl =
    Table.create ~title:"fault-injection stress sweep"
      ~header:
        [ "mode"; "plan"; "policy"; "ms"; "fires"; "runs"; "exn"; "invariants" ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          Wool.Config.mode_name r.mode;
          r.plan.Fault.Plan.name;
          Wool_policy.name r.policy;
          Table.cell_f ~dec:1 (r.elapsed_ns /. 1e6);
          Table.cell_i r.fires;
          Table.cell_i r.runs;
          Table.cell_i r.exn_runs;
          (match r.violations with
          | [] -> "ok"
          | vs -> Printf.sprintf "%d VIOLATIONS" (List.length vs));
        ])
    rows;
  Table.print tbl;
  let bad = List.filter (fun r -> r.violations <> []) rows in
  List.iter
    (fun r ->
      Printf.printf "!! %s / %s / %s:\n"
        (Wool.Config.mode_name r.mode)
        r.plan.Fault.Plan.name
        (Wool_policy.name r.policy);
      List.iter (fun v -> Printf.printf "!!   %s\n" v) r.violations)
    bad;
  let fires = List.fold_left (fun acc r -> acc + r.fires) 0 rows in
  let exn_runs = List.fold_left (fun acc r -> acc + r.exn_runs) 0 rows in
  Printf.printf
    "%d plan runs, %d fault fires, %d injected-exception runs, %d with \
     violations\n"
    (List.length rows) fires exn_runs (List.length bad);
  List.length bad

(* ---- disabled-hook overhead ---- *)

(* Compare fib wall time across the three fault-path states: hooks
   compiled out of the run ([faults = None]), hooks live with an empty
   plan ([Some Plan.none]), and a no-op watchdog sampling alongside.
   Reports the minimum over [reps] runs each — the noise floor of a
   shared box is one-sided, so the min tracks the code cost where a
   median still soaks up scheduler interference. *)
let overhead ?(workers = 4) ?(arg = 30) ?(reps = 9) () =
  let time_config label config =
    let pool = Wool.create ~config () in
    (* warm-up run to fault in domains and code paths *)
    ignore (Wool.run pool (fun ctx -> fib_task ctx 20) : int);
    let best = ref infinity in
    for _ = 1 to reps do
      let v, ns =
        Clock.time (fun () -> Wool.run pool (fun ctx -> fib_task ctx arg))
      in
      ignore (Sys.opaque_identity v : int);
      if ns < !best then best := ns
    done;
    Wool.shutdown pool;
    (label, !best)
  in
  let base = time_config "faults off" (Wool.Config.make ~workers ()) in
  let empty =
    time_config "faults on, empty plan"
      (Wool.Config.make ~workers ~faults:Fault.Plan.none ())
  in
  let watched =
    time_config "watchdog on (1s threshold)"
      (Wool.Config.make ~workers ~watchdog_interval_ns:100_000_000
         ~watchdog_stalls:10 ())
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "disabled-path overhead: fib(%d), %d workers, min of \
                         %d" arg workers reps)
      ~header:[ "configuration"; "ms"; "vs off" ]
      ()
  in
  let _, base_ns = base in
  List.iter
    (fun (label, ns) ->
      Table.add_row tbl
        [
          label;
          Table.cell_f ~dec:2 (ns /. 1e6);
          Printf.sprintf "%+.1f%%" ((ns /. base_ns -. 1.) *. 100.);
        ])
    [ base; empty; watched ];
  Table.print tbl;
  [ base; empty; watched ]
