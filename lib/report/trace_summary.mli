(** Traced-run report ("woolbench trace <workload>").

    Runs a workload on the real runtime with {!Wool.Config.t}[.trace] on,
    writes the event stream as a Chrome [trace_event] JSON file
    (chrome://tracing / Perfetto loadable, one lane per worker), and
    prints {!Wool_trace.Summary} tables, per-worker {!Wool.Stats},
    measured [G_T]/[G_L], and a side-by-side event-count comparison with
    the simulator's stream for the matching task tree — both sides use the
    shared {!Wool_trace.Event} vocabulary. *)

type spec = {
  name : string;
  descr : string;  (** e.g. "fib(22)" *)
  serial : unit -> unit;  (** sequential run, for [T_S] *)
  wool : Wool.ctx -> unit;
  sim_descr : string;
  sim_tree : unit -> Wool_ir.Task_tree.t;
      (** simulator counterpart; may use a smaller size so the
          discrete-event run stays quick *)
}
(** A benchmarkable workload: the real-runtime body plus its simulator
    task tree. Shared with {!Policy_sweep}. *)

val specs : spec list

val find : string -> spec
(** Look up a spec by name; raises [Failure] listing the known names. *)

val workloads : string list
(** Names accepted by {!run}. *)

val run :
  ?workers:int -> ?out:string -> ?check:bool -> ?policy:Wool_policy.t ->
  string -> unit
(** [run ~workers ~out ~check name] traces workload [name] (default 4
    workers) and writes the Chrome trace to [out] (default
    ["trace.json"]). [policy] selects the steal policy for both the real
    pool and the simulated counterpart (default: the pool's default,
    random victims with nap-after-64 backoff). With [check] the written
    file is re-read and validated with {!Wool_trace.Json.validate}.
    Raises [Failure] on an unknown workload name or (under [check])
    invalid JSON. *)
