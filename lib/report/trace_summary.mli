(** Traced-run report ("woolbench trace <workload>").

    Runs a workload on the real runtime with {!Wool.Config.t}[.trace] on,
    writes the event stream as a Chrome [trace_event] JSON file
    (chrome://tracing / Perfetto loadable, one lane per worker), and
    prints {!Wool_trace.Summary} tables, per-worker {!Wool.Stats},
    measured [G_T]/[G_L], and a side-by-side event-count comparison with
    the simulator's stream for the matching task tree — both sides use the
    shared {!Wool_trace.Event} vocabulary. *)

val workloads : string list
(** Names accepted by {!run} — the {!Exp_common.Spec.names} table, which
    this report (and {!Policy_sweep}, {!Bench_json}) consumes. *)

val run :
  ?workers:int -> ?out:string -> ?check:bool -> ?policy:Wool_policy.t ->
  string -> unit
(** [run ~workers ~out ~check name] traces workload [name] (default 4
    workers) and writes the Chrome trace to [out] (default
    ["trace.json"]). [policy] selects the steal policy for both the real
    pool and the simulated counterpart (default: the pool's default,
    random victims with nap-after-64 backoff). With [check] the written
    file is re-read and validated with {!Wool_trace.Json.validate}.
    Raises [Failure] on an unknown workload name or (under [check])
    invalid JSON. *)
