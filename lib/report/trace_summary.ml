(* Traced-run report: execute a workload on the real runtime with event
   tracing on, export a Chrome trace, and print summary tables next to the
   simulator's event stream for the matching task tree. Both sides speak
   Wool_trace.Event, so the columns line up one-to-one. *)

module Clock = Wool_util.Clock
module Table = Wool_util.Table
module Event = Wool_trace.Event
module Summary = Wool_trace.Summary
module Chrome = Wool_trace.Chrome
module Granularity = Wool_metrics.Granularity

module Spec = Exp_common.Spec

let workloads = Spec.names

(* The measured stream and the runtime's own counters are produced by the
   same instrumentation points, so they must agree exactly unless the ring
   overflowed. *)
let cross_check summary (agg : Wool.Stats.t) ~dropped =
  let tbl =
    Table.create ~title:"events vs counters"
      ~header:[ "quantity"; "events"; "counters" ]
      ()
  in
  let mism = ref false in
  let row label ev ctr =
    if ev <> ctr then mism := true;
    Table.add_row tbl [ label; Table.cell_i ev; Table.cell_i ctr ]
  in
  row "spawns" (Summary.count summary Event.Spawn) agg.Wool.Pool.spawns;
  row "steals" (Summary.count summary Event.Steal_ok) agg.Wool.Pool.steals;
  row "leap steals"
    (Summary.count summary Event.Leap_steal)
    agg.Wool.Pool.leap_steals;
  row "inlined (private)"
    (Summary.count summary Event.Inline_private)
    agg.Wool.Pool.inlined_private;
  row "inlined (public)"
    (Summary.count summary Event.Inline_public)
    agg.Wool.Pool.inlined_public;
  row "joins of stolen tasks"
    (Summary.count summary Event.Join_stolen)
    agg.Wool.Pool.joins_stolen;
  Table.print tbl;
  if !mism then
    if dropped > 0 then
      Printf.printf
        "note: %d events were dropped to ring overflow, so event counts \
         undershoot the counters; raise ~trace_capacity for an exact \
         stream.\n"
        dropped
    else print_string "WARNING: event counts disagree with stats counters\n"

let per_worker_stats_table pool =
  let tbl =
    Table.create ~title:"per-worker stats"
      ~header:
        [ "worker"; "spawns"; "inl priv"; "inl pub"; "stolen from";
          "steals"; "leaps"; "failed" ]
      ()
  in
  Array.iteri
    (fun i (s : Wool.Stats.t) ->
      Table.add_row tbl
        [ string_of_int i; Table.cell_i s.Wool.Pool.spawns;
          Table.cell_i s.Wool.Pool.inlined_private; Table.cell_i s.Wool.Pool.inlined_public;
          Table.cell_i s.Wool.Pool.joins_stolen; Table.cell_i s.Wool.Pool.steals;
          Table.cell_i s.Wool.Pool.leap_steals; Table.cell_i s.Wool.Pool.failed_steals ])
    (Wool.Stats.per_worker pool);
  Table.print tbl

let side_by_side measured simulated =
  let tbl =
    Table.create ~title:"event counts: measured vs simulated"
      ~header:[ "event"; "measured"; "simulated" ]
      ()
  in
  Array.iter
    (fun tag ->
      let m = Summary.count measured tag
      and s = Summary.count simulated tag in
      if m > 0 || s > 0 then
        Table.add_row tbl
          [ Event.tag_name tag; Table.cell_i m; Table.cell_i s ])
    Event.all_tags;
  Table.print tbl

let print_granularity ~label ~unit (g : Granularity.measured) =
  let cell v =
    if v = infinity then "inf" else Table.cell_f ~dec:1 v
  in
  Printf.printf "%s: G_T = %s %s/task, G_L = %s %s/migration\n" label
    (cell g.Granularity.g_t) unit
    (cell g.Granularity.g_l) unit

let run ?(workers = 4) ?(out = "trace.json") ?(check = false) ?policy name =
  let spec = Spec.find name in
  Printf.printf "== scheduler trace: %s, %d workers ==\n" spec.Spec.descr
    workers;
  let (_ : int), serial_ns = Clock.time spec.Spec.serial in
  let config = Wool.Config.make ~workers ~trace:true ?policy () in
  let pool = Wool.create ~config () in
  Printf.printf "steal policy: %s\n" (Wool.policy_name pool);
  let (_ : int), par_ns =
    Clock.time (fun () -> Wool.run pool spec.Spec.wool)
  in
  Wool.shutdown pool;
  let events = Wool.trace_events pool in
  let dropped = Wool.trace_dropped pool in
  Printf.printf "serial %.2f ms, traced parallel %.2f ms\n"
    (serial_ns /. 1e6) (par_ns /. 1e6);
  Chrome.write_file out events;
  Printf.printf "wrote %s (%d events, %d dropped)\n" out
    (Array.length events) dropped;
  if check then begin
    let ic = open_in_bin out in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    match Wool_trace.Json.validate body with
    | Ok () -> Printf.printf "%s: JSON OK\n" out
    | Error msg -> failwith (Printf.sprintf "%s: invalid JSON: %s" out msg)
  end;
  let summary = Summary.make ~dropped events in
  print_string (Summary.render ~time_unit:"ns" summary);
  per_worker_stats_table pool;
  cross_check summary (Wool.Stats.aggregate pool) ~dropped;
  print_granularity ~label:"measured (work = serial ns)" ~unit:"ns"
    (Granularity.of_events ~work:serial_ns events);
  (* Simulator counterpart: deterministic two-pass run-then-trace, then the
     same Summary over the same event vocabulary. *)
  let module E = Wool_sim.Engine in
  let module T = Wool_sim.Trace in
  let tree = spec.Spec.sim_tree () in
  Printf.printf "-- simulated counterpart: %s, %d workers --\n"
    spec.Spec.sim_descr workers;
  let r1 = E.run ?steal_policy:policy ~policy:Wool_sim.Policy.wool ~workers tree in
  let tr = T.create ~workers ~horizon:r1.E.time () in
  let r2 =
    E.run ?steal_policy:policy ~policy:Wool_sim.Policy.wool ~workers ~trace:tr
      tree
  in
  let sim_events = T.events tr in
  let sim_summary =
    Summary.make ~dropped:(T.events_dropped tr) sim_events
  in
  side_by_side summary sim_summary;
  print_granularity ~label:"simulated (work = cycles)" ~unit:"cycles"
    (Granularity.of_events ~work:(float_of_int r2.E.work) sim_events);
  Printf.printf
    "simulated completion: %s cycles, %d steals (%d leapfrog), hash %x\n"
    (Table.cell_i r2.E.time) r2.E.steals r2.E.leap_steals r2.E.trace_hash
