(* Randomized schedule fuzzing with a sequential oracle ("woolbench
   check"): run seeded fork-join histories through the real pool —
   random spawn trees, random mode / worker-count / publicity / policy
   combinations, optionally under a fault-injection plan that perturbs
   timing — and validate every history against ground truth: the result
   must equal a sequential evaluation, every task must execute exactly
   once, the quiescent pool must pass {!Wool.Invariants.check}, and the
   recorded trace stream must satisfy {!Wool_check.Oracle.check_events}
   (counter accounting plus steal/spawn/join causality). The multi-domain
   schedule itself is the randomness source; the seed makes the workload
   and configuration reproducible, not the interleaving. *)

module Table = Wool_util.Table
module Clock = Wool_util.Clock
module Rng = Wool_util.Rng
module Fault = Wool_fault
module Oracle = Wool_check.Oracle

(* ---- the workload: a random fork-join spec tree ---- *)

(* Each node spawns one task per child and joins them in LIFO order; the
   node's value is its id plus the sum of its children. Ids are assigned
   in generation order, so [eval] doubles as a checksum of the shape. *)
type spec = { id : int; children : spec list }

let max_depth = 8

(* Deterministic tree from [rng]: 0-3 children per node until [budget]
   ids are spent. Explicit recursion (not [List.init]) keeps the Rng
   draw order defined. *)
let gen_spec rng ~budget =
  let next_id = ref 0 in
  let rec node depth =
    let id = !next_id in
    incr next_id;
    let want = if depth >= max_depth then 0 else Rng.int rng 4 in
    let rec kids n acc =
      if n = 0 || !next_id >= budget then List.rev acc
      else kids (n - 1) (node (depth + 1) :: acc)
    in
    { id; children = kids want [] }
  in
  let root = node 0 in
  (root, !next_id)

let rec eval spec =
  List.fold_left (fun acc c -> acc + eval c) spec.id spec.children

(* Per-task busywork: with no compute at all the owner unwinds the whole
   tree before a thief can win a single steal, and the oracle only ever
   sees empty histories. A few microseconds per node keeps descriptors
   exposed long enough for real steal/leapfrog traffic. *)
let spin n =
  for i = 1 to n do
    ignore (Sys.opaque_identity i : int)
  done

let rec task counts ctx spec =
  ignore (Atomic.fetch_and_add counts.(spec.id) 1 : int);
  spin (1000 + (spec.id * 37 mod 4000));
  (* [spawn_idempotent] so the same workload runs on the relaxed modes;
     on exactly-once pools it is [spawn]. The body is idempotent by
     construction: the counts are occurrence counters (the relaxed
     assertion is >= 1), and the value is a pure function of the spec. *)
  let futs =
    List.map
      (fun c -> Wool.spawn_idempotent ctx (fun ctx -> task counts ctx c))
      spec.children
  in
  (* joins must be LIFO: most recent spawn first *)
  List.fold_left
    (fun acc f -> acc + Wool.join ctx f)
    spec.id (List.rev futs)

(* ---- one history ---- *)

type row = {
  seed : int;
  mode : Wool.mode;
  workers : int;
  publicity : Wool.publicity;
  policy : Wool_policy.t;
  faulty : bool;  (** ran under a random (exception-free) fault plan *)
  nodes : int;  (** tasks in the spec tree *)
  stats : Wool.Stats.t;
  elapsed_ns : float;
  violations : string list;  (** oracle violations (must be empty) *)
}

(* Every mode, including the relaxed ones: the single source of truth is
   {!Wool.Mode.all}, so a new mode is fuzzed the day it exists. *)
let all_modes = Array.of_list Wool.Mode.all
let publicities = [| Wool.All_public; Wool.Adaptive 1; Wool.Adaptive 4;
                     Wool.All_private |]

let direct = Wool.Mode.is_direct
let relaxed = Wool.Mode.is_relaxed

let counts_of_stats (s : Wool.Stats.t) =
  {
    Oracle.spawns = s.spawns;
    steals = s.steals;
    leap_steals = s.leap_steals;
    joins_stolen = s.joins_stolen;
    inlined_private = s.inlined_private;
    inlined_public = s.inlined_public;
    publish_events = s.publish_events;
    privatize_events = s.privatize_events;
    injected = s.injected;
  }

let run_one ~seed =
  (* Everything about the history flows from the seed: the mode rotates
     so any consecutive window of 7 seeds covers all seven, the rest is
     drawn from a seed-keyed generator. *)
  let rng = Rng.make (0x5eed0 + seed) in
  let mode = all_modes.(seed mod Array.length all_modes) in
  let workers = 1 + Rng.int rng 4 in
  let publicity = publicities.(Rng.int rng (Array.length publicities)) in
  let policies = Array.of_list (Wool_policy.sweep ()) in
  (* a third of the histories run a hierarchical selector with a random
     topology (socket count, SMT width, probe budgets, escalation
     percentages all drawn per history), so near-first probing with
     steal-back covers the same interleavings as the flat selectors *)
  let policy =
    if Rng.int rng 3 = 0 then begin
      let sockets = 1 + Rng.int rng 4 in
      let smt = 1 + Rng.int rng 2 in
      let probes = [| 1 + Rng.int rng 4; 1 + Rng.int rng 8 |] in
      let escalate_pct = [| Rng.int rng 101; Rng.int rng 101 |] in
      let hier = Wool_policy.Hier.auto ~probes ~escalate_pct ~smt ~sockets () in
      Wool_policy.make
        ~selector:(Wool_policy.Selector.Hierarchical hier)
        ~backoff:
          (List.nth Wool_policy.Backoff.all
             (Rng.int rng (List.length Wool_policy.Backoff.all)))
        ()
    end
    else policies.(Rng.int rng (Array.length policies))
  in
  let faults =
    (* half the seeds run under timing interference: delays and forced
       retries at the protocol fault sites, no injected exceptions *)
    if Rng.bool rng then Some (Fault.Plan.random ~exceptions:false ~seed ())
    else None
  in
  let budget = 30 + Rng.int rng 171 in
  (* a quarter of the histories run as server pools (worker 0 spawned,
     the fuzz driver a pure producer); all of them mix a few external
     submissions in ahead of the main run, so the ingress path is under
     the same schedule fuzzing as the steal protocol *)
  let server = Rng.int rng 4 = 0 in
  let n_inject = Rng.int rng 4 in
  (* lifecycle traffic: a few submissions arrive pre-cancelled or past
     their deadline, so the drop-at-dequeue path runs under the same
     schedule fuzzing — their bodies must never execute, and dropped
     jobs must not perturb the dequeue accounting checked below *)
  let n_cancel = Rng.int rng 2 in
  let n_expire = Rng.int rng 2 in
  (* a third of the histories chase the spec tree with a rope reduction
     on the same pool, so the lazy splitter's steal-pressure probes (and
     the nondeterministic spawn trees they produce) run under the same
     schedule fuzzing as the steal protocol *)
  let rope = Rng.int rng 3 = 0 in
  let rope_chunk = 1 + Rng.int rng 32 in
  let rope_len = 64 + Rng.int rng 512 in
  let spec, nodes = gen_spec rng ~budget in
  let expect = eval spec in
  let counts = Array.init nodes (fun _ -> Atomic.make 0) in
  let config =
    Wool.Config.make ~workers ~mode ~publicity ~policy ?faults ~seed ~server
      ~allow_relaxed:(relaxed mode) ~trace:true ~trace_capacity:(1 lsl 14) ()
  in
  let pool = Wool.create ~config () in
  let violations = ref [] in
  let add v = violations := !violations @ v in
  let tickets =
    Wool.Submit.submit_batch ~idempotent:true pool
      (List.init n_inject (fun i _ctx ->
           spin (500 + (i * 131));
           0x1000 + i))
  in
  let dropped_ran = Atomic.make 0 in
  let drop_body _ctx = Atomic.incr dropped_ran in
  let cancel_tickets =
    List.init n_cancel (fun _ ->
        let c = Wool.Cancel.create () in
        Wool.Cancel.cancel c;
        Wool.Submit.submit ~idempotent:true ~cancel:c pool drop_body)
  in
  let expire_tickets =
    List.init n_expire (fun _ ->
        Wool.Submit.submit ~idempotent:true
          ~deadline:(Clock.now_ns () - 1)
          pool drop_body)
  in
  let (), elapsed_ns =
    Clock.time (fun () ->
        let v = Wool.run pool (fun ctx -> task counts ctx spec) in
        if v <> expect then
          add
            [
              Printf.sprintf "wrong result: eval = %d, expected %d" v expect;
            ])
  in
  if rope then begin
    let xs = Array.init rope_len (fun i -> i * 7 mod 64) in
    let expect_sum = Array.fold_left ( + ) 0 xs in
    let got =
      Wool.run pool (fun ctx ->
          Wool_ropes.reduce ctx
            ~split:(Wool_ropes.Lazy_split rope_chunk)
            ~neutral:0 ~combine:( + ) Fun.id
            (Wool_ropes.of_array xs))
    in
    if got <> expect_sum then
      add
        [
          Printf.sprintf "rope reduce = %d, expected %d (chunk %d, len %d)"
            got expect_sum rope_chunk rope_len;
        ]
  end;
  List.iteri
    (fun i tk ->
      match Wool.Submit.await tk with
      | v ->
          if v <> 0x1000 + i then
            add
              [
                Printf.sprintf "submission %d returned %#x, expected %#x" i v
                  (0x1000 + i);
              ]
      | exception e ->
          add
            [
              Printf.sprintf "submission %d raised %s" i
                (Printexc.to_string e);
            ])
    tickets;
  List.iteri
    (fun i tk ->
      match Wool.Submit.await tk with
      | () -> add [ Printf.sprintf "cancelled submission %d completed" i ]
      | exception Wool.Submit.Cancelled -> ()
      | exception e ->
          add
            [
              Printf.sprintf "cancelled submission %d raised %s" i
                (Printexc.to_string e);
            ])
    cancel_tickets;
  List.iteri
    (fun i tk ->
      match Wool.Submit.await tk with
      | () -> add [ Printf.sprintf "expired submission %d completed" i ]
      | exception Wool.Submission_expired -> ()
      | exception e ->
          add
            [
              Printf.sprintf "expired submission %d raised %s" i
                (Printexc.to_string e);
            ])
    expire_tickets;
  if Atomic.get dropped_ran <> 0 then
    add
      [
        Printf.sprintf "%d dropped submission bodies executed"
          (Atomic.get dropped_ran);
      ];
  (* Execution multiplicity is the ground truth the guarantee names:
     exactly-once modes must show every task at 1; the relaxed modes are
     allowed duplicates but must still cover every task (>= 1). *)
  Array.iteri
    (fun id c ->
      let n = Atomic.get c in
      if relaxed mode then begin
        if n < 1 then
          add
            [ Printf.sprintf "task %d executed %d times, expected >= 1" id n ]
      end
      else if n <> 1 then
        add [ Printf.sprintf "task %d executed %d times, expected 1" id n ])
    counts;
  add (Wool.Invariants.check pool);
  let stats = Wool.Stats.aggregate pool in
  (* A duplicate body run re-spawns its whole subtree, so relaxed modes
     bound spawns below by the edge count instead of matching exactly;
     likewise a rope run adds however many splits steal pressure forced
     (a schedule-dependent, nonnegative count). *)
  (if relaxed mode || rope then begin
     if stats.spawns < nodes - 1 then
       add
         [
           Printf.sprintf "stats.spawns = %d, expected >= %d (tree edges)"
             stats.spawns (nodes - 1);
         ]
   end
   else if stats.spawns <> nodes - 1 then
     add
       [
         Printf.sprintf "stats.spawns = %d, expected %d (tree edges)"
           stats.spawns (nodes - 1);
       ]);
  (* every [Wool.run] goes through the ingress too *)
  let runs = if rope then 2 else 1 in
  if stats.injected <> n_inject + runs then
    add
      [
        Printf.sprintf "stats.injected = %d, expected %d" stats.injected
          (n_inject + runs);
      ];
  let ig = Wool.ingress_stats pool in
  if ig.Wool.Pool.submitted <> ig.Wool.Pool.admitted + ig.Wool.Pool.rejected
  then
    add
      [
        Printf.sprintf "ingress imbalance: submitted %d <> admitted %d + \
                        rejected %d"
          ig.Wool.Pool.submitted ig.Wool.Pool.admitted ig.Wool.Pool.rejected;
      ];
  if ig.Wool.Pool.cancelled <> n_cancel then
    add
      [
        Printf.sprintf "ingress cancelled = %d, expected %d"
          ig.Wool.Pool.cancelled n_cancel;
      ];
  if ig.Wool.Pool.expired <> n_expire then
    add
      [
        Printf.sprintf "ingress expired = %d, expected %d"
          ig.Wool.Pool.expired n_expire;
      ];
  (* the trace oracle wants exact thief rings: shut down first *)
  Wool.shutdown pool;
  add
    (Oracle.check_events ~direct:(direct mode)
       ~counts:(counts_of_stats stats)
       ~dropped:(Wool.trace_dropped pool)
       (Wool.trace_per_worker pool));
  {
    seed;
    mode;
    workers;
    publicity;
    policy;
    faulty = faults <> None;
    nodes;
    stats;
    elapsed_ns;
    violations = !violations;
  }

let fuzz ?(histories = 100) ?(seed0 = 0) () =
  List.init histories (fun i -> run_one ~seed:(seed0 + i))

let publicity_name = function
  | Wool.All_public -> "public"
  | Wool.All_private -> "private"
  | Wool.Adaptive n -> Printf.sprintf "adaptive %d" n

let print_rows rows =
  let tbl =
    Table.create ~title:"schedule fuzzing vs sequential oracle"
      ~header:
        [
          "seed"; "mode"; "w"; "publicity"; "policy"; "faults"; "tasks";
          "inj"; "steals"; "ms"; "oracle";
        ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          Table.cell_i r.seed;
          Wool.Config.mode_name r.mode;
          Table.cell_i r.workers;
          (if direct r.mode then publicity_name r.publicity else "-");
          Wool_policy.name r.policy;
          (if r.faulty then "plan" else "-");
          Table.cell_i r.nodes;
          Table.cell_i r.stats.injected;
          Table.cell_i r.stats.steals;
          Table.cell_f ~dec:1 (r.elapsed_ns /. 1e6);
          (match r.violations with
          | [] -> "ok"
          | vs -> Printf.sprintf "%d VIOLATIONS" (List.length vs));
        ])
    rows;
  Table.print tbl;
  let bad = List.filter (fun r -> r.violations <> []) rows in
  List.iter
    (fun r ->
      Printf.printf "!! seed %d / %s / %d workers:\n" r.seed
        (Wool.Config.mode_name r.mode)
        r.workers;
      List.iter (fun v -> Printf.printf "!!   %s\n" v) r.violations)
    bad;
  let steals = List.fold_left (fun acc r -> acc + r.stats.steals) 0 rows in
  let tasks = List.fold_left (fun acc r -> acc + r.nodes) 0 rows in
  Printf.printf "%d histories, %d tasks, %d steals, %d with violations\n"
    (List.length rows) tasks steals (List.length bad);
  List.length bad

(* ---- model-check scenarios (the exhaustive side of "woolbench
   check") ---- *)

let run_scenarios ?max_schedules () =
  let tbl =
    Table.create ~title:"model-checked protocol scenarios"
      ~header:[ "scenario"; "schedules"; "max depth"; "result" ]
      ()
  in
  let failures = ref [] in
  List.iter
    (fun (s : Wool_check.Scenarios.t) ->
      match Wool_check.Scenarios.run_one ?max_schedules s with
      | Wool_check.Scenarios.Pass (st : Wool_check.Sched.stats) ->
          Table.add_row tbl
            [
              s.name; Table.cell_i st.schedules; Table.cell_i st.max_depth;
              "pass";
            ]
      | Wool_check.Scenarios.Fail msg ->
          failures := (s.name, msg) :: !failures;
          Table.add_row tbl [ s.name; "-"; "-"; "FAIL" ])
    Wool_check.Scenarios.all;
  Table.print tbl;
  List.iter
    (fun (name, msg) -> Printf.printf "!! %s:\n!!   %s\n" name msg)
    (List.rev !failures);
  Printf.printf "%d scenarios, %d failed\n"
    (List.length Wool_check.Scenarios.all)
    (List.length !failures);
  List.length !failures
