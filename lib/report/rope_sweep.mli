(** The lazy-vs-eager rope splitting sweep behind ["woolbench ropes"].

    Runs the rope workloads (wordcount, histogram) under both split
    schedules across every scheduler mode and worker count, and A/Bs the
    rope one-liner workload paths (mm, ssf, sort) against their
    hand-rolled spawn trees in the default mode. *)

type arm = { a_ms : float; a_spawns : int; a_ok : bool }

type cell = {
  workload : string;
  mode : string;
  workers : int;
  lazy_arm : arm;
  eager_arm : arm;
}

val compute :
  ?size:Exp_common.Spec.size -> ?workers:int list -> ?repeats:int -> unit ->
  cell list
(** The lazy-vs-eager matrix; median of [repeats] (default 3) fresh-pool
    runs per arm. *)

val run :
  ?size:Exp_common.Spec.size -> ?workers:int list -> ?repeats:int -> unit ->
  unit
(** Print both tables. Raises [Failure] if any digest disagrees with the
    serial oracle. *)
