(* Reproducible benchmark harness ("woolbench bench <workload|all>"): run
   the tier-1 workloads across worker counts and the scheduler modes
   (all seven by default, filterable with --modes), compute Table II-style
   single-worker spawn/join overheads (including the All_private vs
   All_public publicity split), speedups, steal counts and measured
   granularities, and emit a schema-stable BENCH_<date>.json.
   A later run can diff itself against a committed file with --compare;
   "beyond noise" is judged with the baseline's own percentile spread,
   rescaled by the whole-matrix re-measure drift so a machine that got
   uniformly slower does not read as a sea of regressions. *)

module Clock = Wool_util.Clock
module Stats = Wool_util.Stats
module Table = Wool_util.Table
module Json = Wool_trace.Json
module Granularity = Wool_metrics.Granularity
module Spec = Exp_common.Spec

let schema_version = "wool-bench/2"

(* v1 documents (no tail percentiles) still decode; see [stat_of_tree] *)
let schema_v1 = "wool-bench/1"

type stat = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  min : float;
  max : float;
  p10 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

let stat_of_samples samples =
  let s = Stats.summarize samples in
  {
    n = s.Stats.n;
    mean = s.Stats.mean;
    median = s.Stats.median;
    stddev = s.Stats.stddev;
    min = s.Stats.min;
    max = s.Stats.max;
    p10 = Stats.percentile samples 10.0;
    p90 = Stats.percentile samples 90.0;
    p99 = Stats.percentile samples 99.0;
    p999 = Stats.percentile samples 99.9;
  }

type run = {
  workload : string;
  descr : string;
  mode : string;
  publicity : string;
  workers : int;
  repeats : int;
  ok : bool;
  serial_ns : stat;
  parallel_ns : stat;
  overhead : float;
  speedup : float;
  spawns : int;
  steals : int;
  g_t_ns : float;
  g_l_ns : float;
}

type report = {
  schema : string;
  date : string;
  size : string;
  ghz : float;
  runs : run list;
}

(* Every mode from the canonical table, labelled with its canonical name
   (old baselines used hyphenated spellings; [Wool.Mode.of_name] still
   parses those, and --compare keys skip cells the baseline lacks). *)
let modes = List.map (fun m -> (Wool.Mode.name m, m)) Wool.Mode.all

let publicity_name = function
  | None -> "default"
  | Some Wool.All_private -> "all-private"
  | Some Wool.All_public -> "all-public"
  | Some (Wool.Adaptive n) -> Printf.sprintf "adaptive-%d" n

(* One (workload, mode, publicity, workers) cell: [repeats] timed pool
   runs, a fresh pool per repeat so the counters describe exactly one
   run. Pool construction and shutdown stay outside the timed region. *)
let measure_cell (spec : Spec.t) ~expected ~serial ~mode_name ~mode
    ~publicity ~workers ~repeats =
  let samples = Array.make repeats 0.0 in
  let ok = ref true in
  let spawns = ref 0 and steals = ref 0 in
  for i = 0 to repeats - 1 do
    let allow_relaxed = Wool.Mode.is_relaxed mode in
    let config =
      match publicity with
      | None -> Wool.Config.make ~workers ~mode ~allow_relaxed ()
      | Some p -> Wool.Config.make ~workers ~mode ~publicity:p ~allow_relaxed ()
    in
    Wool.with_pool ~config (fun pool ->
        let result, ns = Clock.time (fun () -> Wool.run pool spec.Spec.wool) in
        if result <> expected then ok := false;
        samples.(i) <- ns;
        let s = Wool.Stats.aggregate pool in
        spawns := s.Wool.Pool.spawns;
        steals := s.Wool.Pool.steals)
  done;
  let parallel_ns = stat_of_samples samples in
  let g =
    Granularity.of_measured ~work:serial.median ~tasks:!spawns
      ~migrations:!steals
  in
  {
    workload = spec.Spec.name;
    descr = spec.Spec.descr;
    mode = mode_name;
    publicity = publicity_name publicity;
    workers;
    repeats;
    ok = !ok;
    serial_ns = serial;
    parallel_ns;
    overhead = parallel_ns.median /. serial.median;
    speedup = serial.median /. parallel_ns.median;
    spawns = !spawns;
    steals = !steals;
    g_t_ns = g.Granularity.g_t;
    g_l_ns = g.Granularity.g_l;
  }

let measure ?(size = Spec.Std) ?(workers = [ 1; 2; 4 ]) ?(repeats = 3)
    ?(mode_filter = List.map snd modes) ~date names =
  if repeats < 1 then invalid_arg "Bench_json.measure: repeats < 1";
  if workers = [] || List.exists (fun w -> w < 1) workers then
    invalid_arg "Bench_json.measure: bad worker list";
  if mode_filter = [] then invalid_arg "Bench_json.measure: empty mode list";
  let selected = List.filter (fun (_, m) -> List.mem m mode_filter) modes in
  let runs =
    List.concat_map
      (fun name ->
        let spec = Spec.find ~size name in
        let expected = spec.Spec.serial () in
        let serial =
          stat_of_samples
            (Clock.time_ns ~warmup:1 ~repeats (fun () ->
                 ignore (spec.Spec.serial () : int)))
        in
        let cell = measure_cell spec ~expected ~serial ~repeats in
        (* the mode sweep, every worker count; relaxed modes execute
           bodies at-least-once, so only idempotent kernels qualify *)
        List.concat_map
          (fun (mode_name, mode) ->
            if Wool.Mode.is_relaxed mode && not spec.Spec.relaxed_ok then begin
              Printf.printf "note: skipping %s on %s (kernel not idempotent)\n"
                spec.Spec.name mode_name;
              []
            end
            else
              List.map
                (fun w -> cell ~mode_name ~mode ~publicity:None ~workers:w)
                workers)
          selected
        (* Table II's publicity split: single worker, default (Private)
           mode, everything kept private vs everything made stealable —
           the pure spawn/join overhead gap the paper's §III targets *)
        @
        if List.mem_assoc "private" selected then
          List.map
            (fun p ->
              cell ~mode_name:"private" ~mode:Wool.Private ~publicity:(Some p)
                ~workers:1)
            [ Wool.All_private; Wool.All_public ]
        else [])
      names
  in
  {
    schema = schema_version;
    date;
    size = (match size with Spec.Std -> "std" | Spec.Tiny -> "tiny");
    ghz = Clock.ghz ();
    runs;
  }

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                       *)

let add_float b v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
  else Buffer.add_string b "null" (* inf/nan have no JSON spelling *)

let add_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_stat b (s : stat) =
  Buffer.add_string b (Printf.sprintf "{\"n\":%d" s.n);
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf ",\"%s\":" k);
      add_float b v)
    [
      ("mean", s.mean); ("median", s.median); ("stddev", s.stddev);
      ("min", s.min); ("max", s.max); ("p10", s.p10); ("p90", s.p90);
      ("p99", s.p99); ("p999", s.p999);
    ];
  Buffer.add_char b '}'

let add_run b (r : run) =
  Buffer.add_string b "{\"workload\":";
  add_string b r.workload;
  Buffer.add_string b ",\"descr\":";
  add_string b r.descr;
  Buffer.add_string b ",\"mode\":";
  add_string b r.mode;
  Buffer.add_string b ",\"publicity\":";
  add_string b r.publicity;
  Buffer.add_string b
    (Printf.sprintf ",\"workers\":%d,\"repeats\":%d,\"ok\":%b" r.workers
       r.repeats r.ok);
  Buffer.add_string b ",\"serial_ns\":";
  add_stat b r.serial_ns;
  Buffer.add_string b ",\"parallel_ns\":";
  add_stat b r.parallel_ns;
  Buffer.add_string b ",\"overhead\":";
  add_float b r.overhead;
  Buffer.add_string b ",\"speedup\":";
  add_float b r.speedup;
  Buffer.add_string b
    (Printf.sprintf ",\"spawns\":%d,\"steals\":%d" r.spawns r.steals);
  Buffer.add_string b ",\"g_t_ns\":";
  add_float b r.g_t_ns;
  Buffer.add_string b ",\"g_l_ns\":";
  add_float b r.g_l_ns;
  Buffer.add_char b '}'

let to_json (rep : report) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":";
  add_string b rep.schema;
  Buffer.add_string b ",\"date\":";
  add_string b rep.date;
  Buffer.add_string b ",\"size\":";
  add_string b rep.size;
  Buffer.add_string b ",\"ghz\":";
  add_float b rep.ghz;
  Buffer.add_string b ",\"runs\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      add_run b r)
    rep.runs;
  Buffer.add_string b "]}\n";
  let body = Buffer.contents b in
  (match Json.validate body with
  | Ok () -> ()
  | Error msg -> failwith ("Bench_json.to_json: emitted invalid JSON: " ^ msg));
  body

(* ------------------------------------------------------------------ *)
(* JSON decoding (for --compare)                                       *)

let ( let* ) o f = match o with Some v -> f v | None -> None

let float_member k t =
  match Json.member k t with
  | None -> None
  | Some Json.Null -> Some infinity (* inf round-trips as null *)
  | Some v -> Json.to_float v

let int_member k t =
  let* v = float_member k t in
  Some (int_of_float v)

let string_member k t =
  let* v = Json.member k t in
  Json.to_string v

let bool_member k t =
  match Json.member k t with Some (Json.Bool v) -> Some v | _ -> None

let stat_of_tree t =
  let* n = int_member "n" t in
  let* mean = float_member "mean" t in
  let* median = float_member "median" t in
  let* stddev = float_member "stddev" t in
  let* min = float_member "min" t in
  let* max = float_member "max" t in
  let* p10 = float_member "p10" t in
  let* p90 = float_member "p90" t in
  (* absent in v1 documents: default to [max], the only sound upper
     bound the old schema recorded for the tail *)
  let p99 = Option.value ~default:max (float_member "p99" t) in
  let p999 = Option.value ~default:max (float_member "p999" t) in
  Some { n; mean; median; stddev; min; max; p10; p90; p99; p999 }

let run_of_tree t =
  let* workload = string_member "workload" t in
  let* descr = string_member "descr" t in
  let* mode = string_member "mode" t in
  let* publicity = string_member "publicity" t in
  let* workers = int_member "workers" t in
  let* repeats = int_member "repeats" t in
  let* ok = bool_member "ok" t in
  let* serial_ns = Json.member "serial_ns" t in
  let* serial_ns = stat_of_tree serial_ns in
  let* parallel_ns = Json.member "parallel_ns" t in
  let* parallel_ns = stat_of_tree parallel_ns in
  let* overhead = float_member "overhead" t in
  let* speedup = float_member "speedup" t in
  let* spawns = int_member "spawns" t in
  let* steals = int_member "steals" t in
  let* g_t_ns = float_member "g_t_ns" t in
  let* g_l_ns = float_member "g_l_ns" t in
  Some
    {
      workload; descr; mode; publicity; workers; repeats; ok; serial_ns;
      parallel_ns; overhead; speedup; spawns; steals; g_t_ns; g_l_ns;
    }

let of_json body =
  match Json.parse body with
  | Error msg -> Error msg
  | Ok t -> (
      let report =
        let* schema = string_member "schema" t in
        if schema <> schema_version && schema <> schema_v1 then None
        else
          let* date = string_member "date" t in
          let* size = string_member "size" t in
          let* ghz = float_member "ghz" t in
          let* runs = Json.member "runs" t in
          let* runs = Json.to_list runs in
          let runs = List.map run_of_tree runs in
          if List.exists (fun r -> r = None) runs then None
          else
            Some
              {
                schema; date; size; ghz;
                runs = List.filter_map Fun.id runs;
              }
      in
      match report with
      | Some r -> Ok r
      | None ->
          Error
            (Printf.sprintf "not a %s document (or missing fields)"
               schema_version))

let write_file path rep =
  let oc = open_out_bin path in
  output_string oc (to_json rep);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  of_json body

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

type regression = {
  r_run : run;
  r_baseline : run;
  r_ratio : float;  (** new median / old median, drift-corrected *)
}

(* Committed baselines printed hyphenated mode spellings ("chase-lev",
   "task-specific"); route both sides through the mode table so a cell
   keyed under either spelling still matches its successor. *)
let canonical_mode m =
  match Wool.Mode.of_name m with Some md -> Wool.Mode.name md | None -> m

let key (r : run) = (r.workload, canonical_mode r.mode, r.publicity, r.workers)

(* Whole-matrix re-measure delta: the median new/old ratio over every
   cell both reports share. A committed baseline was measured on some
   other day's machine state (frequency scaling, co-tenants, compiler);
   when the whole matrix moved together that is machine drift, not a
   scheduler regression — so the per-cell judgement below normalizes by
   this factor, and the driver prints it as a caveat. *)
let drift_ratio ~baseline current =
  let ratios =
    List.filter_map
      (fun (r : run) ->
        match List.find_opt (fun o -> key o = key r) baseline.runs with
        | Some o when o.parallel_ns.median > 0.0 ->
            Some (r.parallel_ns.median /. o.parallel_ns.median)
        | _ -> None)
      current.runs
  in
  (* with only a handful of shared cells the median ratio cannot tell a
     machine-wide shift from a genuine regression (a single regressed
     cell IS the median) — fall back to no correction *)
  if List.length ratios < 4 then 1.0
  else begin
    let a = Array.of_list ratios in
    Array.sort compare a;
    a.(Array.length a / 2)
  end

(* A cell regresses when its drift-corrected new median lands beyond the
   baseline's own noise band: above the baseline p90 AND more than 10%
   over the baseline median, after dividing out the whole-matrix drift.
   Missing cells (different workload/worker/mode set) are skipped. *)
let compare_reports ?drift ~baseline current =
  let d =
    match drift with Some d -> d | None -> drift_ratio ~baseline current
  in
  let d = if Float.is_finite d && d > 0.0 then d else 1.0 in
  List.filter_map
    (fun (r : run) ->
      match List.find_opt (fun o -> key o = key r) baseline.runs with
      | None -> None
      | Some o ->
          let m = r.parallel_ns.median /. d
          and om = o.parallel_ns.median in
          if m > o.parallel_ns.p90 && m > om *. 1.10 then
            Some { r_run = r; r_baseline = o; r_ratio = m /. om }
          else None)
    current.runs

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let print_report (rep : report) =
  Printf.printf "== wool bench: %s (size %s, %.1f GHz scale) ==\n" rep.date
    rep.size rep.ghz;
  let tbl =
    Table.create
      ~header:
        [ "workload"; "mode"; "publicity"; "w"; "serial ms"; "par ms";
          "overhead"; "speedup"; "spawns"; "steals"; "ok" ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          r.workload; r.mode; r.publicity; string_of_int r.workers;
          Table.cell_f ~dec:2 (r.serial_ns.median /. 1e6);
          Table.cell_f ~dec:2 (r.parallel_ns.median /. 1e6);
          Table.cell_f ~dec:2 r.overhead;
          Table.cell_f ~dec:2 r.speedup;
          Table.cell_i r.spawns;
          Table.cell_i r.steals;
          (if r.ok then "ok" else "FAIL");
        ])
    rep.runs;
  Table.print tbl;
  (* Table II counterpart: single-worker spawn/join overhead per mode,
     plus the publicity split for the default mode *)
  let single =
    List.filter (fun r -> r.workers = 1 && r.publicity = "default") rep.runs
  in
  if single <> [] then begin
    let tbl =
      Table.create ~title:"single-worker overhead vs sequential (Table II)"
        ~header:("workload" :: List.map fst modes)
        ()
    in
    List.iter
      (fun (spec_name : string) ->
        let row =
          List.map
            (fun (m, _) ->
              match
                List.find_opt
                  (fun r -> r.workload = spec_name && r.mode = m)
                  single
              with
              | Some r -> Table.cell_f ~dec:2 r.overhead
              | None -> "-")
            modes
        in
        if List.exists (fun c -> c <> "-") row then
          Table.add_row tbl (spec_name :: row))
      (List.sort_uniq compare (List.map (fun r -> r.workload) rep.runs));
    Table.print tbl
  end;
  let publ =
    List.filter
      (fun r -> r.publicity = "all-private" || r.publicity = "all-public")
      rep.runs
  in
  if publ <> [] then begin
    let tbl =
      Table.create
        ~title:"publicity split (private mode, 1 worker): overhead"
        ~header:[ "workload"; "all-private"; "all-public"; "gap" ]
        ()
    in
    List.iter
      (fun name ->
        let find p =
          List.find_opt (fun r -> r.workload = name && r.publicity = p) publ
        in
        match (find "all-private", find "all-public") with
        | Some pr, Some pu ->
            Table.add_row tbl
              [
                name;
                Table.cell_f ~dec:2 pr.overhead;
                Table.cell_f ~dec:2 pu.overhead;
                Table.cell_f ~dec:2 (pu.overhead /. pr.overhead);
              ]
        | _ -> ())
      (List.sort_uniq compare (List.map (fun r -> r.workload) publ));
    Table.print tbl
  end

let print_drift_caveat ~drift baseline =
  if Float.abs (drift -. 1.0) > 0.05 then
    Printf.printf
      "compare: whole-matrix re-measure drift %.2fx vs baseline %s — the \
       machine, not the scheduler, moved; per-cell judgements below are \
       drift-corrected\n"
      drift baseline.date

let print_regressions regs =
  if regs = [] then
    print_endline "compare: no regressions beyond noise (drift-corrected)"
  else begin
    let tbl =
      Table.create
        ~title:"REGRESSIONS (drift-corrected median beyond baseline p90 + 10%)"
        ~header:
          [ "workload"; "mode"; "publicity"; "w"; "old ms"; "new ms"; "x" ]
        ()
    in
    List.iter
      (fun { r_run = r; r_baseline = o; r_ratio } ->
        Table.add_row tbl
          [
            r.workload; r.mode; r.publicity; string_of_int r.workers;
            Table.cell_f ~dec:2 (o.parallel_ns.median /. 1e6);
            Table.cell_f ~dec:2 (r.parallel_ns.median /. 1e6);
            Table.cell_f ~dec:2 r_ratio;
          ])
      regs;
    Table.print tbl
  end

let default_out ~date = Printf.sprintf "BENCH_%s.json" date

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let parse_modes names =
  List.map
    (fun n ->
      match Wool.Mode.of_name n with
      | Some m -> m
      | None ->
          failwith
            (Printf.sprintf "unknown mode %S (expected one of: %s)" n
               (String.concat ", " (List.map Wool.Mode.name Wool.Mode.all))))
    names

let run ?size ?workers ?repeats ?mode_names ?out ?compare_with ~date names =
  let names =
    match names with
    | [] | [ "all" ] -> Spec.names
    | names ->
        List.iter (fun n -> ignore (Spec.find n : Spec.t)) names;
        names
  in
  let mode_filter = Option.map parse_modes mode_names in
  let rep = measure ?size ?workers ?repeats ?mode_filter ~date names in
  print_report rep;
  let out = match out with Some p -> p | None -> default_out ~date in
  write_file out rep;
  Printf.printf "wrote %s (%d runs)\n" out (List.length rep.runs);
  if List.exists (fun r -> not r.ok) rep.runs then
    failwith "bench: some parallel digests disagreed with serial";
  match compare_with with
  | None -> 0
  | Some path -> (
      match read_file path with
      | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
      | Ok baseline ->
          let drift = drift_ratio ~baseline rep in
          print_drift_caveat ~drift baseline;
          let regs = compare_reports ~drift ~baseline rep in
          print_regressions regs;
          List.length regs)
