(** Open-loop latency-SLO load generator ("woolbench serve").

    External producer domains (never pool workers) submit jobs into a
    server-mode pool through {!Wool.Submit} at scheduled Poisson arrival
    times, sustained and bursty, across all five scheduler modes. The
    loop is open: the arrival process never waits for the system, and a
    job's latency is measured from its {e scheduled} arrival, so
    overload shows up as tail latency instead of being silently absorbed
    by a slowed-down producer (no coordinated omission). Admission is
    [Reject], keeping producers non-blocking; the report pairs the
    ingress verdict counters with sojourn-time percentiles. *)

val schema_version : string
(** ["wool-serve/1"]. *)

type arrival = Sustained | Bursty

val arrival_name : arrival -> string

(** One (mode, arrival process) cell. *)
type row = {
  mode : string;
  arrival : string;
  offered : int;  (** submissions attempted (ingress [submitted]) *)
  admitted : int;
  rejected : int;
  shed : int;
  executed : int;
  p50_ms : float;  (** sojourn time: scheduled arrival to completion *)
  p99_ms : float;
  p999_ms : float;
  throughput : float;  (** executed jobs per second of wall clock *)
  elapsed_s : float;
  violations : string list;  (** {!Wool.Invariants.check}, post-quiesce *)
}

val measure :
  ?producers:int ->
  ?workers:int ->
  ?rate_hz:float ->
  ?duration_s:float ->
  ?lane_capacity:int ->
  ?service_spins:int ->
  ?seed:int ->
  unit ->
  row list
(** Run every (mode, arrival) cell: [producers] (default 2) domains
    offering [rate_hz] (default 200) jobs/s in aggregate for
    [duration_s] (default 1.0) into a [workers]-domain (default 2)
    server pool with one [lane_capacity]-slot lane (default 64); each
    job spins [service_spins] iterations (default 2000). Raises
    [Invalid_argument] on non-positive parameters. *)

val to_json :
  date:string ->
  producers:int ->
  workers:int ->
  rate_hz:float ->
  duration_s:float ->
  row list ->
  string
(** Render; validated with {!Wool_trace.Json.validate} before being
    returned (raises [Failure] if that ever fails). *)

val print_rows : row list -> int
(** Print the table and any invariant violations; returns the number of
    rows with violations. *)

val default_out : date:string -> string
(** [SERVE_<date>.json]. *)

val run :
  ?producers:int ->
  ?workers:int ->
  ?rate_hz:float ->
  ?duration_s:float ->
  ?lane_capacity:int ->
  ?service_spins:int ->
  ?seed:int ->
  ?out:string ->
  ?check:bool ->
  date:string ->
  unit ->
  int
(** CLI driver: measure, print, write [out] (default {!default_out});
    with [check], re-read the file and re-validate the JSON. Returns the
    number of rows with invariant violations (0 = clean). *)
