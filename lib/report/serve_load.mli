(** Open-loop latency-SLO load generator ("woolbench serve").

    External producer domains (never pool workers) submit jobs into a
    server-mode pool through {!Wool.Submit} at scheduled Poisson arrival
    times — sustained, bursty, and overloaded — across all scheduler
    modes. The loop is open: the arrival process never waits for the
    system, and a job's latency is measured from its {e scheduled}
    arrival, so overload shows up as tail latency instead of being
    silently absorbed by a slowed-down producer (no coordinated
    omission).

    Sustained and bursty cells run under [Reject] admission, keeping
    producers non-blocking. The [Overload] arrival offers ~1.3x the
    pool's service capacity with a per-job deadline (8 nominal service
    times; the cell's p99 sojourn target is twice that, leaving half
    the target for in-service dilation) and runs twice per mode: under
    [Block] admission (producers park on the full lane, queued jobs go
    stale and expire at dequeue) and under [Adaptive] admission (the
    controller sheds at the door when the sojourn-wait EWMA crosses a
    quarter of the deadline, so admitted jobs clear the lane with most
    of their budget unspent). Every 32nd overload submission carries a
    pre-cancelled token, exercising the cancelled column of the ledger.
    The report pairs the ingress verdict counters with sojourn
    percentiles and goodput (completions inside the deadline per
    second). *)

val schema_version : string
(** ["wool-serve/2"]. *)

val schema_v1 : string
(** ["wool-serve/1"] — still accepted by {!of_json}; the ledger columns
    absent from v1 documents default to zero, [admission] to
    ["reject"], and [goodput] to the recorded throughput. *)

type arrival = Sustained | Bursty | Overload

val arrival_name : arrival -> string

(** One (mode, arrival process, admission policy) cell. *)
type row = {
  mode : string;
  arrival : string;
  admission : string;  (** admission policy the cell ran under *)
  offered : int;  (** submissions attempted (ingress [submitted]) *)
  admitted : int;
  rejected : int;
  shed : int;
  executed : int;
  expired : int;  (** dropped at dequeue: deadline already passed *)
  cancelled : int;  (** dropped at dequeue: token set before the run *)
  p50_ms : float;  (** sojourn time: scheduled arrival to completion *)
  p99_ms : float;
  p999_ms : float;
  throughput : float;  (** executed jobs per second of wall clock *)
  goodput : float;
      (** completions inside the per-job deadline per second; equals
          [throughput] for cells without deadlines *)
  target_ms : float;
      (** p99 sojourn target: twice the per-job deadline (0 = the cell
          has no deadline) *)
  elapsed_s : float;
  violations : string list;  (** {!Wool.Invariants.check}, post-quiesce *)
}

val measure :
  ?producers:int ->
  ?workers:int ->
  ?rate_hz:float ->
  ?duration_s:float ->
  ?lane_capacity:int ->
  ?service_spins:int ->
  ?arrivals:arrival list ->
  ?seed:int ->
  unit ->
  row list
(** Run the serve matrix: [producers] (default 2) domains offering
    [rate_hz] (default 200) jobs/s in aggregate for [duration_s]
    (default 1.0) into a [workers]-domain (default 2) server pool with
    one [lane_capacity]-slot lane (default 64); sustained/bursty jobs
    spin [service_spins] iterations (default 2000), overload cells
    derive their own service time and rate (4x [rate_hz]) from a spin
    calibration. [arrivals] (default all three) filters the arrival
    patterns — each mode runs one cell per matching matrix entry, and
    [Overload] contributes two (Adaptive and Block). Raises
    [Invalid_argument] on non-positive parameters or an empty
    [arrivals]. *)

(** A parsed serve document. *)
type report = {
  schema : string;
  date : string;
  producers : int;
  workers : int;
  rate_hz : float;
  duration_s : float;
  rows : row list;
}

val to_json :
  date:string ->
  producers:int ->
  workers:int ->
  rate_hz:float ->
  duration_s:float ->
  row list ->
  string
(** Render as a wool-serve/2 document; validated with
    {!Wool_trace.Json.validate} before being returned (raises [Failure]
    if that ever fails). *)

val of_json : string -> (report, string) result
(** Parse a wool-serve/2 (or v1) document; see {!schema_v1} for the v1
    defaults. Unknown schemas and missing fields are [Error]. *)

val print_rows : row list -> int
(** Print the table and any invariant violations; returns the number of
    rows with violations. *)

val default_out : date:string -> string
(** [SERVE_<date>.json]. *)

val run :
  ?producers:int ->
  ?workers:int ->
  ?rate_hz:float ->
  ?duration_s:float ->
  ?lane_capacity:int ->
  ?service_spins:int ->
  ?arrivals:arrival list ->
  ?seed:int ->
  ?out:string ->
  ?check:bool ->
  date:string ->
  unit ->
  int
(** CLI driver: measure, print, write [out] (default {!default_out});
    with [check], re-read the file and re-parse it with {!of_json}.
    Returns the number of rows with invariant violations (0 = clean). *)
