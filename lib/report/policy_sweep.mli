(** Measured steal-policy sweep ("woolbench policy <workload>").

    Runs one {!Trace_summary.spec} workload on the real runtime once per
    {!Wool_policy.t} combination — every
    {!Wool_policy.Selector.t}[ x ]{!Wool_policy.Backoff.t} pair of
    {!Wool_policy.sweep} — and prints wall time plus the pool's own
    {!Wool.Stats} counters (steals, leapfrog steals, failed attempts) per
    policy, followed by the simulator counterpart driven by the same
    policy values via [Wool_sim.Engine.run ~steal_policy]. *)

type row = {
  policy : Wool_policy.t;
  elapsed_ns : float;
  stats : Wool.Stats.t;  (** aggregate counters of the run's pool *)
}

val run : ?workers:int -> ?quick:bool -> string -> row list
(** [run ~workers ~quick name] sweeps workload [name] (default 4 workers)
    and returns the measured rows (also printed). [quick] restricts the
    sweep to one run per selector under the default backoff — the smoke
    configuration. Raises [Failure] on an unknown workload name. *)
