(* Locality policy grid ("woolbench policy --grid"): simulate a
   steal-heavy workload at production-scale virtual core counts on a
   multi-socket topology, once per locality-relevant selector, and report
   where hierarchical stealing crosses over flat random. The simulator is
   deterministic, so the grid doubles as a regression gate: --compare
   diffs a committed JSON snapshot cell by cell (including trace hashes)
   and any drift fails loudly. *)

module Table = Wool_util.Table
module Json = Wool_trace.Json
module E = Wool_sim.Engine
module Topology = Wool_policy.Topology
module Hier = Wool_policy.Hier
module Selector = Wool_policy.Selector
module Spec = Exp_common.Spec

let schema_version = "wool-policy-grid/1"
let default_seed = 42
let default_sockets = 4
let default_workers = [ 16; 32; 64 ]

(* Steal-heavy by construction: 2^12 leaves of ~200 cycles against a
   ~1200-cycle steal makes victim choice, not work, the bottleneck. *)
let default_height = 15
let default_leaf_iters = 300

type cell = {
  workers : int;
  selector : string;
  time : int;
  steals : int;
  remote : int;
  failed : int;
  hash : string;  (** trace hash as hex — the strongest determinism pin *)
}

type grid = {
  schema : string;
  seed : int;
  sockets : int;
  descr : string;
  cells : cell list;
}

(* The locality-relevant corner of the selector space: the flat default,
   the socket-biased flat selector, and hierarchical probing matched to
   the grid's socket count. *)
let selectors sockets =
  [
    Selector.Random_victim;
    Selector.Socket_local;
    Selector.Hierarchical (Hier.auto ~sockets ());
  ]

let str s = "\"" ^ Json.escape s ^ "\""

let hex_of_hash h = Printf.sprintf "%Lx" (Int64.of_int h)

let run_cell ~seed ~sockets ~tree ~workers selector =
  let topology = Topology.make ~sockets ~workers () in
  let steal_policy = Wool_policy.make ~selector () in
  let r =
    E.run ~seed ~steal_policy ~topology ~policy:Wool_sim.Policy.wool ~workers
      tree
  in
  {
    workers;
    selector = Selector.name selector;
    time = r.E.time;
    steals = r.E.steals;
    remote = r.E.remote_steals;
    failed = r.E.failed_steals;
    hash = hex_of_hash r.E.trace_hash;
  }

let compute ?(seed = default_seed) ?(sockets = default_sockets)
    ?(workers = default_workers) ?(height = default_height)
    ?(leaf_iters = default_leaf_iters) () =
  let tree = Wool_workloads.Stress.tree ~height ~leaf_iters in
  let descr = Printf.sprintf "stress(height=%d,leaf_iters=%d)" height
      leaf_iters in
  let cells =
    List.concat_map
      (fun w ->
        List.map (run_cell ~seed ~sockets ~tree ~workers:w) (selectors sockets))
      workers
  in
  { schema = schema_version; seed; sockets; descr; cells }

let find_cell g ~workers ~selector =
  List.find_opt (fun c -> c.workers = workers && c.selector = selector) g.cells

let print g =
  Printf.printf
    "== locality policy grid: %s, %d sockets, seed %d (simulated) ==\n"
    g.descr g.sockets g.seed;
  let tbl =
    Table.create ~title:"simulated grid"
      ~header:[ "p"; "policy"; "cycles"; "steals"; "remote"; "failed" ]
      ()
  in
  List.iter
    (fun c ->
      Table.add_row tbl
        [ string_of_int c.workers; c.selector; Table.cell_i c.time;
          Table.cell_i c.steals; Table.cell_i c.remote; Table.cell_i c.failed ])
    g.cells;
  Table.print tbl;
  (* The crossover summary: hierarchical vs flat random, per core count. *)
  let worker_counts =
    List.sort_uniq Stdlib.compare (List.map (fun c -> c.workers) g.cells)
  in
  List.iter
    (fun w ->
      let hier =
        List.find_opt
          (fun c ->
            c.workers = w
            && String.length c.selector >= 4
            && String.sub c.selector 0 4 = "hier")
          g.cells
      in
      match (find_cell g ~workers:w ~selector:"random", hier) with
      | Some r, Some h ->
          let pct a b =
            if b = 0 then 0.0
            else 100.0 *. (float_of_int (b - a) /. float_of_int b)
          in
          Printf.printf
            "p=%-3d hier vs random: remote steals %d vs %d (-%.0f%%), time %d \
             vs %d (%+.1f%%)\n"
            w h.remote r.remote (pct h.remote r.remote) h.time r.time
            (-.pct h.time r.time)
      | _ -> ())
    worker_counts

(* ---- JSON snapshot ---- *)

let cell_to_buf b c =
  Buffer.add_string b
    (Printf.sprintf
       "{\"workers\":%d,\"selector\":%s,\"time\":%d,\"steals\":%d,\
        \"remote\":%d,\"failed\":%d,\"hash\":%s}"
       c.workers (str c.selector) c.time c.steals c.remote c.failed
       (str c.hash))

let to_json g =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%s,\"seed\":%d,\"sockets\":%d,\"descr\":%s"
       (str g.schema) g.seed g.sockets (str g.descr));
  Buffer.add_string b ",\"cells\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      cell_to_buf b c)
    g.cells;
  Buffer.add_string b "]}\n";
  let body = Buffer.contents b in
  (match Json.validate body with
  | Ok () -> ()
  | Error msg -> failwith ("Policy_grid.to_json: emitted invalid JSON: " ^ msg));
  body

let of_json body =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let need what = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "policy grid JSON: missing %s" what)
  in
  let int_field name t =
    let* v = need name (Option.bind (Json.member name t) Json.to_float) in
    Ok (int_of_float v)
  in
  let str_field name t =
    need name (Option.bind (Json.member name t) Json.to_string)
  in
  let* t =
    match Json.parse body with
    | Ok t -> Ok t
    | Error msg -> Error ("policy grid JSON: " ^ msg)
  in
  let* schema = str_field "schema" t in
  if schema <> schema_version then
    Error
      (Printf.sprintf "policy grid JSON: schema %S, expected %S" schema
         schema_version)
  else
    let* seed = int_field "seed" t in
    let* sockets = int_field "sockets" t in
    let* descr = str_field "descr" t in
    let* cells = need "cells" (Option.bind (Json.member "cells" t) Json.to_list) in
    let* cells =
      List.fold_left
        (fun acc ct ->
          let* acc = acc in
          let* workers = int_field "workers" ct in
          let* selector = str_field "selector" ct in
          let* time = int_field "time" ct in
          let* steals = int_field "steals" ct in
          let* remote = int_field "remote" ct in
          let* failed = int_field "failed" ct in
          let* hash = str_field "hash" ct in
          Ok ({ workers; selector; time; steals; remote; failed; hash } :: acc))
        (Ok []) cells
    in
    Ok { schema; seed; sockets; descr; cells = List.rev cells }

let write_file path g =
  let oc = open_out path in
  output_string oc (to_json g);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  of_json body

(* Exact diff: the simulator is deterministic, so any difference at all
   is a behaviour change somebody must own (and re-commit the snapshot
   for). *)
let compare_grids ~baseline ~fresh =
  let issues = ref [] in
  let push fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  if baseline.seed <> fresh.seed then
    push "seed: baseline %d, fresh %d" baseline.seed fresh.seed;
  if baseline.sockets <> fresh.sockets then
    push "sockets: baseline %d, fresh %d" baseline.sockets fresh.sockets;
  if baseline.descr <> fresh.descr then
    push "workload: baseline %s, fresh %s" baseline.descr fresh.descr;
  List.iter
    (fun bc ->
      match
        find_cell fresh ~workers:bc.workers ~selector:bc.selector
      with
      | None -> push "cell %d/%s: missing from fresh grid" bc.workers bc.selector
      | Some fc ->
          let diff name a b =
            if a <> b then
              push "cell %d/%s %s: baseline %d, now %d" bc.workers bc.selector
                name a b
          in
          diff "time" bc.time fc.time;
          diff "steals" bc.steals fc.steals;
          diff "remote" bc.remote fc.remote;
          diff "failed" bc.failed fc.failed;
          if bc.hash <> fc.hash then
            push "cell %d/%s hash: baseline %s, now %s" bc.workers bc.selector
              bc.hash fc.hash)
    baseline.cells;
  List.iter
    (fun fc ->
      if find_cell baseline ~workers:fc.workers ~selector:fc.selector = None
      then push "cell %d/%s: not in baseline" fc.workers fc.selector)
    fresh.cells;
  List.rev !issues

(* ---- the real-runtime half of the smoke check ---- *)

let real_check ?(workers = 4) () =
  let spec = Spec.find "fib" in
  let selector = Selector.Hierarchical (Hier.auto ~sockets:2 ()) in
  let policy = Wool_policy.make ~selector () in
  let expected = spec.Spec.serial () in
  let config = Wool.Config.make ~workers ~policy () in
  let got, stats =
    Wool.with_pool ~config (fun pool ->
        let got = Wool.run pool spec.Spec.wool in
        (got, Wool.Stats.aggregate pool))
  in
  if got <> expected then
    failwith
      (Printf.sprintf
         "policy grid real-pool check: %s under %s returned %d, serial says %d"
         spec.Spec.descr (Wool_policy.name policy) got expected);
  Printf.printf
    "real-pool hierarchical check: %s ok under %s (%d workers, %d steals, %d \
     failed)\n"
    spec.Spec.descr (Wool_policy.name policy) workers stats.Wool.Pool.steals
    stats.Wool.Pool.failed_steals
