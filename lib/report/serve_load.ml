(* Open-loop latency-SLO load generator ("woolbench serve"): external
   producer domains submit jobs into a server-mode pool through
   {!Wool.Submit} at scheduled Poisson arrival times — sustained and
   bursty — and the report gives the ingress verdicts (admit / reject /
   shed) next to sojourn-time percentiles (p50/p99/p999).

   Open loop means the arrival process never waits for the system:
   arrival k+1 is scheduled one exponential gap after arrival k's
   *scheduled* time, not after its completion, and a producer that falls
   behind submits back-to-back until it catches up. Latency is measured
   from the scheduled arrival, so queueing delay caused by overload is
   charged to the jobs that suffered it (no coordinated omission). *)

module Clock = Wool_util.Clock
module Stats = Wool_util.Stats
module Rng = Wool_util.Rng
module Table = Wool_util.Table
module Json = Wool_trace.Json

let schema_version = "wool-serve/1"

type arrival = Sustained | Bursty

let arrival_name = function Sustained -> "sustained" | Bursty -> "bursty"

type row = {
  mode : string;
  arrival : string;
  offered : int;  (** submissions attempted (ingress [submitted]) *)
  admitted : int;
  rejected : int;
  shed : int;
  executed : int;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  throughput : float;  (** executed jobs per second of wall clock *)
  elapsed_s : float;
  violations : string list;  (** {!Wool.Invariants.check}, post-quiesce *)
}

(* Every mode, from the canonical table. The service job is idempotent
   (spin + timestamp; the ticket layer keeps the first completion), so
   the relaxed modes serve the same load. *)
let modes = List.map (fun m -> (Wool.Mode.name m, m)) Wool.Mode.all

let spin n =
  for i = 1 to n do
    ignore (Sys.opaque_identity i : int)
  done

(* Bursty traffic alternates 100ms phases at 1.8x / 0.2x the nominal
   rate — same offered average, but the on-phase overloads a lane that
   the sustained process keeps comfortably drained. *)
let burst_period_ns = 100_000_000

let effective_rate arrival rate ~now ~t_start =
  match arrival with
  | Sustained -> rate
  | Bursty ->
      if (now - t_start) / burst_period_ns mod 2 = 0 then rate *. 1.8
      else rate *. 0.2

(* One producer domain: submit at the scheduled arrival times until the
   deadline, return the tickets for the main domain to settle. *)
let producer pool ~seed ~pi ~arrival ~rate ~t_start ~stop_at ~service_spins
    () =
  let rng = Rng.make (seed + (0x9e3779 * (pi + 1))) in
  let tickets = ref [] in
  let next = ref (Clock.now_ns ()) in
  let rec loop () =
    let now = Clock.now_ns () in
    if now >= stop_at then ()
    else if now < !next then begin
      Unix.sleepf (float_of_int (!next - now) /. 1e9);
      loop ()
    end
    else begin
      let t0 = !next in
      let tk =
        Wool.Submit.submit ~idempotent:true pool (fun _ctx ->
            spin service_spins;
            Clock.now_ns () - t0)
      in
      tickets := tk :: !tickets;
      let r = effective_rate arrival rate ~now ~t_start in
      let u = Rng.float rng 1.0 in
      let gap_ns = Int.max 1_000 (int_of_float (-.log (1. -. u) /. r *. 1e9)) in
      next := !next + gap_ns;
      loop ()
    end
  in
  loop ();
  !tickets

let run_cell ~mode_name ~mode ~arrival ~producers ~workers ~rate_hz
    ~duration_s ~lane_capacity ~service_spins ~seed =
  (* [Reject] admission keeps the loop open: a full lane turns the
     submission around immediately instead of parking the producer *)
  let config =
    Wool.Config.make ~workers ~mode ~server:true ~injection_lanes:1
      ~injection_capacity:lane_capacity ~admission:Wool.Reject ~seed
      ~allow_relaxed:(Wool.Mode.is_relaxed mode) ()
  in
  Wool.with_pool ~config (fun pool ->
      let t_start = Clock.now_ns () in
      let stop_at = t_start + int_of_float (duration_s *. 1e9) in
      let rate = rate_hz /. float_of_int producers in
      let doms =
        List.init producers (fun pi ->
            Domain.spawn
              (producer pool ~seed ~pi ~arrival ~rate ~t_start ~stop_at
                 ~service_spins))
      in
      let tickets = List.concat_map Domain.join doms in
      let latencies =
        List.filter_map
          (fun tk ->
            match Wool.Submit.await tk with
            | ns -> Some (float_of_int ns)
            | exception Wool.Submission_rejected -> None)
          tickets
      in
      let elapsed_s = float_of_int (Clock.now_ns () - t_start) /. 1e9 in
      let ig = Wool.ingress_stats pool in
      let violations = Wool.Invariants.check pool in
      let lats = Array.of_list latencies in
      let pct p = if lats = [||] then 0. else Stats.percentile lats p /. 1e6 in
      {
        mode = mode_name;
        arrival = arrival_name arrival;
        offered = ig.Wool.Pool.submitted;
        admitted = ig.Wool.Pool.admitted;
        rejected = ig.Wool.Pool.rejected;
        shed = ig.Wool.Pool.shed;
        executed = ig.Wool.Pool.executed;
        p50_ms = pct 50.0;
        p99_ms = pct 99.0;
        p999_ms = pct 99.9;
        throughput = float_of_int ig.Wool.Pool.executed /. elapsed_s;
        elapsed_s;
        violations;
      })

let measure ?(producers = 2) ?(workers = 2) ?(rate_hz = 200.) ?(duration_s = 1.0)
    ?(lane_capacity = 64) ?(service_spins = 2_000) ?(seed = 42) () =
  if producers < 1 then invalid_arg "Serve_load.measure: producers < 1";
  if workers < 1 then invalid_arg "Serve_load.measure: workers < 1";
  if rate_hz <= 0. then invalid_arg "Serve_load.measure: rate_hz <= 0";
  if duration_s <= 0. then invalid_arg "Serve_load.measure: duration_s <= 0";
  List.concat_map
    (fun (mode_name, mode) ->
      List.map
        (fun arrival ->
          run_cell ~mode_name ~mode ~arrival ~producers ~workers ~rate_hz
            ~duration_s ~lane_capacity ~service_spins ~seed)
        [ Sustained; Bursty ])
    modes

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let add_float b v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
  else Buffer.add_string b "null"

let to_json ~date ~producers ~workers ~rate_hz ~duration_s rows =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "{\"schema\":%S,\"date\":%S,\"producers\":%d,\"workers\":%d"
    schema_version date producers workers;
  Printf.bprintf b ",\"rate_hz\":";
  add_float b rate_hz;
  Printf.bprintf b ",\"duration_s\":";
  add_float b duration_s;
  Buffer.add_string b ",\"rows\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Printf.bprintf b
        "{\"mode\":%S,\"arrival\":%S,\"offered\":%d,\"admitted\":%d,\"rejected\":%d,\"shed\":%d,\"executed\":%d"
        r.mode r.arrival r.offered r.admitted r.rejected r.shed r.executed;
      List.iter
        (fun (k, v) ->
          Printf.bprintf b ",\"%s\":" k;
          add_float b v)
        [
          ("p50_ms", r.p50_ms); ("p99_ms", r.p99_ms); ("p999_ms", r.p999_ms);
          ("throughput", r.throughput); ("elapsed_s", r.elapsed_s);
        ];
      Printf.bprintf b ",\"violations\":%d}" (List.length r.violations))
    rows;
  Buffer.add_string b "]}\n";
  let body = Buffer.contents b in
  (match Json.validate body with
  | Ok () -> ()
  | Error msg -> failwith ("Serve_load.to_json: emitted invalid JSON: " ^ msg));
  body

(* ------------------------------------------------------------------ *)
(* Rendering and driver                                                *)

let print_rows rows =
  let tbl =
    Table.create ~title:"open-loop ingress load (latency = sojourn, ms)"
      ~header:
        [
          "mode"; "arrival"; "offered"; "admit"; "reject"; "shed"; "exec";
          "p50"; "p99"; "p999"; "jobs/s"; "oracle";
        ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          r.mode; r.arrival; Table.cell_i r.offered; Table.cell_i r.admitted;
          Table.cell_i r.rejected; Table.cell_i r.shed;
          Table.cell_i r.executed; Table.cell_f ~dec:2 r.p50_ms;
          Table.cell_f ~dec:2 r.p99_ms; Table.cell_f ~dec:2 r.p999_ms;
          Table.cell_f ~dec:0 r.throughput;
          (match r.violations with
          | [] -> "ok"
          | vs -> Printf.sprintf "%d VIOLATIONS" (List.length vs));
        ])
    rows;
  Table.print tbl;
  List.iter
    (fun r ->
      List.iter
        (fun v -> Printf.printf "!! %s/%s: %s\n" r.mode r.arrival v)
        r.violations)
    rows;
  List.length (List.filter (fun r -> r.violations <> []) rows)

let default_out ~date = Printf.sprintf "SERVE_%s.json" date

let run ?producers ?workers ?rate_hz ?duration_s ?lane_capacity
    ?service_spins ?seed ?out ?(check = false) ~date () =
  let rows =
    measure ?producers ?workers ?rate_hz ?duration_s ?lane_capacity
      ?service_spins ?seed ()
  in
  let bad = print_rows rows in
  let producers = Option.value ~default:2 producers in
  let workers = Option.value ~default:2 workers in
  let rate_hz = Option.value ~default:200. rate_hz in
  let duration_s = Option.value ~default:1.0 duration_s in
  let body = to_json ~date ~producers ~workers ~rate_hz ~duration_s rows in
  let out = match out with Some p -> p | None -> default_out ~date in
  let oc = open_out_bin out in
  output_string oc body;
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" out (List.length rows);
  if check then begin
    let ic = open_in_bin out in
    let len = in_channel_length ic in
    let body' = really_input_string ic len in
    close_in ic;
    match Json.validate body' with
    | Ok () -> print_endline "check: re-read JSON validates"
    | Error msg -> failwith (Printf.sprintf "check: %s: %s" out msg)
  end;
  bad
