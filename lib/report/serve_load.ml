(* Open-loop latency-SLO load generator ("woolbench serve"): external
   producer domains submit jobs into a server-mode pool through
   {!Wool.Submit} at scheduled Poisson arrival times — sustained,
   bursty, and overloaded — and the report gives the ingress verdicts
   (admit / reject / shed / expired / cancelled) next to sojourn-time
   percentiles and goodput (completions within the latency budget).

   Open loop means the arrival process never waits for the system:
   arrival k+1 is scheduled one exponential gap after arrival k's
   *scheduled* time, not after its completion, and a producer that falls
   behind submits back-to-back until it catches up. Latency is measured
   from the scheduled arrival, so queueing delay caused by overload is
   charged to the jobs that suffered it (no coordinated omission).

   The [Overload] arrival offers ~1.3x the pool's service capacity and
   stamps every job with a deadline; it runs twice per mode, once under
   [Block] admission (the baseline: producers park on a full lane, jobs
   go stale in the queue and expire at dequeue) and once under
   [Adaptive] admission (the feedback controller sheds at the door when
   the sojourn-latency EWMA crosses the target, so the jobs it does
   admit are still fresh enough to finish inside their budget). Every
   32nd overload submission arrives with its cancel token already set —
   an impatient client — so the cancelled column of the ledger is
   exercised too. *)

module Clock = Wool_util.Clock
module Stats = Wool_util.Stats
module Rng = Wool_util.Rng
module Table = Wool_util.Table
module Json = Wool_trace.Json

let schema_version = "wool-serve/2"
let schema_v1 = "wool-serve/1"

type arrival = Sustained | Bursty | Overload

let arrival_name = function
  | Sustained -> "sustained"
  | Bursty -> "bursty"
  | Overload -> "overload"

type row = {
  mode : string;
  arrival : string;
  admission : string;  (** admission policy the cell ran under *)
  offered : int;  (** submissions attempted (ingress [submitted]) *)
  admitted : int;
  rejected : int;
  shed : int;
  executed : int;
  expired : int;  (** dropped at dequeue: deadline already passed *)
  cancelled : int;  (** dropped at dequeue: token set before the run *)
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  throughput : float;  (** executed jobs per second of wall clock *)
  goodput : float;
      (** completions inside the per-job deadline per second; equals
          [throughput] for cells without deadlines *)
  target_ms : float;
      (** p99 sojourn target: twice the per-job deadline (0 = the cell
          has no deadline) *)
  elapsed_s : float;
  violations : string list;  (** {!Wool.Invariants.check}, post-quiesce *)
}

(* Every mode, from the canonical table. The service job is idempotent
   (spin + timestamp; the ticket layer keeps the first completion), so
   the relaxed modes serve the same load. *)
let modes = List.map (fun m -> (Wool.Mode.name m, m)) Wool.Mode.all

let spin n =
  for i = 1 to n do
    ignore (Sys.opaque_identity i : int)
  done

(* ns per spin iteration, measured: the overload cell sizes its service
   time in wall-clock terms (a fraction of the offered rate), so it
   needs the spin calibrated on the machine it runs on. *)
let calibrate_spin_ns () =
  spin 200_000 (* warm up *);
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Clock.now_ns () in
    spin 1_000_000;
    let ns = float_of_int (Clock.now_ns () - t0) /. 1e6 in
    if ns < !best then best := ns
  done;
  Float.max 0.05 !best

(* Bursty traffic alternates 100ms phases at 1.8x / 0.2x the nominal
   rate — same offered average, but the on-phase overloads a lane that
   the sustained process keeps comfortably drained. *)
let burst_period_ns = 100_000_000

let effective_rate arrival rate ~now ~t_start =
  match arrival with
  | Sustained | Overload -> rate
  | Bursty ->
      if (now - t_start) / burst_period_ns mod 2 = 0 then rate *. 1.8
      else rate *. 0.2

(* One producer domain: submit at the scheduled arrival times until the
   deadline, return the tickets for the main domain to settle. When the
   cell has a latency budget every job is stamped [scheduled + budget],
   and every 32nd submission carries a pre-cancelled token. *)
let producer pool ~seed ~pi ~arrival ~rate ~t_start ~stop_at ~service_spins
    ~budget_ns () =
  let rng = Rng.make (seed + (0x9e3779 * (pi + 1))) in
  let tickets = ref [] in
  let next = ref (Clock.now_ns ()) in
  let submitted = ref 0 in
  let rec loop () =
    let now = Clock.now_ns () in
    if now >= stop_at then ()
    else if now < !next then begin
      Unix.sleepf (float_of_int (!next - now) /. 1e9);
      loop ()
    end
    else begin
      let t0 = !next in
      let deadline =
        match budget_ns with Some b -> Some (t0 + b) | None -> None
      in
      let cancel =
        if budget_ns <> None && !submitted mod 32 = 31 then begin
          let c = Wool.Cancel.create () in
          Wool.Cancel.cancel c;
          Some c
        end
        else None
      in
      let tk =
        Wool.Submit.submit ~idempotent:true ?deadline ?cancel pool
          (fun _ctx ->
            spin service_spins;
            Clock.now_ns () - t0)
      in
      incr submitted;
      tickets := tk :: !tickets;
      let r = effective_rate arrival rate ~now ~t_start in
      let u = Rng.float rng 1.0 in
      let gap_ns = Int.max 1_000 (int_of_float (-.log (1. -. u) /. r *. 1e9)) in
      next := !next + gap_ns;
      loop ()
    end
  in
  loop ();
  !tickets

let run_cell ~mode_name ~mode ~arrival ~admission ~producers ~workers
    ~rate_hz ~duration_s ~lane_capacity ~service_spins ~budget_ns
    ~admission_target_ns ~seed =
  let config =
    Wool.Config.make ~workers ~mode ~server:true ~injection_lanes:1
      ~injection_capacity:lane_capacity ~admission ?admission_target_ns
      ~seed ~allow_relaxed:(Wool.Mode.is_relaxed mode) ()
  in
  Wool.with_pool ~config (fun pool ->
      let t_start = Clock.now_ns () in
      let stop_at = t_start + int_of_float (duration_s *. 1e9) in
      let rate = rate_hz /. float_of_int producers in
      let doms =
        List.init producers (fun pi ->
            Domain.spawn
              (producer pool ~seed ~pi ~arrival ~rate ~t_start ~stop_at
                 ~service_spins ~budget_ns))
      in
      let tickets = List.concat_map Domain.join doms in
      let latencies =
        List.filter_map
          (fun tk ->
            match Wool.Submit.await tk with
            | ns -> Some (float_of_int ns)
            | exception Wool.Submission_rejected -> None
            | exception Wool.Submission_expired -> None
            | exception Wool.Submit.Cancelled -> None)
          tickets
      in
      let elapsed_s = float_of_int (Clock.now_ns () - t_start) /. 1e9 in
      let ig = Wool.ingress_stats pool in
      let violations = Wool.Invariants.check pool in
      let lats = Array.of_list latencies in
      let pct p = if lats = [||] then 0. else Stats.percentile lats p /. 1e6 in
      let goodput =
        match budget_ns with
        | None -> float_of_int ig.Wool.Pool.executed /. elapsed_s
        | Some b ->
            let fb = float_of_int b in
            let good =
              Array.fold_left
                (fun acc l -> if l <= fb then acc + 1 else acc)
                0 lats
            in
            float_of_int good /. elapsed_s
      in
      {
        mode = mode_name;
        arrival = arrival_name arrival;
        admission = Wool.Config.admission_name admission;
        offered = ig.Wool.Pool.submitted;
        admitted = ig.Wool.Pool.admitted;
        rejected = ig.Wool.Pool.rejected;
        shed = ig.Wool.Pool.shed;
        executed = ig.Wool.Pool.executed;
        expired = ig.Wool.Pool.expired;
        cancelled = ig.Wool.Pool.cancelled;
        p50_ms = pct 50.0;
        p99_ms = pct 99.0;
        p999_ms = pct 99.9;
        throughput = float_of_int ig.Wool.Pool.executed /. elapsed_s;
        goodput;
        target_ms =
          (match budget_ns with
          | None -> 0.
          | Some b -> float_of_int (2 * b) /. 1e6);
        elapsed_s;
        violations;
      })

(* The serve matrix. Sustained and bursty run under [Reject] (the
   non-blocking open-loop baseline); the overload pattern runs twice,
   [Adaptive] vs [Block], so the report shows what the feedback
   controller buys over parking producers on a full lane. *)
let cells = [
  (Sustained, Wool.Reject);
  (Bursty, Wool.Reject);
  (Overload, Wool.Adaptive);
  (Overload, Wool.Block);
]

let default_arrivals = [ Sustained; Bursty; Overload ]

let measure ?(producers = 2) ?(workers = 2) ?(rate_hz = 200.)
    ?(duration_s = 1.0) ?(lane_capacity = 64) ?(service_spins = 2_000)
    ?(arrivals = default_arrivals) ?(seed = 42) () =
  if producers < 1 then invalid_arg "Serve_load.measure: producers < 1";
  if workers < 1 then invalid_arg "Serve_load.measure: workers < 1";
  if rate_hz <= 0. then invalid_arg "Serve_load.measure: rate_hz <= 0";
  if duration_s <= 0. then invalid_arg "Serve_load.measure: duration_s <= 0";
  if arrivals = [] then invalid_arg "Serve_load.measure: no arrivals";
  let spin_ns = calibrate_spin_ns () in
  (* The overload cell offers 4x the nominal rate and sizes the service
     time so the offered work is ~1.3x the pool's capacity. The per-job
     deadline is 8 nominal service times, and the cell's p99 sojourn
     target is twice that: dropping at dequeue once a job is a deadline
     past its arrival caps the queueing half of the sojourn, and the
     other half absorbs in-service dilation (wall time stretches well
     past the calibrated spin when worker domains outnumber cores). The
     adaptive controller holds the sojourn-wait EWMA to a quarter of
     the deadline, so the jobs it admits clear the lane with most of
     their budget unspent. *)
  let ov_rate = rate_hz *. 4. in
  let ov_service_ns = 1.3 *. float_of_int workers /. ov_rate *. 1e9 in
  let ov_spins =
    Int.max 1_000 (int_of_float (ov_service_ns /. spin_ns))
  in
  let budget_ns = int_of_float (8. *. ov_service_ns) in
  List.concat_map
    (fun (mode_name, mode) ->
      List.filter_map
        (fun (arrival, admission) ->
          if not (List.mem arrival arrivals) then None
          else
            match arrival with
            | Sustained | Bursty ->
                Some
                  (run_cell ~mode_name ~mode ~arrival ~admission ~producers
                     ~workers ~rate_hz ~duration_s ~lane_capacity
                     ~service_spins ~budget_ns:None ~admission_target_ns:None
                     ~seed)
            | Overload ->
                Some
                  (run_cell ~mode_name ~mode ~arrival ~admission ~producers
                     ~workers ~rate_hz:ov_rate ~duration_s ~lane_capacity
                     ~service_spins:ov_spins ~budget_ns:(Some budget_ns)
                     ~admission_target_ns:
                       (if admission = Wool.Adaptive then
                          Some (budget_ns / 4)
                        else None)
                     ~seed))
        cells)
    modes

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let add_float b v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
  else Buffer.add_string b "null"

type report = {
  schema : string;
  date : string;
  producers : int;
  workers : int;
  rate_hz : float;
  duration_s : float;
  rows : row list;
}

let to_json ~date ~producers ~workers ~rate_hz ~duration_s rows =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "{\"schema\":%S,\"date\":%S,\"producers\":%d,\"workers\":%d"
    schema_version date producers workers;
  Printf.bprintf b ",\"rate_hz\":";
  add_float b rate_hz;
  Printf.bprintf b ",\"duration_s\":";
  add_float b duration_s;
  Buffer.add_string b ",\"rows\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Printf.bprintf b
        "{\"mode\":%S,\"arrival\":%S,\"admission\":%S,\"offered\":%d,\"admitted\":%d,\"rejected\":%d,\"shed\":%d,\"executed\":%d,\"expired\":%d,\"cancelled\":%d"
        r.mode r.arrival r.admission r.offered r.admitted r.rejected r.shed
        r.executed r.expired r.cancelled;
      List.iter
        (fun (k, v) ->
          Printf.bprintf b ",\"%s\":" k;
          add_float b v)
        [
          ("p50_ms", r.p50_ms); ("p99_ms", r.p99_ms); ("p999_ms", r.p999_ms);
          ("throughput", r.throughput); ("goodput", r.goodput);
          ("target_ms", r.target_ms); ("elapsed_s", r.elapsed_s);
        ];
      Printf.bprintf b ",\"violations\":%d}" (List.length r.violations))
    rows;
  Buffer.add_string b "]}\n";
  let body = Buffer.contents b in
  (match Json.validate body with
  | Ok () -> ()
  | Error msg -> failwith ("Serve_load.to_json: emitted invalid JSON: " ^ msg));
  body

(* ---- decoding (schema tests; v1 documents stay readable) ---- *)

let ( let* ) o f = match o with Some v -> f v | None -> None

let float_member k t =
  match Json.member k t with
  | None -> None
  | Some Json.Null -> Some infinity (* inf round-trips as null *)
  | Some v -> Json.to_float v

let int_member k t =
  let* v = float_member k t in
  Some (int_of_float v)

let string_member k t =
  let* v = Json.member k t in
  Json.to_string v

let row_of_tree t =
  let* mode = string_member "mode" t in
  let* arrival = string_member "arrival" t in
  let* offered = int_member "offered" t in
  let* admitted = int_member "admitted" t in
  let* rejected = int_member "rejected" t in
  let* shed = int_member "shed" t in
  let* executed = int_member "executed" t in
  let* p50_ms = float_member "p50_ms" t in
  let* p99_ms = float_member "p99_ms" t in
  let* p999_ms = float_member "p999_ms" t in
  let* throughput = float_member "throughput" t in
  let* elapsed_s = float_member "elapsed_s" t in
  let* violations = int_member "violations" t in
  (* absent in v1 documents: every v1 cell ran under Reject with no
     budget, so the ledger columns default to zero and goodput to the
     raw throughput *)
  let admission =
    Option.value ~default:"reject" (string_member "admission" t)
  in
  let expired = Option.value ~default:0 (int_member "expired" t) in
  let cancelled = Option.value ~default:0 (int_member "cancelled" t) in
  let goodput = Option.value ~default:throughput (float_member "goodput" t) in
  let target_ms = Option.value ~default:0. (float_member "target_ms" t) in
  Some
    {
      mode; arrival; admission; offered; admitted; rejected; shed; executed;
      expired; cancelled; p50_ms; p99_ms; p999_ms; throughput; goodput;
      target_ms; elapsed_s;
      violations = List.init violations (fun i -> Printf.sprintf "v%d" i);
    }

let of_json body =
  match Json.parse body with
  | Error msg -> Error msg
  | Ok t -> (
      let report =
        let* schema = string_member "schema" t in
        if schema <> schema_version && schema <> schema_v1 then None
        else
          let* date = string_member "date" t in
          let* producers = int_member "producers" t in
          let* workers = int_member "workers" t in
          let* rate_hz = float_member "rate_hz" t in
          let* duration_s = float_member "duration_s" t in
          let* rows = Json.member "rows" t in
          let* rows = Json.to_list rows in
          let rows = List.map row_of_tree rows in
          if List.exists (fun r -> r = None) rows then None
          else
            Some
              {
                schema; date; producers; workers; rate_hz; duration_s;
                rows = List.filter_map Fun.id rows;
              }
      in
      match report with
      | Some r -> Ok r
      | None ->
          Error
            (Printf.sprintf "not a %s document (or missing fields)"
               schema_version))

(* ------------------------------------------------------------------ *)
(* Rendering and driver                                                *)

let print_rows rows =
  let tbl =
    Table.create ~title:"open-loop ingress load (latency = sojourn, ms)"
      ~header:
        [
          "mode"; "arrival"; "adm"; "offered"; "admit"; "reject"; "shed";
          "expire"; "cancel"; "exec"; "p50"; "p99"; "tgt"; "good/s";
          "oracle";
        ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          r.mode; r.arrival; r.admission; Table.cell_i r.offered;
          Table.cell_i r.admitted; Table.cell_i r.rejected;
          Table.cell_i r.shed; Table.cell_i r.expired;
          Table.cell_i r.cancelled; Table.cell_i r.executed;
          Table.cell_f ~dec:2 r.p50_ms; Table.cell_f ~dec:2 r.p99_ms;
          (if r.target_ms = 0. then "-" else Table.cell_f ~dec:1 r.target_ms);
          Table.cell_f ~dec:0 r.goodput;
          (match r.violations with
          | [] -> "ok"
          | vs -> Printf.sprintf "%d VIOLATIONS" (List.length vs));
        ])
    rows;
  Table.print tbl;
  List.iter
    (fun r ->
      List.iter
        (fun v ->
          Printf.printf "!! %s/%s/%s: %s\n" r.mode r.arrival r.admission v)
        r.violations)
    rows;
  List.length (List.filter (fun r -> r.violations <> []) rows)

let default_out ~date = Printf.sprintf "SERVE_%s.json" date

let run ?producers ?workers ?rate_hz ?duration_s ?lane_capacity
    ?service_spins ?arrivals ?seed ?out ?(check = false) ~date () =
  let rows =
    measure ?producers ?workers ?rate_hz ?duration_s ?lane_capacity
      ?service_spins ?arrivals ?seed ()
  in
  let bad = print_rows rows in
  let producers = Option.value ~default:2 producers in
  let workers = Option.value ~default:2 workers in
  let rate_hz = Option.value ~default:200. rate_hz in
  let duration_s = Option.value ~default:1.0 duration_s in
  let body = to_json ~date ~producers ~workers ~rate_hz ~duration_s rows in
  let out = match out with Some p -> p | None -> default_out ~date in
  let oc = open_out_bin out in
  output_string oc body;
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" out (List.length rows);
  if check then begin
    let ic = open_in_bin out in
    let len = in_channel_length ic in
    let body' = really_input_string ic len in
    close_in ic;
    match of_json body' with
    | Ok _ -> print_endline "check: re-read JSON parses as wool-serve/2"
    | Error msg -> failwith (Printf.sprintf "check: %s: %s" out msg)
  end;
  bad
