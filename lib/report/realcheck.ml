module Rng = Wool_util.Rng
module Clock = Wool_util.Clock
module Ca = Wool_cactus.Cactus
module Spec = Exp_common.Spec

type cell = {
  kernel : string;
  scheduler : string;
  ok : bool;
  millis : float;
  spawns : int;
  steals : int;
}

(* Each kernel provides a runner against the Wool API and one against the
   steal-parent API, both returning a comparable digest. *)
type kernel = {
  name : string;
  serial : unit -> int;
  wool : Wool.ctx -> int;
  cactus : Ca.ctx -> int;
}

let digest_of_pairs arr =
  Array.fold_left (fun acc (a, b) -> (acc * 31) + (a * 7) + b) 0 arr

let digest_of_matrix = Spec.digest_of_matrix

(* The Wool and serial sides of the tier-1 kernels come from the shared
   spec table; only the steal-parent (cactus) ports — which need the raw
   input parameters — live here. *)
let of_spec name cactus =
  let s = Spec.find name in
  { name; serial = s.Spec.serial; wool = s.Spec.wool; cactus }

let fib_kernel =
  let n = Spec.fib_n Spec.Std in
  let rec cactus_fib ctx n =
    if n < 2 then n
    else begin
      let a = Ca.promise () and b = Ca.promise () in
      Ca.spawn_into ctx a (fun ctx -> cactus_fib ctx (n - 1));
      Ca.spawn_into ctx b (fun ctx -> cactus_fib ctx (n - 2));
      Ca.sync ctx;
      Ca.read a + Ca.read b
    end
  in
  of_spec "fib" (fun ctx -> cactus_fib ctx n)

let stress_kernel =
  let height = Spec.stress_height Spec.Std
  and leaf_iters = Spec.stress_leaf_iters Spec.Std in
  let module S = Wool_workloads.Stress in
  let rec cactus_tree ctx h =
    if h = 0 then S.serial ~height:0 ~leaf_iters
    else begin
      Ca.spawn ctx (fun ctx -> cactus_tree ctx (h - 1));
      Ca.spawn ctx (fun ctx -> cactus_tree ctx (h - 1));
      Ca.sync ctx
    end
  in
  of_spec "stress" (fun ctx ->
      S.reset_leaf_result ();
      cactus_tree ctx height;
      S.leaf_result ())

let mm_kernel =
  let n = Spec.mm_n Spec.Std in
  let module M = Wool_workloads.Mm in
  (* same matrices as the shared spec (seeds 11/12) so digests line up *)
  let a = M.random_matrix (Rng.make 11) n
  and b = M.random_matrix (Rng.make 12) n in
  let cactus_mm ctx =
    let c = Array.make_matrix n n 0.0 in
    (* row loop, steal-parent style *)
    for i = 0 to n - 1 do
      Ca.spawn ctx (fun _ ->
          let arow = a.(i) and crow = c.(i) in
          for j = 0 to n - 1 do
            let s = ref 0.0 in
            for k = 0 to n - 1 do
              s := !s +. (arow.(k) *. b.(k).(j))
            done;
            crow.(j) <- !s
          done)
    done;
    Ca.sync ctx;
    digest_of_matrix c
  in
  of_spec "mm" cactus_mm

let ssf_kernel =
  let s = Wool_workloads.Ssf.subject 9 in
  let module F = Wool_workloads.Ssf in
  (* steal-parent version: one spawned task per position *)
  let cactus ctx =
    let n = String.length s in
    let out = Array.make n (0, 0) in
    for i = 0 to n - 1 do
      Ca.spawn ctx (fun _ ->
          let best_pos = ref 0 and best_len = ref (-1) in
          for j = 0 to n - 1 do
            if j <> i then begin
              let k = ref 0 in
              while i + !k < n && j + !k < n && s.[i + !k] = s.[j + !k] do
                incr k
              done;
              if !k > !best_len then begin
                best_len := !k;
                best_pos := j
              end
            end
          done;
          out.(i) <- (!best_pos, !best_len))
    done;
    Ca.sync ctx;
    digest_of_pairs out
  in
  {
    name = "ssf";
    serial = (fun () -> digest_of_pairs (F.serial s));
    wool = (fun ctx -> digest_of_pairs (F.wool ctx s));
    cactus;
  }

let cholesky_kernel =
  let module Ch = Wool_workloads.Cholesky in
  let rng = Rng.make 5 in
  let a, size = Ch.random_spd rng ~n:48 ~nz:150 in
  let digest l = Ch.nonzeros l in
  {
    name = "cholesky";
    serial = (fun () -> digest (Ch.serial_factor a size));
    wool = (fun ctx -> digest (Ch.wool_factor ctx a size));
    cactus =
      (fun ctx ->
        (* the quadrant recursion needs futures; run the Wool algorithm's
           serial core under a single steal-parent task *)
        let p = Ca.promise () in
        Ca.spawn_into ctx p (fun _ -> digest (Ch.serial_factor a size));
        Ca.sync ctx;
        Ca.read p);
  }

let nqueens_kernel =
  let n = Spec.nqueens_n Spec.Std in
  let cactus ctx =
    let total = Atomic.make 0 in
    let ok col placed =
      let rec chk d = function
        | [] -> true
        | c :: rest -> c <> col && c - d <> col && c + d <> col && chk (d + 1) rest
      in
      chk 1 placed
    in
    let rec serial_from row placed =
      if row = n then 1
      else begin
        let count = ref 0 in
        for col = 0 to n - 1 do
          if ok col placed then
            count := !count + serial_from (row + 1) (col :: placed)
        done;
        !count
      end
    in
    (* spawn the first two rows; count serially below *)
    let rec go ctx row placed =
      if row >= 2 then
        ignore (Atomic.fetch_and_add total (serial_from row placed) : int)
      else begin
        for col = 0 to n - 1 do
          if ok col placed then
            Ca.spawn ctx (fun ctx -> go ctx (row + 1) (col :: placed))
        done;
        Ca.sync ctx
      end
    in
    go ctx 0 [];
    Atomic.get total
  in
  of_spec "nqueens" cactus

let knapsack_kernel =
  let module Kp = Wool_workloads.Knapsack in
  let rng = Rng.make 11 in
  let items = Kp.random_items rng ~n:16 ~max_weight:20 in
  let capacity = 70 in
  {
    name = "knapsack";
    serial = (fun () -> Kp.serial items ~capacity);
    wool = (fun ctx -> Kp.wool ctx items ~capacity);
    cactus =
      (fun ctx ->
        let p = Ca.promise () in
        Ca.spawn_into ctx p (fun _ -> Kp.serial items ~capacity);
        Ca.sync ctx;
        Ca.read p);
  }

let kernels =
  [
    fib_kernel; stress_kernel; mm_kernel; ssf_kernel; cholesky_kernel;
    nqueens_kernel; knapsack_kernel;
  ]

(* The exactly-once modes, from the canonical table: several kernels
   here (stress, sort, cholesky) mutate shared state and are not
   idempotent, so the relaxed modes sit this comparison out. *)
let wool_modes =
  Wool.Mode.all
  |> List.filter (fun m -> not (Wool.Mode.is_relaxed m))
  |> List.map (fun m -> ("wool/" ^ Wool.Mode.name m, m))

let compute ?(workers = 3) () =
  List.concat_map
    (fun k ->
      let expected = k.serial () in
      let wool_cells =
        List.map
          (fun (label, mode) ->
            Wool.with_pool ~config:(Wool.Config.make ~workers ~mode ()) (fun pool ->
                let result, ns =
                  Clock.time (fun () -> Wool.run pool (fun ctx -> k.wool ctx))
                in
                let s = Wool.Stats.aggregate pool in
                {
                  kernel = k.name;
                  scheduler = label;
                  ok = result = expected;
                  millis = ns /. 1e6;
                  spawns = s.Wool.Pool.spawns;
                  steals = s.Wool.Pool.steals;
                }))
          wool_modes
      in
      let cactus_cell =
        Ca.with_pool ~workers (fun pool ->
            let result, ns =
              Clock.time (fun () -> Ca.run pool (fun ctx -> k.cactus ctx))
            in
            let s = Ca.stats pool in
            {
              kernel = k.name;
              scheduler = "steal-parent";
              ok = result = expected;
              millis = ns /. 1e6;
              spawns = s.Ca.spawns;
              steals = s.Ca.steals;
            })
      in
      wool_cells @ [ cactus_cell ])
    kernels

let run () =
  print_endline "== Real-runtime verification matrix ==";
  let t =
    Wool_util.Table.create
      ~header:[ "kernel"; "scheduler"; "result"; "ms"; "spawns"; "steals" ]
      ()
  in
  let all_ok = ref true in
  List.iter
    (fun c ->
      if not c.ok then all_ok := false;
      Wool_util.Table.add_row t
        [
          c.kernel;
          c.scheduler;
          (if c.ok then "ok" else "FAIL");
          Wool_util.Table.cell_f ~dec:2 c.millis;
          Wool_util.Table.cell_i c.spawns;
          Wool_util.Table.cell_i c.steals;
        ])
    (compute ());
  Wool_util.Table.print t;
  if not !all_ok then failwith "realcheck: some kernels disagreed with serial"
