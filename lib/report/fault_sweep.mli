(** Seeded fault-injection stress runner ("woolbench faults").

    Sweeps {!Wool_fault.Plan.random} plans over every scheduler mode and
    the steal-policy grid, runs a fork-join fib under each combination,
    and holds the runtime to its protocol invariants afterwards
    ({!Wool.Invariants.check}): every descriptor EMPTY, deques drained,
    steal counters balanced, result correct. Plans with exception rules
    also prove the pool survives an injected task exception and is
    reusable for retries. *)

type row = {
  plan : Wool_fault.Plan.t;
  mode : Wool.mode;
  policy : Wool_policy.t;
  elapsed_ns : float;
      (** wall time of the whole episode, retries included *)
  runs : int;  (** total runs on the pool (1 + exception retries) *)
  exn_runs : int;  (** runs that ended in [Wool_fault.Injected] *)
  fires : int;  (** total fault fires, all sites and workers *)
  violations : string list;  (** invariant violations (must be empty) *)
}

val run_one :
  workers:int ->
  mode:Wool.mode ->
  policy:Wool_policy.t ->
  Wool_fault.Plan.t ->
  row
(** One pool, one plan: run (and retry past injected exceptions, each
    retry re-checking quiescence) until a run completes cleanly, then
    check the final invariants and shut down. *)

val sweep :
  ?workers:int -> ?seeds:int -> ?exceptions:bool -> unit -> row list
(** [seeds] (default 20) random plans per mode across all five modes,
    cycling the {!Wool_policy.sweep} grid over the seeds. Defaults:
    4 workers, exception rules included. *)

val print_rows : row list -> int
(** Print the sweep table plus any violations in full; returns the
    number of rows with violations (0 = green). *)

val overhead :
  ?workers:int -> ?arg:int -> ?reps:int -> unit -> (string * float) list
(** Measure the disabled-path cost on fib [arg] (default 30): faults
    absent vs. live-but-empty plan vs. watchdog sampling an otherwise
    untouched pool. Prints a table; returns [(label, median_ns)]. *)
