(** A dependency-free JSON well-formedness checker.

    The exporters in this library write JSON by hand (no ppx, no yojson);
    this validator is the other half of that bargain: tests and the
    [@trace-smoke] alias parse what was emitted and fail loudly on any
    malformed output. It checks syntax only (RFC 8259 grammar, without
    [\u] escape-range pedantry) and builds no document tree. *)

val validate : string -> (unit, string) result
(** [Ok ()] if the whole string is one valid JSON value; [Error msg]
    pinpoints the first offending offset otherwise. *)

val escape : string -> string
(** Escape a string for inclusion inside JSON double quotes. *)

(** A parsed JSON document. Numbers are floats (RFC 8259 makes no
    int/float distinction); object members keep their textual order. *)
type tree =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of tree list
  | Obj of (string * tree) list

val parse : string -> (tree, string) result
(** Parse one JSON value — same grammar as {!validate}, building the
    tree. Needed where emitted files are read back (the benchmark
    harness's [--compare] mode). *)

val member : string -> tree -> tree option
(** Object member lookup; [None] on a non-object or a missing key. *)

val to_float : tree -> float option
val to_string : tree -> string option
val to_list : tree -> tree list option
