let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

exception Bad of int * string

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l
    else fail ("expected " ^ lit)
  in
  let string_ () =
    expect '"';
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> incr pos
               | 'u' ->
                   if !pos + 4 >= n then fail "short \\u escape";
                   for k = 1 to 4 do
                     match s.[!pos + k] with
                     | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                     | _ -> fail "bad \\u escape"
                   done;
                   pos := !pos + 5
               | _ -> fail "bad escape");
            go ()
        | c when Char.code c < 0x20 -> fail "control char in string"
        | _ ->
            incr pos;
            go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then incr pos;
    let digits () =
      let start = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = start then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ())
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | None -> fail "expected value"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos
        else begin
          let rec members () =
            skip_ws ();
            string_ ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ()
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos
        else begin
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ()
        end
    | Some '"' -> string_ ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c));
    skip_ws ()
  in
  match
    value ();
    if !pos <> n then fail "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "invalid JSON at offset %d: %s" at msg)

(* ---- parsing ----

   The benchmark harness compares BENCH_*.json files across commits, which
   needs actual values, not just well-formedness. Same grammar as
   [validate], building a document tree. *)

type tree =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of tree list
  | Obj of (string * tree) list

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l
    else fail ("expected " ^ lit)
  in
  let string_ () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; incr pos
               | '\\' -> Buffer.add_char b '\\'; incr pos
               | '/' -> Buffer.add_char b '/'; incr pos
               | 'b' -> Buffer.add_char b '\b'; incr pos
               | 'f' -> Buffer.add_char b '\012'; incr pos
               | 'n' -> Buffer.add_char b '\n'; incr pos
               | 'r' -> Buffer.add_char b '\r'; incr pos
               | 't' -> Buffer.add_char b '\t'; incr pos
               | 'u' ->
                   if !pos + 4 >= n then fail "short \\u escape";
                   let code = ref 0 in
                   for k = 1 to 4 do
                     let d =
                       match s.[!pos + k] with
                       | '0' .. '9' as c -> Char.code c - Char.code '0'
                       | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                       | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                       | _ -> fail "bad \\u escape"
                     in
                     code := (!code * 16) + d
                   done;
                   (match Uchar.of_int !code with
                   | u -> Buffer.add_utf_8_uchar b u
                   | exception Invalid_argument _ ->
                       Buffer.add_utf_8_uchar b Uchar.rep);
                   pos := !pos + 5
               | _ -> fail "bad escape");
            go ()
        | c when Char.code c < 0x20 -> fail "control char in string"
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    let v =
      match peek () with
      | None -> fail "expected value"
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = string_ () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else begin
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elements (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (elements [])
          end
      | Some '"' -> Str (string_ ())
      | Some 't' ->
          literal "true";
          Bool true
      | Some 'f' ->
          literal "false";
          Bool false
      | Some 'n' ->
          literal "null";
          Null
      | Some ('-' | '0' .. '9') -> Num (number ())
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    skip_ws ();
    v
  in
  match
    let v = value () in
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "invalid JSON at offset %d: %s" at msg)

(* Accessors over a parsed tree; total, returning options. *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
