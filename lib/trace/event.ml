type tag =
  | Spawn
  | Inline_private
  | Inline_public
  | Join_stolen
  | Steal_attempt
  | Steal_ok
  | Steal_backoff
  | Leap_steal
  | Publish
  | Privatize
  | Nap_enter
  | Nap_exit
  | Submit
  | Admit
  | Reject
  | Dequeue_injected

type t = { ts : int; worker : int; tag : tag; a : int; b : int }

let n_tags = 16

let[@inline] tag_to_int = function
  | Spawn -> 0
  | Inline_private -> 1
  | Inline_public -> 2
  | Join_stolen -> 3
  | Steal_attempt -> 4
  | Steal_ok -> 5
  | Steal_backoff -> 6
  | Leap_steal -> 7
  | Publish -> 8
  | Privatize -> 9
  | Nap_enter -> 10
  | Nap_exit -> 11
  | Submit -> 12
  | Admit -> 13
  | Reject -> 14
  | Dequeue_injected -> 15

let tag_of_int = function
  | 0 -> Some Spawn
  | 1 -> Some Inline_private
  | 2 -> Some Inline_public
  | 3 -> Some Join_stolen
  | 4 -> Some Steal_attempt
  | 5 -> Some Steal_ok
  | 6 -> Some Steal_backoff
  | 7 -> Some Leap_steal
  | 8 -> Some Publish
  | 9 -> Some Privatize
  | 10 -> Some Nap_enter
  | 11 -> Some Nap_exit
  | 12 -> Some Submit
  | 13 -> Some Admit
  | 14 -> Some Reject
  | 15 -> Some Dequeue_injected
  | _ -> None

let tag_name = function
  | Spawn -> "spawn"
  | Inline_private -> "inline_private"
  | Inline_public -> "inline_public"
  | Join_stolen -> "join_stolen"
  | Steal_attempt -> "steal_attempt"
  | Steal_ok -> "steal_ok"
  | Steal_backoff -> "steal_backoff"
  | Leap_steal -> "leap_steal"
  | Publish -> "publish"
  | Privatize -> "privatize"
  | Nap_enter -> "nap_enter"
  | Nap_exit -> "nap_exit"
  | Submit -> "submit"
  | Admit -> "admit"
  | Reject -> "reject"
  | Dequeue_injected -> "dequeue_injected"

let all_tags =
  [|
    Spawn; Inline_private; Inline_public; Join_stolen; Steal_attempt;
    Steal_ok; Steal_backoff; Leap_steal; Publish; Privatize; Nap_enter;
    Nap_exit; Submit; Admit; Reject; Dequeue_injected;
  |]

let tag_of_name s =
  let rec go i =
    if i >= n_tags then None
    else if tag_name all_tags.(i) = s then Some all_tags.(i)
    else go (i + 1)
  in
  go 0

let to_json e =
  Printf.sprintf {|{"ts":%d,"w":%d,"tag":"%s","a":%d,"b":%d}|} e.ts e.worker
    (tag_name e.tag) e.a e.b

(* Parses exactly the shape [to_json] emits (fields in any order,
   whitespace tolerated). *)
let of_json_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith ("Event.of_json_exn: " ^ msg) in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos >= n || s.[!pos] <> c then
      fail (Printf.sprintf "expected '%c' at %d" c !pos);
    incr pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    while !pos < n && s.[!pos] <> '"' do
      Buffer.add_char b s.[!pos];
      incr pos
    done;
    expect '"';
    Buffer.contents b
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if !pos < n && s.[!pos] = '-' then incr pos;
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
      incr pos
    done;
    if !pos = start then fail "expected integer";
    int_of_string (String.sub s start (!pos - start))
  in
  let ts = ref None and w = ref None and tag = ref None in
  let a = ref None and b = ref None in
  expect '{';
  let rec fields () =
    let key = parse_string () in
    expect ':';
    (match key with
    | "ts" -> ts := Some (parse_int ())
    | "w" -> w := Some (parse_int ())
    | "a" -> a := Some (parse_int ())
    | "b" -> b := Some (parse_int ())
    | "tag" -> (
        let name = parse_string () in
        match tag_of_name name with
        | Some t -> tag := Some t
        | None -> fail ("unknown tag " ^ name))
    | k -> fail ("unknown field " ^ k));
    skip_ws ();
    if !pos < n && s.[!pos] = ',' then begin
      incr pos;
      fields ()
    end
  in
  fields ();
  expect '}';
  match (!ts, !w, !tag, !a, !b) with
  | Some ts, Some worker, Some tag, Some a, Some b ->
      { ts; worker; tag; a; b }
  | _ -> fail "missing field"

let pp fmt e =
  Format.fprintf fmt "[%d] w%d %s a=%d b=%d" e.ts e.worker (tag_name e.tag)
    e.a e.b
