type t = {
  events : int;
  dropped : int;
  per_tag : int array;
  per_worker : int array;
  steal_latency : int array;
  steal_distance : int array;
}

let n_buckets = 40

let[@inline] bucket v =
  let v = max 0 v in
  let rec go k b = if v < b || k = n_buckets - 1 then k else go (k + 1) (b * 2) in
  go 0 2

let make ?(dropped = 0) events =
  let per_tag = Array.make Event.n_tags 0 in
  let max_worker =
    Array.fold_left (fun m e -> max m e.Event.worker) (-1) events
  in
  let per_worker = Array.make (max_worker + 1) 0 in
  let steal_latency = Array.make n_buckets 0 in
  let steal_distance = Array.make n_buckets 0 in
  (* nearest preceding Steal_attempt per worker *)
  let last_attempt = Array.make (max_worker + 1) min_int in
  Array.iter
    (fun e ->
      per_tag.(Event.tag_to_int e.Event.tag) <-
        per_tag.(Event.tag_to_int e.Event.tag) + 1;
      per_worker.(e.Event.worker) <- per_worker.(e.Event.worker) + 1;
      match e.Event.tag with
      | Event.Steal_attempt -> last_attempt.(e.Event.worker) <- e.Event.ts
      | Event.Steal_ok ->
          (if last_attempt.(e.Event.worker) <> min_int then
             let lat = e.Event.ts - last_attempt.(e.Event.worker) in
             steal_latency.(bucket lat) <- steal_latency.(bucket lat) + 1);
          if e.Event.b >= 0 then begin
            let d = abs (e.Event.worker - e.Event.b) in
            steal_distance.(bucket d) <- steal_distance.(bucket d) + 1
          end
      | _ -> ())
    events;
  {
    events = Array.length events;
    dropped;
    per_tag;
    per_worker;
    steal_latency;
    steal_distance;
  }

let count t tag = t.per_tag.(Event.tag_to_int tag)
let steals_observed t = count t Event.Steal_ok

let hist_rows hist =
  (* last non-empty bucket bounds the printed range *)
  let last = ref (-1) in
  Array.iteri (fun i v -> if v > 0 then last := i) hist;
  List.init (!last + 1) (fun k ->
      let lo = if k = 0 then 0 else 1 lsl k in
      let hi = (1 lsl (k + 1)) - 1 in
      (Printf.sprintf "%d..%d" lo hi, hist.(k)))

let render ?(time_unit = "ns") t =
  let buf = Buffer.create 1024 in
  let tags = Wool_util.Table.create ~title:"events by tag" ~header:[ "tag"; "count" ] () in
  Array.iter
    (fun tag ->
      let c = count t tag in
      if c > 0 then
        Wool_util.Table.add_row tags
          [ Event.tag_name tag; Wool_util.Table.cell_i c ])
    Event.all_tags;
  Buffer.add_string buf (Wool_util.Table.render tags);
  Buffer.add_string buf
    (Printf.sprintf "total %d events (%d dropped), workers:" t.events t.dropped);
  Array.iteri
    (fun w c -> Buffer.add_string buf (Printf.sprintf " w%d=%d" w c))
    t.per_worker;
  Buffer.add_char buf '\n';
  let add_hist title unit hist =
    if Array.exists (fun v -> v > 0) hist then begin
      let tb =
        Wool_util.Table.create ~title ~header:[ unit; "steals" ] ()
      in
      List.iter
        (fun (range, v) ->
          Wool_util.Table.add_row tb [ range; Wool_util.Table.cell_i v ])
        (hist_rows hist);
      Buffer.add_string buf (Wool_util.Table.render tb)
    end
  in
  add_hist "steal latency (attempt -> ok)" time_unit t.steal_latency;
  add_hist "steal distance (|thief - victim|)" "workers" t.steal_distance;
  Buffer.contents buf
