(** Chrome [trace_event] JSON exporter.

    Writes the "JSON object format" understood by [chrome://tracing] and
    Perfetto: one process, one thread lane per worker, every scheduler
    event as a thread-scoped instant with its [a]/[b] operands in [args].
    Timestamps are converted from the event unit (nanoseconds on the real
    runtime, virtual cycles in the simulator) to the format's microseconds
    via [ts_per_us] (default 1000, i.e. nanoseconds). *)

val to_string :
  ?process_name:string -> ?ts_per_us:float -> Event.t array -> string
(** Serialise the events (any order; emitted as given). The result always
    validates under {!Json.validate}. *)

val write_file :
  ?process_name:string -> ?ts_per_us:float -> string -> Event.t array -> unit
(** [write_file path events] writes {!to_string} to [path]. *)
