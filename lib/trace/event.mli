(** The shared scheduler-event vocabulary.

    One tag per scheduler transition of the real runtime ({!Wool.Pool}) and
    of the simulator ({!Wool_sim.Engine}), so that measured event streams
    can be compared against simulated ones directly. An event is a flat
    record of small integers — cheap to store unboxed in a {!Ring} — plus
    the tag:

    - [ts]: monotonic timestamp. Nanoseconds for the real runtime,
      virtual cycles for the simulator.
    - [worker]: the worker that recorded the event (owner of the ring).
    - [a]: task depth / descriptor index when meaningful, [-1] otherwise.
    - [b]: the peer worker — victim for steal-side events, thief for
      [Join_stolen] — or [-1] when there is none (or it is unknown). *)

type tag =
  | Spawn  (** task pushed on the spawner's pool; [a] = descriptor index *)
  | Inline_private  (** join inlined a never-published descriptor *)
  | Inline_public  (** join inlined a published descriptor (synchronised) *)
  | Join_stolen
      (** join found the task stolen; [b] = thief id, [-1] if the thief
          had already finished when the owner looked *)
  | Steal_attempt  (** thief probes a victim; [b] = victim id *)
  | Steal_ok  (** successful steal; [a] = descriptor index, [b] = victim *)
  | Steal_backoff  (** §III-A delayed-thief ABA back-off; [b] = victim *)
  | Leap_steal  (** successful steal made while leapfrogging; [b] = victim *)
  | Publish  (** trip-wire sprung: public window extended *)
  | Privatize  (** adaptive window shrunk after inlined public joins *)
  | Nap_enter  (** idle thief starts a nap after a failed-steal burst *)
  | Nap_exit  (** idle thief wakes up *)
  | Submit
      (** external producer offers a job to the ingress; [a] = lane,
          [b] = batch size ([-1] for a single submit) *)
  | Admit  (** ingress accepted the job into a lane; [a] = lane *)
  | Reject
      (** ingress refused the job (full lane under [Reject], or pool
          shut down); [a] = lane, [-1] when refused before lane choice *)
  | Dequeue_injected
      (** an idle worker drained one injected job; [a] = lane *)

type t = { ts : int; worker : int; tag : tag; a : int; b : int }

val n_tags : int

val tag_to_int : tag -> int
(** Dense index in [0, n_tags); stable across versions of this module
    within one build (used as the on-ring encoding). *)

val tag_of_int : int -> tag option
(** Inverse of {!tag_to_int}; [None] outside [0, n_tags). *)

val tag_name : tag -> string
(** Short lowercase name, e.g. ["steal_ok"]; used in JSON output. *)

val tag_of_name : string -> tag option

val all_tags : tag array

val to_json : t -> string
(** One-line JSON object [{"ts":..,"w":..,"tag":"..","a":..,"b":..}]. *)

val of_json_exn : string -> t
(** Parse the output of {!to_json}. Raises [Failure] on malformed input —
    test/tooling helper, not a general JSON parser. *)

val pp : Format.formatter -> t -> unit
