(** Shared steal-policy layer.

    Faxén's protocol leaves two scheduler decisions open: {e which victim}
    an idle thief probes (§III leapfrogging aside, the paper uses uniform
    random), and {e how an idle thief backs off} when probes keep failing
    (§IV-D2a models the cost of each attempt). This library owns both
    decisions as first-class values so that the real runtime
    ({!Wool.Config}) and the discrete-event simulator
    ({!Wool_sim.Engine}) are driven by the {e same} policy value and can
    be compared under it.

    The library provides the pure policy vocabulary ({!Selector.t},
    {!Backoff.t}, {!t}) and the small per-worker state machines
    ({!Select}, {!Backoff.state}) both schedulers run, so victim choice
    cannot drift between measured and simulated runs. *)

module Selector : sig
  type t =
    | Random_victim  (** uniform among the other workers (the default) *)
    | Round_robin  (** cyclic scan over worker ids *)
    | Last_victim  (** stick to the last victim a steal succeeded on *)
    | Leapfrog_biased
        (** prefer the recorded thief of our own stolen tasks (the worker
            most recently seen holding work we are waiting on), falling
            back to uniform random *)
    | Socket_local
        (** prefer victims on our own socket 3 probes out of 4; needs a
            socket topology ([socket_of]) to be meaningful *)

  val all : t list
  (** Every selector, in declaration order. *)

  val name : t -> string
  val of_name : string -> t option
end

module Backoff : sig
  type t =
    | Nap_after of int
        (** nap once after every [n] consecutive failed steals — the
            historical behaviour ([Nap_after 64]) *)
    | Exponential of { streak : int; max_factor : int }
        (** after [streak] consecutive failures nap once; each subsequent
            nap doubles in length up to [max_factor] nap units, resetting
            on a successful steal *)
    | Yield_then_nap of { yields : int; naps : int }
        (** ladder: spin below [yields] failures, yield the timeslice up
            to [naps] failures, then nap *)

  val default : t
  (** [Nap_after 64]: bit-for-bit the historical idle loop. *)

  val all : t list
  (** One representative of each shape (for sweeps). *)

  val name : t -> string
  val of_name : string -> t option

  (** What the idle loop should do after one more failed steal. [Nap f]
      means sleep [f] nap units; the unit is the scheduler's
      ([idle_nap_ns] in the real runtime, [nap_cycles] in the
      simulator). *)
  type action = Relax | Yield | Nap of int

  type state
  (** Per-worker failure-streak tracker. Not thread-safe; one per
      worker. *)

  val make : t -> state
  val on_failure : state -> action
  (** Count one failed steal attempt and say how to back off. *)

  val on_success : state -> unit
  (** A steal succeeded: reset the streak (and the exponential ladder). *)
end

(** What a full injection lane does to a new submission — the
    backpressure half of the ingress path. Owned here (rather than by
    the runtime) for the same reason as {!Selector}: the load generator
    sweeps admission policies exactly as [woolbench policy] sweeps steal
    policies, and both sides must agree on the vocabulary. *)
module Admission : sig
  type t =
    | Block  (** the producer waits for a slot (closed-loop producers) *)
    | Reject  (** the submission's ticket resolves rejected immediately *)
    | Shed_oldest
        (** evict the oldest queued job (its ticket resolves rejected)
            to make room — latency-SLO serving, where a stale job is
            worth less than a fresh one *)
    | Adaptive
        (** feedback controller: sheds {e before} the lane fills when a
            sojourn-latency EWMA exceeds the pool's configured target
            ([admission_target_ns]), otherwise admits; a full lane
            rejects like {!Reject}. Turns overload into bounded-latency
            goodput instead of unbounded queueing *)

  val all : t list
  val name : t -> string
  val of_name : string -> t option
end

(** Per-worker victim-selection state machine. Both schedulers call
    [next] for every unpinned steal attempt and report outcomes back, so
    a given (seed, selector) pair yields the same victim sequence in the
    runtime and the simulator. *)
module Select : sig
  type state

  val make : ?socket_of:(int -> int) -> Selector.t -> self:int -> unit -> state
  (** [make selector ~self ()] for worker id [self]. [socket_of] maps a
      worker id to its socket (default: everything on socket 0), used
      only by {!Selector.Socket_local}. *)

  val next : state -> rng:Wool_util.Rng.t -> n:int -> int option
  (** Choose a victim among [n] workers ([None] iff [n <= 1]). Never
      returns [self]. Draws from [rng] only as the selector requires. *)

  val on_success : state -> victim:int -> unit
  (** A steal (pinned or not) succeeded on [victim]. *)

  val on_failure : state -> unit
  (** An {e unpinned} attempt failed: drop affinities (last victim /
      recorded thief) so the next probe falls back to random. *)

  val stolen_by : state -> thief:int -> unit
  (** One of our own tasks was seen stolen by [thief]
      ({!Selector.Leapfrog_biased} affinity). *)
end

type t = { selector : Selector.t; backoff : Backoff.t }
(** A complete steal policy: victim selection plus idle backoff. *)

val default : t
(** [{ selector = Random_victim; backoff = Nap_after 64 }] — exactly the
    behaviour both schedulers had before policies were configurable. *)

val make : ?selector:Selector.t -> ?backoff:Backoff.t -> unit -> t

val name : t -> string
(** ["<selector>/<backoff>"], e.g. ["random/nap64"]. *)

val of_name : string -> t option
(** Inverse of {!name}. *)

val pp : Format.formatter -> t -> unit

val sweep : unit -> t list
(** The full {!Selector.all} × {!Backoff.all} grid, selectors varying
    slowest — what [woolbench policy] benchmarks. *)
