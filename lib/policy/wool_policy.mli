(** Shared steal-policy layer.

    Faxén's protocol leaves two scheduler decisions open: {e which victim}
    an idle thief probes (§III leapfrogging aside, the paper uses uniform
    random), and {e how an idle thief backs off} when probes keep failing
    (§IV-D2a models the cost of each attempt). This library owns both
    decisions as first-class values so that the real runtime
    ({!Wool.Config}) and the discrete-event simulator
    ({!Wool_sim.Engine}) are driven by the {e same} policy value and can
    be compared under it.

    The library provides the pure policy vocabulary ({!Selector.t},
    {!Backoff.t}, {!t}), the machine shape it can exploit
    ({!Topology.t}, {!Hier.t}), and the small per-worker state machines
    ({!Select}, {!Backoff.state}) both schedulers run, so victim choice
    cannot drift between measured and simulated runs. *)

(** Three-level machine tree: worker → core → socket → machine.

    Steal cost is non-uniform on real machines — an SMT sibling shares
    cache lines, a socket peer shares the LLC, a cross-socket victim
    costs an interconnect round trip. The topology gives the
    {!Selector.Hierarchical} selector (and the simulator's cost model)
    that structure. Distances are 0 (self), 1 (same core), 2 (same
    socket), 3 (cross-socket). *)
module Topology : sig
  type t

  val levels : int
  (** [3]: core, socket, machine. *)

  val make : ?sockets:int -> ?smt:int -> workers:int -> unit -> t
  (** Uniform machine: [workers] hardware threads spread over [sockets]
      contiguous blocks (worker [w] on socket [w * sockets / workers] —
      the exact mapping the simulator's [~sockets] parameter always
      used), each socket filled with cores of [smt] threads. Defaults:
      one socket, no SMT. Raises [Invalid_argument] on non-positive
      arguments; [sockets] is clamped to [workers]. *)

  val of_spec : int array array -> t
  (** Explicit, possibly ragged shape: [spec.(s).(c)] is the SMT width
      of core [c] on socket [s]; worker ids are assigned in order.
      Raises [Invalid_argument] on empty sockets or non-positive
      widths. *)

  val workers : t -> int
  val sockets : t -> int
  val cores : t -> int
  val socket_of : t -> int -> int
  val core_of : t -> int -> int

  val distance : t -> int -> int -> int
  (** [distance t a b]: 0 iff [a = b], else 1 same core, 2 same socket,
      3 cross-socket. Symmetric. *)

  val peers : t -> int -> level:int -> int array
  (** Workers within [level] hops of the given worker, excluding
      itself, ascending. [peers t w ~level:3] is every other worker. *)

  val name : t -> string
  (** Sockets joined by [+]; each socket is ["<cores>"] (all single
      threads, e.g. ["4+4"]), ["<c>x<k>"] (uniform SMT [k]), or
      dot-joined widths for ragged sockets (["2.1.1"]). *)

  val of_name : string -> t option
  (** Inverse of {!name} (accepts any shape the grammar can spell). *)

  val pp : Format.formatter -> t -> unit
end

(** Parameters of the {!Selector.Hierarchical} selector: which topology
    to probe over and how eagerly to widen the probe radius. *)
module Hier : sig
  (** [Auto] builds a uniform {!Topology.t} from the worker count the
      scheduler reports at the first probe, so one policy value works
      for any pool size; [Fixed] pins an explicit shape (a pool whose
      size disagrees falls back to uniform random). *)
  type spec = Auto of { sockets : int; smt : int } | Fixed of Topology.t

  type t = private {
    spec : spec;
    probes : int array;
        (** failed probes tolerated at each inner radius (core, socket)
            before widening to the next *)
    escalate_pct : int array;
        (** percent chance a probe at an inner radius jumps one ring
            out anyway — keeps remote victims from starving *)
  }

  val default_probes : int array
  (** [[|2; 8|]]. *)

  val default_escalate_pct : int array
  (** [[|15; 8|]]. *)

  val make : ?probes:int array -> ?escalate_pct:int array -> spec -> t
  (** Raises [Invalid_argument] unless both arrays have
      [Topology.levels - 1] entries, probes positive, percentages in
      [0,100], and an [Auto] spec positive. *)

  val auto :
    ?probes:int array -> ?escalate_pct:int array -> ?smt:int ->
    sockets:int -> unit -> t

  val fixed : ?probes:int array -> ?escalate_pct:int array -> Topology.t -> t

  val default : t
  (** [auto ~sockets:2 ()]. *)

  val topology : t -> workers:int -> Topology.t option
  (** The concrete topology this policy probes over for a pool of
      [workers] ([None] iff a [Fixed] shape disagrees with the pool
      size, or [workers <= 0]). *)

  val name : t -> string
  (** ["hier<k>"] ([Auto], [k] sockets), ["hier<k>x<t>"] (SMT [t]),
      ["hier(<topology>)"] ([Fixed]); non-default knobs append
      [":p<a>.<b>"] and [":e<a>.<b>"]. *)

  val of_name : string -> t option
  val pp : Format.formatter -> t -> unit
end

module Selector : sig
  type t =
    | Random_victim  (** uniform among the other workers (the default) *)
    | Round_robin  (** cyclic scan over worker ids *)
    | Last_victim  (** stick to the last victim a steal succeeded on *)
    | Leapfrog_biased
        (** prefer the recorded thief of our own stolen tasks (the worker
            most recently seen holding work we are waiting on), falling
            back to uniform random *)
    | Socket_local
        (** prefer victims on our own socket 3 probes out of 4; needs a
            socket topology ([socket_of]) to be meaningful — under a
            trivial map it degrades to uniform random *)
    | Hierarchical of Hier.t
        (** near-first probing over a {!Topology.t}: start at the
            innermost non-empty ring, widen after a per-level budget of
            failed probes (with a per-level chance of jumping out
            early), snap back inward on success, and steal back from
            the recorded thief of our own tasks first *)

  val all : t list
  (** Every selector, in declaration order ({!Hierarchical} with
      {!Hier.default} last). *)

  val name : t -> string
  val of_name : string -> t option
end

module Backoff : sig
  type t =
    | Nap_after of int
        (** nap once after every [n] consecutive failed steals — the
            historical behaviour ([Nap_after 64]) *)
    | Exponential of { streak : int; max_factor : int }
        (** after [streak] consecutive failures nap once; each subsequent
            nap doubles in length up to [max_factor] nap units, resetting
            on a successful steal *)
    | Yield_then_nap of { yields : int; naps : int }
        (** ladder: spin below [yields] failures, yield the timeslice up
            to [naps] failures, then nap *)

  val default : t
  (** [Nap_after 64]: bit-for-bit the historical idle loop. *)

  val all : t list
  (** One representative of each shape (for sweeps). *)

  val name : t -> string
  val of_name : string -> t option

  (** What the idle loop should do after one more failed steal. [Nap f]
      means sleep [f] nap units; the unit is the scheduler's
      ([idle_nap_ns] in the real runtime, [nap_cycles] in the
      simulator). *)
  type action = Relax | Yield | Nap of int

  type state
  (** Per-worker failure-streak tracker. Not thread-safe; one per
      worker. *)

  val make : t -> state
  val on_failure : state -> action
  (** Count one failed steal attempt and say how to back off. *)

  val on_success : state -> unit
  (** A steal succeeded: reset the streak (and the exponential ladder). *)
end

(** What a full injection lane does to a new submission — the
    backpressure half of the ingress path. Owned here (rather than by
    the runtime) for the same reason as {!Selector}: the load generator
    sweeps admission policies exactly as [woolbench policy] sweeps steal
    policies, and both sides must agree on the vocabulary. *)
module Admission : sig
  type t =
    | Block  (** the producer waits for a slot (closed-loop producers) *)
    | Reject  (** the submission's ticket resolves rejected immediately *)
    | Shed_oldest
        (** evict the oldest queued job (its ticket resolves rejected)
            to make room — latency-SLO serving, where a stale job is
            worth less than a fresh one *)
    | Adaptive
        (** feedback controller: sheds {e before} the lane fills when a
            sojourn-latency EWMA exceeds the pool's configured target
            ([admission_target_ns]), otherwise admits; a full lane
            rejects like {!Reject}. Turns overload into bounded-latency
            goodput instead of unbounded queueing *)

  val all : t list
  val name : t -> string
  val of_name : string -> t option
end

(** Per-worker victim-selection state machine. Both schedulers call
    [next] for every unpinned steal attempt and report outcomes back, so
    a given (seed, selector) pair yields the same victim sequence in the
    runtime and the simulator. *)
module Select : sig
  type state

  val make : ?socket_of:(int -> int) -> Selector.t -> self:int -> unit -> state
  (** [make selector ~self ()] for worker id [self]. [socket_of] maps a
      worker id to its socket (default: everything on socket 0), used
      only by {!Selector.Socket_local}; {!Selector.Hierarchical}
      carries its own topology. *)

  val next : state -> rng:Wool_util.Rng.t -> n:int -> int option
  (** Choose a victim among [n] workers ([None] iff [n <= 1]). Never
      returns [self]. Draws from [rng] only as the selector requires. *)

  val on_success : state -> victim:int -> unit
  (** A steal (pinned or not) succeeded on [victim]. Resets a
      hierarchical probe radius to the innermost ring. *)

  val on_failure : state -> unit
  (** An {e unpinned} attempt failed: drop affinities (last victim /
      recorded thief) so the next probe falls back to random, and count
      the failure toward a hierarchical radius escalation. *)

  val stolen_by : state -> thief:int -> unit
  (** One of our own tasks was seen stolen by [thief]
      ({!Selector.Leapfrog_biased} affinity, and the
      {!Selector.Hierarchical} steal-back hint). *)

  val hier_level : state -> int option
  (** Current hierarchical probe radius (1 core, 2 socket, 3 machine)
      once the topology has been resolved against a pool size; [None]
      for flat selectors or before the first probe. For tests and
      diagnostics. *)
end

type t = { selector : Selector.t; backoff : Backoff.t }
(** A complete steal policy: victim selection plus idle backoff. *)

val default : t
(** [{ selector = Random_victim; backoff = Nap_after 64 }] — exactly the
    behaviour both schedulers had before policies were configurable. *)

val make : ?selector:Selector.t -> ?backoff:Backoff.t -> unit -> t

val name : t -> string
(** ["<selector>/<backoff>"], e.g. ["random/nap64"]. *)

val of_name : string -> t option
(** Inverse of {!name}. *)

val pp : Format.formatter -> t -> unit

val sweep : unit -> t list
(** The full {!Selector.all} × {!Backoff.all} grid, selectors varying
    slowest — what [woolbench policy] benchmarks. *)
