module Rng = Wool_util.Rng

module Topology = struct
  (* Three-level machine tree: worker -> core -> socket -> machine.
     Distances: 0 self, 1 same core (SMT sibling), 2 same socket,
     3 cross-socket. *)

  let levels = 3

  type t = {
    n : int;
    core : int array;  (* worker id -> global core id *)
    socket : int array;  (* worker id -> socket id *)
    spec : int array array;  (* spec.(s).(c) = SMT width of that core *)
  }

  let of_spec spec =
    if Array.length spec = 0 then invalid_arg "Topology.of_spec: no sockets";
    Array.iter
      (fun cores ->
        if Array.length cores = 0 then
          invalid_arg "Topology.of_spec: empty socket";
        Array.iter
          (fun w ->
            if w <= 0 then
              invalid_arg "Topology.of_spec: core width must be positive")
          cores)
      spec;
    let n =
      Array.fold_left
        (fun acc cores -> Array.fold_left ( + ) acc cores)
        0 spec
    in
    let core = Array.make n 0 in
    let socket = Array.make n 0 in
    let wid = ref 0 in
    let cid = ref 0 in
    Array.iteri
      (fun s cores ->
        Array.iter
          (fun width ->
            for _ = 1 to width do
              core.(!wid) <- !cid;
              socket.(!wid) <- s;
              incr wid
            done;
            incr cid)
          cores)
      spec;
    { n; core; socket; spec = Array.map Array.copy spec }

  (* Contiguous blocks with the mapping the simulator always used for
     its [~sockets] parameter: worker [wid] lands on socket
     [wid * sockets / workers]. Keeping the same formula keeps every
     existing multi-socket simulation bit-for-bit stable. *)
  let make ?(sockets = 1) ?(smt = 1) ~workers () =
    if workers <= 0 then invalid_arg "Topology.make: workers must be positive";
    if sockets <= 0 then invalid_arg "Topology.make: sockets must be positive";
    if smt <= 0 then invalid_arg "Topology.make: smt must be positive";
    let sockets = min sockets workers in
    let sizes = Array.make sockets 0 in
    for wid = 0 to workers - 1 do
      let s = wid * sockets / workers in
      sizes.(s) <- sizes.(s) + 1
    done;
    let spec =
      Array.map
        (fun size ->
          let cores = (size + smt - 1) / smt in
          Array.init cores (fun c -> min smt (size - (c * smt))))
        sizes
    in
    of_spec spec

  let workers t = t.n
  let sockets t = Array.length t.spec
  let cores t = Array.fold_left (fun a s -> a + Array.length s) 0 t.spec
  let socket_of t wid = t.socket.(wid)
  let core_of t wid = t.core.(wid)

  let distance t a b =
    if a = b then 0
    else if t.socket.(a) <> t.socket.(b) then 3
    else if t.core.(a) = t.core.(b) then 1
    else 2

  (* Workers within [level] hops of [wid] (excluding [wid] itself), in
     ascending id order so an index draw is reproducible. *)
  let peers t wid ~level =
    let out = ref [] in
    for v = t.n - 1 downto 0 do
      let d = distance t wid v in
      if d >= 1 && d <= level then out := v :: !out
    done;
    Array.of_list !out

  let socket_name cores =
    let c = Array.length cores in
    let w0 = cores.(0) in
    let uniform = Array.for_all (fun w -> w = w0) cores in
    if uniform && w0 = 1 then string_of_int c
    else if uniform then Printf.sprintf "%dx%d" c w0
    else
      String.concat "." (Array.to_list (Array.map string_of_int cores))

  let name t =
    String.concat "+" (Array.to_list (Array.map socket_name t.spec))

  let of_name s =
    let pos_int x =
      match int_of_string_opt x with Some v when v > 0 -> Some v | _ -> None
    in
    let parse_socket part =
      match String.split_on_char 'x' part with
      | [ c; w ] -> (
          match (pos_int c, pos_int w) with
          | Some c, Some w -> Some (Array.make c w)
          | _ -> None)
      | [ one ] -> (
          match String.split_on_char '.' one with
          | [ c ] -> (
              match pos_int c with
              | Some c -> Some (Array.make c 1)
              | None -> None)
          | widths -> (
              let ws = List.map pos_int widths in
              if List.for_all Option.is_some ws then
                Some (Array.of_list (List.map Option.get ws))
              else None))
      | _ -> None
    in
    if s = "" then None
    else
      let parts = String.split_on_char '+' s in
      let sockets = List.map parse_socket parts in
      if List.for_all Option.is_some sockets then
        Some (of_spec (Array.of_list (List.map Option.get sockets)))
      else None

  let pp fmt t = Format.pp_print_string fmt (name t)
end

module Hier = struct
  type spec = Auto of { sockets : int; smt : int } | Fixed of Topology.t

  type t = { spec : spec; probes : int array; escalate_pct : int array }

  let default_probes = [| 2; 8 |]
  let default_escalate_pct = [| 15; 8 |]

  let make ?(probes = default_probes) ?(escalate_pct = default_escalate_pct)
      spec =
    if Array.length probes <> Topology.levels - 1 then
      invalid_arg "Hier.make: probes must have one entry per inner level";
    Array.iter
      (fun p ->
        if p <= 0 then invalid_arg "Hier.make: probe budgets must be positive")
      probes;
    if Array.length escalate_pct <> Topology.levels - 1 then
      invalid_arg "Hier.make: escalate_pct must have one entry per inner level";
    Array.iter
      (fun p ->
        if p < 0 || p > 100 then
          invalid_arg "Hier.make: escalate_pct entries must be in [0,100]")
      escalate_pct;
    (match spec with
    | Auto { sockets; smt } ->
        if sockets <= 0 then invalid_arg "Hier.make: sockets must be positive";
        if smt <= 0 then invalid_arg "Hier.make: smt must be positive"
    | Fixed _ -> ());
    { spec; probes = Array.copy probes; escalate_pct = Array.copy escalate_pct }

  let auto ?probes ?escalate_pct ?(smt = 1) ~sockets () =
    make ?probes ?escalate_pct (Auto { sockets; smt })

  let fixed ?probes ?escalate_pct topo = make ?probes ?escalate_pct (Fixed topo)
  let default = auto ~sockets:2 ()

  let topology t ~workers =
    match t.spec with
    | Fixed topo -> if Topology.workers topo = workers then Some topo else None
    | Auto { sockets; smt } ->
        if workers <= 0 then None
        else Some (Topology.make ~sockets ~smt ~workers ())

  let ints a =
    String.concat "." (List.map string_of_int (Array.to_list a))

  let name t =
    let base =
      match t.spec with
      | Auto { sockets; smt = 1 } -> Printf.sprintf "hier%d" sockets
      | Auto { sockets; smt } -> Printf.sprintf "hier%dx%d" sockets smt
      | Fixed topo -> Printf.sprintf "hier(%s)" (Topology.name topo)
    in
    let knob tag arr def = if arr = def then "" else ":" ^ tag ^ ints arr in
    base ^ knob "p" t.probes default_probes
    ^ knob "e" t.escalate_pct default_escalate_pct

  let of_name s =
    let pos_int x =
      match int_of_string_opt x with Some v when v > 0 -> Some v | _ -> None
    in
    if String.length s < 5 || String.sub s 0 4 <> "hier" then None
    else
      match String.split_on_char ':' (String.sub s 4 (String.length s - 4)) with
      | [] -> None
      | base :: knobs -> (
          let spec =
            if String.length base >= 2
               && base.[0] = '('
               && base.[String.length base - 1] = ')'
            then
              Option.map
                (fun topo -> Fixed topo)
                (Topology.of_name (String.sub base 1 (String.length base - 2)))
            else
              match String.split_on_char 'x' base with
              | [ k ] ->
                  Option.map
                    (fun sockets -> Auto { sockets; smt = 1 })
                    (pos_int k)
              | [ k; t ] -> (
                  match (pos_int k, pos_int t) with
                  | Some sockets, Some smt -> Some (Auto { sockets; smt })
                  | _ -> None)
              | _ -> None
          in
          let parse_arr body =
            let xs =
              List.map int_of_string_opt (String.split_on_char '.' body)
            in
            if List.for_all Option.is_some xs then
              Some (Array.of_list (List.map Option.get xs))
            else None
          in
          let rec apply probes escalate = function
            | [] -> Some (probes, escalate)
            | k :: rest when String.length k >= 2 -> (
                let body = String.sub k 1 (String.length k - 1) in
                match (k.[0], parse_arr body) with
                | 'p', Some arr -> apply (Some arr) escalate rest
                | 'e', Some arr -> apply probes (Some arr) rest
                | _ -> None)
            | _ -> None
          in
          match (spec, apply None None knobs) with
          | Some spec, Some (probes, escalate_pct) -> (
              try Some (make ?probes ?escalate_pct spec)
              with Invalid_argument _ -> None)
          | _ -> None)

  let pp fmt t = Format.pp_print_string fmt (name t)
end

module Selector = struct
  type t =
    | Random_victim
    | Round_robin
    | Last_victim
    | Leapfrog_biased
    | Socket_local
    | Hierarchical of Hier.t

  let flat =
    [ Random_victim; Round_robin; Last_victim; Leapfrog_biased; Socket_local ]

  let all = flat @ [ Hierarchical Hier.default ]

  let name = function
    | Random_victim -> "random"
    | Round_robin -> "round-robin"
    | Last_victim -> "last-victim"
    | Leapfrog_biased -> "leapfrog-biased"
    | Socket_local -> "socket-local"
    | Hierarchical h -> Hier.name h

  let of_name s =
    if String.length s >= 4 && String.sub s 0 4 = "hier" then
      Option.map (fun h -> Hierarchical h) (Hier.of_name s)
    else List.find_opt (fun t -> name t = s) flat
end

module Backoff = struct
  type t =
    | Nap_after of int
    | Exponential of { streak : int; max_factor : int }
    | Yield_then_nap of { yields : int; naps : int }

  let default = Nap_after 64

  let all =
    [
      default;
      Exponential { streak = 16; max_factor = 32 };
      Yield_then_nap { yields = 16; naps = 64 };
    ]

  let name = function
    | Nap_after n -> Printf.sprintf "nap%d" n
    | Exponential { streak; max_factor } ->
        Printf.sprintf "exp%dx%d" streak max_factor
    | Yield_then_nap { yields; naps } ->
        Printf.sprintf "yield%d-nap%d" yields naps

  let of_name s =
    let num prefix rest k =
      match int_of_string_opt rest with
      | Some n when n > 0 -> Some (k n)
      | Some _ | None ->
          ignore prefix;
          None
    in
    match String.split_on_char '-' s with
    | [ one ] when String.length one > 3 && String.sub one 0 3 = "nap" ->
        num "nap" (String.sub one 3 (String.length one - 3)) (fun n ->
            Nap_after n)
    | [ one ] when String.length one > 3 && String.sub one 0 3 = "exp" -> (
        match
          String.split_on_char 'x' (String.sub one 3 (String.length one - 3))
        with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some streak, Some max_factor when streak > 0 && max_factor > 0 ->
                Some (Exponential { streak; max_factor })
            | _ -> None)
        | _ -> None)
    | [ y; n ]
      when String.length y > 5
           && String.sub y 0 5 = "yield"
           && String.length n > 3
           && String.sub n 0 3 = "nap" -> (
        match
          ( int_of_string_opt (String.sub y 5 (String.length y - 5)),
            int_of_string_opt (String.sub n 3 (String.length n - 3)) )
        with
        | Some yields, Some naps when yields >= 0 && naps > yields ->
            Some (Yield_then_nap { yields; naps })
        | _ -> None)
    | _ -> None

  type action = Relax | Yield | Nap of int

  type state = { b : t; mutable streak : int; mutable nap_count : int }

  let make b = { b; streak = 0; nap_count = 0 }

  let on_failure st =
    st.streak <- st.streak + 1;
    match st.b with
    | Nap_after n ->
        if st.streak >= n then begin
          st.streak <- 0;
          Nap 1
        end
        else Relax
    | Exponential { streak; max_factor } ->
        if st.streak >= streak then begin
          st.streak <- 0;
          (* cap the shift before the multiply so the factor cannot
             overflow however long the worker stays idle *)
          let f = min max_factor (1 lsl min st.nap_count 20) in
          st.nap_count <- st.nap_count + 1;
          Nap f
        end
        else Relax
    | Yield_then_nap { yields; naps } ->
        if st.streak >= naps then begin
          st.streak <- 0;
          Nap 1
        end
        else if st.streak >= yields then Yield
        else Relax

  let on_success st =
    st.streak <- 0;
    st.nap_count <- 0
end

module Admission = struct
  type t = Block | Reject | Shed_oldest | Adaptive

  let all = [ Block; Reject; Shed_oldest; Adaptive ]

  let name = function
    | Block -> "block"
    | Reject -> "reject"
    | Shed_oldest -> "shed-oldest"
    | Adaptive -> "adaptive"

  let of_name s = List.find_opt (fun t -> name t = s) all
end

module Select = struct
  type hier_state = {
    hp : Hier.t;
    mutable h_n : int;  (* worker count the caches were built for *)
    mutable h_topo : Topology.t option;  (* None: fall back to random *)
    mutable h_peers : int array array;  (* level-1 -> peers within level *)
    mutable h_level : int;  (* current probe radius, 1..levels *)
    mutable h_streak : int;  (* failures at the current radius *)
  }

  type state = {
    selector : Selector.t;
    self : int;
    socket_of : int -> int;
    mutable rr_next : int;
    mutable last_success : int;
    mutable last_thief : int;
    mutable sl_n : int;  (* worker count [sl_peers] was built for *)
    mutable sl_peers : int array;  (* same-socket peers, ascending *)
    hier : hier_state option;
  }

  let make ?(socket_of = fun _ -> 0) selector ~self () =
    let hier =
      match selector with
      | Selector.Hierarchical hp ->
          Some
            {
              hp;
              h_n = -1;
              h_topo = None;
              h_peers = [||];
              h_level = 1;
              h_streak = 0;
            }
      | _ -> None
    in
    {
      selector;
      self;
      socket_of;
      rr_next = self + 1;
      last_success = -1;
      last_thief = -1;
      sl_n = -1;
      sl_peers = [||];
      hier;
    }

  (* Uniform over the other n-1 workers; the draw-and-shift keeps the
     distribution exact and matches what both schedulers always did. *)
  let random st ~rng ~n =
    if n <= 1 then None
    else begin
      let k = Rng.int rng (n - 1) in
      Some (if k >= st.self then k + 1 else k)
    end

  let socket_peers st ~n =
    if st.sl_n <> n then begin
      let mine = st.socket_of st.self in
      let local = ref [] in
      for v = n - 1 downto 0 do
        if v <> st.self && st.socket_of v = mine then local := v :: !local
      done;
      st.sl_peers <- Array.of_list !local;
      st.sl_n <- n
    end;
    st.sl_peers

  let hier_sync hs ~self ~n =
    if hs.h_n <> n then begin
      let topo = Hier.topology hs.hp ~workers:n in
      hs.h_topo <- topo;
      hs.h_peers <-
        (match topo with
        | None -> [||]
        | Some t ->
            Array.init Topology.levels (fun i ->
                Topology.peers t self ~level:(i + 1)));
      hs.h_n <- n;
      hs.h_level <- 1;
      hs.h_streak <- 0
    end

  (* Skip inward levels with no peers (e.g. no SMT sibling). *)
  let hier_clamp hs lvl =
    let lvl = ref lvl in
    while
      !lvl < Topology.levels && Array.length hs.h_peers.(!lvl - 1) = 0
    do
      incr lvl
    done;
    !lvl

  let hier_next st hs ~rng ~n =
    if n <= 1 then None
    else begin
      hier_sync hs ~self:st.self ~n;
      match hs.h_topo with
      | None ->
          (* a Fixed topology sized for a different pool: flat random *)
          random st ~rng ~n
      | Some _ ->
          (* Steal-back: a victim whose task went to a remote thief
             re-steals from that thief first, whatever the radius. *)
          if st.last_thief >= 0 && st.last_thief < n
             && st.last_thief <> st.self
          then Some st.last_thief
          else begin
            (* Persist the clamp (e.g. past an empty core ring when there
               is no SMT sibling) so failure budgets count against the
               ring actually being probed. *)
            let lvl = hier_clamp hs hs.h_level in
            hs.h_level <- lvl;
            (* Probabilistic escalation: sometimes probe one ring out so
               remote victims are never starved even on all-local runs. *)
            let lvl =
              if lvl < Topology.levels then begin
                let pct = hs.hp.Hier.escalate_pct.(lvl - 1) in
                if pct > 0 && Rng.int rng 100 < pct then
                  hier_clamp hs (lvl + 1)
                else lvl
              end
              else lvl
            in
            let cands = hs.h_peers.(lvl - 1) in
            match Array.length cands with
            | 0 -> None
            | 1 -> Some cands.(0)
            | m -> Some cands.(Rng.int rng m)
          end
    end

  let next st ~rng ~n =
    match st.selector with
    | Selector.Random_victim -> random st ~rng ~n
    | Selector.Round_robin ->
        if n <= 1 then None
        else begin
          let v = st.rr_next mod n in
          let v = if v = st.self then (v + 1) mod n else v in
          st.rr_next <- v + 1;
          Some v
        end
    | Selector.Last_victim ->
        if st.last_success >= 0 && st.last_success < n
           && st.last_success <> st.self
        then Some st.last_success
        else random st ~rng ~n
    | Selector.Leapfrog_biased ->
        if st.last_thief >= 0 && st.last_thief < n && st.last_thief <> st.self
        then Some st.last_thief
        else random st ~rng ~n
    | Selector.Socket_local ->
        if n <= 1 then None
        else begin
          let local = socket_peers st ~n in
          (* A trivial map (everyone on our socket, or nobody else on
             it) carries no locality signal: degrade to one uniform
             draw instead of gating plus a scan per probe. *)
          if Array.length local = 0 || Array.length local = n - 1 then
            random st ~rng ~n
          else if Rng.int rng 4 = 3 then random st ~rng ~n
          else Some local.(Rng.int rng (Array.length local))
        end
    | Selector.Hierarchical _ -> (
        match st.hier with
        | Some hs -> hier_next st hs ~rng ~n
        | None -> random st ~rng ~n)

  let on_success st ~victim =
    st.last_success <- victim;
    match st.hier with
    | None -> ()
    | Some hs ->
        hs.h_level <- (if hs.h_topo <> None then hier_clamp hs 1 else 1);
        hs.h_streak <- 0

  let on_failure st =
    st.last_success <- -1;
    st.last_thief <- -1;
    match st.hier with
    | None -> ()
    | Some hs ->
        if hs.h_topo <> None then begin
          hs.h_streak <- hs.h_streak + 1;
          if hs.h_level < Topology.levels
             && hs.h_streak >= hs.hp.Hier.probes.(hs.h_level - 1)
          then begin
            hs.h_level <- hs.h_level + 1;
            hs.h_streak <- 0
          end
        end

  let stolen_by st ~thief = if thief >= 0 then st.last_thief <- thief

  let hier_level st =
    match st.hier with
    | Some hs when hs.h_n >= 0 && hs.h_topo <> None -> Some hs.h_level
    | Some _ | None -> None
end

type t = { selector : Selector.t; backoff : Backoff.t }

let default = { selector = Selector.Random_victim; backoff = Backoff.default }

let make ?(selector = default.selector) ?(backoff = default.backoff) () =
  { selector; backoff }

let name t = Selector.name t.selector ^ "/" ^ Backoff.name t.backoff

let of_name s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let sel = String.sub s 0 i in
      let bo = String.sub s (i + 1) (String.length s - i - 1) in
      match (Selector.of_name sel, Backoff.of_name bo) with
      | Some selector, Some backoff -> Some { selector; backoff }
      | _ -> None)

let pp fmt t = Format.pp_print_string fmt (name t)

let sweep () =
  List.concat_map
    (fun selector ->
      List.map (fun backoff -> { selector; backoff }) Backoff.all)
    Selector.all
