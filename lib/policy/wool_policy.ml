module Rng = Wool_util.Rng

module Selector = struct
  type t =
    | Random_victim
    | Round_robin
    | Last_victim
    | Leapfrog_biased
    | Socket_local

  let all =
    [ Random_victim; Round_robin; Last_victim; Leapfrog_biased; Socket_local ]

  let name = function
    | Random_victim -> "random"
    | Round_robin -> "round-robin"
    | Last_victim -> "last-victim"
    | Leapfrog_biased -> "leapfrog-biased"
    | Socket_local -> "socket-local"

  let of_name s = List.find_opt (fun t -> name t = s) all
end

module Backoff = struct
  type t =
    | Nap_after of int
    | Exponential of { streak : int; max_factor : int }
    | Yield_then_nap of { yields : int; naps : int }

  let default = Nap_after 64

  let all =
    [
      default;
      Exponential { streak = 16; max_factor = 32 };
      Yield_then_nap { yields = 16; naps = 64 };
    ]

  let name = function
    | Nap_after n -> Printf.sprintf "nap%d" n
    | Exponential { streak; max_factor } ->
        Printf.sprintf "exp%dx%d" streak max_factor
    | Yield_then_nap { yields; naps } ->
        Printf.sprintf "yield%d-nap%d" yields naps

  let of_name s =
    let num prefix rest k =
      match int_of_string_opt rest with
      | Some n when n > 0 -> Some (k n)
      | Some _ | None ->
          ignore prefix;
          None
    in
    match String.split_on_char '-' s with
    | [ one ] when String.length one > 3 && String.sub one 0 3 = "nap" ->
        num "nap" (String.sub one 3 (String.length one - 3)) (fun n ->
            Nap_after n)
    | [ one ] when String.length one > 3 && String.sub one 0 3 = "exp" -> (
        match
          String.split_on_char 'x' (String.sub one 3 (String.length one - 3))
        with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some streak, Some max_factor when streak > 0 && max_factor > 0 ->
                Some (Exponential { streak; max_factor })
            | _ -> None)
        | _ -> None)
    | [ y; n ]
      when String.length y > 5
           && String.sub y 0 5 = "yield"
           && String.length n > 3
           && String.sub n 0 3 = "nap" -> (
        match
          ( int_of_string_opt (String.sub y 5 (String.length y - 5)),
            int_of_string_opt (String.sub n 3 (String.length n - 3)) )
        with
        | Some yields, Some naps when yields >= 0 && naps > yields ->
            Some (Yield_then_nap { yields; naps })
        | _ -> None)
    | _ -> None

  type action = Relax | Yield | Nap of int

  type state = { b : t; mutable streak : int; mutable nap_count : int }

  let make b = { b; streak = 0; nap_count = 0 }

  let on_failure st =
    st.streak <- st.streak + 1;
    match st.b with
    | Nap_after n ->
        if st.streak >= n then begin
          st.streak <- 0;
          Nap 1
        end
        else Relax
    | Exponential { streak; max_factor } ->
        if st.streak >= streak then begin
          st.streak <- 0;
          (* cap the shift before the multiply so the factor cannot
             overflow however long the worker stays idle *)
          let f = min max_factor (1 lsl min st.nap_count 20) in
          st.nap_count <- st.nap_count + 1;
          Nap f
        end
        else Relax
    | Yield_then_nap { yields; naps } ->
        if st.streak >= naps then begin
          st.streak <- 0;
          Nap 1
        end
        else if st.streak >= yields then Yield
        else Relax

  let on_success st =
    st.streak <- 0;
    st.nap_count <- 0
end

module Admission = struct
  type t = Block | Reject | Shed_oldest | Adaptive

  let all = [ Block; Reject; Shed_oldest; Adaptive ]

  let name = function
    | Block -> "block"
    | Reject -> "reject"
    | Shed_oldest -> "shed-oldest"
    | Adaptive -> "adaptive"

  let of_name s = List.find_opt (fun t -> name t = s) all
end

module Select = struct
  type state = {
    selector : Selector.t;
    self : int;
    socket_of : int -> int;
    mutable rr_next : int;
    mutable last_success : int;
    mutable last_thief : int;
  }

  let make ?(socket_of = fun _ -> 0) selector ~self () =
    {
      selector;
      self;
      socket_of;
      rr_next = self + 1;
      last_success = -1;
      last_thief = -1;
    }

  (* Uniform over the other n-1 workers; the draw-and-shift keeps the
     distribution exact and matches what both schedulers always did. *)
  let random st ~rng ~n =
    if n <= 1 then None
    else begin
      let k = Rng.int rng (n - 1) in
      Some (if k >= st.self then k + 1 else k)
    end

  let next st ~rng ~n =
    match st.selector with
    | Selector.Random_victim -> random st ~rng ~n
    | Selector.Round_robin ->
        if n <= 1 then None
        else begin
          let v = st.rr_next mod n in
          let v = if v = st.self then (v + 1) mod n else v in
          st.rr_next <- v + 1;
          Some v
        end
    | Selector.Last_victim ->
        if st.last_success >= 0 && st.last_success < n
           && st.last_success <> st.self
        then Some st.last_success
        else random st ~rng ~n
    | Selector.Leapfrog_biased ->
        if st.last_thief >= 0 && st.last_thief < n && st.last_thief <> st.self
        then Some st.last_thief
        else random st ~rng ~n
    | Selector.Socket_local ->
        if n <= 1 then None
        else if Rng.int rng 4 = 3 then random st ~rng ~n
        else begin
          let mine = st.socket_of st.self in
          let local = ref [] in
          for v = n - 1 downto 0 do
            if v <> st.self && st.socket_of v = mine then local := v :: !local
          done;
          match !local with
          | [] -> random st ~rng ~n
          | l -> Some (List.nth l (Rng.int rng (List.length l)))
        end

  let on_success st ~victim = st.last_success <- victim

  let on_failure st =
    st.last_success <- -1;
    st.last_thief <- -1

  let stolen_by st ~thief = if thief >= 0 then st.last_thief <- thief
end

type t = { selector : Selector.t; backoff : Backoff.t }

let default = { selector = Selector.Random_victim; backoff = Backoff.default }

let make ?(selector = default.selector) ?(backoff = default.backoff) () =
  { selector; backoff }

let name t = Selector.name t.selector ^ "/" ^ Backoff.name t.backoff

let of_name s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let sel = String.sub s 0 i in
      let bo = String.sub s (i + 1) (String.length s - i - 1) in
      match (Selector.of_name sel, Backoff.of_name bo) with
      | Some selector, Some backoff -> Some { selector; backoff }
      | _ -> None)

let pp fmt t = Format.pp_print_string fmt (name t)

let sweep () =
  List.concat_map
    (fun selector ->
      List.map (fun backoff -> { selector; backoff }) Backoff.all)
    Selector.all
