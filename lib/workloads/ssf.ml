module Tt = Wool_ir.Task_tree

let subject n =
  if n < 0 then invalid_arg "Ssf.subject: negative index";
  let rec go n =
    if n = 0 then "a" else if n = 1 then "b" else go (n - 1) ^ go (n - 2)
  in
  (* Build iteratively to avoid exponential recomputation. *)
  if n <= 1 then go n
  else begin
    let a = ref "a" and b = ref "b" in
    for _ = 2 to n do
      let c = !b ^ !a in
      a := !b;
      b := c
    done;
    !b
  end

(* Longest common extension of suffixes at i and j; counts are exact so the
   simulator work model mirrors the real inner loop. *)
let match_length s i j =
  let n = String.length s in
  let k = ref 0 in
  while i + !k < n && j + !k < n && s.[i + !k] = s.[j + !k] do
    incr k
  done;
  !k

let best_for s i =
  let n = String.length s in
  let best_pos = ref 0 and best_len = ref (-1) in
  for j = 0 to n - 1 do
    if j <> i then begin
      let m = match_length s i j in
      if m > !best_len then begin
        best_len := m;
        best_pos := j
      end
    end
  done;
  (!best_pos, !best_len)

let serial s = Array.init (String.length s) (fun i -> best_for s i)

(* The hand-rolled spawn tree (eager, grain 1), kept as the A/B baseline
   for the rope path below. *)
let wool_handrolled ctx s =
  let n = String.length s in
  let out = Array.make n (0, 0) in
  Wool.parallel_for ctx ~grain:1 0 n (fun i -> out.(i) <- best_for s i);
  out

(* The data-parallel path: rope [map] over the positions. Per-position
   work is heavy and irregular (that is the point of ssf), so the lazy
   splitter polls after every position (chunk 1). *)
let wool ctx s =
  let n = String.length s in
  Wool_ropes.to_array
    (Wool_ropes.map ctx
       ~split:(Wool_ropes.Lazy_split 1)
       (fun i -> best_for s i)
       (Wool_ropes.of_array (Array.init n Fun.id)))

let position_comparisons s =
  let n = String.length s in
  Array.init n (fun i ->
      let total = ref 0 in
      for j = 0 to n - 1 do
        if j <> i then total := !total + match_length s i j + 1
      done;
      !total)

let cycles_per_comparison = 2
let split_overhead = 4

let tree n =
  let s = subject n in
  let comps = position_comparisons s in
  let leaves =
    Array.map (fun c -> Tt.leaf (cycles_per_comparison * c)) comps
  in
  Tt.binary_split ~grain_merge:split_overhead leaves

let loop_leaves n =
  let s = subject n in
  Array.map (fun c -> cycles_per_comparison * c) (position_comparisons s)
