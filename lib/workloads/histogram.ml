module Tt = Wool_ir.Task_tree

(* Byte histogram over generated data — the second rope workload
   (ROADMAP item 1): a reduction whose accumulator is a whole array, not
   a scalar, exercising the combine tree with non-trivial neutral
   elements.

   Each block folds into a {e fresh} bucket array and [combine] builds a
   fresh elementwise sum, so nothing shared is ever mutated: the
   reduction is idempotent by construction and legal in every pool mode
   (a shared-counter phrasing would not be). *)

let buckets = 256

let subject ?(seed = 23) n =
  let rng = Wool_util.Rng.make seed in
  Array.init n (fun _ -> Wool_util.Rng.int rng buckets)

let serial data =
  let h = Array.make buckets 0 in
  Array.iter (fun v -> h.(v) <- h.(v) + 1) data;
  h

(* Elements are rope-reduced in blocks: each block is one rope element,
   so the per-element [f] amortises its bucket-array allocation over
   [block] inputs, and the lazy splitter polls once per block. *)
let block = 1024

let wool ctx ?(split = Wool_ropes.Lazy_split 1) data =
  let n = Array.length data in
  if n = 0 then Array.make buckets 0
  else begin
    let nblocks = (n + block - 1) / block in
    Wool_ropes.reduce ctx ~split
      ~neutral:(Array.make buckets 0)
      ~combine:(fun a b -> Array.init buckets (fun i -> a.(i) + b.(i)))
      (fun k ->
        let h = Array.make buckets 0 in
        let hi = min n ((k + 1) * block) in
        for i = k * block to hi - 1 do
          let v = data.(i) in
          h.(v) <- h.(v) + 1
        done;
        h)
      (Wool_ropes.of_array (Array.init nblocks Fun.id))
  end

let equal a b = a = (b : int array)

(* Simulator model: a parallel loop over block leaves, ~2 cycles per
   element bucketed, plus a combine charge at the merges. *)
let cycles_per_elem = 2
let combine_overhead = 16

let leaf_sizes n =
  let nleaves = (n + block - 1) / block in
  Array.init nleaves (fun k ->
      let lo = k * block in
      cycles_per_elem * (min block (n - lo)))

let tree n =
  if n <= 0 then invalid_arg "Histogram.tree: size must be positive";
  Tt.binary_split ~grain_merge:combine_overhead
    (Array.map Tt.leaf (leaf_sizes n))

let loop_leaves n = leaf_sizes n
