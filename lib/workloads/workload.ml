module Tt = Wool_ir.Task_tree

type t = {
  name : string;
  params : string;
  reps : int;
  region : Tt.t;
  loop_leaves : int array option;
}

let v ?loop_leaves ~name ~params ~reps region =
  if reps <= 0 then invalid_arg "Workload.v: reps must be positive";
  { name; params; reps; region; loop_leaves }

let root t = Tt.make (List.init t.reps (fun _ -> Tt.Call t.region))
let label t = Printf.sprintf "%s(%s)" t.name t.params

let fib ?(reps = 1) n =
  v ~name:"fib" ~params:(string_of_int n) ~reps (Fib.tree n)

let stress ?(reps = 16) ~height ~leaf_iters () =
  v ~name:"stress"
    ~params:(Printf.sprintf "%d,%d" leaf_iters height)
    ~reps
    (Stress.tree ~height ~leaf_iters)

let mm ?(reps = 16) n =
  v ~name:"mm" ~params:(string_of_int n) ~reps
    ~loop_leaves:(Mm.loop_leaves n) (Mm.tree n)

let ssf ?(reps = 16) n =
  v ~name:"ssf" ~params:(string_of_int n) ~reps
    ~loop_leaves:(Ssf.loop_leaves n) (Ssf.tree n)

let cholesky ?(reps = 4) ?(seed = 7) ~n ~nz () =
  v ~name:"cholesky"
    ~params:(Printf.sprintf "%d,%d" n nz)
    ~reps
    (Cholesky.tree ~seed ~n ~nz ())

let sort ?(reps = 8) n =
  v ~name:"sort" ~params:(string_of_int n) ~reps (Sort.tree n)

let wordcount ?(reps = 8) n =
  v ~name:"wordcount" ~params:(string_of_int n) ~reps
    ~loop_leaves:(Wordcount.loop_leaves n) (Wordcount.tree n)

let histogram ?(reps = 8) n =
  v ~name:"histogram" ~params:(string_of_int n) ~reps
    ~loop_leaves:(Histogram.loop_leaves n) (Histogram.tree n)

let spawn_loop ?(reps = 1) ~n ~leaf_work () =
  v ~name:"spawn_loop"
    ~params:(Printf.sprintf "%d,%d" n leaf_work)
    ~reps
    (let leaf = Tt.leaf leaf_work in
     Tt.spawn_all (List.init n (fun _ -> leaf)))

(* Scaled-down version of Table I's grid: same workload families and the
   same direction of growth, smaller inputs and repetition counts so a
   simulated run stays within millions of events. *)
let table1_grid () =
  [
    cholesky ~reps:8 ~n:125 ~nz:500 ();
    cholesky ~reps:4 ~n:250 ~nz:1000 ();
    cholesky ~reps:1 ~n:500 ~nz:2000 ();
    mm ~reps:32 32;
    mm ~reps:16 64;
    mm ~reps:4 128;
    ssf ~reps:16 10;
    ssf ~reps:8 11;
    ssf ~reps:4 12;
    stress ~reps:32 ~height:7 ~leaf_iters:256 ();
    stress ~reps:16 ~height:8 ~leaf_iters:256 ();
    stress ~reps:8 ~height:9 ~leaf_iters:256 ();
    stress ~reps:4 ~height:10 ~leaf_iters:256 ();
    stress ~reps:32 ~height:3 ~leaf_iters:4096 ();
    stress ~reps:16 ~height:4 ~leaf_iters:4096 ();
    stress ~reps:8 ~height:5 ~leaf_iters:4096 ();
    stress ~reps:4 ~height:6 ~leaf_iters:4096 ();
  ]
