(** Sub-string finder (§IV-A; after the TBB SubStringFinder example).

    The subject string is the Fibonacci-string recursion
    [s_n = s_(n-1) ^ s_(n-2)] with [s_0 = "a"], [s_1 = "b"]. For every
    position the benchmark finds the other position from which the longest
    identical substring starts. Per-position work is highly irregular
    (Fibonacci strings are self-similar), which is what makes this an
    interesting load-balancing case. *)

val subject : int -> string
(** The Fibonacci string [s_n]; length fib(n) (1, 1, 2, 3, 5, ...). *)

val serial : string -> (int * int) array
(** For each position [i]: [(best_pos, best_len)], the starting position
    [<> i] of the longest common substring and its length (first maximum
    wins, scanning left to right). *)

val wool : Wool.ctx -> string -> (int * int) array
(** Positions parallelised as a lazily split rope map
    ({!Wool_ropes.map}, chunk 1). *)

val wool_handrolled : Wool.ctx -> string -> (int * int) array
(** The pre-rope spawn tree ([Wool.parallel_for], grain 1), kept for A/B
    comparison against {!wool}. *)

val position_comparisons : string -> int array
(** Character comparisons the serial algorithm performs per position — the
    simulator's per-leaf work model. *)

val tree : int -> Wool_ir.Task_tree.t
(** Simulator tree for subject [s_n]: binary split over position leaves
    weighted by {!position_comparisons} (2 cycles per comparison). *)

val loop_leaves : int -> int array
(** Per-position work for the OpenMP work-sharing schedule. *)
