(** Dense matrix multiply (not blocked), outermost loop parallelised
    (§IV-A; from the Wool distribution). *)

type matrix = float array array

val random_matrix : Wool_util.Rng.t -> int -> matrix

val serial : matrix -> matrix -> matrix
(** Triple-loop [C = A * B]. *)

val wool : Wool.ctx -> matrix -> matrix -> matrix
(** Outer loop over rows as a lazily split rope ({!Wool_ropes.for_each},
    chunk 1: poll steal pressure after every row). *)

val wool_handrolled : Wool.ctx -> matrix -> matrix -> matrix
(** The pre-rope spawn tree ([Wool.parallel_for], grain 1), kept for A/B
    comparison against {!wool}. *)

val equal : ?eps:float -> matrix -> matrix -> bool

val row_work : int -> int
(** Modelled cycles to compute one result row for size [n] (~3.7 cycles
    per multiply-add, calibrated so mm 64 has the paper's ~976k-cycle
    repetition). *)

val tree : int -> Wool_ir.Task_tree.t
(** Simulator tree: balanced binary split over [n] row tasks. *)

val loop_leaves : int -> int array
(** Per-iteration work for the OpenMP work-sharing schedule. *)
