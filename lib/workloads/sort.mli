(** Parallel mergesort (after the Cilk-5 distribution's [cilksort]).

    A further fine-grained workload beyond the paper's four: recursive
    splitting with the two halves as parallel tasks and a serial merge at
    every internal node. Unlike stress or fib, internal nodes carry work
    proportional to their subtree (the merge), which caps the abstract
    parallelism at about [n / log n] and puts real work on the critical
    path — a different shape for the scheduler. *)

val serial : int array -> int array
(** Stable mergesort; the input is not modified. *)

val wool : Wool.ctx -> ?block:int -> int array -> int array
(** Data-parallel version: [block]-element runs (default 2048) sorted in
    parallel via a rope build, then merged pairwise in parallel rounds.
    Every task writes a fresh array, so this phrasing is idempotent and
    runs on the relaxed at-least-once pools. *)

val wool_handrolled : Wool.ctx -> ?cutoff:int -> int array -> int array
(** The in-place spawn tree (recursions above [cutoff] elements, default
    64, spawn; serial in-place merges). Exactly-once pools only; kept
    for A/B comparison against {!wool}. *)

val is_sorted : int array -> bool

val tree : ?cutoff:int -> int -> Wool_ir.Task_tree.t
(** Simulator task tree for sorting [n] elements: leaves model the serial
    base-case sort, internal nodes the merge (~6 cycles per element
    merged). *)

val loop_leaves : int -> int array
(** Not a loop workload; raises [Invalid_argument]. Present to document
    why sort has no OpenMP work-sharing form. *)
