(** Workload descriptors for the experiment harness.

    A workload is one repetition's task tree plus the repetition count: the
    paper runs each kernel on an unusually small input and repeats it,
    giving the "sequence of small parallel regions" structure of §II.
    Loop-shaped workloads also expose per-iteration leaf work so the
    OpenMP comparison can use a work-sharing schedule. *)

type t = {
  name : string;  (** benchmark family, e.g. "mm" *)
  params : string;  (** human-readable parameter string, e.g. "64" *)
  reps : int;  (** repetitions of the region (scaled down vs the paper) *)
  region : Wool_ir.Task_tree.t;  (** one repetition *)
  loop_leaves : int array option;  (** per-iteration work, loop shape only *)
}

val v :
  ?loop_leaves:int array -> name:string -> params:string -> reps:int ->
  Wool_ir.Task_tree.t -> t

val root : t -> Wool_ir.Task_tree.t
(** The full run: [reps] sequential executions of the region (the region
    tree is shared, so this is cheap). *)

val label : t -> string
(** ["name(params)"]. *)

(* The paper's workload grids (Table I), input- and repetition-scaled for
   simulation; every function documents its scaling in EXPERIMENTS.md. *)

val fib : ?reps:int -> int -> t
val stress : ?reps:int -> height:int -> leaf_iters:int -> unit -> t
val mm : ?reps:int -> int -> t
val ssf : ?reps:int -> int -> t
val cholesky : ?reps:int -> ?seed:int -> n:int -> nz:int -> unit -> t

val sort : ?reps:int -> int -> t
(** Parallel mergesort of [n] random elements (extra workload; not in the
    paper's grid). *)

val wordcount : ?reps:int -> int -> t
(** Word count over [n] characters: a flat data-parallel reduction in
    512-character chunks (rope workload; not in the paper's grid). *)

val histogram : ?reps:int -> int -> t
(** Byte histogram over [n] elements in 1024-element blocks with a
    combine charge at the merges (rope workload; not in the paper's
    grid). *)

val spawn_loop : ?reps:int -> n:int -> leaf_work:int -> unit -> t
(** The section-I spawn loop: [for (...) spawn foo; ...; sync] — [n] tasks
    spawned flat before any join. A steal-child pool holds all [n]
    descriptors at once; a steal-parent pool holds one continuation. *)

val table1_grid : unit -> t list
(** The scaled version of Table I's 24 workloads. *)
