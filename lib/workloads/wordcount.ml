module Tt = Wool_ir.Task_tree

(* Word counting over generated text — the canonical fine-grained
   data-parallel reduction, added as a rope workload (ROADMAP item 1).

   A chunk cannot count its words locally without knowing whether its
   first character continues a word from the previous chunk. Counting
   word {e starts} dissolves the boundary: position [i] starts a word
   iff it holds a word character and [i = 0] or position [i - 1] does
   not. Every position is then independent, the per-position folds are
   pure, and the reduction is idempotent — legal in every pool mode. *)

let is_word_char c = c <> ' ' && c <> '\n' && c <> '\t'

(* Deterministic pseudo-text: ~1 space in 8, so words average ~7
   characters — enough density that the count is input-size shaped, not
   degenerate. *)
let subject ?(seed = 17) n =
  let rng = Wool_util.Rng.make seed in
  String.init n (fun _ ->
      if Wool_util.Rng.int rng 8 = 0 then ' '
      else Char.chr (Char.code 'a' + Wool_util.Rng.int rng 26))

let word_start s i =
  is_word_char s.[i] && (i = 0 || not (is_word_char s.[i - 1]))

let serial s =
  let count = ref 0 in
  for i = 0 to String.length s - 1 do
    if word_start s i then incr count
  done;
  !count

(* Positions are cheap, so the lazy splitter checks for hunger every 512
   of them; override [split] to A/B schedules (the ropes sweep does). *)
let wool ctx ?(split = Wool_ropes.Lazy_split 512) s =
  Wool_ropes.reduce ctx ~split ~neutral:0 ~combine:( + )
    (fun i -> if word_start s i then 1 else 0)
    (Wool_ropes.of_array (Array.init (String.length s) Fun.id))

(* Simulator model: a parallel loop over chunk leaves, ~4 cycles per
   character scanned. *)
let cycles_per_char = 4
let model_chunk = 512

let leaf_sizes n =
  let nleaves = (n + model_chunk - 1) / model_chunk in
  Array.init nleaves (fun k ->
      let lo = k * model_chunk in
      cycles_per_char * (min model_chunk (n - lo)))

let split_overhead = 4

let tree n =
  if n <= 0 then invalid_arg "Wordcount.tree: size must be positive";
  Tt.binary_split ~grain_merge:split_overhead
    (Array.map Tt.leaf (leaf_sizes n))

let loop_leaves n = leaf_sizes n
