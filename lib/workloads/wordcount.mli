(** Word counting over generated text — a fine-grained data-parallel
    reduction expressed with {!Wool_ropes} (ROADMAP item 1).

    Words are counted as word {e starts} (a word character whose
    predecessor is not one), which makes every position independent and
    the whole reduction idempotent: it runs in every pool mode,
    including the relaxed at-least-once ones. *)

val subject : ?seed:int -> int -> string
(** Deterministic pseudo-text of length [n] (~1 space in 8). *)

val serial : string -> int
(** Sequential word count (the oracle digest). *)

val wool : Wool.ctx -> ?split:Wool_ropes.split -> string -> int
(** Rope reduction over the positions; default split is
    [Lazy_split 512]. *)

val tree : int -> Wool_ir.Task_tree.t
(** Simulator tree: balanced split over 512-character chunk leaves at
    ~4 cycles per character. *)

val loop_leaves : int -> int array
(** Per-chunk work for the OpenMP work-sharing schedule. *)
