(** Byte histogram over generated data — a rope reduction whose
    accumulator is a whole bucket array (ROADMAP item 1).

    Each block folds into a fresh bucket array and the combine builds a
    fresh elementwise sum, so the reduction is idempotent by
    construction and runs in every pool mode. *)

val buckets : int
(** Number of histogram buckets (256). *)

val subject : ?seed:int -> int -> int array
(** Deterministic data: [n] values in [0, buckets). *)

val serial : int array -> int array
(** Sequential histogram (the oracle digest). *)

val wool : Wool.ctx -> ?split:Wool_ropes.split -> int array -> int array
(** Rope reduction in 1024-element blocks; default split polls steal
    pressure once per block ([Lazy_split 1] over block indices). *)

val equal : int array -> int array -> bool

val tree : int -> Wool_ir.Task_tree.t
(** Simulator tree: balanced split over block leaves at ~2 cycles per
    element, with a combine charge at the merges. *)

val loop_leaves : int -> int array
(** Per-block work for the OpenMP work-sharing schedule. *)
