module Tt = Wool_ir.Task_tree

type matrix = float array array

let random_matrix rng n =
  Array.init n (fun _ -> Array.init n (fun _ -> Wool_util.Rng.float rng 1.0))

let mult_row ~a ~b ~c i =
  let n = Array.length a in
  let ai = a.(i) and ci = c.(i) in
  for j = 0 to n - 1 do
    let s = ref 0.0 in
    for k = 0 to n - 1 do
      s := !s +. (ai.(k) *. b.(k).(j))
    done;
    ci.(j) <- !s
  done

let serial a b =
  let n = Array.length a in
  let c = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    mult_row ~a ~b ~c i
  done;
  c

(* The hand-rolled spawn tree (eager, grain 1), kept as the A/B baseline
   for the rope path below. *)
let wool_handrolled ctx a b =
  let n = Array.length a in
  let c = Array.make_matrix n n 0.0 in
  Wool.parallel_for ctx ~grain:1 0 n (fun i -> mult_row ~a ~b ~c i);
  c

(* The data-parallel path: one rope [for_each] over the row indices.
   Rows are coarse (~n² multiply-adds each), so the lazy splitter polls
   for steal pressure after every row (chunk 1). Each row task writes
   only its own row of [c] — idempotent, legal in every mode. *)
let wool ctx a b =
  let n = Array.length a in
  let c = Array.make_matrix n n 0.0 in
  Wool_ropes.for_each ctx
    ~split:(Wool_ropes.Lazy_split 1)
    (fun _ i -> mult_row ~a ~b ~c i)
    (Wool_ropes.of_array (Array.init n Fun.id));
  c

let equal ?(eps = 1e-9) x y =
  let n = Array.length x in
  n = Array.length y
  && begin
       let ok = ref true in
       for i = 0 to n - 1 do
         for j = 0 to n - 1 do
           if Float.abs (x.(i).(j) -. y.(i).(j)) > eps then ok := false
         done
       done;
       !ok
     end

(* 976k cycles per mm(64) repetition (Table I) over 64 rows of 64x64
   multiply-adds: ~3.7 cycles each. *)
let cycles_per_madd = 3.7

let row_work n = int_of_float (cycles_per_madd *. float_of_int (n * n))

let split_overhead = 4

let tree n =
  if n <= 0 then invalid_arg "Mm.tree: size must be positive";
  let row = Tt.leaf (row_work n) in
  Tt.binary_split ~grain_merge:split_overhead (Array.make n row)

let loop_leaves n = Array.make n (row_work n)
