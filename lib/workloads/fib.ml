module Tt = Wool_ir.Task_tree

let rec serial n = if n < 2 then n else serial (n - 1) + serial (n - 2)

(* Spawned with [spawn_idempotent]: the body is pure, so the kernel runs
   unchanged on the relaxed (at-least-once) pool modes. *)
let rec wool ctx n =
  if n < 2 then n
  else begin
    let b = Wool.spawn_idempotent ctx (fun ctx -> wool ctx (n - 2)) in
    let a = wool ctx (n - 1) in
    let b = Wool.join ctx b in
    a + b
  end

(* ~13 cycles of work per internal task (test, two calls, add), ~5 at the
   leaves: fib "spawns a task for every 13 cycles worth of work" (§I). *)
let leaf_work = 5
let node_pre = 6
let node_post = 7

let tree =
  let memo = Hashtbl.create 64 in
  let rec build n =
    match Hashtbl.find_opt memo n with
    | Some t -> t
    | None ->
        let t =
          if n < 2 then Tt.leaf leaf_work
          else
            Tt.fork2 ~pre:node_pre ~post:node_post (build (n - 1)) (build (n - 2))
        in
        Hashtbl.add memo n t;
        t
  in
  fun n ->
    if n < 0 then invalid_arg "Fib.tree: negative input";
    build n
