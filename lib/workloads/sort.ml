module Tt = Wool_ir.Task_tree

(* Merge src.[lo,mid) and src.[mid,hi) into dst.[lo,hi). *)
let merge ~src ~dst lo mid hi =
  let i = ref lo and j = ref mid in
  for k = lo to hi - 1 do
    if !i < mid && (!j >= hi || src.(!i) <= src.(!j)) then begin
      dst.(k) <- src.(!i);
      incr i
    end
    else begin
      dst.(k) <- src.(!j);
      incr j
    end
  done

let insertion_sort a lo hi =
  for i = lo + 1 to hi - 1 do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > v do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done

let base_cutoff = 16

(* Sort a.[lo,hi) leaving the result in [a]; [tmp] is scratch. *)
let rec msort a tmp lo hi =
  if hi - lo <= base_cutoff then insertion_sort a lo hi
  else begin
    let mid = lo + ((hi - lo) / 2) in
    msort a tmp lo mid;
    msort a tmp mid hi;
    Array.blit a lo tmp lo (hi - lo);
    merge ~src:tmp ~dst:a lo mid hi
  end

let serial input =
  let a = Array.copy input in
  let tmp = Array.make (Array.length a) 0 in
  msort a tmp 0 (Array.length a);
  a

(* The hand-rolled in-place spawn tree, kept as the A/B baseline for the
   rope path below. In-place merges make duplicate execution unsafe, so
   this version spawns with the exactly-once [Wool.spawn]. *)
let wool_handrolled ctx ?(cutoff = 64) input =
  let a = Array.copy input in
  let tmp = Array.make (Array.length a) 0 in
  let rec go ctx lo hi =
    if hi - lo <= cutoff then msort a tmp lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let right = Wool.spawn ctx (fun ctx -> go ctx mid hi) in
      go ctx lo mid;
      Wool.join ctx right;
      (* both halves sorted in place; merge through private scratch *)
      Array.blit a lo tmp lo (hi - lo);
      merge ~src:tmp ~dst:a lo mid hi
    end
  in
  Wool.call ctx (fun ctx -> go ctx 0 (Array.length a));
  a

(* Merge two sorted runs into a fresh array (pure — safe to duplicate). *)
let merge_runs x y =
  let nx = Array.length x and ny = Array.length y in
  let out = Array.make (nx + ny) 0 in
  let i = ref 0 and j = ref 0 in
  for k = 0 to nx + ny - 1 do
    if !i < nx && (!j >= ny || x.(!i) <= y.(!j)) then begin
      out.(k) <- x.(!i);
      incr i
    end
    else begin
      out.(k) <- y.(!j);
      incr j
    end
  done;
  out

(* The data-parallel path: sort fixed blocks in parallel (each block into
   a fresh array) via a rope [build], then merge the sorted runs pairwise
   in parallel rounds. Every task allocates its own output, so — unlike
   the in-place hand-rolled version — this phrasing is idempotent and
   legal on the relaxed at-least-once pools. *)
let wool ctx ?(block = 2048) input =
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let nblocks = (n + block - 1) / block in
    let sort_block k =
      let lo = k * block in
      let len = min block (n - lo) in
      let a = Array.sub input lo len in
      let tmp = Array.make len 0 in
      msort a tmp 0 len;
      a
    in
    let runs =
      ref
        (Wool_ropes.to_array
           (Wool_ropes.build ctx ~split:(Wool_ropes.Lazy_split 1) nblocks
              sort_block))
    in
    while Array.length !runs > 1 do
      let rs = !runs in
      let m = Array.length rs in
      let pairs = m / 2 in
      runs :=
        Wool_ropes.to_array
          (Wool_ropes.build ctx ~split:(Wool_ropes.Lazy_split 1)
             (pairs + (m mod 2))
             (fun k ->
               if k < pairs then merge_runs rs.(2 * k) rs.((2 * k) + 1)
               else rs.(m - 1)))
    done;
    !runs.(0)
  end

let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then ok := false
  done;
  !ok

(* work model: ~8 cycles per element in the base-case sort, ~6 per element
   merged at each internal node *)
let cycles_base = 8
let cycles_merge = 6

let tree ?(cutoff = 64) n =
  if n <= 0 then invalid_arg "Sort.tree: size must be positive";
  let memo = Hashtbl.create 32 in
  let rec build n =
    match Hashtbl.find_opt memo n with
    | Some t -> t
    | None ->
        let t =
          if n <= cutoff then
            (* n log n-ish base case, modelled linearly with a slope *)
            Tt.leaf (cycles_base * n)
          else begin
            let half = n / 2 in
            let rest = n - half in
            Tt.fork2 ~post:(cycles_merge * n) (build half) (build rest)
          end
        in
        Hashtbl.add memo n t;
        t
  in
  build n

let loop_leaves _ =
  invalid_arg
    "Sort.loop_leaves: mergesort is not a parallel loop; there is no \
     work-sharing schedule for it"
