module Tt = Wool_ir.Task_tree

(* A partial placement is the list of columns already used, newest first;
   [ok] checks the new column against every placed row's column and both
   diagonals. *)
let ok col placed =
  let rec go d = function
    | [] -> true
    | c :: rest -> c <> col && c - d <> col && c + d <> col && go (d + 1) rest
  in
  go 1 placed

let serial n =
  let rec go row placed =
    if row = n then 1
    else begin
      let count = ref 0 in
      for col = 0 to n - 1 do
        if ok col placed then count := !count + go (row + 1) (col :: placed)
      done;
      !count
    end
  in
  go 0 []

(* Count the placement tests a serial subtree performs (the simulator work
   model). *)
let rec count_nodes n row placed =
  if row = n then 1
  else begin
    let total = ref 1 in
    for col = 0 to n - 1 do
      if ok col placed then total := !total + count_nodes n (row + 1) (col :: placed)
    done;
    !total
  end

let wool ctx ?(cutoff = 3) n =
  let rec serial_from row placed =
    if row = n then 1
    else begin
      let count = ref 0 in
      for col = 0 to n - 1 do
        if ok col placed then count := !count + serial_from (row + 1) (col :: placed)
      done;
      !count
    end
  in
  let rec go ctx row placed =
    if row >= cutoff then serial_from row placed
    else if row = n then 1
    else begin
      let children = ref [] in
      for col = n - 1 downto 0 do
        if ok col placed then
          children :=
            (* pure counting body: idempotent, so relaxed modes work *)
            Wool.spawn_idempotent ctx (fun ctx ->
                go ctx (row + 1) (col :: placed))
            :: !children
      done;
      (* join in LIFO spawn order: the newest spawn is the head *)
      List.fold_left (fun acc fut -> acc + Wool.join ctx fut) 0 !children
    end
  in
  go ctx 0 []

let cycles_per_node = 8

let tree ?(cutoff = 3) n =
  let rec go row placed =
    if row >= cutoff || row = n then
      Tt.leaf (cycles_per_node * count_nodes n row placed)
    else begin
      let children = ref [] in
      for col = n - 1 downto 0 do
        if ok col placed then children := go (row + 1) (col :: placed) :: !children
      done;
      match !children with
      | [] -> Tt.leaf cycles_per_node (* dead end: just the tests *)
      | cs -> Tt.spawn_all ~pre:(cycles_per_node * n) cs
    end
  in
  go 0 []

let known =
  [ (1, 1); (2, 0); (3, 0); (4, 2); (5, 10); (6, 4); (7, 40); (8, 92);
    (9, 352); (10, 724) ]
