(** Instrumented atomic backend: {!Wool_deque.Atomic_ops.S} over plain
    mutable cells, with every operation routed through {!Sched.exec} so
    the model checker can interleave it. The generated
    [Direct_stack_checked] / [Chase_lev_checked] modules compile the
    production protocol bodies against this. *)

include Wool_deque.Atomic_ops.S
