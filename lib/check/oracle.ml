(* Trace-consistency oracle for real-pool histories.

   Given the per-worker event rings of a quiescent pool and its counter
   totals, validate that the event stream tells a coherent story. Two
   kinds of checks:

   - Accounting: each counter equals the number of events carrying its
     tag (only sound when the rings dropped nothing).

   - Causality, direct modes only (queued modes carry [a = -1]):
     descriptor indices recycle, so ordering single events is not
     possible — and timestamps cannot be used anyway, because events are
     recorded *after* their protocol action (a thief can record its
     [Steal_ok] before the victim records the [Spawn] that published the
     descriptor). What does hold is multiplicity: every steal of
     descriptor [i] from victim [v] consumed a distinct incarnation, and
     each incarnation was spawned exactly once — so steals of [(v, i)]
     can never outnumber [v]'s spawns at [i]. Likewise a [Join_stolen]
     naming thief [th] means the owner observed STOLEN([th]) before the
     thief's DONE, which requires a matching committed steal: joins of
     [(owner, i)] blaming [th] can never outnumber [th]'s [Steal_ok]s of
     [(owner, i)]. *)

module E = Wool_trace.Event

type counts = {
  spawns : int;
  steals : int;
  leap_steals : int;
  joins_stolen : int;
  inlined_private : int;
  inlined_public : int;
  publish_events : int;
  privatize_events : int;
  injected : int;
}

let count_tag per_worker tag =
  Array.fold_left
    (fun acc evs ->
      Array.fold_left
        (fun acc (e : E.t) -> if e.tag = tag then acc + 1 else acc)
        acc evs)
    0 per_worker

let check_events ~direct ~counts ~dropped per_worker =
  if dropped > 0 then [] (* incomplete stream: nothing sound to check *)
  else begin
    let errs = ref [] in
    let add fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
    let expect name tag expected =
      let n = count_tag per_worker tag in
      if n <> expected then
        add "%s: %d %s event(s) but counter says %d" name n
          (E.tag_name tag) expected
    in
    expect "spawns" E.Spawn counts.spawns;
    expect "steals" E.Steal_ok counts.steals;
    expect "leap steals" E.Leap_steal counts.leap_steals;
    expect "stolen joins" E.Join_stolen counts.joins_stolen;
    expect "private inlines" E.Inline_private counts.inlined_private;
    expect "public inlines" E.Inline_public counts.inlined_public;
    expect "publishes" E.Publish counts.publish_events;
    expect "privatizes" E.Privatize counts.privatize_events;
    expect "injected dequeues" E.Dequeue_injected counts.injected;
    (* every committed steal was preceded by a probe on the same thief *)
    Array.iteri
      (fun w evs ->
        let att = ref 0 and ok = ref 0 in
        Array.iter
          (fun (e : E.t) ->
            match e.tag with
            | E.Steal_attempt -> incr att
            | E.Steal_ok -> incr ok
            | _ -> ())
          evs;
        if !ok > !att then
          add "worker %d: %d steal_ok but only %d steal_attempt" w !ok !att)
      per_worker;
    if direct then begin
      (* multiplicity causality over recycled descriptor indices *)
      let tally tbl key =
        Hashtbl.replace tbl key
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      in
      let spawns = Hashtbl.create 64 (* (owner, index) -> n *) in
      let steal_ok = Hashtbl.create 64 (* (thief, index, victim) -> n *) in
      let steals_of = Hashtbl.create 64 (* (victim, index) -> n *) in
      let joins = Hashtbl.create 64 (* (owner, index, thief) -> n *) in
      Array.iteri
        (fun w evs ->
          Array.iter
            (fun (e : E.t) ->
              match e.tag with
              | E.Spawn when e.a >= 0 -> tally spawns (w, e.a)
              | E.Steal_ok when e.a >= 0 && e.b >= 0 ->
                  tally steal_ok (w, e.a, e.b);
                  tally steals_of (e.b, e.a)
              | E.Join_stolen when e.a >= 0 && e.b >= 0 ->
                  tally joins (w, e.a, e.b)
              | _ -> ())
            evs)
        per_worker;
      Hashtbl.iter
        (fun (victim, index) n ->
          let sp = Option.value ~default:0 (Hashtbl.find_opt spawns (victim, index)) in
          if n > sp then
            add
              "causality: %d steal(s) of descriptor %d from worker %d but \
               only %d spawn(s) there"
              n index victim sp)
        steals_of;
      Hashtbl.iter
        (fun (owner, index, thief) n ->
          let st =
            Option.value ~default:0 (Hashtbl.find_opt steal_ok (thief, index, owner))
          in
          if n > st then
            add
              "causality: worker %d joined descriptor %d as stolen-by-%d %d \
               time(s) but that thief committed only %d matching steal(s)"
              owner index thief n st)
        joins
    end;
    List.rev !errs
  end
