(* A DSCheck-style systematic scheduler.

   A scenario [setup] builds shared state (through {!Shadow_atomic}
   cells), spawns a fixed set of threads, and registers final
   assertions. Every atomic operation a thread performs is reified as an
   effect; the scheduler executes operations one at a time and explores
   every interleaving by depth-first search over the choice of which
   ready thread runs next, replaying the schedule prefix on each run
   (one-shot continuations cannot be forked, so backtracking re-executes
   [setup] from scratch — scenarios must be deterministic).

   Spin loops are handled by a targeted reduction: {!relax} (the
   instrumented [cpu_relax]) parks the calling thread until any other
   thread performs a write. Re-reading an unchanged cell is a no-op, so
   skipping the schedules where a spinner re-runs its read against
   unchanged state loses nothing — and it makes unbounded protocol spins
   (the owner waiting out a thief's transient EMPTY, a join waiting for
   DONE) finite. A state where every live thread is parked is reported
   as a {!Deadlock}. *)

type stats = { schedules : int; max_depth : int }

exception Deadlock of string
exception Schedule_limit of int

exception Violation of string * string
(** [Violation (message, schedule)]: an assertion failed or a thread
    raised; [schedule] is the interleaving that got there, rendered as
    ["t0:push.set t1:steal.cas ..."]. *)

type resume =
  | Resume : {
      op : unit -> 'a;
      write : bool;
      k : ('a, unit) Effect.Deep.continuation;
    }
      -> resume
  | Unparked of (unit, unit) Effect.Deep.continuation
  | Invalid

type status = Ready | Parked | Finished

type thread = {
  tid : int;
  mutable resume : resume;
  mutable status : status;
  mutable label : string; (* pending operation, for schedule rendering *)
}

type _ Effect.t +=
  | Op : { label : string; write : bool; op : unit -> 'a } -> 'a Effect.t
  | Relax : unit Effect.t

let threads : thread list ref = ref []
let current : thread option ref = ref None
let finals : (unit -> unit) list ref = ref []
let trace : (int * string) list ref = ref []

let render_trace () =
  List.rev !trace
  |> List.map (fun (tid, l) -> Printf.sprintf "t%d:%s" tid l)
  |> String.concat " "

let exec ~label ~write op =
  match !current with
  | None -> op () (* setup / final code: execute directly *)
  | Some _ -> Effect.perform (Op { label; write; op })

let relax () =
  match !current with None -> () | Some _ -> Effect.perform Relax

let wake_all () =
  List.iter (fun t -> if t.status = Parked then t.status <- Ready) !threads

let final f = finals := f :: !finals

let handler t =
  {
    Effect.Deep.retc = (fun () -> t.status <- Finished);
    exnc =
      (fun e ->
        t.status <- Finished;
        raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Op { label; write; op } ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                t.label <- label;
                t.resume <- Resume { op; write; k })
        | Relax ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                t.label <- "park";
                t.status <- Parked;
                t.resume <- Unparked k)
        | _ -> None);
  }

(* Register a thread and immediately run it up to its first reified
   operation. The pure prefix before a thread's first atomic access is
   invisible to other threads (all shared state goes through the
   backend), so executing it eagerly removes a semantically-empty
   "start" scheduling decision per thread from the exploration. *)
let spawn f =
  (match !current with
  | None -> ()
  | Some _ -> invalid_arg "Wool_check.Sched.spawn: only from setup");
  let t =
    { tid = List.length !threads; resume = Invalid; status = Ready;
      label = "start" }
  in
  threads := !threads @ [ t ];
  current := Some t;
  Fun.protect
    ~finally:(fun () -> current := None)
    (fun () -> Effect.Deep.match_with f () (handler t))

(* Run thread [t]'s pending operation, then up to the point where its
   following operation is reified — so every scheduling decision sits
   exactly between two atomic operations. *)
let step t =
  current := Some t;
  Fun.protect
    ~finally:(fun () -> current := None)
    (fun () ->
      match t.resume with
      | Resume { op; write; k } ->
          t.resume <- Invalid;
          trace := (t.tid, t.label) :: !trace;
          let v = op () in
          if write then wake_all ();
          Effect.Deep.continue k v
      | Unparked k ->
          t.resume <- Invalid;
          trace := (t.tid, "wake") :: !trace;
          Effect.Deep.continue k ()
      | Invalid -> assert false)

let run ?(max_schedules = 3_000_000) setup =
  (* DFS stack, deepest decision first: (chosen tid, unexplored tids). *)
  let stack = ref [] in
  let schedules = ref 0 in
  let max_depth = ref 0 in
  let exhausted = ref false in
  while not !exhausted do
    incr schedules;
    if !schedules > max_schedules then raise (Schedule_limit max_schedules);
    threads := [];
    finals := [];
    trace := [];
    setup ();
    let plan = Array.of_list (List.rev !stack) in
    let depth = ref 0 in
    (try
       let rec loop () =
         match List.filter (fun t -> t.status = Ready) !threads with
         | [] ->
             if List.exists (fun t -> t.status = Parked) !threads then
               raise (Deadlock (render_trace ()))
         | ready ->
             let t =
               if !depth < Array.length plan then begin
                 (* replaying the prefix of a previously explored run *)
                 let chosen, _ = plan.(!depth) in
                 match List.find_opt (fun t -> t.tid = chosen) ready with
                 | Some t -> t
                 | None ->
                     failwith
                       "Wool_check.Sched: replay diverged (scenario setup is \
                        not deterministic)"
               end
               else begin
                 let t = List.hd ready in
                 stack :=
                   (t.tid, List.map (fun t -> t.tid) (List.tl ready)) :: !stack;
                 t
               end
             in
             incr depth;
             step t;
             loop ()
       in
       loop ();
       if !depth > !max_depth then max_depth := !depth;
       List.iter (fun f -> f ()) (List.rev !finals)
     with
    | Deadlock _ | Schedule_limit _ | Violation _ as e -> raise e
    | e -> raise (Violation (Printexc.to_string e, render_trace ())));
    let rec backtrack = function
      | [] ->
          exhausted := true;
          []
      | (_, []) :: rest -> backtrack rest
      | (_, next :: todo) :: rest -> (next, todo) :: rest
    in
    stack := backtrack !stack
  done;
  { schedules = !schedules; max_depth = !max_depth }
