(* Bounded model-checking scenarios over the checked protocol
   instantiations. Each scenario is small enough to explore every
   interleaving: setup builds the stack (and may run protocol prefix
   operations directly, unscheduled), threads are the racing owner /
   thieves, and the final block asserts the outcome of each schedule —
   exactly-once execution, quiescence, and counter balance. Coverage
   flags accumulated across schedules additionally assert that the
   exploration actually visited the interesting paths (a steal, a
   back-off, a privatize) rather than passing vacuously. *)

module Ds = Direct_stack_checked
module Cl = Chase_lev_checked
module Iq = Inject_queue_checked

let check cond msg = if not cond then failwith msg

let quiescent t =
  match Ds.check_quiescent t with
  | [] -> ()
  | v :: _ -> failwith ("not quiescent: " ^ v)

let balanced t =
  let s = Ds.stats t in
  check
    (s.Ds.spawns
    = s.Ds.inlined_private + s.Ds.inlined_public + s.Ds.joins_stolen)
    "spawn/join imbalance";
  check (s.Ds.steals = s.Ds.joins_stolen) "steal/join-stolen imbalance"

(* Owner-side join of the youngest descriptor: inline, or wait out the
   thief and reclaim — the pool's join protocol reduced to the stack. *)
let join ?record t =
  match Ds.pop t with
  | Ds.Task (v, _) -> ( match record with Some r -> r v | None -> ())
  | Ds.Stolen { thief; index } ->
      if thief >= 0 then
        while not (Ds.stolen_done t ~index) do
          Shadow_atomic.cpu_relax ()
        done;
      Ds.reclaim t ~index

(* A thief making one steal attempt, completing on success. *)
let attempt ?on_backoff ~thief ~record t =
  match Ds.steal t ~thief with
  | Ds.Stolen_task (v, index) ->
      record v;
      Ds.complete_steal t ~index
  | Ds.Fail -> ()
  | Ds.Backoff -> ( match on_backoff with Some f -> f () | None -> ())

type t = {
  name : string;
  descr : string;
  run : max_schedules:int -> Sched.stats;
}

type outcome = Pass of Sched.stats | Fail of string

let run_one ?(max_schedules = 3_000_000) s =
  match s.run ~max_schedules with
  | stats -> Pass stats
  | exception Sched.Violation (msg, sched) ->
      Fail (Printf.sprintf "%s\n  schedule: %s" msg sched)
  | exception Sched.Deadlock sched ->
      Fail (Printf.sprintf "deadlock\n  schedule: %s" sched)
  | exception Sched.Schedule_limit n ->
      Fail (Printf.sprintf "exceeded %d schedules without converging" n)
  | exception e -> Fail (Printexc.to_string e)

(* -- Scenario 1: the full EMPTY -> TASK -> STOLEN -> DONE lifecycle of a
   single public descriptor, owner join racing one thief. *)
let single_task_lifecycle =
  let run ~max_schedules =
    let saw_inline = ref false and saw_steal = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let t = Ds.create ~capacity:1 ~publicity:Ds.All_public ~dummy:(-1) () in
          let execd = Array.make 1 0 in
          let record v = execd.(v) <- execd.(v) + 1 in
          Sched.spawn (fun () ->
              Ds.push t 0;
              join t ~record:(fun v ->
                  saw_inline := true;
                  record v));
          Sched.spawn (fun () ->
              attempt t ~thief:1 ~record:(fun v ->
                  saw_steal := true;
                  record v));
          Sched.final (fun () ->
              check (execd.(0) = 1) "task 0 not executed exactly once";
              quiescent t;
              balanced t))
    in
    check !saw_inline "coverage: owner inline never explored";
    check !saw_steal "coverage: successful steal never explored";
    stats
  in
  {
    name = "single-task-lifecycle";
    descr = "owner push+join vs one thief on one public descriptor";
    run;
  }

(* -- Scenario 2: owner working through a two-deep stack against a
   thief; exercises join-of-stolen (spin for DONE, reclaim) under every
   interleaving of the thief's steal. *)
let stack_vs_one_thief =
  let run ~max_schedules =
    let saw_steal = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let t = Ds.create ~capacity:2 ~publicity:Ds.All_public ~dummy:(-1) () in
          let execd = Array.make 2 0 in
          let record v = execd.(v) <- execd.(v) + 1 in
          Sched.spawn (fun () ->
              Ds.push t 0;
              Ds.push t 1;
              join t ~record;
              join t ~record);
          Sched.spawn (fun () ->
              attempt t ~thief:1 ~record:(fun v ->
                  saw_steal := true;
                  record v));
          Sched.final (fun () ->
              check (execd.(0) = 1) "task 0 not executed exactly once";
              check (execd.(1) = 1) "task 1 not executed exactly once";
              quiescent t;
              balanced t))
    in
    check !saw_steal "coverage: successful steal never explored";
    stats
  in
  {
    name = "stack-vs-one-thief";
    descr = "two-deep owner stack, LIFO joins vs one thief";
    run;
  }

(* -- Scenario 3: two thieves race the CAS on one descriptor; the winner
   commits through the bot-frozen packed-word window (PR 4) while the
   loser must fail, never back off, and never double-execute. *)
let two_thieves_one_task =
  let run ~max_schedules =
    let wins = [| false; false |] in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let t = Ds.create ~capacity:1 ~publicity:Ds.All_public ~dummy:(-1) () in
          let execd = Array.make 1 0 in
          Ds.push t 0;
          let thief i =
            attempt t ~thief:(i + 1)
              ~record:(fun v ->
                wins.(i) <- true;
                execd.(v) <- execd.(v) + 1)
              ~on_backoff:(fun () -> failwith "unexpected back-off")
          in
          Sched.spawn (fun () -> thief 0);
          Sched.spawn (fun () -> thief 1);
          Sched.final (fun () ->
              (* the owner joins after the race settles *)
              join t;
              check (execd.(0) = 1) "task 0 not executed exactly once";
              let s = Ds.stats t in
              check (s.Ds.steals = 1) "exactly one steal must commit";
              check (s.Ds.backoffs = 0) "no back-off without recycling";
              quiescent t;
              balanced t))
    in
    check wins.(0) "coverage: thief 1 never won";
    check wins.(1) "coverage: thief 2 never won";
    stats
  in
  {
    name = "two-thieves-one-task";
    descr = "steal-steal CAS race through the packed botw commit";
    run;
  }

(* -- Scenario 4: the delayed-thief ABA (paper SIII-A). The thief reads
   TASK at slot 1, then the owner inlines it, joins a finished steal,
   reclaims below it and refills both slots — so the thief's delayed CAS
   can win against a *recycled* descriptor. The bot re-read must turn
   that into a restore + Backoff, never a double execution. *)
let recycled_descriptor_backoff =
  let run ~max_schedules =
    let saw_backoff = ref false and saw_steal = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let t = Ds.create ~capacity:2 ~publicity:Ds.All_public ~dummy:(-1) () in
          let execd = Array.make 4 0 in
          let record v = execd.(v) <- execd.(v) + 1 in
          (* unscheduled prefix: slot 0 already stolen and finished *)
          Ds.push t 0;
          Ds.push t 1;
          (match Ds.steal t ~thief:7 with
          | Ds.Stolen_task (0, 0) ->
              record 0;
              Ds.complete_steal t ~index:0
          | _ -> failwith "setup: expected to steal task 0 at slot 0");
          let backoffs_this_run = ref 0 in
          Sched.spawn (fun () ->
              join t ~record (* task 1, or join its steal *);
              join t ~record (* finished steal of task 0: reclaim to bot 0 *);
              Ds.push t 2;
              Ds.push t 3 (* recycles slot 1's descriptor *);
              join t ~record;
              join t ~record);
          Sched.spawn (fun () ->
              attempt t ~thief:2
                ~record:(fun v ->
                  saw_steal := true;
                  record v)
                ~on_backoff:(fun () ->
                  saw_backoff := true;
                  incr backoffs_this_run));
          Sched.final (fun () ->
              for v = 0 to 3 do
                check (execd.(v) = 1)
                  (Printf.sprintf "task %d not executed exactly once" v)
              done;
              let s = Ds.stats t in
              check
                (s.Ds.backoffs = !backoffs_this_run)
                "backoff counter out of sync";
              quiescent t;
              balanced t))
    in
    check !saw_backoff "coverage: recycled-descriptor back-off never explored";
    check !saw_steal "coverage: successful steal never explored";
    stats
  in
  {
    name = "recycled-descriptor-backoff";
    descr = "delayed CAS wins vs a recycled slot; bot re-read backs off";
    run;
  }

(* -- Scenario 5: steal racing privatize exactly at the trip wire. The
   unscheduled prefix drives consec_public_inlines to one below the
   threshold; the owner's next public inline privatises (disarming the
   wire and scheduling a re-arm) at the same time as the thief's CAS on
   the same descriptor. *)
let trip_wire_steal_vs_privatize =
  let run ~max_schedules =
    let saw_privatize = ref false and saw_steal = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let t =
            Ds.create ~capacity:8 ~publicity:(Ds.Adaptive 1) ~dummy:(-1) ()
          in
          let privatized_this_run = ref false in
          Ds.set_event_hooks t
            ~on_publish:(fun () -> ())
            ~on_privatize:(fun () ->
              saw_privatize := true;
              privatized_this_run := true);
          let execd = Array.make 2 0 in
          let record v = execd.(v) <- execd.(v) + 1 in
          (* unscheduled prefix: 15 consecutive public inlines *)
          for _ = 1 to 15 do
            Ds.push t (-2);
            match Ds.pop t with
            | Ds.Task (-2, true) -> ()
            | _ -> failwith "setup: expected a public inline"
          done;
          Ds.push t 0 (* public at slot 0, wire at 0 *);
          Sched.spawn (fun () ->
              join t ~record (* 16th public inline => privatize, or stolen *);
              Ds.push t 1 (* re-arms the wire if the privatize fired *);
              join t ~record);
          Sched.spawn (fun () ->
              attempt t ~thief:1 ~record:(fun v ->
                  saw_steal := true;
                  record v));
          Sched.final (fun () ->
              check (execd.(0) = 1) "task 0 not executed exactly once";
              check (execd.(1) = 1) "task 1 not executed exactly once";
              let s = Ds.stats t in
              check
                (s.Ds.privatize_events = if !privatized_this_run then 1 else 0)
                "privatize counter out of sync";
              quiescent t;
              balanced t))
    in
    check !saw_privatize "coverage: privatize never explored";
    check !saw_steal "coverage: successful steal never explored";
    stats
  in
  {
    name = "trip-wire-steal-vs-privatize";
    descr = "adaptive window shrink racing a thief CAS on the wire slot";
    run;
  }

(* -- Scenario 6: the trip wire springs under exploration and the owner
   services the publication while joining — private descriptors become
   public mid-run. *)
let publish_window =
  let run ~max_schedules =
    let saw_publish = ref false and saw_steal = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let t =
            Ds.create ~capacity:4 ~publicity:(Ds.Adaptive 2) ~dummy:(-1) ()
          in
          Ds.set_event_hooks t
            ~on_publish:(fun () -> saw_publish := true)
            ~on_privatize:(fun () -> ());
          let execd = Array.make 3 0 in
          let record v = execd.(v) <- execd.(v) + 1 in
          (* slots 0,1 public (wire at 1), slot 2 private; slot 0 already
             stolen below the wire *)
          Ds.push t 0;
          Ds.push t 1;
          Ds.push t 2;
          (match Ds.steal t ~thief:7 with
          | Ds.Stolen_task (0, 0) ->
              record 0;
              Ds.complete_steal t ~index:0
          | _ -> failwith "setup: expected to steal task 0");
          Sched.spawn (fun () ->
              join t ~record;
              join t ~record;
              join t ~record);
          Sched.spawn (fun () ->
              (* stealing slot 1 fires the wire; the owner's joins must
                 service the publish request *)
              attempt t ~thief:2 ~record:(fun v ->
                  saw_steal := true;
                  record v));
          Sched.final (fun () ->
              for v = 0 to 2 do
                check (execd.(v) = 1)
                  (Printf.sprintf "task %d not executed exactly once" v)
              done;
              quiescent t;
              balanced t))
    in
    check !saw_publish "coverage: publish service never explored";
    check !saw_steal "coverage: successful steal never explored";
    stats
  in
  {
    name = "publish-window";
    descr = "wire fires mid-run; owner publishes private descriptors";
    run;
  }

(* -- Scenario 7: the Chase-Lev baseline's classic race — owner pop and
   thief steal meet on the last element and settle it with the CAS on
   [top]. Exercises the second instantiation of the functorised body. *)
let chase_lev_last_task =
  let run ~max_schedules =
    let owner_got = ref false and thief_got = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let q = Cl.create ~capacity:2 ~dummy:(-1) () in
          let execd = Array.make 2 0 in
          let record v = execd.(v) <- execd.(v) + 1 in
          Cl.push q 0;
          Cl.push q 1;
          Sched.spawn (fun () ->
              let pop () =
                match Cl.pop q with
                | Some v ->
                    owner_got := true;
                    record v
                | None -> ()
              in
              pop ();
              pop ());
          Sched.spawn (fun () ->
              match Cl.steal q with
              | `Stolen v ->
                  thief_got := true;
                  record v
              | `Empty | `Retry -> ());
          Sched.final (fun () ->
              (* drain whatever the lost races left behind *)
              let rec drain () =
                match Cl.steal q with
                | `Stolen v ->
                    record v;
                    drain ()
                | `Retry -> drain ()
                | `Empty -> ()
              in
              drain ();
              check (execd.(0) = 1) "task 0 not executed exactly once";
              check (execd.(1) = 1) "task 1 not executed exactly once";
              check (Cl.size q = 0) "deque not drained"))
    in
    check !owner_got "coverage: owner pop never won";
    check !thief_got "coverage: thief steal never won";
    stats
  in
  {
    name = "chase-lev-last-task";
    descr = "owner pop vs thief steal settling the last element";
    run;
  }

(* ---- ingress scenarios: the external-submission protocol reduced to
   its shared state. A ticket is a Shadow_atomic int (0 pending, 1 done,
   2 rejected) resolved by CAS from 0 — first writer wins, exactly like
   the mutex-guarded first-resolve-wins of the runtime ticket. *)

let tk_pending = 0
let tk_done = 1
let tk_rejected = 2
let resolve tk st = ignore (Shadow_atomic.compare_and_set tk tk_pending st : bool)

(* -- Scenario 8: submit racing shutdown. The submitter follows the
   runtime's admission protocol (check stop -> push -> re-check stop,
   draining its own lane if stop won the race); shutdown sets stop and
   drains. The invariant under every interleaving: the ticket resolves
   (never a stranded submitter) and the lane ends empty (no element
   survives shutdown un-rejected). *)
let submit_vs_shutdown =
  let run ~max_schedules =
    let saw_early_reject = ref false
    and saw_self_drain = ref false
    and saw_shutdown_drain = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let q = Iq.create ~capacity:2 ~dummy:(-1) () in
          let stop = Shadow_atomic.make false in
          let tk = Shadow_atomic.make tk_pending in
          (* pop-and-reject everything queued; whoever pops an element
             owns its resolution, exactly like [ij_drop] *)
          let rec drain_reject mark =
            match Iq.try_pop q with
            | Some 0 ->
                mark ();
                resolve tk tk_rejected;
                drain_reject mark
            | Some _ -> failwith "drained a job nobody submitted"
            | None -> ()
          in
          Sched.spawn (fun () ->
              (* submitter *)
              if Shadow_atomic.get stop then begin
                saw_early_reject := true;
                resolve tk tk_rejected
              end
              else if not (Iq.try_push q 0) then resolve tk tk_rejected
              else if
                (* admitted_post's re-check: if stop won between our
                   push and here, no worker will drain — do it ourselves *)
                Shadow_atomic.get stop
              then drain_reject (fun () -> saw_self_drain := true));
          Sched.spawn (fun () ->
              (* shutdown *)
              Shadow_atomic.set stop true;
              drain_reject (fun () -> saw_shutdown_drain := true));
          Sched.final (fun () ->
              check
                (Shadow_atomic.get tk <> tk_pending)
                "submit-vs-shutdown stranded the ticket";
              check (Iq.size q = 0) "lane not empty after shutdown"))
    in
    check !saw_early_reject "coverage: pre-push stop never explored";
    check !saw_self_drain "coverage: submitter self-drain never explored";
    check !saw_shutdown_drain "coverage: shutdown drain never explored";
    stats
  in
  {
    name = "submit-vs-shutdown";
    descr = "admission re-check vs stop/drain: ticket always resolves";
    run;
  }

(* -- Scenario 9: one producer pushing into a *full* lane while a worker
   drains it — the [Reject] admission boundary. The producer's push and
   the worker's pops meet on the same cells, so every interleaving of
   the publish (seq bump) against the probe (seq read) is explored:
   admitted iff a pop freed a slot before the probe, and an admitted job
   is drained exactly once. This scenario is what catches the capacity-1
   lap bug (a producer one lap ahead reading a published seq as free). *)
let submit_vs_drain =
  let run ~max_schedules =
    let saw_reject = ref false and saw_admit = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let q = Iq.create ~capacity:2 ~dummy:(-1) () in
          let tks = Array.init 3 (fun _ -> Shadow_atomic.make tk_pending) in
          let execd = Array.make 3 0 in
          let admitted = [| true; true; false |] in
          (* unscheduled prefix: the lane is full *)
          check (Iq.try_push q 0 && Iq.try_push q 1) "setup: prefill failed";
          let pop_run () =
            match Iq.try_pop q with
            | Some v ->
                execd.(v) <- execd.(v) + 1;
                resolve tks.(v) tk_done
            | None -> ()
          in
          Sched.spawn (fun () ->
              (* producer: [Reject] admission on job 2 *)
              if Iq.try_push q 2 then admitted.(2) <- true
              else resolve tks.(2) tk_rejected);
          Sched.spawn (fun () ->
              (* worker: one drain pass per prefilled slot *)
              pop_run ();
              pop_run ());
          Sched.final (fun () ->
              (* quiescent drain of whatever the worker raced past *)
              let rec drain () =
                match Iq.try_pop q with
                | Some v ->
                    execd.(v) <- execd.(v) + 1;
                    resolve tks.(v) tk_done;
                    drain ()
                | None -> ()
              in
              drain ();
              check (Iq.size q = 0) "lane not drained";
              for i = 0 to 2 do
                let st = Shadow_atomic.get tks.(i) in
                check (st <> tk_pending)
                  (Printf.sprintf "ticket %d stranded" i);
                check
                  (execd.(i) = if admitted.(i) then 1 else 0)
                  (Printf.sprintf "job %d ran %d times (admitted: %b)" i
                     execd.(i) admitted.(i))
              done;
              if admitted.(2) then saw_admit := true else saw_reject := true))
    in
    check !saw_reject "coverage: full-lane rejection never explored";
    check !saw_admit "coverage: freed-slot admission never explored";
    stats
  in
  {
    name = "submit-vs-drain";
    descr = "producer vs draining worker on a full lane (Reject boundary)";
    run;
  }

(* -- Scenario 10: two producers racing for the last free slot — the
   enqueue-cursor CAS race. Exactly one may claim it; the loser's failed
   CAS must re-probe and observe full (never spin forever, never
   overwrite), mirroring the two-thieves steal race on the deque side. *)
let submit_vs_submit =
  let run ~max_schedules =
    let wins = [| false; false |] in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let q = Iq.create ~capacity:2 ~dummy:(-1) () in
          let tks = Array.init 3 (fun _ -> Shadow_atomic.make tk_pending) in
          let admitted = [| true; false; false |] in
          (* unscheduled prefix: one slot taken, one free *)
          check (Iq.try_push q 0) "setup: prefill failed";
          let producer i =
            if Iq.try_push q i then begin
              admitted.(i) <- true;
              wins.(i - 1) <- true
            end
            else resolve tks.(i) tk_rejected
          in
          Sched.spawn (fun () -> producer 1);
          Sched.spawn (fun () -> producer 2);
          Sched.final (fun () ->
              check
                (not (admitted.(1) && admitted.(2)))
                "both producers claimed the single free slot";
              check
                (admitted.(1) || admitted.(2))
                "the free slot admitted nobody";
              let rec drain () =
                match Iq.try_pop q with
                | Some v ->
                    check admitted.(v)
                      (Printf.sprintf "drained job %d was never admitted" v);
                    resolve tks.(v) tk_done;
                    drain ()
                | None -> ()
              in
              drain ();
              check (Iq.size q = 0) "lane not drained";
              for i = 0 to 2 do
                check
                  (Shadow_atomic.get tks.(i) <> tk_pending)
                  (Printf.sprintf "ticket %d stranded" i)
              done))
    in
    check wins.(0) "coverage: producer 1 never won the slot";
    check wins.(1) "coverage: producer 2 never won the slot";
    stats
  in
  {
    name = "submit-vs-submit";
    descr = "enqueue-cursor CAS race for the last free slot";
    run;
  }

(* ---- relaxed-protocol scenarios: the runtime's at-least-once
   discipline (pool.ml) reduced to the checker. A task is an index into
   a completion-flag array. Every execution goes through the spawn
   wrapper's second-chance guard — check the flag, run, set the flag —
   whose check/set window is itself interleaved by the scheduler, so the
   bounded multiplicity these protocols permit is explored, not modelled
   away. A join that cannot find its task in the pool executes it
   itself, so a protocol-level lost task can never hang a join; the
   final blocks assert at-least-once delivery with a small multiplicity
   bound instead of exactly-once. *)

module Wm = Ws_mult_checked
module Ls = Lowsync_checked

type relaxed_harness = {
  completed : bool Shadow_atomic.t array;
  execd : int array; (* committed body runs per task *)
  skips : int array; (* extractions the completion guard skipped *)
}

let harness n =
  {
    completed = Array.init n (fun _ -> Shadow_atomic.make false);
    execd = Array.make n 0;
    skips = Array.make n 0;
  }

(* the wrapper guard; true if this call ran the body *)
let guarded h v =
  if not (Shadow_atomic.get h.completed.(v)) then begin
    h.execd.(v) <- h.execd.(v) + 1;
    Shadow_atomic.set h.completed.(v) true;
    true
  end
  else begin
    h.skips.(v) <- h.skips.(v) + 1;
    false
  end

(* join_relaxed reduced: drain-run out-of-order siblings, self-execute
   on a miss (the pool lost or a thief holds the task). *)
let rec join_relaxed ?on_miss ~take h v =
  match take () with
  | Some u when u = v -> ignore (guarded h u : bool)
  | Some u ->
      ignore (guarded h u : bool);
      join_relaxed ?on_miss ~take h v
  | None ->
      (match on_miss with Some f -> f () | None -> ());
      ignore (guarded h v : bool)

(* -- Scenario R1: ws_mult owner take vs one thief, no fences anywhere.
   The boundary cell may be delivered to both (multiplicity); the guard
   windows may interleave so both actually run the body. Never fewer
   than one execution, never a hang. *)
let ws_mult_take_vs_steal =
  let run ~max_schedules =
    let saw_thief_run = ref false
    and saw_thief_skip = ref false
    and saw_dup = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let t = Wm.create ~capacity:2 ~dummy:(-1) () in
          let h = harness 2 in
          let take () = Wm.take t in
          Wm.put t 0;
          Wm.put t 1;
          Sched.spawn (fun () ->
              join_relaxed ~take h 1;
              join_relaxed ~take h 0);
          Sched.spawn (fun () ->
              match Wm.steal t with
              | Some v ->
                  if guarded h v then saw_thief_run := true
                  else saw_thief_skip := true
              | None -> ());
          Sched.final (fun () ->
              check (h.execd.(1) = 1) "task 1 not executed exactly once";
              check (h.execd.(0) >= 1) "task 0 lost (at-least-once violated)";
              check (h.execd.(0) <= 2) "task 0 ran more than twice";
              if h.execd.(0) > 1 then saw_dup := true))
    in
    check !saw_thief_run "coverage: thief execution never explored";
    check !saw_thief_skip "coverage: guard skip of a duplicate never explored";
    check !saw_dup "coverage: double execution (multiplicity) never explored";
    stats
  in
  {
    name = "ws-mult-take-vs-steal";
    descr = "fence-free owner take vs thief on the boundary cell";
    run;
  }

(* -- Scenario R2: the ws_mult duplicate-execution window. Two thieves
   read/validate/plain-write [head] with no CAS, so both can extract the
   same task; with the owner's self-executing join in the mix the task
   can run up to three times, but at least once, on every schedule. *)
let ws_mult_two_thieves_dup =
  let run ~max_schedules =
    let wins = [| false; false |] and saw_both = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let t = Wm.create ~capacity:2 ~dummy:(-1) () in
          let h = harness 1 in
          let take () = Wm.take t in
          Wm.put t 0;
          let got = [| false; false |] in
          let thief i =
            match Wm.steal t with
            | Some v ->
                got.(i) <- true;
                wins.(i) <- true;
                ignore (guarded h v : bool)
            | None -> ()
          in
          Sched.spawn (fun () -> thief 0);
          Sched.spawn (fun () -> thief 1);
          Sched.final (fun () ->
              (* the owner joins after the race settles *)
              join_relaxed ~take h 0;
              if got.(0) && got.(1) then saw_both := true;
              check (h.execd.(0) >= 1) "task 0 lost (at-least-once violated)";
              check (h.execd.(0) <= 3) "task 0 ran more than three times"))
    in
    check wins.(0) "coverage: thief 1 never extracted";
    check wins.(1) "coverage: thief 2 never extracted";
    check !saw_both "coverage: thief-thief duplicate extraction never explored";
    stats
  in
  {
    name = "ws-mult-two-thieves-dup";
    descr = "no-CAS thief/thief race: both may extract the same task";
    run;
  }

(* -- Scenario R3: the ws_mult recycled-cell ABA. The thief reads task 0
   from cell 0, stalls; the owner takes and completes 0 and puts task 1
   into the same (recycled) cell; the thief's stale validation still
   passes and its plain [head] write advances past the cell — delivering
   a completed task to the thief and hiding task 1 from everyone. The
   guard turns the stale delivery into a skip and the owner's join
   self-executes the hidden task. *)
let ws_mult_recycled_cell =
  let run ~max_schedules =
    let saw_stale_skip = ref false
    and saw_lost_selfrun = ref false
    and saw_steal = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let t = Wm.create ~capacity:2 ~dummy:(-1) () in
          let h = harness 2 in
          let take () = Wm.take t in
          Wm.put t 0;
          let missed = ref false in
          Sched.spawn (fun () ->
              join_relaxed ~take h 0;
              Wm.put t 1 (* recycles cell 0 *);
              join_relaxed ~take h 1 ~on_miss:(fun () -> missed := true));
          Sched.spawn (fun () ->
              match Wm.steal t with
              | Some v ->
                  saw_steal := true;
                  if not (guarded h v) && v = 0 then saw_stale_skip := true
              | None -> ());
          Sched.final (fun () ->
              if !missed && h.skips.(0) > 0 then saw_lost_selfrun := true;
              check (h.execd.(0) >= 1) "task 0 lost (at-least-once violated)";
              check (h.execd.(0) <= 2) "task 0 ran more than twice";
              check (h.execd.(1) >= 1) "task 1 lost (at-least-once violated)";
              check (h.execd.(1) <= 2) "task 1 ran more than twice"))
    in
    check !saw_steal "coverage: successful steal never explored";
    check !saw_stale_skip
      "coverage: stale delivery of a completed task never explored";
    check !saw_lost_selfrun
      "coverage: lost-task self-execution at join never explored";
    stats
  in
  {
    name = "ws-mult-recycled-cell";
    descr = "stale thief ABA on a recycled cell: skip + self-run recovery";
    run;
  }

(* -- Scenario R4: the lowsync boundary duplicate. The owner's take is
   plain (no last-element CAS as in Chase-Lev) while the thief claims
   with one CAS, so on the last cell both may extract the same task —
   the one relaxed behaviour this mode deliberately accepts. [head] is
   monotone, so the pool must also read empty at quiescence. *)
let lowsync_boundary_dup =
  let run ~max_schedules =
    let saw_dup = ref false
    and saw_owner = ref false
    and saw_thief = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let q = Ls.create ~capacity:2 ~dummy:(-1) () in
          let h = harness 1 in
          let take () = Ls.take q in
          Ls.put q 0;
          Sched.spawn (fun () ->
              join_relaxed ~take h 0;
              saw_owner := true);
          Sched.spawn (fun () ->
              match Ls.steal q with
              | Some v ->
                  saw_thief := true;
                  ignore (guarded h v : bool)
              | None -> ());
          Sched.final (fun () ->
              check (h.execd.(0) >= 1) "task 0 lost (at-least-once violated)";
              check (h.execd.(0) <= 2) "task 0 ran more than twice";
              if h.execd.(0) = 2 then saw_dup := true;
              check (Ls.size q = 0) "lowsync pool not empty at quiescence"))
    in
    check !saw_owner "coverage: owner join never completed";
    check !saw_thief "coverage: thief claim never explored";
    check !saw_dup "coverage: boundary double execution never explored";
    stats
  in
  {
    name = "lowsync-boundary-dup";
    descr = "plain owner take vs one-CAS thief on the last cell";
    run;
  }

(* -- Scenario R5: the lowsync stale claim. The thief reads task 0 from
   cell 0, stalls; the owner drains and completes 0 and recycles the
   cell with task 1; the thief's CAS on [head] still succeeds (same
   index), claiming the recycled cell under a value it read before the
   recycle. Guard skip + join self-run recover, and the CAS keeps
   [head] monotone so the pool reads empty at quiescence. *)
let lowsync_stale_claim =
  let run ~max_schedules =
    let saw_stale_skip = ref false and saw_selfrun = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let q = Ls.create ~capacity:2 ~dummy:(-1) () in
          let h = harness 2 in
          let take () = Ls.take q in
          Ls.put q 0;
          let missed = ref false in
          Sched.spawn (fun () ->
              join_relaxed ~take h 0;
              Ls.put q 1 (* recycles cell 0 *);
              join_relaxed ~take h 1 ~on_miss:(fun () -> missed := true));
          Sched.spawn (fun () ->
              match Ls.steal q with
              | Some v -> if not (guarded h v) && v = 0 then saw_stale_skip := true
              | None -> ());
          Sched.final (fun () ->
              if !missed then saw_selfrun := true;
              check (h.execd.(0) >= 1) "task 0 lost (at-least-once violated)";
              check (h.execd.(0) <= 2) "task 0 ran more than twice";
              check (h.execd.(1) >= 1) "task 1 lost (at-least-once violated)";
              check (h.execd.(1) <= 2) "task 1 ran more than twice"))
    in
    check !saw_stale_skip
      "coverage: stale claim of a completed task never explored";
    check !saw_selfrun "coverage: join self-execution never explored";
    stats
  in
  {
    name = "lowsync-stale-claim";
    descr = "delayed CAS claims a recycled cell; skip + self-run recovery";
    run;
  }

(* -- Scenario R6: lowsync thief/thief serialization. Unlike ws_mult,
   the per-steal CAS means two thieves can never extract the same task:
   exactly one claim commits. *)
let lowsync_two_thieves_serialize =
  let run ~max_schedules =
    let wins = [| false; false |] in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let q = Ls.create ~capacity:2 ~dummy:(-1) () in
          let h = harness 1 in
          let take () = Ls.take q in
          Ls.put q 0;
          let got = [| false; false |] in
          let thief i =
            match Ls.steal q with
            | Some v ->
                got.(i) <- true;
                wins.(i) <- true;
                ignore (guarded h v : bool)
            | None -> ()
          in
          Sched.spawn (fun () -> thief 0);
          Sched.spawn (fun () -> thief 1);
          Sched.final (fun () ->
              check
                (not (got.(0) && got.(1)))
                "both thieves extracted the same task past the CAS";
              join_relaxed ~take h 0;
              check (h.execd.(0) = 1) "task 0 not executed exactly once";
              check (Ls.size q = 0) "lowsync pool not empty at quiescence"))
    in
    check wins.(0) "coverage: thief 1 never won the claim";
    check wins.(1) "coverage: thief 2 never won the claim";
    stats
  in
  {
    name = "lowsync-two-thieves-serialize";
    descr = "per-steal CAS: thief/thief duplicates are impossible";
    run;
  }

(* ---- lifecycle scenarios: cancellation and deadlines reduced to
   their shared state. Settlement mirrors [injected_of]: a [claimed]
   flag is CAS-won exactly once and only the winner resolves the
   ticket — completions, cancels, expiries and shutdown drops all ride
   the same claim. *)

let tk_cancelled = 3
let tk_expired = 4

(* -- Scenario C1: cancel racing delivery, with multiplicity. A
   canceller sets the token while two deliveries of the same job (the
   duplicate a relaxed mode or the [Dup] drain fault produces) each run
   the worker's check-token / run / settle sequence. Under every
   interleaving the ticket resolves exactly once — done or cancelled —
   and the body runs at most once per delivery, never by a delivery
   that observed the token. *)
let cancel_vs_complete =
  let run ~max_schedules =
    let saw_done = ref false
    and saw_cancelled = ref false
    and saw_dup_run = ref false
    and saw_cancel_after_run = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let token = Shadow_atomic.make false in
          let claimed = Shadow_atomic.make false in
          let tk = Shadow_atomic.make tk_pending in
          let runs = ref 0 in
          let settle st =
            if Shadow_atomic.compare_and_set claimed false true then
              resolve tk st
          in
          let delivery () =
            if Shadow_atomic.get token then settle tk_cancelled
            else begin
              incr runs;
              settle tk_done
            end
          in
          Sched.spawn delivery;
          Sched.spawn delivery;
          Sched.spawn (fun () -> Shadow_atomic.set token true);
          Sched.final (fun () ->
              let st = Shadow_atomic.get tk in
              check (st <> tk_pending) "cancel-vs-complete stranded the ticket";
              check
                (st = tk_done || st = tk_cancelled)
                "ticket resolved to an impossible state";
              check (!runs <= 2) "body ran more than its two deliveries";
              if st = tk_done then saw_done := true
              else begin
                saw_cancelled := true;
                if !runs > 0 then saw_cancel_after_run := true
              end;
              if !runs = 2 then saw_dup_run := true))
    in
    check !saw_done "coverage: completion winning never explored";
    check !saw_cancelled "coverage: cancel winning never explored";
    check !saw_dup_run "coverage: duplicate execution never explored";
    check !saw_cancel_after_run
      "coverage: cancel settling against a racing run never explored";
    stats
  in
  {
    name = "cancel-vs-complete";
    descr = "token set vs duplicate deliveries: one settlement wins";
    run;
  }

(* -- Scenario C2: expiry racing dequeue on a virtual clock. A ticker
   advances the clock past the job's deadline while the worker performs
   the dequeue-time expiry check; whichever way the race lands, an
   expired settlement means the body never ran and a done settlement
   means it ran exactly once. *)
let expire_vs_dequeue =
  let run ~max_schedules =
    let saw_run = ref false and saw_expired = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let clock = Shadow_atomic.make 0 in
          let deadline = 1 in
          let claimed = Shadow_atomic.make false in
          let tk = Shadow_atomic.make tk_pending in
          let runs = ref 0 in
          let settle st =
            if Shadow_atomic.compare_and_set claimed false true then
              resolve tk st
          in
          Sched.spawn (fun () ->
              (* the clock ticking past the deadline *)
              Shadow_atomic.set clock 1;
              Shadow_atomic.set clock 2);
          Sched.spawn (fun () ->
              (* worker at dequeue: expiry check, then run-and-settle *)
              if Shadow_atomic.get clock > deadline then settle tk_expired
              else begin
                incr runs;
                settle tk_done
              end);
          Sched.final (fun () ->
              let st = Shadow_atomic.get tk in
              check (st <> tk_pending) "expire-vs-dequeue stranded the ticket";
              if st = tk_done then begin
                saw_run := true;
                check (!runs = 1) "completed job did not run exactly once"
              end
              else begin
                check (st = tk_expired) "impossible ticket state";
                saw_expired := true;
                check (!runs = 0) "expired job ran anyway"
              end))
    in
    check !saw_run "coverage: in-deadline run never explored";
    check !saw_expired "coverage: expiry drop never explored";
    stats
  in
  {
    name = "expire-vs-dequeue";
    descr = "deadline passing vs the dequeue-time expiry check";
    run;
  }

(* -- Scenario C3: a cancelled job racing shutdown. One job sits in a
   lane with its token already set; the worker's drain (which would
   drop it cancelled) races the shutdown drain (which rejects it).
   Either drop is legal — the invariants are that exactly one wins,
   the body never runs, and the lane ends empty. *)
let cancel_vs_shutdown =
  let run ~max_schedules =
    let saw_cancelled = ref false and saw_rejected = ref false in
    let stats =
      Sched.run ~max_schedules (fun () ->
          let q = Iq.create ~capacity:2 ~dummy:(-1) () in
          let claimed = Shadow_atomic.make false in
          let tk = Shadow_atomic.make tk_pending in
          let settle st =
            if Shadow_atomic.compare_and_set claimed false true then
              resolve tk st
          in
          (* unscheduled prefix: one job queued, its token already set *)
          check (Iq.try_push q 0) "setup: push failed";
          Sched.spawn (fun () ->
              (* worker drain: pop, observe the set token, drop *)
              match Iq.try_pop q with
              | Some 0 -> settle tk_cancelled
              | Some _ -> failwith "popped a job nobody queued"
              | None -> ());
          Sched.spawn (fun () ->
              (* shutdown drain: pop, resolve rejected *)
              match Iq.try_pop q with
              | Some 0 -> settle tk_rejected
              | Some _ -> failwith "popped a job nobody queued"
              | None -> ());
          Sched.final (fun () ->
              let st = Shadow_atomic.get tk in
              check (st <> tk_pending) "cancel-vs-shutdown stranded the ticket";
              check
                (st = tk_cancelled || st = tk_rejected)
                "impossible ticket state";
              check (Iq.size q = 0) "lane not empty after the race";
              if st = tk_cancelled then saw_cancelled := true
              else saw_rejected := true))
    in
    check !saw_cancelled "coverage: worker cancel-drop never won";
    check !saw_rejected "coverage: shutdown reject-drain never won";
    stats
  in
  {
    name = "cancel-vs-shutdown";
    descr = "pre-cancelled job: worker drop vs shutdown drain";
    run;
  }

let all =
  [
    single_task_lifecycle;
    stack_vs_one_thief;
    two_thieves_one_task;
    recycled_descriptor_backoff;
    trip_wire_steal_vs_privatize;
    publish_window;
    chase_lev_last_task;
    submit_vs_shutdown;
    submit_vs_drain;
    submit_vs_submit;
    ws_mult_take_vs_steal;
    ws_mult_two_thieves_dup;
    ws_mult_recycled_cell;
    lowsync_boundary_dup;
    lowsync_stale_claim;
    lowsync_two_thieves_serialize;
    cancel_vs_complete;
    expire_vs_dequeue;
    cancel_vs_shutdown;
  ]
