(** Bounded model-checking scenarios over the checked deque protocols:
    the descriptor lifecycle, thief/thief CAS races through the packed
    [botw] commit, the delayed-CAS recycled-descriptor back-off, the
    trip-wire steal-vs-privatize race, mid-run publication, the
    Chase-Lev last-element race, the ingress protocol
    (submit-vs-shutdown ticket resolution, producer/producer/consumer
    races on the injection lanes), and the relaxed at-least-once
    protocols (ws_mult steal-vs-take and thief/thief multiplicity, the
    recycled-cell ABA on both relaxed pools, lowsync's boundary
    duplicate and CAS-serialized thieves), and the submission lifecycle
    (cancel-vs-complete settlement with duplicate deliveries,
    expire-vs-dequeue on a virtual clock, a pre-cancelled job racing
    the shutdown drain). Exact-mode scenarios assert
    exactly-once execution, quiescence and counter balance on every
    schedule; relaxed scenarios assert at-least-once delivery with a
    small multiplicity bound and guard/self-run recovery. All assert
    cross-schedule coverage of the interesting paths. *)

type t = {
  name : string;
  descr : string;
  run : max_schedules:int -> Sched.stats;
}

type outcome = Pass of Sched.stats | Fail of string

val run_one : ?max_schedules:int -> t -> outcome
(** Explore one scenario exhaustively (default cap: 3M schedules). *)

val all : t list
