(** Trace-consistency oracle: validates the per-worker event rings of a
    quiescent pool against its counter totals (accounting) and against
    themselves (steal/spawn/join multiplicity causality over recycled
    descriptor indices — see oracle.ml for why timestamps cannot be
    used). *)

type counts = {
  spawns : int;
  steals : int;
  leap_steals : int;
  joins_stolen : int;
  inlined_private : int;
  inlined_public : int;
  publish_events : int;
  privatize_events : int;
  injected : int;  (** jobs drained from the injection lanes and run *)
}

val check_events :
  direct:bool ->
  counts:counts ->
  dropped:int ->
  Wool_trace.Event.t array array ->
  string list
(** Human-readable violations, [[]] when clean. [direct] enables the
    per-descriptor causality checks (queued modes record [a = -1]).
    When [dropped > 0] the stream is incomplete and nothing is checked. *)
