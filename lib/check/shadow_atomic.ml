(* The instrumented atomic backend: same signature as the production backend,
   but every operation is a scheduling point of {!Sched}. Cells are
   plain mutable records — the scheduler serialises all access, which is
   exactly the sequentially-consistent semantics OCaml gives real
   [Atomic.t] operations. *)

type 'a t = { mutable v : 'a }

let make v = { v }
let make_padded = make (* false sharing is not modelled *)
let get r = Sched.exec ~label:"get" ~write:false (fun () -> r.v)
let set r x = Sched.exec ~label:"set" ~write:true (fun () -> r.v <- x)

let exchange r x =
  Sched.exec ~label:"xchg" ~write:true (fun () ->
      let old = r.v in
      r.v <- x;
      old)

let compare_and_set r old now =
  Sched.exec ~label:"cas" ~write:true (fun () ->
      if r.v == old then begin
        r.v <- now;
        true
      end
      else false)

let fetch_and_add r n =
  Sched.exec ~label:"faa" ~write:true (fun () ->
      let old = r.v in
      r.v <- old + n;
      old)

let cpu_relax () = Sched.relax ()
let is_padded _ = true
let size_words _ = Wool_util.Layout.cache_line_words
