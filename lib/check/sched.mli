(** Systematic (DSCheck-style) scheduler for bounded protocol scenarios.

    Explores every interleaving of a fixed set of threads whose shared
    accesses all go through {!Shadow_atomic}, by depth-first search with
    prefix replay. Scenario setup must be deterministic: each explored
    schedule re-executes it from scratch. *)

type stats = { schedules : int; max_depth : int }

exception Deadlock of string
(** Every live thread is parked in {!relax} and no writer remains; the
    payload is the schedule that got there. *)

exception Schedule_limit of int
(** The exploration exceeded [max_schedules] runs. *)

exception Violation of string * string
(** [(message, schedule)]: a thread or final assertion raised. *)

val spawn : (unit -> unit) -> unit
(** Register a thread. Only from setup code. *)

val final : (unit -> unit) -> unit
(** Register an assertion to run (directly, not under the scheduler)
    after all threads of a schedule finish. Raise to fail the run. *)

val exec : label:string -> write:bool -> (unit -> 'a) -> 'a
(** Execute one shared-memory operation as a scheduling point. Called by
    {!Shadow_atomic}; outside exploration the operation runs directly. *)

val relax : unit -> unit
(** Spin-wait hint: park the calling thread until another thread
    performs a write. A no-op outside exploration. *)

val run : ?max_schedules:int -> (unit -> unit) -> stats
(** [run setup] explores every schedule of the scenario. Returns the
    exploration size, or raises {!Deadlock} / {!Violation} /
    {!Schedule_limit} on the first failing schedule. *)
