(* Protocol body for the direct task stack. This file is not compiled on
   its own: the build prepends a prelude binding [Ts], [Layout] and [A]
   (the atomic backend, see atomic_ops.ml) and compiles the result as
   [Direct_stack] (production, a prelude-defined [A]) and as
   [Wool_check.Direct_stack_checked] (model checking,
   [A = Shadow_atomic]). Keep it free of direct [Atomic]/[Domain] use. *)

exception Pool_overflow

type 'a slot = {
  state : Ts.t A.t;
      (* individually padded: adjacent descriptors' state words never
         share a cache line, so a thief CASing slot [b] cannot steal the
         line under the owner touching slot [b']. *)
  mutable payload : 'a;
  mutable pushed_public : bool; (* owner-private: which join path to take *)
}

type publicity = All_private | All_public | Adaptive of int

type stats = {
  spawns : int;
  max_depth : int;
  inlined_private : int;
  inlined_public : int;
  joins_stolen : int;
  steals : int;
  backoffs : int;
  failed_steals : int;
  publish_events : int;
  privatize_events : int;
}

(* Owner-private working set: every field only worker [owner] reads or
   writes, batched into one cache-line-padded block so owner stores never
   invalidate a line a thief has cached. *)
type 'a owner = {
  mutable top : int;
  mutable public_limit : int; (* pushes below it are public *)
  mutable rearm : bool;
      (* a privatize emptied the public window below [bot]: the next push
         publishes itself and re-arms the trip wire (see
         [maybe_privatize]) *)
  mutable consec_public_inlines : int;
  mutable last_activity : int;
      (* thief-activity snapshot ([failed+backoff word] + steal count) at
         the owner's previous {!steal_pressure} poll; the poll reports
         pressure when the sum has moved since *)
  (* owner-side counters *)
  mutable n_spawns : int;
  mutable max_depth : int;
  mutable n_inlined_private : int;
  mutable n_inlined_public : int;
  mutable n_joins_stolen : int;
  mutable n_publish : int;
  mutable n_privatize : int;
  (* observability hooks; invoked only on the (rare) publish / privatize
     transitions, never on the private fast path *)
  mutable on_publish : unit -> unit;
  mutable on_privatize : unit -> unit;
}

(* Thief-shared words live in individually padded atomics; the top-level
   record itself is immutable after [create], so its cache lines are
   read-shared and never invalidated. *)
type 'a t = {
  slots : 'a slot array;
  capacity : int;
  dummy : 'a;
  publicity : publicity;
  own : 'a owner; (* padded; owner-private *)
  botw : int A.t;
      (* packed [steals lsl 32 | bot]: the successful-steal path advances
         [bot] and counts the steal with one plain store instead of a
         store plus a fetch-and-add (see [steal]). Implicit ownership as
         before: only whoever holds the task at [bot] may move it. *)
  trip_index : int A.t; (* stealing at/past this index requests
                           publication; [disarmed] = never *)
  publish_request : bool A.t;
  fb : int A.t;
      (* packed [backoffs lsl 31 | failed_steals]: both thief-contended,
         one fetch-and-add per failed attempt on a line shared with
         nothing else *)
}

let bot_mask = 0xFFFFFFFF
let backoff_unit = 1 lsl 31
let disarmed = max_int
let no_hook () = ()

(* How many consecutive inlined public joins before the owner decides the
   public window is wider than steal pressure warrants and privatises. *)
let privatize_threshold = 16

let create ?(capacity = 65536) ?(publicity = Adaptive 4) ~dummy () =
  if capacity <= 0 || capacity > bot_mask then
    invalid_arg "Direct_stack.create: capacity";
  (match publicity with
  | Adaptive w when w <= 0 ->
      invalid_arg "Direct_stack.create: adaptive window must be positive"
  | All_private | All_public | Adaptive _ -> ());
  let slots =
    Array.init capacity (fun _ ->
        {
          state = A.make_padded Ts.empty;
          payload = dummy;
          pushed_public = false;
        })
  in
  let public_limit =
    match publicity with
    | All_private -> 0
    | All_public -> capacity
    | Adaptive w -> min capacity w
  in
  let trip =
    match publicity with
    | All_private | All_public -> disarmed
    | Adaptive _ -> public_limit - 1
  in
  {
    slots;
    capacity;
    dummy;
    publicity;
    own =
      Layout.copy_as_padded
        {
          top = 0;
          public_limit;
          rearm = false;
          consec_public_inlines = 0;
          last_activity = 0;
          n_spawns = 0;
          max_depth = 0;
          n_inlined_private = 0;
          n_inlined_public = 0;
          n_joins_stolen = 0;
          n_publish = 0;
          n_privatize = 0;
          on_publish = no_hook;
          on_privatize = no_hook;
        };
    botw = A.make_padded 0;
    trip_index = A.make_padded trip;
    publish_request = A.make_padded false;
    fb = A.make_padded 0;
  }

let set_event_hooks t ~on_publish ~on_privatize =
  t.own.on_publish <- on_publish;
  t.own.on_privatize <- on_privatize

let[@inline] depth t = t.own.top
let[@inline] bot_index t = A.get t.botw land bot_mask
let[@inline] steal_count t = A.get t.botw lsr 32

(* Owner-side hunger poll, for lazy splitting layers above the runtime: are
   thieves trying to take work from this stack right now?

   Two signals, both free to read. A sprung trip wire ([publish_request])
   means a steal reached the public frontier — certain hunger. But the wire
   alone cannot bootstrap a lazy splitter: a leaf holding all remaining
   work {e privately} gives thieves nothing to steal, so no steal ever
   springs the wire. Those thieves still leave tracks — every probe against
   this stack bumps the failed/backoff word, and every success bumps the
   steal count — so the poll also reports pressure whenever that activity
   sum moved since the owner last asked. Cost: two atomic loads, and an
   owner-private store only when the answer is [true].

   The first poll after a burst of unrelated steal traffic may report one
   spurious [true] (the snapshot is only updated here); the cost is a
   single extra split, which the splitter would soon owe anyway if thieves
   are around. With one worker there are no thieves, both signals stay
   flat, and the poll is always [false]. *)
let[@inline] steal_pressure t =
  A.get t.publish_request
  ||
  let activity = A.get t.fb + (A.get t.botw lsr 32) in
  let own = t.own in
  activity <> own.last_activity
  && begin
       own.last_activity <- activity;
       true
     end

(* Owner-side servicing of a thief's trip-wire notification: extend the
   public region by the window and publish any live private descriptors
   that fall inside it. Publication is a release store of TASK on a
   descriptor whose state no thief can currently be touching (private
   descriptors keep their state word EMPTY, which thieves never CAS). *)
let[@inline] service_publish t =
  match t.publicity with
  | All_private | All_public -> ()
  | Adaptive w ->
      if A.get t.publish_request then begin
        A.set t.publish_request false;
        let own = t.own in
        (* a sprung trip wire is live steal pressure: suspend privatising
           (and any pending re-arm — the wire is being re-pointed here) *)
        own.consec_public_inlines <- 0;
        own.rearm <- false;
        let old_limit = own.public_limit in
        let new_limit = min t.capacity (old_limit + w) in
        let lo = max old_limit (bot_index t) in
        let hi = min new_limit own.top in
        for i = lo to hi - 1 do
          let s = t.slots.(i) in
          if not s.pushed_public then begin
            s.pushed_public <- true;
            A.set s.state Ts.task_public
          end
        done;
        own.public_limit <- new_limit;
        A.set t.trip_index (new_limit - 1);
        own.n_publish <- own.n_publish + 1;
        own.on_publish ()
      end

let[@inline] push t v =
  let own = t.own in
  (* overflow is raised before any slot or window mutation, so a failed
     spawn leaves the stack exactly as it was *)
  if own.top >= t.capacity then raise Pool_overflow;
  service_publish t;
  let i = own.top in
  let slot = t.slots.(i) in
  slot.payload <- v;
  if i < own.public_limit then begin
    slot.pushed_public <- true;
    (* The state store is the release that makes the task stealable; it
       comes after the payload write. *)
    A.set slot.state Ts.task_public
  end
  else if own.rearm then begin
    (* A privatize left no live public descriptor at or above [bot]
       (see [maybe_privatize]): publish this push and point the wire at
       it, so thieves regain a probe point and steal pressure can widen
       the window again. *)
    own.rearm <- false;
    own.public_limit <- i + 1;
    slot.pushed_public <- true;
    A.set slot.state Ts.task_public;
    A.set t.trip_index i
  end
  else
    (* Private spawn: the paper's 1-cycle case. The descriptor's presence
       is tracked solely by the owner's [top]; the shared state word stays
       EMPTY, which no thief will ever CAS, so no synchronised write is
       needed at all. *)
    slot.pushed_public <- false;
  own.top <- i + 1;
  if own.top > own.max_depth then own.max_depth <- own.top;
  own.n_spawns <- own.n_spawns + 1

type 'a outcome = Task of 'a * bool | Stolen of { thief : int; index : int }

(* Shrink the public window after a run of inlined public joins; only
   future pushes are affected (descriptors already published keep their
   synchronised join path via [pushed_public]).

   The wire must stay reachable: a steal probes only [slots.(bot)], so a
   trip index below [bot] can never fire and the stack would be
   unstealable forever (publications are driven purely by the wire).
   When the shrunken window still has a live public descriptor above
   [bot] the wire is clamped onto it; when it does not (the inline that
   triggered us was at or below [bot]), the wire is disarmed and
   re-armed on the next push instead. *)
let maybe_privatize t i =
  match t.publicity with
  | All_private | All_public -> ()
  | Adaptive _ ->
      let own = t.own in
      own.consec_public_inlines <- own.consec_public_inlines + 1;
      if
        own.consec_public_inlines >= privatize_threshold
        && i < own.public_limit
      then begin
        let b = bot_index t in
        let new_limit = max b i in
        if new_limit < own.public_limit then begin
          own.public_limit <- new_limit;
          if new_limit > b then A.set t.trip_index (new_limit - 1)
          else begin
            A.set t.trip_index disarmed;
            own.rearm <- true
          end;
          own.n_privatize <- own.n_privatize + 1;
          own.on_privatize ()
        end;
        own.consec_public_inlines <- 0
      end

let[@inline] take_payload slot dummy =
  let v = slot.payload in
  slot.payload <- dummy;
  v

let[@inline] pop t =
  let own = t.own in
  if own.top <= 0 then invalid_arg "Direct_stack.pop: empty stack";
  service_publish t;
  own.top <- own.top - 1;
  let i = own.top in
  let slot = t.slots.(i) in
  if not slot.pushed_public then begin
    (* Private fast path: no atomic read-modify-write, no fence — the
       descriptor was never visible to thieves. *)
    own.n_inlined_private <- own.n_inlined_private + 1;
    Task (take_payload slot t.dummy, false)
  end
  else begin
    let rec resolve () =
      let s = A.exchange slot.state Ts.empty in
      if s = Ts.task_public then begin
        own.n_inlined_public <- own.n_inlined_public + 1;
        maybe_privatize t i;
        Task (take_payload slot t.dummy, true)
      end
      else if s = Ts.empty then begin
        (* Transient: a thief CASed the descriptor and is mid-steal; it
           will either commit STOLEN or back off to TASK. *)
        let rec wait () =
          let s' = A.get slot.state in
          if s' = Ts.empty then begin
            A.cpu_relax ();
            wait ()
          end
          else s'
        in
        let s' = wait () in
        if s' = Ts.task_public then resolve ()
        else if Ts.is_stolen s' then begin
          own.n_joins_stolen <- own.n_joins_stolen + 1;
          own.consec_public_inlines <- 0;
          Stolen { thief = Ts.thief s'; index = i }
        end
        else begin
          (* DONE *)
          own.n_joins_stolen <- own.n_joins_stolen + 1;
          own.consec_public_inlines <- 0;
          Stolen { thief = -1; index = i }
        end
      end
      else if Ts.is_stolen s then begin
        (* Our exchange clobbered STOLEN with EMPTY; harmless — the
           thief's unconditional DONE store still lands and the owner
           polls only for DONE. *)
        own.n_joins_stolen <- own.n_joins_stolen + 1;
        own.consec_public_inlines <- 0;
        Stolen { thief = Ts.thief s; index = i }
      end
      else begin
        (* DONE: the thief finished before we even joined. *)
        own.n_joins_stolen <- own.n_joins_stolen + 1;
        own.consec_public_inlines <- 0;
        Stolen { thief = -1; index = i }
      end
    in
    resolve ()
  end

let stolen_done t ~index = A.get t.slots.(index).state = Ts.done_

let reclaim t ~index =
  let slot = t.slots.(index) in
  A.set slot.state Ts.empty;
  slot.payload <- t.dummy;
  (* Only the owner can be here, and every descriptor at or above [index]
     is dead, so no thief can be moving [bot] concurrently; the steal
     bits are preserved. *)
  let w = A.get t.botw in
  A.set t.botw (w land lnot bot_mask lor index)

type 'a steal_result = Stolen_task of 'a * int | Fail | Backoff

type steal_phase = Pre_cas | Post_cas | Trip

(* Default interference: nothing injected. A shared top-level closure so
   the un-instrumented call pays no allocation. *)
let no_interference (_ : steal_phase) = false

let steal ?(interfere = no_interference) t ~thief =
  let b = A.get t.botw land bot_mask in
  if b >= t.capacity then begin
    ignore (A.fetch_and_add t.fb 1 : int);
    Fail
  end
  else begin
    let slot = t.slots.(b) in
    let s1 = A.get slot.state in
    if not (Ts.is_task_public s1) then begin
      ignore (A.fetch_and_add t.fb 1 : int);
      Fail
    end
    (* [Pre_cas] sits in the §III-A window between the state read and the
       CAS: a delay here lets the owner recycle the descriptor under us
       (the delayed-thief ABA), an abort models a lost CAS race. *)
    else if interfere Pre_cas then begin
      ignore (A.fetch_and_add t.fb 1 : int);
      Fail
    end
    else if not (A.compare_and_set slot.state s1 Ts.empty) then begin
      ignore (A.fetch_and_add t.fb 1 : int);
      Fail
    end
    else begin
      (* [Post_cas] runs while we hold the transient EMPTY; an abort takes
         the same restore path as a genuine ABA detection. The protocol
         keeps the window safe: competing thieves fail on EMPTY and a
         joining owner spins, so [bot] cannot move during the delay. *)
      let aborted = interfere Post_cas in
      let w1 = A.get t.botw in
      if w1 land bot_mask <> b || aborted then begin
        (* Delayed-thief ABA (§III-A), genuine or injected: the CAS won
           against a recycled descriptor while [bot] points elsewhere.
           Restore the state — the transient EMPTY only made competing
           thieves fail and a joining owner spin — and back off. *)
        A.set slot.state s1;
        ignore (A.fetch_and_add t.fb backoff_unit : int);
        Backoff
      end
      else begin
        let v = slot.payload in
        A.set slot.state (Ts.stolen ~thief);
        (* While we hold slot [b]'s transient EMPTY with [bot = b], no
           other thief can advance [bot] (they fail on EMPTY) and the
           owner can neither pop past [b] (it spins) nor reclaim below it
           (reclaims are top-down through [b]). So [w1] is still current,
           and one plain store both advances [bot] and counts the steal —
           the packed word turns the old store + fetch-and-add into a
           single atomic write. *)
        A.set t.botw (w1 + (1 lsl 32) + 1);
        if b >= A.get t.trip_index then begin
          (* At or past the wire ([>=], not [=]: a stale-low wire left by
             an old privatize or an owner inline of the wire descriptor
             still fires on the next successful steal). [Trip] delays the
             publish request past the steal that sprang it. *)
          ignore (interfere Trip : bool);
          A.set t.publish_request true
        end;
        Stolen_task (v, b)
      end
    end
  end

let complete_steal t ~index = A.set t.slots.(index).state Ts.done_

let state_name s =
  if s = Ts.empty then "empty"
  else if s = Ts.task_private then "task_private"
  else if s = Ts.task_public then "task_public"
  else if s = Ts.done_ then "done"
  else if Ts.is_stolen s then Printf.sprintf "stolen(%d)" (Ts.thief s)
  else Printf.sprintf "unknown(%d)" s

let check_quiescent t =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if t.own.top <> 0 then
    add "top = %d (expected 0: unjoined descriptors)" t.own.top;
  let b = bot_index t in
  if b <> 0 then add "bot = %d (expected 0: unreclaimed steals)" b;
  let bad_state = ref 0 and bad_payload = ref 0 and first = ref (-1) in
  for i = 0 to t.capacity - 1 do
    let slot = t.slots.(i) in
    if A.get slot.state <> Ts.empty then begin
      incr bad_state;
      if !first < 0 then first := i
    end;
    if slot.payload != t.dummy then incr bad_payload
  done;
  if !bad_state > 0 then
    add "%d descriptor(s) not EMPTY (first: index %d, state %s)" !bad_state
      !first
      (state_name (A.get t.slots.(!first).state));
  if !bad_payload > 0 then
    add "%d payload cell(s) still hold a task closure" !bad_payload;
  List.rev !violations

let layout_check t =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  let padded name words ok =
    if not ok then
      add "%s occupies %d words (want a multiple of %d, >= %d)" name words
        Layout.cache_line_words Layout.cache_line_words
  in
  padded "owner block" (Layout.size_words t.own) (Layout.is_padded t.own);
  padded "botw" (A.size_words t.botw) (A.is_padded t.botw);
  padded "trip_index" (A.size_words t.trip_index) (A.is_padded t.trip_index);
  padded "publish_request"
    (A.size_words t.publish_request)
    (A.is_padded t.publish_request);
  padded "fb" (A.size_words t.fb) (A.is_padded t.fb);
  Array.iteri
    (fun i s ->
      if not (A.is_padded s.state) then
        add "slot %d state occupies %d words (not line-padded)" i
          (A.size_words s.state))
    t.slots;
  List.rev !errs

let dump_live t =
  let top = t.own.top in
  let live = ref [] in
  for i = t.capacity - 1 downto 0 do
    let s = A.get t.slots.(i).state in
    if i < top || s <> Ts.empty then live := (i, state_name s) :: !live
  done;
  !live

let stats t =
  let fb = A.get t.fb in
  {
    spawns = t.own.n_spawns;
    max_depth = t.own.max_depth;
    inlined_private = t.own.n_inlined_private;
    inlined_public = t.own.n_inlined_public;
    joins_stolen = t.own.n_joins_stolen;
    steals = steal_count t;
    backoffs = fb lsr 31;
    failed_steals = fb land (backoff_unit - 1);
    publish_events = t.own.n_publish;
    privatize_events = t.own.n_privatize;
  }

let reset_stats t =
  let own = t.own in
  own.n_spawns <- 0;
  own.max_depth <- 0;
  own.n_inlined_private <- 0;
  own.n_inlined_public <- 0;
  own.n_joins_stolen <- 0;
  own.n_publish <- 0;
  own.n_privatize <- 0;
  (* clear the steal bits, preserve [bot] *)
  A.set t.botw (A.get t.botw land bot_mask);
  A.set t.fb 0
