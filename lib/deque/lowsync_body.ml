(* Protocol body for the low-synchronization work-stealing pool, in the
   spirit of Rito & Paulino (PAPERS.md): synchronization is spent only
   where contention actually is. The owner's put/take are plain reads
   and writes — in particular [take] never issues the last-element CAS
   that Chase–Lev pays — while thieves claim cells with exactly one
   compare-and-set on [head] per successful steal. The CAS serializes
   thieves against each other (no thief–thief duplicates, and [head] is
   monotone), so the only relaxed behaviour left is the owner/thief race
   on the boundary cell: when [head] reaches [tail - 1], the owner's
   take and one thief's steal may both extract that task. A stale thief
   can also claim a cell the owner already drained and recycled. As with
   ws_mult, the runtime layer requires idempotent bodies, skips
   completed tasks, and self-executes at join, so duplicates are
   absorbed and nothing is lost.

   Compiled with a build-generated prelude binding [A]; keep this file
   free of direct [Atomic] use. *)

type 'a t = {
  dummy : 'a;
  head : int A.t; (* next steal index; thief-CASed, monotone *)
  tail : int A.t; (* next put index; owner-written *)
  mutable buf : 'a A.t array; (* owner-replaced on growth; cells shared *)
}

let create ?(capacity = 64) ~dummy () =
  {
    dummy;
    head = A.make_padded 0;
    tail = A.make_padded 0;
    buf = Array.init (max capacity 2) (fun _ -> A.make dummy);
  }

let grow t want =
  let old = t.buf in
  let n = Array.length old in
  let m = ref (n * 2) in
  while !m <= want do
    m := !m * 2
  done;
  let nbuf = Array.init !m (fun i -> if i < n then old.(i) else A.make t.dummy) in
  t.buf <- nbuf

let put t x =
  let b0 = A.get t.tail in
  let h = A.get t.head in
  (* After a boundary race the claimed [head] can sit one past [tail];
     resync forward so the new task lands above it. *)
  let b = if h > b0 then h else b0 in
  if b >= Array.length t.buf then grow t b;
  A.set t.buf.(b) x;
  A.set t.tail (b + 1)

let take t =
  let b = A.get t.tail in
  let h = A.get t.head in
  if h >= b then None
  else begin
    let b' = b - 1 in
    let x = A.get t.buf.(b') in
    A.set t.tail b';
    (* h = b': one thief may have CASed the same cell — the boundary
       duplicate this mode deliberately accepts instead of an owner-side
       CAS. *)
    if x == t.dummy then None else Some x
  end

let steal t =
  let h = A.get t.head in
  let b = A.get t.tail in
  if h >= b then None
  else begin
    let buf = t.buf in
    (* racing owner growth: an older array may not reach the index *)
    if h >= Array.length buf then None
    else begin
      let x = A.get buf.(h) in
      if x != t.dummy && A.compare_and_set t.head h (h + 1) then Some x
      else None
    end
  end

(* Racy snapshot. [head] is monotone here, so at quiescence this settles
   at the true count, unlike ws_mult. *)
let size t =
  let b = A.get t.tail and h = A.get t.head in
  max 0 (b - h)
