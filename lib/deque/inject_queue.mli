(** Bounded multi-producer multi-consumer injection queue.

    The ingress lanes of a pool: external (non-worker) domains push
    submitted jobs with {!try_push}; idle workers drain them with
    {!try_pop} between local pops and remote steals. Per-slot sequence
    numbers (the Vyukov bounded-queue protocol) make both ends lock-free
    — a failed cursor CAS always means another producer or consumer
    advanced — and the fixed capacity is what gives the pool
    backpressure to hang an admission policy on.

    Like the deques, the protocol body is instantiated twice: here
    against real [Atomic], and in [Wool_check] against the instrumented
    backend for exhaustive interleaving of submit vs. drain vs.
    shutdown. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~capacity ~dummy ()] makes an empty queue holding at most
    [capacity] elements (rounded up to a power of two, minimum 2 — the
    seq protocol needs the one-lap gap between a published cell and the
    producer's next visit to it). [dummy] fills vacated cells so
    consumed values are not retained. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue from any domain. [false] means the queue was full at the
    linearization point — the caller applies its admission policy. *)

val try_pop : 'a t -> 'a option
(** Dequeue from any domain. [None] means the queue was empty (or the
    winning producer of the head cell has not yet published). *)

val size : 'a t -> int
(** Instantaneous occupancy estimate (racy; for reporting only). *)

val capacity : 'a t -> int
(** The actual (power-of-two) capacity. *)
