(** The direct task stack (paper Section III-A and III-B).

    A per-worker array of fixed-size task descriptors managed with strict
    stack discipline. The owner pushes and pops at [top] (fully private);
    thieves operate at [bot]. Thief/victim synchronisation happens on each
    descriptor's [state] word — exchange on the owner's join, CAS on steals —
    never on [top]/[bot], so no Dijkstra-style protocol or fences beyond the
    atomics themselves are needed.

    [bot] has no explicit synchronisation: it is implicitly owned by whoever
    holds the task it points at. A thief whose CAS succeeds against a
    recycled descriptor (the delayed-thief ABA of §III-A) detects the
    mismatch by re-reading [bot] and backs off, restoring the state word.

    Private tasks (§III-B): descriptors below the public limit carry
    [task_public] states and cost an atomic exchange to join; descriptors
    above it are private — the owner joins them with a plain load and store,
    and a thief's CAS can never succeed on them. The highest public
    descriptor is the {e trip wire}: stealing at or past it raises the
    owner's publish request flag, and the owner publishes more descriptors
    at its next push/pop. Inlining many public tasks in a row privatises
    the boundary again, making the cut-off revocable in both directions.

    {b Layout.} The record is split cache-consciously: all owner-private
    mutable fields live in one line-padded block; each thief-shared
    atomic ([bot]+steal count, trip index, publish request, the
    failed/backoff counters) owns its cache line; and every descriptor's
    state word is individually padded so adjacent descriptors never
    false-share. [bot] and the steal count are packed into one word so a
    successful steal commits both with a single plain store. *)

type 'a t

exception Pool_overflow
(** Raised by {!push} when the stack is at capacity. Raised before any
    slot or window mutation, so the stack is untouched and the spawn can
    be unwound cleanly (the runtime re-exports this as
    [Wool.Pool_overflow]). *)

type publicity =
  | All_private  (** nothing stealable; the Table II best case *)
  | All_public  (** every descriptor public; the Table II worst case *)
  | Adaptive of int
      (** [Adaptive w]: keep a window of [w] public descriptors, grown on
          trip-wire steals and shrunk after runs of inlined public joins *)

val create :
  ?capacity:int -> ?publicity:publicity -> dummy:'a -> unit -> 'a t
(** A stack holding at most [capacity] (default 65536) simultaneous tasks.
    [dummy] fills empty payload cells. Default publicity is [Adaptive 4]. *)

val push : 'a t -> 'a -> unit
(** Spawn: store the payload, then release the descriptor with a state store
    (the write that makes the task stealable is last). Also services pending
    publish requests. Raises {!Pool_overflow} if the stack is full, before
    mutating anything. *)

val depth : 'a t -> int
(** Number of live descriptors ([top]); owner only. *)

val bot_index : 'a t -> int
(** Current [bot] (lowest unstolen descriptor); racy snapshot. *)

val steal_pressure : 'a t -> bool
(** Owner-side hunger poll for lazy splitting: [true] when thieves are
    actively after this stack's work — the trip wire has sprung
    ({e certain} hunger: a steal reached the public frontier), or thief
    activity against this stack (successful steals, failed probes,
    back-offs) advanced since the owner's previous poll. The second
    signal is what lets a lazy splitter bootstrap: a leaf holding all
    remaining work privately gives thieves nothing to steal, so only
    their {e failed} probes betray them. Two atomic loads per poll; never
    [true] on a single-worker pool (no thieves, both signals flat).
    Owner only. *)

type 'a outcome =
  | Task of 'a * bool
      (** The task was still here and is now inlined; the flag says whether
          it was public (i.e. paid the exchange). *)
  | Stolen of { thief : int; index : int }
      (** The task was stolen. [thief = -1] means the thief had already
          finished (state was DONE at the join) and there is nothing to wait
          for. Otherwise the owner must leapfrog on [thief] until
          {!stolen_done} reports true; in both cases it finishes with
          {!reclaim}. *)

val pop : 'a t -> 'a outcome
(** Join with the most recent push. Spins (with [Domain.cpu_relax]) through
    the transient EMPTY window of an in-flight steal; the spin ends as soon
    as the thief either completes the steal or backs off. Owner only; raises
    [Invalid_argument] on an empty stack. *)

val stolen_done : 'a t -> index:int -> bool
(** After [Stolen] with [thief >= 0]: has the thief marked the descriptor
    DONE? Not meaningful for [thief = -1] joins (the owner's exchange may
    have consumed the DONE state); those are complete by construction. *)

val reclaim : 'a t -> index:int -> unit
(** After [Stolen] and {!stolen_done}: pop the dead descriptor, moving [bot]
    down. Owner only. *)

type 'a steal_result =
  | Stolen_task of 'a * int
      (** Payload and descriptor index; the thief must call
          {!complete_steal} after executing the task. *)
  | Fail  (** nothing stealable (empty, private, or lost race) *)
  | Backoff  (** CAS won against a recycled descriptor; state restored *)

(** Protocol points a fault injector may interfere at, inside one steal:
    - [Pre_cas]: after the state read, before the CAS — the §III-A
      delayed-thief window. Returning [true] aborts the attempt ([Fail]).
    - [Post_cas]: after a winning CAS, before the [bot] re-check.
      Returning [true] forces the restore/back-off path ([Backoff]).
    - [Trip]: after taking the trip-wire descriptor, before raising the
      owner's publish request. The return value is ignored. *)
type steal_phase = Pre_cas | Post_cas | Trip

val steal :
  ?interfere:(steal_phase -> bool) -> 'a t -> thief:int -> 'a steal_result
(** Attempt to steal the bottom-most public task on behalf of worker
    [thief]. Never blocks. [interfere] (default: never) is the fault
    injection hook; delays are performed inside the callback, aborts
    communicated through its result. *)

val complete_steal : 'a t -> index:int -> unit
(** Thief-side: mark the stolen descriptor DONE, unblocking the owner's
    join. *)

(** Counters, all owner-side except [steals]/[backoffs] which are summed
    over thieves. *)
type stats = {
  spawns : int;
  max_depth : int;  (** deepest simultaneous descriptor count (sec. I) *)
  inlined_private : int;
  inlined_public : int;
  joins_stolen : int;
  steals : int;
  backoffs : int;
  failed_steals : int;
  publish_events : int;
  privatize_events : int;
}

val stats : 'a t -> stats
val reset_stats : 'a t -> unit

val set_event_hooks :
  'a t -> on_publish:(unit -> unit) -> on_privatize:(unit -> unit) -> unit
(** Observability hooks for the runtime's event tracer. Both run on the
    owner, inside the publish / privatize transitions only — never on the
    private fast path — so they may not touch the stack re-entrantly.
    Defaults are no-ops. *)

val check_quiescent : 'a t -> string list
(** Protocol-invariant check at quiescence (owner-side, nothing in
    flight): every descriptor state EMPTY, every payload cell back to
    [dummy], [top = 0] and [bot = 0]. Returns human-readable violations,
    [[]] when clean. Scans the whole capacity; diagnostic-path only. *)

val dump_live : 'a t -> (int * string) list
(** Racy snapshot of the live descriptors — every index below [top] plus
    any index whose state is not EMPTY — with a printable state name.
    For failure-time diagnostics (the stall watchdog's report). *)

val layout_check : 'a t -> string list
(** Verify the cache-conscious layout invariants: the owner block, each
    shared atomic, and every slot's state word occupy whole cache lines
    (see {!Wool_util.Layout.is_padded}). Returns human-readable
    violations, [[]] when clean. Scans every slot; test-path only. *)
