(* Protocol body for the Chase-Lev deque. Like direct_stack_body.ml,
   this file is compiled with a build-generated prelude binding [A] to
   the real or the instrumented atomic backend; keep it free of direct
   [Atomic] use. *)

type 'a buffer = { mask : int; cells : 'a array }

type 'a t = {
  dummy : 'a;
  top : int A.t; (* next steal index; only increases *)
  bottom : int A.t; (* next push index; owner-written *)
  mutable buf : 'a buffer; (* owner-replaced on growth *)
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let make_buffer dummy capacity =
  let cap = next_pow2 (max capacity 2) 2 in
  { mask = cap - 1; cells = Array.make cap dummy }

let create ?(capacity = 64) ~dummy () =
  {
    dummy;
    top = A.make 0;
    bottom = A.make 0;
    buf = make_buffer dummy capacity;
  }

let buf_get buf i = buf.cells.(i land buf.mask)
let buf_set buf i v = buf.cells.(i land buf.mask) <- v

let grow t b top =
  let old = t.buf in
  let nbuf = make_buffer t.dummy ((old.mask + 1) * 2) in
  for i = top to b - 1 do
    buf_set nbuf i (buf_get old i)
  done;
  t.buf <- nbuf

let push t v =
  let b = A.get t.bottom in
  let top = A.get t.top in
  let buf = t.buf in
  if b - top > buf.mask then grow t b top;
  buf_set t.buf b v;
  (* Release store: thieves that observe the new bottom also observe the
     cell write. *)
  A.set t.bottom (b + 1)

let pop t =
  let b = A.get t.bottom - 1 in
  let buf = t.buf in
  A.set t.bottom b;
  let top = A.get t.top in
  if b < top then begin
    (* empty: restore *)
    A.set t.bottom top;
    None
  end
  else begin
    let v = buf_get buf b in
    if b > top then begin
      buf_set buf b t.dummy;
      Some v
    end
    else begin
      (* last element: race thieves on top *)
      let won = A.compare_and_set t.top top (top + 1) in
      A.set t.bottom (top + 1);
      if won then begin
        buf_set buf b t.dummy;
        Some v
      end
      else None
    end
  end

let steal t =
  let top = A.get t.top in
  let b = A.get t.bottom in
  if b <= top then `Empty
  else begin
    let v = buf_get t.buf top in
    if A.compare_and_set t.top top (top + 1) then `Stolen v else `Retry
  end

let size t =
  let b = A.get t.bottom and top = A.get t.top in
  max 0 (b - top)
