(* The atomic operations the deque protocols are written against.

   The protocol sources (direct_stack_body.ml, chase_lev_body.ml) never
   name [Stdlib.Atomic] directly: they call through a module [A] bound
   by a prelude that the build system prepends (see lib/deque/dune and
   lib/check/dune). Production prepends atomic_real_prelude.ml — a local
   structure of [@inline] wrappers over [Atomic], which the non-flambda
   compiler reduces back to the intrinsics (a functor application, or
   even an alias to a signature-sealed module in another unit, would put
   an indirect call on the spawn/join fast path). The checking build
   binds [A] to [Wool_check.Shadow_atomic], which turns every operation
   into a scheduling point of the model checker. *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  (** A plain shared cell. *)

  val make_padded : 'a -> 'a t
  (** A cell that owns its cache line in production
      ({!Wool_util.Layout.padded_atomic}); equal to {!make} under the
      instrumented backend, where false sharing is not modelled. *)

  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int

  val cpu_relax : unit -> unit
  (** Spin-wait hint. The instrumented backend parks the thread until
      another thread performs a write, turning unbounded protocol spins
      into finite schedules. *)

  val is_padded : 'a t -> bool
  (** Layout introspection for the layout regression checks; always true
      under the instrumented backend. *)

  val size_words : 'a t -> int
end
