module Ts = Task_state

type 'a slot = {
  state : Ts.t Atomic.t;
  mutable payload : 'a;
  mutable pushed_public : bool; (* owner-private: which join path to take *)
}

type publicity = All_private | All_public | Adaptive of int

type stats = {
  spawns : int;
  max_depth : int;
  inlined_private : int;
  inlined_public : int;
  joins_stolen : int;
  steals : int;
  backoffs : int;
  failed_steals : int;
  publish_events : int;
  privatize_events : int;
}

type 'a t = {
  slots : 'a slot array;
  capacity : int;
  dummy : 'a;
  publicity : publicity;
  mutable top : int; (* owner-private *)
  bot : int Atomic.t; (* implicit ownership, see .mli *)
  mutable public_limit : int; (* owner-private: pushes below it are public *)
  trip_index : int Atomic.t; (* stealing this index requests publication *)
  publish_request : bool Atomic.t;
  mutable consec_public_inlines : int;
  (* owner-side counters *)
  mutable n_spawns : int;
  mutable max_depth : int;
  mutable n_inlined_private : int;
  mutable n_inlined_public : int;
  mutable n_joins_stolen : int;
  mutable n_publish : int;
  mutable n_privatize : int;
  (* thief-side counters *)
  n_steals : int Atomic.t;
  n_backoffs : int Atomic.t;
  n_failed : int Atomic.t;
  (* owner-side observability hooks; invoked only on the (rare) publish /
     privatize transitions, never on the private fast path *)
  mutable on_publish : unit -> unit;
  mutable on_privatize : unit -> unit;
}

let no_hook () = ()

(* How many consecutive inlined public joins before the owner decides the
   public window is wider than steal pressure warrants and privatises. *)
let privatize_threshold = 16

let create ?(capacity = 65536) ?(publicity = Adaptive 4) ~dummy () =
  if capacity <= 0 then invalid_arg "Direct_stack.create: capacity";
  (match publicity with
  | Adaptive w when w <= 0 ->
      invalid_arg "Direct_stack.create: adaptive window must be positive"
  | All_private | All_public | Adaptive _ -> ());
  let slots =
    Array.init capacity (fun _ ->
        { state = Atomic.make Ts.empty; payload = dummy; pushed_public = false })
  in
  let public_limit =
    match publicity with
    | All_private -> 0
    | All_public -> capacity
    | Adaptive w -> min capacity w
  in
  let trip =
    match publicity with
    | All_private | All_public -> -1
    | Adaptive _ -> public_limit - 1
  in
  {
    slots;
    capacity;
    dummy;
    publicity;
    top = 0;
    bot = Atomic.make 0;
    public_limit;
    trip_index = Atomic.make trip;
    publish_request = Atomic.make false;
    consec_public_inlines = 0;
    n_spawns = 0;
    max_depth = 0;
    n_inlined_private = 0;
    n_inlined_public = 0;
    n_joins_stolen = 0;
    n_publish = 0;
    n_privatize = 0;
    n_steals = Atomic.make 0;
    n_backoffs = Atomic.make 0;
    n_failed = Atomic.make 0;
    on_publish = no_hook;
    on_privatize = no_hook;
  }

let set_event_hooks t ~on_publish ~on_privatize =
  t.on_publish <- on_publish;
  t.on_privatize <- on_privatize

let[@inline] depth t = t.top
let bot_index t = Atomic.get t.bot

(* Owner-side servicing of a thief's trip-wire notification: extend the
   public region by the window and publish any live private descriptors
   that fall inside it. Publication is a release store of TASK on a
   descriptor whose state no thief can currently be touching (private
   descriptors keep their state word EMPTY, which thieves never CAS). *)
let[@inline] service_publish t =
  match t.publicity with
  | All_private | All_public -> ()
  | Adaptive w ->
      if Atomic.get t.publish_request then begin
        Atomic.set t.publish_request false;
        (* a sprung trip wire is live steal pressure: suspend privatising *)
        t.consec_public_inlines <- 0;
        let old_limit = t.public_limit in
        let new_limit = min t.capacity (old_limit + w) in
        let lo = max old_limit (Atomic.get t.bot) in
        let hi = min new_limit t.top in
        for i = lo to hi - 1 do
          let s = t.slots.(i) in
          if not s.pushed_public then begin
            s.pushed_public <- true;
            Atomic.set s.state Ts.task_public
          end
        done;
        t.public_limit <- new_limit;
        Atomic.set t.trip_index (new_limit - 1);
        t.n_publish <- t.n_publish + 1;
        t.on_publish ()
      end

let[@inline] push t v =
  service_publish t;
  if t.top >= t.capacity then failwith "Direct_stack.push: task pool overflow";
  let i = t.top in
  let slot = t.slots.(i) in
  slot.payload <- v;
  if i < t.public_limit then begin
    slot.pushed_public <- true;
    (* The state store is the release that makes the task stealable; it
       comes after the payload write. *)
    Atomic.set slot.state Ts.task_public
  end
  else
    (* Private spawn: the paper's 1-cycle case. The descriptor's presence
       is tracked solely by the owner's [top]; the shared state word stays
       EMPTY, which no thief will ever CAS, so no synchronised write is
       needed at all. *)
    slot.pushed_public <- false;
  t.top <- i + 1;
  if t.top > t.max_depth then t.max_depth <- t.top;
  t.n_spawns <- t.n_spawns + 1

type 'a outcome = Task of 'a * bool | Stolen of { thief : int; index : int }

(* Shrink the public window after a run of inlined public joins; only
   future pushes are affected (descriptors already published keep their
   synchronised join path via [pushed_public]). *)
let maybe_privatize t i =
  match t.publicity with
  | All_private | All_public -> ()
  | Adaptive _ ->
      t.consec_public_inlines <- t.consec_public_inlines + 1;
      if t.consec_public_inlines >= privatize_threshold && i < t.public_limit
      then begin
        let new_limit = max (Atomic.get t.bot) i in
        if new_limit < t.public_limit then begin
          t.public_limit <- new_limit;
          Atomic.set t.trip_index (new_limit - 1);
          t.n_privatize <- t.n_privatize + 1;
          t.on_privatize ()
        end;
        t.consec_public_inlines <- 0
      end

let[@inline] take_payload slot dummy =
  let v = slot.payload in
  slot.payload <- dummy;
  v

let[@inline] pop t =
  if t.top <= 0 then invalid_arg "Direct_stack.pop: empty stack";
  service_publish t;
  t.top <- t.top - 1;
  let i = t.top in
  let slot = t.slots.(i) in
  if not slot.pushed_public then begin
    (* Private fast path: no atomic read-modify-write, no fence — the
       descriptor was never visible to thieves. *)
    t.n_inlined_private <- t.n_inlined_private + 1;
    Task (take_payload slot t.dummy, false)
  end
  else begin
    let rec resolve () =
      let s = Atomic.exchange slot.state Ts.empty in
      if s = Ts.task_public then begin
        t.n_inlined_public <- t.n_inlined_public + 1;
        maybe_privatize t i;
        Task (take_payload slot t.dummy, true)
      end
      else if s = Ts.empty then begin
        (* Transient: a thief CASed the descriptor and is mid-steal; it
           will either commit STOLEN or back off to TASK. *)
        let rec wait () =
          let s' = Atomic.get slot.state in
          if s' = Ts.empty then begin
            Domain.cpu_relax ();
            wait ()
          end
          else s'
        in
        let s' = wait () in
        if s' = Ts.task_public then resolve ()
        else if Ts.is_stolen s' then begin
          t.n_joins_stolen <- t.n_joins_stolen + 1;
          t.consec_public_inlines <- 0;
          Stolen { thief = Ts.thief s'; index = i }
        end
        else begin
          (* DONE *)
          t.n_joins_stolen <- t.n_joins_stolen + 1;
          t.consec_public_inlines <- 0;
          Stolen { thief = -1; index = i }
        end
      end
      else if Ts.is_stolen s then begin
        (* Our exchange clobbered STOLEN with EMPTY; harmless — the
           thief's unconditional DONE store still lands and the owner
           polls only for DONE. *)
        t.n_joins_stolen <- t.n_joins_stolen + 1;
        t.consec_public_inlines <- 0;
        Stolen { thief = Ts.thief s; index = i }
      end
      else begin
        (* DONE: the thief finished before we even joined. *)
        t.n_joins_stolen <- t.n_joins_stolen + 1;
        t.consec_public_inlines <- 0;
        Stolen { thief = -1; index = i }
      end
    in
    resolve ()
  end

let stolen_done t ~index = Atomic.get t.slots.(index).state = Ts.done_

let reclaim t ~index =
  let slot = t.slots.(index) in
  Atomic.set slot.state Ts.empty;
  slot.payload <- t.dummy;
  (* Only the owner can be here, and every descriptor at or above [index]
     is dead, so no thief can be moving [bot] concurrently. *)
  Atomic.set t.bot index

type 'a steal_result = Stolen_task of 'a * int | Fail | Backoff

type steal_phase = Pre_cas | Post_cas | Trip

(* Default interference: nothing injected. A shared top-level closure so
   the un-instrumented call pays no allocation. *)
let no_interference (_ : steal_phase) = false

let steal ?(interfere = no_interference) t ~thief =
  let b = Atomic.get t.bot in
  if b >= t.capacity then begin
    Atomic.incr t.n_failed;
    Fail
  end
  else begin
    let slot = t.slots.(b) in
    let s1 = Atomic.get slot.state in
    if not (Ts.is_task_public s1) then begin
      Atomic.incr t.n_failed;
      Fail
    end
    (* [Pre_cas] sits in the §III-A window between the state read and the
       CAS: a delay here lets the owner recycle the descriptor under us
       (the delayed-thief ABA), an abort models a lost CAS race. *)
    else if interfere Pre_cas then begin
      Atomic.incr t.n_failed;
      Fail
    end
    else if not (Atomic.compare_and_set slot.state s1 Ts.empty) then begin
      Atomic.incr t.n_failed;
      Fail
    end
    else begin
      (* [Post_cas] runs while we hold the transient EMPTY; an abort takes
         the same restore path as a genuine ABA detection. The protocol
         keeps the window safe: competing thieves fail on EMPTY and a
         joining owner spins, so [bot] cannot move during the delay. *)
      let aborted = interfere Post_cas in
      if Atomic.get t.bot <> b || aborted then begin
        (* Delayed-thief ABA (§III-A), genuine or injected: the CAS won
           against a recycled descriptor while [bot] points elsewhere.
           Restore the state — the transient EMPTY only made competing
           thieves fail and a joining owner spin — and back off. *)
        Atomic.set slot.state s1;
        Atomic.incr t.n_backoffs;
        Backoff
      end
      else begin
        let v = slot.payload in
        Atomic.set slot.state (Ts.stolen ~thief);
        Atomic.set t.bot (b + 1);
        if b = Atomic.get t.trip_index then begin
          (* [Trip] delays the publish request past the steal that sprang
             the trip wire. *)
          ignore (interfere Trip : bool);
          Atomic.set t.publish_request true
        end;
        Atomic.incr t.n_steals;
        Stolen_task (v, b)
      end
    end
  end

let complete_steal t ~index = Atomic.set t.slots.(index).state Ts.done_

let state_name s =
  if s = Ts.empty then "empty"
  else if s = Ts.task_private then "task_private"
  else if s = Ts.task_public then "task_public"
  else if s = Ts.done_ then "done"
  else if Ts.is_stolen s then Printf.sprintf "stolen(%d)" (Ts.thief s)
  else Printf.sprintf "unknown(%d)" s

let check_quiescent t =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if t.top <> 0 then add "top = %d (expected 0: unjoined descriptors)" t.top;
  let b = Atomic.get t.bot in
  if b <> 0 then add "bot = %d (expected 0: unreclaimed steals)" b;
  let bad_state = ref 0 and bad_payload = ref 0 and first = ref (-1) in
  for i = 0 to t.capacity - 1 do
    let slot = t.slots.(i) in
    if Atomic.get slot.state <> Ts.empty then begin
      incr bad_state;
      if !first < 0 then first := i
    end;
    if slot.payload != t.dummy then incr bad_payload
  done;
  if !bad_state > 0 then
    add "%d descriptor(s) not EMPTY (first: index %d, state %s)" !bad_state
      !first
      (state_name (Atomic.get t.slots.(!first).state));
  if !bad_payload > 0 then
    add "%d payload cell(s) still hold a task closure" !bad_payload;
  List.rev !violations

let dump_live t =
  let top = t.top in
  let live = ref [] in
  for i = t.capacity - 1 downto 0 do
    let s = Atomic.get t.slots.(i).state in
    if i < top || s <> Ts.empty then
      live := (i, state_name s) :: !live
  done;
  !live

let stats t =
  {
    spawns = t.n_spawns;
    max_depth = t.max_depth;
    inlined_private = t.n_inlined_private;
    inlined_public = t.n_inlined_public;
    joins_stolen = t.n_joins_stolen;
    steals = Atomic.get t.n_steals;
    backoffs = Atomic.get t.n_backoffs;
    failed_steals = Atomic.get t.n_failed;
    publish_events = t.n_publish;
    privatize_events = t.n_privatize;
  }

let reset_stats t =
  t.n_spawns <- 0;
  t.max_depth <- 0;
  t.n_inlined_private <- 0;
  t.n_inlined_public <- 0;
  t.n_joins_stolen <- 0;
  t.n_publish <- 0;
  t.n_privatize <- 0;
  Atomic.set t.n_steals 0;
  Atomic.set t.n_backoffs 0;
  Atomic.set t.n_failed 0
