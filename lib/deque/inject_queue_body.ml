(* Protocol body for the bounded MPMC injection queue. Like
   chase_lev_body.ml, this file is compiled with a build-generated
   prelude binding [A] to the real or the instrumented atomic backend;
   keep it free of direct [Atomic] use.

   The algorithm is the per-slot sequence-number bounded queue (Vyukov):
   each cell carries a sequence counter that encodes whether the cell is
   free for the producer at cursor position [pos] (seq = pos) or holds a
   value for the consumer at position [pos] (seq = pos + 1). Producers
   and consumers claim cells by CAS on their own cursor, then publish by
   bumping the cell sequence — so a cursor CAS failure always means some
   other producer/consumer made progress, and both operations are
   lock-free with no unbounded waiting on a stalled peer. The Chase-Lev
   deque next door is single-producer; ingress needs many producers, so
   it gets its own protocol. *)

type 'a cell = {
  seq : int A.t;
  mutable value : 'a; (* protected by the seq protocol *)
}

type 'a t = {
  dummy : 'a;
  mask : int;
  cells : 'a cell array;
  enq : int A.t; (* next producer position *)
  deq : int A.t; (* next consumer position *)
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ?(capacity = 64) ~dummy () =
  (* minimum 2: with a single slot, the producer one lap ahead sees the
     published seq (pos0 + 1 = pos1) as "free" and would overwrite an
     unconsumed value — the seq encoding needs the lap gap *)
  let cap = next_pow2 (max capacity 2) 1 in
  {
    dummy;
    mask = cap - 1;
    cells = Array.init cap (fun i -> { seq = A.make i; value = dummy });
    enq = A.make_padded 0;
    deq = A.make_padded 0;
  }

let capacity t = t.mask + 1

let rec try_push t v =
  let pos = A.get t.enq in
  let cell = t.cells.(pos land t.mask) in
  let seq = A.get cell.seq in
  let diff = seq - pos in
  if diff = 0 then
    if A.compare_and_set t.enq pos (pos + 1) then begin
      (* cell claimed: the value write is published by the seq bump *)
      cell.value <- v;
      A.set cell.seq (pos + 1);
      true
    end
    else try_push t v (* lost the cursor race; someone else advanced *)
  else if diff < 0 then false (* cell still holds an unconsumed value: full *)
  else try_push t v (* stale cursor read; re-read *)

let rec try_pop t =
  let pos = A.get t.deq in
  let cell = t.cells.(pos land t.mask) in
  let seq = A.get cell.seq in
  let diff = seq - (pos + 1) in
  if diff = 0 then
    if A.compare_and_set t.deq pos (pos + 1) then begin
      let v = cell.value in
      cell.value <- t.dummy;
      (* free the cell for the producer one lap ahead *)
      A.set cell.seq (pos + t.mask + 1);
      Some v
    end
    else try_pop t
  else if diff < 0 then None (* cell empty (or producer mid-publish) *)
  else try_pop t

let size t =
  let e = A.get t.enq and d = A.get t.deq in
  max 0 (e - d)
