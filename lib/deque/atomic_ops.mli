(** Atomic backend for the deque protocol bodies.

    direct_stack_body.ml and chase_lev_body.ml perform every atomic
    operation through a module [A : S] bound by a build-time prelude.
    Production prepends atomic_real_prelude.ml — same-unit [@inline]
    wrappers over [Stdlib.Atomic] that compile back to the intrinsics;
    the model checker in [Wool_check] substitutes its instrumented
    [Shadow_atomic] to make each operation a scheduling point. *)

module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val make_padded : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int

  val cpu_relax : unit -> unit
  (** Spin-wait hint; the instrumented backend parks the caller until
      another thread writes, keeping protocol spin loops finite under
      exhaustive exploration. *)

  val is_padded : 'a t -> bool
  val size_words : 'a t -> int
end
