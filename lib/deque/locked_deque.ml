type 'a t = {
  cells : 'a array;
  dummy : 'a;
  lock : Mutex.t;
  top : int Atomic.t; (* owner-written; read by thieves under the lock *)
  bot : int Atomic.t; (* protected by [lock] *)
  c_lock : int Atomic.t;
  c_peek : int Atomic.t;
  c_abort : int Atomic.t;
}

type stats = { lock_acquires : int; peek_rejects : int; trylock_aborts : int }

let create ?(capacity = 65536) ~dummy () =
  if capacity <= 0 then invalid_arg "Locked_deque.create: capacity";
  {
    cells = Array.make capacity dummy;
    dummy;
    lock = Mutex.create ();
    top = Atomic.make 0;
    bot = Atomic.make 0;
    c_lock = Atomic.make 0;
    c_peek = Atomic.make 0;
    c_abort = Atomic.make 0;
  }

let push t v =
  let i = Atomic.get t.top in
  if i >= Array.length t.cells then raise Direct_stack.Pool_overflow;
  t.cells.(i) <- v;
  (* Release store: a thief that observes the new top under the lock also
     observes the cell write. *)
  Atomic.set t.top (i + 1)

let pop t =
  Mutex.lock t.lock;
  Atomic.incr t.c_lock;
  let i = Atomic.get t.top - 1 in
  let b = Atomic.get t.bot in
  let r =
    if i < b then None
    else begin
      Atomic.set t.top i;
      let v = t.cells.(i) in
      t.cells.(i) <- t.dummy;
      Some v
    end
  in
  Mutex.unlock t.lock;
  r

let steal_locked t =
  let b = Atomic.get t.bot in
  if b >= Atomic.get t.top then None
  else begin
    let v = t.cells.(b) in
    t.cells.(b) <- t.dummy;
    Atomic.set t.bot (b + 1);
    Some v
  end

let has_work t = Atomic.get t.bot < Atomic.get t.top

let steal ~mode t =
  match mode with
  | `Base ->
      Mutex.lock t.lock;
      Atomic.incr t.c_lock;
      let r = steal_locked t in
      Mutex.unlock t.lock;
      r
  | `Peek ->
      if not (has_work t) then begin
        Atomic.incr t.c_peek;
        None
      end
      else begin
        Mutex.lock t.lock;
        Atomic.incr t.c_lock;
        let r = steal_locked t in
        Mutex.unlock t.lock;
        r
      end
  | `Trylock ->
      if not (has_work t) then begin
        Atomic.incr t.c_peek;
        None
      end
      else if Mutex.try_lock t.lock then begin
        Atomic.incr t.c_lock;
        let r = steal_locked t in
        Mutex.unlock t.lock;
        r
      end
      else begin
        Atomic.incr t.c_abort;
        None
      end

let size t = max 0 (Atomic.get t.top - Atomic.get t.bot)

let stats t =
  {
    lock_acquires = Atomic.get t.c_lock;
    peek_rejects = Atomic.get t.c_peek;
    trylock_aborts = Atomic.get t.c_abort;
  }
