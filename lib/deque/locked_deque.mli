(** Lock-based task deque: the paper's baseline ladder (§IV-B, §IV-C).

    A per-worker array deque whose join and steal operations are serialised
    by one mutex ("per-worker locks for mutual exclusion of thieves and
    victim; a worker takes the lock for join (but not spawn) operations").
    Spawns are lock-free: only the owner moves [top], and a thief holding
    the lock validates against it.

    The three stealing disciplines of §IV-C are selected per call:
    - [`Base]: take the lock immediately after selecting the victim.
    - [`Peek]: first read the bottom descriptor without the lock; take the
      lock only if there appears to be a stealable task.
    - [`Trylock]: peek, then use [Mutex.try_lock] and abort the steal if the
      lock is held. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner: spawn without taking the lock. Raises
    {!Direct_stack.Pool_overflow} on overflow, before mutating anything. *)

val pop : 'a t -> 'a option
(** Owner: join under the lock; [None] when every remaining task has been
    stolen (or the deque is empty). *)

val steal : mode:[ `Base | `Peek | `Trylock ] -> 'a t -> 'a option
(** Thief: take the oldest task under the locking discipline [mode]. *)

val size : 'a t -> int
(** Racy snapshot of available tasks. *)

type stats = { lock_acquires : int; peek_rejects : int; trylock_aborts : int }

val stats : 'a t -> stats
