(** Low-synchronization work-stealing pool, in the spirit of Rito &
    Paulino.

    Synchronization only where contention is: the owner's put/take are
    plain reads and writes — no last-element CAS as in Chase–Lev — and
    thieves claim cells with exactly one compare-and-set on [head] per
    successful steal. Thieves therefore never duplicate among
    themselves and [head] is monotone; the only relaxed behaviour is
    the owner/thief race on the boundary cell, which can deliver that
    one task to both, and a stale thief claiming a cell the owner
    already drained and recycled. Callers must treat extraction as
    at-least-once delivery of {e idempotent} work (see
    lib/runtime/pool.ml for the recovery discipline). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** Initial cell count (default 64); grows automatically. [dummy] marks
    never-written cells and is never returned. *)

val put : 'a t -> 'a -> unit
(** Owner: add at the tail. Plain writes only; never fails. *)

val take : 'a t -> 'a option
(** Owner: remove the most recently put task; [None] if empty. On the
    boundary cell the task may also go to one thief. *)

val steal : 'a t -> 'a option
(** Thief: claim the oldest task with one CAS. [None] means empty or a
    lost claim. The returned task can be a stale duplicate from a
    recycled cell — check completion before running it. *)

val size : 'a t -> int
(** Racy snapshot of the element count (never negative); settles exact
    at quiescence since [head] is monotone. *)
