(* The production atomic backend, textually included into each generated
   protocol unit (see the rules in dune — this file is a rule input, not
   a module of the library).

   [A] must be a local structure, not an alias to a module in another
   compilation unit: this switch has no flambda, and the classic
   compiler does not inline through a signature-sealed module projection
   — binding [A = Atomic_ops.Real] left every protocol atomic behind an
   indirect call through the module block. A same-unit [let[@inline]]
   wrapper reliably reduces to the Atomic intrinsic. *)
module A = struct
  [@@@warning "-32"] (* each protocol body uses a subset of the backend *)

  type 'a t = 'a Atomic.t

  let[@inline] make v = Atomic.make v
  let[@inline] make_padded v = Wool_util.Layout.padded_atomic v
  let[@inline] get t = Atomic.get t
  let[@inline] set t v = Atomic.set t v
  let[@inline] exchange t v = Atomic.exchange t v
  let[@inline] compare_and_set t old now = Atomic.compare_and_set t old now
  let[@inline] fetch_and_add t n = Atomic.fetch_and_add t n
  let[@inline] cpu_relax () = Domain.cpu_relax ()
  let is_padded t = Wool_util.Layout.is_padded t
  let size_words t = Wool_util.Layout.size_words t
end

(* Conformance check only; call sites go through [A] directly. *)
module _ : Atomic_ops.S with type 'a t = 'a Atomic.t = A
