(* Protocol body for the fence-free work-stealing pool with multiplicity,
   after Castañeda & Piña (PAPERS.md): every operation — owner put/take
   and thief steal — is made of plain reads and writes on shared
   registers; there is no compare-and-set or fetch-and-add anywhere in
   the protocol. The price of dropping the read-modify-write operations
   is *multiplicity*: a racing owner and thief (or two racing thieves)
   may both extract the same task, and a thief acting on stale reads may
   even advance [head] past a recycled cell it never really observed, so
   a task can also be extracted by nobody. The runtime layer above
   (pool.ml) therefore (a) requires task bodies to be idempotent,
   (b) skips extractions whose task already completed, and (c) lets a
   join that cannot find its task execute the task body itself — which
   turns the protocol-level "lost task" into a duplicate at worst, never
   a hang.

   Like the other bodies, this file is compiled with a build-generated
   prelude binding [A] to the real or the instrumented atomic backend;
   keep it free of direct [Atomic] use. Under the production backend the
   reads and writes are still OCaml's sequentially-consistent atomics
   (the language offers no relaxed orderings), so on x86 the win is
   structural — no CAS retry loops, no failed-steal backoff states — not
   a literal fence elision; EXPERIMENTS.md discusses the measured
   consequences. *)

type 'a t = {
  dummy : 'a;
  head : int A.t; (* next steal index; thief-advanced by plain writes *)
  tail : int A.t; (* next put index; owner-written *)
  mutable buf : 'a A.t array; (* owner-replaced on growth; cells shared *)
}

let create ?(capacity = 64) ~dummy () =
  {
    dummy;
    head = A.make_padded 0;
    tail = A.make_padded 0;
    buf = Array.init (max capacity 2) (fun _ -> A.make dummy);
  }

(* Indices are absolute (never wrapped): a cell index is reused only when
   the owner takes a task back and puts a new one at the same depth,
   which is exactly the recycling race the runtime's completed-task check
   absorbs. Growth copies the *cell objects*, so a thief still reading an
   old buffer array observes writes through the same cells. *)
let grow t want =
  let old = t.buf in
  let n = Array.length old in
  let m = ref (n * 2) in
  while !m <= want do
    m := !m * 2
  done;
  let nbuf = Array.init !m (fun i -> if i < n then old.(i) else A.make t.dummy) in
  t.buf <- nbuf

let put t x =
  let b0 = A.get t.tail in
  let h = A.get t.head in
  (* Thieves advance [head] from stale reads of [tail], so after a
     boundary race [head] can sit past [tail]; resync forward or a task
     put below [head] would be invisible to everyone. *)
  let b = if h > b0 then h else b0 in
  if b >= Array.length t.buf then grow t b;
  A.set t.buf.(b) x;
  A.set t.tail (b + 1)

let take t =
  let b = A.get t.tail in
  let h = A.get t.head in
  if h >= b then None
  else begin
    let b' = b - 1 in
    let x = A.get t.buf.(b') in
    A.set t.tail b';
    (* h = b': a thief may extract the same task concurrently — the
       permitted multiplicity. *)
    if x == t.dummy then None else Some x
  end

let steal t =
  let h = A.get t.head in
  let b = A.get t.tail in
  if h >= b then None
  else begin
    let buf = t.buf in
    (* [buf] is a plain read racing owner growth: an older, shorter array
       may not reach a freshly observed index yet. *)
    if h >= Array.length buf then None
    else begin
      let x = A.get buf.(h) in
      (* Validate before advancing: if another thief moved [head] (or the
         owner drained past us) while we read the cell, give up without
         writing — re-reading narrows, but cannot close, the window in
         which two thieves extract the same task or a slow thief drags
         [head] backwards by one. Both outcomes only re-deliver tasks;
         neither loses one the runtime cannot recover. *)
      if A.get t.head = h && A.get t.tail > h then begin
        A.set t.head (h + 1);
        if x == t.dummy then None else Some x
      end
      else None
    end
  end

(* Racy snapshot; can transiently over- or under-count while a steal's
   plain [head] write is in flight. *)
let size t =
  let b = A.get t.tail and h = A.get t.head in
  max 0 (b - h)
