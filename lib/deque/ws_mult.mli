(** Fence-free work-stealing pool with multiplicity (Castañeda & Piña).

    Every operation is made of plain reads and writes — no CAS, no
    fetch-and-add. In exchange the pool is {e relaxed}: a racing owner
    and thief, or two racing thieves, may both extract the same task
    (multiplicity), and a thief acting on stale reads may advance past a
    recycled cell so a task is extracted by nobody. Callers must treat
    extraction as at-least-once delivery of {e idempotent} work and must
    not rely on the pool alone for completeness — the runtime layer
    re-executes a task at join when the pool lost it (see
    lib/runtime/pool.ml).

    The owner puts and takes LIFO at the tail; thieves take FIFO at the
    head. The buffer grows automatically; indices are absolute, so a
    cell is recycled only when the owner takes a task back and puts a
    new one at the same depth. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** Initial cell count (default 64); grows automatically. [dummy] marks
    never-written cells and is never returned. *)

val put : 'a t -> 'a -> unit
(** Owner: add at the tail. Two plain writes (plus a read of [head] to
    resync after a boundary race). Never fails; the buffer grows. *)

val take : 'a t -> 'a option
(** Owner: remove the most recently put task; [None] if empty. The task
    may {e also} be delivered to a thief racing on the boundary cell. *)

val steal : 'a t -> 'a option
(** Thief: take the oldest task, by read / validate / plain write.
    [None] means empty or a lost validation race. The returned task may
    be a duplicate of one already taken, including a stale task from a
    recycled cell — the caller must check completion before running
    it. *)

val size : 'a t -> int
(** Racy snapshot of the apparent element count (never negative). Plain
    [head] writes can transiently distort it even at quiescence. *)
