module Rng = Wool_util.Rng

module Site = struct
  type t =
    | Pre_steal_cas
    | Post_steal_cas
    | Trip_wire
    | Publish
    | Nap_entry
    | Spawn
    | Join
    | Leapfrog
    | Submit
    | Admit
    | Drain
    | Expire
    | Cancel

  let all =
    [
      Pre_steal_cas; Post_steal_cas; Trip_wire; Publish; Nap_entry; Spawn;
      Join; Leapfrog; Submit; Admit; Drain; Expire; Cancel;
    ]

  let count = List.length all

  let to_int = function
    | Pre_steal_cas -> 0
    | Post_steal_cas -> 1
    | Trip_wire -> 2
    | Publish -> 3
    | Nap_entry -> 4
    | Spawn -> 5
    | Join -> 6
    | Leapfrog -> 7
    | Submit -> 8
    | Admit -> 9
    | Drain -> 10
    | Expire -> 11
    | Cancel -> 12

  let name = function
    | Pre_steal_cas -> "pre_steal_cas"
    | Post_steal_cas -> "post_steal_cas"
    | Trip_wire -> "trip_wire"
    | Publish -> "publish"
    | Nap_entry -> "nap_entry"
    | Spawn -> "spawn"
    | Join -> "join"
    | Leapfrog -> "leapfrog"
    | Submit -> "submit"
    | Admit -> "admit"
    | Drain -> "drain"
    | Expire -> "expire"
    | Cancel -> "cancel"

  let of_name s = List.find_opt (fun t -> name t = s) all
end

module Kind = struct
  type t = Delay of int | Fail_steal | Raise_exn | Stall of int | Dup

  let class_count = 5

  let class_of = function
    | Delay _ -> 0
    | Fail_steal -> 1
    | Raise_exn -> 2
    | Stall _ -> 3
    | Dup -> 4

  let class_name = function
    | 0 -> "delay"
    | 1 -> "fail_steal"
    | 2 -> "raise_exn"
    | 3 -> "stall"
    | 4 -> "dup"
    | _ -> invalid_arg "Wool_fault.Kind.class_name"

  let name = function
    | Delay n -> Printf.sprintf "delay(%d)" n
    | Fail_steal -> "fail_steal"
    | Raise_exn -> "raise_exn"
    | Stall n -> Printf.sprintf "stall(%d)" n
    | Dup -> "dup"

  let valid_at kind site =
    match kind with
    | Delay _ | Stall _ -> true
    | Fail_steal ->
        (match site with
        | Site.Pre_steal_cas | Site.Post_steal_cas -> true
        | _ -> false)
    | Raise_exn -> site = Site.Spawn
    | Dup -> site = Site.Drain
end

exception Injected of { site : string; worker : int; fire : int }

let () =
  Printexc.register_printer (function
    | Injected { site; worker; fire } ->
        Some
          (Printf.sprintf "Wool_fault.Injected(site=%s, worker=%d, fire=%d)"
             site worker fire)
    | _ -> None)

module Plan = struct
  type rule = { site : Site.t; kind : Kind.t; rate : float; max_fires : int }
  type t = { name : string; seed : int; rules : rule list }

  let none = { name = "none"; seed = 0; rules = [] }

  let make ?name ~seed rules =
    List.iter
      (fun r ->
        if not (Kind.valid_at r.kind r.site) then
          invalid_arg
            (Printf.sprintf "Wool_fault.Plan.make: %s cannot fire at %s"
               (Kind.name r.kind) (Site.name r.site));
        if not (r.rate >= 0. && r.rate <= 1.) then
          invalid_arg "Wool_fault.Plan.make: rate outside [0,1]")
      rules;
    let name =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "plan#%x(%d rules)" seed (List.length rules)
    in
    { name; seed; rules }

  (* All (site, kind-shape) pairs a random plan draws delay rules from:
     every site takes a delay. *)
  let random ?(exceptions = true) ~seed () =
    let rng = Rng.make (seed lxor 0xFA17) in
    let sites = Array.of_list Site.all in
    let pick_site () = sites.(Rng.int rng (Array.length sites)) in
    let delay_rule () =
      {
        site = pick_site ();
        kind = Kind.Delay (20 + Rng.int rng 400);
        rate = 0.01 +. Rng.float rng 0.25;
        max_fires = -1;
      }
    in
    let n_delays = 2 + Rng.int rng 3 in
    let delays = List.init n_delays (fun _ -> delay_rule ()) in
    let fail =
      {
        site = (if Rng.bool rng then Site.Pre_steal_cas else Site.Post_steal_cas);
        kind = Kind.Fail_steal;
        rate = 0.05 +. Rng.float rng 0.4;
        max_fires = -1;
      }
    in
    let stall =
      {
        site = pick_site ();
        kind = Kind.Stall (10_000 + Rng.int rng 90_000);
        rate = 0.002;
        max_fires = 1 + Rng.int rng 3;
      }
    in
    let exn_rules =
      if exceptions && Rng.bool rng then
        [
          {
            site = Site.Spawn;
            kind = Kind.Raise_exn;
            rate = 0.001 +. Rng.float rng 0.01;
            max_fires = 1 + Rng.int rng 2;
          };
        ]
      else []
    in
    make
      ~name:(Printf.sprintf "random#%d%s" seed
               (if exn_rules <> [] then "+exn" else ""))
      ~seed
      (delays @ (fail :: stall :: exn_rules))

  let has_exceptions t =
    List.exists (fun r -> r.kind = Kind.Raise_exn) t.rules

  let pp fmt t =
    Format.fprintf fmt "@[<v 2>plan %s (seed %#x):" t.name t.seed;
    List.iter
      (fun r ->
        Format.fprintf fmt "@ %s @@ %s rate=%.3f%s" (Kind.name r.kind)
          (Site.name r.site) r.rate
          (if r.max_fires >= 0 then Printf.sprintf " max=%d" r.max_fires
           else ""))
      t.rules;
    Format.fprintf fmt "@]"
end

module Stats = struct
  (* fires.(site).(kind_class) *)
  type t = int array array

  let zero () = Array.make_matrix Site.count Kind.class_count 0

  let combine a b =
    Array.init Site.count (fun s ->
        Array.init Kind.class_count (fun k -> a.(s).(k) + b.(s).(k)))

  let total t = Array.fold_left (fun acc r -> Array.fold_left ( + ) acc r) 0 t

  let count t site =
    Array.fold_left ( + ) 0 t.(Site.to_int site)

  let fields t =
    List.concat_map
      (fun site ->
        let s = Site.to_int site in
        List.filter_map
          (fun k ->
            if t.(s).(k) = 0 then None
            else
              Some
                (Printf.sprintf "%s/%s" (Site.name site) (Kind.class_name k),
                 t.(s).(k)))
          (List.init Kind.class_count Fun.id))
      Site.all

  let pp fmt t =
    match fields t with
    | [] -> Format.fprintf fmt "no fires"
    | fs ->
        Format.fprintf fmt "@[<hov 1>{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Format.fprintf fmt ";@ ";
            Format.fprintf fmt "%s=%d" k v)
          fs;
        Format.fprintf fmt "}@]"

  let to_json t =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf {|"%s":%d|} k v)
           (fields t))
    ^ "}"
end

module Injector = struct
  type armed_rule = {
    rule : Plan.rule;
    mutable fired : int; (* per-worker fires of this rule *)
  }

  type t = {
    worker : int;
    rng : Rng.t;
    (* rules bucketed by site so [fire] scans only candidates *)
    by_site : armed_rule array array;
    counts : Stats.t;
    mutable n_fires : int;
  }

  let make (plan : Plan.t) ~worker =
    let by_site =
      Array.init Site.count (fun s ->
          plan.Plan.rules
          |> List.filter (fun r -> Site.to_int r.Plan.site = s)
          |> List.map (fun rule -> { rule; fired = 0 })
          |> Array.of_list)
    in
    {
      worker;
      (* distinct, deterministic stream per (plan seed, worker) *)
      rng = Rng.make ((plan.Plan.seed * 0x9E3779B1) lxor (worker + 1));
      by_site;
      counts = Stats.zero ();
      n_fires = 0;
    }

  let fire t site =
    let s = Site.to_int site in
    let rules = t.by_site.(s) in
    let n = Array.length rules in
    let rec scan i =
      if i >= n then None
      else begin
        let ar = rules.(i) in
        let r = ar.rule in
        if
          (r.Plan.max_fires < 0 || ar.fired < r.Plan.max_fires)
          && Rng.float t.rng 1.0 < r.Plan.rate
        then begin
          ar.fired <- ar.fired + 1;
          t.n_fires <- t.n_fires + 1;
          let k = Kind.class_of r.Plan.kind in
          t.counts.(s).(k) <- t.counts.(s).(k) + 1;
          Some r.Plan.kind
        end
        else scan (i + 1)
      end
    in
    scan 0

  let spin n =
    for _ = 1 to n do
      Domain.cpu_relax ()
    done

  let injected_exn t site =
    Injected { site = Site.name site; worker = t.worker; fire = t.n_fires }

  let stats t = t.counts
  let fires t = t.n_fires
end
