(** Deterministic fault injection for the scheduler core.

    The direct task stack's correctness argument (paper §III-A) rests on
    races that almost never happen on their own: a thief's CAS delayed
    past a descriptor recycle, a trip wire sprung while the owner is
    mid-publish, an exception unwinding a half-joined spawn tree. This
    library makes those scenarios reproducible: a {!Plan.t} is a pure,
    seed-derived description of {e which} faults fire {e where}, and a
    per-worker {!Injector.t} replays it deterministically — same plan,
    same worker, same decision sequence, every run.

    The runtime consults the injector at fixed {!Site.t}s (every
    scheduler transition); a disabled pool carries no injector and pays
    only one immutable-bool branch per site (the same discipline as the
    trace rings). Faults are perturbations, not corruption: every fault
    kind except {!Kind.Raise_exn} must leave workload results
    bit-identical, and [Raise_exn] raises {!Injected}, which must
    propagate to the joiner like any task exception. *)

(** Where in the scheduler a fault can fire. One constructor per
    protocol transition. *)
module Site : sig
  type t =
    | Pre_steal_cas
        (** thief side, after reading the descriptor state and before the
            steal CAS — a delay here recreates the §III-A delayed-thief
            ABA; an abort models a lost CAS race *)
    | Post_steal_cas
        (** thief side, after a winning CAS and before the [bot]
            re-check — an abort forces the back-off/restore path *)
    | Trip_wire
        (** thief side, between taking the trip-wire descriptor and
            raising the owner's publish request *)
    | Publish  (** owner side, inside the publish transition *)
    | Nap_entry  (** idle thief about to nap *)
    | Spawn  (** task push; the only site where {!Kind.Raise_exn} fires *)
    | Join  (** owner about to join its newest spawn *)
    | Leapfrog  (** each steal attempt made while leapfrogging *)
    | Submit
        (** producer side, on entry to [Submit.submit] — before the
            shutdown check, so a delay here widens the submit-vs-shutdown
            race window *)
    | Admit
        (** producer side, between winning a lane slot and publishing
            the admission — stretches the admit-vs-drain window *)
    | Drain
        (** worker side, each attempt to pop an injection lane in the
            idle loop *)
    | Expire
        (** worker side, after popping a deadline-stamped job and before
            the expiry check — a delay here stretches the
            expire-vs-dequeue race (the job may expire under the
            worker's feet) *)
    | Cancel
        (** worker side, after popping a token-carrying job and before
            the cancellation check — a delay here widens the
            cancel-vs-run window, racing the canceller's settlement
            against the worker's *)

  val all : t list
  val count : int
  val to_int : t -> int
  (** Dense index in [0, count). *)

  val name : t -> string
  val of_name : string -> t option
end

(** What happens when a fault fires. *)
module Kind : sig
  type t =
    | Delay of int  (** spin for [n] cpu-relax iterations, then proceed *)
    | Fail_steal
        (** abort the steal attempt (forced steal-CAS failure); only
            meaningful at [Pre_steal_cas] / [Post_steal_cas] *)
    | Raise_exn
        (** replace the spawned task body with [raise Injected]; only
            meaningful at [Spawn] *)
    | Stall of int
        (** spin for [n] iterations — same mechanism as [Delay], but
            sized to stop a worker's progress long enough to trip the
            stall watchdog *)
    | Dup
        (** deliver the popped injection-lane job to its worker twice —
            an at-least-once ingress, for exercising the ticket layer's
            duplicate-completion dedup; only meaningful at [Drain], and
            never part of {!Plan.random} (a duplicated job's side
            effects repeat, so the plan author must know the jobs are
            idempotent) *)

  val class_count : int
  val class_of : t -> int
  (** Dense constructor index (delay 0, fail 1, raise 2, stall 3,
      dup 4), used to key fire counters. *)

  val class_name : int -> string
  val name : t -> string
  val valid_at : t -> Site.t -> bool
end

exception Injected of { site : string; worker : int; fire : int }
(** The exception {!Kind.Raise_exn} raises: [site] is the firing site's
    name, [worker] the spawning worker, [fire] the 1-based count of
    fires this injector has made. *)

(** A fault plan: the seed plus the rule set it determines. Pure data;
    sharable between runs and printable for reports. *)
module Plan : sig
  type rule = {
    site : Site.t;
    kind : Kind.t;
    rate : float;  (** firing probability per site crossing, in [0,1] *)
    max_fires : int;  (** cap per worker; [-1] = unlimited *)
  }

  type t = { name : string; seed : int; rules : rule list }

  val none : t
  (** No rules: injectors are live (the hooks run) but never fire.
      Measures the enabled-but-empty dispatch cost. *)

  val make : ?name:string -> seed:int -> rule list -> t
  (** Rules whose kind is not {!Kind.valid_at} its site are rejected
      with [Invalid_argument]. *)

  val random : ?exceptions:bool -> seed:int -> unit -> t
  (** A seed-derived adversarial mix: several delay rules over random
      sites, a forced steal-failure rule, a rare bounded stall, and —
      unless [exceptions] is [false] — a bounded [Raise_exn] rule (at
      most 2 fires per worker, so a retried run is guaranteed to
      complete). Equal seeds give equal plans. *)

  val has_exceptions : t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Fire counters, per site × kind class. *)
module Stats : sig
  type t

  val zero : unit -> t
  val combine : t -> t -> t
  val total : t -> int
  val count : t -> Site.t -> int
  (** Fires at one site, summed over kinds. *)

  val fields : t -> (string * int) list
  (** Non-zero ["site/kind"] counters, for tables. *)

  val pp : Format.formatter -> t -> unit
  val to_json : t -> string
end

(** Per-worker injector: owns a private RNG split from the plan seed so
    decision streams are deterministic per (plan, worker) and
    independent across workers. Not thread-safe; one per worker, like
    the victim-selection state. *)
module Injector : sig
  type t

  val make : Plan.t -> worker:int -> t

  val fire : t -> Site.t -> Kind.t option
  (** One site crossing: the first rule at [site] whose (deterministic)
      coin lands and whose per-worker fire cap is not exhausted fires;
      [None] otherwise. Counts the fire. *)

  val spin : int -> unit
  (** Busy-wait [n] cpu-relax iterations — the [Delay]/[Stall] payload.
      The loop is opaque to the optimiser. *)

  val injected_exn : t -> Site.t -> exn
  (** Fresh {!Injected} carrying this injector's identity. *)

  val stats : t -> Stats.t
  val fires : t -> int
end
