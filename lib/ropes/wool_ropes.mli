(** Parallel collections over balanced rope trees (Manticore's
    par-rope-lib shape) on the Wool runtime.

    A rope is an immutable balanced tree of array leaves: O(log n)
    [append] and [get], O(n) conversion to and from flat arrays, and
    data-parallel bulk operations. The novelty is the split schedule:
    by default every operation uses {e lazy binary splitting} — a leaf
    runs one chunk of iterations, polls {!Wool.steal_pressure} (the
    trip-wire / thief-activity signal the direct task stack maintains
    anyway), and only when thieves are hungry halves the remaining range
    and spawns one side. With no pressure (one worker, or a saturated
    pool) the whole range runs as a plain sequential loop with zero
    spawns. [Eager] reproduces the conventional fixed-grain recursive
    schedule, kept as the A/B baseline (`woolbench ropes`).

    {b Relaxed-mode idempotence.} Every parallel body writes disjoint
    slots of fresh arrays or folds pure values, so the operations are
    idempotent by construction and spawn with {!Wool.spawn_idempotent}:
    ropes work unchanged on the relaxed at-least-once pools
    ([Ws_mult]/[Lowsync]). In exchange, the user-supplied functions
    ([f], [pred], [combine]) must be pure: on relaxed pools they may be
    called more than once per element (and [filter]'s [pred] is called
    twice per element in every mode — count pass and emit pass).

    {b Cancellation.} Leaf execution checks the ambient cancel token
    ({!Wool.cancel_token}) between chunks, so a cancelled submission's
    rope operation stops at the next chunk boundary with
    {!Wool.Cancel.Cancelled}.

    Leaves hold at most 512 elements — sized so a leaf is also a
    sensible unit to hand a whole worker team at once (the planned
    mixed-mode team-building layer consumes rope splits). *)

type 'a t
(** An immutable rope of ['a]. *)

(** How a parallel operation cuts its index range into tasks. *)
type split =
  | Lazy_split of int
      (** [Lazy_split chunk]: run [chunk] iterations, poll
          {!Wool.steal_pressure}, split the remainder in half only under
          pressure. The default, with chunk 64. *)
  | Eager of int
      (** [Eager grain]: conventional schedule — recursively halve down
          to [grain] iterations per leaf and spawn every split,
          regardless of demand. *)

val default_split : split
(** [Lazy_split 64]. *)

val empty : 'a t

val length : 'a t -> int
val depth : 'a t -> int
(** Tree depth (leaves are 0); exposed so tests can pin the balance
    guarantees of {!append}. *)

val get : 'a t -> int -> 'a
(** O(depth). Raises [Invalid_argument] out of bounds. *)

val of_array : ?leaf:int -> 'a array -> 'a t
(** Balanced rope over a copy of the array, chopped into leaves of at
    most [leaf] (default 512) elements. Raises [Invalid_argument] if
    [leaf <= 0]. *)

val to_array : 'a t -> 'a array
(** Flatten (fresh array; the rope is unaffected). *)

val of_list : 'a list -> 'a t
val to_list : 'a t -> 'a list

val append : 'a t -> 'a t -> 'a t
(** Concatenate. Small sides merge into one leaf; a result whose depth
    drifts beyond O(log length) — e.g. a long chain of appends of
    skewed trees — is rebuilt balanced, so [get] stays logarithmic. *)

val build : Wool.ctx -> ?split:split -> ?leaf:int -> int -> (int -> 'a) -> 'a t
(** [build ctx n f] is the rope of [f 0 ... f (n-1)] with the
    initialisers run in parallel ([f] must be pure — see the idempotence
    note above). Raises [Invalid_argument] on negative [n]. *)

val map : Wool.ctx -> ?split:split -> ('a -> 'b) -> 'a t -> 'b t
(** Parallel map; order preserved. *)

val for_each : Wool.ctx -> ?split:split -> (int -> 'a -> unit) -> 'a t -> unit
(** [for_each ctx f t] runs [f i x] for every element [x] at index [i],
    in parallel. [f] must be idempotent (write-one-slot style): on
    relaxed pools it may run more than once per element. *)

val reduce :
  Wool.ctx -> ?split:split -> neutral:'b -> combine:('b -> 'b -> 'b) ->
  ('a -> 'b) -> 'a t -> 'b
(** [reduce ctx ~neutral ~combine f t] folds [combine] over [f x] for
    every element. [combine] must be associative with [neutral] as
    identity (the split schedule decides the combine tree). *)

val scan :
  Wool.ctx -> ?split:split -> neutral:'a -> combine:('a -> 'a -> 'a) ->
  'a t -> 'a t
(** Inclusive parallel prefix: element [i] of the result is
    [x_0 ⊕ ... ⊕ x_i]. Two block passes (parallel totals, sequential
    block prefix, parallel emit); [combine] must be associative with
    [neutral] as identity. *)

val filter : Wool.ctx -> ?split:split -> ('a -> bool) -> 'a t -> 'a t
(** Keep the elements satisfying [pred], order preserved. Two block
    passes; [pred] runs twice per element and must be pure. *)
