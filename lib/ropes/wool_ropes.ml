(* Parallel collections over balanced rope trees, in the style of
   Manticore's par-rope-lib, on top of the Wool runtime.

   The interesting part is not the rope — it is {e when to split}. The
   classic eager schedule cuts every range down to a fixed grain and
   spawns the full binary tree whether or not anyone wants the halves;
   on a Wool pool most of those spawns are 1-cycle private pushes, but
   they are still pushes, and the tree bookkeeping is pure overhead when
   no thief ever shows up. Lazy binary splitting inverts the decision:
   a leaf iterates chunk by chunk and asks the runtime between chunks —
   via {!Wool.steal_pressure}, the trip-wire / thief-activity signal the
   direct task stack maintains anyway — whether thieves are hungry. Only
   then does it halve the remainder and spawn one side. One worker, or a
   saturated pool, runs the whole range as a plain loop.

   Every parallel body below writes disjoint slots of a fresh array (or
   folds pure values), so each operation is idempotent by construction
   and spawns with [Wool.spawn_idempotent]: ropes are legal on the
   relaxed at-least-once pools ([Ws_mult]/[Lowsync]) as-is. User-supplied
   functions ([f], [pred], [combine]) must be pure — on relaxed pools
   they may be called more than once per element, and [pred] is called
   twice per element by [filter] (count pass, emit pass) in every mode. *)

type 'a t =
  | Leaf of 'a array
  | Cat of { len : int; depth : int; l : 'a t; r : 'a t }

type split = Lazy_split of int | Eager of int

let default_chunk = 64
let default_split = Lazy_split default_chunk
let max_leaf = 512
let empty : 'a t = Leaf [||]

let length = function Leaf a -> Array.length a | Cat c -> c.len
let depth = function Leaf _ -> 0 | Cat c -> c.depth

let get t i =
  if i < 0 || i >= length t then
    invalid_arg "Wool_ropes.get: index out of bounds";
  let rec go t i =
    match t with
    | Leaf a -> Array.unsafe_get a i
    | Cat { l; r; _ } ->
        let ll = length l in
        if i < ll then go l i else go r (i - ll)
  in
  go t i

let of_array ?(leaf = max_leaf) a =
  if leaf <= 0 then invalid_arg "Wool_ropes.of_array: leaf must be positive";
  let n = Array.length a in
  let rec build lo hi =
    if hi - lo <= leaf then Leaf (Array.sub a lo (hi - lo))
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let l = build lo mid and r = build mid hi in
      Cat { len = hi - lo; depth = 1 + max (depth l) (depth r); l; r }
    end
  in
  if n = 0 then empty else build 0 n

let to_array t =
  let n = length t in
  if n = 0 then [||]
  else begin
    let out = Array.make n (get t 0) in
    let rec fill t pos =
      match t with
      | Leaf a -> Array.blit a 0 out pos (Array.length a)
      | Cat { l; r; _ } ->
          fill l pos;
          fill r (pos + length l)
    in
    fill t 0;
    out
  end

let of_list l = of_array (Array.of_list l)
let to_list t = Array.to_list (to_array t)

(* floor(log2 n) for n >= 1 *)
let ilog2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(* A rope built by [of_array] over [max_leaf]-sized leaves has depth
   about [log2 n - 9]; anything within [log2 n + 2] is close enough that
   [get]/structural recursion stay logarithmic. Beyond that — e.g. a
   long chain of appends — rebuild from the flat array. *)
let balanced t = depth t <= ilog2 (max 1 (length t)) + 2

let append l r =
  let c =
    if length l = 0 then r
    else if length r = 0 then l
    else if length l + length r <= max_leaf then
      (* both sides small: merge into one leaf instead of growing a
         chain of tiny Cat nodes *)
      Leaf (Array.append (to_array l) (to_array r))
    else
      Cat
        {
          len = length l + length r;
          depth = 1 + max (depth l) (depth r);
          l;
          r;
        }
  in
  if balanced c then c else of_array (to_array c)

(* ---- the split engine ---- *)

let[@inline] check_cancel ctx =
  match Wool.cancel_token ctx with
  | None -> ()
  | Some c -> Wool.Cancel.check c

let check_split = function
  | Lazy_split c when c <= 0 ->
      invalid_arg "Wool_ropes: Lazy_split chunk must be positive"
  | Eager g when g <= 0 ->
      invalid_arg "Wool_ropes: Eager grain must be positive"
  | Lazy_split _ | Eager _ -> ()

(* Eager fixed-grain splitting: the conventional schedule, kept both as
   the A/B baseline for `woolbench ropes` and for callers that know
   thieves will always be hungry. [body lo hi] folds the chunk. *)
let rec eager_reduce ctx ~grain ~combine body lo hi =
  if hi - lo <= grain then begin
    check_cancel ctx;
    body lo hi
  end
  else begin
    let mid = lo + ((hi - lo) / 2) in
    let right =
      Wool.spawn_idempotent ctx (fun ctx ->
          eager_reduce ctx ~grain ~combine body mid hi)
    in
    let l = eager_reduce ctx ~grain ~combine body lo mid in
    combine l (Wool.join ctx right)
  end

(* Lazy binary splitting: run one chunk, poll for hunger, and only under
   pressure halve the remainder — spawning the far half, recursing (still
   lazily) into the near half. With no pressure this is a plain loop:
   zero spawns, constant stack. [acc0] threads the fold across chunks;
   the spawned half starts from [neutral], and associativity of
   [combine] glues the halves back together. *)
let rec lazy_reduce ctx ~chunk ~neutral ~combine body acc0 lo hi =
  let acc = ref acc0 in
  let pos = ref lo in
  let finished = ref false in
  while (not !finished) && !pos < hi do
    check_cancel ctx;
    let stop = min hi (!pos + chunk) in
    acc := combine !acc (body !pos stop);
    pos := stop;
    if hi - !pos > chunk && Wool.steal_pressure ctx then begin
      let mid = !pos + ((hi - !pos) / 2) in
      let right =
        Wool.spawn_idempotent ctx (fun ctx ->
            lazy_reduce ctx ~chunk ~neutral ~combine body neutral mid hi)
      in
      let l = lazy_reduce ctx ~chunk ~neutral ~combine body !acc !pos mid in
      acc := combine l (Wool.join ctx right);
      finished := true
    end
  done;
  !acc

let run_reduce ctx ~split ~neutral ~combine body lo hi =
  check_split split;
  if hi <= lo then neutral
  else
    match split with
    | Eager grain -> eager_reduce ctx ~grain ~combine body lo hi
    | Lazy_split chunk ->
        lazy_reduce ctx ~chunk ~neutral ~combine body neutral lo hi

let unit_combine () () = ()

let run_unit ctx ~split body lo hi =
  run_reduce ctx ~split ~neutral:() ~combine:unit_combine body lo hi

(* Apply [f i v] to every element with global index in [lo, hi) — a
   tree-pruned walk, so each chunk costs O(depth + elements touched). *)
let rec iter_sub t tstart lo hi f =
  match t with
  | Leaf a ->
      let s = max lo tstart and e = min hi (tstart + Array.length a) in
      for i = s to e - 1 do
        f i (Array.unsafe_get a (i - tstart))
      done
  | Cat { l; r; len; _ } ->
      if hi <= tstart || tstart + len <= lo then ()
      else begin
        iter_sub l tstart lo hi f;
        iter_sub r (tstart + length l) lo hi f
      end

(* ---- the parallel operations ---- *)

(* Element 0 of every fresh output array is spawned as a task of its own
   and joined to seed [Array.make] — the same discipline as
   [Wool.parallel_map] — so even the seeding element sees cancel checks,
   fault injection, and the scheduler unwind path. *)

let build ctx ?(split = default_split) ?leaf n f =
  if n < 0 then invalid_arg "Wool_ropes.build: negative length";
  check_split split;
  if n = 0 then empty
  else begin
    let first = Wool.spawn_idempotent ctx (fun _ctx -> f 0) in
    let out = Array.make n (Wool.join ctx first) in
    run_unit ctx ~split
      (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- f i
        done)
      1 n;
    of_array ?leaf out
  end

let map ctx ?(split = default_split) f t =
  let n = length t in
  check_split split;
  if n = 0 then empty
  else begin
    let first = Wool.spawn_idempotent ctx (fun _ctx -> f (get t 0)) in
    let out = Array.make n (Wool.join ctx first) in
    run_unit ctx ~split
      (fun lo hi -> iter_sub t 0 lo hi (fun i x -> out.(i) <- f x))
      1 n;
    of_array out
  end

let for_each ctx ?(split = default_split) f t =
  run_unit ctx ~split (fun lo hi -> iter_sub t 0 lo hi f) 0 (length t)

let reduce ctx ?(split = default_split) ~neutral ~combine f t =
  run_reduce ctx ~split ~neutral ~combine
    (fun lo hi ->
      let acc = ref neutral in
      iter_sub t 0 lo hi (fun _ x -> acc := combine !acc (f x));
      !acc)
    0 (length t)

(* Block decomposition shared by [scan] and [filter]: the element space
   is cut into fixed blocks of the split's chunk/grain size, and the
   engine then runs over {e block} indices with granularity 1 — so one
   engine chunk is one block, preserving the configured granularity. *)
let block_layout split n =
  let block =
    match split with Lazy_split c -> c | Eager g -> g
  in
  let block = max 1 block in
  let scaled =
    match split with Lazy_split _ -> Lazy_split 1 | Eager _ -> Eager 1
  in
  (block, (n + block - 1) / block, scaled)

let scan ctx ?(split = default_split) ~neutral ~combine t =
  let n = length t in
  check_split split;
  if n = 0 then empty
  else begin
    let block, nblocks, bsplit = block_layout split n in
    (* pass 1: per-block totals (disjoint slots, parallel) *)
    let sums = Array.make nblocks neutral in
    run_unit ctx ~split:bsplit
      (fun blo bhi ->
        for k = blo to bhi - 1 do
          let lo = k * block and hi = min n ((k + 1) * block) in
          let acc = ref neutral in
          iter_sub t 0 lo hi (fun _ x -> acc := combine !acc x);
          sums.(k) <- !acc
        done)
      0 nblocks;
    (* sequential exclusive prefix over the block totals *)
    let pre = Array.make nblocks neutral in
    let acc = ref neutral in
    for k = 0 to nblocks - 1 do
      pre.(k) <- !acc;
      acc := combine !acc sums.(k)
    done;
    (* pass 2: emit the inclusive scan, each block seeded by its prefix *)
    let out = Array.make n neutral in
    run_unit ctx ~split:bsplit
      (fun blo bhi ->
        for k = blo to bhi - 1 do
          let lo = k * block and hi = min n ((k + 1) * block) in
          let acc = ref pre.(k) in
          iter_sub t 0 lo hi (fun i x ->
              acc := combine !acc x;
              out.(i) <- !acc)
        done)
      0 nblocks;
    of_array out
  end

let filter ctx ?(split = default_split) pred t =
  let n = length t in
  check_split split;
  if n = 0 then empty
  else begin
    let block, nblocks, bsplit = block_layout split n in
    (* pass 1: kept-count per block (disjoint slots, parallel) *)
    let counts = Array.make nblocks 0 in
    run_unit ctx ~split:bsplit
      (fun blo bhi ->
        for k = blo to bhi - 1 do
          let lo = k * block and hi = min n ((k + 1) * block) in
          let c = ref 0 in
          iter_sub t 0 lo hi (fun _ x -> if pred x then incr c);
          counts.(k) <- !c
        done)
      0 nblocks;
    let offsets = Array.make nblocks 0 in
    let total = ref 0 in
    for k = 0 to nblocks - 1 do
      offsets.(k) <- !total;
      total := !total + counts.(k)
    done;
    let total = !total in
    if total = 0 then empty
    else begin
      (* seed the output with the first kept element (found in the first
         non-empty block; [Array.make] needs a value of the right type) *)
      let seed =
        let k0 = ref 0 in
        while counts.(!k0) = 0 do
          incr k0
        done;
        let found = ref None in
        iter_sub t 0 (!k0 * block)
          (min n ((!k0 + 1) * block))
          (fun _ x ->
            match !found with
            | None -> if pred x then found := Some x
            | Some _ -> ());
        match !found with Some x -> x | None -> assert false
      in
      let out = Array.make total seed in
      (* pass 2: compact each block into its precomputed slice — still
         disjoint slots, so still idempotent *)
      run_unit ctx ~split:bsplit
        (fun blo bhi ->
          for k = blo to bhi - 1 do
            let lo = k * block and hi = min n ((k + 1) * block) in
            let pos = ref offsets.(k) in
            iter_sub t 0 lo hi (fun _ x ->
                if pred x then begin
                  out.(!pos) <- x;
                  incr pos
                end)
          done)
        0 nblocks;
      of_array out
    end
  end
