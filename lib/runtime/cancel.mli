(** Cooperative cancellation tokens.

    A token is a shared one-way flag: once {!cancel}led it stays
    cancelled. Attach one to a submission
    ([Submit.submit ~cancel:token]) and every consumer of the token
    observes the same decision:

    - a worker dequeuing the job while the token is set drops it — the
      ticket resolves cancelled and the body never runs;
    - a body already running polls the token ({!is_set} / {!check}), and
      every {!Pool.spawn} in the submission's task tree checks the
      worker's ambient token for free;
    - settlement is first-writer-wins (the PR-7 ticket dedupe), so a
      cancel racing a completion resolves the ticket exactly once in
      every mode, relaxed ones included.

    Cancellation is cooperative: a body that never polls simply runs to
    completion (and then the completion wins the settlement). One token
    may be shared by any number of submissions. *)

type t

exception Cancelled
(** Raised by {!check} (and by [Submit.await] on a ticket whose job was
    cancelled). Task bodies may also raise it directly: the runtime
    treats any [Cancelled] escaping a submitted body as a cancellation,
    resolving the ticket cancelled rather than failed. *)

val create : unit -> t
(** A fresh, un-cancelled token. *)

val cancel : t -> unit
(** Set the flag. Idempotent; safe from any domain. Never blocks: the
    effect on queued/running work is asynchronous and cooperative. *)

val is_set : t -> bool

val check : t -> unit
(** Raise {!Cancelled} if the token is set; the polling idiom for
    long-running bodies ([Cancel.check token] at loop heads). *)
