(** Wool: efficient work stealing for fine grained parallelism.

    OCaml implementation of the direct task stack scheduler of Faxén
    (ICPP 2010). The execution model is SPAWN / CALL / JOIN over a pool of
    domain workers; see {!Pool} for the full API and semantics. This
    module re-exports the pool operations under short names and adds
    divide-and-conquer combinators. *)

module Pool = Pool

module Mode = Pool.Mode
(** First-class mode descriptors: canonical names, parsing, and each
    mode's execution guarantee; see {!Pool.Mode}. *)

module Config = Pool.Config
(** Pool configuration records; see {!Pool.Config}. *)

module Stats = Pool.Stats
(** Scheduler counters; see {!Pool.Stats}. *)

module Policy = Wool_policy
(** Steal policies (victim selection + idle backoff); the same
    {!Wool_policy.t} value configures this runtime
    ([Config.make ~policy]) and the simulator
    ([Wool_sim.Engine.run ~steal_policy]). *)

module Fault = Wool_fault
(** Deterministic fault injection plans; pass one via
    [Config.make ~faults]. See {!Wool_fault}. *)

module Invariants = Pool.Invariants
(** Quiescent protocol-invariant checker; see {!Pool.Invariants}. *)

module Submit = Pool.Submit
(** External submission: inject work from any domain, get a ticket per
    job; see {!Pool.Submit}. Tickets carry optional deadlines and cancel
    tokens, and {!Submit.submit_retry} retries rejected admissions with
    backoff. *)

module Cancel = Cancel
(** Cooperative cancellation tokens ([Submit.submit ~cancel]); see
    {!Cancel}. *)

type pool = Pool.t
type ctx = Pool.ctx
type 'a future = 'a Pool.future

type mode = Pool.mode =
  | Locked  (** per-worker lock at joins and steals (Table II "base") *)
  | Swap_generic  (** descriptor-state exchange, generic join *)
  | Task_specific  (** + direct typed call on inlined joins *)
  | Private  (** + private descriptors with trip wires (default) *)
  | Clev  (** Chase–Lev pointer deque baseline (TBB-like) *)
  | Ws_mult
      (** fence-free read/write pool with multiplicity — relaxed:
          requires [Config.make ~allow_relaxed:true] and
          {!spawn_idempotent} *)
  | Lowsync
      (** low-synchronization pool, one CAS per steal — relaxed, same
          opt-in as [Ws_mult] *)

type publicity = Pool.publicity =
  | All_private
  | All_public
  | Adaptive of int

type admission = Pool.admission =
  | Block
  | Reject
  | Shed_oldest
  | Adaptive
(** Full-lane admission policy for external submissions
    ([Config.make ~admission]); [Adaptive] is the feedback controller
    holding the sojourn-latency EWMA under
    [Config.admission_target_ns]. See {!Pool.type-admission}. *)

type ingress_stats = Pool.ingress_stats
(** Ingress counters (submitted/admitted/rejected/shed/executed/expired/
    cancelled/in-flight); see {!Pool.type-ingress_stats}. *)

exception Pool_overflow
(** Raised by {!spawn} when the worker's task pool is at capacity, before
    any state is mutated; see {!Pool.Pool_overflow}. *)

exception Submission_rejected
(** Raised by {!Submit.await} on a rejected ticket; see
    {!Pool.Submission_rejected}. *)

exception Submission_expired
(** Raised by {!Submit.await} on a ticket whose job's deadline passed
    before a worker took it; see {!Pool.Submission_expired}. *)

val create : ?config:Config.t -> unit -> pool
(** See {!Pool.create}: [config] (built with {!Config.make}) carries
    every setting. *)

val run : pool -> (ctx -> 'a) -> 'a
(** Submit-and-help sugar over the ingress; see {!Pool.run} for the
    server/non-server semantics. *)

val shutdown : pool -> unit
(** Stop and join the workers, then drain the injection lanes rejecting
    every queued ticket; see {!Pool.shutdown}. *)

val with_pool : ?config:Config.t -> (pool -> 'a) -> 'a
(** See {!Pool.with_pool}. *)

val spawn : ctx -> (ctx -> 'a) -> 'a future
(** Raises [Invalid_argument] on relaxed-mode pools; see
    {!Pool.spawn}. *)

val spawn_idempotent : ctx -> (ctx -> 'a) -> 'a future
(** {!spawn} for bodies that tolerate duplicate execution — the only
    spawn accepted on relaxed-mode pools ([Ws_mult]/[Lowsync]); see
    {!Pool.spawn_idempotent}. The combinators below use it internally,
    so they work in every mode. *)

val join : ctx -> 'a future -> 'a
val call : ctx -> (ctx -> 'a) -> 'a

val cancel_token : ctx -> Cancel.t option
(** The ambient cancel token of the submission this worker is running,
    if any; see {!Pool.cancel_token}. *)

val steal_pressure : ctx -> bool
(** Hunger poll for lazy splitters ({!Wool_ropes} and friends): [true]
    when thieves appear to be after this worker's work, so a task
    holding a divisible range should carve off a stealable half now.
    Backed by the direct task stack's trip-wire and thief-activity
    state; queued and relaxed modes answer with conservative proxies.
    See {!Pool.steal_pressure}. *)

val self_id : ctx -> int
val num_workers : pool -> int

val policy : pool -> Wool_policy.t
(** The steal policy the pool runs; see {!Pool.policy}. *)

val policy_name : pool -> string

val ingress_stats : pool -> ingress_stats
(** See {!Pool.ingress_stats}. *)

val layout_check : pool -> string list
(** Cache-layout regression check; see {!Pool.layout_check}. *)

(* Fault injection and the stall watchdog (see {!Pool}): active when
   the pool was created with [faults] / [watchdog_stalls]. *)

val faults_enabled : pool -> bool
val fault_plan : pool -> Wool_fault.Plan.t option
val fault_stats : pool -> Wool_fault.Stats.t
val stall_report : pool -> string
val set_on_stall : pool -> (string -> unit) -> unit
val stalls_fired : pool -> int

(* Tracing (see {!Pool}): populated when the pool was created with
   [trace = true]. *)

val trace_enabled : pool -> bool
val trace_ingress : pool -> Wool_trace.Event.t array
val trace_events : pool -> Wool_trace.Event.t array
val trace_per_worker : pool -> Wool_trace.Event.t array array
val trace_dropped : pool -> int
val trace_clear : pool -> unit

(** {2 Divide-and-conquer combinators}

    {b Purity contract.} Every combinator below spawns via
    {!spawn_idempotent}, so it is accepted on {e every} pool mode —
    including the relaxed ([Ws_mult]/[Lowsync], at-least-once) modes,
    where a spawned subtree, and therefore the user-supplied body
    ([body i] / [f i] / [f xs.(i)]), {b may execute more than once},
    possibly concurrently with its duplicate. The bodies these
    combinators are built for — pure functions, or writers of exactly
    one slot each computes deterministically — are unaffected: the
    duplicate recomputes the same value or rewrites the same slot.
    Bodies with other side effects (shared accumulators, I/O, in-place
    mutation of shared state) will observe the duplicates; on
    exactly-once modes bodies run exactly once and no contract applies.
    The future/result plumbing itself dedupes, so each combinator still
    {e returns} exactly once with one result. *)

val parallel_for : ctx -> ?grain:int -> int -> int -> (int -> unit) -> unit
(** [parallel_for ctx ~grain lo hi body] runs [body i] for [lo <= i < hi]
    as a balanced binary task tree with at most [grain] iterations per
    leaf (default 1) — the spawn/call/join pattern of Figure 2 applied to
    index ranges. Raises [Invalid_argument] if [grain <= 0]. Body purity:
    see the contract above. *)

val parallel_reduce :
  ctx -> ?grain:int -> int -> int -> neutral:'a -> (int -> 'a) ->
  ('a -> 'a -> 'a) -> 'a
(** Tree-shaped fold of [f lo ... f (hi-1)] under an associative [combine]
    with identity [neutral]. Raises [Invalid_argument] if [grain <= 0].
    Body purity: see the contract above. *)

val both : ctx -> (ctx -> 'a) -> (ctx -> 'b) -> 'a * 'b
(** Evaluate two computations as parallel tasks. Body purity: see the
    contract above ([g] is spawned and may run twice on relaxed pools). *)

val parallel_map : ctx -> ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
(** Map over an array as a balanced task tree; results in order. Every
    element — including element 0, which seeds the output array — runs
    as a task inside the tree, so all of them see cancel checks, fault
    injection, trace accounting, and the scheduler unwind path
    uniformly. Body purity: see the contract above. *)

val parallel_init : ctx -> ?grain:int -> int -> (int -> 'a) -> 'a array
(** [Array.init] with task-tree initialisers; the element-0 and purity
    notes of {!parallel_map} apply. Raises [Invalid_argument] on
    negative length. *)
