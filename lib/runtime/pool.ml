module Ds = Wool_deque.Direct_stack
module Locked_deque = Wool_deque.Locked_deque
module Chase_lev = Wool_deque.Chase_lev
module Ws_mult = Wool_deque.Ws_mult
module Lowsync = Wool_deque.Lowsync
module Inject_queue = Wool_deque.Inject_queue
module Ring = Wool_trace.Ring
module Event = Wool_trace.Event
module Select = Wool_policy.Select
module Backoff = Wool_policy.Backoff
module Fault = Wool_fault
module Layout = Wool_util.Layout

exception Pool_overflow = Ds.Pool_overflow

module Mode = Mode
module Cancel = Cancel

(* Re-export so existing [Pool.Locked]-style constructor references keep
   working; the descriptor module is the source of truth. *)
type mode = Mode.t =
  | Locked
  | Swap_generic
  | Task_specific
  | Private
  | Clev
  | Ws_mult
  | Lowsync

type admission = Wool_policy.Admission.t =
  | Block
  | Reject
  | Shed_oldest
  | Adaptive

type publicity = Wool_deque.Direct_stack.publicity =
  | All_private
  | All_public
  | Adaptive of int

module Config = struct
  type t = {
    workers : int option;
    mode : mode;
    publicity : publicity;
    capacity : int;
    lock_mode : [ `Base | `Peek | `Trylock ];
    idle_nap_ns : int;
    seed : int;
    trace : bool;
    trace_capacity : int;
    steal_policy : Wool_policy.Selector.t;
    backoff : Wool_policy.Backoff.t;
    faults : Wool_fault.Plan.t option;
    watchdog_interval_ns : int;
    watchdog_stalls : int;
    injection_lanes : int;
    injection_capacity : int;
    admission : admission;
    admission_target_ns : int;
    server : bool;
    allow_relaxed : bool;
  }

  let default =
    {
      workers = None;
      mode = Private;
      publicity = Adaptive 4;
      capacity = 65536;
      lock_mode = `Base;
      idle_nap_ns = 50_000;
      seed = 0xC0FFEE;
      trace = false;
      trace_capacity = 1 lsl 16;
      steal_policy = Wool_policy.default.Wool_policy.selector;
      backoff = Wool_policy.default.Wool_policy.backoff;
      faults = None;
      watchdog_interval_ns = 5_000_000;
      watchdog_stalls = 0;
      injection_lanes = 1;
      injection_capacity = 1024;
      admission = Block;
      admission_target_ns = 2_000_000;
      server = false;
      allow_relaxed = false;
    }

  (* Reject nonsensical settings here, with the field named, instead of
     letting them surface as a wedged pool or a mod-by-zero deep in the
     ingress path. *)
  let validate c =
    let bad fmt = Printf.ksprintf invalid_arg ("Wool.Config: " ^^ fmt) in
    (match c.workers with
    | Some n when n <= 0 -> bad "workers must be positive (got %d)" n
    | Some _ | None -> ());
    if c.capacity <= 0 then bad "capacity must be positive (got %d)" c.capacity;
    if c.idle_nap_ns < 0 then
      bad "idle_nap_ns must be non-negative (got %d)" c.idle_nap_ns;
    if c.trace_capacity <= 0 then
      bad "trace_capacity must be positive (got %d)" c.trace_capacity;
    if c.watchdog_stalls < 0 then
      bad "watchdog_stalls must be non-negative (got %d)" c.watchdog_stalls;
    if c.watchdog_stalls > 0 && c.watchdog_interval_ns <= 0 then
      bad "watchdog_interval_ns must be positive when the watchdog is on (got %d)"
        c.watchdog_interval_ns;
    if c.injection_lanes <= 0 then
      bad "injection_lanes must be positive (got %d)" c.injection_lanes;
    if c.injection_capacity < 0 then
      bad "injection_capacity must be non-negative (got %d)"
        c.injection_capacity;
    if c.injection_capacity = 0 && c.admission = Block then
      bad
        "injection_capacity = 0 with Block admission would wedge every \
         producer; use Reject to close the ingress";
    if c.injection_capacity = 0 && c.admission = Shed_oldest then
      bad
        "injection_capacity = 0 with Shed_oldest admission has nothing to \
         shed; use Reject to close the ingress";
    if c.injection_capacity = 0 && c.admission = Adaptive then
      bad
        "injection_capacity = 0 with Adaptive admission has no lane to \
         watch; use Reject to close the ingress";
    if c.admission = Adaptive && c.admission_target_ns <= 0 then
      bad "admission_target_ns must be positive with Adaptive admission \
           (got %d)"
        c.admission_target_ns;
    if c.server && c.injection_capacity = 0 then
      bad "server mode needs injection_capacity > 0 (submission is the only \
           way in)";
    if Mode.is_relaxed c.mode && not c.allow_relaxed then
      bad
        "mode %s has at-least-once semantics (a task body may execute more \
         than once); opt in with ~allow_relaxed:true and spawn only \
         idempotent tasks"
        (Mode.name c.mode);
    c

  (* The single option-merge routine behind [make] and [override]: two
     hand-rolled copies drifted on every new field ([trace_capacity] was
     silently not overridable for a while). *)
  let merge base ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
      ?seed ?trace ?trace_capacity ?policy ?steal_policy ?backoff ?faults
      ?watchdog_interval_ns ?watchdog_stalls ?injection_lanes
      ?injection_capacity ?admission ?admission_target_ns ?server
      ?allow_relaxed () =
    let ov o d = Option.value o ~default:d in
    let base_selector, base_backoff =
      match policy with
      | Some p -> (p.Wool_policy.selector, p.Wool_policy.backoff)
      | None -> (base.steal_policy, base.backoff)
    in
    {
      workers = (match workers with Some _ -> workers | None -> base.workers);
      mode = ov mode base.mode;
      publicity = ov publicity base.publicity;
      capacity = ov capacity base.capacity;
      lock_mode = ov lock_mode base.lock_mode;
      idle_nap_ns = ov idle_nap_ns base.idle_nap_ns;
      seed = ov seed base.seed;
      trace = ov trace base.trace;
      trace_capacity = ov trace_capacity base.trace_capacity;
      steal_policy = ov steal_policy base_selector;
      backoff = ov backoff base_backoff;
      faults = (match faults with Some _ -> faults | None -> base.faults);
      watchdog_interval_ns = ov watchdog_interval_ns base.watchdog_interval_ns;
      watchdog_stalls = ov watchdog_stalls base.watchdog_stalls;
      injection_lanes = ov injection_lanes base.injection_lanes;
      injection_capacity = ov injection_capacity base.injection_capacity;
      admission = ov admission base.admission;
      admission_target_ns = ov admission_target_ns base.admission_target_ns;
      server = ov server base.server;
      allow_relaxed = ov allow_relaxed base.allow_relaxed;
    }

  let make ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns ?seed
      ?trace ?trace_capacity ?policy ?steal_policy ?backoff ?faults
      ?watchdog_interval_ns ?watchdog_stalls ?injection_lanes
      ?injection_capacity ?admission ?admission_target_ns ?server
      ?allow_relaxed () =
    validate
      (merge default ?workers ?mode ?publicity ?capacity ?lock_mode
         ?idle_nap_ns ?seed ?trace ?trace_capacity ?policy ?steal_policy
         ?backoff ?faults ?watchdog_interval_ns ?watchdog_stalls
         ?injection_lanes ?injection_capacity ?admission ?admission_target_ns
         ?server ?allow_relaxed ())

  let override c ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
      ?seed ?trace ?trace_capacity ?policy ?steal_policy ?backoff ?faults
      ?watchdog_interval_ns ?watchdog_stalls ?injection_lanes
      ?injection_capacity ?admission ?admission_target_ns ?server
      ?allow_relaxed () =
    validate
      (merge c ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
         ?seed ?trace ?trace_capacity ?policy ?steal_policy ?backoff ?faults
         ?watchdog_interval_ns ?watchdog_stalls ?injection_lanes
         ?injection_capacity ?admission ?admission_target_ns ?server
         ?allow_relaxed ())

  let policy c =
    { Wool_policy.selector = c.steal_policy; backoff = c.backoff }

  let with_policy p c =
    {
      c with
      steal_policy = p.Wool_policy.selector;
      backoff = p.Wool_policy.backoff;
    }

  let mode_name = Mode.name

  let publicity_name = function
    | All_private -> "all_private"
    | All_public -> "all_public"
    | Adaptive w -> Printf.sprintf "adaptive(%d)" w

  let lock_mode_name = function
    | `Base -> "base"
    | `Peek -> "peek"
    | `Trylock -> "trylock"

  let admission_name = Wool_policy.Admission.name

  let pp fmt c =
    Format.fprintf fmt
      "{workers=%s; mode=%s; publicity=%s; capacity=%d; lock_mode=%s;@ \
       idle_nap_ns=%d; seed=%#x; trace=%b; trace_capacity=%d;@ \
       steal_policy=%s; backoff=%s; faults=%s; watchdog=%s;@ \
       ingress=%dx%d/%s%s}"
      (match c.workers with Some n -> string_of_int n | None -> "auto")
      (mode_name c.mode)
      (publicity_name c.publicity)
      c.capacity
      (lock_mode_name c.lock_mode)
      c.idle_nap_ns c.seed c.trace c.trace_capacity
      (Wool_policy.Selector.name c.steal_policy)
      (Wool_policy.Backoff.name c.backoff)
      (match c.faults with
      | Some p -> p.Wool_fault.Plan.name
      | None -> "off")
      (if c.watchdog_stalls > 0 then
         Printf.sprintf "%d@%dns" c.watchdog_stalls c.watchdog_interval_ns
       else "off")
      c.injection_lanes c.injection_capacity
      (admission_name c.admission)
      ((if c.admission = Adaptive then
          Printf.sprintf "(target=%dns)" c.admission_target_ns
        else "")
      ^ (if c.server then "; server" else "")
      ^ if c.allow_relaxed then "; relaxed-ok" else "")
end

type worker = {
  id : int;
  pool : pool;
  dstack : (worker -> unit) Ds.t;
  ldeque : (worker -> unit) Locked_deque.t;
  cdeque : (worker -> unit) Chase_lev.t;
  (* relaxed modes pool {wrapper, completed-flag} pairs so poppers can
     recognise an already-finished duplicate without running it *)
  wmdeque : pending_child Ws_mult.t;
  lsdeque : pending_child Lowsync.t;
  rx_busy : bool Atomic.t;
      (* relaxed modes: set while this worker executes an extracted task.
         An owner may self-join a task whose duplicate is still running
         here, so root completion alone does not quiesce the pool — the
         quiescence barrier spins on these flags before stats or
         invariants are read. *)
  rng : Wool_util.Rng.t;
  sel : Select.state;
  bo : Backoff.state;
  (* tracing: [tr_on] is immutable, so the disabled case is one predictable
     branch on the hot path; each worker writes only its own ring *)
  tr_on : bool;
  ring : Ring.t;
  (* fault injection follows the same immutable-bool discipline *)
  fl_on : bool;
  inj : Fault.Injector.t;
  inj_interfere : Ds.steal_phase -> bool;
      (* [Ds.steal] interference hook over [inj], built once — the steal
         attempt path must not allocate a closure per call *)
  hot : worker_hot;
      (* this worker's frequently written fields, in their own
         cache-line-padded block: the rest of this record is immutable
         after [make_worker], so its lines stay read-shared among thieves
         (who chase [pool]/[dstack] pointers through it on every steal
         attempt) instead of bouncing on every counter bump *)
}

(* Worker-written working set. Only the owner writes (the watchdog and
   the stats reader take racy int loads); padding keeps those writes from
   invalidating the read-shared [worker] record or a neighbouring
   worker's counters. *)
and worker_hot = {
  (* scheduler-transition counter bumped on the wait paths (idle steal
     loop, leapfrog) where [n_spawns] does not advance; the watchdog
     samples [progress + n_spawns] so the spawn/join fast path carries no
     extra store. *)
  mutable progress : int;
  (* Locked/Clev only: outstanding spawns of the task currently executing
     on this worker (and its callers), newest first. The direct-stack
     modes get this for free from descriptor [depth]. *)
  mutable children : pending_child list;
  mutable n_spawns : int;
  mutable n_steals : int;
  mutable n_leap_steals : int;
  mutable n_failed : int;
  mutable n_inlined : int; (* Locked/Clev joins that found the task in place *)
  mutable n_injected : int; (* injected jobs drained and run by this worker *)
  mutable n_join_stolen : int;
  (* Locked/Clev joins (or unwind waits) of a task a thief took; the
     direct modes count these in the dstack. Keeps [joins_stolen]
     meaningful — equal to [steals] at quiescence — in every mode. *)
  mutable n_self_joins : int;
  (* relaxed modes only: joins that could not find their task in the
     local pool and executed the body themselves (the at-least-once
     fallback that makes relaxed joins wait-free) *)
  mutable n_dup_takes : int;
  (* relaxed modes only: extractions whose task had already completed —
     the multiplicity the protocol permits, skipped without running *)
  mutable ambient_cancel : Cancel.t option;
  (* the cancel token of the injected job this worker is currently
     running, if any: [spawn] checks it so a cancelled submission's task
     tree stops fanning out at the next spawn boundary. Owner-written,
     owner-read — never shared. *)
}

and pending_child = {
  pc_wrapper : worker -> unit;
  pc_completed : bool Atomic.t;
}

and pool = {
  pmode : mode;
  relaxed : bool; (* [Mode.is_relaxed pmode]: one immutable-bool branch *)
  backend : backend;
  lock_mode : [ `Base | `Peek | `Trylock ];
  idle_nap_ns : int;
  policy : Wool_policy.t;
  trace_on : bool;
  faults : Fault.Plan.t option;
  mutable workers : worker array;
  stop : bool Atomic.t;
  mutable domains : unit Domain.t list;
  (* lifecycle + watchdog *)
  mutable stopped : bool;
  active : bool Atomic.t; (* a [run] is in progress *)
  watchdog_interval_ns : int;
  watchdog_stalls : int;
  mutable on_stall : string -> unit;
  stall_reports : int Atomic.t;
  mutable wd : unit Domain.t option;
  (* ingress: external submission lanes *)
  server : bool; (* worker 0 is a spawned domain, not the caller *)
  admission : admission;
  adaptive : bool; (* [admission = Adaptive]: one immutable-bool branch *)
  adm_target_ns : int; (* Adaptive's sojourn-latency target *)
  adm_wait_ewma : int Atomic.t;
      (* EWMA of observed lane-sojourn times (ns), updated by draining
         workers with racy read-modify-writes — a lost update only slows
         the controller by one sample, so no CAS loop on the drain path *)
  lanes : injected Inject_queue.t array; (* [||] = ingress closed *)
  next_lane : int Atomic.t; (* producer round-robin cursor *)
  inflight : int Atomic.t; (* admitted and not yet resolved *)
  ingress : ingress;
}

(* A queued external job. [ij_run] executes it on a worker and resolves
   its ticket; [ij_drop] resolves the ticket rejected without running —
   the shed / shutdown-drain path; [ij_cancel]/[ij_expire] resolve it
   cancelled/expired without running — the lifecycle drops a draining
   worker takes when the job's token is set or its deadline has passed.
   Exactly one of the four is called, by whoever pops the element. *)
and injected = {
  ij_run : worker -> unit;
  ij_drop : unit -> unit;
  ij_cancel : unit -> unit;
  ij_expire : unit -> unit;
  ij_deadline : int; (* absolute ns; [max_int] = none *)
  ij_token : Cancel.t option;
  ij_enq_ns : int; (* submission time, for the Adaptive sojourn EWMA *)
}

(* Producer-side shared state. The counters are atomics (the submit path
   must stay lock-free across producer domains); the mutex guards only
   the trace ring and the fault injector — both cold, gated by the same
   immutable on/off discipline as the per-worker instrumentation. *)
and ingress = {
  ig_submitted : int Atomic.t;
  ig_admitted : int Atomic.t;
  ig_rejected : int Atomic.t; (* refused at admission (incl. shutdown) *)
  ig_shed : int Atomic.t; (* dropped after admission: shed or drained *)
  ig_done : int Atomic.t; (* settled completed (ran to a result) *)
  ig_expired : int Atomic.t; (* settled expired: deadline passed unrun *)
  ig_cancelled : int Atomic.t; (* settled cancelled (before or mid-run) *)
  ig_lock : Mutex.t;
  ig_ring : Ring.t; (* Submit/Admit/Reject, stamped worker = nworkers *)
  ig_fl_on : bool;
  ig_inj : Fault.Injector.t;
}

(* The mode-specific task-pool operations, bound once per pool. Replaces
   the [match pmode] dispatch that was repeated in the steal, spawn, and
   join hot paths: each call site is a single indirect call through an
   immutable record, so the branch predictor sees one stable target per
   pool instead of a five-way match. *)
and backend = {
  bk_steal : worker -> victim:worker -> bool;
      (* one attempt against [victim]'s pool; runs the task if taken *)
  bk_spawn : 'a. worker -> (worker -> 'a) -> 'a future;
  bk_join : 'a. worker -> 'a future -> 'a;
  bk_mark : worker -> int;
      (* opaque checkpoint of this worker's outstanding-spawn count *)
  bk_unwind : worker -> mark:int -> unit;
      (* join-or-drain every spawn made since [mark]; called on the
         exception path before propagating out of a task body *)
}

and 'a future = {
  fn : worker -> 'a;
  mutable value : ('a, exn * Printexc.raw_backtrace) result option;
  completed : bool Atomic.t;
  index : int; (* descriptor index in the owner's direct stack; -1 otherwise *)
  owner_id : int;
  mutable wrapper : worker -> unit;
}

type t = pool
type ctx = worker

(* External-submission ticket: producer-side handle on one injected job.
   Resolution is exactly-once (first writer wins under the mutex); the
   condition lets [await] block producers that have no worker to help
   on. *)
type 'a ticket = {
  tk_mutex : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_state : 'a tk_state; (* guarded by [tk_mutex] *)
}

and 'a tk_state =
  | Tk_pending
  | Tk_done of ('a, exn * Printexc.raw_backtrace) result
  | Tk_rejected
  | Tk_cancelled
  | Tk_expired

exception Submission_rejected
exception Submission_expired

let dummy_task (_ : worker) = ()

let dummy_injected =
  {
    ij_run = dummy_task;
    ij_drop = Fun.id;
    ij_cancel = Fun.id;
    ij_expire = Fun.id;
    ij_deadline = max_int;
    ij_token = None;
    ij_enq_ns = 0;
  }

(* Distinguished never-run element for the relaxed deques; compared by
   physical identity inside the protocol bodies. *)
let dummy_pending = { pc_wrapper = dummy_task; pc_completed = Atomic.make false }

let[@inline] record w tag ~a ~b =
  Ring.record w.ring ~ts:(Wool_util.Clock.now_ns ()) ~tag ~a ~b

(* ---- fault-injection hooks ----

   Every hook is guarded by the immutable [fl_on] at the call site, so a
   pool built without [Config.faults] pays one predictable branch per
   site — the same cost model as the trace ring. *)

(* Sites where only delays are meaningful ([Fail_steal]/[Raise_exn]
   cannot fire here by [Kind.valid_at]). *)
let fault_delay w site =
  match Fault.Injector.fire w.inj site with
  | Some (Fault.Kind.Delay n | Fault.Kind.Stall n) -> Fault.Injector.spin n
  | Some _ | None -> ()

(* Thief-side pre-CAS site for the queue modes (Locked/Clev), which have
   no protocol window of their own: a forced failure abandons the
   attempt before touching the victim's queue. *)
(* The direct stack exposes its protocol windows ([Pre_cas]/[Post_cas]/
   [Trip]) through [Ds.steal]'s interference hook, so a delay injected
   at [Pre_steal_cas] genuinely recreates the §III-A delayed-thief ABA
   rather than merely pausing before the call. Closed over the injector
   alone so one closure per worker serves every attempt. *)
let direct_interfere inj phase =
  let site =
    match phase with
    | Ds.Pre_cas -> Fault.Site.Pre_steal_cas
    | Ds.Post_cas -> Fault.Site.Post_steal_cas
    | Ds.Trip -> Fault.Site.Trip_wire
  in
  match Fault.Injector.fire inj site with
  | Some Fault.Kind.Fail_steal -> true
  | Some (Fault.Kind.Delay n | Fault.Kind.Stall n) ->
      Fault.Injector.spin n;
      false
  | Some (Fault.Kind.Raise_exn | Fault.Kind.Dup) | None -> false

let fault_steal_pre w =
  match Fault.Injector.fire w.inj Fault.Site.Pre_steal_cas with
  | Some Fault.Kind.Fail_steal -> true
  | Some (Fault.Kind.Delay n | Fault.Kind.Stall n) ->
      Fault.Injector.spin n;
      false
  | Some (Fault.Kind.Raise_exn | Fault.Kind.Dup) | None -> false

(* ---- ingress instrumentation ----

   Producer-side events and faults share one ring / one injector across
   all producer domains, serialized by [ig_lock]. Both are cold paths
   (gated on the immutable [trace_on] / [ig_fl_on] bools), so the lock
   never appears in an untraced, unfaulted submit. *)

let ig_record pool tag ~a ~b =
  if pool.trace_on then begin
    let ig = pool.ingress in
    Mutex.lock ig.ig_lock;
    Ring.record ig.ig_ring ~ts:(Wool_util.Clock.now_ns ()) ~tag ~a ~b;
    Mutex.unlock ig.ig_lock
  end

let ig_fault pool site =
  let ig = pool.ingress in
  if ig.ig_fl_on then begin
    Mutex.lock ig.ig_lock;
    let k = Fault.Injector.fire ig.ig_inj site in
    Mutex.unlock ig.ig_lock;
    (* spin outside the lock: the fault delays this producer, not all *)
    match k with
    | Some (Fault.Kind.Delay n | Fault.Kind.Stall n) -> Fault.Injector.spin n
    | Some _ | None -> ()
  end

let nap pool ~factor =
  if pool.idle_nap_ns > 0 then
    Unix.sleepf (float_of_int (pool.idle_nap_ns * factor) *. 1e-9)

let idle_backoff w =
  Domain.cpu_relax ();
  match Backoff.on_failure w.bo with
  | Backoff.Relax -> ()
  | Backoff.Yield ->
      (* relinquish the timeslice without the full nap *)
      Unix.sleepf 0.
  | Backoff.Nap factor ->
      if w.fl_on then fault_delay w Fault.Site.Nap_entry;
      if w.tr_on then record w Event.Nap_enter ~a:factor ~b:(-1);
      nap w.pool ~factor;
      if w.tr_on then record w Event.Nap_exit ~a:(-1) ~b:(-1)

(* ---- mode-specific steal attempts (the [bk_steal] implementations) ----

   Each implementation counts its own [n_steals] *before* running the
   task: the increment must be ordered before the completion signal the
   owner waits on (descriptor DONE / [completed] flag), or a quiescent
   invariant check could observe the join without the steal. *)

let steal_locked w ~(victim : worker) =
  if w.fl_on && fault_steal_pre w then false
  else
    match Locked_deque.steal ~mode:w.pool.lock_mode victim.ldeque with
    | Some task ->
        w.hot.n_steals <- w.hot.n_steals + 1;
        if w.tr_on then record w Event.Steal_ok ~a:(-1) ~b:victim.id;
        task w;
        true
    | None -> false

let steal_clev w ~(victim : worker) =
  if w.fl_on && fault_steal_pre w then false
  else
    match Chase_lev.steal victim.cdeque with
    | `Stolen task ->
        w.hot.n_steals <- w.hot.n_steals + 1;
        if w.tr_on then record w Event.Steal_ok ~a:(-1) ~b:victim.id;
        task w;
        true
    | `Empty | `Retry -> false

let steal_direct w ~(victim : worker) =
  let result =
    if w.fl_on then
      Ds.steal victim.dstack ~thief:w.id ~interfere:w.inj_interfere
    else Ds.steal victim.dstack ~thief:w.id
  in
  match result with
  | Ds.Stolen_task (task, index) ->
      w.hot.n_steals <- w.hot.n_steals + 1;
      if w.tr_on then record w Event.Steal_ok ~a:index ~b:victim.id;
      task w;
      Ds.complete_steal victim.dstack ~index;
      true
  | Ds.Backoff ->
      if w.tr_on then record w Event.Steal_backoff ~a:(-1) ~b:victim.id;
      false
  | Ds.Fail -> false

(* Relaxed modes: an extraction may be a duplicate of a task that already
   ran (multiplicity), so the thief checks the completion flag before
   executing and skips finished ones. A not-yet-completed duplicate still
   runs — that is the at-least-once contract the idempotent-task API
   opts the caller into. *)
let run_extracted w pc ~victim_id =
  (* The busy flag goes up before the completion check: a barrier that
     has observed it down can only be overtaken by an extraction whose
     task completed before the barrier started, and that one skips. *)
  Atomic.set w.rx_busy true;
  if Atomic.get pc.pc_completed then begin
    Atomic.set w.rx_busy false;
    w.hot.n_dup_takes <- w.hot.n_dup_takes + 1;
    false
  end
  else begin
    w.hot.n_steals <- w.hot.n_steals + 1;
    if w.tr_on then record w Event.Steal_ok ~a:(-1) ~b:victim_id;
    pc.pc_wrapper w;
    Atomic.set w.rx_busy false;
    true
  end

let steal_ws_mult w ~(victim : worker) =
  if w.fl_on && fault_steal_pre w then false
  else
    match Ws_mult.steal victim.wmdeque with
    | Some pc -> run_extracted w pc ~victim_id:victim.id
    | None -> false

let steal_lowsync w ~(victim : worker) =
  if w.fl_on && fault_steal_pre w then false
  else
    match Lowsync.steal victim.lsdeque with
    | Some pc -> run_extracted w pc ~victim_id:victim.id
    | None -> false

(* Attempt to steal one task from [victim] and run it. *)
let steal_once w ~(victim : worker) =
  if w.tr_on then record w Event.Steal_attempt ~a:(-1) ~b:victim.id;
  let ran = w.pool.backend.bk_steal w ~victim in
  if ran then begin
    Backoff.on_success w.bo;
    Select.on_success w.sel ~victim:victim.id
  end
  else w.hot.n_failed <- w.hot.n_failed + 1;
  ran

let select_victim w =
  match Select.next w.sel ~rng:w.rng ~n:(Array.length w.pool.workers) with
  | None -> None
  | Some v -> Some w.pool.workers.(v)

(* Try to pop one injected job off the pool's ingress lanes and run it.
   Called only from the idle loop — after the worker has run out of local
   work, before it turns to remote steals — so the private-task fast path
   never sees the lanes. Workers start their scan at a different lane
   each ([id]-staggered) to spread drain pressure. *)
let drain_injected w =
  let pool = w.pool in
  let nl = Array.length pool.lanes in
  if nl = 0 then false
  else begin
    (* [Dup] turns this drain into an at-least-once delivery: the popped
       job runs twice on this worker, which is exactly the duplicate the
       ticket layer's first-writer-wins resolution must absorb. *)
    let dup =
      w.fl_on
      &&
      match Fault.Injector.fire w.inj Fault.Site.Drain with
      | Some (Fault.Kind.Delay n | Fault.Kind.Stall n) ->
          Fault.Injector.spin n;
          false
      | Some Fault.Kind.Dup -> true
      | Some _ | None -> false
    in
    let rec scan i =
      if i >= nl then false
      else begin
        let lane = if nl = 1 then 0 else (w.id + i) mod nl in
        match Inject_queue.try_pop pool.lanes.(lane) with
        | Some ij ->
            (* Lifecycle drops come first: a cancelled or expired job is
               settled here without running — and without a
               [Dequeue_injected] event or an [n_injected] bump, both of
               which the trace oracle equates with executions. The
               [Cancel]/[Expire] fault sites sit between the pop and the
               respective check, stretching the race window between a
               late canceller (or a ticking clock) and this worker. *)
            if pool.adaptive then begin
              (* racy EWMA (alpha = 1/4): a lost update costs one sample,
                 which the controller tolerates by design. Every pop
                 feeds it — a job dropped below for sitting past its
                 deadline is the loudest overload signal there is. *)
              let wait = Wool_util.Clock.now_ns () - ij.ij_enq_ns in
              let e = Atomic.get pool.adm_wait_ewma in
              Atomic.set pool.adm_wait_ewma (e + ((wait - e) asr 2))
            end;
            let cancelled =
              match ij.ij_token with
              | Some c ->
                  if w.fl_on then fault_delay w Fault.Site.Cancel;
                  Cancel.is_set c
              | None -> false
            in
            if cancelled then begin
              ij.ij_cancel ();
              true
            end
            else if
              ij.ij_deadline <> max_int
              && begin
                   if w.fl_on then fault_delay w Fault.Site.Expire;
                   Wool_util.Clock.now_ns () > ij.ij_deadline
                 end
            then begin
              ij.ij_expire ();
              true
            end
            else begin
              w.hot.n_injected <- w.hot.n_injected + 1;
              if w.tr_on then record w Event.Dequeue_injected ~a:lane ~b:(-1);
              (match ij.ij_token with
              | Some _ as tok ->
                  (* expose the job's token to its whole task tree: every
                     [spawn] under it checks the ambient token. [ij_run]
                     never raises (the body's outcome is settled into the
                     ticket), so a plain save/restore suffices. *)
                  let saved = w.hot.ambient_cancel in
                  w.hot.ambient_cancel <- tok;
                  ij.ij_run w;
                  if dup then ij.ij_run w;
                  w.hot.ambient_cancel <- saved
              | None ->
                  ij.ij_run w;
                  if dup then ij.ij_run w);
              true
            end
        | None -> scan (i + 1)
      end
    in
    scan 0
  end

(* One unpinned steal attempt against a policy-chosen victim, backing off
   on failure. This is the idle loop body and the Locked/Clev blocked-join
   strategy. Injection lanes are checked first: an idle worker is exactly
   the consumer the ingress wants, and a successful drain resets the
   backoff like a successful steal. *)
let steal_idle w =
  w.hot.progress <- w.hot.progress + 1;
  if drain_injected w then begin
    Backoff.on_success w.bo;
    true
  end
  else
    match select_victim w with
    | None ->
        idle_backoff w;
        false
    | Some victim ->
        let ran = steal_once w ~victim in
        if not ran then begin
          Select.on_failure w.sel;
          idle_backoff w
        end;
        ran

let worker_loop w =
  while not (Atomic.get w.pool.stop) do
    ignore (steal_idle w : bool)
  done

(* Relaxed modes: root completion does not imply an idle pool — an owner
   may have self-joined a task whose duplicate is still executing on a
   thief, and that execution keeps bumping counters and spawning into its
   local pool. Spin until every worker has left its extraction window;
   any extraction that begins afterwards finds its task completed and
   skips without running. Exact modes need no barrier (a join returns
   only after the thief's execution finished), so this is free there. *)
let quiesce_relaxed pool =
  if pool.relaxed then
    Array.iter
      (fun w ->
        while Atomic.get w.rx_busy do
          Domain.cpu_relax ()
        done)
      pool.workers

let value_exn fut =
  match fut.value with
  | Some (Ok v) -> v
  | Some (Error (e, bt)) ->
      (* re-raise at the joiner with the backtrace captured where the
         task body originally raised — possibly on another worker *)
      Printexc.raise_with_backtrace e bt
  | None ->
      (* Unreachable: completion is observed before the value is read. *)
      assert false

(* Leapfrogging (§I, Wagner & Calder): while blocked on a task stolen by
   [victim_id], steal only from that worker. Any task acquired this way is
   work we would have executed ourselves had there been no steal. *)
let leapfrog w ~victim_id ~index =
  let victim = w.pool.workers.(victim_id) in
  while not (Ds.stolen_done w.dstack ~index) do
    w.hot.progress <- w.hot.progress + 1;
    if w.fl_on then fault_delay w Fault.Site.Leapfrog;
    let before = w.hot.n_steals in
    if steal_once w ~victim then begin
      w.hot.n_leap_steals <- w.hot.n_leap_steals + (w.hot.n_steals - before);
      if w.tr_on then record w Event.Leap_steal ~a:(-1) ~b:victim_id
    end
    else idle_backoff w
  done

let wait_completed w fut =
  (* No thief identity (Locked/Clev modes): steal per the policy while
     waiting. This is the strategy whose buried-join behaviour §I
     discusses. *)
  while not (Atomic.get fut.completed) do
    ignore (steal_idle w : bool)
  done;
  value_exn fut

let wait_child w pc =
  while not (Atomic.get pc.pc_completed) do
    ignore (steal_idle w : bool)
  done

(* ---- exception unwinding ----

   When a task body raises between spawn and join, its outstanding
   children must not be abandoned: a queued child could be picked up by
   a thief after its parent's frame is gone, and a direct-stack child
   would corrupt the strict LIFO discipline for every frame below. So
   the exception path joins-or-drains everything spawned since the
   failing body's entry mark before the exception propagates. Drained
   results (and any exceptions of the children themselves) are
   discarded — the parent's exception wins. *)

let unwind_direct w ~mark =
  while Ds.depth w.dstack > mark do
    match Ds.pop w.dstack with
    | Ds.Task (wrapper, _public) -> (try wrapper w with _ -> ())
    | Ds.Stolen { thief; index } ->
        if w.tr_on then record w Event.Join_stolen ~a:index ~b:thief;
        if thief >= 0 then leapfrog w ~victim_id:thief ~index;
        Ds.reclaim w.dstack ~index
  done

let unwind_queued ~pop ~push w ~mark =
  while List.length w.hot.children > mark do
    match w.hot.children with
    | [] -> assert false (* length > mark >= 0 *)
    | pc :: rest -> (
        w.hot.children <- rest;
        match pop w with
        | Some wrapper when wrapper == pc.pc_wrapper ->
            w.hot.n_inlined <- w.hot.n_inlined + 1;
            (try wrapper w with _ -> ())
        | Some other ->
            (* [pc] was stolen; [other] is an older pending spawn of
               ours that the next iteration will handle. *)
            push w other;
            w.hot.n_join_stolen <- w.hot.n_join_stolen + 1;
            if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
            wait_child w pc
        | None ->
            w.hot.n_join_stolen <- w.hot.n_join_stolen + 1;
            if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
            wait_child w pc)
  done

(* Run a task body, storing the result — or, on an exception, unwinding
   the body's own spawns and storing the exception with the backtrace
   captured at the raise point. Never raises. *)
let run_body wk (fut : _ future) =
  let mark = wk.pool.backend.bk_mark wk in
  match fut.fn wk with
  | v -> fut.value <- Some (Ok v)
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      wk.pool.backend.bk_unwind wk ~mark;
      fut.value <- Some (Error (e, bt))

(* ---- spawn (the [bk_spawn] implementations) ---- *)

(* Direct-stack modes signal completion through the descriptor state, so
   their futures share one never-read completion flag instead of
   allocating one per spawn. *)
let unused_completed = Atomic.make false

let spawn_queued push w (fn : worker -> 'a) : 'a future =
  let fut =
    { fn; value = None; completed = Atomic.make false; index = -1;
      owner_id = w.id; wrapper = dummy_task }
  in
  let wrapper wk =
    run_body wk fut;
    Atomic.set fut.completed true
  in
  fut.wrapper <- wrapper;
  (* Push first: if the queue overflows, no phantom child is left on the
     list for the unwinder to wait on forever. A thief completing the
     task before the cons is harmless — the record just starts life with
     [pc_completed] already true. *)
  push w wrapper;
  w.hot.children <-
    { pc_wrapper = wrapper; pc_completed = fut.completed } :: w.hot.children;
  if w.tr_on then record w Event.Spawn ~a:(-1) ~b:(-1);
  fut

let spawn_locked w fn = spawn_queued (fun w t -> Locked_deque.push w.ldeque t) w fn
let spawn_clev w fn = spawn_queued (fun w t -> Chase_lev.push w.cdeque t) w fn

let spawn_direct w (fn : worker -> 'a) : 'a future =
  let index = Ds.depth w.dstack in
  let fut =
    { fn; value = None; completed = unused_completed; index;
      owner_id = w.id; wrapper = dummy_task }
  in
  let wrapper wk = run_body wk fut in
  fut.wrapper <- wrapper;
  (* the push may raise [Pool_overflow]; the event is recorded only for
     spawns that happened *)
  Ds.push w.dstack wrapper;
  if w.tr_on then record w Event.Spawn ~a:index ~b:(-1);
  fut

(* ---- join (the [bk_join] implementations) ---- *)

(* Drop [fut]'s outstanding-child record (Locked/Clev); joins are LIFO in
   practice, so the head check is the fast path. *)
let pop_child w fut =
  match w.hot.children with
  | pc :: rest when pc.pc_wrapper == fut.wrapper -> w.hot.children <- rest
  | _ ->
      w.hot.children <-
        List.filter (fun pc -> pc.pc_wrapper != fut.wrapper) w.hot.children

let join_direct ~generic w fut =
  if fut.index <> Ds.depth w.dstack - 1 then
    invalid_arg "Wool.join: joins must be made in LIFO spawn order";
  match Ds.pop w.dstack with
  | Ds.Task (wrapper, public) ->
      if w.tr_on then
        record w
          (if public then Event.Inline_public else Event.Inline_private)
          ~a:fut.index ~b:(-1);
      if generic then begin
        (* Generic join: go through the wrapper and the result cell, as a
           runtime without task-specific join functions must. *)
        wrapper w;
        value_exn fut
      end
      else
        (* Task-specific join: direct call of the typed task function.
           An exception here unwinds in the caller's [run_body]. *)
        fut.fn w
  | Ds.Stolen { thief; index } ->
      if w.tr_on then record w Event.Join_stolen ~a:index ~b:thief;
      Select.stolen_by w.sel ~thief;
      if thief >= 0 then leapfrog w ~victim_id:thief ~index;
      Ds.reclaim w.dstack ~index;
      value_exn fut

let join_locked w fut =
  pop_child w fut;
  match Locked_deque.pop w.ldeque with
  | Some wrapper ->
      assert (wrapper == fut.wrapper);
      w.hot.n_inlined <- w.hot.n_inlined + 1;
      if w.tr_on then record w Event.Inline_public ~a:(-1) ~b:(-1);
      wrapper w;
      value_exn fut
  | None ->
      w.hot.n_join_stolen <- w.hot.n_join_stolen + 1;
      if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
      wait_completed w fut

let join_clev w fut =
  pop_child w fut;
  match Chase_lev.pop w.cdeque with
  | Some wrapper when wrapper == fut.wrapper ->
      w.hot.n_inlined <- w.hot.n_inlined + 1;
      if w.tr_on then record w Event.Inline_public ~a:(-1) ~b:(-1);
      wrapper w;
      value_exn fut
  | Some other ->
      (* Our task was stolen; [other] is an older pending task of ours.
         Restore it and wait for the thief. *)
      Chase_lev.push w.cdeque other;
      w.hot.n_join_stolen <- w.hot.n_join_stolen + 1;
      if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
      wait_completed w fut
  | None ->
      w.hot.n_join_stolen <- w.hot.n_join_stolen + 1;
      if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
      wait_completed w fut

(* ---- the relaxed (at-least-once) modes ----

   The protocol bodies (Ws_mult/Lowsync) may deliver a task twice, and a
   thief acting on stale reads can even advance past a recycled cell so
   the protocol delivers a task to nobody. The runtime absorbs both with
   one discipline: every wrapper re-checks the completion flag before
   running (duplicates degrade to skips once the first execution
   finishes), and a join that cannot find its task in the local pool
   executes the body itself instead of waiting for a thief that may not
   exist. That self-execution makes relaxed joins wait-free — they never
   spin on another worker — at the price of a possible concurrent
   duplicate run, which is exactly what the idempotent-task contract
   permits. *)

let spawn_relaxed put w (fn : worker -> 'a) : 'a future =
  let fut =
    { fn; value = None; completed = Atomic.make false; index = -1;
      owner_id = w.id; wrapper = dummy_task }
  in
  let wrapper wk =
    (* second-chance duplicate guard: extraction sites check too, but a
       race between their check and this call can still double-deliver *)
    if not (Atomic.get fut.completed) then begin
      run_body wk fut;
      Atomic.set fut.completed true
    end
  in
  fut.wrapper <- wrapper;
  let pc = { pc_wrapper = wrapper; pc_completed = fut.completed } in
  put w pc;
  w.hot.children <- pc :: w.hot.children;
  if w.tr_on then record w Event.Spawn ~a:(-1) ~b:(-1);
  fut

(* Join fallback shared with the unwinder: the task is not at the top of
   our pool — stolen, mid-duplicate, or protocol-skipped. Run it
   ourselves unless it already completed; either way the completion flag
   read/write orders the value write before [value_exn]. *)
let join_missing w (pc : pending_child) =
  w.hot.n_join_stolen <- w.hot.n_join_stolen + 1;
  if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
  if not (Atomic.get pc.pc_completed) then begin
    w.hot.n_self_joins <- w.hot.n_self_joins + 1;
    pc.pc_wrapper w
  end

(* A popped sibling that is not the one we are joining (out-of-order
   joins, e.g. FIFO joins over this LIFO pool, or a multiplicity
   duplicate). Run it now — guarded — instead of putting it back: its
   own join will find it completed, the pool drains monotonically, and
   no finished task is stranded for idle thieves to keep re-probing.
   Counted as a self-join (owner executed a child outside its matching
   join) so the coverage invariant still accounts for it. *)
let run_popped_sibling w (pc : pending_child) =
  if not (Atomic.get pc.pc_completed) then begin
    w.hot.n_self_joins <- w.hot.n_self_joins + 1;
    pc.pc_wrapper w
  end
  else w.hot.n_dup_takes <- w.hot.n_dup_takes + 1

let join_relaxed ~take w fut =
  pop_child w fut;
  let rec drain () =
    match take w with
    | Some pc when pc.pc_wrapper == fut.wrapper ->
        w.hot.n_inlined <- w.hot.n_inlined + 1;
        if w.tr_on then record w Event.Inline_public ~a:(-1) ~b:(-1);
        pc.pc_wrapper w;
        value_exn fut
    | Some pc ->
        run_popped_sibling w pc;
        drain ()
    | None ->
        join_missing w
          { pc_wrapper = fut.wrapper; pc_completed = fut.completed };
        value_exn fut
  in
  drain ()

let unwind_relaxed ~take w ~mark =
  while List.length w.hot.children > mark do
    match w.hot.children with
    | [] -> assert false (* length > mark >= 0 *)
    | pc :: rest -> (
        w.hot.children <- rest;
        match take w with
        | Some pc' when pc' == pc ->
            w.hot.n_inlined <- w.hot.n_inlined + 1;
            (try pc.pc_wrapper w with _ -> ())
        | other ->
            (match other with
            | Some o -> ( try run_popped_sibling w o with _ -> ())
            | None -> ());
            (try join_missing w pc with _ -> ()))
  done

(* ---- backends ---- *)

let queued_mark w = List.length w.hot.children

let locked_backend =
  {
    bk_steal = steal_locked;
    bk_spawn = spawn_locked;
    bk_join = join_locked;
    bk_mark = queued_mark;
    bk_unwind =
      unwind_queued
        ~pop:(fun w -> Locked_deque.pop w.ldeque)
        ~push:(fun w t -> Locked_deque.push w.ldeque t);
  }

let clev_backend =
  {
    bk_steal = steal_clev;
    bk_spawn = spawn_clev;
    bk_join = join_clev;
    bk_mark = queued_mark;
    bk_unwind =
      unwind_queued
        ~pop:(fun w -> Chase_lev.pop w.cdeque)
        ~push:(fun w t -> Chase_lev.push w.cdeque t);
  }

let direct_backend ~generic =
  {
    bk_steal = steal_direct;
    bk_spawn = spawn_direct;
    bk_join = (fun w fut -> join_direct ~generic w fut);
    bk_mark = (fun w -> Ds.depth w.dstack);
    bk_unwind = unwind_direct;
  }

let ws_mult_backend =
  let take w = Ws_mult.take w.wmdeque in
  let put w pc = Ws_mult.put w.wmdeque pc in
  {
    bk_steal = steal_ws_mult;
    bk_spawn = (fun w fn -> spawn_relaxed put w fn);
    bk_join = (fun w fut -> join_relaxed ~take w fut);
    bk_mark = queued_mark;
    bk_unwind = unwind_relaxed ~take;
  }

let lowsync_backend =
  let take w = Lowsync.take w.lsdeque in
  let put w pc = Lowsync.put w.lsdeque pc in
  {
    bk_steal = steal_lowsync;
    bk_spawn = (fun w fn -> spawn_relaxed put w fn);
    bk_join = (fun w fut -> join_relaxed ~take w fut);
    bk_mark = queued_mark;
    bk_unwind = unwind_relaxed ~take;
  }

let backend_of_mode = function
  | Locked -> locked_backend
  | Clev -> clev_backend
  | Swap_generic -> direct_backend ~generic:true
  | Task_specific | Private -> direct_backend ~generic:false
  | Ws_mult -> ws_mult_backend
  | Lowsync -> lowsync_backend

(* ---- the public task operations ---- *)

let spawn_checked (w : ctx) (fn : ctx -> 'a) : 'a future =
  if w.pool.stopped then invalid_arg "Wool.spawn: pool is shut down";
  (* one predictable branch (load + compare against the immediate [None])
     on the spawn fast path: a cancelled submission's task tree stops
     fanning out here instead of racing the fan-out to completion *)
  (match w.hot.ambient_cancel with
  | Some c -> Cancel.check c
  | None -> ());
  let fut =
    if w.fl_on then
      match Fault.Injector.fire w.inj Fault.Site.Spawn with
      | Some Fault.Kind.Raise_exn ->
          (* replace the body: the fault surfaces exactly like a task
             exception, exercising the full unwind/propagation path *)
          let e = Fault.Injector.injected_exn w.inj Fault.Site.Spawn in
          w.pool.backend.bk_spawn w (fun _ -> raise e)
      | Some (Fault.Kind.Delay n | Fault.Kind.Stall n) ->
          Fault.Injector.spin n;
          w.pool.backend.bk_spawn w fn
      | Some (Fault.Kind.Fail_steal | Fault.Kind.Dup) | None ->
          w.pool.backend.bk_spawn w fn
    else w.pool.backend.bk_spawn w fn
  in
  (* counted only after the push succeeds: a [Pool_overflow] raise must
     leave the spawn/join counter balance intact for [Invariants.check] *)
  w.hot.n_spawns <- w.hot.n_spawns + 1;
  fut

(* [spawn] is the exactly-once surface: in a relaxed pool the body may
   execute more than once, so the caller must say so by name. The branch
   is on an immutable bool, same cost model as the trace/fault gates. *)
let spawn (w : ctx) (fn : ctx -> 'a) : 'a future =
  if w.pool.relaxed then
    invalid_arg
      (Printf.sprintf
         "Wool.spawn: mode %s has at-least-once semantics; use \
          spawn_idempotent for tasks that tolerate duplicate execution"
         (Mode.name w.pool.pmode));
  spawn_checked w fn

let spawn_idempotent (w : ctx) (fn : ctx -> 'a) : 'a future =
  spawn_checked w fn

let join (w : ctx) fut =
  if fut.owner_id <> w.id then
    invalid_arg "Wool.join: future joined on a different worker";
  if w.fl_on then fault_delay w Fault.Site.Join;
  w.pool.backend.bk_join w fut

let call (w : ctx) fn = fn w
let cancel_token (w : ctx) = w.hot.ambient_cancel

(* Hunger poll for lazy splitters (Wool_ropes): should the running task
   carve off stealable work right now? The direct modes read the trip
   wire / thief-activity state their stack already maintains (see
   {!Ds.steal_pressure}); the queued baselines have no trip wire, so the
   best cheap proxy is "my deque has been drained" — thieves took
   everything I published and may be starving. The relaxed pools track
   neither (fence-free protocols keep no failure counters a poll could
   trust), so they conservatively report pressure whenever a thief
   exists: relaxed callers split eagerly rather than strand work. *)
let steal_pressure (w : ctx) =
  let pool = w.pool in
  match pool.pmode with
  | Swap_generic | Task_specific | Private -> Ds.steal_pressure w.dstack
  | Locked ->
      Array.length pool.workers > 1 && Locked_deque.size w.ldeque = 0
  | Clev -> Array.length pool.workers > 1 && Chase_lev.size w.cdeque = 0
  | Ws_mult | Lowsync -> Array.length pool.workers > 1
let self_id w = w.id
let num_workers pool = Array.length pool.workers
let mode pool = pool.pmode
let policy pool = pool.policy
let policy_name pool = Wool_policy.name pool.policy
let pool_of_ctx w = w.pool

(* ---- the ingress path (external submission) ---- *)

let make_ticket () =
  {
    tk_mutex = Mutex.create ();
    tk_cond = Condition.create ();
    tk_state = Tk_pending;
  }

(* First resolution wins; later calls are no-ops. Returns whether this
   call was the winner (so counters are bumped exactly once). *)
let tk_resolve tk st =
  Mutex.lock tk.tk_mutex;
  let won = match tk.tk_state with Tk_pending -> true | _ -> false in
  if won then begin
    tk.tk_state <- st;
    Condition.broadcast tk.tk_cond
  end;
  Mutex.unlock tk.tk_mutex;
  won

let tk_read tk =
  Mutex.lock tk.tk_mutex;
  let st = tk.tk_state in
  Mutex.unlock tk.tk_mutex;
  st

let await_ticket tk =
  Mutex.lock tk.tk_mutex;
  while match tk.tk_state with Tk_pending -> true | _ -> false do
    Condition.wait tk.tk_cond tk.tk_mutex
  done;
  let st = tk.tk_state in
  Mutex.unlock tk.tk_mutex;
  match st with
  | Tk_done (Ok v) -> v
  | Tk_done (Error (e, bt)) ->
      (* re-raise at the awaiter with the backtrace captured where the
         injected body originally raised — on whichever worker ran it *)
      Printexc.raise_with_backtrace e bt
  | Tk_rejected -> raise Submission_rejected
  | Tk_cancelled -> raise Cancel.Cancelled
  | Tk_expired -> raise Submission_expired
  | Tk_pending -> assert false

let poll_ticket tk =
  match tk_read tk with
  | Tk_pending -> `Pending
  | Tk_done (Ok v) -> `Done (Ok v)
  | Tk_done (Error (e, _)) -> `Done (Error e)
  | Tk_rejected -> `Rejected
  | Tk_cancelled -> `Cancelled
  | Tk_expired -> `Expired

(* Timed await: OCaml's [Condition] has no timed wait, so this is a poll
   loop with exponentially growing naps (1µs → 1ms cap) — cheap enough
   for producer-side timeouts, which are milliseconds by nature. *)
let await_until_ticket tk ~deadline =
  let rec go nap =
    match tk_read tk with
    | Tk_pending ->
        if Wool_util.Clock.now_ns () >= deadline then None
        else begin
          Unix.sleepf (float_of_int nap *. 1e-9);
          go (min (nap * 2) 1_000_000)
        end
    | st -> Some st
  in
  match go 1_000 with
  | None -> None
  | Some (Tk_done (Ok v)) -> Some v
  | Some (Tk_done (Error (e, bt))) -> Printexc.raise_with_backtrace e bt
  | Some Tk_rejected -> raise Submission_rejected
  | Some Tk_cancelled -> raise Cancel.Cancelled
  | Some Tk_expired -> raise Submission_expired
  | Some Tk_pending -> assert false

let await_for_ticket tk span_s =
  await_until_ticket tk
    ~deadline:(Wool_util.Clock.now_ns () + int_of_float (span_s *. 1e9))

(* The queued form of one submission. [ij_run] uses the same
   mark/unwind discipline as [run_body]: an injected job that raises
   must not leave its own spawns orphaned on the worker that ran it. *)
let injected_of ?(deadline = max_int) ?cancel pool (fn : worker -> 'a)
    (tk : 'a ticket) =
  (* Settlement is claimed exactly once even if the job itself runs more
     than once (the [Dup] drain fault, or any future at-least-once
     delivery path): a duplicate completion must neither decrement
     [inflight] twice nor re-resolve the ticket — [await]/[poll] observe
     the first result only. Cancellation and expiry ride the same
     machinery: whichever of {completion, cancel, expire, drop} claims
     first decides the outcome, in every mode. *)
  let claimed = Atomic.make false in
  let settle st =
    if not (Atomic.exchange claimed true) then begin
      (match st with
      | Tk_done _ -> Atomic.incr pool.ingress.ig_done
      | Tk_cancelled -> Atomic.incr pool.ingress.ig_cancelled
      | Tk_expired -> Atomic.incr pool.ingress.ig_expired
      | Tk_pending | Tk_rejected -> ());
      (* decrement BEFORE resolving: an awaiter unblocked by the ticket
         must already see the pool's in-flight count settled, or a
         quiescence check right after [await] reads a phantom in-flight
         submission *)
      Atomic.decr pool.inflight;
      ignore (tk_resolve tk st : bool)
    end
  in
  let run wk =
    let mark = wk.pool.backend.bk_mark wk in
    match fn wk with
    | v -> settle (Tk_done (Ok v))
    | exception Cancel.Cancelled ->
        (* the cooperative path: a body (or one of its spawns, via the
           ambient token) observed its cancellation — that is a settled
           cancel, not a task failure *)
        wk.pool.backend.bk_unwind wk ~mark;
        settle Tk_cancelled
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        wk.pool.backend.bk_unwind wk ~mark;
        settle (Tk_done (Error (e, bt)))
  in
  let drop () = settle Tk_rejected in
  {
    ij_run = run;
    ij_drop = drop;
    ij_cancel = (fun () -> settle Tk_cancelled);
    ij_expire = (fun () -> settle Tk_expired);
    ij_deadline = deadline;
    ij_token = cancel;
    ij_enq_ns = Wool_util.Clock.now_ns ();
  }

let lane_of pool =
  let nl = Array.length pool.lanes in
  if nl <= 1 then 0
  else Atomic.fetch_and_add pool.next_lane 1 land max_int mod nl

(* Pop-and-drop everything in [lane]. Runs after [stop] is set: every
   element left is an admitted job no worker will take, so its ticket
   must resolve rejected. Racing poppers (a worker not yet stopped,
   another draining submitter) are fine — whoever pops an element owns
   its resolution. *)
let drain_lane_reject pool lane =
  let q = pool.lanes.(lane) in
  let rec go () =
    match Inject_queue.try_pop q with
    | Some ij ->
        Atomic.incr pool.ingress.ig_shed;
        ig_record pool Event.Reject ~a:lane ~b:(-1);
        ij.ij_drop ();
        go ()
    | None -> ()
  in
  go ()

let stopping pool = pool.stopped || Atomic.get pool.stop

let reject_at_admission pool tk ~lane =
  if tk_resolve tk Tk_rejected then begin
    Atomic.incr pool.ingress.ig_rejected;
    ig_record pool Event.Reject ~a:lane ~b:(-1)
  end

(* Post-admission bookkeeping shared by every admitting path, including
   the shutdown re-check: if [stop] was set after our push, the worker
   domains may already be gone, so the submitter drains (and rejects)
   the lane itself — this is what makes submit-vs-shutdown hang-free. *)
let admitted_post pool ~lane =
  Atomic.incr pool.ingress.ig_admitted;
  ig_record pool Event.Admit ~a:lane ~b:(-1);
  if stopping pool then drain_lane_reject pool lane

(* Producer-side wait step for [Block] admission on a full lane: yield
   the timeslice every few spins so the draining workers actually run
   (essential on over-subscribed hosts). *)
let block_wait tries =
  if tries land 63 = 63 then Unix.sleepf 0. else Domain.cpu_relax ()

let submit_one ?deadline ?cancel pool ~lane ~batch fn =
  let tk = make_ticket () in
  Atomic.incr pool.ingress.ig_submitted;
  ig_fault pool Fault.Site.Submit;
  ig_record pool Event.Submit ~a:lane ~b:batch;
  if stopping pool || Array.length pool.lanes = 0 then
    reject_at_admission pool tk ~lane
  else if
    (* Adaptive early shed: while the observed sojourn latency is above
       target and a backlog exists, refuse new work at the door — the
       backlog drains back under target before fresh jobs may join it.
       The occupancy guard keeps an idle pool admitting even right after
       a latency spike (the EWMA decays only on dequeues). *)
    pool.adaptive
    && Atomic.get pool.adm_wait_ewma > pool.adm_target_ns
    && Inject_queue.size pool.lanes.(lane) > 0
  then reject_at_admission pool tk ~lane
  else begin
    let ij = injected_of ?deadline ?cancel pool fn tk in
    let q = pool.lanes.(lane) in
    (* count in-flight before the push: a worker could pop and finish
       (decrementing) before a post-push increment happened *)
    Atomic.incr pool.inflight;
    let admitted =
      if Inject_queue.try_push q ij then true
      else
        match pool.admission with
        | Reject | Adaptive -> false
        | Block ->
            let rec wait tries =
              if stopping pool then false
              else if Inject_queue.try_push q ij then true
              else begin
                block_wait tries;
                wait (tries + 1)
              end
            in
            wait 0
        | Shed_oldest ->
            let rec shed () =
              if stopping pool then false
              else begin
                (match Inject_queue.try_pop q with
                | Some victim ->
                    Atomic.incr pool.ingress.ig_shed;
                    ig_record pool Event.Reject ~a:lane ~b:(-1);
                    victim.ij_drop ()
                | None -> ());
                if Inject_queue.try_push q ij then true else shed ()
              end
            in
            shed ()
    in
    ig_fault pool Fault.Site.Admit;
    if admitted then admitted_post pool ~lane
    else begin
      Atomic.decr pool.inflight;
      reject_at_admission pool tk ~lane
    end
  end;
  tk

(* A job entering a relaxed pool may fan out into at-least-once spawns
   (and, under the [Dup] drain fault, even the job itself can repeat), so
   the submitter must declare it idempotent — the ingress counterpart of
   the [spawn]/[spawn_idempotent] split. *)
let require_idempotent pool ~idempotent what =
  if pool.relaxed && not idempotent then
    invalid_arg
      (Printf.sprintf
         "Wool.Submit.%s: mode %s has at-least-once semantics; declare the \
          job idempotent (~idempotent:true)"
         what
         (Mode.name pool.pmode))

let submit ?(idempotent = false) ?deadline ?cancel pool fn =
  require_idempotent pool ~idempotent "submit";
  submit_one ?deadline ?cancel pool ~lane:(lane_of pool) ~batch:(-1) fn

(* One lane pick for the whole batch: consecutive elements land in the
   same lane, so a draining worker takes them without re-probing. *)
let submit_batch ?(idempotent = false) ?deadline ?cancel pool fns =
  require_idempotent pool ~idempotent "submit_batch";
  let lane = lane_of pool in
  let n = List.length fns in
  List.map (fun fn -> submit_one ?deadline ?cancel pool ~lane ~batch:n fn) fns

let try_submit ?(idempotent = false) ?deadline ?cancel pool fn =
  require_idempotent pool ~idempotent "try_submit";
  let lane = lane_of pool in
  Atomic.incr pool.ingress.ig_submitted;
  ig_fault pool Fault.Site.Submit;
  ig_record pool Event.Submit ~a:lane ~b:(-1);
  if
    stopping pool
    || Array.length pool.lanes = 0
    || (pool.adaptive
       && Atomic.get pool.adm_wait_ewma > pool.adm_target_ns
       && Inject_queue.size pool.lanes.(lane) > 0)
  then begin
    Atomic.incr pool.ingress.ig_rejected;
    ig_record pool Event.Reject ~a:lane ~b:(-1);
    None
  end
  else begin
    let tk = make_ticket () in
    let ij = injected_of ?deadline ?cancel pool fn tk in
    Atomic.incr pool.inflight;
    if Inject_queue.try_push pool.lanes.(lane) ij then begin
      ig_fault pool Fault.Site.Admit;
      admitted_post pool ~lane;
      Some tk
    end
    else begin
      Atomic.decr pool.inflight;
      Atomic.incr pool.ingress.ig_rejected;
      ig_record pool Event.Reject ~a:lane ~b:(-1);
      None
    end
  end

(* Retry a rejected admission with exponential backoff and seed-derived
   jitter. Only a synchronously-rejected ticket retries (admission under
   [Reject]/[Adaptive] resolves before [submit] returns); anything the
   pool actually admitted is returned as-is, and a stopping pool cuts
   the loop short. Deterministic for a given seed — the jitter stream is
   a private [Rng], not wall-clock noise. *)
let submit_retry ?(idempotent = false) ?deadline ?cancel ?(attempts = 4)
    ?(backoff_ns = 200_000) ?(seed = 0) pool fn =
  if attempts < 1 then
    invalid_arg "Wool.Submit.submit_retry: attempts must be at least 1";
  require_idempotent pool ~idempotent "submit_retry";
  let rng = Wool_util.Rng.make (seed lxor 0x5EED5) in
  let rec go k =
    let tk =
      submit_one ?deadline ?cancel pool ~lane:(lane_of pool) ~batch:(-1) fn
    in
    match tk_read tk with
    | Tk_rejected when k + 1 < attempts && not (stopping pool) ->
        let base = backoff_ns * (1 lsl min k 20) in
        let jitter = Wool_util.Rng.int rng ((base / 2) + 1) in
        Unix.sleepf (float_of_int (base + jitter) *. 1e-9);
        go (k + 1)
    | _ -> tk
  in
  go 0

module Submit = struct
  type nonrec 'a ticket = 'a ticket

  exception Rejected = Submission_rejected
  exception Expired = Submission_expired
  exception Cancelled = Cancel.Cancelled

  let submit = submit
  let try_submit = try_submit
  let submit_batch = submit_batch
  let submit_retry = submit_retry
  let await = await_ticket
  let await_for = await_for_ticket
  let await_until = await_until_ticket
  let poll = poll_ticket

  let deadline_in span_s =
    Wool_util.Clock.now_ns () + int_of_float (span_s *. 1e9)
end

type ingress_stats = {
  submitted : int;
  admitted : int;
  rejected : int;
  shed : int;
  executed : int;
  expired : int;
  cancelled : int;
  inflight : int;
}

let ingress_stats pool =
  let ig = pool.ingress in
  {
    submitted = Atomic.get ig.ig_submitted;
    admitted = Atomic.get ig.ig_admitted;
    rejected = Atomic.get ig.ig_rejected;
    shed = Atomic.get ig.ig_shed;
    (* settlement-based, not drain-based: a job cancelled mid-run was
       drained but did not execute to completion — it counts under
       [cancelled], and only under [cancelled] *)
    executed = Atomic.get ig.ig_done;
    expired = Atomic.get ig.ig_expired;
    cancelled = Atomic.get ig.ig_cancelled;
    inflight = Atomic.get pool.inflight;
  }

module Stats = struct
  type t = {
    spawns : int;
    max_pool_depth : int;
    inlined_private : int;
    inlined_public : int;
    joins_stolen : int;
    steals : int;
    leap_steals : int;
    backoffs : int;
    failed_steals : int;
    publish_events : int;
    privatize_events : int;
    injected : int;
    self_joins : int;
    dup_takes : int;
  }

  let zero =
    {
      spawns = 0;
      max_pool_depth = 0;
      inlined_private = 0;
      inlined_public = 0;
      joins_stolen = 0;
      steals = 0;
      leap_steals = 0;
      backoffs = 0;
      failed_steals = 0;
      publish_events = 0;
      privatize_events = 0;
      injected = 0;
      self_joins = 0;
      dup_takes = 0;
    }

  let of_worker w =
    let d = Ds.stats w.dstack in
    {
      spawns = w.hot.n_spawns;
      max_pool_depth = d.Ds.max_depth;
      inlined_private = d.Ds.inlined_private;
      inlined_public = d.Ds.inlined_public + w.hot.n_inlined;
      joins_stolen = d.Ds.joins_stolen + w.hot.n_join_stolen;
      steals = w.hot.n_steals;
      leap_steals = w.hot.n_leap_steals;
      backoffs = d.Ds.backoffs;
      failed_steals = w.hot.n_failed;
      publish_events = d.Ds.publish_events;
      privatize_events = d.Ds.privatize_events;
      injected = w.hot.n_injected;
      self_joins = w.hot.n_self_joins;
      dup_takes = w.hot.n_dup_takes;
    }

  (* [max_pool_depth] is a high-water mark, not a flow; it combines with
     [max], everything else with [+]. *)
  let combine a b =
    {
      spawns = a.spawns + b.spawns;
      max_pool_depth = max a.max_pool_depth b.max_pool_depth;
      inlined_private = a.inlined_private + b.inlined_private;
      inlined_public = a.inlined_public + b.inlined_public;
      joins_stolen = a.joins_stolen + b.joins_stolen;
      steals = a.steals + b.steals;
      leap_steals = a.leap_steals + b.leap_steals;
      backoffs = a.backoffs + b.backoffs;
      failed_steals = a.failed_steals + b.failed_steals;
      publish_events = a.publish_events + b.publish_events;
      privatize_events = a.privatize_events + b.privatize_events;
      injected = a.injected + b.injected;
      self_joins = a.self_joins + b.self_joins;
      dup_takes = a.dup_takes + b.dup_takes;
    }

  let per_worker pool = Array.map of_worker pool.workers

  let aggregate pool =
    Array.fold_left (fun acc w -> combine acc (of_worker w)) zero pool.workers

  let policy_name = policy_name

  let reset pool =
    Array.iter
      (fun w ->
        Ds.reset_stats w.dstack;
        w.hot.n_spawns <- 0;
        w.hot.n_steals <- 0;
        w.hot.n_leap_steals <- 0;
        w.hot.n_failed <- 0;
        w.hot.n_inlined <- 0;
        w.hot.n_injected <- 0;
        w.hot.n_join_stolen <- 0;
        w.hot.n_self_joins <- 0;
        w.hot.n_dup_takes <- 0)
      pool.workers;
    (* the ingress balance ([Invariants.check]) is relative to the same
       reset point as the worker counters *)
    let ig = pool.ingress in
    Atomic.set ig.ig_submitted 0;
    Atomic.set ig.ig_admitted 0;
    Atomic.set ig.ig_rejected 0;
    Atomic.set ig.ig_shed 0;
    Atomic.set ig.ig_done 0;
    Atomic.set ig.ig_expired 0;
    Atomic.set ig.ig_cancelled 0;
    Atomic.set pool.adm_wait_ewma 0

  let fields s =
    [
      ("spawns", s.spawns);
      ("max_pool_depth", s.max_pool_depth);
      ("inlined_private", s.inlined_private);
      ("inlined_public", s.inlined_public);
      ("joins_stolen", s.joins_stolen);
      ("steals", s.steals);
      ("leap_steals", s.leap_steals);
      ("backoffs", s.backoffs);
      ("failed_steals", s.failed_steals);
      ("publish_events", s.publish_events);
      ("privatize_events", s.privatize_events);
      ("injected", s.injected);
      ("self_joins", s.self_joins);
      ("dup_takes", s.dup_takes);
    ]

  let pp fmt s =
    Format.fprintf fmt "@[<hov 1>{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf fmt ";@ ";
        Format.fprintf fmt "%s=%d" k v)
      (fields s);
    Format.fprintf fmt "}@]"

  let to_json s =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf {|"%s":%d|} k v) (fields s))
    ^ "}"
end

type stats = Stats.t = {
  spawns : int;
  max_pool_depth : int;
  inlined_private : int;
  inlined_public : int;
  joins_stolen : int;
  steals : int;
  leap_steals : int;
  backoffs : int;
  failed_steals : int;
  publish_events : int;
  privatize_events : int;
  injected : int;
  self_joins : int;
  dup_takes : int;
}

(* ---- fault-injection stats ---- *)

let faults_enabled pool = Option.is_some pool.faults
let fault_plan pool = pool.faults

let fault_stats pool =
  Fault.Stats.combine
    (Fault.Injector.stats pool.ingress.ig_inj)
    (Array.fold_left
       (fun acc w -> Fault.Stats.combine acc (Fault.Injector.stats w.inj))
       (Fault.Stats.zero ()) pool.workers)

(* ---- trace collection (quiescent snapshots; see pool.mli) ---- *)

let trace_enabled pool = pool.trace_on

let trace_per_worker pool =
  Array.map (fun w -> Ring.snapshot w.ring ~worker:w.id) pool.workers

(* Producer-side events (Submit/Admit/Reject), stamped with the
   pseudo-worker id [num_workers] so they never collide with a real
   worker's stream. *)
let trace_ingress pool =
  let ig = pool.ingress in
  Mutex.lock ig.ig_lock;
  let evs = Ring.snapshot ig.ig_ring ~worker:(Array.length pool.workers) in
  Mutex.unlock ig.ig_lock;
  evs

let trace_dropped pool =
  Ring.dropped pool.ingress.ig_ring
  + Array.fold_left (fun acc w -> acc + Ring.dropped w.ring) 0 pool.workers

let trace_events pool =
  let parts = trace_per_worker pool in
  let all = Array.concat (trace_ingress pool :: Array.to_list parts) in
  (* stable: per-worker order (monotone timestamps) survives equal keys *)
  Array.stable_sort
    (fun a b -> compare a.Event.ts b.Event.ts)
    all;
  all

let trace_clear pool =
  Array.iter (fun w -> Ring.clear w.ring) pool.workers;
  let ig = pool.ingress in
  Mutex.lock ig.ig_lock;
  Ring.clear ig.ig_ring;
  Mutex.unlock ig.ig_lock

(* ---- protocol-invariant checking (quiescent pool only) ---- *)

module Invariants = struct
  let check pool =
    quiesce_relaxed pool;
    let errs = ref [] in
    let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
    Array.iter
      (fun w ->
        List.iter
          (fun v -> add "worker %d: dstack %s" w.id v)
          (Ds.check_quiescent w.dstack);
        let ls = Locked_deque.size w.ldeque in
        if ls <> 0 then add "worker %d: locked deque holds %d tasks" w.id ls;
        let cs = Chase_lev.size w.cdeque in
        if cs <> 0 then
          add "worker %d: chase-lev deque holds %d tasks" w.id cs;
        (* Lowsync's [head] is CAS-monotone, so its size settles exact at
           quiescence. Ws_mult's plain [head] writes can transiently run
           it backwards while idle thieves keep probing, so its size is
           not checkable here — every task's completion is enforced by
           the join/self-run discipline instead. *)
        let lss = Lowsync.size w.lsdeque in
        if lss <> 0 then
          add "worker %d: lowsync pool holds %d tasks" w.id lss;
        let ch = List.length w.hot.children in
        if ch <> 0 then
          add "worker %d: %d outstanding queued children" w.id ch)
      pool.workers;
    Array.iteri
      (fun i q ->
        let n = Inject_queue.size q in
        if n <> 0 then add "lane %d holds %d injected jobs" i n)
      pool.lanes;
    let ig = ingress_stats pool in
    if ig.inflight <> 0 then
      add "ingress: %d submissions still in flight" ig.inflight;
    if ig.submitted <> ig.admitted + ig.rejected then
      add "ingress imbalance: submitted=%d but admitted=%d + rejected=%d"
        ig.submitted ig.admitted ig.rejected;
    if ig.admitted <> ig.executed + ig.shed + ig.expired + ig.cancelled then
      add
        "ingress imbalance: admitted=%d but executed=%d + shed=%d + \
         expired=%d + cancelled=%d"
        ig.admitted ig.executed ig.shed ig.expired ig.cancelled;
    let s = Stats.aggregate pool in
    (match pool.pmode with
    | Locked | Clev ->
        (* every queued spawn is either inlined by its owner or stolen *)
        let joined = s.Stats.inlined_private + s.Stats.inlined_public in
        if s.Stats.spawns <> joined + s.Stats.steals then
          add "counter imbalance: spawns=%d but inlined=%d + steals=%d"
            s.Stats.spawns joined s.Stats.steals;
        (* ... and every stolen spawn is waited out by its owner *)
        if s.Stats.joins_stolen <> s.Stats.steals then
          add "counter imbalance: joins_stolen=%d but steals=%d"
            s.Stats.joins_stolen s.Stats.steals
    | Swap_generic | Task_specific | Private ->
        let joined =
          s.Stats.inlined_private + s.Stats.inlined_public
          + s.Stats.joins_stolen
        in
        if s.Stats.spawns <> joined then
          add
            "counter imbalance: spawns=%d but inlined+joins_stolen=%d"
            s.Stats.spawns joined;
        if s.Stats.joins_stolen <> s.Stats.steals then
          add "counter imbalance: joins_stolen=%d but steals=%d"
            s.Stats.joins_stolen s.Stats.steals
    | Ws_mult | Lowsync ->
        (* At-least-once: executions can exceed spawns (duplicates), but
           joins are still owner-side and exactly once per future... *)
        let joined = s.Stats.inlined_private + s.Stats.inlined_public in
        if s.Stats.spawns <> joined + s.Stats.joins_stolen then
          add "counter imbalance: spawns=%d but inlined=%d + joins_stolen=%d"
            s.Stats.spawns joined s.Stats.joins_stolen;
        (* ... and every spawn was executed by someone: popped and run by
           its owner, run by a thief, or self-run at join. Inequality,
           not equality — steals of duplicates overcount. *)
        if joined + s.Stats.steals + s.Stats.self_joins < s.Stats.spawns then
          add
            "counter imbalance: spawns=%d but inlined=%d + steals=%d + \
             self_joins=%d cannot cover them"
            s.Stats.spawns joined s.Stats.steals s.Stats.self_joins);
    List.rev !errs

  let check_exn pool =
    match check pool with
    | [] -> ()
    | errs ->
        failwith
          ("Wool.Invariants.check_exn: " ^ String.concat "; " errs)
end

(* ---- cache-layout regression check (test path) ---- *)

let layout_check pool =
  let errs = ref [] in
  Array.iter
    (fun w ->
      let tag v = Printf.sprintf "worker %d: %s" w.id v in
      if not (Layout.is_padded w.hot) then
        errs :=
          tag
            (Printf.sprintf "hot block occupies %d words (not line-padded)"
               (Layout.size_words w.hot))
          :: !errs;
      List.iter
        (fun v -> errs := tag ("dstack " ^ v) :: !errs)
        (Ds.layout_check w.dstack))
    pool.workers;
  List.rev !errs

(* ---- stall watchdog ---- *)

let stall_report pool =
  let buf = Buffer.create 1024 in
  let esc = Wool_trace.Json.escape in
  Buffer.add_string buf {|{"type":"wool_stall_report"|};
  Printf.bprintf buf {|,"mode":"%s"|} (Config.mode_name pool.pmode);
  Printf.bprintf buf {|,"policy":"%s"|} (esc (Wool_policy.name pool.policy));
  Printf.bprintf buf {|,"active":%b|} (Atomic.get pool.active);
  (let ig = ingress_stats pool in
   Printf.bprintf buf
     {|,"ingress":{"submitted":%d,"admitted":%d,"rejected":%d,"shed":%d,"executed":%d,"expired":%d,"cancelled":%d,"inflight":%d}|}
     ig.submitted ig.admitted ig.rejected ig.shed ig.executed ig.expired
     ig.cancelled ig.inflight);
  (match pool.faults with
  | Some p -> Printf.bprintf buf {|,"fault_plan":"%s"|} (esc p.Fault.Plan.name)
  | None -> ());
  Buffer.add_string buf {|,"workers":[|};
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf {|{"id":%d,"progress":%d|} w.id
        (w.hot.progress + w.hot.n_spawns);
      Printf.bprintf buf {|,"dstack":{"depth":%d,"bot":%d,"live":[|}
        (Ds.depth w.dstack) (Ds.bot_index w.dstack);
      List.iteri
        (fun j (idx, st) ->
          if j > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf {|{"index":%d,"state":"%s"}|} idx (esc st))
        (Ds.dump_live w.dstack);
      Buffer.add_string buf "]}";
      Printf.bprintf buf {|,"ldeque_size":%d|} (Locked_deque.size w.ldeque);
      Printf.bprintf buf {|,"cdeque_size":%d|} (Chase_lev.size w.cdeque);
      Printf.bprintf buf {|,"wmdeque_size":%d|} (Ws_mult.size w.wmdeque);
      Printf.bprintf buf {|,"lsdeque_size":%d|} (Lowsync.size w.lsdeque);
      Printf.bprintf buf {|,"children":%d|} (List.length w.hot.children);
      Printf.bprintf buf {|,"stats":%s|} (Stats.to_json (Stats.of_worker w));
      Buffer.add_string buf {|,"trace":[|};
      let evs = Ring.snapshot w.ring ~worker:w.id in
      let n = Array.length evs in
      let start = max 0 (n - 32) in
      for j = start to n - 1 do
        if j > start then Buffer.add_char buf ',';
        Buffer.add_string buf (Event.to_json evs.(j))
      done;
      Buffer.add_string buf "]}")
    pool.workers;
  Printf.bprintf buf {|],"trace_dropped":%d}|} (trace_dropped pool);
  Buffer.contents buf

let set_on_stall pool f = pool.on_stall <- f
let stalls_fired pool = Atomic.get pool.stall_reports

(* Sampling loop, run on its own domain. Progress counters are plain
   ints written by their workers; the watchdog reads them racily — a
   stale read only delays detection by one interval. A report fires when
   a worker's counter has been unchanged for exactly [watchdog_stalls]
   consecutive samples while a [run] is active (an episode latch: one
   report per stall episode, not one per sample). *)
let watchdog_loop pool =
  let n = Array.length pool.workers in
  let last = Array.make n (-1) in
  let stale = Array.make n 0 in
  let interval = float_of_int pool.watchdog_interval_ns *. 1e-9 in
  while not (Atomic.get pool.stop) do
    Unix.sleepf interval;
    (* injected work keeps the pool "active" even with no [run] in
       progress — a server pool is driven entirely through the lanes *)
    if Atomic.get pool.active || Atomic.get pool.inflight > 0 then begin
      let fired = ref false in
      Array.iteri
        (fun i w ->
          let p = w.hot.progress + w.hot.n_spawns in
          if p = last.(i) then begin
            stale.(i) <- stale.(i) + 1;
            if stale.(i) = pool.watchdog_stalls then fired := true
          end
          else begin
            last.(i) <- p;
            stale.(i) <- 0
          end)
        pool.workers;
      if !fired then begin
        Atomic.incr pool.stall_reports;
        let report = stall_report pool in
        try pool.on_stall report with _ -> ()
      end
    end
    else begin
      Array.fill stale 0 n 0;
      Array.fill last 0 n (-1)
    end
  done

(* ---- pool lifecycle ---- *)

let make_worker ~id ~pool ~publicity ~capacity ~trace ~trace_capacity ~faults
    rng =
  let fl_on, plan =
    match faults with Some p -> (true, p) | None -> (false, Fault.Plan.none)
  in
  let inj = Fault.Injector.make plan ~worker:id in
  let w =
    {
      id;
      pool;
      dstack = Ds.create ~capacity ~publicity ~dummy:dummy_task ();
      ldeque = Locked_deque.create ~capacity ~dummy:dummy_task ();
      cdeque = Chase_lev.create ~dummy:dummy_task ();
      wmdeque = Ws_mult.create ~dummy:dummy_pending ();
      lsdeque = Lowsync.create ~dummy:dummy_pending ();
      rx_busy = Atomic.make false;
      rng;
      sel = Select.make pool.policy.Wool_policy.selector ~self:id ();
      bo = Backoff.make pool.policy.Wool_policy.backoff;
      tr_on = trace;
      ring = Ring.create ~capacity:(if trace then trace_capacity else 2);
      fl_on;
      inj;
      inj_interfere = direct_interfere inj;
      hot =
        Layout.copy_as_padded
          {
            progress = 0;
            children = [];
            n_spawns = 0;
            n_steals = 0;
            n_leap_steals = 0;
            n_failed = 0;
            n_inlined = 0;
            n_injected = 0;
            n_join_stolen = 0;
            n_self_joins = 0;
            n_dup_takes = 0;
            ambient_cancel = None;
          };
    }
  in
  if trace || fl_on then
    Ds.set_event_hooks w.dstack
      ~on_publish:(fun () ->
        if w.fl_on then fault_delay w Fault.Site.Publish;
        if w.tr_on then record w Event.Publish ~a:(-1) ~b:(-1))
      ~on_privatize:(fun () ->
        if w.tr_on then record w Event.Privatize ~a:(-1) ~b:(-1));
  w

let create_of_config (c : Config.t) =
  let c = Config.validate c in
  let nworkers =
    match c.Config.workers with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  if nworkers <= 0 then invalid_arg "Pool.create: workers must be positive";
  let publicity =
    (* The ladder modes below [Private] have no private tasks. *)
    match c.Config.mode with
    | Swap_generic | Task_specific -> All_public
    | Locked | Clev | Private | Ws_mult | Lowsync -> c.Config.publicity
  in
  let master = Wool_util.Rng.make c.Config.seed in
  let plan =
    match c.Config.faults with Some p -> p | None -> Fault.Plan.none
  in
  let pool =
    {
      pmode = c.Config.mode;
      relaxed = Mode.is_relaxed c.Config.mode;
      backend = backend_of_mode c.Config.mode;
      lock_mode = c.Config.lock_mode;
      idle_nap_ns = c.Config.idle_nap_ns;
      policy = Config.policy c;
      trace_on = c.Config.trace;
      faults = c.Config.faults;
      workers = [||];
      stop = Atomic.make false;
      domains = [];
      stopped = false;
      active = Atomic.make false;
      watchdog_interval_ns = c.Config.watchdog_interval_ns;
      watchdog_stalls = c.Config.watchdog_stalls;
      on_stall =
        (fun report ->
          prerr_endline ("wool: stall watchdog fired: " ^ report));
      stall_reports = Atomic.make 0;
      wd = None;
      server = c.Config.server;
      admission = c.Config.admission;
      adaptive = c.Config.admission = Adaptive;
      adm_target_ns = c.Config.admission_target_ns;
      adm_wait_ewma = Atomic.make 0;
      lanes =
        (if c.Config.injection_capacity = 0 then [||]
         else
           Array.init c.Config.injection_lanes (fun _ ->
               Inject_queue.create ~capacity:c.Config.injection_capacity
                 ~dummy:dummy_injected ()));
      next_lane = Atomic.make 0;
      inflight = Atomic.make 0;
      ingress =
        {
          ig_submitted = Atomic.make 0;
          ig_admitted = Atomic.make 0;
          ig_rejected = Atomic.make 0;
          ig_shed = Atomic.make 0;
          ig_done = Atomic.make 0;
          ig_expired = Atomic.make 0;
          ig_cancelled = Atomic.make 0;
          ig_lock = Mutex.create ();
          ig_ring =
            Ring.create
              ~capacity:
                (if c.Config.trace then c.Config.trace_capacity else 2);
          ig_fl_on = Option.is_some c.Config.faults;
          (* the ingress is a pseudo-worker one past the last real id *)
          ig_inj = Fault.Injector.make plan ~worker:nworkers;
        };
    }
  in
  let workers =
    Array.init nworkers (fun id ->
        make_worker ~id ~pool ~publicity ~capacity:c.Config.capacity
          ~trace:c.Config.trace ~trace_capacity:c.Config.trace_capacity
          ~faults:c.Config.faults
          (Wool_util.Rng.split master))
  in
  pool.workers <- workers;
  (* In server mode every worker — including 0 — is a spawned domain and
     the creating domain only submits; otherwise the creator acts as
     worker 0 inside [run], as before. *)
  let first_spawned = if c.Config.server then 0 else 1 in
  pool.domains <-
    List.init (nworkers - first_spawned) (fun i ->
        let w = workers.(i + first_spawned) in
        Domain.spawn (fun () -> worker_loop w));
  if c.Config.watchdog_stalls > 0 then
    pool.wd <- Some (Domain.spawn (fun () -> watchdog_loop pool));
  pool

let create ?(config = Config.default) () = create_of_config config

let shutdown pool =
  if not pool.stopped then begin
    pool.stopped <- true;
    Atomic.set pool.stop true;
    List.iter Domain.join pool.domains;
    pool.domains <- [];
    Option.iter Domain.join pool.wd;
    pool.wd <- None;
    (* With the workers gone, a job still queued in a lane will never
       run: resolve its ticket rejected so no awaiter hangs. A submitter
       racing this drain re-checks [stop] after its push and drains its
       own lane too ([admitted_post]), so no interleaving strands a
       ticket. *)
    Array.iteri (fun lane _ -> drain_lane_reject pool lane) pool.lanes
  end

(* [run] is submit-and-help: the job goes through the same lanes as any
   external submission, and the calling domain — worker 0 on a
   non-server pool — drains and steals until the ticket resolves (the
   common case is that its first drain runs the job right here,
   synchronously). On a server pool the caller is not a worker, so it
   blocks on the ticket like any other producer. *)
let run pool f =
  if pool.stopped then invalid_arg "Wool.run: pool is shut down";
  (* the root job travels through an exactly-once lane and is popped at
     most once (absent an explicit [Dup] fault plan), so [run] needs no
     idempotency declaration even on a relaxed pool *)
  if pool.server then begin
    let v = await_ticket (submit_one pool ~lane:(lane_of pool) ~batch:(-1) f) in
    quiesce_relaxed pool;
    v
  end
  else if Array.length pool.lanes = 0 then begin
    (* ingress closed (injection_capacity = 0): direct execution on
       worker 0 — the pre-ingress behaviour *)
    let w0 = pool.workers.(0) in
    Atomic.set pool.active true;
    let mark = pool.backend.bk_mark w0 in
    match f w0 with
    | v ->
        quiesce_relaxed pool;
        Atomic.set pool.active false;
        v
    | exception e ->
        (* Same discipline as a task body: join-or-drain everything the
           root computation left outstanding, so the pool is quiescent —
           and reusable — when the exception reaches the caller. *)
        let bt = Printexc.get_raw_backtrace () in
        pool.backend.bk_unwind w0 ~mark;
        quiesce_relaxed pool;
        Atomic.set pool.active false;
        Printexc.raise_with_backtrace e bt
  end
  else begin
    let w0 = pool.workers.(0) in
    let tk = make_ticket () in
    let ij = injected_of pool f tk in
    let lane = lane_of pool in
    Atomic.set pool.active true;
    Atomic.incr pool.ingress.ig_submitted;
    ig_record pool Event.Submit ~a:lane ~b:(-1);
    Atomic.incr pool.inflight;
    (* privileged admission: the pool owner helps drain until a slot
       frees, so [run] is never rejected by backpressure *)
    while not (Inject_queue.try_push pool.lanes.(lane) ij) do
      ignore (steal_idle w0 : bool)
    done;
    Atomic.incr pool.ingress.ig_admitted;
    ig_record pool Event.Admit ~a:lane ~b:(-1);
    let rec help () =
      match tk_read tk with
      | Tk_pending ->
          ignore (steal_idle w0 : bool);
          help ()
      | st -> st
    in
    let st = help () in
    quiesce_relaxed pool;
    Atomic.set pool.active false;
    match st with
    | Tk_done (Ok v) -> v
    | Tk_done (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | Tk_rejected -> raise Submission_rejected
    (* the root job carries no deadline and no token *)
    | Tk_cancelled | Tk_expired | Tk_pending -> assert false
  end

let with_pool ?config f =
  let pool = create ?config () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
