module Ds = Wool_deque.Direct_stack
module Locked_deque = Wool_deque.Locked_deque
module Chase_lev = Wool_deque.Chase_lev
module Ring = Wool_trace.Ring
module Event = Wool_trace.Event
module Select = Wool_policy.Select
module Backoff = Wool_policy.Backoff
module Fault = Wool_fault
module Layout = Wool_util.Layout

exception Pool_overflow = Ds.Pool_overflow

type mode = Locked | Swap_generic | Task_specific | Private | Clev

type publicity = Wool_deque.Direct_stack.publicity =
  | All_private
  | All_public
  | Adaptive of int

module Config = struct
  type t = {
    workers : int option;
    mode : mode;
    publicity : publicity;
    capacity : int;
    lock_mode : [ `Base | `Peek | `Trylock ];
    idle_nap_ns : int;
    seed : int;
    trace : bool;
    trace_capacity : int;
    steal_policy : Wool_policy.Selector.t;
    backoff : Wool_policy.Backoff.t;
    faults : Wool_fault.Plan.t option;
    watchdog_interval_ns : int;
    watchdog_stalls : int;
  }

  let default =
    {
      workers = None;
      mode = Private;
      publicity = Adaptive 4;
      capacity = 65536;
      lock_mode = `Base;
      idle_nap_ns = 50_000;
      seed = 0xC0FFEE;
      trace = false;
      trace_capacity = 1 lsl 16;
      steal_policy = Wool_policy.default.Wool_policy.selector;
      backoff = Wool_policy.default.Wool_policy.backoff;
      faults = None;
      watchdog_interval_ns = 5_000_000;
      watchdog_stalls = 0;
    }

  (* The single option-merge routine behind [make] and [override]: two
     hand-rolled copies drifted on every new field ([trace_capacity] was
     silently not overridable for a while). *)
  let merge base ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
      ?seed ?trace ?trace_capacity ?policy ?steal_policy ?backoff ?faults
      ?watchdog_interval_ns ?watchdog_stalls () =
    let ov o d = Option.value o ~default:d in
    let base_selector, base_backoff =
      match policy with
      | Some p -> (p.Wool_policy.selector, p.Wool_policy.backoff)
      | None -> (base.steal_policy, base.backoff)
    in
    {
      workers = (match workers with Some _ -> workers | None -> base.workers);
      mode = ov mode base.mode;
      publicity = ov publicity base.publicity;
      capacity = ov capacity base.capacity;
      lock_mode = ov lock_mode base.lock_mode;
      idle_nap_ns = ov idle_nap_ns base.idle_nap_ns;
      seed = ov seed base.seed;
      trace = ov trace base.trace;
      trace_capacity = ov trace_capacity base.trace_capacity;
      steal_policy = ov steal_policy base_selector;
      backoff = ov backoff base_backoff;
      faults = (match faults with Some _ -> faults | None -> base.faults);
      watchdog_interval_ns = ov watchdog_interval_ns base.watchdog_interval_ns;
      watchdog_stalls = ov watchdog_stalls base.watchdog_stalls;
    }

  let make ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns ?seed
      ?trace ?trace_capacity ?policy ?steal_policy ?backoff ?faults
      ?watchdog_interval_ns ?watchdog_stalls () =
    merge default ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
      ?seed ?trace ?trace_capacity ?policy ?steal_policy ?backoff ?faults
      ?watchdog_interval_ns ?watchdog_stalls ()

  (* The old optional arguments of [create] layered on top of a base
     config; [None]s leave the base untouched. *)
  let override c ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
      ?seed ?trace ?trace_capacity ?policy ?steal_policy ?backoff ?faults
      ?watchdog_interval_ns ?watchdog_stalls () =
    merge c ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns ?seed
      ?trace ?trace_capacity ?policy ?steal_policy ?backoff ?faults
      ?watchdog_interval_ns ?watchdog_stalls ()

  let policy c =
    { Wool_policy.selector = c.steal_policy; backoff = c.backoff }

  let with_policy p c =
    {
      c with
      steal_policy = p.Wool_policy.selector;
      backoff = p.Wool_policy.backoff;
    }

  let mode_name = function
    | Locked -> "locked"
    | Swap_generic -> "swap_generic"
    | Task_specific -> "task_specific"
    | Private -> "private"
    | Clev -> "clev"

  let publicity_name = function
    | All_private -> "all_private"
    | All_public -> "all_public"
    | Adaptive w -> Printf.sprintf "adaptive(%d)" w

  let lock_mode_name = function
    | `Base -> "base"
    | `Peek -> "peek"
    | `Trylock -> "trylock"

  let pp fmt c =
    Format.fprintf fmt
      "{workers=%s; mode=%s; publicity=%s; capacity=%d; lock_mode=%s;@ \
       idle_nap_ns=%d; seed=%#x; trace=%b; trace_capacity=%d;@ \
       steal_policy=%s; backoff=%s; faults=%s; watchdog=%s}"
      (match c.workers with Some n -> string_of_int n | None -> "auto")
      (mode_name c.mode)
      (publicity_name c.publicity)
      c.capacity
      (lock_mode_name c.lock_mode)
      c.idle_nap_ns c.seed c.trace c.trace_capacity
      (Wool_policy.Selector.name c.steal_policy)
      (Wool_policy.Backoff.name c.backoff)
      (match c.faults with
      | Some p -> p.Wool_fault.Plan.name
      | None -> "off")
      (if c.watchdog_stalls > 0 then
         Printf.sprintf "%d@%dns" c.watchdog_stalls c.watchdog_interval_ns
       else "off")
end

type worker = {
  id : int;
  pool : pool;
  dstack : (worker -> unit) Ds.t;
  ldeque : (worker -> unit) Locked_deque.t;
  cdeque : (worker -> unit) Chase_lev.t;
  rng : Wool_util.Rng.t;
  sel : Select.state;
  bo : Backoff.state;
  (* tracing: [tr_on] is immutable, so the disabled case is one predictable
     branch on the hot path; each worker writes only its own ring *)
  tr_on : bool;
  ring : Ring.t;
  (* fault injection follows the same immutable-bool discipline *)
  fl_on : bool;
  inj : Fault.Injector.t;
  inj_interfere : Ds.steal_phase -> bool;
      (* [Ds.steal] interference hook over [inj], built once — the steal
         attempt path must not allocate a closure per call *)
  hot : worker_hot;
      (* this worker's frequently written fields, in their own
         cache-line-padded block: the rest of this record is immutable
         after [make_worker], so its lines stay read-shared among thieves
         (who chase [pool]/[dstack] pointers through it on every steal
         attempt) instead of bouncing on every counter bump *)
}

(* Worker-written working set. Only the owner writes (the watchdog and
   the stats reader take racy int loads); padding keeps those writes from
   invalidating the read-shared [worker] record or a neighbouring
   worker's counters. *)
and worker_hot = {
  (* scheduler-transition counter bumped on the wait paths (idle steal
     loop, leapfrog) where [n_spawns] does not advance; the watchdog
     samples [progress + n_spawns] so the spawn/join fast path carries no
     extra store. *)
  mutable progress : int;
  (* Locked/Clev only: outstanding spawns of the task currently executing
     on this worker (and its callers), newest first. The direct-stack
     modes get this for free from descriptor [depth]. *)
  mutable children : pending_child list;
  mutable n_spawns : int;
  mutable n_steals : int;
  mutable n_leap_steals : int;
  mutable n_failed : int;
  mutable n_inlined : int; (* Locked/Clev joins that found the task in place *)
  mutable n_join_stolen : int;
  (* Locked/Clev joins (or unwind waits) of a task a thief took; the
     direct modes count these in the dstack. Keeps [joins_stolen]
     meaningful — equal to [steals] at quiescence — in every mode. *)
}

and pending_child = {
  pc_wrapper : worker -> unit;
  pc_completed : bool Atomic.t;
}

and pool = {
  pmode : mode;
  backend : backend;
  lock_mode : [ `Base | `Peek | `Trylock ];
  idle_nap_ns : int;
  policy : Wool_policy.t;
  trace_on : bool;
  faults : Fault.Plan.t option;
  mutable workers : worker array;
  stop : bool Atomic.t;
  mutable domains : unit Domain.t list;
  (* lifecycle + watchdog *)
  mutable stopped : bool;
  active : bool Atomic.t; (* a [run] is in progress *)
  watchdog_interval_ns : int;
  watchdog_stalls : int;
  mutable on_stall : string -> unit;
  stall_reports : int Atomic.t;
  mutable wd : unit Domain.t option;
}

(* The mode-specific task-pool operations, bound once per pool. Replaces
   the [match pmode] dispatch that was repeated in the steal, spawn, and
   join hot paths: each call site is a single indirect call through an
   immutable record, so the branch predictor sees one stable target per
   pool instead of a five-way match. *)
and backend = {
  bk_steal : worker -> victim:worker -> bool;
      (* one attempt against [victim]'s pool; runs the task if taken *)
  bk_spawn : 'a. worker -> (worker -> 'a) -> 'a future;
  bk_join : 'a. worker -> 'a future -> 'a;
  bk_mark : worker -> int;
      (* opaque checkpoint of this worker's outstanding-spawn count *)
  bk_unwind : worker -> mark:int -> unit;
      (* join-or-drain every spawn made since [mark]; called on the
         exception path before propagating out of a task body *)
}

and 'a future = {
  fn : worker -> 'a;
  mutable value : ('a, exn * Printexc.raw_backtrace) result option;
  completed : bool Atomic.t;
  index : int; (* descriptor index in the owner's direct stack; -1 otherwise *)
  owner_id : int;
  mutable wrapper : worker -> unit;
}

type t = pool
type ctx = worker

let dummy_task (_ : worker) = ()

let[@inline] record w tag ~a ~b =
  Ring.record w.ring ~ts:(Wool_util.Clock.now_ns ()) ~tag ~a ~b

(* ---- fault-injection hooks ----

   Every hook is guarded by the immutable [fl_on] at the call site, so a
   pool built without [Config.faults] pays one predictable branch per
   site — the same cost model as the trace ring. *)

(* Sites where only delays are meaningful ([Fail_steal]/[Raise_exn]
   cannot fire here by [Kind.valid_at]). *)
let fault_delay w site =
  match Fault.Injector.fire w.inj site with
  | Some (Fault.Kind.Delay n | Fault.Kind.Stall n) -> Fault.Injector.spin n
  | Some _ | None -> ()

(* Thief-side pre-CAS site for the queue modes (Locked/Clev), which have
   no protocol window of their own: a forced failure abandons the
   attempt before touching the victim's queue. *)
(* The direct stack exposes its protocol windows ([Pre_cas]/[Post_cas]/
   [Trip]) through [Ds.steal]'s interference hook, so a delay injected
   at [Pre_steal_cas] genuinely recreates the §III-A delayed-thief ABA
   rather than merely pausing before the call. Closed over the injector
   alone so one closure per worker serves every attempt. *)
let direct_interfere inj phase =
  let site =
    match phase with
    | Ds.Pre_cas -> Fault.Site.Pre_steal_cas
    | Ds.Post_cas -> Fault.Site.Post_steal_cas
    | Ds.Trip -> Fault.Site.Trip_wire
  in
  match Fault.Injector.fire inj site with
  | Some Fault.Kind.Fail_steal -> true
  | Some (Fault.Kind.Delay n | Fault.Kind.Stall n) ->
      Fault.Injector.spin n;
      false
  | Some Fault.Kind.Raise_exn | None -> false

let fault_steal_pre w =
  match Fault.Injector.fire w.inj Fault.Site.Pre_steal_cas with
  | Some Fault.Kind.Fail_steal -> true
  | Some (Fault.Kind.Delay n | Fault.Kind.Stall n) ->
      Fault.Injector.spin n;
      false
  | Some Fault.Kind.Raise_exn | None -> false

let nap pool ~factor =
  if pool.idle_nap_ns > 0 then
    Unix.sleepf (float_of_int (pool.idle_nap_ns * factor) *. 1e-9)

let idle_backoff w =
  Domain.cpu_relax ();
  match Backoff.on_failure w.bo with
  | Backoff.Relax -> ()
  | Backoff.Yield ->
      (* relinquish the timeslice without the full nap *)
      Unix.sleepf 0.
  | Backoff.Nap factor ->
      if w.fl_on then fault_delay w Fault.Site.Nap_entry;
      if w.tr_on then record w Event.Nap_enter ~a:factor ~b:(-1);
      nap w.pool ~factor;
      if w.tr_on then record w Event.Nap_exit ~a:(-1) ~b:(-1)

(* ---- mode-specific steal attempts (the [bk_steal] implementations) ----

   Each implementation counts its own [n_steals] *before* running the
   task: the increment must be ordered before the completion signal the
   owner waits on (descriptor DONE / [completed] flag), or a quiescent
   invariant check could observe the join without the steal. *)

let steal_locked w ~(victim : worker) =
  if w.fl_on && fault_steal_pre w then false
  else
    match Locked_deque.steal ~mode:w.pool.lock_mode victim.ldeque with
    | Some task ->
        w.hot.n_steals <- w.hot.n_steals + 1;
        if w.tr_on then record w Event.Steal_ok ~a:(-1) ~b:victim.id;
        task w;
        true
    | None -> false

let steal_clev w ~(victim : worker) =
  if w.fl_on && fault_steal_pre w then false
  else
    match Chase_lev.steal victim.cdeque with
    | `Stolen task ->
        w.hot.n_steals <- w.hot.n_steals + 1;
        if w.tr_on then record w Event.Steal_ok ~a:(-1) ~b:victim.id;
        task w;
        true
    | `Empty | `Retry -> false

let steal_direct w ~(victim : worker) =
  let result =
    if w.fl_on then
      Ds.steal victim.dstack ~thief:w.id ~interfere:w.inj_interfere
    else Ds.steal victim.dstack ~thief:w.id
  in
  match result with
  | Ds.Stolen_task (task, index) ->
      w.hot.n_steals <- w.hot.n_steals + 1;
      if w.tr_on then record w Event.Steal_ok ~a:index ~b:victim.id;
      task w;
      Ds.complete_steal victim.dstack ~index;
      true
  | Ds.Backoff ->
      if w.tr_on then record w Event.Steal_backoff ~a:(-1) ~b:victim.id;
      false
  | Ds.Fail -> false

(* Attempt to steal one task from [victim] and run it. *)
let steal_once w ~(victim : worker) =
  if w.tr_on then record w Event.Steal_attempt ~a:(-1) ~b:victim.id;
  let ran = w.pool.backend.bk_steal w ~victim in
  if ran then begin
    Backoff.on_success w.bo;
    Select.on_success w.sel ~victim:victim.id
  end
  else w.hot.n_failed <- w.hot.n_failed + 1;
  ran

let select_victim w =
  match Select.next w.sel ~rng:w.rng ~n:(Array.length w.pool.workers) with
  | None -> None
  | Some v -> Some w.pool.workers.(v)

(* One unpinned steal attempt against a policy-chosen victim, backing off
   on failure. This is the idle loop body and the Locked/Clev blocked-join
   strategy. *)
let steal_idle w =
  w.hot.progress <- w.hot.progress + 1;
  match select_victim w with
  | None ->
      idle_backoff w;
      false
  | Some victim ->
      let ran = steal_once w ~victim in
      if not ran then begin
        Select.on_failure w.sel;
        idle_backoff w
      end;
      ran

let worker_loop w =
  while not (Atomic.get w.pool.stop) do
    ignore (steal_idle w : bool)
  done

let value_exn fut =
  match fut.value with
  | Some (Ok v) -> v
  | Some (Error (e, bt)) ->
      (* re-raise at the joiner with the backtrace captured where the
         task body originally raised — possibly on another worker *)
      Printexc.raise_with_backtrace e bt
  | None ->
      (* Unreachable: completion is observed before the value is read. *)
      assert false

(* Leapfrogging (§I, Wagner & Calder): while blocked on a task stolen by
   [victim_id], steal only from that worker. Any task acquired this way is
   work we would have executed ourselves had there been no steal. *)
let leapfrog w ~victim_id ~index =
  let victim = w.pool.workers.(victim_id) in
  while not (Ds.stolen_done w.dstack ~index) do
    w.hot.progress <- w.hot.progress + 1;
    if w.fl_on then fault_delay w Fault.Site.Leapfrog;
    let before = w.hot.n_steals in
    if steal_once w ~victim then begin
      w.hot.n_leap_steals <- w.hot.n_leap_steals + (w.hot.n_steals - before);
      if w.tr_on then record w Event.Leap_steal ~a:(-1) ~b:victim_id
    end
    else idle_backoff w
  done

let wait_completed w fut =
  (* No thief identity (Locked/Clev modes): steal per the policy while
     waiting. This is the strategy whose buried-join behaviour §I
     discusses. *)
  while not (Atomic.get fut.completed) do
    ignore (steal_idle w : bool)
  done;
  value_exn fut

let wait_child w pc =
  while not (Atomic.get pc.pc_completed) do
    ignore (steal_idle w : bool)
  done

(* ---- exception unwinding ----

   When a task body raises between spawn and join, its outstanding
   children must not be abandoned: a queued child could be picked up by
   a thief after its parent's frame is gone, and a direct-stack child
   would corrupt the strict LIFO discipline for every frame below. So
   the exception path joins-or-drains everything spawned since the
   failing body's entry mark before the exception propagates. Drained
   results (and any exceptions of the children themselves) are
   discarded — the parent's exception wins. *)

let unwind_direct w ~mark =
  while Ds.depth w.dstack > mark do
    match Ds.pop w.dstack with
    | Ds.Task (wrapper, _public) -> (try wrapper w with _ -> ())
    | Ds.Stolen { thief; index } ->
        if w.tr_on then record w Event.Join_stolen ~a:index ~b:thief;
        if thief >= 0 then leapfrog w ~victim_id:thief ~index;
        Ds.reclaim w.dstack ~index
  done

let unwind_queued ~pop ~push w ~mark =
  while List.length w.hot.children > mark do
    match w.hot.children with
    | [] -> assert false (* length > mark >= 0 *)
    | pc :: rest -> (
        w.hot.children <- rest;
        match pop w with
        | Some wrapper when wrapper == pc.pc_wrapper ->
            w.hot.n_inlined <- w.hot.n_inlined + 1;
            (try wrapper w with _ -> ())
        | Some other ->
            (* [pc] was stolen; [other] is an older pending spawn of
               ours that the next iteration will handle. *)
            push w other;
            w.hot.n_join_stolen <- w.hot.n_join_stolen + 1;
            if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
            wait_child w pc
        | None ->
            w.hot.n_join_stolen <- w.hot.n_join_stolen + 1;
            if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
            wait_child w pc)
  done

(* Run a task body, storing the result — or, on an exception, unwinding
   the body's own spawns and storing the exception with the backtrace
   captured at the raise point. Never raises. *)
let run_body wk (fut : _ future) =
  let mark = wk.pool.backend.bk_mark wk in
  match fut.fn wk with
  | v -> fut.value <- Some (Ok v)
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      wk.pool.backend.bk_unwind wk ~mark;
      fut.value <- Some (Error (e, bt))

(* ---- spawn (the [bk_spawn] implementations) ---- *)

(* Direct-stack modes signal completion through the descriptor state, so
   their futures share one never-read completion flag instead of
   allocating one per spawn. *)
let unused_completed = Atomic.make false

let spawn_queued push w (fn : worker -> 'a) : 'a future =
  let fut =
    { fn; value = None; completed = Atomic.make false; index = -1;
      owner_id = w.id; wrapper = dummy_task }
  in
  let wrapper wk =
    run_body wk fut;
    Atomic.set fut.completed true
  in
  fut.wrapper <- wrapper;
  (* Push first: if the queue overflows, no phantom child is left on the
     list for the unwinder to wait on forever. A thief completing the
     task before the cons is harmless — the record just starts life with
     [pc_completed] already true. *)
  push w wrapper;
  w.hot.children <-
    { pc_wrapper = wrapper; pc_completed = fut.completed } :: w.hot.children;
  if w.tr_on then record w Event.Spawn ~a:(-1) ~b:(-1);
  fut

let spawn_locked w fn = spawn_queued (fun w t -> Locked_deque.push w.ldeque t) w fn
let spawn_clev w fn = spawn_queued (fun w t -> Chase_lev.push w.cdeque t) w fn

let spawn_direct w (fn : worker -> 'a) : 'a future =
  let index = Ds.depth w.dstack in
  let fut =
    { fn; value = None; completed = unused_completed; index;
      owner_id = w.id; wrapper = dummy_task }
  in
  let wrapper wk = run_body wk fut in
  fut.wrapper <- wrapper;
  (* the push may raise [Pool_overflow]; the event is recorded only for
     spawns that happened *)
  Ds.push w.dstack wrapper;
  if w.tr_on then record w Event.Spawn ~a:index ~b:(-1);
  fut

(* ---- join (the [bk_join] implementations) ---- *)

(* Drop [fut]'s outstanding-child record (Locked/Clev); joins are LIFO in
   practice, so the head check is the fast path. *)
let pop_child w fut =
  match w.hot.children with
  | pc :: rest when pc.pc_wrapper == fut.wrapper -> w.hot.children <- rest
  | _ ->
      w.hot.children <-
        List.filter (fun pc -> pc.pc_wrapper != fut.wrapper) w.hot.children

let join_direct ~generic w fut =
  if fut.index <> Ds.depth w.dstack - 1 then
    invalid_arg "Wool.join: joins must be made in LIFO spawn order";
  match Ds.pop w.dstack with
  | Ds.Task (wrapper, public) ->
      if w.tr_on then
        record w
          (if public then Event.Inline_public else Event.Inline_private)
          ~a:fut.index ~b:(-1);
      if generic then begin
        (* Generic join: go through the wrapper and the result cell, as a
           runtime without task-specific join functions must. *)
        wrapper w;
        value_exn fut
      end
      else
        (* Task-specific join: direct call of the typed task function.
           An exception here unwinds in the caller's [run_body]. *)
        fut.fn w
  | Ds.Stolen { thief; index } ->
      if w.tr_on then record w Event.Join_stolen ~a:index ~b:thief;
      Select.stolen_by w.sel ~thief;
      if thief >= 0 then leapfrog w ~victim_id:thief ~index;
      Ds.reclaim w.dstack ~index;
      value_exn fut

let join_locked w fut =
  pop_child w fut;
  match Locked_deque.pop w.ldeque with
  | Some wrapper ->
      assert (wrapper == fut.wrapper);
      w.hot.n_inlined <- w.hot.n_inlined + 1;
      if w.tr_on then record w Event.Inline_public ~a:(-1) ~b:(-1);
      wrapper w;
      value_exn fut
  | None ->
      w.hot.n_join_stolen <- w.hot.n_join_stolen + 1;
      if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
      wait_completed w fut

let join_clev w fut =
  pop_child w fut;
  match Chase_lev.pop w.cdeque with
  | Some wrapper when wrapper == fut.wrapper ->
      w.hot.n_inlined <- w.hot.n_inlined + 1;
      if w.tr_on then record w Event.Inline_public ~a:(-1) ~b:(-1);
      wrapper w;
      value_exn fut
  | Some other ->
      (* Our task was stolen; [other] is an older pending task of ours.
         Restore it and wait for the thief. *)
      Chase_lev.push w.cdeque other;
      w.hot.n_join_stolen <- w.hot.n_join_stolen + 1;
      if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
      wait_completed w fut
  | None ->
      w.hot.n_join_stolen <- w.hot.n_join_stolen + 1;
      if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
      wait_completed w fut

(* ---- backends ---- *)

let queued_mark w = List.length w.hot.children

let locked_backend =
  {
    bk_steal = steal_locked;
    bk_spawn = spawn_locked;
    bk_join = join_locked;
    bk_mark = queued_mark;
    bk_unwind =
      unwind_queued
        ~pop:(fun w -> Locked_deque.pop w.ldeque)
        ~push:(fun w t -> Locked_deque.push w.ldeque t);
  }

let clev_backend =
  {
    bk_steal = steal_clev;
    bk_spawn = spawn_clev;
    bk_join = join_clev;
    bk_mark = queued_mark;
    bk_unwind =
      unwind_queued
        ~pop:(fun w -> Chase_lev.pop w.cdeque)
        ~push:(fun w t -> Chase_lev.push w.cdeque t);
  }

let direct_backend ~generic =
  {
    bk_steal = steal_direct;
    bk_spawn = spawn_direct;
    bk_join = (fun w fut -> join_direct ~generic w fut);
    bk_mark = (fun w -> Ds.depth w.dstack);
    bk_unwind = unwind_direct;
  }

let backend_of_mode = function
  | Locked -> locked_backend
  | Clev -> clev_backend
  | Swap_generic -> direct_backend ~generic:true
  | Task_specific | Private -> direct_backend ~generic:false

(* ---- the public task operations ---- *)

let spawn (w : ctx) (fn : ctx -> 'a) : 'a future =
  if w.pool.stopped then invalid_arg "Wool.spawn: pool is shut down";
  let fut =
    if w.fl_on then
      match Fault.Injector.fire w.inj Fault.Site.Spawn with
      | Some Fault.Kind.Raise_exn ->
          (* replace the body: the fault surfaces exactly like a task
             exception, exercising the full unwind/propagation path *)
          let e = Fault.Injector.injected_exn w.inj Fault.Site.Spawn in
          w.pool.backend.bk_spawn w (fun _ -> raise e)
      | Some (Fault.Kind.Delay n | Fault.Kind.Stall n) ->
          Fault.Injector.spin n;
          w.pool.backend.bk_spawn w fn
      | Some Fault.Kind.Fail_steal | None -> w.pool.backend.bk_spawn w fn
    else w.pool.backend.bk_spawn w fn
  in
  (* counted only after the push succeeds: a [Pool_overflow] raise must
     leave the spawn/join counter balance intact for [Invariants.check] *)
  w.hot.n_spawns <- w.hot.n_spawns + 1;
  fut

let join (w : ctx) fut =
  if fut.owner_id <> w.id then
    invalid_arg "Wool.join: future joined on a different worker";
  if w.fl_on then fault_delay w Fault.Site.Join;
  w.pool.backend.bk_join w fut

let call (w : ctx) fn = fn w
let self_id w = w.id
let num_workers pool = Array.length pool.workers
let mode pool = pool.pmode
let policy pool = pool.policy
let policy_name pool = Wool_policy.name pool.policy
let pool_of_ctx w = w.pool

module Stats = struct
  type t = {
    spawns : int;
    max_pool_depth : int;
    inlined_private : int;
    inlined_public : int;
    joins_stolen : int;
    steals : int;
    leap_steals : int;
    backoffs : int;
    failed_steals : int;
    publish_events : int;
    privatize_events : int;
  }

  let zero =
    {
      spawns = 0;
      max_pool_depth = 0;
      inlined_private = 0;
      inlined_public = 0;
      joins_stolen = 0;
      steals = 0;
      leap_steals = 0;
      backoffs = 0;
      failed_steals = 0;
      publish_events = 0;
      privatize_events = 0;
    }

  let of_worker w =
    let d = Ds.stats w.dstack in
    {
      spawns = w.hot.n_spawns;
      max_pool_depth = d.Ds.max_depth;
      inlined_private = d.Ds.inlined_private;
      inlined_public = d.Ds.inlined_public + w.hot.n_inlined;
      joins_stolen = d.Ds.joins_stolen + w.hot.n_join_stolen;
      steals = w.hot.n_steals;
      leap_steals = w.hot.n_leap_steals;
      backoffs = d.Ds.backoffs;
      failed_steals = w.hot.n_failed;
      publish_events = d.Ds.publish_events;
      privatize_events = d.Ds.privatize_events;
    }

  (* [max_pool_depth] is a high-water mark, not a flow; it combines with
     [max], everything else with [+]. *)
  let combine a b =
    {
      spawns = a.spawns + b.spawns;
      max_pool_depth = max a.max_pool_depth b.max_pool_depth;
      inlined_private = a.inlined_private + b.inlined_private;
      inlined_public = a.inlined_public + b.inlined_public;
      joins_stolen = a.joins_stolen + b.joins_stolen;
      steals = a.steals + b.steals;
      leap_steals = a.leap_steals + b.leap_steals;
      backoffs = a.backoffs + b.backoffs;
      failed_steals = a.failed_steals + b.failed_steals;
      publish_events = a.publish_events + b.publish_events;
      privatize_events = a.privatize_events + b.privatize_events;
    }

  let per_worker pool = Array.map of_worker pool.workers

  let aggregate pool =
    Array.fold_left (fun acc w -> combine acc (of_worker w)) zero pool.workers

  let policy_name = policy_name

  let reset pool =
    Array.iter
      (fun w ->
        Ds.reset_stats w.dstack;
        w.hot.n_spawns <- 0;
        w.hot.n_steals <- 0;
        w.hot.n_leap_steals <- 0;
        w.hot.n_failed <- 0;
        w.hot.n_inlined <- 0;
        w.hot.n_join_stolen <- 0)
      pool.workers

  let fields s =
    [
      ("spawns", s.spawns);
      ("max_pool_depth", s.max_pool_depth);
      ("inlined_private", s.inlined_private);
      ("inlined_public", s.inlined_public);
      ("joins_stolen", s.joins_stolen);
      ("steals", s.steals);
      ("leap_steals", s.leap_steals);
      ("backoffs", s.backoffs);
      ("failed_steals", s.failed_steals);
      ("publish_events", s.publish_events);
      ("privatize_events", s.privatize_events);
    ]

  let pp fmt s =
    Format.fprintf fmt "@[<hov 1>{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf fmt ";@ ";
        Format.fprintf fmt "%s=%d" k v)
      (fields s);
    Format.fprintf fmt "}@]"

  let to_json s =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf {|"%s":%d|} k v) (fields s))
    ^ "}"
end

type stats = Stats.t = {
  spawns : int;
  max_pool_depth : int;
  inlined_private : int;
  inlined_public : int;
  joins_stolen : int;
  steals : int;
  leap_steals : int;
  backoffs : int;
  failed_steals : int;
  publish_events : int;
  privatize_events : int;
}

let stats = Stats.aggregate
let reset_stats = Stats.reset

(* ---- fault-injection stats ---- *)

let faults_enabled pool = Option.is_some pool.faults
let fault_plan pool = pool.faults

let fault_stats pool =
  Array.fold_left
    (fun acc w -> Fault.Stats.combine acc (Fault.Injector.stats w.inj))
    (Fault.Stats.zero ()) pool.workers

(* ---- trace collection (quiescent snapshots; see pool.mli) ---- *)

let trace_enabled pool = pool.trace_on

let trace_per_worker pool =
  Array.map (fun w -> Ring.snapshot w.ring ~worker:w.id) pool.workers

let trace_dropped pool =
  Array.fold_left (fun acc w -> acc + Ring.dropped w.ring) 0 pool.workers

let trace_events pool =
  let parts = trace_per_worker pool in
  let all = Array.concat (Array.to_list parts) in
  (* stable: per-worker order (monotone timestamps) survives equal keys *)
  Array.stable_sort
    (fun a b -> compare a.Event.ts b.Event.ts)
    all;
  all

let trace_clear pool =
  Array.iter (fun w -> Ring.clear w.ring) pool.workers

(* ---- protocol-invariant checking (quiescent pool only) ---- *)

module Invariants = struct
  let check pool =
    let errs = ref [] in
    let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
    Array.iter
      (fun w ->
        List.iter
          (fun v -> add "worker %d: dstack %s" w.id v)
          (Ds.check_quiescent w.dstack);
        let ls = Locked_deque.size w.ldeque in
        if ls <> 0 then add "worker %d: locked deque holds %d tasks" w.id ls;
        let cs = Chase_lev.size w.cdeque in
        if cs <> 0 then
          add "worker %d: chase-lev deque holds %d tasks" w.id cs;
        let ch = List.length w.hot.children in
        if ch <> 0 then
          add "worker %d: %d outstanding queued children" w.id ch)
      pool.workers;
    let s = Stats.aggregate pool in
    (match pool.pmode with
    | Locked | Clev ->
        (* every queued spawn is either inlined by its owner or stolen *)
        let joined = s.Stats.inlined_private + s.Stats.inlined_public in
        if s.Stats.spawns <> joined + s.Stats.steals then
          add "counter imbalance: spawns=%d but inlined=%d + steals=%d"
            s.Stats.spawns joined s.Stats.steals;
        (* ... and every stolen spawn is waited out by its owner *)
        if s.Stats.joins_stolen <> s.Stats.steals then
          add "counter imbalance: joins_stolen=%d but steals=%d"
            s.Stats.joins_stolen s.Stats.steals
    | Swap_generic | Task_specific | Private ->
        let joined =
          s.Stats.inlined_private + s.Stats.inlined_public
          + s.Stats.joins_stolen
        in
        if s.Stats.spawns <> joined then
          add
            "counter imbalance: spawns=%d but inlined+joins_stolen=%d"
            s.Stats.spawns joined;
        if s.Stats.joins_stolen <> s.Stats.steals then
          add "counter imbalance: joins_stolen=%d but steals=%d"
            s.Stats.joins_stolen s.Stats.steals);
    List.rev !errs

  let check_exn pool =
    match check pool with
    | [] -> ()
    | errs ->
        failwith
          ("Wool.Invariants.check_exn: " ^ String.concat "; " errs)
end

(* ---- cache-layout regression check (test path) ---- *)

let layout_check pool =
  let errs = ref [] in
  Array.iter
    (fun w ->
      let tag v = Printf.sprintf "worker %d: %s" w.id v in
      if not (Layout.is_padded w.hot) then
        errs :=
          tag
            (Printf.sprintf "hot block occupies %d words (not line-padded)"
               (Layout.size_words w.hot))
          :: !errs;
      List.iter
        (fun v -> errs := tag ("dstack " ^ v) :: !errs)
        (Ds.layout_check w.dstack))
    pool.workers;
  List.rev !errs

(* ---- stall watchdog ---- *)

let stall_report pool =
  let buf = Buffer.create 1024 in
  let esc = Wool_trace.Json.escape in
  Buffer.add_string buf {|{"type":"wool_stall_report"|};
  Printf.bprintf buf {|,"mode":"%s"|} (Config.mode_name pool.pmode);
  Printf.bprintf buf {|,"policy":"%s"|} (esc (Wool_policy.name pool.policy));
  Printf.bprintf buf {|,"active":%b|} (Atomic.get pool.active);
  (match pool.faults with
  | Some p -> Printf.bprintf buf {|,"fault_plan":"%s"|} (esc p.Fault.Plan.name)
  | None -> ());
  Buffer.add_string buf {|,"workers":[|};
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf {|{"id":%d,"progress":%d|} w.id
        (w.hot.progress + w.hot.n_spawns);
      Printf.bprintf buf {|,"dstack":{"depth":%d,"bot":%d,"live":[|}
        (Ds.depth w.dstack) (Ds.bot_index w.dstack);
      List.iteri
        (fun j (idx, st) ->
          if j > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf {|{"index":%d,"state":"%s"}|} idx (esc st))
        (Ds.dump_live w.dstack);
      Buffer.add_string buf "]}";
      Printf.bprintf buf {|,"ldeque_size":%d|} (Locked_deque.size w.ldeque);
      Printf.bprintf buf {|,"cdeque_size":%d|} (Chase_lev.size w.cdeque);
      Printf.bprintf buf {|,"children":%d|} (List.length w.hot.children);
      Printf.bprintf buf {|,"stats":%s|} (Stats.to_json (Stats.of_worker w));
      Buffer.add_string buf {|,"trace":[|};
      let evs = Ring.snapshot w.ring ~worker:w.id in
      let n = Array.length evs in
      let start = max 0 (n - 32) in
      for j = start to n - 1 do
        if j > start then Buffer.add_char buf ',';
        Buffer.add_string buf (Event.to_json evs.(j))
      done;
      Buffer.add_string buf "]}")
    pool.workers;
  Printf.bprintf buf {|],"trace_dropped":%d}|} (trace_dropped pool);
  Buffer.contents buf

let set_on_stall pool f = pool.on_stall <- f
let stalls_fired pool = Atomic.get pool.stall_reports

(* Sampling loop, run on its own domain. Progress counters are plain
   ints written by their workers; the watchdog reads them racily — a
   stale read only delays detection by one interval. A report fires when
   a worker's counter has been unchanged for exactly [watchdog_stalls]
   consecutive samples while a [run] is active (an episode latch: one
   report per stall episode, not one per sample). *)
let watchdog_loop pool =
  let n = Array.length pool.workers in
  let last = Array.make n (-1) in
  let stale = Array.make n 0 in
  let interval = float_of_int pool.watchdog_interval_ns *. 1e-9 in
  while not (Atomic.get pool.stop) do
    Unix.sleepf interval;
    if Atomic.get pool.active then begin
      let fired = ref false in
      Array.iteri
        (fun i w ->
          let p = w.hot.progress + w.hot.n_spawns in
          if p = last.(i) then begin
            stale.(i) <- stale.(i) + 1;
            if stale.(i) = pool.watchdog_stalls then fired := true
          end
          else begin
            last.(i) <- p;
            stale.(i) <- 0
          end)
        pool.workers;
      if !fired then begin
        Atomic.incr pool.stall_reports;
        let report = stall_report pool in
        try pool.on_stall report with _ -> ()
      end
    end
    else begin
      Array.fill stale 0 n 0;
      Array.fill last 0 n (-1)
    end
  done

(* ---- pool lifecycle ---- *)

let make_worker ~id ~pool ~publicity ~capacity ~trace ~trace_capacity ~faults
    rng =
  let fl_on, plan =
    match faults with Some p -> (true, p) | None -> (false, Fault.Plan.none)
  in
  let inj = Fault.Injector.make plan ~worker:id in
  let w =
    {
      id;
      pool;
      dstack = Ds.create ~capacity ~publicity ~dummy:dummy_task ();
      ldeque = Locked_deque.create ~capacity ~dummy:dummy_task ();
      cdeque = Chase_lev.create ~dummy:dummy_task ();
      rng;
      sel = Select.make pool.policy.Wool_policy.selector ~self:id ();
      bo = Backoff.make pool.policy.Wool_policy.backoff;
      tr_on = trace;
      ring = Ring.create ~capacity:(if trace then trace_capacity else 2);
      fl_on;
      inj;
      inj_interfere = direct_interfere inj;
      hot =
        Layout.copy_as_padded
          {
            progress = 0;
            children = [];
            n_spawns = 0;
            n_steals = 0;
            n_leap_steals = 0;
            n_failed = 0;
            n_inlined = 0;
            n_join_stolen = 0;
          };
    }
  in
  if trace || fl_on then
    Ds.set_event_hooks w.dstack
      ~on_publish:(fun () ->
        if w.fl_on then fault_delay w Fault.Site.Publish;
        if w.tr_on then record w Event.Publish ~a:(-1) ~b:(-1))
      ~on_privatize:(fun () ->
        if w.tr_on then record w Event.Privatize ~a:(-1) ~b:(-1));
  w

let create_of_config (c : Config.t) =
  let nworkers =
    match c.Config.workers with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  if nworkers <= 0 then invalid_arg "Pool.create: workers must be positive";
  let publicity =
    (* The ladder modes below [Private] have no private tasks. *)
    match c.Config.mode with
    | Swap_generic | Task_specific -> All_public
    | Locked | Clev | Private -> c.Config.publicity
  in
  let master = Wool_util.Rng.make c.Config.seed in
  let pool =
    {
      pmode = c.Config.mode;
      backend = backend_of_mode c.Config.mode;
      lock_mode = c.Config.lock_mode;
      idle_nap_ns = c.Config.idle_nap_ns;
      policy = Config.policy c;
      trace_on = c.Config.trace;
      faults = c.Config.faults;
      workers = [||];
      stop = Atomic.make false;
      domains = [];
      stopped = false;
      active = Atomic.make false;
      watchdog_interval_ns = c.Config.watchdog_interval_ns;
      watchdog_stalls = c.Config.watchdog_stalls;
      on_stall =
        (fun report ->
          prerr_endline ("wool: stall watchdog fired: " ^ report));
      stall_reports = Atomic.make 0;
      wd = None;
    }
  in
  let workers =
    Array.init nworkers (fun id ->
        make_worker ~id ~pool ~publicity ~capacity:c.Config.capacity
          ~trace:c.Config.trace ~trace_capacity:c.Config.trace_capacity
          ~faults:c.Config.faults
          (Wool_util.Rng.split master))
  in
  pool.workers <- workers;
  pool.domains <-
    List.init (nworkers - 1) (fun i ->
        let w = workers.(i + 1) in
        Domain.spawn (fun () -> worker_loop w));
  if c.Config.watchdog_stalls > 0 then
    pool.wd <- Some (Domain.spawn (fun () -> watchdog_loop pool));
  pool

let create ?(config = Config.default) ?workers ?mode ?publicity ?capacity
    ?lock_mode ?idle_nap_ns ?seed ?trace () =
  create_of_config
    (Config.override config ?workers ?mode ?publicity ?capacity ?lock_mode
       ?idle_nap_ns ?seed ?trace ())

let shutdown pool =
  if not pool.stopped then begin
    pool.stopped <- true;
    Atomic.set pool.stop true;
    List.iter Domain.join pool.domains;
    pool.domains <- [];
    Option.iter Domain.join pool.wd;
    pool.wd <- None
  end

let run pool f =
  if pool.stopped then invalid_arg "Wool.run: pool is shut down";
  let w0 = pool.workers.(0) in
  Atomic.set pool.active true;
  let mark = pool.backend.bk_mark w0 in
  match f w0 with
  | v ->
      Atomic.set pool.active false;
      v
  | exception e ->
      (* Same discipline as a task body: join-or-drain everything the
         root computation left outstanding, so the pool is quiescent —
         and reusable — when the exception reaches the caller. *)
      let bt = Printexc.get_raw_backtrace () in
      pool.backend.bk_unwind w0 ~mark;
      Atomic.set pool.active false;
      Printexc.raise_with_backtrace e bt

let with_pool ?config ?workers ?mode ?publicity ?capacity ?lock_mode
    ?idle_nap_ns ?seed ?trace f =
  let pool =
    create ?config ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
      ?seed ?trace ()
  in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
