(* Cooperative cancellation tokens.

   A token is one shared flag. Nothing in the runtime preempts a running
   task: cancellation is *cooperative* — the ingress drops a cancelled
   job at dequeue time (the body never starts), and a running body
   observes the flag itself via [is_set]/[check] (or implicitly at every
   spawn through the worker's ambient token, see {!Pool.spawn}).

   The token carries no settlement state of its own: ticket resolution
   stays with the PR-7 first-writer-wins machinery in the pool, so
   cancel-vs-complete races are decided exactly once no matter how many
   duplicate deliveries a relaxed mode produces. *)

type t = bool Atomic.t

exception Cancelled

let () =
  Printexc.register_printer (function
    | Cancelled -> Some "Wool.Cancel.Cancelled"
    | _ -> None)

let create () = Atomic.make false
let cancel t = Atomic.set t true
let is_set t = Atomic.get t
let check t = if Atomic.get t then raise Cancelled
