(** Wool: efficient work stealing for fine grained parallelism.

    OCaml implementation of the direct task stack scheduler of Faxén
    (ICPP 2010). See {!Pool} for the execution model; this module re-exports
    the pool API and adds divide-and-conquer loop combinators used by the
    loop-shaped benchmarks (mm, ssf). *)

module Pool = Pool
module Mode = Pool.Mode
module Config = Pool.Config
module Stats = Pool.Stats
module Policy = Wool_policy
module Fault = Wool_fault
module Invariants = Pool.Invariants
module Submit = Pool.Submit
module Cancel = Cancel

type pool = Pool.t
type ctx = Pool.ctx
type 'a future = 'a Pool.future
type mode = Pool.mode =
  | Locked
  | Swap_generic
  | Task_specific
  | Private
  | Clev
  | Ws_mult
  | Lowsync

type publicity = Pool.publicity = All_private | All_public | Adaptive of int

type admission = Pool.admission =
  | Block
  | Reject
  | Shed_oldest
  | Adaptive

type ingress_stats = Pool.ingress_stats

exception Pool_overflow = Pool.Pool_overflow
exception Submission_rejected = Pool.Submission_rejected
exception Submission_expired = Pool.Submission_expired

let create = Pool.create
let run = Pool.run
let shutdown = Pool.shutdown
let with_pool = Pool.with_pool
let spawn = Pool.spawn
let spawn_idempotent = Pool.spawn_idempotent
let join = Pool.join
let call = Pool.call
let cancel_token = Pool.cancel_token
let steal_pressure = Pool.steal_pressure
let self_id = Pool.self_id
let num_workers = Pool.num_workers
let policy = Pool.policy
let policy_name = Pool.policy_name
let ingress_stats = Pool.ingress_stats
let layout_check = Pool.layout_check
let faults_enabled = Pool.faults_enabled
let fault_plan = Pool.fault_plan
let fault_stats = Pool.fault_stats
let stall_report = Pool.stall_report
let set_on_stall = Pool.set_on_stall
let stalls_fired = Pool.stalls_fired
let trace_enabled = Pool.trace_enabled
let trace_ingress = Pool.trace_ingress
let trace_events = Pool.trace_events
let trace_per_worker = Pool.trace_per_worker
let trace_dropped = Pool.trace_dropped
let trace_clear = Pool.trace_clear

(* A non-positive grain used to hang these combinators: with [grain <= 0]
   a 1-element range never satisfies [hi - lo <= grain], and its split
   point [mid = lo] does not shrink it, so the recursion never bottomed
   out. Validated once at the entry wrapper; the inner recursion stays
   unchecked on the hot path. *)
let[@inline] check_grain fn grain =
  if grain <= 0 then
    invalid_arg (Printf.sprintf "Wool.%s: grain must be positive (got %d)" fn grain)

(** [parallel_for ctx ~grain lo hi body] runs [body i] for [lo <= i < hi]
    as a balanced binary task tree with at most [grain] iterations per leaf
    (default 1). This is how Wool programs express parallel loops: the same
    spawn/call/join pattern as Figure 2 applied to index ranges.

    The combinators spawn via [spawn_idempotent] so they work on
    relaxed-mode pools too; there, a subtree (and so [body i]) may run
    more than once, which is harmless for the write-one-slot bodies the
    combinators are built for. Raises [Invalid_argument] on [grain <= 0]. *)
let parallel_for ctx ?(grain = 1) lo hi body =
  check_grain "parallel_for" grain;
  let rec go ctx lo hi =
    if hi - lo <= grain then
      for i = lo to hi - 1 do
        body i
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let right = spawn_idempotent ctx (fun ctx -> go ctx mid hi) in
      go ctx lo mid;
      join ctx right
    end
  in
  go ctx lo hi

(** [parallel_reduce ctx ~grain lo hi ~neutral f combine] folds
    [combine (f lo) (combine (f (lo+1)) ...)] over a balanced task tree.
    [combine] must be associative with [neutral] as identity. Raises
    [Invalid_argument] on [grain <= 0]. *)
let parallel_reduce ctx ?(grain = 1) lo hi ~neutral f combine =
  check_grain "parallel_reduce" grain;
  let rec go ctx lo hi =
    if hi - lo <= grain then begin
      let acc = ref neutral in
      for i = lo to hi - 1 do
        acc := combine !acc (f i)
      done;
      !acc
    end
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let right = spawn_idempotent ctx (fun ctx -> go ctx mid hi) in
      let left = go ctx lo mid in
      combine left (join ctx right)
    end
  in
  go ctx lo hi

(** [both ctx f g] evaluates [f] and [g] as parallel tasks and returns both
    results — the binary fork-join primitive. *)
let both ctx f g =
  let fg = spawn_idempotent ctx g in
  let a = f ctx in
  let b = join ctx fg in
  (a, b)

(* Element 0 is special only because [Array.make] needs a value before
   the loop can run. It used to be computed inline while seeding the
   output array, which let it escape the task tree entirely: no ambient
   cancel check, no fault injection, leaf trace counts off by one, and an
   exception from [f xs.(0)] bypassed the scheduler's unwind path.
   Spawning it as an ordinary task and joining immediately makes it
   uniform with every other leaf — the spawn performs the cancel check,
   the body runs under run-task accounting, and a raise unwinds like any
   task failure. The combinators therefore spawn exactly
   [1 + (internal splits of [1, n) at the given grain)] tasks. *)

(** [parallel_map ctx ~grain f xs] maps [f] over an array as a balanced
    task tree ([grain] elements per leaf, default 1). [f] may run on any
    worker; results land in a fresh array in order. *)
let parallel_map ctx ?grain f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let first = spawn_idempotent ctx (fun _ctx -> f xs.(0)) in
    let out = Array.make n (join ctx first) in
    parallel_for ctx ?grain 1 n (fun i -> out.(i) <- f xs.(i));
    out
  end

(** [parallel_init ctx ~grain n f] is [Array.init n f] with the
    initialisers run as a task tree. Requires [n >= 0]. *)
let parallel_init ctx ?grain n f =
  if n < 0 then invalid_arg "Wool.parallel_init: negative length";
  if n = 0 then [||]
  else begin
    let first = spawn_idempotent ctx (fun _ctx -> f 0) in
    let out = Array.make n (join ctx first) in
    parallel_for ctx ?grain 1 n (fun i -> out.(i) <- f i);
    out
  end
