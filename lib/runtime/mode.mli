(** First-class pool-mode descriptors.

    One source of truth for the mode list, the name/parse tables, and —
    the property that changes the API contract — each mode's execution
    guarantee. {!Pool} re-exports {!t} as [Pool.mode], so the
    constructors below are the same values configuration code has
    always matched on. *)

type t =
  | Locked  (** mutex-protected deque (baseline) *)
  | Swap_generic  (** direct task stack, generic swap joins *)
  | Task_specific  (** direct task stack, task-specific joins *)
  | Private
      (** direct task stack with private tasks — the paper's protocol *)
  | Clev  (** Chase-Lev dynamic circular deque *)
  | Ws_mult
      (** fence-free read/write pool with multiplicity (Castañeda &
          Piña): no CAS anywhere, tasks may execute more than once *)
  | Lowsync
      (** low-synchronization pool (Rito & Paulino): plain owner
          operations, one CAS per steal, boundary-cell duplicates *)

type guarantee =
  | Exactly_once  (** every spawned task body executes exactly once *)
  | At_least_once
      (** a task body may execute more than once (concurrently or
          after completion); bodies must be idempotent — see
          {!Pool.spawn_idempotent} and [Config.make ~allow_relaxed] *)

val all : t list
(** Every mode, in the order reports print them. *)

val name : t -> string
(** Canonical lowercase name ([ws_mult], [task_specific], ...). *)

val of_name : string -> t option
(** Parse a mode name; accepts the canonical names plus hyphenated
    spellings historically printed by reports ([chase-lev], [swap]).
    Round-trips with {!name}. *)

val guarantee : t -> guarantee

val is_relaxed : t -> bool
(** [guarantee m = At_least_once]. *)

val is_direct : t -> bool
(** Built on the paper's direct task stack (descriptor vocabulary, trip
    wire, leapfrogging). *)

val guarantee_name : guarantee -> string
(** ["exactly-once"] / ["at-least-once"] — the README table spelling. *)

val describe : t -> string
(** One-line human description. *)
