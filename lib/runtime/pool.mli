(** The Wool runtime: pools of domain workers with work stealing.

    A pool owns [workers] domains. The programming model inside a task
    is the paper's SPAWN / CALL / JOIN (Figure 2): [spawn] pushes a task
    on the calling worker's pool, the caller then typically does ordinary
    recursive calls, and [join] — which must be made in LIFO order —
    either inlines the task with a direct typed call or, if it was
    stolen, leapfrogs (steals only from the thief) until the thief
    completes it.

    {2 ctx vs pool}

    The API splits into two halves with distinct capabilities:

    - {!type:t} (the pool) is the {e outside} handle: any domain may hold
      one and use the ingress surface ({!Submit}, {!run}) and the
      introspection accessors. Nothing on a [t] touches a worker's hot
      path.
    - {!type:ctx} (the executing worker) is the {e inside} handle: it
      exists only within task code, is threaded explicitly (no
      domain-local lookup on the hot path), and grants the fine-grained
      verbs {!spawn} / {!join} / {!call}. A [ctx] must never escape the
      task that received it.

    Work enters a pool only through the ingress: {!Submit.submit} from
    any domain, or {!run} — submit-and-help from the owning domain. Once
    a job is running, everything it spawns stays in the work-stealing
    core and never touches the injection lanes.

    The [mode] selects the synchronisation strategy and reproduces the
    optimisation ladder of Table II plus two conventional baselines:

    - [Locked]: per-worker lock taken at join and steal, no per-descriptor
      state (the paper's "base" row).
    - [Swap_generic]: atomic exchange on the descriptor state, but joins go
      through the generic wrapper and the result cell ("synchronize on
      task").
    - [Task_specific]: as above, but an inlined join calls the typed task
      function directly ("task specific join").
    - [Private]: adds private task descriptors with the trip-wire scheme
      ("private tasks"); the default.
    - [Clev]: a Chase–Lev pointer deque with random (non-leapfrog) stealing
      on blocked joins — the conventional steal-child baseline (TBB-like),
      exhibiting the buried-join behaviour discussed in §I.
    - [Ws_mult]: a fence-free read/write pool {e with multiplicity}
      (Castañeda & Piña): no CAS or RMW anywhere; in exchange, a task
      body may execute more than once.
    - [Lowsync]: a low-synchronization pool (Rito & Paulino): plain
      owner operations and a single CAS per steal; duplicates only at
      the owner/thief boundary cell.

    The last two are {e relaxed} modes ({!Mode.At_least_once}): they
    require [Config.allow_relaxed] and accept work only through
    {!spawn_idempotent} / [Submit.submit ~idempotent:true]. The runtime
    dedupes duplicate {e completions} (futures and tickets resolve
    exactly once), but the task {e body} may run more than once. *)

module Mode = Mode
(** First-class mode descriptors: the canonical mode list, name/parse
    tables, and each mode's execution guarantee. *)

type t
(** A pool: the outside handle. Usable from any domain. *)

type ctx
(** The executing worker: the inside handle, threaded explicitly through
    task code (no domain-local lookup on the hot path). *)

type 'a future

type mode = Mode.t =
  | Locked
  | Swap_generic
  | Task_specific
  | Private
  | Clev
  | Ws_mult
  | Lowsync

type publicity = Wool_deque.Direct_stack.publicity =
  | All_private
  | All_public
  | Adaptive of int

type admission = Wool_policy.Admission.t =
  | Block
  | Reject
  | Shed_oldest
  | Adaptive
(** What a full injection lane does to a new submission; see
    {!Wool_policy.Admission}. [Adaptive] also sheds {e before} the lane
    fills, whenever the pool's sojourn-latency EWMA exceeds
    [Config.admission_target_ns] and a backlog exists. *)

module Cancel = Cancel
(** Cooperative cancellation tokens, attachable to submissions
    ({!Submit.submit}[ ~cancel]) and observed by their whole task
    trees. *)

exception Pool_overflow
(** Raised by {!spawn} when the calling worker's task pool is at
    [Config.capacity] (same exception as
    {!Wool_deque.Direct_stack.Pool_overflow}). Raised before any pool
    state is mutated, so the counters stay balanced, the pool remains
    usable, and the spawn unwinds like an ordinary task-body exception
    in every mode. *)

exception Submission_rejected
(** Raised by {!Submit.await} (and {!run} on a racing shutdown) when the
    awaited ticket resolved rejected: the job was refused at admission
    ([Reject] policy, an [Adaptive] shed, closed ingress, or pool
    shutting down) or evicted before a worker took it ([Shed_oldest],
    shutdown drain). The job body did {e not} run. *)

exception Submission_expired
(** Raised by {!Submit.await} when the awaited ticket resolved expired:
    the job's [~deadline] passed before a worker took it, and the
    draining worker dropped it at dequeue time. The job body did {e not}
    run. *)

(** Pool configuration as a first-class value. A config record travels
    as one value, and [with_pool ~config] forwards {e every} setting by
    construction — this is the only way to configure a pool (the
    per-setting optional arguments [create] once took are gone; see
    README for the migration table). *)
module Config : sig
  type t = {
    workers : int option;
        (** [None] = [Domain.recommended_domain_count ()] *)
    mode : mode;
    publicity : publicity;  (** direct modes only *)
    capacity : int;  (** max simultaneous descriptors per worker *)
    lock_mode : [ `Base | `Peek | `Trylock ];
        (** §IV-C stealing discipline, [Locked] mode only *)
    idle_nap_ns : int;
        (** one nap unit for the idle-backoff policy: how long an idle
            thief sleeps per {!Wool_policy.Backoff.Nap} factor
            (0 = pure spinning); keeps over-subscribed pools live *)
    seed : int;  (** victim-selection RNG seed *)
    trace : bool;  (** record scheduler events into per-worker rings *)
    trace_capacity : int;
        (** events retained per worker ring (rounded up to a power of
            two); overflow drops oldest-first *)
    steal_policy : Wool_policy.Selector.t;
        (** victim selection for unpinned steals (leapfrogging stays
            pinned to the thief regardless); default
            [Random_victim] — the historical behaviour. A
            [Hierarchical] selector probes near-first over its
            {!Wool_policy.Topology}: an [Auto] spec sizes the topology
            from the pool's worker count at the first probe, and the
            join path's thief hints double as steal-back targets *)
    backoff : Wool_policy.Backoff.t;
        (** idle behaviour after failed steals; default [Nap_after 64] —
            the historical nap-after-64-failures loop *)
    faults : Wool_fault.Plan.t option;
        (** deterministic fault injection (default [None] = hooks compile
            to one dead branch per site; [Some Plan.none] = hooks live
            but no rules, the dispatch-overhead measurement case) *)
    watchdog_interval_ns : int;
        (** stall-watchdog sampling period (default 5ms) *)
    watchdog_stalls : int;
        (** consecutive no-progress samples before the watchdog reports
            a stalled worker; 0 (the default) disables the watchdog —
            no extra domain is spawned *)
    injection_lanes : int;
        (** number of independent bounded MPMC injection queues
            (default 1); more lanes spread producer contention, at the
            cost of coarser FIFO ordering across producers *)
    injection_capacity : int;
        (** slots per lane, rounded up to a power of two (default 1024);
            [0] closes the ingress entirely — {!Submit.submit} rejects
            everything and {!run} executes directly on worker 0, the
            pre-ingress behaviour *)
    admission : admission;
        (** what a full lane does to a new submission (default [Block]) *)
    admission_target_ns : int;
        (** [Adaptive] admission's sojourn-latency target (default 2ms):
            while the EWMA of observed lane-sojourn times is above this
            and a backlog exists, new submissions are rejected at the
            door. Ignored by the other admission policies. *)
    server : bool;
        (** server mode (default [false]): {e every} worker, including 0,
            is a spawned domain, and the creating domain is a pure
            producer — {!run} becomes submit-and-block-on-ticket instead
            of submit-and-help. Use for pools whose owner must stay
            responsive (accept loops, load generators). *)
    allow_relaxed : bool;
        (** opt-in acknowledgement of at-least-once execution (default
            [false]): a relaxed mode ([Ws_mult] / [Lowsync]) is rejected
            by {!validate} unless this is set. Setting it on an
            exactly-once mode is harmless. *)
  }

  val default : t
  (** [Private] mode, [Adaptive 4] publicity, auto worker count, tracing
      off, random victims with nap-after-64 backoff, one 1024-slot
      injection lane with [Block] admission, non-server. *)

  val validate : t -> t
  (** Reject nonsensical combinations with a descriptive
      [Invalid_argument] naming the field: non-positive [workers] /
      [capacity] / [trace_capacity] / [injection_lanes], negative
      [idle_nap_ns] / [watchdog_stalls] / [injection_capacity],
      non-positive [watchdog_interval_ns] with the watchdog on,
      [injection_capacity = 0] with [Block] (would wedge every
      producer), [Shed_oldest] (nothing to shed) or [Adaptive] (no lane
      to watch) admission, non-positive [admission_target_ns] with
      [Adaptive], [server] with a closed ingress (submission is the
      only way in), and a relaxed [mode] without [allow_relaxed] (the
      error spells out the at-least-once contract). Returns the config
      unchanged when valid.
      {!make}, {!override} and pool creation all validate; call this
      directly only on records built by hand. *)

  val make :
    ?workers:int ->
    ?mode:mode ->
    ?publicity:publicity ->
    ?capacity:int ->
    ?lock_mode:[ `Base | `Peek | `Trylock ] ->
    ?idle_nap_ns:int ->
    ?seed:int ->
    ?trace:bool ->
    ?trace_capacity:int ->
    ?policy:Wool_policy.t ->
    ?steal_policy:Wool_policy.Selector.t ->
    ?backoff:Wool_policy.Backoff.t ->
    ?faults:Wool_fault.Plan.t ->
    ?watchdog_interval_ns:int ->
    ?watchdog_stalls:int ->
    ?injection_lanes:int ->
    ?injection_capacity:int ->
    ?admission:admission ->
    ?admission_target_ns:int ->
    ?server:bool ->
    ?allow_relaxed:bool ->
    unit ->
    t
  (** Builder over {!default}; omitted arguments keep the default.
      [?policy] sets [steal_policy] and [backoff] from one
      {!Wool_policy.t} value — the same value {!Wool_sim.Engine.run}
      accepts — and the two per-field arguments override it. The result
      is {!validate}d. *)

  val override :
    t ->
    ?workers:int ->
    ?mode:mode ->
    ?publicity:publicity ->
    ?capacity:int ->
    ?lock_mode:[ `Base | `Peek | `Trylock ] ->
    ?idle_nap_ns:int ->
    ?seed:int ->
    ?trace:bool ->
    ?trace_capacity:int ->
    ?policy:Wool_policy.t ->
    ?steal_policy:Wool_policy.Selector.t ->
    ?backoff:Wool_policy.Backoff.t ->
    ?faults:Wool_fault.Plan.t ->
    ?watchdog_interval_ns:int ->
    ?watchdog_stalls:int ->
    ?injection_lanes:int ->
    ?injection_capacity:int ->
    ?admission:admission ->
    ?admission_target_ns:int ->
    ?server:bool ->
    ?allow_relaxed:bool ->
    unit ->
    t
  (** [override c] is {!make} with [c] as the base instead of
      {!default}: provided arguments replace the corresponding fields,
      omitted ones keep [c]'s. The result is {!validate}d. *)

  val policy : t -> Wool_policy.t
  (** The [steal_policy]/[backoff] pair as one {!Wool_policy.t}. *)

  val with_policy : Wool_policy.t -> t -> t
  (** Replace both policy fields from one {!Wool_policy.t}. *)

  val mode_name : mode -> string
  (** Lower-case label ("locked", "private", ...) for report rows. *)

  val admission_name : admission -> string
  (** {!Wool_policy.Admission.name}: "block" / "reject" / "shed-oldest" /
      "adaptive". *)

  val pp : Format.formatter -> t -> unit
end

val create : ?config:Config.t -> unit -> t
(** Create a pool from [config] (default {!Config.default}; validated —
    see {!Config.validate}). The per-setting optional arguments this
    function once took are gone; build a config with {!Config.make}. *)

val run : t -> (ctx -> 'a) -> 'a
(** Execute a main task to completion. [run] is sugar over the ingress:
    the job goes through the same injection lanes as any
    {!Submit.submit}.

    On a non-server pool, it must be called from the domain that created
    the pool (which acts as worker 0) and not from inside task code; the
    call is {e privileged} — if the lane is full the caller helps drain
    until a slot frees, so [run] is never rejected by backpressure — and
    the calling domain then drains and steals until the job completes
    (the common case is that its first drain runs the job right here,
    synchronously, exactly as before the ingress existed).

    On a [server] pool the caller is not a worker; [run pool f] is
    [Submit.await (Submit.submit pool f)] and blocks the calling domain
    without executing tasks on it.

    If the computation raises, every task it left outstanding is joined
    or drained first, so the pool is quiescent — and reusable — when the
    exception (re-raised with its original backtrace) reaches the
    caller. Raises [Invalid_argument] after {!shutdown}, and
    {!Submission_rejected} if a concurrent {!shutdown} drained the job
    before a worker took it. *)

val shutdown : t -> unit
(** Stop and join the worker domains (and the watchdog domain, if any),
    then drain the injection lanes, resolving every still-queued ticket
    rejected — a submitter racing this call gets
    {!Submission_rejected} (or [None] from [try_submit]),
    deterministically and without hanging, never a stranded ticket.
    Idempotent: repeated calls are no-ops. Subsequent {!run}/{!spawn}
    calls raise [Invalid_argument]; subsequent submissions reject. *)

val with_pool : ?config:Config.t -> (t -> 'a) -> 'a
(** Create a pool, run [f], and shut the pool down (also on
    exceptions). *)

(** {2 External submission}

    The ingress surface: any domain — not just the pool's creator — may
    inject work. Producers get a ['a ticket] per job; workers treat the
    injection lanes as extra steal victims in their idle loop (after
    local pops, before remote steals), so injected jobs never perturb
    the private-task fast path. *)
module Submit : sig
  type 'a ticket
  (** Producer-side handle on one injected job. Resolution is
      exactly-once: done (with the job's result or exception) or
      rejected. *)

  exception Rejected
  (** Alias of {!Submission_rejected}. *)

  exception Expired
  (** Alias of {!Submission_expired}. *)

  exception Cancelled
  (** Alias of {!Cancel.Cancelled}. *)

  val submit :
    ?idempotent:bool ->
    ?deadline:int ->
    ?cancel:Cancel.t ->
    t ->
    (ctx -> 'a) ->
    'a ticket
  (** Queue one job, honouring the pool's {!type:admission} policy when
      the lane is full ([Block] waits — aborting rejected if the pool
      stops — [Reject]/[Adaptive] resolve the ticket rejected
      immediately, [Shed_oldest] evicts the oldest queued job to make
      room; [Adaptive] additionally rejects at the door while the
      sojourn EWMA is above target and a backlog exists). Safe from any
      domain, including concurrently with {!shutdown}: the ticket
      always resolves.

      [~deadline] (absolute, in [Wool_util.Clock.now_ns] nanoseconds —
      see {!deadline_in}) stamps the job: a worker dequeuing it after
      the deadline drops it unrun and the ticket resolves expired.
      [~cancel] attaches a {!Cancel.t} token: if the token is set when
      a worker dequeues the job, it is dropped unrun and the ticket
      resolves cancelled; while the job runs, the token is the ambient
      token of its task tree (checked at every {!spawn}, readable via
      {!cancel_token}), and a body that observes it — or raises
      {!Cancel.Cancelled} itself — settles the ticket cancelled.
      Settlement is first-writer-wins in every mode: a cancel racing
      the job's completion resolves the ticket exactly once.

      On a relaxed-mode pool the job body may run more than once;
      [~idempotent:true] (default [false]) is the submitter's
      acknowledgement, and omitting it there raises [Invalid_argument]
      before any state changes. The ticket itself still resolves
      exactly once — the first completion wins, duplicates are dropped —
      so [await]/[poll] never observe two results. Never raises on
      exactly-once pools. *)

  val try_submit :
    ?idempotent:bool ->
    ?deadline:int ->
    ?cancel:Cancel.t ->
    t ->
    (ctx -> 'a) ->
    'a ticket option
  (** One-shot admission: [None] instead of waiting/shedding when the
      lane is full (whatever the admission policy), the [Adaptive]
      controller is shedding, the ingress is closed, or the pool is
      stopping. [Some tk] means admitted. [?idempotent], [?deadline],
      [?cancel] as for {!submit}. *)

  val submit_batch :
    ?idempotent:bool ->
    ?deadline:int ->
    ?cancel:Cancel.t ->
    t ->
    (ctx -> 'a) list ->
    'a ticket list
  (** Submit a batch through a single lane pick, so consecutive elements
      land in the same lane and a draining worker takes them without
      re-probing. Each element gets its own ticket and is admitted
      independently (under [Reject], a full lane can reject a suffix of
      the batch); [?deadline]/[?cancel] apply to every element (one
      token may cancel the whole batch). [?idempotent] as for
      {!submit}. *)

  val submit_retry :
    ?idempotent:bool ->
    ?deadline:int ->
    ?cancel:Cancel.t ->
    ?attempts:int ->
    ?backoff_ns:int ->
    ?seed:int ->
    t ->
    (ctx -> 'a) ->
    'a ticket
  (** {!submit}, retrying admission-time rejections with exponential
      backoff and jitter: after the [k]-th rejection the producer
      sleeps [backoff_ns * 2^k] (default base 200µs) plus a jittered
      fraction, then resubmits, up to [attempts] (default 4) total
      tries. The jitter stream is derived from [seed] (default 0), so
      a given seed retries deterministically. Returns the first
      admitted ticket, or the last rejected one when every attempt was
      refused; a stopping pool cuts the loop short. Only admission-time
      rejections retry — [Shed_oldest] evictions and shutdown drains
      happen after this function returned. Raises [Invalid_argument] if
      [attempts < 1]. *)

  val await : 'a ticket -> 'a
  (** Block until the ticket resolves; returns the job's result,
      re-raises its exception (with the backtrace captured where the job
      body raised, on whichever worker ran it), or raises {!Rejected} /
      {!Expired} / {!Cancelled} for the corresponding drops. Idempotent
      — repeated [await]s of a resolved ticket return the same outcome.
      Do not call from inside task code on a non-server pool: a worker
      blocked on a ticket is a worker not draining lanes. *)

  val await_for : 'a ticket -> float -> 'a option
  (** [await_for tk seconds]: {!await} with a producer-side timeout.
      [None] if the ticket is still pending when the timeout elapses
      (the job itself is unaffected — await again, or cancel its
      token). Like {!await}, raises for rejected/expired/cancelled
      outcomes that resolve within the window. *)

  val await_until : 'a ticket -> deadline:int -> 'a option
  (** {!await_for} against an absolute deadline (in
      [Wool_util.Clock.now_ns] nanoseconds). *)

  val poll :
    'a ticket ->
    [ `Pending | `Done of ('a, exn) result | `Rejected | `Cancelled | `Expired ]
  (** Non-blocking status read. [`Done] carries the result or the
      exception (without its backtrace — use {!await} to re-raise
      faithfully). *)

  val deadline_in : float -> int
  (** [deadline_in seconds]: an absolute [~deadline] value that many
      seconds from now. *)
end

type ingress_stats = {
  submitted : int;  (** tickets created: every [submit]/[try_submit] *)
  admitted : int;  (** submissions that won a lane slot *)
  rejected : int;
      (** resolved rejected {e at admission} (full-lane [Reject], an
          [Adaptive] shed, closed ingress, shutdown) *)
  shed : int;
      (** admitted jobs evicted before execution ([Shed_oldest] or the
          {!shutdown} drain) *)
  executed : int;
      (** jobs that ran to completion (a result or an ordinary
          exception) — settlement-based, so a job cancelled mid-run
          counts under [cancelled], not here *)
  expired : int;  (** admitted jobs dropped unrun at their deadline *)
  cancelled : int;
      (** jobs resolved cancelled: dropped unrun at dequeue with their
          token set, or settled by a cooperative mid-run cancel *)
  inflight : int;  (** admitted, not yet settled *)
}
(** Always [submitted = admitted + rejected] and
    [admitted = executed + shed + expired + cancelled + inflight] once
    quiescent ({!Invariants.check} enforces both). *)

val ingress_stats : t -> ingress_stats
(** Exact once quiescent; racy-but-monotone snapshots otherwise. *)

val spawn : ctx -> (ctx -> 'a) -> 'a future
(** Make a task available for stealing (or for later inlining) on the
    calling worker. Raises [Invalid_argument] after {!shutdown} and
    {!Pool_overflow} when the worker's task pool is full (before any
    state changes — see the exception's doc).

    If the worker is running a submission that carried a cancel token
    and that token is set, raises {!Cancel.Cancelled} instead of
    spawning: a cancelled job's task tree stops fanning out at the next
    spawn boundary, and the runtime settles its ticket cancelled. (The
    ambient token follows the job on the worker that drained it; a
    subtree stolen by another worker checks only its own cooperative
    polls.)

    On a relaxed-mode pool ([Ws_mult] / [Lowsync]) this raises
    [Invalid_argument]: those modes may execute a task body more than
    once, so the caller must assert idempotence with
    {!spawn_idempotent}. *)

val spawn_idempotent : ctx -> (ctx -> 'a) -> 'a future
(** Like {!spawn}, but the caller asserts the task body is idempotent —
    safe to execute more than once, including concurrently with itself.
    This is the only spawn accepted on relaxed-mode pools. The future
    still resolves exactly once ({!join} returns one result); only the
    {e body} may run multiple times. On exactly-once pools this is
    identical to {!spawn}. *)

val join : ctx -> 'a future -> 'a
(** Join with the most recent unjoined [spawn] of this worker. Raises
    [Invalid_argument] if called out of LIFO order or from another worker.

    If the task body raised — locally or on a thief — the exception is
    re-raised here with the backtrace captured at the original raise
    point ({!Printexc.raise_with_backtrace}); before that, any children
    the failing body had spawned and not yet joined are joined or
    drained, so no orphan task outlives its parent's frame. *)

val call : ctx -> (ctx -> 'a) -> 'a
(** An ordinary call, for symmetry with the paper's CALL. *)

val cancel_token : ctx -> Cancel.t option
(** The cancel token of the submission this worker is currently
    running, if it carried one — for long-running bodies that want to
    poll cooperatively ([Option.iter Cancel.check]) between spawn
    boundaries. *)

val steal_pressure : ctx -> bool
(** Hunger poll for lazy splitters: [true] when thieves appear to be
    after this worker's work, so a running task holding a divisible
    range should carve off a stealable half now rather than keep
    iterating. Direct modes read the trip-wire / thief-activity state
    the task stack already maintains (a sprung publish request, or
    steal-attempt counters that moved since this worker's previous
    poll — failed probes included, which is what lets an all-private
    leaf notice hungry thieves at all). [Locked]/[Clev] have no trip
    wire and report an emptied deque instead; the relaxed modes track
    neither and conservatively report [true] whenever another worker
    exists. Always [false] on a single-worker pool. Cheap (at most two
    atomic loads); call it between chunks of leaf work, not per
    element. Must be called from the worker's own task code. *)

(* Introspection *)

val self_id : ctx -> int
val num_workers : t -> int
val mode : t -> mode

val policy : t -> Wool_policy.t
(** The steal policy this pool runs (victim selection + idle backoff). *)

val policy_name : t -> string
(** [Wool_policy.name (policy pool)], for report labels. *)

val pool_of_ctx : ctx -> t

type stats = {
  spawns : int;
  max_pool_depth : int;
      (** deepest per-worker direct-stack occupancy (direct modes only) —
          the §I space measure *)
  inlined_private : int;
  inlined_public : int;
  joins_stolen : int;
  steals : int;  (** successful steals, summed over thieves *)
  leap_steals : int;  (** steals performed while leapfrogging *)
  backoffs : int;  (** §III-A delayed-thief back-offs *)
  failed_steals : int;
  publish_events : int;
  privatize_events : int;
  injected : int;
      (** injected jobs this worker drained from the lanes and ran *)
  self_joins : int;
      (** relaxed modes only: joins that found the child neither in the
          local pool nor completed, and ran the body in place (the
          wait-free rescue path — covers tasks the fence-free protocol
          lost or that a thief is still running) *)
  dup_takes : int;
      (** relaxed modes only: extractions (steal or take) that found the
          task already completed and dropped it — each one is a
          duplicate delivery the completion flag suppressed *)
}

(** Scheduler counters. Workers count locally without synchronisation;
    readers see exact values once the pool is quiescent (between {!run}s),
    racy-but-monotone snapshots otherwise. *)
module Stats : sig
  val per_worker : t -> stats array
  (** One record per worker id — the per-event-source view the aggregate
      cannot reconstruct. *)

  val aggregate : t -> stats
  (** Combined over workers since creation or the last {!reset}. *)

  val policy_name : t -> string
  (** Name of the steal policy the counters were collected under, so a
      stats row can be labelled per policy in sweeps. *)

  val reset : t -> unit
  (** Zero the worker counters {e and} the ingress counters
      ({!ingress_stats}), so the {!Invariants.check} balance is relative
      to one reset point. *)

  val zero : stats

  val combine : stats -> stats -> stats
  (** Counter-wise sum; [max_pool_depth] (a high-water mark) combines with
      [max]. *)

  val pp : Format.formatter -> stats -> unit
  val to_json : stats -> string

  type nonrec t = stats
end

(* Tracing *)

val trace_enabled : t -> bool

val trace_per_worker : t -> Wool_trace.Event.t array array
(** Snapshot each worker's ring, oldest event first. Snapshots are meant
    to be taken at {!run} boundaries: worker 0's ring is then exact; thief
    rings may still gain idle events (steal attempts, naps) concurrently,
    which the ring-level snapshot degrades gracefully around (see
    {!Wool_trace.Ring.snapshot}). After {!shutdown}, everything is exact. *)

val trace_ingress : t -> Wool_trace.Event.t array
(** Producer-side events ([Submit]/[Admit]/[Reject]), recorded in a
    dedicated mutex-guarded ring because submitters are not workers.
    Stamped with the pseudo-worker id [num_workers pool] so they never
    collide with a real worker's stream. (Workers' [Dequeue_injected]
    events live in the per-worker rings.) *)

val trace_events : t -> Wool_trace.Event.t array
(** All workers' events — and the ingress ring's — merged into one
    timestamp-sorted stream (stable: per-source order is preserved among
    equal timestamps). *)

val trace_dropped : t -> int
(** Events lost to ring overflow, summed over workers and the ingress
    ring. *)

val trace_clear : t -> unit
(** Reset all rings (and their drop counts). Call only while quiescent. *)

(* Fault injection *)

val faults_enabled : t -> bool
val fault_plan : t -> Wool_fault.Plan.t option

val fault_stats : t -> Wool_fault.Stats.t
(** Fault fires so far, summed over workers and the ingress injector
    (site × kind class). Exact while quiescent, like {!Stats}. *)

(** Protocol-invariant checker, for the fault-injection stress harness.
    Only meaningful on a quiescent pool (between {!run}s): everything in
    flight looks like a violation. *)
module Invariants : sig
  val check : t -> string list
  (** Human-readable violations, [[]] when clean. Checks, per worker:
      every direct-stack descriptor EMPTY with [top = bot = 0] and
      payloads reset; both queue deques empty; no outstanding queued
      children. Then the ingress: every injection lane empty, no
      in-flight submissions, [submitted = admitted + rejected] and
      [admitted = executed + shed + expired + cancelled]. Then
      globally: spawn/join/steal
      counter balance for the pool's mode (direct modes: [spawns =
      inlined + joins_stolen] and [joins_stolen = steals]; queue modes:
      [spawns = inlined + steals]; relaxed modes: [spawns = inlined +
      joins_stolen] exactly, and [inlined + steals + self_joins >=
      spawns] — an inequality because duplicate executions are legal
      there). The balance is relative to the last {!Stats.reset}. *)

  val check_exn : t -> unit
  (** Raises [Failure] listing the violations, if any. *)
end

val layout_check : t -> string list
(** Cache-layout regression check: every worker's hot-counter block and
    the padded pieces of its direct stack (owner block, shared atomics,
    per-descriptor state words) occupy whole cache lines. Returns
    human-readable violations, [[]] when clean. Scans every descriptor;
    test-path only. *)

(* Stall watchdog *)

val stall_report : t -> string
(** A diagnostic JSON object: pool mode and policy, the ingress state
    (lane occupancy and {!ingress_stats} counters), and per worker the
    progress counter, direct-stack occupancy with live descriptor
    states, queue sizes, outstanding children, scheduler counters, and
    the tail of the trace ring (when tracing is on). Valid JSON by
    construction ({!Wool_trace.Json.validate} accepts it); safe to call
    at any time — concurrent readings are racy snapshots. *)

val set_on_stall : t -> (string -> unit) -> unit
(** Replace the watchdog's report sink (default: print to stderr). The
    callback runs on the watchdog domain; exceptions it raises are
    swallowed. *)

val stalls_fired : t -> int
(** Stall reports emitted since pool creation. The watchdog samples
    whenever the pool is active {e or} has in-flight submissions, so a
    stalled server pool is caught even with no [run] in progress. *)
