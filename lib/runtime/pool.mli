(** The Wool runtime: pools of domain workers with work stealing.

    A pool owns [workers] domains. The calling domain acts as worker 0 and
    executes the main task via {!run}; the remaining domains are thieves
    that steal and execute public tasks. The programming model is the
    paper's SPAWN / CALL / JOIN (Figure 2): [spawn] pushes a task on the
    calling worker's pool, the caller then typically does ordinary recursive
    calls, and [join] — which must be made in LIFO order — either inlines
    the task with a direct typed call or, if it was stolen, leapfrogs
    (steals only from the thief) until the thief completes it.

    The [mode] selects the synchronisation strategy and reproduces the
    optimisation ladder of Table II plus two conventional baselines:

    - [Locked]: per-worker lock taken at join and steal, no per-descriptor
      state (the paper's "base" row).
    - [Swap_generic]: atomic exchange on the descriptor state, but joins go
      through the generic wrapper and the result cell ("synchronize on
      task").
    - [Task_specific]: as above, but an inlined join calls the typed task
      function directly ("task specific join").
    - [Private]: adds private task descriptors with the trip-wire scheme
      ("private tasks"); the default.
    - [Clev]: a Chase–Lev pointer deque with random (non-leapfrog) stealing
      on blocked joins — the conventional steal-child baseline (TBB-like),
      exhibiting the buried-join behaviour discussed in §I. *)

type t
type ctx
(** The executing worker; threaded explicitly through task code (no
    domain-local lookup on the hot path). *)

type 'a future

type mode = Locked | Swap_generic | Task_specific | Private | Clev

type publicity = Wool_deque.Direct_stack.publicity =
  | All_private
  | All_public
  | Adaptive of int

exception Pool_overflow
(** Raised by {!spawn} when the calling worker's task pool is at
    [Config.capacity] (same exception as
    {!Wool_deque.Direct_stack.Pool_overflow}). Raised before any pool
    state is mutated, so the counters stay balanced, the pool remains
    usable, and the spawn unwinds like an ordinary task-body exception
    in every mode. *)

(** Pool configuration as a first-class value.

    [create] had grown a long tail of positional optional arguments that
    wrapper layers forwarded inconsistently; a config record travels as one
    value instead, and [with_pool ~config] forwards {e every} setting by
    construction. *)
module Config : sig
  type t = {
    workers : int option;
        (** [None] = [Domain.recommended_domain_count ()] *)
    mode : mode;
    publicity : publicity;  (** direct modes only *)
    capacity : int;  (** max simultaneous descriptors per worker *)
    lock_mode : [ `Base | `Peek | `Trylock ];
        (** §IV-C stealing discipline, [Locked] mode only *)
    idle_nap_ns : int;
        (** one nap unit for the idle-backoff policy: how long an idle
            thief sleeps per {!Wool_policy.Backoff.Nap} factor
            (0 = pure spinning); keeps over-subscribed pools live *)
    seed : int;  (** victim-selection RNG seed *)
    trace : bool;  (** record scheduler events into per-worker rings *)
    trace_capacity : int;
        (** events retained per worker ring (rounded up to a power of
            two); overflow drops oldest-first *)
    steal_policy : Wool_policy.Selector.t;
        (** victim selection for unpinned steals (leapfrogging stays
            pinned to the thief regardless); default
            [Random_victim] — the historical behaviour *)
    backoff : Wool_policy.Backoff.t;
        (** idle behaviour after failed steals; default [Nap_after 64] —
            the historical nap-after-64-failures loop *)
    faults : Wool_fault.Plan.t option;
        (** deterministic fault injection (default [None] = hooks compile
            to one dead branch per site; [Some Plan.none] = hooks live
            but no rules, the dispatch-overhead measurement case) *)
    watchdog_interval_ns : int;
        (** stall-watchdog sampling period (default 5ms) *)
    watchdog_stalls : int;
        (** consecutive no-progress samples before the watchdog reports
            a stalled worker; 0 (the default) disables the watchdog —
            no extra domain is spawned *)
  }

  val default : t
  (** [Private] mode, [Adaptive 4] publicity, auto worker count, tracing
      off, random victims with nap-after-64 backoff — the same defaults
      the optional arguments always had. *)

  val make :
    ?workers:int ->
    ?mode:mode ->
    ?publicity:publicity ->
    ?capacity:int ->
    ?lock_mode:[ `Base | `Peek | `Trylock ] ->
    ?idle_nap_ns:int ->
    ?seed:int ->
    ?trace:bool ->
    ?trace_capacity:int ->
    ?policy:Wool_policy.t ->
    ?steal_policy:Wool_policy.Selector.t ->
    ?backoff:Wool_policy.Backoff.t ->
    ?faults:Wool_fault.Plan.t ->
    ?watchdog_interval_ns:int ->
    ?watchdog_stalls:int ->
    unit ->
    t
  (** Builder over {!default}; omitted arguments keep the default.
      [?policy] sets [steal_policy] and [backoff] from one
      {!Wool_policy.t} value — the same value {!Wool_sim.Engine.run}
      accepts — and the two per-field arguments override it. *)

  val override :
    t ->
    ?workers:int ->
    ?mode:mode ->
    ?publicity:publicity ->
    ?capacity:int ->
    ?lock_mode:[ `Base | `Peek | `Trylock ] ->
    ?idle_nap_ns:int ->
    ?seed:int ->
    ?trace:bool ->
    ?trace_capacity:int ->
    ?policy:Wool_policy.t ->
    ?steal_policy:Wool_policy.Selector.t ->
    ?backoff:Wool_policy.Backoff.t ->
    ?faults:Wool_fault.Plan.t ->
    ?watchdog_interval_ns:int ->
    ?watchdog_stalls:int ->
    unit ->
    t
  (** [override c] is {!make} with [c] as the base instead of
      {!default}: provided arguments replace the corresponding fields,
      omitted ones keep [c]'s. This is what layers the deprecated
      [create] shims over a config. *)

  val policy : t -> Wool_policy.t
  (** The [steal_policy]/[backoff] pair as one {!Wool_policy.t}. *)

  val with_policy : Wool_policy.t -> t -> t
  (** Replace both policy fields from one {!Wool_policy.t}. *)

  val mode_name : mode -> string
  (** Lower-case label ("locked", "private", ...) for report rows. *)

  val pp : Format.formatter -> t -> unit
end

val create :
  ?config:Config.t ->
  ?workers:int ->
  ?mode:mode ->
  ?publicity:publicity ->
  ?capacity:int ->
  ?lock_mode:[ `Base | `Peek | `Trylock ] ->
  ?idle_nap_ns:int ->
  ?seed:int ->
  ?trace:bool ->
  unit ->
  t
(** Create a pool from [config] (default {!Config.default}). The remaining
    optional arguments are compatibility shims layered on top of [config]:
    each one provided overrides the corresponding config field.

    @deprecated the per-setting optional arguments; pass [?config] built
    with {!Config.make} in new code. *)

val run : t -> (ctx -> 'a) -> 'a
(** Execute a main task on worker 0 (the calling domain). Must be called
    from the domain that created the pool, and not from inside task code.
    Can be called repeatedly.

    If the computation raises, every task it left outstanding is joined
    or drained first, so the pool is quiescent — and reusable — when the
    exception (re-raised with its original backtrace) reaches the
    caller. Raises [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Stop and join the worker domains (and the watchdog domain, if any).
    Idempotent: repeated calls are no-ops. Subsequent {!run}/{!spawn}
    calls raise [Invalid_argument]. *)

val with_pool :
  ?config:Config.t ->
  ?workers:int ->
  ?mode:mode ->
  ?publicity:publicity ->
  ?capacity:int ->
  ?lock_mode:[ `Base | `Peek | `Trylock ] ->
  ?idle_nap_ns:int ->
  ?seed:int ->
  ?trace:bool ->
  (t -> 'a) ->
  'a
(** Create a pool, run [f], and shut the pool down (also on exceptions).
    Forwards every setting of {!create}, config and shims alike. *)

val spawn : ctx -> (ctx -> 'a) -> 'a future
(** Make a task available for stealing (or for later inlining) on the
    calling worker. Raises [Invalid_argument] after {!shutdown} and
    {!Pool_overflow} when the worker's task pool is full (before any
    state changes — see the exception's doc). *)

val join : ctx -> 'a future -> 'a
(** Join with the most recent unjoined [spawn] of this worker. Raises
    [Invalid_argument] if called out of LIFO order or from another worker.

    If the task body raised — locally or on a thief — the exception is
    re-raised here with the backtrace captured at the original raise
    point ({!Printexc.raise_with_backtrace}); before that, any children
    the failing body had spawned and not yet joined are joined or
    drained, so no orphan task outlives its parent's frame. *)

val call : ctx -> (ctx -> 'a) -> 'a
(** An ordinary call, for symmetry with the paper's CALL. *)

(* Introspection *)

val self_id : ctx -> int
val num_workers : t -> int
val mode : t -> mode

val policy : t -> Wool_policy.t
(** The steal policy this pool runs (victim selection + idle backoff). *)

val policy_name : t -> string
(** [Wool_policy.name (policy pool)], for report labels. *)

val pool_of_ctx : ctx -> t

type stats = {
  spawns : int;
  max_pool_depth : int;
      (** deepest per-worker direct-stack occupancy (direct modes only) —
          the §I space measure *)
  inlined_private : int;
  inlined_public : int;
  joins_stolen : int;
  steals : int;  (** successful steals, summed over thieves *)
  leap_steals : int;  (** steals performed while leapfrogging *)
  backoffs : int;  (** §III-A delayed-thief back-offs *)
  failed_steals : int;
  publish_events : int;
  privatize_events : int;
}

(** Scheduler counters. Workers count locally without synchronisation;
    readers see exact values once the pool is quiescent (between {!run}s),
    racy-but-monotone snapshots otherwise. *)
module Stats : sig
  val per_worker : t -> stats array
  (** One record per worker id — the per-event-source view the aggregate
      cannot reconstruct. *)

  val aggregate : t -> stats
  (** Combined over workers since creation or the last {!reset}. *)

  val policy_name : t -> string
  (** Name of the steal policy the counters were collected under, so a
      stats row can be labelled per policy in sweeps. *)

  val reset : t -> unit

  val zero : stats

  val combine : stats -> stats -> stats
  (** Counter-wise sum; [max_pool_depth] (a high-water mark) combines with
      [max]. *)

  val pp : Format.formatter -> stats -> unit
  val to_json : stats -> string

  type nonrec t = stats
end

val stats : t -> stats
(** Alias for {!Stats.aggregate}, kept for source compatibility.
    @deprecated use {!Stats.aggregate}. *)

val reset_stats : t -> unit
(** Alias for {!Stats.reset}. @deprecated use {!Stats.reset}. *)

(* Tracing *)

val trace_enabled : t -> bool

val trace_per_worker : t -> Wool_trace.Event.t array array
(** Snapshot each worker's ring, oldest event first. Snapshots are meant
    to be taken at {!run} boundaries: worker 0's ring is then exact; thief
    rings may still gain idle events (steal attempts, naps) concurrently,
    which the ring-level snapshot degrades gracefully around (see
    {!Wool_trace.Ring.snapshot}). After {!shutdown}, everything is exact. *)

val trace_events : t -> Wool_trace.Event.t array
(** All workers' events merged into one timestamp-sorted stream (stable:
    per-worker order is preserved among equal timestamps). *)

val trace_dropped : t -> int
(** Events lost to ring overflow, summed over workers. *)

val trace_clear : t -> unit
(** Reset all rings (and their drop counts). Call only while quiescent. *)

(* Fault injection *)

val faults_enabled : t -> bool
val fault_plan : t -> Wool_fault.Plan.t option

val fault_stats : t -> Wool_fault.Stats.t
(** Fault fires so far, summed over workers (site × kind class). Exact
    while quiescent, like {!Stats}. *)

(** Protocol-invariant checker, for the fault-injection stress harness.
    Only meaningful on a quiescent pool (between {!run}s): everything in
    flight looks like a violation. *)
module Invariants : sig
  val check : t -> string list
  (** Human-readable violations, [[]] when clean. Checks, per worker:
      every direct-stack descriptor EMPTY with [top = bot = 0] and
      payloads reset; both queue deques empty; no outstanding queued
      children. Then globally: spawn/join/steal counter balance for the
      pool's mode (direct modes: [spawns = inlined + joins_stolen] and
      [joins_stolen = steals]; queue modes: [spawns = inlined +
      steals]). The balance is relative to the last {!Stats.reset}. *)

  val check_exn : t -> unit
  (** Raises [Failure] listing the violations, if any. *)
end

val layout_check : t -> string list
(** Cache-layout regression check: every worker's hot-counter block and
    the padded pieces of its direct stack (owner block, shared atomics,
    per-descriptor state words) occupy whole cache lines. Returns
    human-readable violations, [[]] when clean. Scans every descriptor;
    test-path only. *)

(* Stall watchdog *)

val stall_report : t -> string
(** A diagnostic JSON object: pool mode and policy, and per worker the
    progress counter, direct-stack occupancy with live descriptor
    states, queue sizes, outstanding children, scheduler counters, and
    the tail of the trace ring (when tracing is on). Valid JSON by
    construction ({!Wool_trace.Json.validate} accepts it); safe to call
    at any time — concurrent readings are racy snapshots. *)

val set_on_stall : t -> (string -> unit) -> unit
(** Replace the watchdog's report sink (default: print to stderr). The
    callback runs on the watchdog domain; exceptions it raises are
    swallowed. *)

val stalls_fired : t -> int
(** Stall reports emitted since pool creation. *)
