(* The single source of truth for pool modes. Everything that used to be
   hand-rolled per consumer — the constructor list, the name table, the
   parse table, the "all modes" sweeps in tests/bench/fuzz — lives here,
   together with the one property that changes the API contract: the
   execution guarantee. *)

type t =
  | Locked
  | Swap_generic
  | Task_specific
  | Private
  | Clev
  | Ws_mult
  | Lowsync

type guarantee = Exactly_once | At_least_once

let all =
  [ Locked; Swap_generic; Task_specific; Private; Clev; Ws_mult; Lowsync ]

let name = function
  | Locked -> "locked"
  | Swap_generic -> "swap_generic"
  | Task_specific -> "task_specific"
  | Private -> "private"
  | Clev -> "clev"
  | Ws_mult -> "ws_mult"
  | Lowsync -> "lowsync"

(* Accept the canonical names plus the hyphenated spellings the bench
   reports have historically printed. *)
let of_name s =
  match String.lowercase_ascii s with
  | "locked" -> Some Locked
  | "swap_generic" | "swap-generic" | "swap" -> Some Swap_generic
  | "task_specific" | "task-specific" -> Some Task_specific
  | "private" -> Some Private
  | "clev" | "chase-lev" | "chase_lev" -> Some Clev
  | "ws_mult" | "ws-mult" -> Some Ws_mult
  | "lowsync" | "low-sync" | "low_sync" -> Some Lowsync
  | _ -> None

let guarantee = function
  | Locked | Swap_generic | Task_specific | Private | Clev -> Exactly_once
  | Ws_mult | Lowsync -> At_least_once

let is_relaxed m = guarantee m = At_least_once

(* Modes built on the paper's direct task stack (descriptor vocabulary,
   trip wire, leapfrogging). *)
let is_direct = function
  | Swap_generic | Task_specific | Private -> true
  | Locked | Clev | Ws_mult | Lowsync -> false

let guarantee_name = function
  | Exactly_once -> "exactly-once"
  | At_least_once -> "at-least-once"

let describe = function
  | Locked -> "mutex-protected deque (baseline)"
  | Swap_generic -> "direct task stack, generic swap joins"
  | Task_specific -> "direct task stack, task-specific joins"
  | Private -> "direct task stack with private tasks (the paper's protocol)"
  | Clev -> "Chase-Lev dynamic circular deque"
  | Ws_mult -> "fence-free read/write pool with multiplicity"
  | Lowsync -> "low-synchronization pool (one CAS per steal)"
