type sync = Nolock_state | Lock of [ `Base | `Peek | `Trylock ]
type blocked_join = Leapfrog | Random_steal | Plain_wait
type publicity = All_public | Adaptive of int

type flavor =
  | Steal_child of {
      sync : sync;
      blocked_join : blocked_join;
      publicity : publicity;
    }
  | Steal_parent
  | Loop_static

type t = {
  name : string;
  flavor : flavor;
  costs : Costs.t;
  steal : Wool_policy.t option;
}

let v ~name ~flavor ~costs () = { name; flavor; costs; steal = None }

let with_steal sp p =
  { p with steal = Some sp; name = p.name ^ "+" ^ Wool_policy.name sp }

let wool =
  v ~name:"Wool"
    ~flavor:
      (Steal_child
         { sync = Nolock_state; blocked_join = Leapfrog; publicity = Adaptive 4 })
    ~costs:Costs.wool ()

let wool_all_public =
  v ~name:"Wool(all-public)"
    ~flavor:
      (Steal_child
         { sync = Nolock_state; blocked_join = Leapfrog; publicity = All_public })
    ~costs:Costs.wool ()

let cilk = v ~name:"Cilk++" ~flavor:Steal_parent ~costs:Costs.cilk ()

let tbb =
  v ~name:"TBB"
    ~flavor:
      (Steal_child
         {
           sync = Nolock_state;
           blocked_join = Random_steal;
           publicity = All_public;
         })
    ~costs:Costs.tbb ()

let openmp_tasks =
  v ~name:"OpenMP"
    ~flavor:
      (Steal_child
         {
           sync = Lock `Peek;
           blocked_join = Random_steal;
           publicity = All_public;
         })
    ~costs:Costs.openmp ()

let openmp_loop = v ~name:"OpenMP" ~flavor:Loop_static ~costs:Costs.openmp ()

let locked mode name =
  v ~name
    ~flavor:
      (Steal_child
         { sync = Lock mode; blocked_join = Leapfrog; publicity = All_public })
    ~costs:Costs.locked_ladder ()

let lock_base = locked `Base "base"
let lock_peek = locked `Peek "peek"
let lock_trylock = locked `Trylock "trylock"

let nolock =
  v ~name:"nolock"
    ~flavor:
      (Steal_child
         { sync = Nolock_state; blocked_join = Leapfrog; publicity = All_public })
    (* the direct task stack with every descriptor public: exactly the
       calibrated Wool costs (C2 = 2 235), which keeps the ladder
       consistent with Table III *)
    ~costs:Costs.wool ()
