(** Discrete-event multicore simulator.

    Executes a {!Wool_ir.Task_tree} on [workers] virtual cores under a
    {!Policy.t}. Each virtual worker owns a clock; a global queue orders
    workers by the time of their next step; one scheduler-relevant step
    (work segment, spawn, join attempt, steal attempt) is processed per
    event, so everything thieves can observe is causally consistent.
    Victim-side serialisation is modelled by a per-worker "line free at"
    timestamp: a steal (or locked join) arriving while the victim's lock or
    descriptor cache line is held waits for it, which is what makes steal
    costs grow super-linearly with the number of thieves, as in Table III.

    The simulation is deterministic: victim selection draws from a
    generator seeded by [seed], and ties in the event queue resolve in
    insertion order. *)

type category = TR | LA | NA | ST | LF
(** CPU-time categories of Figure 6: startup/shutdown, application code
    acquired through leapfrogging, other application code, stealing, and
    leapfrogging costs. *)

val n_categories : int
val category_index : category -> int
val category_name : category -> string

type victim_selection = Wool_policy.Selector.t =
  | Random_victim  (** uniform among the other workers (the default) *)
  | Round_robin  (** cyclic scan (ablation) *)
  | Last_victim  (** stick to the last successful victim (ablation) *)
  | Leapfrog_biased
      (** prefer the recorded thief of our own stolen tasks (ablation) *)
  | Socket_local
      (** prefer victims on our own socket 3 probes out of 4 (ablation;
          meaningful with [~sockets] > 1) *)
  | Hierarchical of Wool_policy.Hier.t
      (** near-first probing over a {!Wool_policy.Topology.t} with
          per-level escalation and steal-back — the locality-aware
          selector *)
(** Victim-selection flavours, shared with the real runtime: this is a
    re-export of {!Wool_policy.Selector.t}, so the same constructors (and
    a full {!Wool_policy.t}) configure both the simulator and
    [Wool.Config]. *)

type result = {
  time : int;  (** completion time of the root task, virtual cycles *)
  steals : int;  (** successful task/continuation migrations, [N_M] *)
  failed_steals : int;
  leap_steals : int;  (** steals made while blocked at a join *)
  remote_steals : int;
      (** successful steals whose thief and victim sit on different
          sockets of the run's topology (0 on a single socket) *)
  breakdown : int array array;  (** [workers x n_categories] cycles *)
  work : int;  (** Work cycles executed (= [Task_tree.work], checked) *)
  events : int;
  trace_hash : int;  (** determinism fingerprint of the event stream *)
  max_pool_depth : int;
      (** deepest per-worker task/continuation pool over the run — the
          section-I space comparison between steal-child and steal-parent *)
}

val run :
  ?seed:int -> ?max_events:int -> ?victim_selection:victim_selection ->
  ?steal_policy:Wool_policy.t -> ?nap_cycles:int -> ?trace:Trace.t ->
  ?steal_batch:int -> ?sockets:int -> ?topology:Wool_policy.Topology.t ->
  policy:Policy.t -> workers:int -> Wool_ir.Task_tree.t -> result
(** Simulate to completion. Raises [Invalid_argument] for [workers <= 0] or
    a [Loop_static] policy (use {!Loop_sim}), and [Failure] if [max_events]
    (default 2_000_000_000) is exceeded. Passing [trace] records a
    {!Trace} Gantt of the run (determinism makes the two-pass
    run-then-trace workflow exact). [steal_batch > 1] enables batch
    stealing (the steal-half family the paper cites): a successful
    steal-child steal also takes up to [steal_batch - 1] further public
    tasks, queued for local execution on the thief.

    [topology] pins the machine shape used for steal-communication
    scaling (same-core discount / cross-socket surcharge via
    {!Costs.t.core_factor_pct} and {!Costs.t.remote_factor_pct}) and for
    the [Socket_local] selector's socket map; its worker count must
    equal [workers]. Without it, [sockets] (default 1) builds the
    historical contiguous-block topology (worker [w] on socket
    [w * sockets / workers], no SMT), bit-for-bit preserving every
    pre-topology run.

    [steal_policy] (defaulting to [policy.steal]) supplies a full
    {!Wool_policy.t}: its selector replaces [victim_selection] and its
    backoff is modelled on failed steal attempts — [Yield] costs one poll,
    [Nap f] advances the idle worker's clock by [f * nap_cycles] virtual
    cycles (default 10_000) without charging a CPU-time category. When
    neither is given, victims are chosen by [victim_selection] alone and
    idle waiting is free, the historical (hash-stable) behaviour. *)

val speedup : base:result -> result -> float
(** [speedup ~base r] = [base.time / r.time]. *)
