module Tt = Wool_ir.Task_tree
module Sdq = Sim_deque
module Heap = Wool_util.Heap
module Rng = Wool_util.Rng
module Select = Wool_policy.Select
module Backoff = Wool_policy.Backoff

type category = TR | LA | NA | ST | LF

let n_categories = 5
let category_index = function TR -> 0 | LA -> 1 | NA -> 2 | ST -> 3 | LF -> 4

let category_name = function
  | TR -> "TR"
  | LA -> "LA"
  | NA -> "NA"
  | ST -> "ST"
  | LF -> "LF"

type istatus = Queued | Stolen_by of int | Done_

type inst = {
  itree : Tt.t;
  mutable status : istatus;
  mutable public : bool;
  mutable join_observed : bool;
      (* tracing only: the owner already logged Join_stolen for this task *)
}

type fkind =
  | KRoot
  | KCalled  (* entered by Call; resume caller on completion *)
  | KInlined  (* steal-child: inlined spawned task *)
  | KStolen of inst  (* steal-child: executing a stolen task *)
  | KChild of frame  (* steal-parent: spawned child of [frame] *)

and frame = {
  ftree : Tt.t;
  kind : fkind;
  caller : frame option; (* resumed (on the completing worker) at completion *)
  in_leap : bool; (* somewhere below sits a blocked join we are helping *)
  mutable ip : int;
  mutable pending : inst list; (* steal-child: LIFO of unjoined spawns *)
  mutable outstanding : int; (* steal-parent: unfinished spawned children *)
  mutable suspended : bool; (* steal-parent: parked at a sync *)
}

type worker = {
  wid : int;
  rng : Rng.t;
  mutable clock : int;
  mutable current : frame option;
  dq : inst Sdq.t; (* steal-child task pool *)
  cdq : frame Sdq.t; (* steal-parent continuation pool *)
  mutable line_free : int; (* victim lock / descriptor line busy until *)
  (* §III-B private-task window *)
  mutable public_limit : int;
  mutable trip : int;
  mutable publish_req : bool;
  mutable consec_public : int;
  acc : int array; (* per-category cycles *)
  mutable n_steals : int;
  mutable n_failed : int;
  mutable n_leap : int;
  mutable n_remote : int; (* successful steals across sockets *)
  mutable max_pool : int; (* deepest task/continuation pool seen *)
  orphans : inst Queue.t; (* batch-stolen tasks awaiting local execution *)
  sel : Select.state; (* victim-selection state (shared with the runtime) *)
  bo : Backoff.state option; (* idle-backoff model; None = no idle cost *)
}

type victim_selection = Wool_policy.Selector.t =
  | Random_victim
  | Round_robin
  | Last_victim
  | Leapfrog_biased
  | Socket_local
  | Hierarchical of Wool_policy.Hier.t

type result = {
  time : int;
  steals : int;
  failed_steals : int;
  leap_steals : int;
  remote_steals : int;
  breakdown : int array array;
  work : int;
  events : int;
  trace_hash : int;
  max_pool_depth : int;
      (* deepest per-worker task/continuation pool over the whole run *)
}

type state = {
  policy : Policy.t;
  costs : Costs.t;
  nap_cycles : int; (* one Backoff.Nap unit, in cycles *)
  trace : Trace.t option;
  steal_batch : int;
  topo : Wool_policy.Topology.t;
  workers : worker array;
  heap : int Heap.t; (* worker ids keyed by their clocks *)
  mutable finished : bool;
  mutable finish_time : int;
  mutable events : int;
  mutable hash : int;
  mutable work_done : int;
}

let dummy_tree = Tt.leaf 0

let dummy_inst =
  { itree = dummy_tree; status = Done_; public = false; join_observed = false }

let dummy_frame =
  {
    ftree = dummy_tree;
    kind = KRoot;
    caller = None;
    in_leap = false;
    ip = max_int;
    pending = [];
    outstanding = 0;
    suspended = false;
  }

let mix h v = (h * 0x100000001b3) lxor v

let observe st w tag =
  st.hash <- mix (mix (mix st.hash w.wid) w.clock) tag

let charge st w cat cycles =
  w.acc.(category_index cat) <- w.acc.(category_index cat) + cycles;
  match st.trace with
  | None -> ()
  | Some tr ->
      (* [charge] is always called before the clock advances past the
         operation, so [w.clock] is the operation's start time *)
      Trace.record tr ~worker:w.wid ~start:w.clock ~cycles
        ~category:(category_index cat)

(* Discrete scheduler events, in the vocabulary shared with the real
   runtime's tracer. Purely observational: no cost, no hash impact. *)
let emit st w tag ~a ~b =
  match st.trace with
  | None -> ()
  | Some tr -> Trace.record_event tr ~worker:w.wid ~time:w.clock ~tag ~a ~b

(* Category for application / inline-scheduler cycles executed inside
   frame [f]. *)
let app_cat f = if f.in_leap then LA else NA

let privatize_threshold = 16

(* ---- §III-B window maintenance (steal-child Wool policies) ---- *)

let service_publish st w =
  match st.policy.flavor with
  | Policy.Steal_child { publicity = Policy.Adaptive window; _ } ->
      if w.publish_req then begin
        w.publish_req <- false;
        (* a sprung trip wire is live steal pressure: suspend privatising *)
        w.consec_public <- 0;
        let old_limit = w.public_limit in
        let new_limit = old_limit + window in
        let hi = min new_limit (Sdq.top_index w.dq) in
        let lo = max old_limit (Sdq.bot_index w.dq) in
        for i = lo to hi - 1 do
          (Sdq.get w.dq i).public <- true
        done;
        w.public_limit <- new_limit;
        w.trip <- new_limit - 1;
        emit st w Wool_trace.Event.Publish ~a:(-1) ~b:(-1)
      end
  | Policy.Steal_child _ | Policy.Steal_parent | Policy.Loop_static -> ()

let maybe_privatize st w index =
  match st.policy.flavor with
  | Policy.Steal_child { publicity = Policy.Adaptive _; _ } ->
      w.consec_public <- w.consec_public + 1;
      if w.consec_public >= privatize_threshold && index < w.public_limit
      then begin
        let new_limit = max (Sdq.bot_index w.dq) index in
        if new_limit < w.public_limit then begin
          w.public_limit <- new_limit;
          w.trip <- new_limit - 1;
          emit st w Wool_trace.Event.Privatize ~a:(-1) ~b:(-1)
        end;
        w.consec_public <- 0
      end
  | Policy.Steal_child _ | Policy.Steal_parent | Policy.Loop_static -> ()

(* ---- frames ---- *)

let make_frame tree ~kind ~caller ~in_leap =
  {
    ftree = tree;
    kind;
    caller;
    in_leap;
    ip = 0;
    pending = [];
    outstanding = 0;
    suspended = false;
  }

let finish_root st w =
  st.finished <- true;
  st.finish_time <- w.clock

(* Completion of the frame on top of [w]. *)
let complete_frame st w f =
  observe st w 1;
  match f.kind with
  | KRoot -> finish_root st w
  | KCalled | KInlined -> w.current <- f.caller
  | KStolen inst ->
      inst.status <- Done_;
      w.current <- f.caller
  | KChild parent -> (
      parent.outstanding <- parent.outstanding - 1;
      (* Fast path: our parent's continuation is still on top of our own
         pool — pop it and keep going (the non-stolen spawn return). *)
      match Sdq.peek_top w.cdq with
      | Some top when top == parent ->
          ignore (Sdq.pop_present w.cdq : frame);
          charge st w (app_cat parent) st.costs.join_inline;
          w.clock <- w.clock + st.costs.join_inline;
          w.current <- Some parent
      | Some _ | None ->
          if parent.suspended && parent.outstanding = 0 then begin
            (* Provably-good steal protocol: the last returning child
               resumes the suspended parent here. *)
            parent.suspended <- false;
            charge st w NA st.costs.join_stolen;
            w.clock <- w.clock + st.costs.join_stolen;
            w.current <- Some parent
          end
          else w.current <- f.caller)

(* ---- stealing ---- *)

(* Topology-dependent steal communication: an SMT sibling shares cache
   lines (distance 1, usually a discount), a socket peer pays the base
   cost (distance 2 — the cost model was calibrated on-socket), a
   cross-socket victim pays the interconnect surcharge (distance 3). *)
let comm_scale st w v c =
  match Wool_policy.Topology.distance st.topo w.wid v.wid with
  | 1 -> c * (100 + st.costs.Costs.core_factor_pct) / 100
  | 3 -> c * (100 + st.costs.Costs.remote_factor_pct) / 100
  | _ -> c

let cross_socket st a b =
  Wool_policy.Topology.socket_of st.topo a.wid
  <> Wool_policy.Topology.socket_of st.topo b.wid

(* Victim choice for an unpinned steal attempt, delegated to the
   Wool_policy state machine the real runtime also runs: uniform random
   (the classic provably-good default), cyclic scanning, affinity to the
   last successful victim, affinity to the recorded thief of our own
   stolen tasks, and socket-local preference (3 of 4 probes stay on our
   socket). *)
let pick_victim st w =
  match Select.next w.sel ~rng:w.rng ~n:(Array.length st.workers) with
  | None -> None
  | Some v -> Some st.workers.(v)

(* Idle backoff after a failed attempt: pure waiting, so the clock
   advances without charging a CPU-time category. Only modelled when the
   run was given an explicit steal policy. *)
let idle_backoff st w =
  match w.bo with
  | None -> ()
  | Some bo -> (
      match Backoff.on_failure bo with
      | Backoff.Relax -> ()
      | Backoff.Yield -> w.clock <- w.clock + max 1 st.costs.Costs.poll
      | Backoff.Nap factor ->
          emit st w Wool_trace.Event.Nap_enter ~a:factor ~b:(-1);
          w.clock <- w.clock + (factor * st.nap_cycles);
          emit st w Wool_trace.Event.Nap_exit ~a:(-1) ~b:(-1))

(* Outcome of inspecting the victim's pool under [sync]; returns the extra
   cycles spent and, on success, the stolen payload. *)
type 'a attempt = Got of 'a * int | Missed of int

let serialize w ~at ~hold =
  (* Arriving at the victim's lock / descriptor line at [at]: wait for it
     to be free, then hold it. Returns the wait. *)
  let wait = max 0 (w.line_free - at) in
  w.line_free <- at + wait + hold;
  wait

let attempt_steal_child st (w : worker) (v : worker) ~sync =
  let c = st.costs in
  let stealable =
    match Sdq.peek_bot v.dq with
    | Some inst when inst.public -> Some inst
    | Some _ | None -> None
  in
  let take_one () =
    let inst = Sdq.take_bot v.dq in
    inst.status <- Stolen_by w.wid;
    if Sdq.bot_index v.dq - 1 = v.trip then v.publish_req <- true;
    inst
  in
  let take () =
    let first = take_one () in
    (* Batch stealing (the steal-half family): grab up to batch-1 more
       public tasks for local execution. They are not re-stealable while
       queued on the thief (a deliberate simplification); owners see them
       as stolen and wait for completion as usual. *)
    let extras = ref 0 in
    let continue_ = ref (st.steal_batch > 1) in
    while !continue_ && !extras < st.steal_batch - 1 do
      match Sdq.peek_bot v.dq with
      | Some inst when inst.public ->
          Queue.push (take_one ()) w.orphans;
          incr extras
      | Some _ | None -> continue_ := false
    done;
    (first, !extras)
  in
  match sync with
  | Policy.Nolock_state -> (
      (* Peek the descriptor; CAS only if it looks stealable. A failed
         probe is a cached poll — idle thieves have the victim's [bot] and
         descriptor line cached and pay the transfer only when a spawn
         lands (§III-A) — so only a success pays the round trip. *)
      match stealable with
      | None -> Missed c.peek
      | Some _ ->
          (* CAS is non-blocking: if a competing thief (or the owner's
             exchange) holds the descriptor line this CAS loses and the
             thief retries — it never waits. *)
          if v.line_free > w.clock + c.steal_attempt then Missed c.peek
          else begin
            let wait =
              serialize v ~at:(w.clock + c.steal_attempt) ~hold:c.line_hold
            in
            let inst, extras = take () in
            Got (inst, wait + c.steal_success + (extras * c.peek))
          end)
  | Policy.Lock `Base ->
      (* Lock first, look second: pays the lock round trip even when the
         victim has nothing. *)
      let wait = serialize v ~at:(w.clock + c.steal_attempt) ~hold:c.line_hold in
      (match stealable with
      | None -> Missed (c.steal_attempt + wait + c.peek)
      | Some _ ->
          let inst, extras = take () in
          Got (inst, wait + c.steal_success + (extras * c.peek)))
  | Policy.Lock `Peek -> (
      match stealable with
      | None -> Missed c.peek
      | Some _ ->
          let wait = serialize v ~at:(w.clock + c.steal_attempt) ~hold:c.line_hold in
          let inst, extras = take () in
          Got (inst, wait + c.steal_success + (extras * c.peek)))
  | Policy.Lock `Trylock -> (
      match stealable with
      | None -> Missed c.peek
      | Some _ ->
          if v.line_free > w.clock + c.steal_attempt then
            (* try_lock failed: abort the steal *)
            Missed c.peek
          else begin
            let wait =
              serialize v ~at:(w.clock + c.steal_attempt) ~hold:c.line_hold
            in
            let inst, extras = take () in
            Got (inst, wait + c.steal_success + (extras * c.peek))
          end)

let attempt_steal_parent st (w : worker) (v : worker) =
  let c = st.costs in
  match Sdq.peek_bot v.cdq with
  | None -> Missed c.peek
  | Some _ ->
      let wait = serialize v ~at:(w.clock + c.steal_attempt) ~hold:c.line_hold in
      Got (Sdq.take_bot v.cdq, wait + c.steal_success)

(* One steal attempt. [victim] pins the target (leapfrogging); [cat] is the
   accounting category. Returns true if a task/continuation was acquired
   (the worker's [current] is updated). *)
let do_steal st w ~victim ~cat =
  let c = st.costs in
  observe st w 2;
  let target =
    match victim with Some v -> Some v | None -> pick_victim st w
  in
  match target with
  | None ->
      charge st w cat c.poll;
      w.clock <- w.clock + max 1 c.poll;
      idle_backoff st w;
      false
  | Some v -> (
      emit st w Wool_trace.Event.Steal_attempt ~a:(-1) ~b:v.wid;
      let outcome =
        match st.policy.flavor with
        | Policy.Steal_child { sync; _ } -> (
            match attempt_steal_child st w v ~sync with
            | Got (inst, extra) ->
                let fr =
                  make_frame inst.itree ~kind:(KStolen inst) ~caller:w.current
                    ~in_leap:(w.current <> None)
                in
                `Got (fr, extra)
            | Missed extra -> `Missed extra)
        | Policy.Steal_parent -> (
            match attempt_steal_parent st w v with
            | Got (cont, extra) -> `Got (cont, extra)
            | Missed extra -> `Missed extra)
        | Policy.Loop_static -> assert false
      in
      match outcome with
      | `Got (fr, extra) ->
          w.n_steals <- w.n_steals + 1;
          if cross_socket st w v then w.n_remote <- w.n_remote + 1;
          Select.on_success w.sel ~victim:v.wid;
          (match w.bo with Some bo -> Backoff.on_success bo | None -> ());
          emit st w Wool_trace.Event.Steal_ok ~a:(-1) ~b:v.wid;
          if w.current <> None then begin
            w.n_leap <- w.n_leap + 1;
            emit st w Wool_trace.Event.Leap_steal ~a:(-1) ~b:v.wid
          end;
          let cost = comm_scale st w v (c.steal_attempt + extra) in
          charge st w cat cost;
          w.clock <- w.clock + max 1 cost;
          w.current <- Some fr;
          true
      | `Missed extra ->
          (* Failed probes do not pay the communication round trip: the
             lines being polled stay cached until the victim writes them. *)
          w.n_failed <- w.n_failed + 1;
          if victim = None then Select.on_failure w.sel;
          charge st w cat extra;
          w.clock <- w.clock + max 1 extra;
          idle_backoff st w;
          false)

(* ---- steps ---- *)

let exec_spawn_child st w f child =
  let c = st.costs in
  service_publish st w;
  let index = Sdq.top_index w.dq in
  let public =
    match st.policy.flavor with
    | Policy.Steal_child { publicity = Policy.All_public; _ } -> true
    | Policy.Steal_child { publicity = Policy.Adaptive _; _ } ->
        index < w.public_limit
    | Policy.Steal_parent | Policy.Loop_static -> true
  in
  let inst = { itree = child; status = Queued; public; join_observed = false } in
  Sdq.push w.dq inst;
  w.max_pool <- max w.max_pool (Sdq.size w.dq);
  emit st w Wool_trace.Event.Spawn ~a:index ~b:(-1);
  f.pending <- inst :: f.pending;
  f.ip <- f.ip + 1;
  let cost = if public then c.spawn else c.spawn_private in
  charge st w (app_cat f) cost;
  w.clock <- w.clock + cost

let exec_spawn_parent st w f child =
  let c = st.costs in
  f.ip <- f.ip + 1;
  f.outstanding <- f.outstanding + 1;
  Sdq.push w.cdq f;
  w.max_pool <- max w.max_pool (Sdq.size w.cdq);
  emit st w Wool_trace.Event.Spawn ~a:(-1) ~b:(-1);
  let child_frame =
    make_frame child ~kind:(KChild f) ~caller:None ~in_leap:f.in_leap
  in
  (* the cactus stack charges frame allocation on spawns and calls alike *)
  let cost = c.spawn + c.call in
  charge st w (app_cat f) cost;
  w.clock <- w.clock + cost;
  w.current <- Some child_frame

(* Run a batch-stolen task waiting in the local orphan queue. [caller]
   (and the leapfrog accounting flag) is the blocked frame when this
   happens during a join wait; orphans must be drainable from blocked
   states or batch stealing could deadlock a cycle of leapfrogging
   owners. *)
let take_orphan st w ~caller ~in_leap =
  match Queue.take_opt w.orphans with
  | None -> false
  | Some inst ->
      (* local pool take: no communication, just the join-side cost *)
      charge st w (if in_leap then LF else ST) st.costs.join_inline;
      w.clock <- w.clock + max 1 st.costs.join_inline;
      w.current <-
        Some (make_frame inst.itree ~kind:(KStolen inst) ~caller ~in_leap);
      true

let exec_join_child st w f =
  let c = st.costs in
  service_publish st w;
  match f.pending with
  | [] -> assert false
  | inst :: rest -> (
      match inst.status with
      | Queued ->
          (* Inline the task. Locked schedulers serialise the victim-side
             join against thieves on the same lock. *)
          let index = Sdq.top_index w.dq - 1 in
          let popped = Sdq.pop_present w.dq in
          assert (popped == inst);
          f.pending <- rest;
          f.ip <- f.ip + 1;
          let lock_wait =
            match st.policy.flavor with
            | Policy.Steal_child { sync = Policy.Lock _; _ } ->
                (* the owner holds its own lock only for the duration of
                   the join itself *)
                serialize w ~at:w.clock ~hold:c.join_inline
            | Policy.Steal_child _ | Policy.Steal_parent | Policy.Loop_static
              -> 0
          in
          let base =
            if inst.public then begin
              maybe_privatize st w index;
              c.join_inline
            end
            else c.join_inline_private
          in
          let cost = base + lock_wait in
          emit st w
            (if inst.public then Wool_trace.Event.Inline_public
             else Wool_trace.Event.Inline_private)
            ~a:index ~b:(-1);
          charge st w (app_cat f) cost;
          w.clock <- w.clock + cost;
          w.current <-
            Some
              (make_frame inst.itree ~kind:KInlined ~caller:(Some f)
                 ~in_leap:f.in_leap)
      | Done_ ->
          Sdq.pop_consumed w.dq;
          f.pending <- rest;
          f.ip <- f.ip + 1;
          w.consec_public <- 0;
          if not inst.join_observed then begin
            inst.join_observed <- true;
            emit st w Wool_trace.Event.Join_stolen ~a:(-1) ~b:(-1)
          end;
          charge st w (app_cat f) c.join_stolen;
          w.clock <- w.clock + c.join_stolen
      | Stolen_by thief -> (
          (* [Stolen_by] re-executes every step while blocked: log the
             join-found-stolen transition only on first observation *)
          if not inst.join_observed then begin
            inst.join_observed <- true;
            Select.stolen_by w.sel ~thief;
            emit st w Wool_trace.Event.Join_stolen ~a:(-1) ~b:thief
          end;
          (* Blocked join: find other work per the policy; the Join step
             re-executes (ip unchanged) until the thief finishes. Local
             batch-stolen orphans are always fair game — and draining
             them here is what makes batch stealing deadlock-free. *)
          if take_orphan st w ~caller:(Some f) ~in_leap:true then ()
          else
          match st.policy.flavor with
          | Policy.Steal_child { blocked_join; _ } -> (
              match blocked_join with
              | Policy.Leapfrog ->
                  ignore
                    (do_steal st w ~victim:(Some st.workers.(thief)) ~cat:LF
                      : bool)
              | Policy.Random_steal ->
                  ignore (do_steal st w ~victim:None ~cat:LF : bool)
              | Policy.Plain_wait ->
                  charge st w LF c.poll;
                  w.clock <- w.clock + max 1 c.poll)
          | Policy.Steal_parent | Policy.Loop_static -> assert false))

let exec_join_parent st w f =
  let c = st.costs in
  if f.outstanding = 0 then begin
    f.ip <- f.ip + 1;
    charge st w (app_cat f) c.join_inline;
    w.clock <- w.clock + c.join_inline
  end
  else begin
    (* Sync with outstanding stolen children: park the frame; the last
       returning child will resume it wherever it finishes. *)
    f.suspended <- true;
    w.current <- None;
    charge st w ST c.join_stolen;
    w.clock <- w.clock + c.join_stolen
  end

let exec_step st w f =
  let steps = Tt.steps f.ftree in
  if f.ip >= Array.length steps then complete_frame st w f
  else begin
    match steps.(f.ip) with
    | Tt.Work cycles ->
        f.ip <- f.ip + 1;
        st.work_done <- st.work_done + cycles;
        charge st w (app_cat f) cycles;
        w.clock <- w.clock + cycles
    | Tt.Call callee ->
        f.ip <- f.ip + 1;
        let cost = st.costs.call in
        charge st w (app_cat f) cost;
        w.clock <- w.clock + cost;
        w.current <-
          Some (make_frame callee ~kind:KCalled ~caller:(Some f) ~in_leap:f.in_leap)
    | Tt.Spawn child -> (
        match st.policy.flavor with
        | Policy.Steal_child _ -> exec_spawn_child st w f child
        | Policy.Steal_parent -> exec_spawn_parent st w f child
        | Policy.Loop_static -> assert false)
    | Tt.Join -> (
        match st.policy.flavor with
        | Policy.Steal_child _ -> exec_join_child st w f
        | Policy.Steal_parent -> exec_join_parent st w f
        | Policy.Loop_static -> assert false)
  end

let step st w =
  match w.current with
  | Some f -> exec_step st w f
  | None ->
      if not (take_orphan st w ~caller:None ~in_leap:false) then
        ignore (do_steal st w ~victim:None ~cat:ST : bool)

let run ?(seed = 42) ?(max_events = 2_000_000_000)
    ?(victim_selection = Random_victim) ?steal_policy ?(nap_cycles = 10_000)
    ?trace ?(steal_batch = 1) ?(sockets = 1) ?topology ~(policy : Policy.t)
    ~workers tree =
  if workers <= 0 then invalid_arg "Engine.run: workers must be positive";
  if steal_batch <= 0 then
    invalid_arg "Engine.run: steal_batch must be positive";
  if sockets <= 0 then invalid_arg "Engine.run: sockets must be positive";
  if nap_cycles <= 0 then invalid_arg "Engine.run: nap_cycles must be positive";
  (* The machine shape. [~topology] pins an explicit tree; the legacy
     [~sockets] shorthand builds the same contiguous-block topology the
     engine always used (worker [wid] on socket [wid * sockets /
     workers]), so every historical run is bit-for-bit unchanged. *)
  let topo =
    match topology with
    | Some t ->
        if Wool_policy.Topology.workers t <> workers then
          invalid_arg "Engine.run: topology worker count must match workers";
        t
    | None -> Wool_policy.Topology.make ~sockets ~workers ()
  in
  (match policy.flavor with
  | Policy.Loop_static ->
      invalid_arg "Engine.run: Loop_static policies are run by Loop_sim"
  | Policy.Steal_child _ | Policy.Steal_parent -> ());
  (* Effective steal policy: explicit argument beats the one packaged in
     [policy]; with neither, the legacy [victim_selection] selector runs
     with no idle-backoff model (the historical, hash-stable default). *)
  let sp =
    match steal_policy with Some _ -> steal_policy | None -> policy.steal
  in
  let selector =
    match sp with
    | Some p -> p.Wool_policy.selector
    | None -> victim_selection
  in
  let costs = policy.costs in
  let master = Rng.make seed in
  let window =
    match policy.flavor with
    | Policy.Steal_child { publicity = Policy.Adaptive w; _ } -> w
    | Policy.Steal_child { publicity = Policy.All_public; _ } -> max_int / 2
    | Policy.Steal_parent | Policy.Loop_static -> max_int / 2
  in
  let mk_worker wid =
    {
      wid;
      rng = Rng.split master;
      clock = 0;
      current = None;
      dq = Sdq.create ~dummy:dummy_inst ();
      cdq = Sdq.create ~dummy:dummy_frame ();
      line_free = 0;
      public_limit = window;
      trip = (if window >= max_int / 2 then -1 else window - 1);
      publish_req = false;
      consec_public = 0;
      acc = Array.make n_categories 0;
      n_steals = 0;
      n_failed = 0;
      n_leap = 0;
      n_remote = 0;
      max_pool = 0;
      orphans = Queue.create ();
      sel =
        Select.make
          ~socket_of:(Wool_policy.Topology.socket_of topo)
          selector ~self:wid ();
      bo =
        (match sp with
        | None -> None
        | Some p -> Some (Backoff.make p.Wool_policy.backoff));
    }
  in
  let ws = Array.init workers mk_worker in
  let st =
    {
      policy;
      costs;
      nap_cycles;
      trace;
      steal_batch;
      topo;
      workers = ws;
      heap = Heap.create ();
      finished = false;
      finish_time = 0;
      events = 0;
      hash = 0x3bf29ce484222325;
      work_done = 0;
    }
  in
  (* Startup: every worker pays thread-start (TR); worker 0 then owns the
     root task. *)
  Array.iter
    (fun w ->
      charge st w TR costs.startup;
      w.clock <- costs.startup;
      if w.wid = 0 then
        w.current <- Some (make_frame tree ~kind:KRoot ~caller:None ~in_leap:false);
      Heap.push st.heap ~key:w.clock w.wid)
    ws;
  let rec loop () =
    if not st.finished then begin
      match Heap.pop st.heap with
      | None -> failwith "Engine.run: event queue drained before completion"
      | Some (_, wid) ->
          st.events <- st.events + 1;
          if st.events > max_events then
            failwith "Engine.run: max_events exceeded";
          let w = st.workers.(wid) in
          step st w;
          if not st.finished then begin
            Heap.push st.heap ~key:w.clock w.wid;
            loop ()
          end
    end
  in
  loop ();
  {
    time = st.finish_time;
    steals = Array.fold_left (fun a w -> a + w.n_steals) 0 ws;
    failed_steals = Array.fold_left (fun a w -> a + w.n_failed) 0 ws;
    leap_steals = Array.fold_left (fun a w -> a + w.n_leap) 0 ws;
    remote_steals = Array.fold_left (fun a w -> a + w.n_remote) 0 ws;
    breakdown = Array.map (fun w -> Array.copy w.acc) ws;
    work = st.work_done;
    events = st.events;
    trace_hash = st.hash;
    max_pool_depth = Array.fold_left (fun a w -> max a w.max_pool) 0 ws;
  }

let speedup ~base r = float_of_int base.time /. float_of_int r.time
