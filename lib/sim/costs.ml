type t = {
  startup : int;
  spawn : int;
  spawn_private : int;
  call : int;
  join_inline : int;
  join_inline_private : int;
  steal_attempt : int;
  steal_success : int;
  join_stolen : int;
  line_hold : int;
  peek : int;
  poll : int;
  loop_fork_base : int;
  loop_fork_per_worker : int;
  barrier_per_worker : int;
  remote_factor_pct : int;
  core_factor_pct : int;
}

(* Table II: 3 cycles per private task, 19 per public task over a plain
   call. Table III: C2 = 2 200 = attempt + success + victim join. *)
let wool =
  {
    startup = 20_000;
    spawn = 7;
    spawn_private = 1;
    call = 0;
    join_inline = 12;
    join_inline_private = 2;
    steal_attempt = 250;
    steal_success = 950;
    join_stolen = 1_000;
    line_hold = 150;
    peek = 20;
    poll = 100;
    loop_fork_base = 0;
    loop_fork_per_worker = 0;
    barrier_per_worker = 0;
    remote_factor_pct = 75;
    core_factor_pct = -40;
  }

(* Table III: 134-cycle inlined tasks, C2 = 31 050, more than half of the
   steal overhead in the kernel (lock contention); the cactus stack taxes
   every call (§IV-D1: "All calls get this overhead", >4x instructions). *)
let cilk =
  {
    startup = 40_000;
    spawn = 60;
    spawn_private = 60;
    call = 30;
    join_inline = 74;
    join_inline_private = 74;
    steal_attempt = 2_000;
    steal_success = 28_000;
    join_stolen = 15_000;
    line_hold = 4_000;
    peek = 100;
    poll = 400;
    loop_fork_base = 0;
    loop_fork_per_worker = 0;
    barrier_per_worker = 0;
    remote_factor_pct = 75;
    core_factor_pct = -40;
  }

(* Table III: 323-cycle inlined tasks (free-list task allocation), C2 =
   5 800. *)
let tbb =
  {
    startup = 30_000;
    spawn = 150;
    spawn_private = 150;
    call = 0;
    join_inline = 173;
    join_inline_private = 173;
    steal_attempt = 400;
    steal_success = 2_400;
    join_stolen = 3_000;
    line_hold = 400;
    peek = 40;
    poll = 200;
    loop_fork_base = 0;
    loop_fork_per_worker = 0;
    barrier_per_worker = 0;
    remote_factor_pct = 75;
    core_factor_pct = -40;
  }

(* Table III: 878-cycle tasks, C2 = 4 830. Loop benchmarks (mm, ssf) use
   static work sharing instead of task trees, as in the paper. *)
let openmp =
  {
    startup = 35_000;
    spawn = 400;
    spawn_private = 400;
    call = 0;
    join_inline = 478;
    join_inline_private = 478;
    steal_attempt = 400;
    steal_success = 2_000;
    join_stolen = 2_430;
    line_hold = 500;
    peek = 40;
    poll = 200;
    loop_fork_base = 1_500;
    loop_fork_per_worker = 300;
    barrier_per_worker = 250;
    remote_factor_pct = 75;
    core_factor_pct = -40;
  }

(* Table II "base": 77 cycles per inlined task with the per-worker lock
   taken at every join; thieves hold the same lock longer than a CAS
   window. *)
(* Lock-based steals transfer more lines than a descriptor CAS: the lock
   word, the top/bot words, and the task data, where the direct stack's
   single descriptor line carries both the data and the availability
   signal (§III-A). *)
let locked_ladder =
  {
    wool with
    spawn = 7;
    spawn_private = 7;
    join_inline = 70;
    join_inline_private = 70;
    line_hold = 450;
    steal_attempt = 300;
    steal_success = 1_300;
    join_stolen = 1_100;
  }

let scale f c =
  let s x = int_of_float (Float.round (f *. float_of_int x)) in
  {
    startup = s c.startup;
    spawn = s c.spawn;
    spawn_private = s c.spawn_private;
    call = s c.call;
    join_inline = s c.join_inline;
    join_inline_private = s c.join_inline_private;
    steal_attempt = s c.steal_attempt;
    steal_success = s c.steal_success;
    join_stolen = s c.join_stolen;
    line_hold = s c.line_hold;
    peek = s c.peek;
    poll = s c.poll;
    loop_fork_base = s c.loop_fork_base;
    loop_fork_per_worker = s c.loop_fork_per_worker;
    barrier_per_worker = s c.barrier_per_worker;
    remote_factor_pct = c.remote_factor_pct;
    core_factor_pct = c.core_factor_pct;
  }

let pp ppf c =
  Format.fprintf ppf
    "@[<v>spawn=%d/%d join=%d/%d call=%d steal=%d+%d joinst=%d hold=%d@]"
    c.spawn c.spawn_private c.join_inline c.join_inline_private c.call
    c.steal_attempt c.steal_success c.join_stolen c.line_hold
