(** Per-operation cost profiles for the simulated schedulers.

    All values are virtual cycles. The profiles for the four compared
    systems are {e calibrated inputs}, taken from the paper's own
    single-processor and two-processor micro-benchmarks (Table II inlined
    costs, Table III column "2" for the base steal + join-with-thief cost).
    Everything else the simulator reports — speedups, steal counts,
    contention growth at higher processor counts, breakdowns — is emergent
    from executing the scheduling algorithms with these per-operation
    costs, and constitutes the reproduction results. *)

type t = {
  startup : int;  (** per-worker thread start (TR in Figure 6) *)
  spawn : int;  (** make a public task stealable *)
  spawn_private : int;  (** Wool: spawn into a private descriptor *)
  call : int;
      (** per ordinary call; nonzero for Cilk++'s cactus stack, whose
          free-list frame allocation taxes every call (§IV-D1) *)
  join_inline : int;  (** pop & run an unstolen public task (the RMW) *)
  join_inline_private : int;  (** Wool: private-descriptor join *)
  steal_attempt : int;
      (** thief-side communication round trip for any attempt *)
  steal_success : int;  (** extra thief-side cost to acquire and set up *)
  join_stolen : int;  (** victim-side synchronisation with the thief *)
  line_hold : int;
      (** how long a steal holds the victim's lock / descriptor cache line;
          arrivals during the window serialise — the contention that makes
          steal cost grow super-linearly with processors (Table III) *)
  peek : int;  (** read the victim's bottom descriptor without locking *)
  poll : int;  (** re-check interval when blocked with nothing to steal *)
  loop_fork_base : int;  (** work-sharing loop: region fork fixed cost *)
  loop_fork_per_worker : int;  (** ... plus this much per worker *)
  barrier_per_worker : int;  (** end-of-loop barrier cost per worker *)
  remote_factor_pct : int;
      (** extra percentage on steal communication when thief and victim
          sit on different sockets (the paper's testbed is a dual-socket
          Opteron); used when the engine is told [~sockets] > 1 or given
          a multi-socket [~topology] *)
  core_factor_pct : int;
      (** percentage adjustment on steal communication between SMT
          siblings sharing a core (topology distance 1) — negative: the
          task descriptor is already in the shared L1/L2, so the
          committed profiles use a 40% discount. Only reachable with a
          [~topology] whose cores are wider than one thread *)
}

val wool : t
(** Calibration: 3-cycle private / 19-cycle public task overhead (Table II),
    C2 = 2 200 (Table III). *)

val cilk : t
(** 134-cycle inlined tasks, C2 = 31 050, heavy locking and per-call cactus
    overhead. *)

val tbb : t
(** 323-cycle inlined tasks, C2 = 5 800, free-list spawn. *)

val openmp : t
(** 878-cycle tasks, C2 = 4 830; loop benchmarks use work sharing. *)

val locked_ladder : t
(** Profile for the §IV-B/§IV-C Wool ladder baselines: Wool costs with the
    77-cycle locked join of Table II's "base" row. *)

val scale : float -> t -> t
(** Multiply every cost by a factor (sensitivity studies). *)

val pp : Format.formatter -> t -> unit
