(** Scheduler policies for the simulator.

    A policy pairs a scheduling {e flavor} (the algorithmic behaviour) with
    a {!Costs.t} profile. The four compared systems and the paper's
    internal ladders are provided as presets. *)

type sync =
  | Nolock_state
      (** direct task stack: synchronise on the task descriptor (peek, then
          CAS); no lock — the paper's contribution *)
  | Lock of [ `Base | `Peek | `Trylock ]
      (** per-worker lock disciplines of §IV-C *)

type blocked_join =
  | Leapfrog  (** steal only from the thief of the joined task *)
  | Random_steal  (** steal from anyone (buried-join prone) *)
  | Plain_wait  (** just poll (for ablation) *)

type publicity = All_public | Adaptive of int
    (** [Adaptive w]: the §III-B private-task scheme with a [w]-descriptor
        public window grown by trip-wire steals. *)

type flavor =
  | Steal_child of {
      sync : sync;
      blocked_join : blocked_join;
      publicity : publicity;
    }
  | Steal_parent
      (** continuation stealing with suspendable syncs (Cilk-style) *)
  | Loop_static
      (** static work-sharing over the leaves of a loop-shaped tree
          (OpenMP parallel for); only valid for trees built by
          [Task_tree.binary_split] whose leaves the workload exposes *)

type t = {
  name : string;
  flavor : flavor;
  costs : Costs.t;
  steal : Wool_policy.t option;
      (** victim-selection / idle-backoff policy shared with the real
          runtime ({!Wool_policy.t}). [None] (every preset) keeps the
          historical behaviour: uniform random victims, no idle model. *)
}

val v : name:string -> flavor:flavor -> costs:Costs.t -> unit -> t
(** Build a policy with [steal = None]. *)

val with_steal : Wool_policy.t -> t -> t
(** [with_steal sp p] runs [p] under steal policy [sp] — the same value a
    real pool accepts via [Wool.Config.make ~policy] — and tags the name
    with it. *)

val wool : t
(** Direct task stack, leapfrogging, adaptive private tasks. *)

val wool_all_public : t
(** Wool without private tasks ("no private" row of Table II). *)

val cilk : t
val tbb : t
(** Steal-child, random stealing on blocked joins, TBB costs. *)

val openmp_tasks : t
(** OpenMP tasking for the recursive benchmarks. *)

val openmp_loop : t
(** OpenMP work-sharing for the loop benchmarks (mm, ssf). *)

val lock_base : t
val lock_peek : t
val lock_trylock : t
(** The §IV-C locking ladder; same costs, different stealing discipline. *)

val nolock : t
(** §IV-C "nolock" = the direct stack, with ladder-comparable costs. *)
