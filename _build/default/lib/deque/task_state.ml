type t = int

let empty = 0
let task_private = 1
let task_public = 2
let done_ = 3
let stolen ~thief = 4 + thief
let is_task s = s = task_private || s = task_public
let is_task_public s = s = task_public
let is_stolen s = s >= 4
let thief s = if not (is_stolen s) then invalid_arg "Task_state.thief" else s - 4

let pp ppf s =
  if s = empty then Format.pp_print_string ppf "EMPTY"
  else if s = task_private then Format.pp_print_string ppf "TASK(private)"
  else if s = task_public then Format.pp_print_string ppf "TASK(public)"
  else if s = done_ then Format.pp_print_string ppf "DONE"
  else Format.fprintf ppf "STOLEN(%d)" (thief s)
