(** Task-descriptor state words for the direct task stack.

    The paper packs the state into a single word: a pointer to the wrapper
    function for TASK, odd integers for the rest. In OCaml we use a plain
    [int] inside an [Atomic.t]; the wrapper closure lives in its own slot
    field, and TASK splits into private/public so that publicity is part of
    the synchronised word (a thief's CAS can only ever succeed on a public
    task — the OCaml analogue of "any steal attempt for this task will
    fail"). *)

type t = int

val empty : t
(** No task stored (or a transient state while a thief is mid-steal). *)

val task_private : t
(** A task that only the owner may take; the owner's join needs no atomic
    read-modify-write for it. *)

val task_public : t
(** A stealable task; joined with an atomic exchange, stolen with CAS. *)

val done_ : t
(** A stolen task whose thief has completed it. *)

val stolen : thief:int -> t
(** A task stolen by worker [thief]. *)

val is_task : t -> bool
(** True for both private and public tasks. *)

val is_task_public : t -> bool
val is_stolen : t -> bool

val thief : t -> int
(** The thief index of a {!stolen} state. Requires [is_stolen]. *)

val pp : Format.formatter -> t -> unit
