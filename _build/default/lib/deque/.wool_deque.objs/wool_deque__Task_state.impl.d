lib/deque/task_state.ml: Format
