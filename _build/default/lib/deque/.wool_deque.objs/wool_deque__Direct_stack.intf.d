lib/deque/direct_stack.mli:
