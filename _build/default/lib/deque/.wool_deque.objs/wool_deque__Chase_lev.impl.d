lib/deque/chase_lev.ml: Array Atomic
