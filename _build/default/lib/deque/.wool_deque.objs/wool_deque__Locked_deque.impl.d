lib/deque/locked_deque.ml: Array Atomic Mutex
