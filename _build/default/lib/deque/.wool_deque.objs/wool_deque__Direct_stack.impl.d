lib/deque/direct_stack.ml: Array Atomic Domain Task_state
