lib/deque/task_state.mli: Format
