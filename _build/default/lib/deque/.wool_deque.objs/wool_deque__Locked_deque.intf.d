lib/deque/locked_deque.mli:
