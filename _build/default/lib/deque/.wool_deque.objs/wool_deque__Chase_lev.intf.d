lib/deque/chase_lev.mli:
