(** Chase–Lev dynamic circular work-stealing deque.

    The conventional pointer-based steal-child task pool (the family TBB and
    most runtimes use), implemented as the paper's comparison point for the
    direct task stack. The owner pushes and pops at the bottom; thieves take
    from the top with a CAS. The buffer grows on demand and never shrinks.

    Following Chase & Lev (SPAA'05), [pop] on the last remaining element
    races thieves with a CAS on [top]; every other owner operation is
    synchronisation-free apart from the release store on [bottom]. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** Initial circular buffer capacity (default 64, rounded up to a power of
    two); grows automatically. *)

val push : 'a t -> 'a -> unit
(** Owner: add at the bottom. *)

val pop : 'a t -> 'a option
(** Owner: remove the most recently pushed element; [None] if empty. *)

val steal : 'a t -> [ `Stolen of 'a | `Empty | `Retry ]
(** Thief: take the oldest element. [`Retry] means a concurrent steal or the
    owner's last-element pop won the race. *)

val size : 'a t -> int
(** Racy snapshot of the current element count (never negative). *)
