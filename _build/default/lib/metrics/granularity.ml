module Tt = Wool_ir.Task_tree

let task_granularity tree =
  let n = Tt.n_tasks tree in
  if n = 0 then float_of_int (Tt.work tree)
  else float_of_int (Tt.work tree) /. float_of_int n

let load_balancing_granularity ~work ~steals =
  if steals = 0 then infinity else float_of_int work /. float_of_int steals

type measured = { g_t : float; g_l : float }

let of_measured ~work ~tasks ~migrations =
  {
    g_t = (if tasks = 0 then work else work /. float_of_int tasks);
    g_l =
      (if migrations = 0 then infinity else work /. float_of_int migrations);
  }

let of_events ~work events =
  let spawns = ref 0 and steals = ref 0 in
  Array.iter
    (fun e ->
      match e.Wool_trace.Event.tag with
      | Wool_trace.Event.Spawn -> incr spawns
      | Wool_trace.Event.Steal_ok -> incr steals
      | _ -> ())
    events;
  of_measured ~work ~tasks:!spawns ~migrations:!steals
