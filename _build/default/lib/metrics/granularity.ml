module Tt = Wool_ir.Task_tree

let task_granularity tree =
  let n = Tt.n_tasks tree in
  if n = 0 then float_of_int (Tt.work tree)
  else float_of_int (Tt.work tree) /. float_of_int n

let load_balancing_granularity ~work ~steals =
  if steals = 0 then infinity else float_of_int work /. float_of_int steals
