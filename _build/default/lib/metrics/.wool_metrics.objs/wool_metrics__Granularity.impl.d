lib/metrics/granularity.ml: Array Wool_ir Wool_trace
