lib/metrics/granularity.ml: Wool_ir
