lib/metrics/span.ml: Array Hashtbl Wool_ir
