lib/metrics/span.mli: Wool_ir
