lib/metrics/granularity.mli: Wool_ir Wool_trace
