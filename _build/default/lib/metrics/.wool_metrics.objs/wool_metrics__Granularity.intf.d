lib/metrics/granularity.mli: Wool_ir
