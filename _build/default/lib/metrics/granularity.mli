(** The paper's two granularity measures (§II).

    Task granularity [G_T = T_S / N_T] is a property of program and input:
    average useful work per spawned task. Load balancing granularity
    [G_L(p) = T_S / N_M(p)] divides by the number of task migrations —
    steals, for a work-stealing scheduler — and is implementation- and
    processor-count-dependent; the paper (and this reproduction) measures
    it with Wool's steal counts. *)

val task_granularity : Wool_ir.Task_tree.t -> float
(** Cycles of useful work per task, [T_S / N_T]. *)

val load_balancing_granularity : work:int -> steals:int -> float
(** [T_S / N_M] in cycles; [infinity] when no steal happened. *)
