module Tt = Wool_ir.Task_tree

let work = Tt.work

(* Span of one task body: walk the steps keeping the current finish time;
   every Join decides, per the overhead model, whether its spawn/join pair
   is worth running in parallel (see .mli). Children's spans are memoised
   across the DAG. *)
let span ?(overhead = 0) tree =
  let memo = Hashtbl.create 256 in
  let rec node t =
    match Hashtbl.find_opt memo (Tt.id t) with
    | Some s -> s
    | None ->
        let cur = ref 0 in
        let pending = ref [] in
        Array.iter
          (fun step ->
            match step with
            | Tt.Work c -> cur := !cur + c
            | Tt.Call u -> cur := !cur + node u
            | Tt.Spawn u -> pending := (!cur, u) :: !pending
            | Tt.Join -> (
                match !pending with
                | [] -> assert false (* make() validated the shape *)
                | (t0, u) :: rest ->
                    pending := rest;
                    let s = node u in
                    let serial_finish = !cur + s in
                    let parallel_finish = max !cur (t0 + s) in
                    let savings = serial_finish - parallel_finish in
                    if savings < overhead then cur := serial_finish
                    else cur := parallel_finish + overhead))
          (Tt.steps t);
        Hashtbl.add memo (Tt.id t) !cur;
        !cur
  in
  node tree

let parallelism ?overhead tree =
  let s = span ?overhead tree in
  if s = 0 then 1.0 else float_of_int (work tree) /. float_of_int s
