(** Work/span analysis of task trees under the paper's overhead model.

    Table I reports average parallelism [T_1/T_inf] in two models: an
    abstract one where load balancing and communication are free
    ([overhead = 0]) and a "realistic" one where a potentially parallel
    spawn/join pair executes sequentially if the savings from parallel
    execution are less than 2000 cycles, and otherwise runs in parallel
    with an extra 2000-cycle cost ([overhead = 2000]). *)

val work : Wool_ir.Task_tree.t -> int
(** [T_1]: total work, no overheads (same as {!Wool_ir.Task_tree.work}). *)

val span : ?overhead:int -> Wool_ir.Task_tree.t -> int
(** Critical path length under the overhead model (default [0]). *)

val parallelism : ?overhead:int -> Wool_ir.Task_tree.t -> float
(** [work / span]. *)
