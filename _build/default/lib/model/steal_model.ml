type inputs = {
  work : float;
  c2 : float;
  c_p : float;
  steals_per_rep : float;
  p : int;
}

let distribution_steals ~p = max 0 (p - 1)

let balancing_steals ~p ~steals_per_rep =
  Float.max 0.0 (steals_per_rep -. float_of_int (distribution_steals ~p))

let time i =
  if i.p <= 0 then invalid_arg "Steal_model.time: p must be positive";
  let extra = 2.0 *. balancing_steals ~p:i.p ~steals_per_rep:i.steals_per_rep *. i.c2 in
  i.c_p +. ((i.work +. extra) /. float_of_int i.p)

let speedup i = i.work /. time i
