(** The simple steal-cost performance model of §IV-D2a.

    For a repetition of [work] cycles executed by [p] processors with
    [steals_per_rep] steals: the first [p - 1] steals distribute work to
    all processors and correspond to the steal-cost micro-benchmark
    ([c_p]); each of the remaining load-balancing steals makes {e two}
    processors pay the two-processor steal cost [c2] — the thief, and the
    victim that must later join with it:

    [T_p = c_p + (work + 2 (steals_per_rep - (p - 1)) c2) / p]

    The model's assumptions are systematically optimistic (late steals are
    assumed not to overlap and to find work instantly), so it typically
    overestimates speedup — as the paper notes. *)

type inputs = {
  work : float;  (** useful cycles in one repetition, [W] *)
  c2 : float;  (** two-processor steal + join cost *)
  c_p : float;  (** steal cost at [p] processors (micro-benchmark) *)
  steals_per_rep : float;  (** measured [S_p] *)
  p : int;
}

val time : inputs -> float
(** Predicted repetition time [T_p] in cycles. *)

val speedup : inputs -> float
(** [work / time]. *)

val distribution_steals : p:int -> int
(** The [p - 1] steals needed to give every processor work. *)

val balancing_steals : p:int -> steals_per_rep:float -> float
(** Steals beyond distribution, floored at zero. *)
