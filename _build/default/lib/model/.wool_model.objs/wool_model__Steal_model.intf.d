lib/model/steal_model.mli:
