lib/model/steal_model.ml: Float
