(** The Fibonacci micro-benchmark (Figure 2), with no cut-off.

    The extreme of small task granularity: a task for every ~13 cycles of
    useful work. Makes modest demands on load balancing (subtrees near the
    root are large), so it isolates pure task-management overhead. *)

val serial : int -> int
(** Plain recursive fib, the no-overhead baseline [T_S]. *)

val wool : Wool.ctx -> int -> int
(** The SPAWN/CALL/JOIN version of Figure 2. *)

val tree : int -> Wool_ir.Task_tree.t
(** Simulator task tree for [fib n]; internal tasks carry ~13 cycles of
    local work, leaves ~5, matching the paper's granularity. Memoised, so
    the DAG has [n+1] distinct nodes. *)
