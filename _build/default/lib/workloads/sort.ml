module Tt = Wool_ir.Task_tree

(* Merge src.[lo,mid) and src.[mid,hi) into dst.[lo,hi). *)
let merge ~src ~dst lo mid hi =
  let i = ref lo and j = ref mid in
  for k = lo to hi - 1 do
    if !i < mid && (!j >= hi || src.(!i) <= src.(!j)) then begin
      dst.(k) <- src.(!i);
      incr i
    end
    else begin
      dst.(k) <- src.(!j);
      incr j
    end
  done

let insertion_sort a lo hi =
  for i = lo + 1 to hi - 1 do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > v do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done

let base_cutoff = 16

(* Sort a.[lo,hi) leaving the result in [a]; [tmp] is scratch. *)
let rec msort a tmp lo hi =
  if hi - lo <= base_cutoff then insertion_sort a lo hi
  else begin
    let mid = lo + ((hi - lo) / 2) in
    msort a tmp lo mid;
    msort a tmp mid hi;
    Array.blit a lo tmp lo (hi - lo);
    merge ~src:tmp ~dst:a lo mid hi
  end

let serial input =
  let a = Array.copy input in
  let tmp = Array.make (Array.length a) 0 in
  msort a tmp 0 (Array.length a);
  a

let wool ctx ?(cutoff = 64) input =
  let a = Array.copy input in
  let tmp = Array.make (Array.length a) 0 in
  let rec go ctx lo hi =
    if hi - lo <= cutoff then msort a tmp lo hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let right = Wool.spawn ctx (fun ctx -> go ctx mid hi) in
      go ctx lo mid;
      Wool.join ctx right;
      (* both halves sorted in place; merge through private scratch *)
      Array.blit a lo tmp lo (hi - lo);
      merge ~src:tmp ~dst:a lo mid hi
    end
  in
  Wool.call ctx (fun ctx -> go ctx 0 (Array.length a));
  a

let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then ok := false
  done;
  !ok

(* work model: ~8 cycles per element in the base-case sort, ~6 per element
   merged at each internal node *)
let cycles_base = 8
let cycles_merge = 6

let tree ?(cutoff = 64) n =
  if n <= 0 then invalid_arg "Sort.tree: size must be positive";
  let memo = Hashtbl.create 32 in
  let rec build n =
    match Hashtbl.find_opt memo n with
    | Some t -> t
    | None ->
        let t =
          if n <= cutoff then
            (* n log n-ish base case, modelled linearly with a slope *)
            Tt.leaf (cycles_base * n)
          else begin
            let half = n / 2 in
            let rest = n - half in
            Tt.fork2 ~post:(cycles_merge * n) (build half) (build rest)
          end
        in
        Hashtbl.add memo n t;
        t
  in
  build n

let loop_leaves _ =
  invalid_arg
    "Sort.loop_leaves: mergesort is not a parallel loop; there is no \
     work-sharing schedule for it"
