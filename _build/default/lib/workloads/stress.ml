module Tt = Wool_ir.Task_tree

(* The leaf loop: simple integer work with no memory references. The sink
   defeats dead-code elimination and doubles as a checksum. *)
let sink = Atomic.make 0

let leaf_loop iters =
  let acc = ref 0 in
  for i = 1 to iters do
    acc := !acc + (i land 7)
  done;
  !acc

let leaf_result () = Atomic.get sink
let reset_leaf_result () = Atomic.set sink 0

let serial ~height ~leaf_iters =
  let total = ref 0 in
  for _ = 1 to 1 lsl height do
    total := !total + leaf_loop leaf_iters
  done;
  ignore (Atomic.fetch_and_add sink !total : int)

let rec wool ctx ~height ~leaf_iters =
  if height = 0 then
    ignore (Atomic.fetch_and_add sink (leaf_loop leaf_iters) : int)
  else begin
    let right =
      Wool.spawn ctx (fun ctx -> wool ctx ~height:(height - 1) ~leaf_iters)
    in
    wool ctx ~height:(height - 1) ~leaf_iters;
    Wool.join ctx right
  end

let cycles_per_iter = 2
let node_overhead = 4

let tree ~height ~leaf_iters =
  if height < 0 then invalid_arg "Stress.tree: negative height";
  let rec build h =
    if h = 0 then Tt.leaf (cycles_per_iter * leaf_iters)
    else begin
      let child = build (h - 1) in
      Tt.fork2 ~pre:node_overhead ~post:node_overhead child child
    end
  in
  build height
