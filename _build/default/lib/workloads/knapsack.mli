(** 0/1 knapsack by branch and bound (after the Cilk benchmark).

    A second beyond-the-paper workload: the bound makes subtree sizes
    wildly unequal and input-dependent, which is exactly the "task
    execution times can not be predicted in advance" situation (§II) that
    motivates automatic granularity control. The parallel version is
    speculative: both branches are explored with the bound computed
    against the best value known at spawn time, so it may visit more nodes
    than the serial order does, but the optimum is unchanged. *)

type item = { weight : int; value : int }

val random_items : Wool_util.Rng.t -> n:int -> max_weight:int -> item array
(** Items sorted by decreasing value density (required by the bound). *)

val serial : item array -> capacity:int -> int
(** Best achievable value. *)

val wool : Wool.ctx -> ?cutoff:int -> item array -> capacity:int -> int
(** Task-parallel search; branches above [cutoff] depth (default 8)
    spawn. *)

val tree : ?seed:int -> ?cutoff:int -> n:int -> capacity:int -> unit ->
  Wool_ir.Task_tree.t
(** Simulator tree recorded from the serial exploration of a random
    instance (~12 cycles per visited node). *)
