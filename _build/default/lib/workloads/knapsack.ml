module Tt = Wool_ir.Task_tree
module Rng = Wool_util.Rng

type item = { weight : int; value : int }

let random_items rng ~n ~max_weight =
  let items =
    Array.init n (fun _ ->
        { weight = 1 + Rng.int rng max_weight; value = 1 + Rng.int rng 100 })
  in
  (* decreasing value density, for the fractional-relaxation bound *)
  Array.sort
    (fun a b ->
      compare (b.value * a.weight) (a.value * b.weight))
    items;
  items

(* Fractional-relaxation upper bound for the remaining items. *)
let bound items n i cap value =
  let rec go i cap acc =
    if i >= n || cap = 0 then acc
    else begin
      let it = items.(i) in
      if it.weight <= cap then go (i + 1) (cap - it.weight) (acc + it.value)
      else acc + (it.value * cap / it.weight)
    end
  in
  go i cap value

let serial items ~capacity =
  let n = Array.length items in
  let best = ref 0 in
  let rec go i cap value =
    if value > !best then best := value;
    if i < n && bound items n i cap value > !best then begin
      let it = items.(i) in
      if it.weight <= cap then go (i + 1) (cap - it.weight) (value + it.value);
      go (i + 1) cap value
    end
  in
  go 0 capacity 0;
  !best

let wool ctx ?(cutoff = 8) items ~capacity =
  let n = Array.length items in
  (* The best-so-far is shared across workers; stale reads only weaken the
     pruning (more work), never the result. *)
  let best = Atomic.make 0 in
  let rec improve v =
    let cur = Atomic.get best in
    if v > cur && not (Atomic.compare_and_set best cur v) then improve v
  in
  let rec go ctx i cap value =
    improve value;
    if i < n && bound items n i cap value > Atomic.get best then begin
      let it = items.(i) in
      if i < cutoff then begin
        let excl = Wool.spawn ctx (fun ctx -> go ctx (i + 1) cap value) in
        if it.weight <= cap then go ctx (i + 1) (cap - it.weight) (value + it.value);
        Wool.join ctx excl
      end
      else begin
        if it.weight <= cap then go ctx (i + 1) (cap - it.weight) (value + it.value);
        go ctx (i + 1) cap value
      end
    end
  in
  go ctx 0 capacity 0;
  Atomic.get best

let cycles_per_node = 12

(* Record the serial exploration as a task tree: spawning levels fork the
   include/exclude branches; deeper levels collapse into leaves weighted
   by their visited-node count. *)
let tree ?(seed = 17) ?(cutoff = 8) ~n ~capacity () =
  let rng = Rng.make seed in
  let items = random_items rng ~n ~max_weight:(max 1 (capacity / 4)) in
  let best = ref 0 in
  let rec count i cap value =
    if value > !best then best := value;
    if i < n && bound items n i cap value > !best then begin
      let it = items.(i) in
      let a =
        if it.weight <= cap then count (i + 1) (cap - it.weight) (value + it.value)
        else 0
      in
      let b = count (i + 1) cap value in
      1 + a + b
    end
    else 1
  in
  let rec go i cap value =
    if value > !best then best := value;
    if i < n && bound items n i cap value > !best then begin
      let it = items.(i) in
      if i < cutoff then begin
        let incl =
          if it.weight <= cap then
            Some (go (i + 1) (cap - it.weight) (value + it.value))
          else None
        in
        let excl = go (i + 1) cap value in
        match incl with
        | Some a -> Tt.fork2 ~pre:cycles_per_node a excl
        | None -> Tt.make [ Tt.Work cycles_per_node; Tt.Call excl ]
      end
      else Tt.leaf (cycles_per_node * count i cap value)
    end
    else Tt.leaf cycles_per_node
  in
  go 0 capacity 0
