module Tt = Wool_ir.Task_tree
module Rng = Wool_util.Rng

type qt = Zero | Scalar of float | Quad of qt * qt * qt * qt

let dim _q size_hint = size_hint

(* Cycle weights for the simulator work model. *)
let c_madd = 4
let c_div = 20
let c_sqrt = 30
let c_merge = 1

(* ---- serial quadtree algebra; every op returns (value, cycles) ---- *)

let shape_error op = invalid_arg ("Cholesky." ^ op ^ ": quadtree shape mismatch")

let rec neg = function
  | Zero -> Zero
  | Scalar x -> Scalar (-.x)
  | Quad (a, b, c, d) -> Quad (neg a, neg b, neg c, neg d)

let rec add a b =
  match (a, b) with
  | Zero, x | x, Zero -> (x, c_merge)
  | Scalar x, Scalar y -> (Scalar (x +. y), c_madd)
  | Quad (a0, a1, a2, a3), Quad (b0, b1, b2, b3) ->
      let r0, k0 = add a0 b0 in
      let r1, k1 = add a1 b1 in
      let r2, k2 = add a2 b2 in
      let r3, k3 = add a3 b3 in
      (Quad (r0, r1, r2, r3), k0 + k1 + k2 + k3 + c_merge)
  | Scalar _, Quad _ | Quad _, Scalar _ -> shape_error "add"

let rec sub a b =
  match (a, b) with
  | x, Zero -> (x, c_merge)
  | Zero, x -> (neg x, c_merge)
  | Scalar x, Scalar y -> (Scalar (x -. y), c_madd)
  | Quad (a0, a1, a2, a3), Quad (b0, b1, b2, b3) ->
      let r0, k0 = sub a0 b0 in
      let r1, k1 = sub a1 b1 in
      let r2, k2 = sub a2 b2 in
      let r3, k3 = sub a3 b3 in
      (Quad (r0, r1, r2, r3), k0 + k1 + k2 + k3 + c_merge)
  | Scalar _, Quad _ | Quad _, Scalar _ -> shape_error "sub"

(* C = A * B^T. Both arguments are square quadrants of the same size. *)
let rec mul_t a b =
  match (a, b) with
  | Zero, _ | _, Zero -> (Zero, 0)
  | Scalar x, Scalar y -> (Scalar (x *. y), c_madd)
  | Quad (a00, a01, a10, a11), Quad (b00, b01, b10, b11) ->
      let quadrant p q r s =
        let m1, k1 = mul_t p q in
        let m2, k2 = mul_t r s in
        let v, k3 = add m1 m2 in
        (v, k1 + k2 + k3)
      in
      let c00, k00 = quadrant a00 b00 a01 b01 in
      let c01, k01 = quadrant a00 b10 a01 b11 in
      let c10, k10 = quadrant a10 b00 a11 b01 in
      let c11, k11 = quadrant a10 b10 a11 b11 in
      let v =
        match (c00, c01, c10, c11) with
        | Zero, Zero, Zero, Zero -> Zero
        | _ -> Quad (c00, c01, c10, c11)
      in
      (v, k00 + k01 + k10 + k11)
  | Scalar _, Quad _ | Quad _, Scalar _ -> shape_error "mul_t"

(* Solve X * L^T = B for X, with L lower triangular (diagonal quadrants
   nonsingular). *)
let rec backsub b l =
  match (b, l) with
  | Zero, _ -> (Zero, 0)
  | Scalar x, Scalar d ->
      if d = 0.0 then failwith "Cholesky.backsub: singular pivot"
      else (Scalar (x /. d), c_div)
  | Quad (b00, b01, b10, b11), Quad (l00, _, l10, l11) ->
      let x00, k00 = backsub b00 l00 in
      let x10, k10 = backsub b10 l00 in
      let col1 x0 b1 =
        let m, k1 = mul_t x0 l10 in
        let r, k2 = sub b1 m in
        let x, k3 = backsub r l11 in
        (x, k1 + k2 + k3)
      in
      let x01, k01 = col1 x00 b01 in
      let x11, k11 = col1 x10 b11 in
      let v =
        match (x00, x01, x10, x11) with
        | Zero, Zero, Zero, Zero -> Zero
        | _ -> Quad (x00, x01, x10, x11)
      in
      (v, k00 + k10 + k01 + k11)
  | Scalar _, (Zero | Quad _) | Quad _, (Zero | Scalar _) -> shape_error "backsub"

let rec factor a =
  match a with
  | Zero -> failwith "Cholesky.factor: zero diagonal block"
  | Scalar x ->
      if x <= 0.0 then failwith "Cholesky.factor: matrix not positive definite"
      else (Scalar (sqrt x), c_sqrt)
  | Quad (a00, _, a10, a11) ->
      let l00, k1 = factor a00 in
      let l10, k2 = backsub a10 l00 in
      let m, k3 = mul_t l10 l10 in
      let a11', k4 = sub a11 m in
      let l11, k5 = factor a11' in
      (Quad (l00, Zero, l10, l11), k1 + k2 + k3 + k4 + k5)

let serial_factor a _size = fst (factor a)

(* ---- construction ---- *)

let rec insert q size i j v =
  if size = 1 then
    match q with
    | Zero -> Scalar v
    | Scalar x -> Scalar (x +. v)
    | Quad _ -> shape_error "insert"
  else begin
    let half = size / 2 in
    let q00, q01, q10, q11 =
      match q with
      | Zero -> (Zero, Zero, Zero, Zero)
      | Quad (a, b, c, d) -> (a, b, c, d)
      | Scalar _ -> shape_error "insert"
    in
    let i' = i mod half and j' = j mod half in
    if i < half && j < half then Quad (insert q00 half i' j' v, q01, q10, q11)
    else if i < half then Quad (q00, insert q01 half i' j' v, q10, q11)
    else if j < half then Quad (q00, q01, insert q10 half i' j' v, q11)
    else Quad (q00, q01, q10, insert q11 half i' j' v)
  end

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let random_spd rng ~n ~nz =
  if n <= 0 then invalid_arg "Cholesky.random_spd: size must be positive";
  let size = pow2_at_least n 1 in
  let row_sum = Array.make n 0.0 in
  let q = ref Zero in
  for _ = 1 to nz do
    let i = 1 + Rng.int rng (max 1 (n - 1)) in
    let j = Rng.int rng i in
    (* below-diagonal entry; duplicates just accumulate *)
    let v = 0.01 +. Rng.float rng 0.99 in
    q := insert !q size i j v;
    row_sum.(i) <- row_sum.(i) +. v;
    row_sum.(j) <- row_sum.(j) +. v
  done;
  (* Diagonal dominance makes the (symmetric completion of the) matrix
     positive definite; padded rows get unit pivots. *)
  for i = 0 to size - 1 do
    let d = if i < n then 1.0 +. row_sum.(i) else 1.0 in
    q := insert !q size i i d
  done;
  (!q, size)

let rec nonzeros = function
  | Zero -> 0
  | Scalar _ -> 1
  | Quad (a, b, c, d) -> nonzeros a + nonzeros b + nonzeros c + nonzeros d

let to_dense q size =
  let m = Array.make_matrix size size 0.0 in
  let rec go q size r c =
    match q with
    | Zero -> ()
    | Scalar v -> m.(r).(c) <- v
    | Quad (q00, q01, q10, q11) ->
        let half = size / 2 in
        go q00 half r c;
        go q01 half r (c + half);
        go q10 half (r + half) c;
        go q11 half (r + half) (c + half)
  in
  go q size 0 0;
  m

let of_dense m =
  let n = Array.length m in
  let size = pow2_at_least n 1 in
  let q = ref Zero in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if m.(i).(j) <> 0.0 then q := insert !q size i j m.(i).(j)
    done
  done;
  (!q, size)

let check_factor ?(eps = 1e-6) ~a ~l size =
  let da = to_dense a size and dl = to_dense l size in
  let ok = ref true in
  for i = 0 to size - 1 do
    for j = 0 to i do
      (* lower triangle of L L^T vs the stored lower triangle of A *)
      let s = ref 0.0 in
      for k = 0 to size - 1 do
        s := !s +. (dl.(i).(k) *. dl.(j).(k))
      done;
      if Float.abs (!s -. da.(i).(j)) > eps then ok := false
    done
  done;
  !ok

(* ---- real-runtime (Wool) factorisation ---- *)

(* Below this quadrant size the recursion runs serially; mirrors the leaf
   blocks of the Cilk original and keeps task granularity near the paper's
   ~200 cycles. *)
let task_cutoff = 4

let rec w_mul_t ctx a b size =
  if size <= task_cutoff then fst (mul_t a b)
  else
    match (a, b) with
    | Zero, _ | _, Zero -> Zero
    | Quad (a00, a01, a10, a11), Quad (b00, b01, b10, b11) ->
        let half = size / 2 in
        let quadrant ctx p q r s =
          let m2 = Wool.spawn ctx (fun ctx -> w_mul_t ctx r s half) in
          let m1 = w_mul_t ctx p q half in
          let m2 = Wool.join ctx m2 in
          fst (add m1 m2)
        in
        let f01 =
          Wool.spawn ctx (fun ctx -> quadrant ctx a00 b10 a01 b11)
        in
        let f10 =
          Wool.spawn ctx (fun ctx -> quadrant ctx a10 b00 a11 b01)
        in
        let f11 =
          Wool.spawn ctx (fun ctx -> quadrant ctx a10 b10 a11 b11)
        in
        let c00 = quadrant ctx a00 b00 a01 b01 in
        let c11 = Wool.join ctx f11 in
        let c10 = Wool.join ctx f10 in
        let c01 = Wool.join ctx f01 in
        (match (c00, c01, c10, c11) with
        | Zero, Zero, Zero, Zero -> Zero
        | _ -> Quad (c00, c01, c10, c11))
    | Scalar _, _ | _, Scalar _ -> shape_error "w_mul_t"

let rec w_backsub ctx b l size =
  if size <= task_cutoff then fst (backsub b l)
  else
    match (b, l) with
    | Zero, _ -> Zero
    | Quad (b00, b01, b10, b11), Quad (l00, _, l10, l11) ->
        let half = size / 2 in
        let col ctx b0 b1 =
          let x0 = w_backsub ctx b0 l00 half in
          let m = w_mul_t ctx x0 l10 half in
          let x1 = w_backsub ctx (fst (sub b1 m)) l11 half in
          (x0, x1)
        in
        let bottom = Wool.spawn ctx (fun ctx -> col ctx b10 b11) in
        let x00, x01 = col ctx b00 b01 in
        let x10, x11 = Wool.join ctx bottom in
        (match (x00, x01, x10, x11) with
        | Zero, Zero, Zero, Zero -> Zero
        | _ -> Quad (x00, x01, x10, x11))
    | Scalar _, _ | _, (Zero | Scalar _) -> shape_error "w_backsub"

let rec w_factor ctx a size =
  if size <= task_cutoff then fst (factor a)
  else
    match a with
    | Quad (a00, _, a10, a11) ->
        let half = size / 2 in
        let l00 = w_factor ctx a00 half in
        let l10 = w_backsub ctx a10 l00 half in
        let m = w_mul_t ctx l10 l10 half in
        let a11' = fst (sub a11 m) in
        let l11 = w_factor ctx a11' half in
        Quad (l00, Zero, l10, l11)
    | Zero | Scalar _ -> fst (factor a)

let wool_factor ctx a size = w_factor ctx a size

(* ---- simulator task-tree recorder: same recursion, emitting nodes ---- *)

let work_leaf cycles = Tt.leaf (max 1 cycles)

let rec t_mul_t a b size =
  if size <= task_cutoff then begin
    let v, k = mul_t a b in
    (v, work_leaf k)
  end
  else
    match (a, b) with
    | Zero, _ | _, Zero -> (Zero, work_leaf 1)
    | Quad (a00, a01, a10, a11), Quad (b00, b01, b10, b11) ->
        let half = size / 2 in
        let quadrant p q r s =
          let m1, t1 = t_mul_t p q half in
          let m2, t2 = t_mul_t r s half in
          let v, k = add m1 m2 in
          (v, Tt.fork2 ~post:k t1 t2)
        in
        let c00, t00 = quadrant a00 b00 a01 b01 in
        let c01, t01 = quadrant a00 b10 a01 b11 in
        let c10, t10 = quadrant a10 b00 a11 b01 in
        let c11, t11 = quadrant a10 b10 a11 b11 in
        let v =
          match (c00, c01, c10, c11) with
          | Zero, Zero, Zero, Zero -> Zero
          | _ -> Quad (c00, c01, c10, c11)
        in
        (v, Tt.spawn_all [ t00; t01; t10; t11 ])
    | Scalar _, _ | _, Scalar _ -> shape_error "t_mul_t"

let rec t_backsub b l size =
  if size <= task_cutoff then begin
    let v, k = backsub b l in
    (v, work_leaf k)
  end
  else
    match (b, l) with
    | Zero, _ -> (Zero, work_leaf 1)
    | Quad (b00, b01, b10, b11), Quad (l00, _, l10, l11) ->
        let half = size / 2 in
        let col b0 b1 =
          let x0, t0 = t_backsub b0 l00 half in
          let m, tm = t_mul_t x0 l10 half in
          let r, k = sub b1 m in
          let x1, t1 = t_backsub r l11 half in
          (* sequential chain inside the column task *)
          (x0, x1, Tt.make [ Tt.Call t0; Tt.Call tm; Tt.Work (max 1 k); Tt.Call t1 ])
        in
        let x00, x01, ttop = col b00 b01 in
        let x10, x11, tbot = col b10 b11 in
        let v =
          match (x00, x01, x10, x11) with
          | Zero, Zero, Zero, Zero -> Zero
          | _ -> Quad (x00, x01, x10, x11)
        in
        (v, Tt.fork2 ttop tbot)
    | Scalar _, _ | _, (Zero | Scalar _) -> shape_error "t_backsub"

let rec t_factor a size =
  if size <= task_cutoff then begin
    let v, k = factor a in
    (v, work_leaf k)
  end
  else
    match a with
    | Quad (a00, _, a10, a11) ->
        let half = size / 2 in
        let l00, t1 = t_factor a00 half in
        let l10, t2 = t_backsub a10 l00 half in
        let m, t3 = t_mul_t l10 l10 half in
        let a11', k4 = sub a11 m in
        let l11, t5 = t_factor a11' half in
        (* the Cilk original spawns each phase and syncs immediately:
           spawn/join pairs with no overlap, but they count as tasks *)
        ( Quad (l00, Zero, l10, l11),
          Tt.make
            [
              Tt.Spawn t1; Tt.Join; Tt.Spawn t2; Tt.Join; Tt.Spawn t3; Tt.Join;
              Tt.Work (max 1 k4); Tt.Spawn t5; Tt.Join;
            ] )
    | Zero | Scalar _ ->
        let v, k = factor a in
        (v, work_leaf k)

let tree ?(seed = 7) ~n ~nz () =
  let rng = Rng.make seed in
  let a, size = random_spd rng ~n ~nz in
  let _, t = t_factor a size in
  t
