(** The stress micro-benchmark (§IV-A): precisely controllable parallelism
    and granularity.

    One repetition is a balanced binary tree of tasks of the given height;
    each leaf runs a simple loop with no memory references ([2] cycles per
    iteration on the paper's machine). Leaf granularity and tree height
    control the parallel-region size; repetitions serialise between trees,
    stressing load-balancing performance. *)

val serial : height:int -> leaf_iters:int -> unit
(** Run one tree's worth of leaf loops sequentially (baseline). *)

val wool : Wool.ctx -> height:int -> leaf_iters:int -> unit
(** One tree of tasks on the real runtime. *)

val leaf_result : unit -> int
(** Accumulated checksum of the real leaf loops (defeats dead-code
    elimination; also a cross-mode correctness check). *)

val reset_leaf_result : unit -> unit

val tree : height:int -> leaf_iters:int -> Wool_ir.Task_tree.t
(** Simulator tree: height [h] with [2 cycles x leaf_iters] leaves. The
    whole tree is 2 DAG nodes per level. *)
