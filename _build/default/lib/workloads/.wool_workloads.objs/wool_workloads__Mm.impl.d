lib/workloads/mm.ml: Array Float Wool Wool_ir Wool_util
