lib/workloads/cholesky.mli: Wool Wool_ir Wool_util
