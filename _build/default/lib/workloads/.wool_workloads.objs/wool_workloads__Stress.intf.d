lib/workloads/stress.mli: Wool Wool_ir
