lib/workloads/ssf.mli: Wool Wool_ir
