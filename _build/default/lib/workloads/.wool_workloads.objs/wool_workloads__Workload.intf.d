lib/workloads/workload.mli: Wool_ir
