lib/workloads/sort.ml: Array Hashtbl Wool Wool_ir
