lib/workloads/fib.ml: Hashtbl Wool Wool_ir
