lib/workloads/stress.ml: Atomic Wool Wool_ir
