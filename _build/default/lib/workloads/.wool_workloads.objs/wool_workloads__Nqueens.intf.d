lib/workloads/nqueens.mli: Wool Wool_ir
