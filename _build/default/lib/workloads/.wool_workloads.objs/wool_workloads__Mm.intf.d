lib/workloads/mm.mli: Wool Wool_ir Wool_util
