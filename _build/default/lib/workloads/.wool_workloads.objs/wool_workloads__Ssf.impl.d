lib/workloads/ssf.ml: Array String Wool Wool_ir
