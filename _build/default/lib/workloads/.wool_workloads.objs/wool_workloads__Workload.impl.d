lib/workloads/workload.ml: Cholesky Fib List Mm Printf Sort Ssf Stress Wool_ir
