lib/workloads/knapsack.mli: Wool Wool_ir Wool_util
