lib/workloads/nqueens.ml: List Wool Wool_ir
