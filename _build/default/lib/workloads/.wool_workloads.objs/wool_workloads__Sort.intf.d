lib/workloads/sort.mli: Wool Wool_ir
