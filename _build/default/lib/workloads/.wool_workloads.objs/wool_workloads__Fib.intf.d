lib/workloads/fib.mli: Wool Wool_ir
