lib/workloads/cholesky.ml: Array Float Wool Wool_ir Wool_util
