lib/workloads/knapsack.ml: Array Atomic Wool Wool_ir Wool_util
