(** Sparse Cholesky factorisation on quadtree matrices (§IV-A; after the
    Cilk-5 distribution's [cholesky]).

    The matrix is a power-of-two quadtree with scalar leaves and explicit
    zero quadrants; sparsity prunes whole subtrees. The factorisation is
    the classic recursive scheme — factor the leading quadrant, triangular
    solve for the off-diagonal, symmetric rank update, factor the trailing
    quadrant — with the solves and update quadrants spawned as nested
    tasks. The task tree is therefore data-dependent, which is what gives
    cholesky its small load-balancing granularity in Table I.

    Inputs are generated like the paper's: a random sparse symmetric
    pattern of [nz] below-diagonal nonzeros on an [n x n] matrix, made
    positive definite by diagonal dominance. *)

type qt = Zero | Scalar of float | Quad of qt * qt * qt * qt

val dim : qt -> int -> int
(** [dim q size_hint] — quadtrees don't store their size; operations take
    it as a parameter. Returns [size_hint] (identity; documentation aid). *)

val random_spd : Wool_util.Rng.t -> n:int -> nz:int -> qt * int
(** A random sparse SPD matrix (lower triangle stored) and its padded
    power-of-two size. The actual distinct below-diagonal nonzero count is
    at most [nz] (duplicates collapse). *)

val serial_factor : qt -> int -> qt
(** Sequential Cholesky: returns lower-triangular [L] with [L Lt = A].
    Raises [Failure] on a non-positive pivot. *)

val wool_factor : Wool.ctx -> qt -> int -> qt
(** Task-parallel factorisation on the real runtime. *)

val to_dense : qt -> int -> float array array
val of_dense : float array array -> qt * int

val check_factor : ?eps:float -> a:qt -> l:qt -> int -> bool
(** Verify [L Lt = A] on the lower triangle (dense expansion; use on small
    sizes). *)

val tree : ?seed:int -> n:int -> nz:int -> unit -> Wool_ir.Task_tree.t
(** Simulator task tree recorded from an instrumented factorisation of a
    random instance: same spawn structure, leaf work = flop-proportional
    cycles. Deterministic in [seed]. *)

val nonzeros : qt -> int
(** Scalar leaves in the quadtree (diagnostics). *)
