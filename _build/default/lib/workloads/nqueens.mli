(** N-queens solution counting by exhaustive backtracking.

    Not part of the paper's grid, but a standard member of the Cilk/Wool
    fine-grained benchmark family: an irregular tree (subtree sizes depend
    on how early branches are pruned) with tiny per-node work, used here to
    validate the runtime beyond the paper's four applications and as an
    extra simulator workload. Each row placement spawns the children of
    surviving prefixes. *)

val serial : int -> int
(** Number of solutions for an [n x n] board. *)

val wool : Wool.ctx -> ?cutoff:int -> int -> int
(** Task-parallel count: placements above the [cutoff] depth (default 3)
    spawn, deeper ones run serially. *)

val tree : ?cutoff:int -> int -> Wool_ir.Task_tree.t
(** Simulator task tree recorded from the same recursion; leaf work models
    the serial subtree's node count at ~8 cycles per placement test. *)

val known : (int * int) list
(** Reference values for n = 1..10 (for tests). *)
