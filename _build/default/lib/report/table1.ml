module W = Wool_workloads.Workload
module Tt = Wool_ir.Task_tree
module Span = Wool_metrics.Span
module Gran = Wool_metrics.Granularity
module E = Wool_sim.Engine
module P = Wool_sim.Policy
module C = Exp_common

type row = {
  label : string;
  reps : int;
  parallelism0 : float;
  parallelism2000 : float;
  rep_kcycles : float;
  g_t : float;
  g_l : (int * float) list;
}

let compute_row (wl : W.t) =
  let root = W.root wl in
  let work = Tt.work root in
  let g_l =
    List.filter_map
      (fun p ->
        if p < 2 then None
        else begin
          let r = C.run_sim P.wool p wl in
          Some (p, Gran.load_balancing_granularity ~work ~steals:r.E.steals /. 1000.0)
        end)
      C.procs
  in
  {
    label = W.label wl;
    reps = wl.W.reps;
    parallelism0 = Span.parallelism ~overhead:0 root;
    parallelism2000 = Span.parallelism ~overhead:2000 root;
    rep_kcycles = float_of_int (Tt.work wl.W.region) /. 1000.0;
    g_t = Gran.task_granularity root;
    g_l;
  }

let compute ?grid () =
  let grid = match grid with Some g -> g | None -> W.table1_grid () in
  List.map compute_row grid

let run () =
  print_endline "== Table I: workload characteristics (scaled inputs) ==";
  let header =
    [ "workload"; "reps"; "par(0)"; "par(2k)"; "RepSz(k)"; "G_T" ]
    @ List.map (fun p -> Printf.sprintf "G_L(%d)" p) [ 2; 3; 4; 5; 6; 7; 8 ]
  in
  let t = Wool_util.Table.create ~header () in
  List.iter
    (fun r ->
      Wool_util.Table.add_row t
        ([
           r.label;
           string_of_int r.reps;
           Wool_util.Table.cell_f r.parallelism0;
           Wool_util.Table.cell_f r.parallelism2000;
           Wool_util.Table.cell_f r.rep_kcycles;
           Wool_util.Table.cell_f ~dec:0 r.g_t;
         ]
        @ List.map (fun (_, v) -> C.fmt_k (v *. 1000.0)) r.g_l))
    (compute ());
  Wool_util.Table.print t
