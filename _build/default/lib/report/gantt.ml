module E = Wool_sim.Engine
module P = Wool_sim.Policy
module T = Wool_sim.Trace
module W = Wool_workloads.Workload

let compute ?workload ?(workers = 8) () =
  let wl =
    match workload with
    | Some w -> w
    | None -> W.stress ~reps:8 ~height:8 ~leaf_iters:256 ()
  in
  let root = W.root wl in
  let first = E.run ~policy:P.wool ~workers root in
  let trace = T.create ~buckets:96 ~workers ~horizon:first.E.time () in
  let second = E.run ~trace ~policy:P.wool ~workers root in
  assert (second.E.trace_hash = first.E.trace_hash);
  (trace, second)

let show wl =
  let trace, r = compute ~workload:wl () in
  Printf.printf "%s on 8 simulated workers (Wool): %d cycles, %d steals\n"
    (W.label wl) r.E.time r.E.steals;
  T.print trace;
  print_newline ()

let run () =
  print_endline "== Gantt traces (Wool policy) ==";
  show (W.stress ~reps:8 ~height:8 ~leaf_iters:256 ());
  show (W.mm ~reps:4 64)
