(** Table II: optimising inlined tasks — measured on the real runtime.

    Single-worker executions of fib with the synchronisation ladder of
    §IV-B: per-worker locks ("base"), atomic exchange on the descriptor
    state ("synchronize on task"), the task-specific join, and private
    tasks in the best (all private) and worst (no private) cases, against
    the pure serial function. The per-task overhead is
    [(T_1 - T_S) / N_T], reported in nanoseconds and in nominal cycles
    (see {!Wool_util.Clock} for the scale). Absolute values are
    machine-specific; the reproduced claim is the ordering and the
    roughly one-order-of-magnitude ladder from locked joins down to
    private tasks. *)

type row = {
  version : string;
  seconds : float;  (** median wall time of one full fib run *)
  ns_per_task : float;
  cycles_per_task : float;
}

val compute : ?n:int -> ?repeats:int -> unit -> row list
(** Default [n = 30], [repeats = 3] (medians). The last row is "serial"
    with zero overhead by construction. *)

val run : unit -> unit
