(** Figure 4: stealing implementations compared (§IV-C).

    The base / peek / trylock locking ladder against the direct task
    stack's nolock synchronisation, on the stress benchmark with 512-cycle
    leaves, one panel per parallel-region size. As in the paper, the gap
    between the methods closes as the regions grow (more parallel slack,
    fewer steals per unit of work). *)

type panel = {
  height : int;
  reps : int;
  series : (string * (float * float) list) list;
      (** per policy: (p, absolute speedup) *)
}

val compute : ?heights:(int * int) list -> unit -> panel list
(** [heights] are (tree height, reps) pairs; default
    [(8, 32); (9, 16); (10, 8); (11, 4)]. *)

val run : unit -> unit
