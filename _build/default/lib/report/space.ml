module E = Wool_sim.Engine
module P = Wool_sim.Policy
module W = Wool_workloads.Workload

type row = { n : int; depth_by_system : (string * int) list }

let systems = [ P.wool_all_public; P.tbb; P.cilk ]

let compute ?(sizes = [ 64; 256; 1024 ]) () =
  List.map
    (fun n ->
      let wl = W.spawn_loop ~n ~leaf_work:500 () in
      let root = W.root wl in
      {
        n;
        depth_by_system =
          List.map
            (fun (pol : P.t) ->
              let r = E.run ~policy:pol ~workers:2 root in
              (pol.P.name, r.E.max_pool_depth))
            systems;
      })
    sizes

let run () =
  print_endline "== Space: task-pool depth of a flat spawn loop (sec. I) ==";
  let t =
    Wool_util.Table.create
      ~header:("loop length" :: List.map (fun (p : P.t) -> p.P.name) systems)
      ()
  in
  List.iter
    (fun r ->
      Wool_util.Table.add_row t
        (string_of_int r.n
        :: List.map (fun (_, d) -> string_of_int d) r.depth_by_system))
    (compute ());
  Wool_util.Table.print t;
  print_endline
    "steal-child pools (Wool, TBB) grow with the loop; the steal-parent\n\
     pool (Cilk++) stays constant."
