(** Gantt traces of representative schedules (diagnostic experiment).

    Renders per-worker activity timelines for a coarse workload (mm: long
    quiet application phases, few steals) and a fine one (stress: visible
    per-region steal storms and leapfrog waits), using the deterministic
    two-pass run-then-trace workflow. *)

val compute :
  ?workload:Wool_workloads.Workload.t -> ?workers:int -> unit ->
  Wool_sim.Trace.t * Wool_sim.Engine.result
(** Trace one workload (default stress 256/h8, 8 workers). *)

val run : unit -> unit
