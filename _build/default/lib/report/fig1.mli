(** Figure 1: absolute speedup of fib (no cutoff) and relative speedup of a
    small-region stress workload, on the four systems.

    Scaling: the paper uses fib(42) and stress(4096, 3, 128K reps); we use
    fib [n] (default 27) and stress(4096, 3, [reps]) (default 64) — same
    tree shapes, sized for simulation. *)

type row = { system : string; points : (float * float) list }

val fib_series : ?n:int -> unit -> row list
(** Absolute speedup (work / T_p), p = 1..8. *)

val stress_series : ?reps:int -> unit -> row list
(** Speedup relative to the single-processor Wool execution, p = 1..8. *)

val run : unit -> unit
(** Print both panels (table + ASCII plot). *)
