module E = Wool_sim.Engine
module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module C = Exp_common

type row = { procs : int; by_category : (string * float) list }
type panel = { workload : string; rows : row list }

let categories = [ E.TR; E.LA; E.NA; E.ST; E.LF ]

let default_grid () =
  [
    W.cholesky ~reps:8 ~n:125 ~nz:500 ();
    W.cholesky ~reps:1 ~n:500 ~nz:2000 ();
    W.mm ~reps:16 64;
    W.stress ~reps:16 ~height:8 ~leaf_iters:256 ();
  ]

let compute ?grid ?(procs = [ 1; 2; 4; 8; 12 ]) () =
  let grid = match grid with Some g -> g | None -> default_grid () in
  List.map
    (fun wl ->
      let na1 =
        let r = C.run_sim P.wool 1 wl in
        float_of_int r.E.breakdown.(0).(E.category_index E.NA)
      in
      let rows =
        List.map
          (fun p ->
            let r = C.run_sim P.wool p wl in
            let total cat =
              Array.fold_left
                (fun acc per_worker -> acc + per_worker.(E.category_index cat))
                0 r.E.breakdown
            in
            {
              procs = p;
              by_category =
                List.map
                  (fun cat ->
                    (E.category_name cat, float_of_int (total cat) /. na1))
                  categories;
            })
          procs
      in
      { workload = W.label wl; rows })
    grid

let run () =
  print_endline "== Figure 6: CPU time breakdown (Wool), normalized to 1-proc NA ==";
  List.iter
    (fun panel ->
      let t =
        Wool_util.Table.create ~title:panel.workload
          ~header:[ "procs"; "TR"; "LA"; "NA"; "ST"; "LF"; "total" ]
          ()
      in
      List.iter
        (fun r ->
          let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 r.by_category in
          Wool_util.Table.add_row t
            (string_of_int r.procs
             :: List.map (fun (_, v) -> Wool_util.Table.cell_f ~dec:3 v) r.by_category
            @ [ Wool_util.Table.cell_f ~dec:3 total ]))
        panel.rows;
      Wool_util.Table.print t)
    (compute ())
