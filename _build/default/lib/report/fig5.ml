module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module Tt = Wool_ir.Task_tree
module C = Exp_common

type panel = {
  workload : string;
  normalization : string;
  series : (string * (float * float) list) list;
}

let openmp_for (wl : W.t) =
  match wl.W.loop_leaves with Some _ -> P.openmp_loop | None -> P.openmp_tasks

let compute_panel (wl : W.t) =
  let systems = [ P.wool; P.cilk; P.tbb; openmp_for wl ] in
  let relative_to_wool1 = wl.W.name = "stress" in
  let baseline =
    if relative_to_wool1 then C.sim_time P.wool 1 wl else Tt.work (W.root wl)
  in
  {
    workload = W.label wl;
    normalization =
      (if relative_to_wool1 then "vs 1-proc Wool" else "absolute");
    series =
      List.map
        (fun pol -> (pol.P.name, C.speedup_series ~baseline pol wl))
        systems;
  }

let compute ?grid () =
  let grid = match grid with Some g -> g | None -> W.table1_grid () in
  List.map compute_panel grid

let print_panel p =
  let title = Printf.sprintf "%s: speedup (%s)" p.workload p.normalization in
  let t =
    Wool_util.Table.create ~title
      ~header:("system" :: List.map string_of_int [ 1; 2; 3; 4; 5; 6; 7; 8 ])
      ()
  in
  List.iter
    (fun (name, pts) ->
      Wool_util.Table.add_row t
        (name :: List.map (fun (_, s) -> Wool_util.Table.cell_f ~dec:2 s) pts))
    p.series;
  Wool_util.Table.print t;
  Wool_util.Plot.print ~title ~xlabel:"processors" ~ylabel:"speedup"
    (List.map
       (fun (name, pts) -> { Wool_util.Plot.label = name; points = pts })
       p.series)

let run () =
  print_endline "== Figure 5: fine grained applications on four systems ==";
  List.iter print_panel (compute ())
