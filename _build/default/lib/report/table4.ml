module E = Wool_sim.Engine
module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module Tt = Wool_ir.Task_tree
module C = Exp_common

type cell = { modeled : float; measured : float }
type row = { system : string; by_procs : (int * cell) list }

let systems = [ P.wool; P.cilk; P.tbb ]

let compute ?(n = 64) ?(reps = 16) () =
  let wl = W.mm ~reps n in
  let rep_work = Tt.work wl.W.region in
  let steal_costs = Table3.compute () in
  let cost_of name =
    match List.find_opt (fun r -> r.Table3.system = name) steal_costs with
    | Some r -> r.Table3.steal_cost
    | None -> invalid_arg "Table4.compute: unknown system"
  in
  (* The number of steals is measured once, on Wool, and reused for every
     system's model, as the paper does. *)
  let steals_per_rep p =
    let r = C.run_sim P.wool p wl in
    float_of_int r.E.steals /. float_of_int reps
  in
  let sp = List.map (fun p -> (p, steals_per_rep p)) [ 2; 4; 8 ] in
  List.map
    (fun (policy : P.t) ->
      let costs = cost_of policy.P.name in
      let c2 = List.assoc 2 costs in
      let by_procs =
        List.map
          (fun p ->
            let cp = List.assoc p costs in
            let s_p = List.assoc p sp in
            let modeled =
              Wool_model.Steal_model.speedup
                {
                  Wool_model.Steal_model.work = float_of_int rep_work;
                  c2 = float_of_int c2;
                  c_p = float_of_int cp;
                  steals_per_rep = s_p;
                  p;
                }
            in
            let measured =
              float_of_int (Tt.work (W.root wl))
              /. float_of_int (C.sim_time policy p wl)
            in
            (p, { modeled; measured }))
          [ 2; 4; 8 ]
      in
      { system = policy.P.name; by_procs })
    systems

let run () =
  print_endline "== Table IV: steal cost model vs measured speedup, mm(64) ==";
  let t =
    Wool_util.Table.create
      ~header:[ "system"; "2"; "4"; "8" ]
      ()
  in
  List.iter
    (fun r ->
      Wool_util.Table.add_row t
        (r.system
        :: List.map
             (fun (_, c) -> Printf.sprintf "%.1f (%.1f)" c.modeled c.measured)
             r.by_procs))
    (compute ());
  Wool_util.Table.print t;
  print_endline "format: modeled (measured)"
