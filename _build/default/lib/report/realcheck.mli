(** End-to-end verification matrix on the real runtimes.

    Runs every real kernel (fib, stress, mm, ssf, cholesky, nqueens,
    knapsack) against every scheduler the repository implements for real —
    the five Wool pool modes plus the steal-parent effects runtime — with
    multiple workers, verifies each result against the serial computation,
    and reports wall time and steal counts. This is the "does the whole
    stack actually work" experiment; speedups on a single-core container
    are not meaningful and are not the point. *)

type cell = {
  kernel : string;
  scheduler : string;
  ok : bool;
  millis : float;
  spawns : int;
  steals : int;
}

val compute : ?workers:int -> unit -> cell list
(** Default 3 workers. *)

val run : unit -> unit
(** Print the matrix; exits nonzero rows are marked FAIL (none
    expected). *)
