(** Figure 5: speedup of the fine grained applications on the four
    systems, one panel per workload.

    cholesky, mm and ssf report absolute speedup (against an ideal
    sequential execution of the same work); stress panels report speedup
    relative to the single-processor Wool execution, as in the paper. mm
    and ssf run under OpenMP as work-sharing loops; everything else under
    OpenMP tasking. *)

type panel = {
  workload : string;
  normalization : string;  (** "absolute" or "vs 1-proc Wool" *)
  series : (string * (float * float) list) list;
}

val compute : ?grid:Wool_workloads.Workload.t list -> unit -> panel list
val run : unit -> unit
