(** §I space behaviour: task-pool footprint of spawn loops.

    In [for (...) spawn foo(p); sync], a steal-child system (Wool, TBB)
    keeps one descriptor per pending iteration — space proportional to the
    loop length — whereas steal-parent Cilk++ executes each child
    immediately and keeps only the current continuation stealable:
    constant task-pool space. Measured as the maximum per-worker pool
    depth in the simulator. *)

type row = {
  n : int;  (** loop length *)
  depth_by_system : (string * int) list;  (** max task-pool depth *)
}

val compute : ?sizes:int list -> unit -> row list
(** Default sizes 64, 256, 1024. *)

val run : unit -> unit
