lib/report/table2.ml: Fun List Printf Wool Wool_util Wool_workloads
