lib/report/gantt.ml: Printf Wool_sim Wool_workloads
