lib/report/table1.ml: Exp_common List Printf Wool_ir Wool_metrics Wool_sim Wool_util Wool_workloads
