lib/report/fig5.mli: Wool_workloads
