lib/report/realcheck.ml: Array Atomic List String Wool Wool_cactus Wool_util Wool_workloads
