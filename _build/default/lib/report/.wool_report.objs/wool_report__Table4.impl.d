lib/report/table4.ml: Exp_common List Printf Table3 Wool_ir Wool_model Wool_sim Wool_util Wool_workloads
