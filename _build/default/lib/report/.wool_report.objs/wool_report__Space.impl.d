lib/report/space.ml: List Wool_sim Wool_util Wool_workloads
