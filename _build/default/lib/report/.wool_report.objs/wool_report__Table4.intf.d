lib/report/table4.mli:
