lib/report/gantt.mli: Wool_sim Wool_workloads
