lib/report/table1.mli: Wool_workloads
