lib/report/fig4.mli:
