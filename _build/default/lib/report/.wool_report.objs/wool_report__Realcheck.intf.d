lib/report/realcheck.mli:
