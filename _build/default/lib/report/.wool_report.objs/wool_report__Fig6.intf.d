lib/report/fig6.mli: Wool_workloads
