lib/report/trace_summary.mli:
