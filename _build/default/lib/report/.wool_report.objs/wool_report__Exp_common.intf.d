lib/report/exp_common.mli: Wool_sim Wool_workloads
