lib/report/exp_common.ml: List Printf Wool_ir Wool_sim Wool_workloads
