lib/report/space.mli:
