lib/report/registry.ml: Ablation Fig1 Fig4 Fig5 Fig6 Gantt List Realcheck Space Table1 Table2 Table3 Table4
