lib/report/table3.mli:
