lib/report/table2.mli:
