lib/report/trace_summary.ml: Array Lazy List Printf String Wool Wool_ir Wool_metrics Wool_sim Wool_trace Wool_util Wool_workloads
