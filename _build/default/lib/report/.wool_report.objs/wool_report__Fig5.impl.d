lib/report/fig5.ml: Exp_common List Printf Wool_ir Wool_sim Wool_util Wool_workloads
