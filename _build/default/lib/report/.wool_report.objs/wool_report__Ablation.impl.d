lib/report/ablation.ml: List Printf Wool_ir Wool_sim Wool_util Wool_workloads
