lib/report/fig1.mli:
