lib/report/fig4.ml: Exp_common List Printf Wool_ir Wool_sim Wool_util Wool_workloads
