lib/report/fig1.ml: Exp_common List Wool_ir Wool_sim Wool_util Wool_workloads
