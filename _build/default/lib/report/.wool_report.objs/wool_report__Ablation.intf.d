lib/report/ablation.mli: Wool_workloads
