lib/report/registry.mli:
