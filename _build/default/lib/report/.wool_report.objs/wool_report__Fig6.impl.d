lib/report/fig6.ml: Array Exp_common List Wool_sim Wool_util Wool_workloads
