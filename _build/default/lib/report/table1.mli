(** Table I: workload characteristics.

    For every workload in the (scaled) grid: average parallelism under the
    0-cycle and 2000-cycle overhead models, repetition size in kilocycles,
    task granularity [G_T] in cycles, and load balancing granularity
    [G_L(p)] in kilocycles for p = 2..8, measured from Wool-policy
    simulation steal counts. *)

type row = {
  label : string;
  reps : int;
  parallelism0 : float;
  parallelism2000 : float;
  rep_kcycles : float;
  g_t : float;
  g_l : (int * float) list;  (** (p, kilocycles per steal) for p = 2..8 *)
}

val compute : ?grid:Wool_workloads.Workload.t list -> unit -> row list
val run : unit -> unit
