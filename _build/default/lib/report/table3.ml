module E = Wool_sim.Engine
module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module Tt = Wool_ir.Task_tree
module C = Exp_common

type row = {
  system : string;
  inlined_lo : int;
  inlined_hi : int;
  steal_cost : (int * int) list;
}

(* Height-k balanced tree of 2^k leaves, each [leaf_cycles] of work, run on
   2^k workers; overhead = T - (startup + leaf + per-level node work). *)
let steal_overhead policy ~leaf_cycles ~k =
  let wl =
    W.v ~name:"steal-micro" ~params:(string_of_int k) ~reps:1
      (Wool_workloads.Stress.tree ~height:k ~leaf_iters:(leaf_cycles / 2))
  in
  let p = 1 lsl k in
  let t_p = C.sim_time policy p wl in
  let t_ref = policy.P.costs.Wool_sim.Costs.startup + leaf_cycles in
  max 0 (t_p - t_ref)

let systems =
  [
    (P.wool, 3, 19);
    (P.cilk, 134, 134);
    (P.tbb, 323, 323);
    (P.openmp_tasks, 878, 878);
  ]

let compute ?(leaf_cycles = 100_000) () =
  List.map
    (fun (policy, lo, hi) ->
      {
        system = policy.P.name;
        inlined_lo = lo;
        inlined_hi = hi;
        steal_cost =
          List.map
            (fun k -> (1 lsl k, steal_overhead policy ~leaf_cycles ~k))
            [ 1; 2; 3 ];
      })
    systems

let run () =
  print_endline "== Table III: costs (cycles) of inlined and stolen tasks ==";
  print_endline
    "(inlined = calibrated input; steal columns = emergent from the\n\
    \ 2^k-leaves-on-2^k-processors micro benchmark)";
  let t =
    Wool_util.Table.create ~header:[ "system"; "inlined"; "2"; "4"; "8" ] ()
  in
  List.iter
    (fun r ->
      let inl =
        if r.inlined_lo = r.inlined_hi then string_of_int r.inlined_lo
        else Printf.sprintf "%d-%d" r.inlined_lo r.inlined_hi
      in
      Wool_util.Table.add_row t
        (r.system :: inl
        :: List.map (fun (_, c) -> Wool_util.Table.cell_i c) r.steal_cost))
    (compute ());
  Wool_util.Table.print t
