(** Shared helpers for the per-experiment report modules. *)

val procs : int list
(** Processor counts used throughout: 1–8, as in the paper's figures. *)

val default_seed : int

val run_sim :
  ?seed:int -> Wool_sim.Policy.t -> int -> Wool_workloads.Workload.t ->
  Wool_sim.Engine.result
(** Simulate a workload (its full repetition root) on [p] workers. *)

val run_loop :
  Wool_sim.Costs.t -> int -> Wool_workloads.Workload.t ->
  Wool_sim.Loop_sim.result
(** Static work-sharing run; requires the workload to expose loop leaves. *)

val sim_time :
  ?seed:int -> Wool_sim.Policy.t -> int -> Wool_workloads.Workload.t -> int
(** Completion time only, dispatching loop-shaped OpenMP automatically:
    a [Loop_static] policy uses {!run_loop} when the workload has leaves. *)

val absolute_speedup :
  ?seed:int -> Wool_sim.Policy.t -> int -> Wool_workloads.Workload.t -> float
(** Work of the full root divided by simulated completion time — speedup
    over an ideal sequential execution with zero task overhead, the
    normalisation of Figure 1 (left) and Figure 5's cholesky/mm/ssf
    panels. *)

val speedup_series :
  ?seed:int -> baseline:int -> Wool_sim.Policy.t ->
  Wool_workloads.Workload.t -> (float * float) list
(** [(p, baseline / T_p)] over {!procs}. *)

val fmt_k : float -> string
(** Format a cycle count in "k" (thousands) like Table I's G_L columns. *)
