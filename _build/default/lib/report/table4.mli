(** Table IV: the simple steal-cost model of §IV-D2a versus measurement.

    For mm with the smallest matrices, the model predicts
    [T_p = C_p + (W + 2 (S_p - (p-1)) C_2) / p]: everyone shares the work
    and, beyond the p-1 distribution steals (costed at [C_p] once), every
    further load-balancing steal makes two processors pay the
    two-processor steal cost [C_2]. [C_2]/[C_p] come from the Table III
    micro-benchmark, [S_p] (steals per repetition) from the Wool-policy
    run itself, and the Wool steal count is used for every system, as in
    the paper. *)

type cell = { modeled : float; measured : float }
type row = { system : string; by_procs : (int * cell) list }

val compute : ?n:int -> ?reps:int -> unit -> row list
(** mm size [n] (default 64) with [reps] (default 16) repetitions. *)

val run : unit -> unit
