module E = Wool_sim.Engine
module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module Tt = Wool_ir.Task_tree

let procs = [ 1; 2; 3; 4; 5; 6; 7; 8 ]
let default_seed = 42

let run_sim ?(seed = default_seed) policy p wl =
  E.run ~seed ~policy ~workers:p (W.root wl)

let run_loop costs p (wl : W.t) =
  match wl.W.loop_leaves with
  | None -> invalid_arg "Exp_common.run_loop: workload has no loop shape"
  | Some leaves ->
      Wool_sim.Loop_sim.run ~costs ~workers:p ~reps:wl.W.reps ~leaf_work:leaves

let sim_time ?seed (policy : P.t) p (wl : W.t) =
  match (policy.P.flavor, wl.W.loop_leaves) with
  | P.Loop_static, Some _ -> (run_loop policy.P.costs p wl).Wool_sim.Loop_sim.time
  | P.Loop_static, None ->
      invalid_arg "Exp_common.sim_time: Loop_static needs loop leaves"
  | (P.Steal_child _ | P.Steal_parent), _ -> (run_sim ?seed policy p wl).E.time

let absolute_speedup ?seed policy p wl =
  let work = Tt.work (W.root wl) in
  float_of_int work /. float_of_int (sim_time ?seed policy p wl)

let speedup_series ?seed ~baseline policy wl =
  List.map
    (fun p ->
      (float_of_int p, float_of_int baseline /. float_of_int (sim_time ?seed policy p wl)))
    procs

let fmt_k v =
  if v = infinity then "-"
  else if v >= 100_000.0 then Printf.sprintf "%.0fk" (v /. 1000.0)
  else if v >= 1_000.0 then Printf.sprintf "%.1fk" (v /. 1000.0)
  else Printf.sprintf "%.0f" v
