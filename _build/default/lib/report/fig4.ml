module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module Tt = Wool_ir.Task_tree
module C = Exp_common

type panel = {
  height : int;
  reps : int;
  series : (string * (float * float) list) list;
}

let policies = [ P.lock_base; P.lock_peek; P.lock_trylock; P.nolock ]

let compute ?(heights = [ (8, 32); (9, 16); (10, 8); (11, 4) ]) () =
  List.map
    (fun (height, reps) ->
      let wl = W.stress ~reps ~height ~leaf_iters:256 () in
      let work = Tt.work (W.root wl) in
      let series =
        List.map
          (fun pol -> (pol.P.name, C.speedup_series ~baseline:work pol wl))
          policies
      in
      { height; reps; series })
    heights

let run () =
  print_endline "== Figure 4: stealing implementations (stress, 512-cycle leaves) ==";
  List.iter
    (fun p ->
      let title =
        Printf.sprintf "stress(256,%d) x %d reps: absolute speedup" p.height
          p.reps
      in
      let t =
        Wool_util.Table.create ~title
          ~header:("policy" :: List.map string_of_int [ 1; 2; 3; 4; 5; 6; 7; 8 ])
          ()
      in
      List.iter
        (fun (name, pts) ->
          Wool_util.Table.add_row t
            (name :: List.map (fun (_, s) -> Wool_util.Table.cell_f ~dec:2 s) pts))
        p.series;
      Wool_util.Table.print t;
      Wool_util.Plot.print ~title ~xlabel:"processors" ~ylabel:"speedup"
        (List.map
           (fun (name, pts) -> { Wool_util.Plot.label = name; points = pts })
           p.series))
    (compute ())
