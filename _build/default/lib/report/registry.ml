type experiment = { key : string; title : string; run : unit -> unit }

let all =
  [
    { key = "fig1"; title = "Figure 1: fib and stress headline speedups";
      run = Fig1.run };
    { key = "table1"; title = "Table I: workload characteristics";
      run = Table1.run };
    { key = "table2"; title = "Table II: optimizing inlined tasks (real runtime)";
      run = Table2.run };
    { key = "table3"; title = "Table III: inlined and stolen task costs";
      run = Table3.run };
    { key = "fig4"; title = "Figure 4: stealing implementations";
      run = Fig4.run };
    { key = "fig5"; title = "Figure 5: application speedups on four systems";
      run = Fig5.run };
    { key = "table4"; title = "Table IV: steal cost model vs measurement";
      run = Table4.run };
    { key = "fig6"; title = "Figure 6: CPU time breakdown"; run = Fig6.run };
    { key = "space";
      title = "Sec. I space behaviour: spawn-loop task-pool depth";
      run = Space.run };
    { key = "ablation"; title = "Ablations: blocked joins, public window, victims";
      run = Ablation.run };
    { key = "gantt"; title = "Gantt traces of representative schedules";
      run = Gantt.run };
    { key = "realcheck";
      title = "Real-runtime verification matrix (all kernels x schedulers)";
      run = Realcheck.run };
  ]

let find key = List.find_opt (fun e -> e.key = key) all
let keys () = List.map (fun e -> e.key) all

let run_all () =
  List.iter
    (fun e ->
      print_newline ();
      e.run ())
    all
