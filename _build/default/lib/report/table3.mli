(** Table III: costs of inlined and stolen tasks.

    The inlined column reports the calibrated per-task costs the simulator
    uses (spawn + join; a range for Wool, whose private tasks make the
    common case cheaper), next to the paper's measurements. The steal-cost
    columns are {e emergent}: following the methodology of §IV-D1 (after
    Podobas et al.), we run a binary tree of height k whose 2^k leaves are
    identical sequential computations C on 2^k simulated processors and
    report [T - T_ref] where [T_ref] is one leaf on one processor. The
    super-linear growth from 2 to 8 processors comes from thieves
    serialising on victims and searching more workers. *)

type row = {
  system : string;
  inlined_lo : int;
  inlined_hi : int;
  steal_cost : (int * int) list;  (** (p, cycles) for p = 2, 4, 8 *)
}

val compute : ?leaf_cycles:int -> unit -> row list
(** [leaf_cycles] defaults to 100_000. *)

val run : unit -> unit
