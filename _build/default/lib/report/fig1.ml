module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module Tt = Wool_ir.Task_tree
module C = Exp_common

type row = { system : string; points : (float * float) list }

let systems = [ P.wool; P.cilk; P.tbb; P.openmp_tasks ]

let fib_series ?(n = 27) () =
  let wl = W.fib ~reps:1 n in
  let work = Tt.work (W.root wl) in
  List.map
    (fun pol -> { system = pol.P.name; points = C.speedup_series ~baseline:work pol wl })
    systems

let stress_series ?(reps = 64) () =
  let wl = W.stress ~reps ~height:3 ~leaf_iters:4096 () in
  let wool1 = C.sim_time P.wool 1 wl in
  List.map
    (fun pol ->
      { system = pol.P.name; points = C.speedup_series ~baseline:wool1 pol wl })
    systems

let print_panel ~title ~ylabel rows =
  let table = Wool_util.Table.create ~title ~header:("system" :: List.map string_of_int [ 1; 2; 3; 4; 5; 6; 7; 8 ]) () in
  List.iter
    (fun r ->
      Wool_util.Table.add_row table
        (r.system :: List.map (fun (_, s) -> Wool_util.Table.cell_f ~dec:2 s) r.points))
    rows;
  Wool_util.Table.print table;
  Wool_util.Plot.print ~title ~xlabel:"processors" ~ylabel
    (List.map (fun r -> { Wool_util.Plot.label = r.system; points = r.points }) rows)

let run () =
  print_endline "== Figure 1 ==";
  print_panel ~title:"fib(27), no cutoff: absolute speedup" ~ylabel:"speedup"
    (fib_series ());
  print_panel
    ~title:"stress(4096,3,64 reps): speedup relative to 1-proc Wool"
    ~ylabel:"rel speedup" (stress_series ())
