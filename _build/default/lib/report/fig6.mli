(** Figure 6: breakdown of CPU time on the Wool scheduler.

    Total CPU cycles per category — TR (startup/shutdown), LA (application
    work acquired through leapfrogging), NA (other application work), ST
    (stealing), LF (leapfrogging costs) — for selected workloads at
    processor counts 1..12, normalised to the single-processor NA time.
    Growth of total CPU time with processors means sub-linear speedup, not
    slowdown; LA + LF bound the possible gains from improving blocked-join
    handling (§IV-D2b). *)

type row = { procs : int; by_category : (string * float) list }
type panel = { workload : string; rows : row list }

val compute :
  ?grid:Wool_workloads.Workload.t list -> ?procs:int list -> unit ->
  panel list

val run : unit -> unit
