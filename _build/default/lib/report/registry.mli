(** All reproducible experiments, keyed for the CLI and the bench
    harness. *)

type experiment = {
  key : string;  (** e.g. "fig1" *)
  title : string;
  run : unit -> unit;
}

val all : experiment list
val find : string -> experiment option
val keys : unit -> string list
val run_all : unit -> unit
