type t = { id : int; steps : step array }
and step = Work of int | Spawn of t | Call of t | Join

let next_id = ref 0

let make steps_list =
  let pending = ref 0 in
  List.iter
    (fun s ->
      match s with
      | Work c -> if c < 0 then invalid_arg "Task_tree.make: negative work"
      | Spawn _ -> incr pending
      | Call _ -> ()
      | Join ->
          decr pending;
          if !pending < 0 then
            invalid_arg "Task_tree.make: Join without matching Spawn")
    steps_list;
  if !pending <> 0 then invalid_arg "Task_tree.make: unjoined Spawn";
  let id = !next_id in
  incr next_id;
  { id; steps = Array.of_list steps_list }

let leaf c = make [ Work c ]

let fork2 ?(pre = 0) ?(post = 0) a b =
  let steps = [ Spawn b; Call a; Join ] in
  let steps = if pre > 0 then Work pre :: steps else steps in
  let steps = if post > 0 then steps @ [ Work post ] else steps in
  make steps

let spawn_all ?(pre = 0) ?(post = 0) ts =
  let spawns = List.map (fun t -> Spawn t) ts in
  let joins = List.map (fun _ -> Join) ts in
  let steps = spawns @ joins in
  let steps = if pre > 0 then Work pre :: steps else steps in
  let steps = if post > 0 then steps @ [ Work post ] else steps in
  make steps

let binary_split ?(grain_merge = 0) leaves =
  let n = Array.length leaves in
  if n = 0 then invalid_arg "Task_tree.binary_split: empty";
  (* Share identical internal nodes: ranges with physically equal subtree
     pairs map to one node. *)
  let cache = Hashtbl.create 64 in
  let rec build lo hi =
    if hi - lo = 1 then leaves.(lo)
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let a = build lo mid and b = build mid hi in
      let key = (a.id, b.id) in
      match Hashtbl.find_opt cache key with
      | Some node -> node
      | None ->
          let node = fork2 ~pre:grain_merge a b in
          Hashtbl.add cache key node;
          node
    end
  in
  build 0 n

let id t = t.id
let steps t = t.steps

let memo (f : (t -> int) -> t -> int) : t -> int =
  let tbl = Hashtbl.create 256 in
  let rec g t =
    match Hashtbl.find_opt tbl t.id with
    | Some v -> v
    | None ->
        let v = f g t in
        Hashtbl.add tbl t.id v;
        v
  in
  g

let n_tasks =
  memo (fun self t ->
      Array.fold_left
        (fun acc s ->
          match s with
          | Work _ | Join -> acc
          | Spawn u -> acc + 1 + self u
          | Call u -> acc + self u)
        0 t.steps)

let work =
  memo (fun self t ->
      Array.fold_left
        (fun acc s ->
          match s with
          | Work c -> acc + c
          | Join -> acc
          | Spawn u | Call u -> acc + self u)
        0 t.steps)

let depth =
  memo (fun self t ->
      Array.fold_left
        (fun acc s ->
          match s with
          | Work _ | Join -> acc
          | Spawn u | Call u -> max acc (1 + self u))
        0 t.steps)

let distinct_nodes t =
  let seen = Hashtbl.create 256 in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      Array.iter
        (function Spawn u | Call u -> go u | Work _ | Join -> ())
        t.steps
    end
  in
  go t;
  Hashtbl.length seen

let pp ppf t =
  Format.fprintf ppf "task#%d: %d steps, work=%d, tasks=%d, depth=%d"
    t.id (Array.length t.steps) (work t) (n_tasks t) (depth t)
