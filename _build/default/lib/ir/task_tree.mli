(** Task-tree intermediate representation of a Wool computation.

    A task's body is a sequence of {!step}s mirroring the paper's
    programming model (Figure 2): local [Work] measured in abstract cycles,
    [Spawn] of a child task, ordinary recursive [Call]s, and [Join], which
    joins the most recent unjoined [Spawn] of the same body (LIFO
    discipline, as the runtime enforces).

    Values form DAGs: builders share structurally identical subtrees (all
    leaves of a [stress] tree are one node; [fib n] has [n+1] distinct
    nodes), so trees with millions of task {e instances} stay small in
    memory. Every node has a unique [id] for memoised analyses; the
    analyses in {!Wool_metrics} and the simulator both treat each traversal
    of a node as a distinct task instance. *)

type t = private { id : int; steps : step array }

and step = Work of int | Spawn of t | Call of t | Join

val make : step list -> t
(** Create a node. Raises [Invalid_argument] if the steps are ill-formed:
    a [Join] without a preceding unjoined [Spawn], an unjoined [Spawn] at
    the end of the body, or negative [Work]. *)

val leaf : int -> t
(** [leaf c] is a task doing [c] cycles of local work. *)

val fork2 : ?pre:int -> ?post:int -> t -> t -> t
(** [fork2 a b] is the canonical binary fork-join node:
    [Spawn b; Call a; Join] with optional local work before and after —
    exactly the fib/stress pattern. *)

val spawn_all : ?pre:int -> ?post:int -> t list -> t
(** [spawn_all ts] spawns every child, then joins them all in LIFO order —
    the shape of a spawn loop followed by a sync. *)

val binary_split : ?grain_merge:int -> t array -> t
(** Build a balanced binary fork-join tree over an array of leaf tasks (the
    shape [parallel_for] produces). [grain_merge] adds that many cycles of
    local work to every internal node (split/merge overhead), default 0. *)

(* Structural accessors *)

val id : t -> int
val steps : t -> step array

val n_tasks : t -> int
(** Number of task instances spawned when executing this tree (the paper's
    [N_T]; the root itself is not counted as a spawn). Memoised; instances
    of shared nodes are counted each time they are reached. *)

val work : t -> int
(** Total work [T_1] in cycles, counting only [Work] steps (no scheduler
    overheads) — the paper's [T_S]. Memoised. *)

val depth : t -> int
(** Longest chain of Spawn/Call nesting (stack-depth bound). *)

val distinct_nodes : t -> int
(** Number of distinct DAG nodes (diagnostic for sharing). *)

val pp : Format.formatter -> t -> unit
(** Small summary: id, step count, work, tasks. *)
