lib/ir/task_tree.ml: Array Format Hashtbl List
