lib/ir/task_tree.mli: Format
