(** A real steal-parent (continuation-stealing) runtime on effect handlers.

    This is the scheduling discipline of Cilk / Cilk++, which the paper
    contrasts with Wool's steal-child design: [spawn] runs the child
    {e immediately} and makes the {e continuation} of the spawning
    function available for stealing, implemented here by capturing it with
    OCaml 5 effect handlers (each task body runs in its own fiber — the
    moral equivalent of Cilk++'s heap-allocated cactus-stack frames, and
    like them it taxes every spawn with an allocation; see the bench
    harness for the measured gap against the direct task stack).

    Consequences faithfully reproduced from §I:
    - a flat spawn loop runs in {e constant} task-pool space (the
      steal-child runtime holds one descriptor per pending iteration) —
      see {!max_pool_depth};
    - there is no buried-join problem: a function that reaches {!sync}
      with unfinished stolen children suspends, its worker moves on, and
      the {e last returning child} resumes it wherever that child ran
      (the "provably good steal" protocol).

    Programming model: [spawn ctx body] runs [body] now; the caller's
    continuation may migrate to another domain, so code after a [spawn]
    can execute on a different worker. [sync ctx] waits for every child
    this function spawned. Every function that spawns {b must} sync
    before returning (checked at runtime). Results are communicated
    through {!promise}s ([spawn_into]), readable after the sync. *)

type pool
type ctx

val create : ?workers:int -> ?idle_nap_ns:int -> ?seed:int -> unit -> pool
(** [workers] defaults to [Domain.recommended_domain_count ()];
    [idle_nap_ns] as in {!Wool.Pool.create}. *)

val run : pool -> (ctx -> 'a) -> 'a
(** Execute a root task. Must be called from the creating domain, not from
    inside task code. If any task raised, the first exception recorded is
    re-raised here. Can be called repeatedly. *)

val shutdown : pool -> unit

val with_pool : ?workers:int -> ?seed:int -> (pool -> 'a) -> 'a

val spawn : ctx -> (ctx -> unit) -> unit
(** Run the child now; expose this function's continuation for stealing. *)

val sync : ctx -> unit
(** Wait for all children spawned by this function. If some are still
    running on thieves, the function suspends and its worker finds other
    work; the last child to finish resumes it. *)

type 'a promise

val promise : unit -> 'a promise

val spawn_into : ctx -> 'a promise -> (ctx -> 'a) -> unit
(** [spawn_into ctx p f] = [spawn] a child that fulfills [p]. *)

val read : 'a promise -> 'a
(** The value; only valid after the {!sync} covering the producing spawn.
    Raises [Invalid_argument] if not yet fulfilled. *)

type stats = {
  spawns : int;
  steals : int;  (** continuations migrated between workers *)
  suspensions : int;  (** syncs that had to park the function *)
  max_pool_depth : int;  (** §I: deepest continuation pool seen *)
}

val stats : pool -> stats
val reset_stats : pool -> unit
val num_workers : pool -> int
