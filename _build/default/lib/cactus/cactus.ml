open Effect
open Effect.Deep

(* A frame exists per task body (spawned child or root). [outstanding] and
   [suspended] are the Cilk join counter and parked continuation, guarded
   by [mtx] because a child finishing on one worker races the parent
   reaching sync on another.

   [state] makes completion notification exactly-once: 0 while the body
   runs (or is parked), 1 once the body has returned, 2 once some worker
   has claimed the parent notification. The claim must be a CAS: a frame
   that suspends and is then resumed-and-completed by a nested recursion
   can otherwise be observed as completed both by that recursion and by
   the original worker's still-unwinding spawn handler. *)
let st_running = 0
let st_completed = 1
let st_notified = 2

type frame = {
  parent : frame option;
  mtx : Mutex.t;
  mutable outstanding : int;
  mutable suspended : (unit, unit) continuation option;
  state : int Atomic.t;
  (* spawns since the last sync; only touched by the worker currently
     running this frame's body, so no lock. Detects a missing sync even
     when every child happened to complete inline. *)
  mutable spawns_unsynced : int;
}

type ctx = frame

type entry = { k : (unit, unit) continuation; owner : frame }

type worker = {
  id : int;
  pool : pool;
  deque : entry Wool_deque.Chase_lev.t;
  rng : Wool_util.Rng.t;
  mutable fail_streak : int;
  mutable n_spawns : int;
  mutable n_steals : int;
  mutable n_suspensions : int;
  mutable max_deque : int;
}

and pool = {
  idle_nap_ns : int;
  mutable workers : worker array;
  stop : bool Atomic.t;
  root_done : bool Atomic.t;
  error : exn option Atomic.t;
  mutable domains : unit Domain.t list;
}

type _ Effect.t +=
  | Spawn : (ctx -> unit) -> unit Effect.t
  | Sync : unit Effect.t

(* Each domain knows which worker it is; effects performed by a migrated
   continuation must use the deque of the worker that resumed it, so the
   handler looks its worker up here rather than capturing it. *)
let worker_key : worker option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let self () =
  match Domain.DLS.get worker_key with
  | Some w -> w
  | None -> failwith "Cactus: called outside a worker context"

let dummy_frame =
  {
    parent = None;
    mtx = Mutex.create ();
    outstanding = 0;
    suspended = None;
    state = Atomic.make st_notified;
    spawns_unsynced = 0;
  }

let dummy_entry =
  (* never continued: only fills empty deque cells *)
  {
    k = Obj.magic (ref ()) (* placeholder; Chase_lev never returns dummies *);
    owner = dummy_frame;
  }

let new_frame ~parent =
  {
    parent;
    mtx = Mutex.create ();
    outstanding = 0;
    suspended = None;
    state = Atomic.make st_running;
    spawns_unsynced = 0;
  }

let record_error pool e =
  (* keep the first error; later ones are dropped *)
  ignore (Atomic.compare_and_set pool.error None (Some e) : bool)

let nap pool =
  if pool.idle_nap_ns > 0 then
    Unix.sleepf (float_of_int pool.idle_nap_ns *. 1e-9)

let idle_backoff w =
  Domain.cpu_relax ();
  w.fail_streak <- w.fail_streak + 1;
  if w.fail_streak >= 64 then begin
    w.fail_streak <- 0;
    nap w.pool
  end

(* Decrement the parent's join counter for a finished child and, if the
   parent is parked at its sync and this was the last child, take its
   continuation for resumption. *)
let child_done parent =
  Mutex.lock parent.mtx;
  parent.outstanding <- parent.outstanding - 1;
  assert (parent.outstanding >= 0);
  let resume =
    if parent.outstanding = 0 then begin
      let s = parent.suspended in
      parent.suspended <- None;
      s
    end
    else None
  in
  Mutex.unlock parent.mtx;
  resume

(* A frame's fiber has returned control on this worker. If the frame
   completed, notify its parent: fast path — the parent's continuation is
   still on top of our own pool, pop and resume it here (the non-stolen
   spawn return); slow path — the continuation was stolen, so decrement
   the join counter and adopt the parent only if it is parked and we were
   its last child. Recurses up the chain after each resumption returns. *)
let rec finish pool frame =
  (* claim the completed -> notified transition; exactly one caller wins *)
  if Atomic.compare_and_set frame.state st_completed st_notified then begin
    match frame.parent with
    | None -> Atomic.set pool.root_done true
    | Some parent -> (
        let w = self () in
        match Wool_deque.Chase_lev.pop w.deque with
        | Some entry ->
            (* LIFO discipline: if anything is still in our pool here, it
               can only be the parent's continuation *)
            assert (entry.owner == parent);
            Mutex.lock parent.mtx;
            parent.outstanding <- parent.outstanding - 1;
            assert (parent.outstanding >= 0);
            Mutex.unlock parent.mtx;
            continue entry.k ();
            finish pool parent
        | None -> (
            match child_done parent with
            | Some k ->
                continue k ();
                finish pool parent
            | None -> ()))
  end

let rec exec_task pool frame body =
  match_with
    (fun () ->
      body frame;
      if frame.spawns_unsynced <> 0 then
        failwith "Cactus: task returned with unsynced children")
    ()
    {
      retc = (fun () -> Atomic.set frame.state st_completed);
      exnc =
        (fun e ->
          record_error pool e;
          Atomic.set frame.state st_completed);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Spawn child_body ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let w = self () in
                  w.n_spawns <- w.n_spawns + 1;
                  frame.spawns_unsynced <- frame.spawns_unsynced + 1;
                  Mutex.lock frame.mtx;
                  frame.outstanding <- frame.outstanding + 1;
                  Mutex.unlock frame.mtx;
                  Wool_deque.Chase_lev.push w.deque { k; owner = frame };
                  w.max_deque <-
                    max w.max_deque (Wool_deque.Chase_lev.size w.deque);
                  let child = new_frame ~parent:(Some frame) in
                  exec_task pool child child_body;
                  finish pool child)
          | Sync ->
              Some
                (fun (k : (a, unit) continuation) ->
                  frame.spawns_unsynced <- 0;
                  Mutex.lock frame.mtx;
                  if frame.outstanding = 0 then begin
                    Mutex.unlock frame.mtx;
                    continue k ()
                  end
                  else begin
                    (* park; the last returning child resumes us wherever
                       it finishes, and this worker goes stealing *)
                    frame.suspended <- Some k;
                    (self ()).n_suspensions <- (self ()).n_suspensions + 1;
                    Mutex.unlock frame.mtx
                  end)
          | _ -> None);
    }

let try_steal w =
  let n = Array.length w.pool.workers in
  if n <= 1 then false
  else begin
    let x = Wool_util.Rng.int w.rng (n - 1) in
    let v = if x >= w.id then x + 1 else x in
    match Wool_deque.Chase_lev.steal w.pool.workers.(v).deque with
    | `Stolen entry ->
        w.n_steals <- w.n_steals + 1;
        w.fail_streak <- 0;
        continue entry.k ();
        finish w.pool entry.owner;
        true
    | `Empty | `Retry -> false
  end

let worker_loop w =
  Domain.DLS.set worker_key (Some w);
  while not (Atomic.get w.pool.stop) do
    if not (try_steal w) then idle_backoff w
  done

let create ?workers ?(idle_nap_ns = 50_000) ?(seed = 0xCAC7) () =
  let nworkers =
    match workers with Some n -> n | None -> Domain.recommended_domain_count ()
  in
  if nworkers <= 0 then invalid_arg "Cactus.create: workers must be positive";
  let master = Wool_util.Rng.make seed in
  let pool =
    {
      idle_nap_ns;
      workers = [||];
      stop = Atomic.make false;
      root_done = Atomic.make false;
      error = Atomic.make None;
      domains = [];
    }
  in
  pool.workers <-
    Array.init nworkers (fun id ->
        {
          id;
          pool;
          deque = Wool_deque.Chase_lev.create ~dummy:dummy_entry ();
          rng = Wool_util.Rng.split master;
          fail_streak = 0;
          n_spawns = 0;
          n_steals = 0;
          n_suspensions = 0;
          max_deque = 0;
        });
  pool.domains <-
    List.init (nworkers - 1) (fun i ->
        let w = pool.workers.(i + 1) in
        Domain.spawn (fun () -> worker_loop w));
  pool

let shutdown pool =
  Atomic.set pool.stop true;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let run pool f =
  let w0 = pool.workers.(0) in
  Domain.DLS.set worker_key (Some w0);
  Atomic.set pool.root_done false;
  Atomic.set pool.error None;
  let result = ref None in
  let root = new_frame ~parent:None in
  exec_task pool root (fun ctx -> result := Some (f ctx));
  finish pool root;
  (* the root may have been stolen or suspended; help until it is done *)
  while not (Atomic.get pool.root_done) do
    if not (try_steal w0) then idle_backoff w0
  done;
  match Atomic.get pool.error with
  | Some e -> raise e
  | None -> (
      match !result with
      | Some v -> v
      | None -> failwith "Cactus.run: root completed without a result")

let with_pool ?workers ?seed f =
  let pool = create ?workers ?seed () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let spawn (_ : ctx) body = perform (Spawn body)
let sync (_ : ctx) = perform Sync

type 'a promise = 'a option ref

let promise () = ref None
let spawn_into ctx p f = spawn ctx (fun ctx -> p := Some (f ctx))

let read p =
  match !p with
  | Some v -> v
  | None -> invalid_arg "Cactus.read: promise not fulfilled (sync first)"

type stats = {
  spawns : int;
  steals : int;
  suspensions : int;
  max_pool_depth : int;
}

let stats pool =
  Array.fold_left
    (fun acc w ->
      {
        spawns = acc.spawns + w.n_spawns;
        steals = acc.steals + w.n_steals;
        suspensions = acc.suspensions + w.n_suspensions;
        max_pool_depth = max acc.max_pool_depth w.max_deque;
      })
    { spawns = 0; steals = 0; suspensions = 0; max_pool_depth = 0 }
    pool.workers

let reset_stats pool =
  Array.iter
    (fun w ->
      w.n_spawns <- 0;
      w.n_steals <- 0;
      w.n_suspensions <- 0;
      w.max_deque <- 0)
    pool.workers

let num_workers pool = Array.length pool.workers
