lib/cactus/cactus.mli:
