lib/cactus/cactus.ml: Array Atomic Domain Effect Fun List Mutex Obj Unix Wool_deque Wool_util
