(** Per-worker fixed-size event ring.

    Exactly one worker writes a ring; {!record} therefore uses plain (non
    atomic) stores and never synchronises with other workers — the whole
    point is that tracing must not perturb the fence-free fast paths it
    observes. A full ring overwrites oldest-first; {!dropped} reports how
    many events were lost that way.

    Readers are expected to snapshot only while the owner is quiescent
    (at [Pool.run] boundaries, or after [Pool.shutdown] for thief rings).
    {!snapshot} nevertheless guards against a concurrently advancing
    writer by re-reading the write cursor and discarding any prefix that
    may have been overwritten mid-copy, so a racy snapshot degrades to a
    shorter (still oldest-first, still well-formed) one rather than a torn
    one. *)

type t

val create : capacity:int -> t
(** [capacity] is rounded up to a power of two; at least 2. *)

val capacity : t -> int

val record : t -> ts:int -> tag:Event.tag -> a:int -> b:int -> unit
(** Append an event. Owner-only; no allocation, no atomics. *)

val written : t -> int
(** Total events ever recorded (monotone; not reset by overwrites). *)

val dropped : t -> int
(** [max 0 (written - capacity)] — events lost to overwriting. *)

val snapshot : t -> worker:int -> Event.t array
(** The retained events, oldest first, stamped with [worker]. *)

val clear : t -> unit
(** Owner-only (or quiescent) reset; also resets {!written}. *)
