let add_meta buf ~name ~tid ~value =
  Buffer.add_string buf
    (Printf.sprintf
       {|{"name":"%s","ph":"M","pid":1,"tid":%d,"args":{"name":"%s"}}|} name
       tid (Json.escape value))

let to_string ?(process_name = "wool") ?(ts_per_us = 1000.0) events =
  let buf = Buffer.create (4096 + (Array.length events * 96)) in
  Buffer.add_string buf {|{"traceEvents":[|};
  add_meta buf ~name:"process_name" ~tid:0 ~value:process_name;
  let workers = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      if not (Hashtbl.mem workers e.Event.worker) then
        Hashtbl.add workers e.Event.worker ())
    events;
  Hashtbl.fold (fun w () acc -> w :: acc) workers []
  |> List.sort compare
  |> List.iter (fun w ->
         Buffer.add_char buf ',';
         add_meta buf ~name:"thread_name" ~tid:w
           ~value:(Printf.sprintf "worker %d" w));
  Array.iter
    (fun e ->
      Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,"args":{"a":%d,"b":%d}}|}
           (Event.tag_name e.Event.tag)
           e.Event.worker
           (float_of_int e.Event.ts /. ts_per_us)
           e.Event.a e.Event.b))
    events;
  Buffer.add_string buf {|],"displayTimeUnit":"ms"}|};
  Buffer.contents buf

let write_file ?process_name ?ts_per_us path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?process_name ?ts_per_us events))
