(* Four ints per event (ts, tag, a, b) in one flat array: an event is 32
   bytes, so a 64-byte cache line holds two and a recording burst walks
   the array linearly. *)
let stride = 4

type t = {
  data : int array;
  mask : int;
  cap : int;
  mutable head : int; (* total events ever written; owner-only *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let cap = pow2 (max 2 capacity) 2 in
  { data = Array.make (cap * stride) 0; mask = cap - 1; cap; head = 0 }

let capacity t = t.cap

let[@inline] record t ~ts ~tag ~a ~b =
  let i = (t.head land t.mask) * stride in
  let d = t.data in
  Array.unsafe_set d i ts;
  Array.unsafe_set d (i + 1) (Event.tag_to_int tag);
  Array.unsafe_set d (i + 2) a;
  Array.unsafe_set d (i + 3) b;
  t.head <- t.head + 1

let written t = t.head
let dropped t = max 0 (t.head - t.cap)

let snapshot t ~worker =
  let head0 = t.head in
  let count = min head0 t.cap in
  let first = head0 - count in
  let out =
    Array.init count (fun k ->
        let seq = first + k in
        let i = (seq land t.mask) * stride in
        let tag =
          match Event.tag_of_int t.data.(i + 1) with
          | Some tag -> tag
          | None -> Event.Spawn (* torn write under a racy read; see below *)
        in
        {
          Event.ts = t.data.(i);
          worker;
          tag;
          a = t.data.(i + 2);
          b = t.data.(i + 3);
        })
  in
  (* If the owner advanced while we copied, the oldest [head1 - head0]
     entries we read may have been overwritten mid-copy; drop them. *)
  let head1 = t.head in
  let clobbered = min count (head1 - head0) in
  if clobbered = 0 then out
  else Array.sub out clobbered (count - clobbered)

let clear t = t.head <- 0
