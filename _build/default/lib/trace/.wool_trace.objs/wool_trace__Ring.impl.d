lib/trace/ring.ml: Array Event
