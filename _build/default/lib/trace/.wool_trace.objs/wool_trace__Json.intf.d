lib/trace/json.mli:
