lib/trace/summary.mli: Event
