lib/trace/chrome.ml: Array Buffer Event Fun Hashtbl Json List Printf
