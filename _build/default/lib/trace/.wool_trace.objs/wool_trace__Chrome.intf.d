lib/trace/chrome.mli: Event
