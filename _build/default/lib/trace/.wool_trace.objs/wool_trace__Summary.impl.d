lib/trace/summary.ml: Array Buffer Event List Printf Wool_util
