lib/trace/event.ml: Array Buffer Format Printf String
