lib/trace/json.ml: Buffer Char Printf String
