lib/trace/event.mli: Format
