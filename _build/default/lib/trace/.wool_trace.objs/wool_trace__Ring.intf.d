lib/trace/ring.mli: Event
