(** A dependency-free JSON well-formedness checker.

    The exporters in this library write JSON by hand (no ppx, no yojson);
    this validator is the other half of that bargain: tests and the
    [@trace-smoke] alias parse what was emitted and fail loudly on any
    malformed output. It checks syntax only (RFC 8259 grammar, without
    [\u] escape-range pedantry) and builds no document tree. *)

val validate : string -> (unit, string) result
(** [Ok ()] if the whole string is one valid JSON value; [Error msg]
    pinpoints the first offending offset otherwise. *)

val escape : string -> string
(** Escape a string for inclusion inside JSON double quotes. *)
