(** Derived views over an event stream: per-tag counts, steal-latency and
    steal-distance histograms.

    Latency is measured thief-side: for every [Steal_ok], the time since
    the nearest preceding [Steal_attempt] on the same worker (the probe
    that succeeded). Distance is the worker-id gap [|thief - victim|] of
    successful steals — a locality proxy for sockets/ccNUMA discussions
    (§IV-C). Both histograms bucket by powers of two. *)

type t = {
  events : int;  (** events summarised (post-drop) *)
  dropped : int;  (** ring overwrites reported by the collector *)
  per_tag : int array;  (** counts indexed by {!Event.tag_to_int} *)
  per_worker : int array;  (** events per worker id *)
  steal_latency : int array;
      (** [steal_latency.(k)] = steals whose attempt→ok latency lay in
          [\[2^k, 2^(k+1))] of the stream's time unit (bucket 0 is [<2]) *)
  steal_distance : int array;  (** same bucketing over [|thief - victim|] *)
}

val make : ?dropped:int -> Event.t array -> t

val count : t -> Event.tag -> int

val steals_observed : t -> int
(** [count t Steal_ok] — the [N_M] of the stream. *)

val render : ?time_unit:string -> t -> string
(** Human-readable tables (tag counts, histograms). [time_unit] labels the
    latency column, default ["ns"]. *)
