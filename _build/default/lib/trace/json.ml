let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

exception Bad of int * string

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l
    else fail ("expected " ^ lit)
  in
  let string_ () =
    expect '"';
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> incr pos
               | 'u' ->
                   if !pos + 4 >= n then fail "short \\u escape";
                   for k = 1 to 4 do
                     match s.[!pos + k] with
                     | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                     | _ -> fail "bad \\u escape"
                   done;
                   pos := !pos + 5
               | _ -> fail "bad escape");
            go ()
        | c when Char.code c < 0x20 -> fail "control char in string"
        | _ ->
            incr pos;
            go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then incr pos;
    let digits () =
      let start = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = start then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ())
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | None -> fail "expected value"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos
        else begin
          let rec members () =
            skip_ws ();
            string_ ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ()
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos
        else begin
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ()
        end
    | Some '"' -> string_ ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c));
    skip_ws ()
  in
  match
    value ();
    if !pos <> n then fail "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "invalid JSON at offset %d: %s" at msg)
