type result = { time : int; imbalance : float }

let run ~(costs : Costs.t) ~workers ~reps ~leaf_work =
  if workers <= 0 then invalid_arg "Loop_sim.run: workers must be positive";
  let n = Array.length leaf_work in
  if n = 0 then invalid_arg "Loop_sim.run: empty loop";
  let chunk = (n + workers - 1) / workers in
  let chunk_time = Array.make workers 0 in
  for w = 0 to workers - 1 do
    let lo = w * chunk and hi = min n ((w + 1) * chunk) in
    let s = ref 0 in
    for i = lo to hi - 1 do
      s := !s + leaf_work.(i)
    done;
    chunk_time.(w) <- !s
  done;
  let maxc = Array.fold_left max 0 chunk_time in
  let total = Array.fold_left ( + ) 0 chunk_time in
  let meanc = float_of_int total /. float_of_int workers in
  let fork =
    if workers = 1 then 0
    else costs.loop_fork_base + (workers * costs.loop_fork_per_worker)
  in
  let barrier = if workers = 1 then 0 else workers * costs.barrier_per_worker in
  let region = fork + maxc + barrier in
  {
    time = costs.startup + (reps * region);
    imbalance = (if meanc = 0.0 then 0.0 else (float_of_int maxc -. meanc) /. meanc);
  }
