(** Static work-sharing loop simulation (OpenMP parallel for).

    The paper's OpenMP versions of the loop benchmarks (mm, ssf) use
    work-sharing loops rather than task trees; their cost is a region fork,
    a static partition of iterations over workers, and an end barrier.
    This is computed directly (no event loop): the region time is the fork
    cost plus the maximum per-worker chunk time plus the barrier. *)

type result = {
  time : int;  (** total virtual cycles for all repetitions *)
  imbalance : float;
      (** mean over regions of (max chunk - mean chunk) / mean chunk *)
}

val run :
  costs:Costs.t -> workers:int -> reps:int -> leaf_work:int array -> result
(** [leaf_work] is the work (cycles) of each loop iteration (leaf) of one
    repetition; iterations are distributed in contiguous static chunks as
    OpenMP's default schedule does. *)
