(** Growable top/bot stack used by each simulated worker.

    Mirrors the direct task stack's index discipline: the owner pushes and
    pops at [top]; thieves consume from [bot] upward; everything in
    [\[bot, top)] is present. The simulator is single-threaded, so this
    needs no synchronisation — the engine charges the synchronisation
    {e costs} separately. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
val push : 'a t -> 'a -> unit

val top_index : 'a t -> int
(** Index the next push will use. *)

val bot_index : 'a t -> int
val size : 'a t -> int
(** [top - bot]: elements currently present. *)

val get : 'a t -> int -> 'a
(** Random access to a present element (used to publish descriptors). *)

val pop_present : 'a t -> 'a
(** Owner: pop the newest element; it must be present ([size > 0]). *)

val pop_consumed : 'a t -> unit
(** Owner: account for joining an element that a thief already removed
    ([size = 0], [top > 0]): moves both [top] and [bot] down. *)

val peek_bot : 'a t -> 'a option
(** Thief: the oldest present element, if any. *)

val take_bot : 'a t -> 'a
(** Thief: remove the oldest present element ([size > 0]). *)

val peek_top : 'a t -> 'a option
(** Newest present element, if any (steal-parent child-return check). *)
