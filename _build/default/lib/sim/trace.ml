module Event = Wool_trace.Event
module Ring = Wool_trace.Ring

type t = {
  n_workers : int;
  n_buckets : int;
  horizon : int;
  (* cells.(worker).(bucket).(category) = cycles *)
  cells : int array array array;
  (* discrete scheduler events in the vocabulary shared with the real
     runtime's tracer ([Wool_trace.Event]); one ring per virtual worker *)
  rings : Ring.t array;
}

let n_categories = 5

let create ?(buckets = 100) ?(event_capacity = 65536) ~workers ~horizon () =
  if workers <= 0 then invalid_arg "Trace.create: workers must be positive";
  if horizon <= 0 then invalid_arg "Trace.create: horizon must be positive";
  if buckets <= 0 then invalid_arg "Trace.create: buckets must be positive";
  if event_capacity <= 0 then
    invalid_arg "Trace.create: event_capacity must be positive";
  {
    n_workers = workers;
    n_buckets = buckets;
    horizon;
    cells =
      Array.init workers (fun _ -> Array.make_matrix buckets n_categories 0);
    rings = Array.init workers (fun _ -> Ring.create ~capacity:event_capacity);
  }

let bucket_of t time =
  let b = time * t.n_buckets / t.horizon in
  min (t.n_buckets - 1) (max 0 b)

let record t ~worker ~start ~cycles ~category =
  if worker < 0 || worker >= t.n_workers then
    invalid_arg "Trace.record: bad worker";
  if category < 0 || category >= n_categories then
    invalid_arg "Trace.record: bad category";
  if cycles > 0 then begin
    let row = t.cells.(worker) in
    let b0 = bucket_of t start in
    let b1 = bucket_of t (start + cycles - 1) in
    if b0 = b1 then row.(b0).(category) <- row.(b0).(category) + cycles
    else begin
      (* spread proportionally over the spanned buckets *)
      let span = b1 - b0 + 1 in
      let per = cycles / span and rem = cycles mod span in
      for b = b0 to b1 do
        let extra = if b - b0 < rem then 1 else 0 in
        row.(b).(category) <- row.(b).(category) + per + extra
      done
    end
  end

let record_event t ~worker ~time ~tag ~a ~b =
  if worker < 0 || worker >= t.n_workers then
    invalid_arg "Trace.record_event: bad worker";
  Ring.record t.rings.(worker) ~ts:time ~tag ~a ~b

let events t =
  let parts =
    Array.mapi (fun w ring -> Ring.snapshot ring ~worker:w) t.rings
  in
  let all = Array.concat (Array.to_list parts) in
  Array.stable_sort (fun a b -> compare a.Event.ts b.Event.ts) all;
  all

let events_dropped t =
  Array.fold_left (fun acc r -> acc + Ring.dropped r) 0 t.rings

let workers t = t.n_workers
let buckets t = t.n_buckets

let dominant t ~worker ~bucket =
  if worker < 0 || worker >= t.n_workers then None
  else if bucket < 0 || bucket >= t.n_buckets then None
  else begin
    let cell = t.cells.(worker).(bucket) in
    let best = ref (-1) and best_v = ref 0 in
    Array.iteri
      (fun c v ->
        if v > !best_v then begin
          best := c;
          best_v := v
        end)
      cell;
    if !best < 0 then None else Some !best
  end

let utilization t ~worker =
  if worker < 0 || worker >= t.n_workers then
    invalid_arg "Trace.utilization: bad worker";
  let busy =
    Array.fold_left
      (fun acc cell -> acc + Array.fold_left ( + ) 0 cell)
      0
      t.cells.(worker)
  in
  Float.min 1.0 (float_of_int busy /. float_of_int t.horizon)

(* indices follow Engine.category_index: TR LA NA ST LF *)
let glyphs = [| 's'; 'l'; '#'; '.'; '~' |]

let render t =
  let buf = Buffer.create (t.n_workers * (t.n_buckets + 16)) in
  Buffer.add_string buf
    (Printf.sprintf "gantt over %d cycles (%d cycles/col)\n" t.horizon
       (t.horizon / t.n_buckets));
  for w = 0 to t.n_workers - 1 do
    Buffer.add_string buf (Printf.sprintf "w%-2d |" w);
    for b = 0 to t.n_buckets - 1 do
      let c =
        match dominant t ~worker:w ~bucket:b with
        | None -> ' '
        | Some cat -> glyphs.(cat)
      in
      Buffer.add_char buf c
    done;
    Buffer.add_string buf
      (Printf.sprintf "| %3.0f%%\n" (100.0 *. utilization t ~worker:w))
  done;
  Buffer.add_string buf
    "legend: # app work, l leapfrogged work, . stealing, ~ leapfrog wait, s startup\n";
  Buffer.contents buf

let print t = print_string (render t)
