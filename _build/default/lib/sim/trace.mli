(** Execution traces: per-worker, per-time-bucket activity for Gantt-style
    rendering of a simulation.

    Because the engine is deterministic, the usual workflow is two-pass:
    run once to learn the completion time, then re-run with a trace sized
    to that horizon and render it. Cycles are attributed to the bucket(s)
    an operation spans; rendering shows each worker as a row whose
    character per bucket is the dominant activity:

    - ['#'] application work (NA), ['l'] leapfrogged work (LA)
    - ['.'] stealing (ST), ['~'] leapfrog waiting (LF)
    - ['s'] startup (TR), [' '] idle *)

type t

val create :
  ?buckets:int -> ?event_capacity:int -> workers:int -> horizon:int ->
  unit -> t
(** [horizon] is the simulated time span covered (cycles); activity beyond
    it lands in the last bucket. Default 100 buckets. [event_capacity]
    (default 65536) bounds the discrete-event ring kept per worker for
    {!events}; overflow drops oldest-first. *)

val record : t -> worker:int -> start:int -> cycles:int -> category:int -> unit
(** Attribute [cycles] of activity of category index [category] (see
    {!Engine.category_index}) beginning at time [start]. Used by the
    engine; normally not called directly. *)

val record_event :
  t -> worker:int -> time:int -> tag:Wool_trace.Event.tag -> a:int ->
  b:int -> unit
(** Log a discrete scheduler event in the vocabulary shared with the real
    runtime ({!Wool_trace.Event}). Timestamps are virtual cycles. Used by
    the engine; normally not called directly. *)

val events : t -> Wool_trace.Event.t array
(** All recorded events merged into one time-sorted stream — the same
    shape {!Wool.Pool.trace_events} produces, so simulated and measured
    streams can be summarised, exported and compared with the same
    tooling. *)

val events_dropped : t -> int
(** Events lost to ring overflow, summed over workers. *)

val workers : t -> int
val buckets : t -> int

val dominant : t -> worker:int -> bucket:int -> int option
(** Category index with the most cycles in the bucket, if any. *)

val utilization : t -> worker:int -> float
(** Fraction of the horizon this worker spent on any activity. *)

val render : t -> string
(** The Gantt chart with a legend. *)

val print : t -> unit
