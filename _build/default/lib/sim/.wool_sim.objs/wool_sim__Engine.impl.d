lib/sim/engine.ml: Array Costs List Policy Queue Sim_deque Trace Wool_ir Wool_trace Wool_util
