lib/sim/loop_sim.ml: Array Costs
