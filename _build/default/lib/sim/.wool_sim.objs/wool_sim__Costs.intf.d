lib/sim/costs.mli: Format
