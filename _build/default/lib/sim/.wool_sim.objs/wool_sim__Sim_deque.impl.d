lib/sim/sim_deque.ml: Array
