lib/sim/policy.ml: Costs
