lib/sim/trace.ml: Array Buffer Float Printf Wool_trace
