lib/sim/costs.ml: Float Format
