lib/sim/loop_sim.mli: Costs
