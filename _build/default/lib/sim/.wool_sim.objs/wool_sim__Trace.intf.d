lib/sim/trace.mli: Wool_trace
