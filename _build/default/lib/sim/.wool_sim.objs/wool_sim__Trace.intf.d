lib/sim/trace.mli:
