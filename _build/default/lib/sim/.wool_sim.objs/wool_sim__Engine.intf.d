lib/sim/engine.mli: Policy Trace Wool_ir
