lib/sim/sim_deque.mli:
