lib/sim/policy.mli: Costs
