type 'a t = {
  dummy : 'a;
  mutable arr : 'a array;
  mutable top : int; (* next push index *)
  mutable bot : int; (* lowest present index *)
}

let create ~dummy () = { dummy; arr = Array.make 16 dummy; top = 0; bot = 0 }

let grow t =
  let narr = Array.make (2 * Array.length t.arr) t.dummy in
  Array.blit t.arr 0 narr 0 t.top;
  t.arr <- narr

let push t v =
  if t.top >= Array.length t.arr then grow t;
  t.arr.(t.top) <- v;
  t.top <- t.top + 1

let top_index t = t.top
let bot_index t = t.bot
let size t = t.top - t.bot

let get t i =
  if i < t.bot || i >= t.top then invalid_arg "Sim_deque.get: absent index";
  t.arr.(i)

let pop_present t =
  if t.top <= t.bot then invalid_arg "Sim_deque.pop_present: nothing present";
  t.top <- t.top - 1;
  let v = t.arr.(t.top) in
  t.arr.(t.top) <- t.dummy;
  v

let pop_consumed t =
  if t.top <= 0 || t.top > t.bot then
    invalid_arg "Sim_deque.pop_consumed: top element still present";
  t.top <- t.top - 1;
  t.bot <- t.top

let peek_bot t = if t.top <= t.bot then None else Some t.arr.(t.bot)

let take_bot t =
  if t.top <= t.bot then invalid_arg "Sim_deque.take_bot: empty";
  let v = t.arr.(t.bot) in
  t.arr.(t.bot) <- t.dummy;
  t.bot <- t.bot + 1;
  v

let peek_top t = if t.top <= t.bot then None else Some t.arr.(t.top - 1)
