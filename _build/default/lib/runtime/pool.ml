module Ds = Wool_deque.Direct_stack
module Locked_deque = Wool_deque.Locked_deque
module Chase_lev = Wool_deque.Chase_lev

type mode = Locked | Swap_generic | Task_specific | Private | Clev

type publicity = Wool_deque.Direct_stack.publicity =
  | All_private
  | All_public
  | Adaptive of int

type worker = {
  id : int;
  pool : pool;
  dstack : (worker -> unit) Ds.t;
  ldeque : (worker -> unit) Locked_deque.t;
  cdeque : (worker -> unit) Chase_lev.t;
  rng : Wool_util.Rng.t;
  mutable fail_streak : int;
  (* thief-side counters; each worker only writes its own *)
  mutable n_spawns : int;
  mutable n_steals : int;
  mutable n_leap_steals : int;
  mutable n_failed : int;
  mutable n_inlined : int; (* Locked/Clev joins that found the task in place *)
}

and pool = {
  pmode : mode;
  lock_mode : [ `Base | `Peek | `Trylock ];
  idle_nap_ns : int;
  mutable workers : worker array;
  stop : bool Atomic.t;
  mutable domains : unit Domain.t list;
}

type t = pool
type ctx = worker

type 'a future = {
  fn : worker -> 'a;
  mutable value : ('a, exn) result option;
  completed : bool Atomic.t;
  index : int; (* descriptor index in the owner's direct stack; -1 otherwise *)
  owner_id : int;
  mutable wrapper : worker -> unit;
}

let dummy_task (_ : worker) = ()

(* How many consecutive failed steal attempts before an idle worker naps.
   Keeps over-subscribed pools (workers > cores) from starving the victims
   they are waiting on. *)
let nap_streak = 64

let make_worker ~id ~pool ~publicity ~capacity rng =
  {
    id;
    pool;
    dstack = Ds.create ~capacity ~publicity ~dummy:dummy_task ();
    ldeque = Locked_deque.create ~capacity ~dummy:dummy_task ();
    cdeque = Chase_lev.create ~dummy:dummy_task ();
    rng;
    fail_streak = 0;
    n_spawns = 0;
    n_steals = 0;
    n_leap_steals = 0;
    n_failed = 0;
    n_inlined = 0;
  }

let nap pool =
  if pool.idle_nap_ns > 0 then
    Unix.sleepf (float_of_int pool.idle_nap_ns *. 1e-9)

let idle_backoff w =
  Domain.cpu_relax ();
  w.fail_streak <- w.fail_streak + 1;
  if w.fail_streak >= nap_streak then begin
    w.fail_streak <- 0;
    nap w.pool
  end

(* Attempt to steal one task from [victim] and run it. *)
let steal_once w ~(victim : worker) =
  let ran =
    match w.pool.pmode with
    | Locked -> (
        match Locked_deque.steal ~mode:w.pool.lock_mode victim.ldeque with
        | Some task ->
            task w;
            true
        | None -> false)
    | Clev -> (
        match Chase_lev.steal victim.cdeque with
        | `Stolen task ->
            task w;
            true
        | `Empty | `Retry -> false)
    | Swap_generic | Task_specific | Private -> (
        match Ds.steal victim.dstack ~thief:w.id with
        | Ds.Stolen_task (task, index) ->
            task w;
            Ds.complete_steal victim.dstack ~index;
            true
        | Ds.Fail | Ds.Backoff -> false)
  in
  if ran then begin
    w.n_steals <- w.n_steals + 1;
    w.fail_streak <- 0
  end
  else w.n_failed <- w.n_failed + 1;
  ran

let random_victim w =
  let n = Array.length w.pool.workers in
  if n <= 1 then None
  else begin
    let k = Wool_util.Rng.int w.rng (n - 1) in
    let v = if k >= w.id then k + 1 else k in
    Some w.pool.workers.(v)
  end

let steal_random w =
  match random_victim w with
  | None ->
      idle_backoff w;
      false
  | Some victim ->
      let ran = steal_once w ~victim in
      if not ran then idle_backoff w;
      ran

let worker_loop w =
  while not (Atomic.get w.pool.stop) do
    ignore (steal_random w : bool)
  done

let create ?workers ?(mode = Private) ?(publicity = Adaptive 4)
    ?(capacity = 65536) ?(lock_mode = `Base) ?(idle_nap_ns = 50_000)
    ?(seed = 0xC0FFEE) () =
  let nworkers =
    match workers with Some n -> n | None -> Domain.recommended_domain_count ()
  in
  if nworkers <= 0 then invalid_arg "Pool.create: workers must be positive";
  let publicity =
    (* The ladder modes below [Private] have no private tasks. *)
    match mode with
    | Swap_generic | Task_specific -> All_public
    | Locked | Clev | Private -> publicity
  in
  let master = Wool_util.Rng.make seed in
  let pool =
    {
      pmode = mode;
      lock_mode;
      idle_nap_ns;
      workers = [||];
      stop = Atomic.make false;
      domains = [];
    }
  in
  let workers =
    Array.init nworkers (fun id ->
        make_worker ~id ~pool ~publicity ~capacity (Wool_util.Rng.split master))
  in
  pool.workers <- workers;
  pool.domains <-
    List.init (nworkers - 1) (fun i ->
        let w = workers.(i + 1) in
        Domain.spawn (fun () -> worker_loop w));
  pool

let shutdown pool =
  Atomic.set pool.stop true;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let run pool f = f pool.workers.(0)

let with_pool ?workers ?mode ?publicity ?seed f =
  let pool = create ?workers ?mode ?publicity ?seed () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Direct-stack modes signal completion through the descriptor state, so
   their futures share one never-read completion flag instead of
   allocating one per spawn. *)
let unused_completed = Atomic.make false

let spawn (w : ctx) (fn : ctx -> 'a) : 'a future =
  w.n_spawns <- w.n_spawns + 1;
  match w.pool.pmode with
  | (Locked | Clev) as mode ->
      let fut =
        { fn; value = None; completed = Atomic.make false; index = -1;
          owner_id = w.id; wrapper = dummy_task }
      in
      let wrapper wk =
        (match fut.fn wk with
        | v -> fut.value <- Some (Ok v)
        | exception e -> fut.value <- Some (Error e));
        Atomic.set fut.completed true
      in
      fut.wrapper <- wrapper;
      (match mode with
      | Locked -> Locked_deque.push w.ldeque wrapper
      | Clev -> Chase_lev.push w.cdeque wrapper
      | Swap_generic | Task_specific | Private -> assert false);
      fut
  | Swap_generic | Task_specific | Private ->
      let fut =
        { fn; value = None; completed = unused_completed;
          index = Ds.depth w.dstack; owner_id = w.id; wrapper = dummy_task }
      in
      let wrapper wk =
        match fut.fn wk with
        | v -> fut.value <- Some (Ok v)
        | exception e -> fut.value <- Some (Error e)
      in
      fut.wrapper <- wrapper;
      Ds.push w.dstack wrapper;
      fut

let value_exn fut =
  match fut.value with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None ->
      (* Unreachable: completion is observed before the value is read. *)
      assert false

(* Leapfrogging (§I, Wagner & Calder): while blocked on a task stolen by
   [victim_id], steal only from that worker. Any task acquired this way is
   work we would have executed ourselves had there been no steal. *)
let leapfrog w ~victim_id ~index =
  let victim = w.pool.workers.(victim_id) in
  while not (Ds.stolen_done w.dstack ~index) do
    let before = w.n_steals in
    if steal_once w ~victim then
      w.n_leap_steals <- w.n_leap_steals + (w.n_steals - before)
    else idle_backoff w
  done

let wait_completed w fut =
  (* No thief identity (Locked/Clev modes): steal from anyone while
     waiting. This is the strategy whose buried-join behaviour §I
     discusses. *)
  while not (Atomic.get fut.completed) do
    ignore (steal_random w : bool)
  done;
  value_exn fut

let join_direct w fut =
  if fut.index <> Ds.depth w.dstack - 1 then
    invalid_arg "Wool.join: joins must be made in LIFO spawn order";
  match Ds.pop w.dstack with
  | Ds.Task (wrapper, _public) -> (
      match w.pool.pmode with
      | Swap_generic ->
          (* Generic join: go through the wrapper and the result cell, as a
             runtime without task-specific join functions must. *)
          wrapper w;
          value_exn fut
      | Task_specific | Private | Locked | Clev ->
          (* Task-specific join: direct call of the typed task function. *)
          fut.fn w)
  | Ds.Stolen { thief; index } ->
      if thief >= 0 then leapfrog w ~victim_id:thief ~index;
      Ds.reclaim w.dstack ~index;
      value_exn fut

let join_locked w fut =
  match Locked_deque.pop w.ldeque with
  | Some wrapper ->
      assert (wrapper == fut.wrapper);
      w.n_inlined <- w.n_inlined + 1;
      wrapper w;
      value_exn fut
  | None -> wait_completed w fut

let join_clev w fut =
  match Chase_lev.pop w.cdeque with
  | Some wrapper when wrapper == fut.wrapper ->
      w.n_inlined <- w.n_inlined + 1;
      fut.fn w
  | Some other ->
      (* Our task was stolen; [other] is an older pending task of ours.
         Restore it and wait for the thief. *)
      Chase_lev.push w.cdeque other;
      wait_completed w fut
  | None -> wait_completed w fut

let join (w : ctx) fut =
  if fut.owner_id <> w.id then
    invalid_arg "Wool.join: future joined on a different worker";
  match w.pool.pmode with
  | Locked -> join_locked w fut
  | Clev -> join_clev w fut
  | Swap_generic | Task_specific | Private -> join_direct w fut

let call (w : ctx) fn = fn w
let self_id w = w.id
let num_workers pool = Array.length pool.workers
let mode pool = pool.pmode
let pool_of_ctx w = w.pool

type stats = {
  spawns : int;
  max_pool_depth : int;
  inlined_private : int;
  inlined_public : int;
  joins_stolen : int;
  steals : int;
  leap_steals : int;
  backoffs : int;
  failed_steals : int;
  publish_events : int;
  privatize_events : int;
}

let stats pool =
  let zero =
    {
      spawns = 0;
      max_pool_depth = 0;
      inlined_private = 0;
      inlined_public = 0;
      joins_stolen = 0;
      steals = 0;
      leap_steals = 0;
      backoffs = 0;
      failed_steals = 0;
      publish_events = 0;
      privatize_events = 0;
    }
  in
  Array.fold_left
    (fun acc w ->
      let d = Ds.stats w.dstack in
      {
        spawns = acc.spawns + w.n_spawns;
        max_pool_depth = max acc.max_pool_depth d.Ds.max_depth;
        inlined_private = acc.inlined_private + d.Ds.inlined_private;
        inlined_public = acc.inlined_public + d.Ds.inlined_public + w.n_inlined;
        joins_stolen = acc.joins_stolen + d.Ds.joins_stolen;
        steals = acc.steals + w.n_steals;
        leap_steals = acc.leap_steals + w.n_leap_steals;
        backoffs = acc.backoffs + d.Ds.backoffs;
        failed_steals = acc.failed_steals + w.n_failed;
        publish_events = acc.publish_events + d.Ds.publish_events;
        privatize_events = acc.privatize_events + d.Ds.privatize_events;
      })
    zero pool.workers

let reset_stats pool =
  Array.iter
    (fun w ->
      Ds.reset_stats w.dstack;
      w.n_spawns <- 0;
      w.n_steals <- 0;
      w.n_leap_steals <- 0;
      w.n_failed <- 0;
      w.n_inlined <- 0)
    pool.workers
