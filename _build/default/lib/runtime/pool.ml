module Ds = Wool_deque.Direct_stack
module Locked_deque = Wool_deque.Locked_deque
module Chase_lev = Wool_deque.Chase_lev
module Ring = Wool_trace.Ring
module Event = Wool_trace.Event

type mode = Locked | Swap_generic | Task_specific | Private | Clev

type publicity = Wool_deque.Direct_stack.publicity =
  | All_private
  | All_public
  | Adaptive of int

module Config = struct
  type t = {
    workers : int option;
    mode : mode;
    publicity : publicity;
    capacity : int;
    lock_mode : [ `Base | `Peek | `Trylock ];
    idle_nap_ns : int;
    seed : int;
    trace : bool;
    trace_capacity : int;
  }

  let default =
    {
      workers = None;
      mode = Private;
      publicity = Adaptive 4;
      capacity = 65536;
      lock_mode = `Base;
      idle_nap_ns = 50_000;
      seed = 0xC0FFEE;
      trace = false;
      trace_capacity = 1 lsl 16;
    }

  let make ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns ?seed
      ?trace ?trace_capacity () =
    let ov o d = Option.value o ~default:d in
    {
      workers = (match workers with Some _ -> workers | None -> default.workers);
      mode = ov mode default.mode;
      publicity = ov publicity default.publicity;
      capacity = ov capacity default.capacity;
      lock_mode = ov lock_mode default.lock_mode;
      idle_nap_ns = ov idle_nap_ns default.idle_nap_ns;
      seed = ov seed default.seed;
      trace = ov trace default.trace;
      trace_capacity = ov trace_capacity default.trace_capacity;
    }

  (* The old optional arguments of [create] layered on top of a base
     config; [None]s leave the base untouched. *)
  let override c ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
      ?seed ?trace () =
    let ov o d = Option.value o ~default:d in
    {
      workers = (match workers with Some _ -> workers | None -> c.workers);
      mode = ov mode c.mode;
      publicity = ov publicity c.publicity;
      capacity = ov capacity c.capacity;
      lock_mode = ov lock_mode c.lock_mode;
      idle_nap_ns = ov idle_nap_ns c.idle_nap_ns;
      seed = ov seed c.seed;
      trace = ov trace c.trace;
      trace_capacity = c.trace_capacity;
    }

  let mode_name = function
    | Locked -> "locked"
    | Swap_generic -> "swap_generic"
    | Task_specific -> "task_specific"
    | Private -> "private"
    | Clev -> "clev"

  let publicity_name = function
    | All_private -> "all_private"
    | All_public -> "all_public"
    | Adaptive w -> Printf.sprintf "adaptive(%d)" w

  let lock_mode_name = function
    | `Base -> "base"
    | `Peek -> "peek"
    | `Trylock -> "trylock"

  let pp fmt c =
    Format.fprintf fmt
      "{workers=%s; mode=%s; publicity=%s; capacity=%d; lock_mode=%s;@ \
       idle_nap_ns=%d; seed=%#x; trace=%b; trace_capacity=%d}"
      (match c.workers with Some n -> string_of_int n | None -> "auto")
      (mode_name c.mode)
      (publicity_name c.publicity)
      c.capacity
      (lock_mode_name c.lock_mode)
      c.idle_nap_ns c.seed c.trace c.trace_capacity
end

type worker = {
  id : int;
  pool : pool;
  dstack : (worker -> unit) Ds.t;
  ldeque : (worker -> unit) Locked_deque.t;
  cdeque : (worker -> unit) Chase_lev.t;
  rng : Wool_util.Rng.t;
  (* tracing: [tr_on] is immutable, so the disabled case is one predictable
     branch on the hot path; each worker writes only its own ring *)
  tr_on : bool;
  ring : Ring.t;
  mutable fail_streak : int;
  (* thief-side counters; each worker only writes its own *)
  mutable n_spawns : int;
  mutable n_steals : int;
  mutable n_leap_steals : int;
  mutable n_failed : int;
  mutable n_inlined : int; (* Locked/Clev joins that found the task in place *)
}

and pool = {
  pmode : mode;
  lock_mode : [ `Base | `Peek | `Trylock ];
  idle_nap_ns : int;
  trace_on : bool;
  mutable workers : worker array;
  stop : bool Atomic.t;
  mutable domains : unit Domain.t list;
}

type t = pool
type ctx = worker

type 'a future = {
  fn : worker -> 'a;
  mutable value : ('a, exn) result option;
  completed : bool Atomic.t;
  index : int; (* descriptor index in the owner's direct stack; -1 otherwise *)
  owner_id : int;
  mutable wrapper : worker -> unit;
}

let dummy_task (_ : worker) = ()

(* How many consecutive failed steal attempts before an idle worker naps.
   Keeps over-subscribed pools (workers > cores) from starving the victims
   they are waiting on. *)
let nap_streak = 64

let[@inline] record w tag ~a ~b =
  Ring.record w.ring ~ts:(Wool_util.Clock.now_ns ()) ~tag ~a ~b

let make_worker ~id ~pool ~publicity ~capacity ~trace ~trace_capacity rng =
  let w =
    {
      id;
      pool;
      dstack = Ds.create ~capacity ~publicity ~dummy:dummy_task ();
      ldeque = Locked_deque.create ~capacity ~dummy:dummy_task ();
      cdeque = Chase_lev.create ~dummy:dummy_task ();
      rng;
      tr_on = trace;
      ring = Ring.create ~capacity:(if trace then trace_capacity else 2);
      fail_streak = 0;
      n_spawns = 0;
      n_steals = 0;
      n_leap_steals = 0;
      n_failed = 0;
      n_inlined = 0;
    }
  in
  if trace then
    Ds.set_event_hooks w.dstack
      ~on_publish:(fun () -> record w Event.Publish ~a:(-1) ~b:(-1))
      ~on_privatize:(fun () -> record w Event.Privatize ~a:(-1) ~b:(-1));
  w

let nap pool =
  if pool.idle_nap_ns > 0 then
    Unix.sleepf (float_of_int pool.idle_nap_ns *. 1e-9)

let idle_backoff w =
  Domain.cpu_relax ();
  w.fail_streak <- w.fail_streak + 1;
  if w.fail_streak >= nap_streak then begin
    w.fail_streak <- 0;
    if w.tr_on then record w Event.Nap_enter ~a:(-1) ~b:(-1);
    nap w.pool;
    if w.tr_on then record w Event.Nap_exit ~a:(-1) ~b:(-1)
  end

(* Attempt to steal one task from [victim] and run it. *)
let steal_once w ~(victim : worker) =
  if w.tr_on then record w Event.Steal_attempt ~a:(-1) ~b:victim.id;
  let ran =
    match w.pool.pmode with
    | Locked -> (
        match Locked_deque.steal ~mode:w.pool.lock_mode victim.ldeque with
        | Some task ->
            if w.tr_on then record w Event.Steal_ok ~a:(-1) ~b:victim.id;
            task w;
            true
        | None -> false)
    | Clev -> (
        match Chase_lev.steal victim.cdeque with
        | `Stolen task ->
            if w.tr_on then record w Event.Steal_ok ~a:(-1) ~b:victim.id;
            task w;
            true
        | `Empty | `Retry -> false)
    | Swap_generic | Task_specific | Private -> (
        match Ds.steal victim.dstack ~thief:w.id with
        | Ds.Stolen_task (task, index) ->
            if w.tr_on then record w Event.Steal_ok ~a:index ~b:victim.id;
            task w;
            Ds.complete_steal victim.dstack ~index;
            true
        | Ds.Backoff ->
            if w.tr_on then record w Event.Steal_backoff ~a:(-1) ~b:victim.id;
            false
        | Ds.Fail -> false)
  in
  if ran then begin
    w.n_steals <- w.n_steals + 1;
    w.fail_streak <- 0
  end
  else w.n_failed <- w.n_failed + 1;
  ran

let random_victim w =
  let n = Array.length w.pool.workers in
  if n <= 1 then None
  else begin
    let k = Wool_util.Rng.int w.rng (n - 1) in
    let v = if k >= w.id then k + 1 else k in
    Some w.pool.workers.(v)
  end

let steal_random w =
  match random_victim w with
  | None ->
      idle_backoff w;
      false
  | Some victim ->
      let ran = steal_once w ~victim in
      if not ran then idle_backoff w;
      ran

let worker_loop w =
  while not (Atomic.get w.pool.stop) do
    ignore (steal_random w : bool)
  done

let create_of_config (c : Config.t) =
  let nworkers =
    match c.Config.workers with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  if nworkers <= 0 then invalid_arg "Pool.create: workers must be positive";
  let publicity =
    (* The ladder modes below [Private] have no private tasks. *)
    match c.Config.mode with
    | Swap_generic | Task_specific -> All_public
    | Locked | Clev | Private -> c.Config.publicity
  in
  let master = Wool_util.Rng.make c.Config.seed in
  let pool =
    {
      pmode = c.Config.mode;
      lock_mode = c.Config.lock_mode;
      idle_nap_ns = c.Config.idle_nap_ns;
      trace_on = c.Config.trace;
      workers = [||];
      stop = Atomic.make false;
      domains = [];
    }
  in
  let workers =
    Array.init nworkers (fun id ->
        make_worker ~id ~pool ~publicity ~capacity:c.Config.capacity
          ~trace:c.Config.trace ~trace_capacity:c.Config.trace_capacity
          (Wool_util.Rng.split master))
  in
  pool.workers <- workers;
  pool.domains <-
    List.init (nworkers - 1) (fun i ->
        let w = workers.(i + 1) in
        Domain.spawn (fun () -> worker_loop w));
  pool

let create ?(config = Config.default) ?workers ?mode ?publicity ?capacity
    ?lock_mode ?idle_nap_ns ?seed ?trace () =
  create_of_config
    (Config.override config ?workers ?mode ?publicity ?capacity ?lock_mode
       ?idle_nap_ns ?seed ?trace ())

let shutdown pool =
  Atomic.set pool.stop true;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let run pool f = f pool.workers.(0)

let with_pool ?config ?workers ?mode ?publicity ?capacity ?lock_mode
    ?idle_nap_ns ?seed ?trace f =
  let pool =
    create ?config ?workers ?mode ?publicity ?capacity ?lock_mode ?idle_nap_ns
      ?seed ?trace ()
  in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Direct-stack modes signal completion through the descriptor state, so
   their futures share one never-read completion flag instead of
   allocating one per spawn. *)
let unused_completed = Atomic.make false

let spawn (w : ctx) (fn : ctx -> 'a) : 'a future =
  w.n_spawns <- w.n_spawns + 1;
  match w.pool.pmode with
  | (Locked | Clev) as mode ->
      if w.tr_on then record w Event.Spawn ~a:(-1) ~b:(-1);
      let fut =
        { fn; value = None; completed = Atomic.make false; index = -1;
          owner_id = w.id; wrapper = dummy_task }
      in
      let wrapper wk =
        (match fut.fn wk with
        | v -> fut.value <- Some (Ok v)
        | exception e -> fut.value <- Some (Error e));
        Atomic.set fut.completed true
      in
      fut.wrapper <- wrapper;
      (match mode with
      | Locked -> Locked_deque.push w.ldeque wrapper
      | Clev -> Chase_lev.push w.cdeque wrapper
      | Swap_generic | Task_specific | Private -> assert false);
      fut
  | Swap_generic | Task_specific | Private ->
      let index = Ds.depth w.dstack in
      if w.tr_on then record w Event.Spawn ~a:index ~b:(-1);
      let fut =
        { fn; value = None; completed = unused_completed; index;
          owner_id = w.id; wrapper = dummy_task }
      in
      let wrapper wk =
        match fut.fn wk with
        | v -> fut.value <- Some (Ok v)
        | exception e -> fut.value <- Some (Error e)
      in
      fut.wrapper <- wrapper;
      Ds.push w.dstack wrapper;
      fut

let value_exn fut =
  match fut.value with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None ->
      (* Unreachable: completion is observed before the value is read. *)
      assert false

(* Leapfrogging (§I, Wagner & Calder): while blocked on a task stolen by
   [victim_id], steal only from that worker. Any task acquired this way is
   work we would have executed ourselves had there been no steal. *)
let leapfrog w ~victim_id ~index =
  let victim = w.pool.workers.(victim_id) in
  while not (Ds.stolen_done w.dstack ~index) do
    let before = w.n_steals in
    if steal_once w ~victim then begin
      w.n_leap_steals <- w.n_leap_steals + (w.n_steals - before);
      if w.tr_on then record w Event.Leap_steal ~a:(-1) ~b:victim_id
    end
    else idle_backoff w
  done

let wait_completed w fut =
  (* No thief identity (Locked/Clev modes): steal from anyone while
     waiting. This is the strategy whose buried-join behaviour §I
     discusses. *)
  while not (Atomic.get fut.completed) do
    ignore (steal_random w : bool)
  done;
  value_exn fut

let join_direct w fut =
  if fut.index <> Ds.depth w.dstack - 1 then
    invalid_arg "Wool.join: joins must be made in LIFO spawn order";
  match Ds.pop w.dstack with
  | Ds.Task (wrapper, public) -> (
      if w.tr_on then
        record w
          (if public then Event.Inline_public else Event.Inline_private)
          ~a:fut.index ~b:(-1);
      match w.pool.pmode with
      | Swap_generic ->
          (* Generic join: go through the wrapper and the result cell, as a
             runtime without task-specific join functions must. *)
          wrapper w;
          value_exn fut
      | Task_specific | Private | Locked | Clev ->
          (* Task-specific join: direct call of the typed task function. *)
          fut.fn w)
  | Ds.Stolen { thief; index } ->
      if w.tr_on then record w Event.Join_stolen ~a:index ~b:thief;
      if thief >= 0 then leapfrog w ~victim_id:thief ~index;
      Ds.reclaim w.dstack ~index;
      value_exn fut

let join_locked w fut =
  match Locked_deque.pop w.ldeque with
  | Some wrapper ->
      assert (wrapper == fut.wrapper);
      w.n_inlined <- w.n_inlined + 1;
      if w.tr_on then record w Event.Inline_public ~a:(-1) ~b:(-1);
      wrapper w;
      value_exn fut
  | None ->
      if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
      wait_completed w fut

let join_clev w fut =
  match Chase_lev.pop w.cdeque with
  | Some wrapper when wrapper == fut.wrapper ->
      w.n_inlined <- w.n_inlined + 1;
      if w.tr_on then record w Event.Inline_public ~a:(-1) ~b:(-1);
      fut.fn w
  | Some other ->
      (* Our task was stolen; [other] is an older pending task of ours.
         Restore it and wait for the thief. *)
      Chase_lev.push w.cdeque other;
      if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
      wait_completed w fut
  | None ->
      if w.tr_on then record w Event.Join_stolen ~a:(-1) ~b:(-1);
      wait_completed w fut

let join (w : ctx) fut =
  if fut.owner_id <> w.id then
    invalid_arg "Wool.join: future joined on a different worker";
  match w.pool.pmode with
  | Locked -> join_locked w fut
  | Clev -> join_clev w fut
  | Swap_generic | Task_specific | Private -> join_direct w fut

let call (w : ctx) fn = fn w
let self_id w = w.id
let num_workers pool = Array.length pool.workers
let mode pool = pool.pmode
let pool_of_ctx w = w.pool

module Stats = struct
  type t = {
    spawns : int;
    max_pool_depth : int;
    inlined_private : int;
    inlined_public : int;
    joins_stolen : int;
    steals : int;
    leap_steals : int;
    backoffs : int;
    failed_steals : int;
    publish_events : int;
    privatize_events : int;
  }

  let zero =
    {
      spawns = 0;
      max_pool_depth = 0;
      inlined_private = 0;
      inlined_public = 0;
      joins_stolen = 0;
      steals = 0;
      leap_steals = 0;
      backoffs = 0;
      failed_steals = 0;
      publish_events = 0;
      privatize_events = 0;
    }

  let of_worker w =
    let d = Ds.stats w.dstack in
    {
      spawns = w.n_spawns;
      max_pool_depth = d.Ds.max_depth;
      inlined_private = d.Ds.inlined_private;
      inlined_public = d.Ds.inlined_public + w.n_inlined;
      joins_stolen = d.Ds.joins_stolen;
      steals = w.n_steals;
      leap_steals = w.n_leap_steals;
      backoffs = d.Ds.backoffs;
      failed_steals = w.n_failed;
      publish_events = d.Ds.publish_events;
      privatize_events = d.Ds.privatize_events;
    }

  (* [max_pool_depth] is a high-water mark, not a flow; it combines with
     [max], everything else with [+]. *)
  let combine a b =
    {
      spawns = a.spawns + b.spawns;
      max_pool_depth = max a.max_pool_depth b.max_pool_depth;
      inlined_private = a.inlined_private + b.inlined_private;
      inlined_public = a.inlined_public + b.inlined_public;
      joins_stolen = a.joins_stolen + b.joins_stolen;
      steals = a.steals + b.steals;
      leap_steals = a.leap_steals + b.leap_steals;
      backoffs = a.backoffs + b.backoffs;
      failed_steals = a.failed_steals + b.failed_steals;
      publish_events = a.publish_events + b.publish_events;
      privatize_events = a.privatize_events + b.privatize_events;
    }

  let per_worker pool = Array.map of_worker pool.workers

  let aggregate pool =
    Array.fold_left (fun acc w -> combine acc (of_worker w)) zero pool.workers

  let reset pool =
    Array.iter
      (fun w ->
        Ds.reset_stats w.dstack;
        w.n_spawns <- 0;
        w.n_steals <- 0;
        w.n_leap_steals <- 0;
        w.n_failed <- 0;
        w.n_inlined <- 0)
      pool.workers

  let fields s =
    [
      ("spawns", s.spawns);
      ("max_pool_depth", s.max_pool_depth);
      ("inlined_private", s.inlined_private);
      ("inlined_public", s.inlined_public);
      ("joins_stolen", s.joins_stolen);
      ("steals", s.steals);
      ("leap_steals", s.leap_steals);
      ("backoffs", s.backoffs);
      ("failed_steals", s.failed_steals);
      ("publish_events", s.publish_events);
      ("privatize_events", s.privatize_events);
    ]

  let pp fmt s =
    Format.fprintf fmt "@[<hov 1>{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf fmt ";@ ";
        Format.fprintf fmt "%s=%d" k v)
      (fields s);
    Format.fprintf fmt "}@]"

  let to_json s =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf {|"%s":%d|} k v) (fields s))
    ^ "}"
end

type stats = Stats.t = {
  spawns : int;
  max_pool_depth : int;
  inlined_private : int;
  inlined_public : int;
  joins_stolen : int;
  steals : int;
  leap_steals : int;
  backoffs : int;
  failed_steals : int;
  publish_events : int;
  privatize_events : int;
}

let stats = Stats.aggregate
let reset_stats = Stats.reset

(* ---- trace collection (quiescent snapshots; see pool.mli) ---- *)

let trace_enabled pool = pool.trace_on

let trace_per_worker pool =
  Array.map (fun w -> Ring.snapshot w.ring ~worker:w.id) pool.workers

let trace_dropped pool =
  Array.fold_left (fun acc w -> acc + Ring.dropped w.ring) 0 pool.workers

let trace_events pool =
  let parts = trace_per_worker pool in
  let all = Array.concat (Array.to_list parts) in
  (* stable: per-worker order (monotone timestamps) survives equal keys *)
  Array.stable_sort
    (fun a b -> compare a.Event.ts b.Event.ts)
    all;
  all

let trace_clear pool =
  Array.iter (fun w -> Ring.clear w.ring) pool.workers
