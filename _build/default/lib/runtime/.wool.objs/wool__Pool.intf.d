lib/runtime/pool.mli: Wool_deque
