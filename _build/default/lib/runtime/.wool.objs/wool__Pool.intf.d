lib/runtime/pool.mli: Format Wool_deque Wool_trace
