lib/runtime/pool.ml: Array Atomic Domain Format Fun List Option Printf String Unix Wool_deque Wool_trace Wool_util
