lib/runtime/pool.ml: Array Atomic Domain Fun List Unix Wool_deque Wool_util
