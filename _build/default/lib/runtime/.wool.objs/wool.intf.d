lib/runtime/wool.mli: Pool
