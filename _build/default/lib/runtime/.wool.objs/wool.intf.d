lib/runtime/wool.mli: Pool Wool_trace
