lib/runtime/wool.ml: Array Pool
