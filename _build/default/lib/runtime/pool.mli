(** The Wool runtime: pools of domain workers with work stealing.

    A pool owns [workers] domains. The calling domain acts as worker 0 and
    executes the main task via {!run}; the remaining domains are thieves
    that steal and execute public tasks. The programming model is the
    paper's SPAWN / CALL / JOIN (Figure 2): [spawn] pushes a task on the
    calling worker's pool, the caller then typically does ordinary recursive
    calls, and [join] — which must be made in LIFO order — either inlines
    the task with a direct typed call or, if it was stolen, leapfrogs
    (steals only from the thief) until the thief completes it.

    The [mode] selects the synchronisation strategy and reproduces the
    optimisation ladder of Table II plus two conventional baselines:

    - [Locked]: per-worker lock taken at join and steal, no per-descriptor
      state (the paper's "base" row).
    - [Swap_generic]: atomic exchange on the descriptor state, but joins go
      through the generic wrapper and the result cell ("synchronize on
      task").
    - [Task_specific]: as above, but an inlined join calls the typed task
      function directly ("task specific join").
    - [Private]: adds private task descriptors with the trip-wire scheme
      ("private tasks"); the default.
    - [Clev]: a Chase–Lev pointer deque with random (non-leapfrog) stealing
      on blocked joins — the conventional steal-child baseline (TBB-like),
      exhibiting the buried-join behaviour discussed in §I. *)

type t
type ctx
(** The executing worker; threaded explicitly through task code (no
    domain-local lookup on the hot path). *)

type 'a future

type mode = Locked | Swap_generic | Task_specific | Private | Clev

type publicity = Wool_deque.Direct_stack.publicity =
  | All_private
  | All_public
  | Adaptive of int

val create :
  ?workers:int ->
  ?mode:mode ->
  ?publicity:publicity ->
  ?capacity:int ->
  ?lock_mode:[ `Base | `Peek | `Trylock ] ->
  ?idle_nap_ns:int ->
  ?seed:int ->
  unit ->
  t
(** [workers] defaults to [Domain.recommended_domain_count ()]. [publicity]
    (direct modes only) defaults to [Adaptive 4]. [lock_mode] picks the
    §IV-C stealing discipline in [Locked] mode. [idle_nap_ns] (default
    50_000) is how long an idle thief sleeps after a burst of failed steals,
    so that over-subscribed pools (more workers than cores) stay live;
    0 means pure spinning. *)

val run : t -> (ctx -> 'a) -> 'a
(** Execute a main task on worker 0 (the calling domain). Must be called
    from the domain that created the pool, and not from inside task code.
    Can be called repeatedly. *)

val shutdown : t -> unit
(** Stop and join the worker domains. The pool cannot be used afterwards. *)

val with_pool : ?workers:int -> ?mode:mode -> ?publicity:publicity ->
  ?seed:int -> (t -> 'a) -> 'a
(** Create a pool, run [f], and shut the pool down (also on exceptions). *)

val spawn : ctx -> (ctx -> 'a) -> 'a future
(** Make a task available for stealing (or for later inlining) on the
    calling worker. *)

val join : ctx -> 'a future -> 'a
(** Join with the most recent unjoined [spawn] of this worker. Raises
    [Invalid_argument] if called out of LIFO order or from another worker.
    If the task ran remotely and raised, the exception is re-raised here. *)

val call : ctx -> (ctx -> 'a) -> 'a
(** An ordinary call, for symmetry with the paper's CALL. *)

(* Introspection *)

val self_id : ctx -> int
val num_workers : t -> int
val mode : t -> mode
val pool_of_ctx : ctx -> t

type stats = {
  spawns : int;
  max_pool_depth : int;
      (** deepest per-worker direct-stack occupancy (direct modes only) —
          the §I space measure *)
  inlined_private : int;
  inlined_public : int;
  joins_stolen : int;
  steals : int;  (** successful steals, summed over thieves *)
  leap_steals : int;  (** steals performed while leapfrogging *)
  backoffs : int;  (** §III-A delayed-thief back-offs *)
  failed_steals : int;
  publish_events : int;
  privatize_events : int;
}

val stats : t -> stats
(** Aggregate over workers since creation or the last {!reset_stats}. *)

val reset_stats : t -> unit
