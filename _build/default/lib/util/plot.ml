type series = { label : string; points : (float * float) list }

let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 60) ?(height = 18) ?title ?xlabel ?ylabel series =
  let all = List.concat_map (fun s -> s.points) series in
  if all = [] then "(empty plot)\n"
  else begin
    let xs = List.map fst all and ys = List.map snd all in
    let xmin = List.fold_left Float.min (List.hd xs) xs in
    let xmax = List.fold_left Float.max (List.hd xs) xs in
    let ymin = Float.min 0.0 (List.fold_left Float.min (List.hd ys) ys) in
    let ymax = List.fold_left Float.max (List.hd ys) ys in
    let ymax = if ymax = ymin then ymin +. 1.0 else ymax in
    let xspan = if xmax = xmin then 1.0 else xmax -. xmin in
    let grid = Array.make_matrix height width ' ' in
    let to_col x =
      let c = int_of_float (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1))) in
      Stdlib.max 0 (Stdlib.min (width - 1) c)
    in
    let to_row y =
      let r =
        int_of_float
          (Float.round ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1)))
      in
      (height - 1) - Stdlib.max 0 (Stdlib.min (height - 1) r)
    in
    List.iteri
      (fun si s ->
        let m = markers.(si mod Array.length markers) in
        (* Connect consecutive points with linear interpolation so the lines
           read as lines rather than scattered markers. *)
        let pts = List.sort compare s.points in
        let rec segments = function
          | (x0, y0) :: ((x1, y1) :: _ as rest) ->
              let c0 = to_col x0 and c1 = to_col x1 in
              let steps = Stdlib.max 1 (abs (c1 - c0)) in
              for k = 0 to steps do
                let f = float_of_int k /. float_of_int steps in
                let x = x0 +. (f *. (x1 -. x0)) and y = y0 +. (f *. (y1 -. y0)) in
                grid.(to_row y).(to_col x) <- m
              done;
              segments rest
          | [ (x, y) ] -> grid.(to_row y).(to_col x) <- m
          | [] -> ()
        in
        segments pts)
      series;
    let buf = Buffer.create (width * height * 2) in
    (match title with
    | Some t ->
        Buffer.add_string buf t;
        Buffer.add_char buf '\n'
    | None -> ());
    (match ylabel with
    | Some l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n'
    | None -> ());
    let ylab_width = 8 in
    for r = 0 to height - 1 do
      let yval = ymax -. (float_of_int r /. float_of_int (height - 1) *. (ymax -. ymin)) in
      let label =
        if r = 0 || r = height - 1 || r = (height - 1) / 2 then
          Printf.sprintf "%*.1f" ylab_width yval
        else String.make ylab_width ' '
      in
      Buffer.add_string buf label;
      Buffer.add_string buf " |";
      Buffer.add_string buf (String.init width (fun c -> grid.(r).(c)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make ylab_width ' ');
    Buffer.add_string buf " +";
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%s %-*.1f%*.1f\n" (String.make ylab_width ' ') (width / 2) xmin
         (width - (width / 2))
         xmax);
    (match xlabel with
    | Some l ->
        Buffer.add_string buf (String.make ((ylab_width + 2 + width) / 2) ' ');
        Buffer.add_string buf l;
        Buffer.add_char buf '\n'
    | None -> ());
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s\n" markers.(si mod Array.length markers) s.label))
      series;
    Buffer.contents buf
  end

let print ?width ?height ?title ?xlabel ?ylabel series =
  print_string (render ?width ?height ?title ?xlabel ?ylabel series)
