type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  header : string list;
  ncols : int;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title ~header () =
  let ncols = List.length header in
  if ncols = 0 then invalid_arg "Table.create: empty header";
  let aligns = Array.make ncols Right in
  aligns.(0) <- Left;
  { title; header; ncols; aligns; rows = [] }

let set_align t i a =
  if i < 0 || i >= t.ncols then invalid_arg "Table.set_align: bad column";
  t.aligns.(i) <- a

let add_row t cells =
  let n = List.length cells in
  if n > t.ncols then invalid_arg "Table.add_row: too many cells";
  let padded =
    if n = t.ncols then cells else cells @ List.init (t.ncols - n) (fun _ -> "")
  in
  t.rows <- Cells padded :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let cell_f ?(dec = 1) x = Printf.sprintf "%.*f" dec x

let cell_i n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ' ';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render t =
  let rows = List.rev t.rows in
  let widths = Array.make t.ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- Stdlib.max widths.(i) (String.length c)) cells
  in
  measure t.header;
  List.iter (function Cells c -> measure c | Sep -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad i c =
    let w = widths.(i) in
    let l = String.length c in
    if l >= w then c
    else begin
      let fill = String.make (w - l) ' ' in
      match t.aligns.(i) with Left -> c ^ fill | Right -> fill ^ c
    end
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (3 * (t.ncols - 1))
  in
  let hline () =
    Buffer.add_string buf (String.make total_width '-');
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  let emit cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_char buf '\n'
  in
  hline ();
  emit t.header;
  hline ();
  List.iter (function Cells c -> emit c | Sep -> hline ()) rows;
  hline ();
  Buffer.contents buf

let print t = print_string (render t)
