(** Binary min-heap keyed by integer priority.

    The simulator's event queue: workers are ordered by the virtual time of
    their next step. Ties are broken by insertion sequence so simulation is
    deterministic regardless of heap internals. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> key:int -> 'a -> unit
(** Insert with priority [key]. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the entry with the smallest key (FIFO among equal
    keys). *)

val peek_key : 'a t -> int option
(** Smallest key without removing. *)

val clear : 'a t -> unit
