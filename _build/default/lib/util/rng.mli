(** Deterministic pseudo-random number generation.

    Every stochastic choice in the repository (victim selection in the
    schedulers, random sparse matrices for [cholesky], property-test inputs
    that are not driven by qcheck) flows from one of these generators so that
    experiments are reproducible bit-for-bit from a seed. *)

type t
(** A splittable xoshiro256** generator. Not thread-safe; give each simulated
    or real worker its own generator via {!split}. *)

val make : int -> t
(** [make seed] creates a generator from a 63-bit seed. Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. Used to hand
    a private stream to each worker. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
