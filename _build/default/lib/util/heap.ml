type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array; (* data.(0 .. size-1) is the heap *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

(* FIFO among equal keys via the monotonically increasing sequence number. *)
let lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let dummy = t.data.(0) in
  let ndata = Array.make ncap dummy in
  Array.blit t.data 0 ndata 0 t.size;
  t.data <- ndata

let push t ~key value =
  let e = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 e
  else if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    lt t.data.(!i) t.data.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.data.(p) in
    t.data.(p) <- t.data.(!i);
    t.data.(!i) <- tmp;
    i := p
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && lt t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && lt t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!smallest) in
          t.data.(!smallest) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.key, top.value)
  end

let peek_key t = if t.size = 0 then None else Some t.data.(0).key

let clear t =
  t.size <- 0;
  t.next_seq <- 0
