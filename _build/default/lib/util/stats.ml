let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let sorted xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let c = sorted xs in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then c.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (c.(lo) *. (1.0 -. frac)) +. (c.(hi) *. frac)
    end
  end

let median xs = percentile xs 50.0

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let min xs = if Array.length xs = 0 then 0.0 else Array.fold_left Float.min xs.(0) xs
let max xs = if Array.length xs = 0 then 0.0 else Array.fold_left Float.max xs.(0) xs

type summary = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize xs =
  { n = Array.length xs;
    mean = mean xs;
    median = median xs;
    stddev = stddev xs;
    min = min xs;
    max = max xs }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3g median=%.3g sd=%.3g min=%.3g max=%.3g"
    s.n s.mean s.median s.stddev s.min s.max

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let logsum =
      Array.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value"
          else acc +. log x)
        0.0 xs
    in
    exp (logsum /. float_of_int n)
  end
