lib/util/clock.ml: Array Int64 Monotonic_clock Sys
