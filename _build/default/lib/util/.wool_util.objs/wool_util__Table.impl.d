lib/util/table.ml: Array Buffer List Printf Stdlib String
