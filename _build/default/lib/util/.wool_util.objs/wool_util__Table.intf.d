lib/util/table.mli:
