lib/util/rng.mli:
