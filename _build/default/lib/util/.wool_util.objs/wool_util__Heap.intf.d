lib/util/heap.mli:
