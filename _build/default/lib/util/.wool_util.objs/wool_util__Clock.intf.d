lib/util/clock.mli:
