lib/util/plot.mli:
