(** Wall-clock measurement with a calibrated cycles-per-nanosecond scale.

    The paper reports overheads in CPU cycles read from [rdtsc]. We measure
    in monotonic nanoseconds and convert through a process-wide scale factor
    (default 1 cycle/ns, i.e. a nominal 1 GHz core; override with the
    [WOOL_GHZ] environment variable or {!set_ghz}). All reported "cycle"
    numbers from real measurements state this convention. *)

val now_ns : unit -> int
(** Monotonic clock in integer nanoseconds. *)

val set_ghz : float -> unit
(** Set the cycles-per-nanosecond scale used by {!to_cycles}. *)

val ghz : unit -> float
(** Current scale (cycles per nanosecond). Initialised from [WOOL_GHZ] when
    set, else 1.0. *)

val to_cycles : float -> float
(** [to_cycles ns] converts nanoseconds to nominal cycles. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] once and returns its result with elapsed ns. *)

val time_ns : ?warmup:int -> ?repeats:int -> (unit -> unit) -> float array
(** [time_ns f] runs [f] [warmup] times untimed (default 1) and then
    [repeats] timed times (default 5), returning per-run elapsed ns. *)
