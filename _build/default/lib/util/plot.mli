(** ASCII line plots for the reproduced figures.

    The paper's figures are speedup-vs-processors line charts; this renders
    the same series as a character grid so the harness output is
    self-contained in a terminal or a text log. *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?xlabel:string ->
  ?ylabel:string ->
  series list ->
  string
(** Render series on one chart (default 60x18 plot area). Each series is
    drawn with its own marker character and listed in a legend. Axis ranges
    cover all points, with y forced to include 0. *)

val print :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?xlabel:string ->
  ?ylabel:string ->
  series list ->
  unit
