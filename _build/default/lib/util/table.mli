(** Plain-text table rendering for the experiment reports.

    Every reproduced paper table is printed through this module so the
    harness output lines up column-wise like the paper's tables. *)

type align = Left | Right

type t

val create : ?title:string -> header:string list -> unit -> t
(** A table with the given column headers. Columns default to right
    alignment except the first, which is left-aligned. *)

val set_align : t -> int -> align -> unit
(** Override the alignment of column [i]. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. Rows longer than
    the header raise [Invalid_argument]. *)

val add_sep : t -> unit
(** Append a horizontal separator line. *)

val cell_f : ?dec:int -> float -> string
(** Format a float with [dec] decimals (default 1). *)

val cell_i : int -> string
(** Format an int with thousands separators ("12 345"). *)

val render : t -> string
(** Render to a string (with trailing newline). *)

val print : t -> unit
(** [render] then output on stdout. *)
