let now_ns () = Int64.to_int (Monotonic_clock.now ())

let scale =
  ref
    (match Sys.getenv_opt "WOOL_GHZ" with
    | Some s -> ( try float_of_string s with Failure _ -> 1.0)
    | None -> 1.0)

let set_ghz g =
  if g <= 0.0 then invalid_arg "Clock.set_ghz: scale must be positive";
  scale := g

let ghz () = !scale
let to_cycles ns = ns *. !scale

let time f =
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  (r, float_of_int (t1 - t0))

let time_ns ?(warmup = 1) ?(repeats = 5) f =
  for _ = 1 to warmup do
    f ()
  done;
  Array.init repeats (fun _ ->
      let t0 = now_ns () in
      f ();
      let t1 = now_ns () in
      float_of_int (t1 - t0))
