(** Small descriptive-statistics helpers used by the measurement harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val median : float array -> float
(** Median (average of the middle two for even lengths); 0 for empty. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than 2 points. *)

val min : float array -> float
val max : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation. *)

type summary = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

val geomean : float array -> float
(** Geometric mean of positive values. *)
