(* woolbench: regenerate the paper's tables and figures.

   `woolbench list` shows the available experiments; `woolbench <key>`
   runs one; `woolbench all` runs everything (as the final harness does). *)

open Cmdliner

let run_experiment keys =
  match keys with
  | [] | [ "all" ] ->
      Wool_report.Registry.run_all ();
      `Ok ()
  | [ "list" ] ->
      List.iter
        (fun e ->
          Printf.printf "%-8s %s\n" e.Wool_report.Registry.key
            e.Wool_report.Registry.title)
        Wool_report.Registry.all;
      `Ok ()
  | keys ->
      let missing =
        List.filter (fun k -> Wool_report.Registry.find k = None) keys
      in
      if missing <> [] then
        `Error
          ( false,
            Printf.sprintf "unknown experiment(s): %s (try `woolbench list`)"
              (String.concat ", " missing) )
      else begin
        List.iter
          (fun k ->
            match Wool_report.Registry.find k with
            | Some e -> e.Wool_report.Registry.run ()
            | None -> assert false)
          keys;
        `Ok ()
      end

let keys_arg =
  let doc = "Experiments to run: list | all | fig1 table1 table2 table3 fig4 fig5 table4 fig6." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let cmd =
  let doc = "regenerate the tables and figures of the Wool paper" in
  let info = Cmd.info "woolbench" ~doc in
  Cmd.v info Term.(ret (const run_experiment $ keys_arg))

let () = exit (Cmd.eval cmd)
