examples/simulate.ml: Array List Printf Sys Wool_ir Wool_metrics Wool_report Wool_sim Wool_util Wool_workloads
