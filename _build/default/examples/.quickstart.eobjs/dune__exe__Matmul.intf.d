examples/matmul.mli:
