examples/matmul.ml: Array Domain Printf Sys Wool Wool_util Wool_workloads
