examples/substring.ml: Array Domain Printf String Sys Wool Wool_util Wool_workloads
