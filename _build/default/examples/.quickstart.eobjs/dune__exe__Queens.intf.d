examples/queens.mli:
