examples/sparse_cholesky.ml: Array Domain Printf Sys Wool Wool_util Wool_workloads
