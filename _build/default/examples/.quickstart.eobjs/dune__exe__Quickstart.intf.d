examples/quickstart.mli:
