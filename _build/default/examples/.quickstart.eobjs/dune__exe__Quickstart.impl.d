examples/quickstart.ml: Array Domain Printf Sys Wool Wool_util
