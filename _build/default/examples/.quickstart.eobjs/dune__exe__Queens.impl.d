examples/queens.ml: Array Domain Printf Sys Wool Wool_util Wool_workloads
