examples/simulate.mli:
