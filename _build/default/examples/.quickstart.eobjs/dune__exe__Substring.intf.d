examples/substring.mli:
