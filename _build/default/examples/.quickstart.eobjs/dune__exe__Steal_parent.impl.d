examples/steal_parent.ml: Array Domain Printf Sys Wool Wool_cactus
