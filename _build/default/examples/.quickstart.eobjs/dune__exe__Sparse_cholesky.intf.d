examples/sparse_cholesky.mli:
