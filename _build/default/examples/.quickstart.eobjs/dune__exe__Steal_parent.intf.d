examples/steal_parent.mli:
