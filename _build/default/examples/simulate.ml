(* Tour of the deterministic multicore simulator: run one workload under
   the four schedulers the paper compares and print speedups, steal counts
   and the Wool CPU-time breakdown.

   Usage: dune exec examples/simulate.exe [-- HEIGHT [LEAF_ITERS [REPS]]] *)

module E = Wool_sim.Engine
module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module Tt = Wool_ir.Task_tree

let () =
  let height = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8 in
  let leaf_iters =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 256
  in
  let reps = if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 16 in
  let wl = W.stress ~reps ~height ~leaf_iters () in
  let root = W.root wl in
  Printf.printf "workload %s x %d reps: %d cycles of work, %d tasks\n"
    (W.label wl) reps (Tt.work root) (Tt.n_tasks root);
  Printf.printf "task granularity G_T = %.0f cycles\n\n"
    (Wool_metrics.Granularity.task_granularity root);
  let table =
    Wool_util.Table.create
      ~title:"absolute speedup (work / simulated time)"
      ~header:[ "system"; "p=1"; "p=2"; "p=4"; "p=8"; "steals@8"; "G_L(8)" ]
      ()
  in
  List.iter
    (fun (pol : P.t) ->
      let work = float_of_int (Tt.work root) in
      let speedup p =
        let r = E.run ~policy:pol ~workers:p root in
        (work /. float_of_int r.E.time, r)
      in
      let s1, _ = speedup 1 and s2, _ = speedup 2 in
      let s4, _ = speedup 4 in
      let s8, r8 = speedup 8 in
      Wool_util.Table.add_row table
        [
          pol.P.name;
          Printf.sprintf "%.2f" s1;
          Printf.sprintf "%.2f" s2;
          Printf.sprintf "%.2f" s4;
          Printf.sprintf "%.2f" s8;
          string_of_int r8.E.steals;
          Wool_report.Exp_common.fmt_k
            (Wool_metrics.Granularity.load_balancing_granularity
               ~work:r8.E.work ~steals:r8.E.steals);
        ])
    [ P.wool; P.cilk; P.tbb; P.openmp_tasks ];
  Wool_util.Table.print table;
  print_newline ();
  print_endline "Wool CPU-time breakdown at p=8 (cycles per category):";
  let r = E.run ~policy:P.wool ~workers:8 root in
  List.iter
    (fun cat ->
      let total =
        Array.fold_left
          (fun acc row -> acc + row.(E.category_index cat))
          0 r.E.breakdown
      in
      Printf.printf "  %s: %d\n" (E.category_name cat) total)
    [ E.TR; E.LA; E.NA; E.ST; E.LF ];
  (* Replay the identical (deterministic) run with tracing and show the
     per-worker Gantt chart. *)
  print_newline ();
  let trace = Wool_sim.Trace.create ~buckets:72 ~workers:8 ~horizon:r.E.time () in
  ignore (E.run ~trace ~policy:P.wool ~workers:8 root : E.result);
  Wool_sim.Trace.print trace
