module Heap = Wool_util.Heap

let drain h =
  let rec go acc =
    match Heap.pop h with None -> List.rev acc | Some kv -> go (kv :: acc)
  in
  go []

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek_key h = None)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k k) [ 5; 1; 4; 2; 3 ];
  Alcotest.(check (list (pair int int)))
    "sorted"
    [ (1, 1); (2, 2); (3, 3); (4, 4); (5, 5) ]
    (drain h)

let test_fifo_ties () =
  let h = Heap.create () in
  Heap.push h ~key:7 "a";
  Heap.push h ~key:7 "b";
  Heap.push h ~key:3 "c";
  Heap.push h ~key:7 "d";
  Alcotest.(check (list (pair int string)))
    "equal keys pop in insertion order"
    [ (3, "c"); (7, "a"); (7, "b"); (7, "d") ]
    (drain h)

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h ~key:10 10;
  Heap.push h ~key:5 5;
  Alcotest.(check bool) "pop 5" true (Heap.pop h = Some (5, 5));
  Heap.push h ~key:1 1;
  Heap.push h ~key:20 20;
  Alcotest.(check bool) "pop 1" true (Heap.pop h = Some (1, 1));
  Alcotest.(check bool) "pop 10" true (Heap.pop h = Some (10, 10));
  Alcotest.(check bool) "pop 20" true (Heap.pop h = Some (20, 20));
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_peek () =
  let h = Heap.create () in
  Heap.push h ~key:9 ();
  Heap.push h ~key:2 ();
  Alcotest.(check bool) "peek min" true (Heap.peek_key h = Some 2);
  Alcotest.(check int) "peek does not remove" 2 (Heap.length h)

let test_clear () =
  let h = Heap.create () in
  Heap.push h ~key:1 ();
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_negative_keys () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k k) [ 0; -5; 3; -1 ];
  Alcotest.(check (list (pair int int)))
    "negative keys sort"
    [ (-5, -5); (-1, -1); (0, 0); (3, 3) ]
    (drain h)

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 200) small_signed_int)
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h ~key:k ()) keys;
      let popped = List.map fst (drain h) in
      popped = List.sort compare keys)

let qcheck_heap_length =
  QCheck.Test.make ~name:"length tracks pushes and pops" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 100) small_signed_int)
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k i) keys;
      let n = List.length keys in
      let ok = ref (Heap.length h = n) in
      for expect = n - 1 downto 0 do
        ignore (Heap.pop h : (int * int) option);
        if Heap.length h <> expect then ok := false
      done;
      !ok)

let suite =
  [
    ( "heap",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "ordering" `Quick test_ordering;
        Alcotest.test_case "FIFO on ties" `Quick test_fifo_ties;
        Alcotest.test_case "interleaved" `Quick test_interleaved;
        Alcotest.test_case "peek" `Quick test_peek;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "negative keys" `Quick test_negative_keys;
        QCheck_alcotest.to_alcotest qcheck_heap_sorts;
        QCheck_alcotest.to_alcotest qcheck_heap_length;
      ] );
  ]
