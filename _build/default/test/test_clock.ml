module Clock = Wool_util.Clock

let test_monotonic () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (b >= a)

let test_positive () =
  Alcotest.(check bool) "positive" true (Clock.now_ns () > 0)

let test_scale () =
  let saved = Clock.ghz () in
  Fun.protect
    ~finally:(fun () -> Clock.set_ghz saved)
    (fun () ->
      Clock.set_ghz 2.0;
      Alcotest.(check (float 1e-9)) "ghz" 2.0 (Clock.ghz ());
      Alcotest.(check (float 1e-9)) "to_cycles" 20.0 (Clock.to_cycles 10.0);
      Alcotest.check_raises "non-positive"
        (Invalid_argument "Clock.set_ghz: scale must be positive") (fun () ->
          Clock.set_ghz 0.0))

let test_time () =
  let r, ns = Clock.time (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check bool) "elapsed >= 0" true (ns >= 0.0)

let test_time_measures_work () =
  let busy () =
    let acc = ref 0 in
    for i = 1 to 2_000_000 do
      acc := !acc + i
    done;
    ignore (Sys.opaque_identity !acc : int)
  in
  let _, ns = Clock.time busy in
  Alcotest.(check bool) "measurable" true (ns > 1000.0)

let test_time_ns_shape () =
  let count = ref 0 in
  let samples = Clock.time_ns ~warmup:2 ~repeats:4 (fun () -> incr count) in
  Alcotest.(check int) "repeats" 4 (Array.length samples);
  Alcotest.(check int) "warmup + repeats executions" 6 !count;
  Array.iter (fun s -> Alcotest.(check bool) "nonneg" true (s >= 0.0)) samples

let suite =
  [
    ( "clock",
      [
        Alcotest.test_case "monotonic" `Quick test_monotonic;
        Alcotest.test_case "positive" `Quick test_positive;
        Alcotest.test_case "scale" `Quick test_scale;
        Alcotest.test_case "time" `Quick test_time;
        Alcotest.test_case "time measures work" `Quick test_time_measures_work;
        Alcotest.test_case "time_ns shape" `Quick test_time_ns_shape;
      ] );
  ]
