module Rng = Wool_util.Rng

let test_determinism () =
  let a = Rng.make 123 and b = Rng.make 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.make 1 and b = Rng.make 2 in
  let distinct = ref false in
  for _ = 1 to 16 do
    if Rng.int64 a <> Rng.int64 b then distinct := true
  done;
  Alcotest.(check bool) "different seeds differ" true !distinct

let test_split_independent () =
  let parent = Rng.make 7 in
  let a = Rng.split parent in
  let b = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "split streams diverge" true (!same < 4)

let test_split_deterministic () =
  let mk () =
    let p = Rng.make 99 in
    let c = Rng.split p in
    Rng.int64 c
  in
  Alcotest.(check int64) "split is a function of parent state" (mk ()) (mk ())

let test_int_bounds () =
  let r = Rng.make 42 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
  done

let test_int_bound_one () =
  let r = Rng.make 5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 is always 0" 0 (Rng.int r 1)
  done

let test_int_invalid () =
  let r = Rng.make 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0 : int))

let test_int_covers_range () =
  let r = Rng.make 11 in
  let seen = Array.make 8 false in
  for _ = 1 to 10_000 do
    seen.(Rng.int r 8) <- true
  done;
  Array.iteri
    (fun i b -> Alcotest.(check bool) (Printf.sprintf "value %d seen" i) true b)
    seen

let test_float_bounds () =
  let r = Rng.make 17 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 3.5 in
    if v < 0.0 || v >= 3.5 then Alcotest.failf "float out of bounds: %f" v
  done

let test_bool_balance () =
  let r = Rng.make 23 in
  let trues = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bool r then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "roughly fair" true (ratio > 0.47 && ratio < 0.53)

let test_shuffle_permutation () =
  let r = Rng.make 31 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_shuffle_moves_something () =
  let r = Rng.make 31 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  Alcotest.(check bool) "not identity" true (a <> Array.init 50 Fun.id)

let qcheck_int_nonnegative =
  QCheck.Test.make ~name:"rng int stays in [0,bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.make seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let suite =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick test_split_independent;
        Alcotest.test_case "split determinism" `Quick test_split_deterministic;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int bound=1" `Quick test_int_bound_one;
        Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
        Alcotest.test_case "int covers range" `Quick test_int_covers_range;
        Alcotest.test_case "float bounds" `Quick test_float_bounds;
        Alcotest.test_case "bool balance" `Quick test_bool_balance;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
        Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_something;
        QCheck_alcotest.to_alcotest qcheck_int_nonnegative;
      ] );
  ]
