module M = Wool_model.Steal_model

let base = { M.work = 1_000_000.0; c2 = 2200.0; c_p = 6800.0; steals_per_rep = 17.0; p = 8 }

let test_distribution_steals () =
  Alcotest.(check int) "p=8" 7 (M.distribution_steals ~p:8);
  Alcotest.(check int) "p=1" 0 (M.distribution_steals ~p:1)

let test_balancing_steals () =
  Alcotest.(check (float 1e-9)) "surplus" 10.0
    (M.balancing_steals ~p:8 ~steals_per_rep:17.0);
  Alcotest.(check (float 1e-9)) "floored" 0.0
    (M.balancing_steals ~p:8 ~steals_per_rep:3.0)

let test_time_formula () =
  (* T_8 = 6800 + (1e6 + 2*10*2200)/8 *)
  Alcotest.(check (float 1e-6)) "closed form"
    (6800.0 +. ((1_000_000.0 +. 44_000.0) /. 8.0))
    (M.time base)

let test_speedup_bounds () =
  let s = M.speedup base in
  Alcotest.(check bool) "below linear" true (s < 8.0);
  Alcotest.(check bool) "positive" true (s > 0.0)

let test_single_processor () =
  (* no steals, but the micro-benchmark term still applies *)
  let i = { base with M.p = 1; steals_per_rep = 0.0; c_p = 0.0 } in
  Alcotest.(check (float 1e-9)) "T1 = work" base.M.work (M.time i)

let test_more_steals_cost_more () =
  let few = M.time { base with M.steals_per_rep = 8.0 } in
  let many = M.time { base with M.steals_per_rep = 80.0 } in
  Alcotest.(check bool) "steals hurt" true (many > few)

let test_invalid_p () =
  Alcotest.check_raises "p=0" (Invalid_argument "Steal_model.time: p must be positive")
    (fun () -> ignore (M.time { base with M.p = 0 } : float))

let qcheck_speedup_monotone_in_work =
  QCheck.Test.make ~name:"more work amortizes overhead" ~count:200
    QCheck.(pair (float_range 1e4 1e8) (float_range 1e4 1e8))
    (fun (w1, w2) ->
      let lo = Float.min w1 w2 and hi = Float.max w1 w2 in
      M.speedup { base with M.work = hi } >= M.speedup { base with M.work = lo } -. 1e-9)

let suite =
  [
    ( "model",
      [
        Alcotest.test_case "distribution steals" `Quick test_distribution_steals;
        Alcotest.test_case "balancing steals" `Quick test_balancing_steals;
        Alcotest.test_case "time formula" `Quick test_time_formula;
        Alcotest.test_case "speedup bounds" `Quick test_speedup_bounds;
        Alcotest.test_case "single processor" `Quick test_single_processor;
        Alcotest.test_case "steals cost" `Quick test_more_steals_cost_more;
        Alcotest.test_case "invalid p" `Quick test_invalid_p;
        QCheck_alcotest.to_alcotest qcheck_speedup_monotone_in_work;
      ] );
  ]
