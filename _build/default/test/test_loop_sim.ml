module L = Wool_sim.Loop_sim
module C = Wool_sim.Costs

let costs = C.openmp

let test_single_worker_exact () =
  let leaves = Array.make 10 1000 in
  let r = L.run ~costs ~workers:1 ~reps:3 ~leaf_work:leaves in
  (* one worker: no fork, no barrier *)
  Alcotest.(check int) "time" (costs.C.startup + (3 * 10_000)) r.L.time;
  Alcotest.(check (float 1e-9)) "balanced" 0.0 r.L.imbalance

let test_uniform_multi_worker () =
  let leaves = Array.make 8 1000 in
  let r = L.run ~costs ~workers:4 ~reps:1 ~leaf_work:leaves in
  let fork = costs.C.loop_fork_base + (4 * costs.C.loop_fork_per_worker) in
  let barrier = 4 * costs.C.barrier_per_worker in
  Alcotest.(check int) "time" (costs.C.startup + fork + 2000 + barrier) r.L.time;
  Alcotest.(check (float 1e-9)) "no imbalance" 0.0 r.L.imbalance

let test_imbalance () =
  (* one heavy iteration lands in one chunk *)
  let leaves = [| 10_000; 0; 0; 0 |] in
  let r = L.run ~costs ~workers:4 ~reps:1 ~leaf_work:leaves in
  Alcotest.(check bool) "imbalanced" true (r.L.imbalance > 1.0)

let test_static_chunking_penalty () =
  (* irregular ssf-style work: static chunks are slower than the ideal
     work/p bound *)
  let leaves = Array.init 64 (fun i -> if i < 8 then 10_000 else 100 ) in
  let total = Array.fold_left ( + ) 0 leaves in
  let r = L.run ~costs ~workers:8 ~reps:1 ~leaf_work:leaves in
  Alcotest.(check bool) "worse than ideal" true
    (r.L.time - costs.C.startup > total / 8)

let test_more_workers_not_slower_when_uniform () =
  let leaves = Array.make 64 5_000 in
  let t2 = (L.run ~costs ~workers:2 ~reps:4 ~leaf_work:leaves).L.time in
  let t8 = (L.run ~costs ~workers:8 ~reps:4 ~leaf_work:leaves).L.time in
  Alcotest.(check bool) "t8 < t2" true (t8 < t2)

let test_validation () =
  Alcotest.check_raises "workers"
    (Invalid_argument "Loop_sim.run: workers must be positive") (fun () ->
      ignore (L.run ~costs ~workers:0 ~reps:1 ~leaf_work:[| 1 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Loop_sim.run: empty loop")
    (fun () -> ignore (L.run ~costs ~workers:1 ~reps:1 ~leaf_work:[||]))

let test_more_workers_than_iterations () =
  let leaves = Array.make 3 1000 in
  let r = L.run ~costs ~workers:8 ~reps:1 ~leaf_work:leaves in
  Alcotest.(check bool) "completes" true (r.L.time > 0)

let suite =
  [
    ( "loop_sim",
      [
        Alcotest.test_case "single worker exact" `Quick test_single_worker_exact;
        Alcotest.test_case "uniform multi-worker" `Quick
          test_uniform_multi_worker;
        Alcotest.test_case "imbalance metric" `Quick test_imbalance;
        Alcotest.test_case "static chunk penalty" `Quick
          test_static_chunking_penalty;
        Alcotest.test_case "scaling when uniform" `Quick
          test_more_workers_not_slower_when_uniform;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "more workers than work" `Quick
          test_more_workers_than_iterations;
      ] );
  ]
