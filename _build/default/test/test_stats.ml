module Stats = Wool_util.Stats

let feq ?(eps = 1e-9) what a b =
  if Float.abs (a -. b) > eps then Alcotest.failf "%s: %f <> %f" what a b

let test_mean () =
  feq "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  feq "empty mean" 0.0 (Stats.mean [||]);
  feq "singleton" 42.0 (Stats.mean [| 42.0 |])

let test_median () =
  feq "odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  feq "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  feq "empty" 0.0 (Stats.median [||])

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  feq "p0" 10.0 (Stats.percentile xs 0.0);
  feq "p100" 50.0 (Stats.percentile xs 100.0);
  feq "p50" 30.0 (Stats.percentile xs 50.0);
  feq "p25" 20.0 (Stats.percentile xs 25.0);
  feq "interpolated" 12.0 (Stats.percentile xs 5.0)

let test_stddev () =
  feq "constant" 0.0 (Stats.stddev [| 3.0; 3.0; 3.0 |]);
  feq "known" 1.0 (Stats.stddev [| 1.0; 2.0; 3.0 |]);
  feq "too few" 0.0 (Stats.stddev [| 1.0 |])

let test_min_max () =
  feq "min" (-2.0) (Stats.min [| 3.0; -2.0; 7.0 |]);
  feq "max" 7.0 (Stats.max [| 3.0; -2.0; 7.0 |]);
  feq "empty min" 0.0 (Stats.min [||]);
  feq "empty max" 0.0 (Stats.max [||])

let test_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  feq "mean" 2.0 s.Stats.mean;
  feq "median" 2.0 s.Stats.median;
  feq "min" 1.0 s.Stats.min;
  feq "max" 3.0 s.Stats.max;
  let rendered = Format.asprintf "%a" Stats.pp_summary s in
  Alcotest.(check bool) "pp mentions n" true
    (String.length rendered > 0 && String.sub rendered 0 2 = "n=")

let test_geomean () =
  feq "known" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  feq "empty" 0.0 (Stats.geomean [||]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |] : float))

let qcheck_median_between =
  QCheck.Test.make ~name:"median within [min,max]" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let m = Stats.median xs in
      m >= Stats.min xs -. 1e-9 && m <= Stats.max xs +. 1e-9)

let qcheck_mean_shift =
  QCheck.Test.make ~name:"mean is translation-equivariant" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let shifted = Array.map (fun x -> x +. 10.0) xs in
      Float.abs (Stats.mean shifted -. (Stats.mean xs +. 10.0)) < 1e-6)

let suite =
  [
    ( "stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "median" `Quick test_median;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "min/max" `Quick test_min_max;
        Alcotest.test_case "summary" `Quick test_summary;
        Alcotest.test_case "geomean" `Quick test_geomean;
        QCheck_alcotest.to_alcotest qcheck_median_between;
        QCheck_alcotest.to_alcotest qcheck_mean_shift;
      ] );
  ]
