module Tt = Wool_ir.Task_tree
module Span = Wool_metrics.Span
module Gran = Wool_metrics.Granularity

let test_span_leaf () =
  Alcotest.(check int) "leaf span" 42 (Span.span (Tt.leaf 42))

let test_span_fork_zero_overhead () =
  (* zero overhead: spawned child overlaps the continuation *)
  let t = Tt.fork2 (Tt.leaf 100) (Tt.leaf 60) in
  Alcotest.(check int) "max branch" 100 (Span.span ~overhead:0 t);
  let t2 = Tt.fork2 (Tt.leaf 60) (Tt.leaf 100) in
  Alcotest.(check int) "max of either order" 100 (Span.span ~overhead:0 t2)

let test_span_sequentializes_small_savings () =
  (* savings = 60 < 2000, so the pair runs sequentially in the model *)
  let t = Tt.fork2 (Tt.leaf 100) (Tt.leaf 60) in
  Alcotest.(check int) "sequential" 160 (Span.span ~overhead:2000 t)

let test_span_parallelizes_large_savings () =
  let t = Tt.fork2 (Tt.leaf 50_000) (Tt.leaf 50_000) in
  (* savings 50_000 >= 2000: parallel with the 2000 surcharge *)
  Alcotest.(check int) "parallel + overhead" 52_000 (Span.span ~overhead:2000 t);
  Alcotest.(check int) "free model" 50_000 (Span.span ~overhead:0 t)

let test_span_call_sequences () =
  let t = Tt.make [ Tt.Call (Tt.leaf 10); Tt.Work 5; Tt.Call (Tt.leaf 20) ] in
  Alcotest.(check int) "calls serialize" 35 (Span.span t)

let test_span_balanced_tree () =
  let rec build h = if h = 0 then Tt.leaf 16 else Tt.fork2 (build (h - 1)) (build (h - 1)) in
  let t = build 10 in
  Alcotest.(check int) "span = one leaf" 16 (Span.span ~overhead:0 t);
  Alcotest.(check int) "work = all leaves" (16 * 1024) (Span.work t)

let test_parallelism () =
  let rec build h = if h = 0 then Tt.leaf 16 else Tt.fork2 (build (h - 1)) (build (h - 1)) in
  let t = build 6 in
  Alcotest.(check (float 1e-9)) "work/span" 64.0 (Span.parallelism ~overhead:0 t);
  Alcotest.(check (float 1e-9)) "degenerate leaf" 1.0
    (Span.parallelism (Tt.leaf 0))

let test_parallelism_decreases_with_overhead () =
  let t = Wool_workloads.Stress.tree ~height:8 ~leaf_iters:256 in
  let p0 = Span.parallelism ~overhead:0 t in
  let p2k = Span.parallelism ~overhead:2000 t in
  Alcotest.(check bool) "overhead reduces parallelism" true (p2k < p0);
  Alcotest.(check bool) "still at least 1" true (p2k >= 1.0)

let test_task_granularity () =
  let t = Tt.fork2 ~pre:10 (Tt.leaf 20) (Tt.leaf 30) in
  Alcotest.(check (float 1e-9)) "work per task" 60.0 (Gran.task_granularity t);
  Alcotest.(check (float 1e-9)) "leaf counts as whole work" 42.0
    (Gran.task_granularity (Tt.leaf 42))

let test_load_balancing_granularity () =
  Alcotest.(check (float 1e-9)) "per steal" 500.0
    (Gran.load_balancing_granularity ~work:5000 ~steals:10);
  Alcotest.(check bool) "no steals" true
    (Gran.load_balancing_granularity ~work:5000 ~steals:0 = infinity)

let gen_tree = QCheck.Gen.(
  sized_size (int_range 0 5) @@ fix (fun self n ->
      if n = 0 then map Tt.leaf (int_range 0 50)
      else
        oneof
          [
            map Tt.leaf (int_range 0 50);
            map2 (fun a b -> Tt.fork2 a b) (self (n / 2)) (self (n / 2));
          ]))

let arb_tree = QCheck.make gen_tree

let qcheck_span_bounds =
  QCheck.Test.make ~name:"span0 <= span_h <= work" ~count:300 arb_tree (fun t ->
      let s0 = Span.span ~overhead:0 t in
      let sh = Span.span ~overhead:2000 t in
      s0 <= sh && sh <= Tt.work t)

let qcheck_parallelism_at_least_one =
  QCheck.Test.make ~name:"parallelism >= 1" ~count:300 arb_tree (fun t ->
      Span.parallelism ~overhead:0 t >= 1.0 -. 1e-9)

let suite =
  [
    ( "metrics",
      [
        Alcotest.test_case "span leaf" `Quick test_span_leaf;
        Alcotest.test_case "span fork" `Quick test_span_fork_zero_overhead;
        Alcotest.test_case "small savings sequential" `Quick
          test_span_sequentializes_small_savings;
        Alcotest.test_case "large savings parallel" `Quick
          test_span_parallelizes_large_savings;
        Alcotest.test_case "calls sequence" `Quick test_span_call_sequences;
        Alcotest.test_case "balanced tree" `Quick test_span_balanced_tree;
        Alcotest.test_case "parallelism" `Quick test_parallelism;
        Alcotest.test_case "overhead reduces parallelism" `Quick
          test_parallelism_decreases_with_overhead;
        Alcotest.test_case "task granularity" `Quick test_task_granularity;
        Alcotest.test_case "load balancing granularity" `Quick
          test_load_balancing_granularity;
        QCheck_alcotest.to_alcotest qcheck_span_bounds;
        QCheck_alcotest.to_alcotest qcheck_parallelism_at_least_one;
      ] );
  ]
