test/test_sim_deque.ml: Alcotest List Wool_sim
