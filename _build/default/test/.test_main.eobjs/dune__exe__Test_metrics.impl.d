test/test_metrics.ml: Alcotest QCheck QCheck_alcotest Wool_ir Wool_metrics Wool_workloads
