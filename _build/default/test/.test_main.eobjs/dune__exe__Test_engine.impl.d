test/test_engine.ml: Alcotest Array List Printf QCheck QCheck_alcotest Wool_ir Wool_metrics Wool_sim Wool_workloads
