test/test_table.ml: Alcotest List String Wool_util
