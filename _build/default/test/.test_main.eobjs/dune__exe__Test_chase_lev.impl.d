test/test_chase_lev.ml: Alcotest Atomic Domain Gen List QCheck QCheck_alcotest Unix Wool_deque
