test/test_workloads.ml: Alcotest Array List Printf String Wool Wool_ir Wool_util Wool_workloads
