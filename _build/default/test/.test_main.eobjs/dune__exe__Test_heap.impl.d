test/test_heap.ml: Alcotest Gen List QCheck QCheck_alcotest Wool_util
