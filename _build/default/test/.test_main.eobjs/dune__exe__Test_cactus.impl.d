test/test_cactus.ml: Alcotest Atomic List Printf Wool Wool_cactus Wool_workloads
