test/test_locked_deque.ml: Alcotest Atomic Domain Gen List QCheck QCheck_alcotest Unix Wool_deque
