test/test_direct_stack.ml: Alcotest Array Atomic Domain Gen List Printf QCheck QCheck_alcotest Unix Wool_deque
