test/test_task_state.ml: Alcotest Format List Wool_deque
