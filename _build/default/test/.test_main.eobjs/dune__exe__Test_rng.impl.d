test/test_rng.ml: Alcotest Array Fun Printf QCheck QCheck_alcotest Wool_util
