test/test_loop_sim.ml: Alcotest Array Wool_sim
