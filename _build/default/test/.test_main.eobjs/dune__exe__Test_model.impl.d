test/test_model.ml: Alcotest Float QCheck QCheck_alcotest Wool_model
