test/test_report.ml: Alcotest List Printf Wool_report Wool_sim Wool_workloads
