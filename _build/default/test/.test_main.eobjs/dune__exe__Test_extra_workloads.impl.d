test/test_extra_workloads.ml: Alcotest Array Fun List Printf Wool Wool_ir Wool_metrics Wool_sim Wool_util Wool_workloads
