test/test_real_trace.ml: Alcotest Array Printf Wool Wool_trace Wool_workloads
