test/test_trace.ml: Alcotest List Printf String Wool_sim Wool_workloads
