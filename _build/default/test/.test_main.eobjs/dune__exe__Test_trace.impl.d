test/test_trace.ml: Alcotest Array List Printf String Wool_sim Wool_trace Wool_workloads
