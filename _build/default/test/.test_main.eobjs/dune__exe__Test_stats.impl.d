test/test_stats.ml: Alcotest Array Float Format Gen QCheck QCheck_alcotest String Wool_util
