test/test_cholesky.ml: Alcotest Array Float List Printf Wool Wool_ir Wool_util Wool_workloads
