test/test_task_tree.ml: Alcotest Array Format QCheck QCheck_alcotest String Wool_ir Wool_workloads
