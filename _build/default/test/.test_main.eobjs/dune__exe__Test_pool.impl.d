test/test_pool.ml: Alcotest Array Atomic Fun Gen List Printf QCheck QCheck_alcotest Sys Wool Wool_workloads
