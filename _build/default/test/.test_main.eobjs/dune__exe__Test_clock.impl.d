test/test_clock.ml: Alcotest Array Fun Sys Wool_util
