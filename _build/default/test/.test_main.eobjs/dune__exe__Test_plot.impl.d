test/test_plot.ml: Alcotest Gen List QCheck QCheck_alcotest String Wool_util
