module Tt = Wool_ir.Task_tree

let test_leaf () =
  let t = Tt.leaf 42 in
  Alcotest.(check int) "work" 42 (Tt.work t);
  Alcotest.(check int) "tasks" 0 (Tt.n_tasks t);
  Alcotest.(check int) "depth" 0 (Tt.depth t)

let test_fork2 () =
  let t = Tt.fork2 ~pre:5 ~post:7 (Tt.leaf 10) (Tt.leaf 20) in
  Alcotest.(check int) "work" (5 + 7 + 10 + 20) (Tt.work t);
  Alcotest.(check int) "tasks" 1 (Tt.n_tasks t);
  Alcotest.(check int) "depth" 1 (Tt.depth t)

let test_spawn_all () =
  let t = Tt.spawn_all ~pre:1 ~post:2 [ Tt.leaf 3; Tt.leaf 4; Tt.leaf 5 ] in
  Alcotest.(check int) "work" (1 + 2 + 3 + 4 + 5) (Tt.work t);
  Alcotest.(check int) "tasks" 3 (Tt.n_tasks t)

let test_make_validation () =
  Alcotest.check_raises "join without spawn"
    (Invalid_argument "Task_tree.make: Join without matching Spawn") (fun () ->
      ignore (Tt.make [ Tt.Join ]));
  Alcotest.check_raises "unjoined spawn"
    (Invalid_argument "Task_tree.make: unjoined Spawn") (fun () ->
      ignore (Tt.make [ Tt.Spawn (Tt.leaf 1) ]));
  Alcotest.check_raises "negative work"
    (Invalid_argument "Task_tree.make: negative work") (fun () ->
      ignore (Tt.make [ Tt.Work (-1) ]))

let test_shared_subtree_counts_instances () =
  let shared = Tt.leaf 10 in
  let t = Tt.fork2 shared shared in
  (* the shared leaf is reached twice; work counts both instances *)
  Alcotest.(check int) "work" 20 (Tt.work t);
  Alcotest.(check int) "distinct nodes" 2 (Tt.distinct_nodes t)

let test_binary_split () =
  let leaves = Array.make 8 (Tt.leaf 5) in
  let t = Tt.binary_split leaves in
  Alcotest.(check int) "work" 40 (Tt.work t);
  Alcotest.(check int) "tasks" 7 (Tt.n_tasks t);
  Alcotest.(check int) "depth" 3 (Tt.depth t);
  (* identical leaves: internal nodes share, so the DAG is logarithmic *)
  Alcotest.(check int) "dag nodes" 4 (Tt.distinct_nodes t)

let test_binary_split_uneven () =
  let leaves = Array.init 5 (fun i -> Tt.leaf (i + 1)) in
  let t = Tt.binary_split ~grain_merge:2 leaves in
  Alcotest.(check int) "work" (15 + (2 * 4)) (Tt.work t);
  Alcotest.(check int) "tasks" 4 (Tt.n_tasks t)

let test_binary_split_single () =
  let t = Tt.binary_split [| Tt.leaf 9 |] in
  Alcotest.(check int) "degenerate" 9 (Tt.work t)

let test_binary_split_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Task_tree.binary_split: empty")
    (fun () -> ignore (Tt.binary_split [||]))

let test_fib_tree_identities () =
  let t = Wool_workloads.Fib.tree 15 in
  (* one spawn per internal node of the fib call tree *)
  let rec internal n = if n < 2 then 0 else 1 + internal (n - 1) + internal (n - 2) in
  Alcotest.(check int) "spawns" (internal 15) (Tt.n_tasks t);
  (* the deepest nesting chain is n, n-1, ..., 2 -> leaf: n - 1 levels *)
  Alcotest.(check int) "depth" 14 (Tt.depth t);
  Alcotest.(check int) "dag is linear in n" 16 (Tt.distinct_nodes t)

let test_ids_unique () =
  let a = Tt.leaf 1 and b = Tt.leaf 1 in
  Alcotest.(check bool) "fresh ids" true (Tt.id a <> Tt.id b)

let test_pp () =
  let s = Format.asprintf "%a" Tt.pp (Tt.fork2 (Tt.leaf 1) (Tt.leaf 2)) in
  Alcotest.(check bool) "mentions work" true (String.length s > 10)

(* random tree generator for property tests *)
let gen_tree =
  let open QCheck.Gen in
  sized_size (int_range 0 6) @@ fix (fun self n ->
      if n = 0 then map Tt.leaf (int_range 0 100)
      else
        frequency
          [
            (1, map Tt.leaf (int_range 0 100));
            ( 2,
              map2
                (fun a b -> Tt.fork2 ~pre:1 a b)
                (self (n / 2)) (self (n / 2)) );
            ( 1,
              map2
                (fun a b -> Tt.make [ Tt.Call a; Tt.Work 3; Tt.Call b ])
                (self (n / 2)) (self (n / 2)) );
          ])

let arb_tree = QCheck.make ~print:(fun t -> Format.asprintf "%a" Wool_ir.Task_tree.pp t) gen_tree

let qcheck_work_nonnegative =
  QCheck.Test.make ~name:"work and tasks nonnegative" ~count:200 arb_tree
    (fun t -> Tt.work t >= 0 && Tt.n_tasks t >= 0 && Tt.depth t >= 0)

let qcheck_fork2_additive =
  QCheck.Test.make ~name:"fork2 adds work and one task" ~count:200
    (QCheck.pair arb_tree arb_tree) (fun (a, b) ->
      let t = Tt.fork2 a b in
      Tt.work t = Tt.work a + Tt.work b
      && Tt.n_tasks t = 1 + Tt.n_tasks a + Tt.n_tasks b)

let suite =
  [
    ( "task_tree",
      [
        Alcotest.test_case "leaf" `Quick test_leaf;
        Alcotest.test_case "fork2" `Quick test_fork2;
        Alcotest.test_case "spawn_all" `Quick test_spawn_all;
        Alcotest.test_case "make validation" `Quick test_make_validation;
        Alcotest.test_case "shared subtrees" `Quick
          test_shared_subtree_counts_instances;
        Alcotest.test_case "binary_split" `Quick test_binary_split;
        Alcotest.test_case "binary_split uneven" `Quick test_binary_split_uneven;
        Alcotest.test_case "binary_split single" `Quick test_binary_split_single;
        Alcotest.test_case "binary_split empty" `Quick test_binary_split_empty;
        Alcotest.test_case "fib identities" `Quick test_fib_tree_identities;
        Alcotest.test_case "unique ids" `Quick test_ids_unique;
        Alcotest.test_case "pp" `Quick test_pp;
        QCheck_alcotest.to_alcotest qcheck_work_nonnegative;
        QCheck_alcotest.to_alcotest qcheck_fork2_additive;
      ] );
  ]
