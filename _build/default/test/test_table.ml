module Table = Wool_util.Table

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_basic_render () =
  let t = Table.create ~title:"demo" ~header:[ "name"; "value" ] () in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "title" true (contains s "demo");
  Alcotest.(check bool) "header" true (contains s "name");
  Alcotest.(check bool) "row" true (contains s "alpha");
  Alcotest.(check bool) "column separator" true (contains s " | ")

let test_padding_alignment () =
  let t = Table.create ~header:[ "k"; "v" ] () in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "22" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  match widths with
  | [] -> Alcotest.fail "no lines"
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "uniform width" w w') rest

let test_short_row_padded () =
  let t = Table.create ~header:[ "a"; "b"; "c" ] () in
  Table.add_row t [ "only" ];
  Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0)

let test_too_long_row () =
  let t = Table.create ~header:[ "a" ] () in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_empty_header () =
  Alcotest.check_raises "empty header"
    (Invalid_argument "Table.create: empty header") (fun () ->
      ignore (Table.create ~header:[] () : Table.t))

let test_separator () =
  let t = Table.create ~header:[ "a" ] () in
  Table.add_row t [ "1" ];
  Table.add_sep t;
  Table.add_row t [ "2" ];
  let s = Table.render t in
  (* header rule + bottom rule + explicit sep = at least 3 dashes lines *)
  let dash_lines =
    List.filter
      (fun l -> l <> "" && String.for_all (fun c -> c = '-') l)
      (String.split_on_char '\n' s)
  in
  Alcotest.(check bool) "3+ rules" true (List.length dash_lines >= 3)

let test_set_align () =
  let t = Table.create ~header:[ "a"; "b" ] () in
  Table.set_align t 1 Table.Left;
  Table.add_row t [ "x"; "1" ];
  Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0);
  Alcotest.check_raises "bad column"
    (Invalid_argument "Table.set_align: bad column") (fun () ->
      Table.set_align t 5 Table.Left)

let test_cell_i () =
  Alcotest.(check string) "small" "12" (Table.cell_i 12);
  Alcotest.(check string) "thousands" "1 234" (Table.cell_i 1234);
  Alcotest.(check string) "millions" "12 345 678" (Table.cell_i 12345678);
  Alcotest.(check string) "negative" "-1 000" (Table.cell_i (-1000));
  Alcotest.(check string) "zero" "0" (Table.cell_i 0);
  Alcotest.(check string) "exact group" "100 000" (Table.cell_i 100000)

let test_cell_f () =
  Alcotest.(check string) "default dec" "1.5" (Table.cell_f 1.5);
  Alcotest.(check string) "dec 3" "2.250" (Table.cell_f ~dec:3 2.25);
  Alcotest.(check string) "dec 0" "3" (Table.cell_f ~dec:0 3.2)

let suite =
  [
    ( "table",
      [
        Alcotest.test_case "basic render" `Quick test_basic_render;
        Alcotest.test_case "uniform width" `Quick test_padding_alignment;
        Alcotest.test_case "short row padded" `Quick test_short_row_padded;
        Alcotest.test_case "too long row" `Quick test_too_long_row;
        Alcotest.test_case "empty header" `Quick test_empty_header;
        Alcotest.test_case "separator" `Quick test_separator;
        Alcotest.test_case "set_align" `Quick test_set_align;
        Alcotest.test_case "cell_i" `Quick test_cell_i;
        Alcotest.test_case "cell_f" `Quick test_cell_f;
      ] );
  ]
