module T = Wool_sim.Trace
module E = Wool_sim.Engine
module P = Wool_sim.Policy
module W = Wool_workloads.Workload

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_create_validation () =
  Alcotest.check_raises "workers" (Invalid_argument "Trace.create: workers must be positive")
    (fun () -> ignore (T.create ~workers:0 ~horizon:10 ()));
  Alcotest.check_raises "horizon" (Invalid_argument "Trace.create: horizon must be positive")
    (fun () -> ignore (T.create ~workers:1 ~horizon:0 ()));
  Alcotest.check_raises "buckets" (Invalid_argument "Trace.create: buckets must be positive")
    (fun () -> ignore (T.create ~buckets:0 ~workers:1 ~horizon:10 ()))

let test_record_and_dominant () =
  let t = T.create ~buckets:10 ~workers:2 ~horizon:1000 () in
  Alcotest.(check (option int)) "empty" None (T.dominant t ~worker:0 ~bucket:0);
  T.record t ~worker:0 ~start:0 ~cycles:50 ~category:2;
  T.record t ~worker:0 ~start:50 ~cycles:10 ~category:3;
  (* category 2 dominates bucket 0 *)
  Alcotest.(check (option int)) "dominant" (Some 2) (T.dominant t ~worker:0 ~bucket:0);
  Alcotest.(check (option int)) "other worker untouched" None
    (T.dominant t ~worker:1 ~bucket:0)

let test_record_spans_buckets () =
  let t = T.create ~buckets:10 ~workers:1 ~horizon:1000 () in
  (* 300 cycles from t=0 covers buckets 0..2 *)
  T.record t ~worker:0 ~start:0 ~cycles:300 ~category:2;
  List.iter
    (fun b ->
      Alcotest.(check (option int))
        (Printf.sprintf "bucket %d" b)
        (Some 2)
        (T.dominant t ~worker:0 ~bucket:b))
    [ 0; 1; 2 ];
  Alcotest.(check (option int)) "bucket 3 empty" None
    (T.dominant t ~worker:0 ~bucket:3)

let test_clamping () =
  let t = T.create ~buckets:4 ~workers:1 ~horizon:100 () in
  (* beyond the horizon: lands in the last bucket, no exception *)
  T.record t ~worker:0 ~start:500 ~cycles:10 ~category:1;
  Alcotest.(check (option int)) "clamped" (Some 1) (T.dominant t ~worker:0 ~bucket:3)

let test_utilization () =
  let t = T.create ~buckets:10 ~workers:2 ~horizon:1000 () in
  T.record t ~worker:0 ~start:0 ~cycles:500 ~category:2;
  Alcotest.(check (float 1e-9)) "half busy" 0.5 (T.utilization t ~worker:0);
  Alcotest.(check (float 1e-9)) "idle worker" 0.0 (T.utilization t ~worker:1)

let test_record_validation () =
  let t = T.create ~workers:1 ~horizon:100 () in
  Alcotest.check_raises "bad worker" (Invalid_argument "Trace.record: bad worker")
    (fun () -> T.record t ~worker:5 ~start:0 ~cycles:1 ~category:0);
  Alcotest.check_raises "bad category" (Invalid_argument "Trace.record: bad category")
    (fun () -> T.record t ~worker:0 ~start:0 ~cycles:1 ~category:9)

let test_render () =
  let t = T.create ~buckets:20 ~workers:2 ~horizon:1000 () in
  T.record t ~worker:0 ~start:0 ~cycles:900 ~category:2;
  T.record t ~worker:1 ~start:0 ~cycles:200 ~category:3;
  let s = T.render t in
  Alcotest.(check bool) "worker rows" true (contains s "w0" && contains s "w1");
  Alcotest.(check bool) "app glyph" true (contains s "#");
  Alcotest.(check bool) "steal glyph" true (contains s ".");
  Alcotest.(check bool) "legend" true (contains s "legend")

let test_engine_integration () =
  (* two-pass: measure, then trace the identical (deterministic) run *)
  let root = W.root (W.stress ~reps:4 ~height:6 ~leaf_iters:1024 ()) in
  let first = E.run ~seed:5 ~policy:P.wool ~workers:4 root in
  let trace = T.create ~workers:4 ~horizon:first.E.time () in
  let second = E.run ~seed:5 ~trace ~policy:P.wool ~workers:4 root in
  Alcotest.(check int) "identical replay" first.E.time second.E.time;
  Alcotest.(check int) "same trace hash" first.E.trace_hash second.E.trace_hash;
  (* worker 0 starts the root: it must be busy early *)
  Alcotest.(check bool) "worker 0 active" true
    (T.utilization trace ~worker:0 > 0.5);
  Alcotest.(check bool) "renders" true (String.length (T.render trace) > 100)

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "record and dominant" `Quick test_record_and_dominant;
        Alcotest.test_case "spanning buckets" `Quick test_record_spans_buckets;
        Alcotest.test_case "clamping" `Quick test_clamping;
        Alcotest.test_case "utilization" `Quick test_utilization;
        Alcotest.test_case "record validation" `Quick test_record_validation;
        Alcotest.test_case "render" `Quick test_render;
        Alcotest.test_case "engine integration" `Quick test_engine_integration;
      ] );
  ]
