module Ts = Wool_deque.Task_state

let test_distinct () =
  let vals = [ Ts.empty; Ts.task_private; Ts.task_public; Ts.done_; Ts.stolen ~thief:0 ] in
  let rec pairwise = function
    | [] -> ()
    | x :: rest ->
        List.iter (fun y -> Alcotest.(check bool) "distinct" true (x <> y)) rest;
        pairwise rest
  in
  pairwise vals

let test_is_task () =
  Alcotest.(check bool) "private is task" true (Ts.is_task Ts.task_private);
  Alcotest.(check bool) "public is task" true (Ts.is_task Ts.task_public);
  Alcotest.(check bool) "empty not task" false (Ts.is_task Ts.empty);
  Alcotest.(check bool) "done not task" false (Ts.is_task Ts.done_);
  Alcotest.(check bool) "stolen not task" false (Ts.is_task (Ts.stolen ~thief:3))

let test_is_task_public () =
  Alcotest.(check bool) "public" true (Ts.is_task_public Ts.task_public);
  Alcotest.(check bool) "private not public" false (Ts.is_task_public Ts.task_private)

let test_stolen_roundtrip () =
  for thief = 0 to 100 do
    let s = Ts.stolen ~thief in
    Alcotest.(check bool) "is_stolen" true (Ts.is_stolen s);
    Alcotest.(check int) "thief" thief (Ts.thief s)
  done

let test_is_stolen_negative () =
  List.iter
    (fun s -> Alcotest.(check bool) "not stolen" false (Ts.is_stolen s))
    [ Ts.empty; Ts.task_private; Ts.task_public; Ts.done_ ]

let test_thief_invalid () =
  Alcotest.check_raises "thief of non-stolen"
    (Invalid_argument "Task_state.thief") (fun () ->
      ignore (Ts.thief Ts.done_ : int))

let test_pp () =
  let s v = Format.asprintf "%a" Ts.pp v in
  Alcotest.(check string) "empty" "EMPTY" (s Ts.empty);
  Alcotest.(check string) "private" "TASK(private)" (s Ts.task_private);
  Alcotest.(check string) "public" "TASK(public)" (s Ts.task_public);
  Alcotest.(check string) "done" "DONE" (s Ts.done_);
  Alcotest.(check string) "stolen" "STOLEN(5)" (s (Ts.stolen ~thief:5))

let suite =
  [
    ( "task_state",
      [
        Alcotest.test_case "values distinct" `Quick test_distinct;
        Alcotest.test_case "is_task" `Quick test_is_task;
        Alcotest.test_case "is_task_public" `Quick test_is_task_public;
        Alcotest.test_case "stolen roundtrip" `Quick test_stolen_roundtrip;
        Alcotest.test_case "is_stolen negatives" `Quick test_is_stolen_negative;
        Alcotest.test_case "thief invalid" `Quick test_thief_invalid;
        Alcotest.test_case "pp" `Quick test_pp;
      ] );
  ]
