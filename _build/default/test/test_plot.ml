module Plot = Wool_util.Plot

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let series label points = { Plot.label; points }

let test_empty () =
  Alcotest.(check string) "empty plot" "(empty plot)\n" (Plot.render [])

let test_single_series () =
  let s = Plot.render [ series "one" [ (1.0, 1.0); (2.0, 2.0); (3.0, 3.0) ] ] in
  Alcotest.(check bool) "legend" true (contains s "one");
  Alcotest.(check bool) "marker drawn" true (contains s "*");
  Alcotest.(check bool) "axis" true (contains s "+")

let test_title_labels () =
  let s =
    Plot.render ~title:"myplot" ~xlabel:"xs" ~ylabel:"ys"
      [ series "a" [ (0.0, 0.0); (1.0, 1.0) ] ]
  in
  List.iter
    (fun n -> Alcotest.(check bool) n true (contains s n))
    [ "myplot"; "xs"; "ys" ]

let test_multiple_series_markers () =
  let s =
    Plot.render
      [
        series "first" [ (0.0, 0.0); (1.0, 1.0) ];
        series "second" [ (0.0, 1.0); (1.0, 0.0) ];
      ]
  in
  Alcotest.(check bool) "marker 1" true (contains s "*");
  Alcotest.(check bool) "marker 2" true (contains s "+");
  Alcotest.(check bool) "legend 2" true (contains s "second")

let test_singleton_point () =
  let s = Plot.render [ series "dot" [ (5.0, 5.0) ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_constant_series () =
  (* y range collapses to a point; must not divide by zero *)
  let s = Plot.render [ series "flat" [ (0.0, 2.0); (1.0, 2.0) ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_dimensions () =
  let s =
    Plot.render ~width:20 ~height:5 [ series "a" [ (0.0, 0.0); (1.0, 1.0) ] ]
  in
  let lines = String.split_on_char '\n' s in
  (* 5 grid rows + axis + x labels + legend *)
  Alcotest.(check bool) "row count plausible" true (List.length lines >= 8)

let qcheck_never_crashes =
  QCheck.Test.make ~name:"plot renders arbitrary series" ~count:100
    QCheck.(
      list_of_size (Gen.int_range 1 4)
        (list_of_size (Gen.int_range 1 20)
           (pair (float_range (-1e3) 1e3) (float_range (-1e3) 1e3))))
  @@ fun data ->
  let ss = List.mapi (fun i pts -> series (string_of_int i) pts) data in
  String.length (Plot.render ss) > 0

let suite =
  [
    ( "plot",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "single series" `Quick test_single_series;
        Alcotest.test_case "title and labels" `Quick test_title_labels;
        Alcotest.test_case "multiple markers" `Quick test_multiple_series_markers;
        Alcotest.test_case "single point" `Quick test_singleton_point;
        Alcotest.test_case "constant series" `Quick test_constant_series;
        Alcotest.test_case "dimensions" `Quick test_dimensions;
        QCheck_alcotest.to_alcotest qcheck_never_crashes;
      ] );
  ]
