module Sdq = Wool_sim.Sim_deque

let mk () = Sdq.create ~dummy:(-1) ()

let test_push_pop () =
  let d = mk () in
  Sdq.push d 1;
  Sdq.push d 2;
  Alcotest.(check int) "size" 2 (Sdq.size d);
  Alcotest.(check int) "pop newest" 2 (Sdq.pop_present d);
  Alcotest.(check int) "pop next" 1 (Sdq.pop_present d);
  Alcotest.(check int) "empty" 0 (Sdq.size d)

let test_pop_present_empty () =
  let d = mk () in
  Alcotest.check_raises "nothing present"
    (Invalid_argument "Sim_deque.pop_present: nothing present") (fun () ->
      ignore (Sdq.pop_present d : int))

let test_take_bot () =
  let d = mk () in
  List.iter (Sdq.push d) [ 1; 2; 3 ];
  Alcotest.(check int) "oldest" 1 (Sdq.take_bot d);
  Alcotest.(check int) "bot moved" 1 (Sdq.bot_index d);
  Alcotest.(check (option int)) "peek bot" (Some 2) (Sdq.peek_bot d);
  Alcotest.(check (option int)) "peek top" (Some 3) (Sdq.peek_top d)

let test_take_bot_empty () =
  let d = mk () in
  Alcotest.check_raises "empty" (Invalid_argument "Sim_deque.take_bot: empty")
    (fun () -> ignore (Sdq.take_bot d : int))

let test_pop_consumed () =
  let d = mk () in
  Sdq.push d 1;
  ignore (Sdq.take_bot d : int);
  (* owner joins the stolen element *)
  Sdq.pop_consumed d;
  Alcotest.(check int) "top back to 0" 0 (Sdq.top_index d);
  Alcotest.(check int) "bot back to 0" 0 (Sdq.bot_index d)

let test_pop_consumed_invalid () =
  let d = mk () in
  Sdq.push d 1;
  Alcotest.check_raises "element present"
    (Invalid_argument "Sim_deque.pop_consumed: top element still present")
    (fun () -> Sdq.pop_consumed d)

let test_get () =
  let d = mk () in
  List.iter (Sdq.push d) [ 10; 11; 12 ];
  Alcotest.(check int) "get 1" 11 (Sdq.get d 1);
  Alcotest.check_raises "absent" (Invalid_argument "Sim_deque.get: absent index")
    (fun () -> ignore (Sdq.get d 3 : int))

let test_growth () =
  let d = mk () in
  for i = 1 to 100 do
    Sdq.push d i
  done;
  Alcotest.(check int) "size" 100 (Sdq.size d);
  for i = 100 downto 1 do
    Alcotest.(check int) "order kept across growth" i (Sdq.pop_present d)
  done

let test_peeks_empty () =
  let d = mk () in
  Alcotest.(check (option int)) "bot" None (Sdq.peek_bot d);
  Alcotest.(check (option int)) "top" None (Sdq.peek_top d)

let suite =
  [
    ( "sim_deque",
      [
        Alcotest.test_case "push/pop" `Quick test_push_pop;
        Alcotest.test_case "pop_present empty" `Quick test_pop_present_empty;
        Alcotest.test_case "take_bot" `Quick test_take_bot;
        Alcotest.test_case "take_bot empty" `Quick test_take_bot_empty;
        Alcotest.test_case "pop_consumed" `Quick test_pop_consumed;
        Alcotest.test_case "pop_consumed invalid" `Quick
          test_pop_consumed_invalid;
        Alcotest.test_case "get" `Quick test_get;
        Alcotest.test_case "growth" `Quick test_growth;
        Alcotest.test_case "peeks on empty" `Quick test_peeks_empty;
      ] );
  ]
