(* Dense matrix multiply with the outermost loop as a task tree (the
   paper's mm benchmark), checked against the serial product.

   Usage: dune exec examples/matmul.exe [-- N [WORKERS]] *)

module Mm = Wool_workloads.Mm

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 128 in
  let workers =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else Domain.recommended_domain_count ()
  in
  let rng = Wool_util.Rng.make 2024 in
  let a = Mm.random_matrix rng n and b = Mm.random_matrix rng n in
  let (serial, serial_ns) = Wool_util.Clock.time (fun () -> Mm.serial a b) in
  Wool.with_pool ~config:(Wool.Config.make ~workers ()) (fun pool ->
      let (parallel, par_ns) =
        Wool_util.Clock.time (fun () -> Wool.run pool (fun ctx -> Mm.wool ctx a b))
      in
      if not (Mm.equal serial parallel) then failwith "parallel result differs!";
      let s = Wool.Stats.aggregate pool in
      Printf.printf "mm %dx%d on %d worker(s): results match\n" n n workers;
      Printf.printf "  serial %.2f ms, parallel %.2f ms (%.2fx)\n"
        (serial_ns /. 1e6) (par_ns /. 1e6) (serial_ns /. par_ns);
      Printf.printf "  %d row tasks spawned, %d stolen\n" s.Wool.Pool.spawns
        s.Wool.Pool.steals)
