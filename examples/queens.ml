(* N-queens on the Wool runtime: an irregular search tree whose subtree
   sizes are unpredictable — the situation (sec. II of the paper) where
   automatic granularity control matters most.

   Usage: dune exec examples/queens.exe [-- N [WORKERS]] *)

module Nq = Wool_workloads.Nqueens

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 11 in
  let workers =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else Domain.recommended_domain_count ()
  in
  let (serial, serial_ns) = Wool_util.Clock.time (fun () -> Nq.serial n) in
  Wool.with_pool ~config:(Wool.Config.make ~workers ()) (fun pool ->
      let (parallel, par_ns) =
        Wool_util.Clock.time (fun () -> Wool.run pool (fun ctx -> Nq.wool ctx n))
      in
      assert (serial = parallel);
      Printf.printf "%d-queens: %d solutions\n" n parallel;
      Printf.printf "serial %.2f ms, parallel %.2f ms on %d worker(s)\n"
        (serial_ns /. 1e6) (par_ns /. 1e6) workers;
      let s = Wool.Stats.aggregate pool in
      Printf.printf "spawns=%d inlined(private)=%d steals=%d\n"
        s.Wool.Pool.spawns s.Wool.Pool.inlined_private s.Wool.Pool.steals)
