(* Sub-string finder on Fibonacci strings (the paper's ssf benchmark,
   after the TBB example): for each position, where does the longest
   identical substring start?

   Usage: dune exec examples/substring.exe [-- N [WORKERS]] *)

module Ssf = Wool_workloads.Ssf

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 12 in
  let workers =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else Domain.recommended_domain_count ()
  in
  let s = Ssf.subject n in
  Printf.printf "subject s_%d has %d characters\n" n (String.length s);
  let (serial, serial_ns) = Wool_util.Clock.time (fun () -> Ssf.serial s) in
  Wool.with_pool ~config:(Wool.Config.make ~workers ()) (fun pool ->
      let (parallel, par_ns) =
        Wool_util.Clock.time (fun () -> Wool.run pool (fun ctx -> Ssf.wool ctx s))
      in
      assert (serial = parallel);
      Printf.printf "serial %.2f ms, parallel %.2f ms on %d worker(s)\n"
        (serial_ns /. 1e6) (par_ns /. 1e6) workers;
      (* show the most self-similar positions *)
      let best = ref (0, (0, -1)) in
      Array.iteri
        (fun i (p, l) -> if l > snd (snd !best) then best := (i, (p, l)))
        parallel;
      let i, (p, l) = !best in
      Printf.printf
        "longest repeat: positions %d and %d share a %d-character substring\n"
        i p l;
      if l > 0 then
        Printf.printf "  %S\n" (String.sub s i (min l 60)))
