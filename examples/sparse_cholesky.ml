(* Task-parallel sparse Cholesky factorisation on quadtree matrices (the
   paper's cholesky benchmark, after the Cilk-5 original).

   Usage: dune exec examples/sparse_cholesky.exe [-- N NZ [WORKERS]] *)

module Ch = Wool_workloads.Cholesky

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 250 in
  let nz = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1000 in
  let workers =
    if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3)
    else Domain.recommended_domain_count ()
  in
  let rng = Wool_util.Rng.make 7 in
  let a, size = Ch.random_spd rng ~n ~nz in
  Printf.printf "random SPD %dx%d (padded to %d), %d stored nonzeros\n" n n size
    (Ch.nonzeros a);
  let (l_serial, serial_ns) = Wool_util.Clock.time (fun () -> Ch.serial_factor a size) in
  Wool.with_pool ~config:(Wool.Config.make ~workers ()) (fun pool ->
      let (l, par_ns) =
        Wool_util.Clock.time (fun () ->
            Wool.run pool (fun ctx -> Ch.wool_factor ctx a size))
      in
      Printf.printf "factor: serial %.2f ms, parallel %.2f ms on %d worker(s)\n"
        (serial_ns /. 1e6) (par_ns /. 1e6) workers;
      Printf.printf "L has %d nonzeros (fill-in %+d)\n" (Ch.nonzeros l)
        (Ch.nonzeros l - Ch.nonzeros a);
      if size <= 512 then begin
        let ok = Ch.check_factor ~a ~l size in
        Printf.printf "L * L^T = A: %s\n" (if ok then "verified" else "FAILED");
        if not ok then exit 1;
        ignore l_serial
      end;
      let s = Wool.Stats.aggregate pool in
      Printf.printf "spawns=%d steals=%d leapfrog=%d\n" s.Wool.Pool.spawns
        s.Wool.Pool.steals s.Wool.Pool.leap_steals)
