(* Quickstart: the paper's Figure 2 Fibonacci program on the Wool runtime.

   Usage: dune exec examples/quickstart.exe [-- N [WORKERS]]

   Spawns a task for every couple of additions' worth of work — the extreme
   of fine granularity — and still runs close to the plain recursive
   function thanks to private task descriptors. *)

let rec fib ctx n =
  if n < 2 then n
  else begin
    (* SPAWN: make fib (n-2) available for stealing *)
    let b = Wool.spawn ctx (fun ctx -> fib ctx (n - 2)) in
    (* CALL: ordinary recursive call *)
    let a = fib ctx (n - 1) in
    (* JOIN: inline the task if nobody stole it, else leapfrog *)
    a + Wool.join ctx b
  end

let rec fib_serial n = if n < 2 then n else fib_serial (n - 1) + fib_serial (n - 2)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 30 in
  let workers =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else Domain.recommended_domain_count ()
  in
  let pool = Wool.create ~config:(Wool.Config.make ~workers ()) () in
  let (result, parallel_ns) =
    Wool_util.Clock.time (fun () -> Wool.run pool (fun ctx -> fib ctx n))
  in
  let (expected, serial_ns) = Wool_util.Clock.time (fun () -> fib_serial n) in
  assert (result = expected);
  let s = Wool.Stats.aggregate pool in
  Printf.printf "fib %d = %d on %d worker(s)\n" n result workers;
  Printf.printf "  parallel: %.3f ms   serial: %.3f ms\n"
    (parallel_ns /. 1e6) (serial_ns /. 1e6);
  Printf.printf
    "  spawns=%d inlined(private)=%d inlined(public)=%d steals=%d \
     leapfrog=%d backoffs=%d\n"
    s.Wool.Pool.spawns s.Wool.Pool.inlined_private s.Wool.Pool.inlined_public
    s.Wool.Pool.steals s.Wool.Pool.leap_steals s.Wool.Pool.backoffs;
  if s.Wool.Pool.spawns > 0 then
    Printf.printf "  overhead per task vs a plain call: %.1f ns\n"
      ((parallel_ns -. serial_ns) /. float_of_int s.Wool.Pool.spawns);
  Wool.shutdown pool
