(* Steal-child vs steal-parent on a flat spawn loop (sec. I of the paper):

     for (; p != NULL; p = p->next) spawn foo(p);
     sync;

   The steal-child runtime (Wool) holds one task descriptor per pending
   iteration; the steal-parent runtime (Cactus, Cilk-style continuation
   stealing on effect handlers) runs each child immediately and keeps only
   the current continuation stealable — constant space.

   Usage: dune exec examples/steal_parent.exe [-- N [WORKERS]] *)

module C = Wool_cactus.Cactus

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10_000 in
  let workers =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else Domain.recommended_domain_count ()
  in
  let work cell = cell := !cell + 1 in

  (* steal-parent: children run immediately, pool stays tiny *)
  C.with_pool ~workers (fun pool ->
      let cells = Array.init n (fun _ -> ref 0) in
      C.run pool (fun ctx ->
          Array.iter (fun cell -> C.spawn ctx (fun _ -> work cell)) cells;
          C.sync ctx);
      assert (Array.for_all (fun c -> !c = 1) cells);
      let s = C.stats pool in
      Printf.printf
        "steal-parent: %d iterations, max continuation-pool depth %d \
         (steals %d, suspensions %d)\n"
        n s.C.max_pool_depth s.C.steals s.C.suspensions);

  (* steal-child: every pending iteration occupies a descriptor *)
  Wool.with_pool ~config:(Wool.Config.make ~workers ()) (fun pool ->
      let cells = Array.init n (fun _ -> ref 0) in
      Wool.run pool (fun ctx ->
          let futs =
            Array.map (fun cell -> Wool.spawn ctx (fun _ -> work cell)) cells
          in
          for i = n - 1 downto 0 do
            Wool.join ctx futs.(i)
          done);
      assert (Array.for_all (fun c -> !c = 1) cells);
      Printf.printf
        "steal-child:  %d iterations, task pool held %d descriptors at once\n"
        n n)
