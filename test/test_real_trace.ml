(* End-to-end tracing of the real multi-domain runtime: ring invariants
   on a 4-worker fib run, overflow accounting, and the
   tracing-disabled-by-default contract. *)

module Ev = Wool_trace.Event
module F = Wool_workloads.Fib

let traced_pool ?(workers = 4) ?trace_capacity () =
  Wool.create
    ~config:(Wool.Config.make ~workers ~trace:true ?trace_capacity ())
    ()

let count_tag events tag =
  Array.fold_left (fun acc e -> if e.Ev.tag = tag then acc + 1 else acc) 0 events

let test_traced_fib_invariants () =
  let n = 20 in
  let pool = traced_pool () in
  let result = Wool.run pool (fun ctx -> F.wool ctx n) in
  Wool.shutdown pool;
  Alcotest.(check int) "fib correct" (F.serial n) result;
  Alcotest.(check bool) "trace enabled" true (Wool.trace_enabled pool);
  let per = Wool.trace_per_worker pool in
  Alcotest.(check int) "one ring per worker" 4 (Array.length per);
  (* per-worker timestamps are monotone non-decreasing *)
  Array.iteri
    (fun w evs ->
      for i = 1 to Array.length evs - 1 do
        if evs.(i - 1).Ev.ts > evs.(i).Ev.ts then
          Alcotest.failf "worker %d: ts regressed at event %d" w i
      done;
      Array.iter
        (fun e ->
          Alcotest.(check int) "worker id stamped" w e.Ev.worker;
          Alcotest.(check bool) "tag in range" true
            (Ev.tag_to_int e.Ev.tag < Ev.n_tags))
        evs)
    per;
  (* every successful steal from victim v is matched by a Join_stolen in
     v's own ring: the victim is the spawner of the migrated task and
     joins it exactly once (Private mode, leapfrog steals included) *)
  Array.iteri
    (fun v _ ->
      let stolen_from_v =
        Array.fold_left
          (fun acc evs ->
            acc
            + Array.fold_left
                (fun acc e ->
                  if e.Ev.tag = Ev.Steal_ok && e.Ev.b = v then acc + 1
                  else acc)
                0 evs)
          0 per
      in
      let joins_in_v = count_tag per.(v) Ev.Join_stolen in
      Alcotest.(check int)
        (Printf.sprintf "victim %d: Steal_ok matched by Join_stolen" v)
        stolen_from_v joins_in_v)
    per;
  (* merged stream is globally time-sorted and complete (it now also
     carries the producer-side ingress ring) *)
  let events = Wool.trace_events pool in
  let total =
    Array.fold_left (fun a evs -> a + Array.length evs) 0 per
    + Array.length (Wool.trace_ingress pool)
  in
  Alcotest.(check int) "merged = sum of rings" total (Array.length events);
  for i = 1 to Array.length events - 1 do
    if events.(i - 1).Ev.ts > events.(i).Ev.ts then
      Alcotest.failf "merged stream unsorted at %d" i
  done;
  (* events agree with the stats counters (nothing dropped: rings are
     65536 deep and fib 20 spawns ~10k tasks per worker at most) *)
  Alcotest.(check int) "nothing dropped" 0 (Wool.trace_dropped pool);
  let agg = Wool.Stats.aggregate pool in
  Alcotest.(check int) "spawn events = spawn counter" agg.Wool.Pool.spawns
    (count_tag events Ev.Spawn);
  Alcotest.(check int) "steal events = steal counter" agg.Wool.Pool.steals
    (count_tag events Ev.Steal_ok);
  Alcotest.(check int) "join events = joins_stolen counter"
    agg.Wool.Pool.joins_stolen
    (count_tag events Ev.Join_stolen)

let test_overflow_drops_oldest () =
  let cap = 64 in
  let pool = traced_pool ~workers:1 ~trace_capacity:cap () in
  let result = Wool.run pool (fun ctx -> F.wool ctx 15) in
  Wool.shutdown pool;
  Alcotest.(check int) "fib correct" (F.serial 15) result;
  let dropped = Wool.trace_dropped pool in
  Alcotest.(check bool) "ring overflowed" true (dropped > 0);
  let evs = (Wool.trace_per_worker pool).(0) in
  Alcotest.(check int) "ring keeps capacity" cap (Array.length evs);
  (* oldest events went first: the survivors are the newest [cap] writes,
     so together with the drop count they account for every record *)
  let agg = Wool.Stats.aggregate pool in
  let recorded =
    (* a single worker never steals or naps, so its ring only ever sees
       spawns, inlined joins, trip-wire publish/privatize traffic and
       the dequeue of the injected root job *)
    agg.Wool.Pool.spawns + agg.Wool.Pool.inlined_private
    + agg.Wool.Pool.inlined_public + agg.Wool.Pool.joins_stolen
    + agg.Wool.Pool.publish_events + agg.Wool.Pool.privatize_events
    + agg.Wool.Pool.injected
  in
  Alcotest.(check int) "dropped + kept = recorded" recorded (dropped + cap);
  for i = 1 to cap - 1 do
    if evs.(i - 1).Ev.ts > evs.(i).Ev.ts then
      Alcotest.failf "overflowed ring unsorted at %d" i
  done

let test_disabled_tracing_is_silent () =
  let pool = Wool.create ~config:(Wool.Config.make ~workers:2 ()) () in
  let result = Wool.run pool (fun ctx -> F.wool ctx 18) in
  Wool.shutdown pool;
  Alcotest.(check int) "fib correct" (F.serial 18) result;
  Alcotest.(check bool) "disabled by default" false (Wool.trace_enabled pool);
  Alcotest.(check int) "no events" 0 (Array.length (Wool.trace_events pool));
  Alcotest.(check int) "no drops" 0 (Wool.trace_dropped pool);
  (* stats keep working exactly as before tracing existed *)
  let agg = Wool.Stats.aggregate pool in
  Alcotest.(check bool) "spawns counted" true (agg.Wool.Pool.spawns > 0);
  Alcotest.(check int) "all spawns accounted" agg.Wool.Pool.spawns
    (agg.Wool.Pool.inlined_private + agg.Wool.Pool.inlined_public
   + agg.Wool.Pool.joins_stolen)

let test_with_pool_forwards_trace () =
  let saw =
    Test_util.with_pool ~workers:2 ~trace:true (fun pool ->
        ignore (Wool.run pool (fun ctx -> F.wool ctx 12));
        (Wool.trace_enabled pool, Array.length (Wool.trace_events pool)))
  in
  Alcotest.(check bool) "trace forwarded" true (fst saw);
  Alcotest.(check bool) "events flowing" true (snd saw > 0);
  let via_config =
    Wool.with_pool
      ~config:(Wool.Config.make ~workers:2 ~trace:true ())
      (fun pool -> Wool.trace_enabled pool)
  in
  Alcotest.(check bool) "config forwarded" true via_config

let test_trace_clear () =
  let pool = traced_pool ~workers:1 () in
  ignore (Wool.run pool (fun ctx -> F.wool ctx 10));
  Wool.shutdown pool;
  Alcotest.(check bool) "events present" true
    (Array.length (Wool.trace_events pool) > 0);
  Wool.trace_clear pool;
  Alcotest.(check int) "cleared" 0 (Array.length (Wool.trace_events pool));
  Alcotest.(check int) "drop count cleared" 0 (Wool.trace_dropped pool)

let suite =
  [
    ( "real-trace",
      [
        Alcotest.test_case "4-worker fib invariants" `Quick
          test_traced_fib_invariants;
        Alcotest.test_case "overflow drops oldest" `Quick
          test_overflow_drops_oldest;
        Alcotest.test_case "disabled tracing is silent" `Quick
          test_disabled_tracing_is_silent;
        Alcotest.test_case "with_pool forwards trace" `Quick
          test_with_pool_forwards_trace;
        Alcotest.test_case "trace_clear" `Quick test_trace_clear;
      ] );
  ]
