module R = Wool_report
module W = Wool_workloads.Workload
module P = Wool_sim.Policy

let test_registry_keys_unique () =
  let keys = R.Registry.keys () in
  let sorted = List.sort_uniq compare keys in
  Alcotest.(check int) "unique" (List.length keys) (List.length sorted);
  Alcotest.(check int) "all experiments present" 12 (List.length keys)

let test_registry_find () =
  (match R.Registry.find "fig1" with
  | Some e -> Alcotest.(check string) "key" "fig1" e.R.Registry.key
  | None -> Alcotest.fail "fig1 missing");
  Alcotest.(check bool) "unknown" true (R.Registry.find "nope" = None)

let test_fmt_k () =
  Alcotest.(check string) "small" "500" (R.Exp_common.fmt_k 500.0);
  Alcotest.(check string) "kilo" "1.5k" (R.Exp_common.fmt_k 1500.0);
  Alcotest.(check string) "large" "200k" (R.Exp_common.fmt_k 200_000.0);
  Alcotest.(check string) "infinite" "-" (R.Exp_common.fmt_k infinity)

let test_fig1_shapes () =
  let rows = R.Fig1.fib_series ~n:18 () in
  Alcotest.(check int) "four systems" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.R.Fig1.system ^ " eight points")
        8
        (List.length r.R.Fig1.points))
    rows;
  (* headline claim: Wool's absolute fib speedup beats everyone else's *)
  let at_8 name =
    let r = List.find (fun r -> r.R.Fig1.system = name) rows in
    List.assoc 8.0 r.R.Fig1.points
  in
  List.iter
    (fun other ->
      Alcotest.(check bool)
        (Printf.sprintf "Wool > %s on fib" other)
        true
        (at_8 "Wool" > at_8 other))
    [ "Cilk++"; "TBB"; "OpenMP" ]

let test_table1_rows () =
  let grid = [ W.mm ~reps:2 16; W.stress ~reps:2 ~height:4 ~leaf_iters:64 () ] in
  let rows = R.Table1.compute ~grid () in
  Alcotest.(check int) "rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "overhead model reduces parallelism" true
        (r.R.Table1.parallelism2000 <= r.R.Table1.parallelism0 +. 1e-9);
      Alcotest.(check int) "G_L columns" 7 (List.length r.R.Table1.g_l);
      Alcotest.(check bool) "G_T positive" true (r.R.Table1.g_t > 0.0))
    rows

let test_table2_runs () =
  let rows = R.Table2.compute ~n:16 ~repeats:1 () in
  (* the paper's six-rung ladder plus the two relaxed rungs *)
  Alcotest.(check int) "eight versions" 8 (List.length rows);
  let serial = List.nth rows 7 in
  Alcotest.(check string) "serial last" "serial" serial.R.Table2.version;
  Alcotest.(check (float 0.0)) "serial zero overhead" 0.0
    serial.R.Table2.ns_per_task;
  List.iter
    (fun r -> Alcotest.(check bool) "time positive" true (r.R.Table2.seconds > 0.0))
    rows

let test_table3_structure () =
  let rows = R.Table3.compute ~leaf_cycles:50_000 () in
  Alcotest.(check int) "four systems" 4 (List.length rows);
  List.iter
    (fun r ->
      let costs = List.map snd r.R.Table3.steal_cost in
      (match costs with
      | [ c2; c4; c8 ] ->
          Alcotest.(check bool)
            (r.R.Table3.system ^ " grows with processors")
            true
            (c2 < c4 && c4 < c8)
      | _ -> Alcotest.fail "expected three processor counts");
      Alcotest.(check bool) "inlined range" true
        (r.R.Table3.inlined_lo <= r.R.Table3.inlined_hi))
    rows;
  let cost_of name =
    let r = List.find (fun r -> r.R.Table3.system = name) rows in
    List.assoc 2 r.R.Table3.steal_cost
  in
  Alcotest.(check bool) "Wool steals cheapest" true
    (cost_of "Wool" < cost_of "TBB" && cost_of "Wool" < cost_of "Cilk++"
   && cost_of "Wool" < cost_of "OpenMP");
  Alcotest.(check bool) "Cilk++ steals dearest" true
    (cost_of "Cilk++" > cost_of "TBB" && cost_of "Cilk++" > cost_of "OpenMP")

let test_table4_structure () =
  let rows = R.Table4.compute ~n:32 ~reps:4 () in
  Alcotest.(check int) "three systems" 3 (List.length rows);
  List.iter
    (fun r ->
      List.iter
        (fun (p, cell) ->
          Alcotest.(check bool) "modeled within (0,p]" true
            (cell.R.Table4.modeled > 0.0
            && cell.R.Table4.modeled <= float_of_int p +. 0.5);
          Alcotest.(check bool) "measured within (0,p]" true
            (cell.R.Table4.measured > 0.0
            && cell.R.Table4.measured <= float_of_int p +. 0.5))
        r.R.Table4.by_procs)
    rows

let test_fig4_structure () =
  let panels = R.Fig4.compute ~heights:[ (6, 4) ] () in
  match panels with
  | [ p ] ->
      Alcotest.(check int) "height" 6 p.R.Fig4.height;
      Alcotest.(check int) "four policies" 4 (List.length p.R.Fig4.series);
      List.iter
        (fun (_, pts) -> Alcotest.(check int) "points" 8 (List.length pts))
        p.R.Fig4.series
  | _ -> Alcotest.fail "expected one panel"

let test_fig5_structure () =
  let panels = R.Fig5.compute ~grid:[ W.mm ~reps:2 16 ] () in
  match panels with
  | [ p ] ->
      Alcotest.(check string) "absolute for mm" "absolute" p.R.Fig5.normalization;
      Alcotest.(check int) "four systems" 4 (List.length p.R.Fig5.series)
  | _ -> Alcotest.fail "expected one panel"

let test_fig5_stress_normalization () =
  let panels =
    R.Fig5.compute ~grid:[ W.stress ~reps:2 ~height:4 ~leaf_iters:64 () ] ()
  in
  match panels with
  | [ p ] ->
      Alcotest.(check string) "relative" "vs 1-proc Wool" p.R.Fig5.normalization;
      (* by definition, Wool at p=1 is exactly 1.0 *)
      let wool = List.assoc "Wool" p.R.Fig5.series in
      Alcotest.(check (float 1e-9)) "wool p1 = 1" 1.0 (List.assoc 1.0 wool)
  | _ -> Alcotest.fail "expected one panel"

let test_fig6_structure () =
  let grid = [ W.stress ~reps:2 ~height:5 ~leaf_iters:256 () ] in
  let panels = R.Fig6.compute ~grid ~procs:[ 1; 2 ] () in
  match panels with
  | [ p ] ->
      Alcotest.(check int) "rows" 2 (List.length p.R.Fig6.rows);
      let p1 = List.hd p.R.Fig6.rows in
      Alcotest.(check (float 1e-6)) "1-proc NA normalized to 1" 1.0
        (List.assoc "NA" p1.R.Fig6.by_category);
      Alcotest.(check (float 1e-6)) "1-proc has no stealing" 0.0
        (List.assoc "ST" p1.R.Fig6.by_category)
  | _ -> Alcotest.fail "expected one panel"

let test_space_claim () =
  let rows = R.Space.compute ~sizes:[ 32; 128 ] () in
  Alcotest.(check int) "two sizes" 2 (List.length rows);
  List.iter
    (fun r ->
      let depth name = List.assoc name r.R.Space.depth_by_system in
      (* steal-child pools grow with the loop; steal-parent stays O(1) *)
      Alcotest.(check bool) "wool grows" true
        (depth "Wool(all-public)" > r.R.Space.n / 2);
      Alcotest.(check bool) "tbb grows" true (depth "TBB" > r.R.Space.n / 2);
      Alcotest.(check bool) "cilk constant" true (depth "Cilk++" <= 4))
    rows

let test_ablation_studies () =
  let wl = W.stress ~reps:4 ~height:6 ~leaf_iters:256 () in
  let bj = R.Ablation.blocked_join ~workload:wl () in
  Alcotest.(check int) "three join strategies" 3 (List.length bj.R.Ablation.series);
  let pw = R.Ablation.public_window ~workload:wl () in
  Alcotest.(check int) "six window variants" 6 (List.length pw.R.Ablation.series);
  let vs = R.Ablation.victim_selection ~workload:wl () in
  Alcotest.(check int) "four victim strategies" 4 (List.length vs.R.Ablation.series);
  let ib = R.Ablation.idle_backoff ~workload:wl () in
  Alcotest.(check int) "three backoff flavours"
    (List.length Wool_policy.Backoff.all)
    (List.length ib.R.Ablation.series);
  let sb = R.Ablation.steal_batch ~workload:wl () in
  Alcotest.(check int) "three batch sizes" 3 (List.length sb.R.Ablation.series);
  let nu = R.Ablation.numa ~workload:wl () in
  Alcotest.(check int) "three numa variants" 3 (List.length nu.R.Ablation.series);
  List.iter
    (fun st ->
      List.iter
        (fun sr ->
          List.iter
            (fun (p, v) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s p%d positive" st.R.Ablation.title
                   sr.R.Ablation.label p)
                true (v > 0.0))
            sr.R.Ablation.speedup_by_p)
        st.R.Ablation.series)
    [ bj; pw; vs; ib; sb; nu ]

let test_gantt () =
  let wl = W.stress ~reps:2 ~height:5 ~leaf_iters:256 () in
  let trace, r = R.Gantt.compute ~workload:wl ~workers:4 () in
  Alcotest.(check int) "workers" 4 (Wool_sim.Trace.workers trace);
  Alcotest.(check bool) "time positive" true (r.Wool_sim.Engine.time > 0);
  Alcotest.(check bool) "worker 0 busy" true
    (Wool_sim.Trace.utilization trace ~worker:0 > 0.3)

let test_realcheck_all_ok () =
  let cells = R.Realcheck.compute ~workers:2 () in
  (* 7 kernels x 6 schedulers *)
  Alcotest.(check int) "matrix size" 42 (List.length cells);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.R.Realcheck.kernel ^ "/" ^ c.R.Realcheck.scheduler)
        true c.R.Realcheck.ok)
    cells

(* -- wool-serve/2 schema: round-trip, v1 compatibility, rejection -- *)

module S = R.Serve_load

let serve_row =
  {
    S.mode = "private";
    arrival = "overload";
    admission = "adaptive";
    offered = 100;
    admitted = 60;
    rejected = 40;
    shed = 0;
    executed = 50;
    expired = 7;
    cancelled = 3;
    p50_ms = 1.5;
    p99_ms = 4.25;
    p999_ms = 6.5;
    throughput = 50.0;
    goodput = 48.0;
    target_ms = 8.0;
    elapsed_s = 1.0;
    violations = [];
  }

let test_serve_json_roundtrip () =
  let body =
    S.to_json ~date:"2026-08-08" ~producers:2 ~workers:2 ~rate_hz:200.
      ~duration_s:1.0 [ serve_row ]
  in
  match S.of_json body with
  | Error msg -> Alcotest.failf "of_json failed: %s" msg
  | Ok rep -> (
      Alcotest.(check string) "schema" "wool-serve/2" rep.S.schema;
      Alcotest.(check string) "date" "2026-08-08" rep.S.date;
      Alcotest.(check int) "rows" 1 (List.length rep.S.rows);
      match rep.S.rows with
      | [ r ] ->
          Alcotest.(check string) "admission" "adaptive" r.S.admission;
          Alcotest.(check int) "expired" 7 r.S.expired;
          Alcotest.(check int) "cancelled" 3 r.S.cancelled;
          Alcotest.(check (float 1e-9)) "goodput" 48.0 r.S.goodput;
          Alcotest.(check (float 1e-9)) "target" 8.0 r.S.target_ms;
          Alcotest.(check (float 1e-9)) "p99" 4.25 r.S.p99_ms
      | _ -> Alcotest.fail "expected one row")

let test_serve_json_v1_readable () =
  (* a literal v1 document (the committed snapshots' shape): the new
     reader must accept it and fill the ledger columns with defaults *)
  let v1 =
    {|{"schema":"wool-serve/1","date":"2026-08-08","producers":2,"workers":2,"rate_hz":200,"duration_s":1,"rows":[{"mode":"locked","arrival":"sustained","offered":199,"admitted":199,"rejected":0,"shed":0,"executed":199,"p50_ms":0.5,"p99_ms":1.5,"p999_ms":2,"throughput":180,"elapsed_s":1.1,"violations":0}]}|}
  in
  match S.of_json v1 with
  | Error msg -> Alcotest.failf "v1 must stay readable: %s" msg
  | Ok rep -> (
      Alcotest.(check string) "schema kept" "wool-serve/1" rep.S.schema;
      match rep.S.rows with
      | [ r ] ->
          Alcotest.(check string) "admission default" "reject" r.S.admission;
          Alcotest.(check int) "expired default" 0 r.S.expired;
          Alcotest.(check int) "cancelled default" 0 r.S.cancelled;
          Alcotest.(check (float 1e-9)) "goodput defaults to throughput"
            180.0 r.S.goodput;
          Alcotest.(check (float 1e-9)) "no target" 0.0 r.S.target_ms
      | _ -> Alcotest.fail "expected one row")

let test_serve_json_rejects_foreign () =
  (match S.of_json {|{"schema":"wool-serve/99","rows":[]}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown schema version must be rejected");
  (match S.of_json {|{"schema":"wool-bench/1","rows":[]}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign document must be rejected");
  (match S.of_json "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must be rejected");
  match
    S.of_json
      {|{"schema":"wool-serve/2","date":"d","producers":1,"workers":1,"rate_hz":1,"duration_s":1,"rows":[{"mode":"locked"}]}|}
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "row with missing fields must be rejected"

module Pg = R.Policy_grid

(* A miniature locality grid must survive the JSON roundtrip exactly,
   compare clean against itself, and report every perturbed cell. *)
let test_policy_grid_json_roundtrip () =
  let g = Pg.compute ~sockets:2 ~workers:[ 4 ] ~height:6 ~leaf_iters:50 () in
  Alcotest.(check int) "3 selectors x 1 scale" 3 (List.length g.Pg.cells);
  (match Pg.of_json (Pg.to_json g) with
  | Error msg -> Alcotest.failf "roundtrip rejected: %s" msg
  | Ok g' ->
      Alcotest.(check (list string)) "roundtrip compares clean" []
        (Pg.compare_grids ~baseline:g ~fresh:g'));
  let perturbed =
    {
      g with
      Pg.cells =
        List.map
          (fun c -> { c with Pg.remote = c.Pg.remote + 1 })
          g.Pg.cells;
    }
  in
  Alcotest.(check int) "every perturbed cell reported" 3
    (List.length (Pg.compare_grids ~baseline:g ~fresh:perturbed));
  match Pg.of_json "{\"schema\":\"bogus/9\"}" with
  | Ok _ -> Alcotest.fail "foreign schema must be rejected"
  | Error _ -> ()

let suite =
  [
    ( "report",
      [
        Alcotest.test_case "registry unique" `Quick test_registry_keys_unique;
        Alcotest.test_case "registry find" `Quick test_registry_find;
        Alcotest.test_case "fmt_k" `Quick test_fmt_k;
        Alcotest.test_case "fig1 shapes" `Slow test_fig1_shapes;
        Alcotest.test_case "table1 rows" `Quick test_table1_rows;
        Alcotest.test_case "table2 runs" `Slow test_table2_runs;
        Alcotest.test_case "table3 structure" `Quick test_table3_structure;
        Alcotest.test_case "table4 structure" `Quick test_table4_structure;
        Alcotest.test_case "fig4 structure" `Quick test_fig4_structure;
        Alcotest.test_case "fig5 structure" `Quick test_fig5_structure;
        Alcotest.test_case "fig5 stress normalization" `Quick
          test_fig5_stress_normalization;
        Alcotest.test_case "fig6 structure" `Quick test_fig6_structure;
        Alcotest.test_case "space claim" `Quick test_space_claim;
        Alcotest.test_case "ablation studies" `Quick test_ablation_studies;
        Alcotest.test_case "gantt" `Quick test_gantt;
        Alcotest.test_case "realcheck matrix" `Slow test_realcheck_all_ok;
        Alcotest.test_case "serve json roundtrip" `Quick
          test_serve_json_roundtrip;
        Alcotest.test_case "serve json v1 readable" `Quick
          test_serve_json_v1_readable;
        Alcotest.test_case "serve json rejects foreign" `Quick
          test_serve_json_rejects_foreign;
        Alcotest.test_case "policy grid json roundtrip" `Quick
          test_policy_grid_json_roundtrip;
      ] );
  ]
