(* Wool_ropes: structural operations, every parallel op against an
   Array/List oracle across all modes x publicity and both split
   schedules, the steal-pressure hook itself, and the parallel_* helper
   regressions (grain validation, element-0 accounting, relaxed
   duplicated-body behavior) that ride along with the rope layer. *)

module R = Wool_ropes

let check_arr msg expected t =
  Alcotest.(check (array int)) msg expected (R.to_array t)

(* ---- structural operations (no pool) ---- *)

let test_of_array_round_trip () =
  List.iter
    (fun leaf ->
      List.iter
        (fun n ->
          let a = Array.init n (fun i -> i * 3) in
          let t = R.of_array ~leaf a in
          Alcotest.(check int)
            (Printf.sprintf "length n=%d leaf=%d" n leaf)
            n (R.length t);
          check_arr (Printf.sprintf "round trip n=%d leaf=%d" n leaf) a t)
        [ 0; 1; 2; 5; 511; 512; 513; 2000 ])
    [ 1; 3; 512 ];
  Alcotest.check_raises "leaf 0 rejected"
    (Invalid_argument "Wool_ropes.of_array: leaf must be positive") (fun () ->
      ignore (R.of_array ~leaf:0 [| 1 |] : int R.t))

let test_of_array_copies () =
  let a = [| 1; 2; 3 |] in
  let t = R.of_array a in
  a.(1) <- 99;
  check_arr "rope unaffected by source mutation" [| 1; 2; 3 |] t

let test_get () =
  let n = 1000 in
  let a = Array.init n (fun i -> i * 7) in
  let t = R.of_array ~leaf:16 a in
  for i = 0 to n - 1 do
    if R.get t i <> a.(i) then Alcotest.failf "get %d mismatched" i
  done;
  let oob = Invalid_argument "Wool_ropes.get: index out of bounds" in
  Alcotest.check_raises "get -1" oob (fun () -> ignore (R.get t (-1) : int));
  Alcotest.check_raises "get n" oob (fun () -> ignore (R.get t n : int));
  Alcotest.check_raises "get on empty" oob (fun () ->
      ignore (R.get R.empty 0 : int))

let test_list_round_trip () =
  List.iter
    (fun l ->
      Alcotest.(check (list int)) "of_list/to_list" l (R.to_list (R.of_list l)))
    [ []; [ 1 ]; [ 5; 4; 3; 2; 1 ]; List.init 700 Fun.id ]

let test_append_correct () =
  let a = Array.init 700 Fun.id and b = Array.init 300 (fun i -> -i) in
  check_arr "append" (Array.append a b)
    (R.append (R.of_array ~leaf:32 a) (R.of_array ~leaf:32 b));
  let t = R.of_array a in
  check_arr "append empty left" a (R.append R.empty t);
  check_arr "append empty right" a (R.append t R.empty)

let test_append_small_merges () =
  (* two tiny ropes merge into a single leaf, not a Cat chain *)
  let t = R.append (R.of_list [ 1; 2 ]) (R.of_list [ 3 ]) in
  Alcotest.(check int) "merged depth" 0 (R.depth t);
  check_arr "merged content" [| 1; 2; 3 |] t

let ilog2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let test_append_skew_stays_balanced () =
  (* the worst case for a naive Cat: repeatedly appending one element.
     Depth must stay O(log n), the contract [get] relies on. *)
  let t = ref R.empty in
  for i = 0 to 4999 do
    t := R.append !t (R.of_list [ i ])
  done;
  check_arr "content survives rebalancing" (Array.init 5000 Fun.id) !t;
  let bound = ilog2 (R.length !t) + 2 in
  if R.depth !t > bound then
    Alcotest.failf "append chain depth %d > log bound %d" (R.depth !t) bound;
  (* and the same, prepending *)
  let t = ref R.empty in
  for i = 4999 downto 0 do
    t := R.append (R.of_list [ i ]) !t
  done;
  check_arr "prepend content" (Array.init 5000 Fun.id) !t;
  if R.depth !t > bound then
    Alcotest.failf "prepend chain depth %d > log bound %d" (R.depth !t) bound

(* ---- parallel operations vs oracles, across modes x publicity ---- *)

let splits = [ ("lazy", R.Lazy_split 5); ("eager", R.Eager 16) ]

(* Publicity only matters on the direct-stack modes, but sweeping it
   everywhere is harmless (non-direct pools ignore it). *)
let publicities = [ ("private", Wool.All_private); ("public", Wool.All_public) ]

let oracle_data = Array.init 1500 (fun i -> i * 37 mod 101)

let test_ops_match_oracles () =
  List.iter
    (fun (mn, mode) ->
      List.iter
        (fun (pn, publicity) ->
          Test_util.with_pool ~workers:3 ~mode ~publicity (fun pool ->
              List.iter
                (fun (sn, split) ->
                  let nm op = Printf.sprintf "%s %s/%s/%s" op mn pn sn in
                  let data = oracle_data in
                  let n = Array.length data in
                  let t = R.of_array ~leaf:64 data in
                  Wool.run pool (fun ctx ->
                      check_arr (nm "map")
                        (Array.map (fun x -> (x * 2) + 1) data)
                        (R.map ctx ~split (fun x -> (x * 2) + 1) t);
                      Alcotest.(check int) (nm "reduce")
                        (Array.fold_left ( + ) 0 data)
                        (R.reduce ctx ~split ~neutral:0 ~combine:( + ) Fun.id t);
                      Alcotest.(check int) (nm "reduce max")
                        (Array.fold_left max min_int data)
                        (R.reduce ctx ~split ~neutral:min_int ~combine:max
                           Fun.id t);
                      check_arr (nm "build")
                        (Array.init n (fun i -> i * i))
                        (R.build ctx ~split n (fun i -> i * i));
                      let out = Array.make n (-1) in
                      R.for_each ctx ~split (fun i x -> out.(i) <- x + i) t;
                      Alcotest.(check (array int)) (nm "for_each")
                        (Array.mapi (fun i x -> x + i) data)
                        out;
                      let prefix = Array.make n 0 in
                      let acc = ref 0 in
                      Array.iteri
                        (fun i x ->
                          acc := !acc + x;
                          prefix.(i) <- !acc)
                        data;
                      check_arr (nm "scan") prefix
                        (R.scan ctx ~split ~neutral:0 ~combine:( + ) t);
                      let keep x = x land 1 = 0 in
                      check_arr (nm "filter")
                        (Array.of_list
                           (List.filter keep (Array.to_list data)))
                        (R.filter ctx ~split keep t)))
                splits))
        publicities)
    Test_util.all_modes

let test_scan_non_commutative () =
  (* string concatenation is associative but not commutative: any block
     mis-seeding or left/right swap in the scan shows up immediately *)
  Test_util.with_pool ~workers:3 (fun pool ->
      let n = 300 in
      let data = Array.init n (fun i -> Printf.sprintf "%d." i) in
      let expected = Array.make n "" in
      let acc = ref "" in
      Array.iteri
        (fun i x ->
          acc := !acc ^ x;
          expected.(i) <- !acc)
        data;
      List.iter
        (fun (sn, split) ->
          let got =
            Wool.run pool (fun ctx ->
                R.to_array
                  (R.scan ctx ~split ~neutral:"" ~combine:( ^ )
                     (R.of_array ~leaf:16 data)))
          in
          Alcotest.(check (array string)) ("scan concat " ^ sn) expected got)
        splits)

let test_ops_empty_and_singleton () =
  Test_util.with_pool ~workers:2 (fun pool ->
      Wool.run pool (fun ctx ->
          check_arr "map empty" [||] (R.map ctx (fun x -> x + 1) R.empty);
          check_arr "build 0" [||] (R.build ctx 0 (fun _ -> 9));
          Alcotest.(check int) "reduce empty" 0
            (R.reduce ctx ~neutral:0 ~combine:( + ) Fun.id R.empty);
          check_arr "scan empty" [||]
            (R.scan ctx ~neutral:0 ~combine:( + ) R.empty);
          check_arr "filter empty" [||] (R.filter ctx (fun _ -> true) R.empty);
          R.for_each ctx (fun _ _ -> Alcotest.fail "for_each on empty ran")
            (R.empty : int R.t);
          let one = R.of_list [ 41 ] in
          check_arr "map singleton" [| 42 |] (R.map ctx (fun x -> x + 1) one);
          Alcotest.(check int) "reduce singleton" 41
            (R.reduce ctx ~neutral:0 ~combine:( + ) Fun.id one);
          check_arr "scan singleton" [| 41 |]
            (R.scan ctx ~neutral:0 ~combine:( + ) one);
          check_arr "filter none" [||] (R.filter ctx (fun _ -> false) one);
          check_arr "filter all" [| 41 |] (R.filter ctx (fun _ -> true) one);
          check_arr "build 1" [| 7 |] (R.build ctx 1 (fun _ -> 7))))

let test_bad_split_rejected () =
  Test_util.with_pool ~workers:1 (fun pool ->
      Wool.run pool (fun ctx ->
          let t = R.of_list [ 1; 2; 3 ] in
          let expect_invalid name f =
            match f () with
            | _ -> Alcotest.failf "%s accepted a non-positive split" name
            | exception Invalid_argument _ -> ()
          in
          expect_invalid "map lazy 0" (fun () ->
              R.map ctx ~split:(R.Lazy_split 0) Fun.id t);
          expect_invalid "reduce eager -1" (fun () ->
              R.reduce ctx ~split:(R.Eager (-1)) ~neutral:0 ~combine:( + )
                Fun.id t);
          expect_invalid "scan lazy -3" (fun () ->
              R.scan ctx ~split:(R.Lazy_split (-3)) ~neutral:0 ~combine:( + ) t);
          expect_invalid "filter eager 0" (fun () ->
              R.filter ctx ~split:(R.Eager 0) (fun _ -> true) t);
          expect_invalid "build lazy 0" (fun () ->
              R.build ctx ~split:(R.Lazy_split 0) 3 Fun.id);
          expect_invalid "build negative" (fun () ->
              R.build ctx (-1) (fun _ -> 0))))

(* Lazy splitting on one worker must never spawn: no thieves, no
   pressure, the whole range runs as a plain loop. *)
let test_lazy_one_worker_zero_spawns () =
  List.iter
    (fun (nm, mode) ->
      Test_util.with_pool ~workers:1 ~mode (fun pool ->
          Wool.Stats.reset pool;
          let got =
            Wool.run pool (fun ctx ->
                R.reduce ctx ~split:(R.Lazy_split 8) ~neutral:0 ~combine:( + )
                  Fun.id
                  (R.of_array ~leaf:32 (Array.init 2000 Fun.id)))
          in
          Alcotest.(check int) (nm ^ " sum") (2000 * 1999 / 2) got;
          let s = Wool.Stats.aggregate pool in
          Alcotest.(check int) (nm ^ " zero spawns") 0 s.Wool.Pool.spawns))
    Test_util.all_modes

(* The steal_pressure hook itself: false on an idle single worker, and
   eventually true on a direct-mode pool whose thieves are starving (the
   failed-probe counters advance, which is exactly the hunger signal the
   lazy splitter polls). *)
let test_steal_pressure_single_worker_false () =
  List.iter
    (fun (nm, mode) ->
      Test_util.with_pool ~workers:1 ~mode (fun pool ->
          Wool.run pool (fun ctx ->
              for _ = 1 to 50 do
                if Wool.steal_pressure ctx then
                  Alcotest.failf "%s: pressure on a 1-worker pool" nm
              done)))
    Test_util.all_modes

let test_steal_pressure_hungry_thieves () =
  Test_util.with_pool ~workers:3 ~mode:Wool.Private (fun pool ->
      let saw = Wool.run pool (fun ctx ->
          (* hold the only descriptor; idle thieves probe and fail, which
             must register as pressure at the owner within the timeout *)
          Test_util.spin_until ~timeout_ns:2_000_000_000 (fun () ->
              Wool.steal_pressure ctx))
      in
      Alcotest.(check bool) "pressure observed with starving thieves" true saw)

(* ---- parallel_* helper regressions (this PR's bugfixes) ---- *)

(* grain <= 0 used to recurse forever (hi - lo never shrank below a
   non-positive grain); it must be rejected up front. *)
let test_grain_validation () =
  Test_util.with_pool ~workers:1 (fun pool ->
      Wool.run pool (fun ctx ->
          let expect_invalid name f =
            match f () with
            | _ -> Alcotest.failf "%s accepted grain <= 0" name
            | exception Invalid_argument _ -> ()
          in
          expect_invalid "parallel_for grain:0" (fun () ->
              Wool.parallel_for ctx ~grain:0 0 10 ignore);
          expect_invalid "parallel_for grain:-1" (fun () ->
              Wool.parallel_for ctx ~grain:(-1) 0 10 ignore);
          expect_invalid "parallel_reduce grain:0" (fun () ->
              Wool.parallel_reduce ctx ~grain:0 0 10 ~neutral:0 Fun.id ( + ));
          expect_invalid "parallel_reduce grain:-1" (fun () ->
              Wool.parallel_reduce ctx ~grain:(-1) 0 10 ~neutral:0 Fun.id ( + ));
          expect_invalid "parallel_map grain:0" (fun () ->
              Wool.parallel_map ctx ~grain:0 Fun.id [| 1; 2 |]);
          expect_invalid "parallel_init grain:0" (fun () ->
              Wool.parallel_init ctx ~grain:0 2 Fun.id);
          (* the empty range still short-circuits before validation could
             matter, but a bad grain is a caller bug regardless of range *)
          expect_invalid "parallel_for empty range bad grain" (fun () ->
              Wool.parallel_for ctx ~grain:0 5 5 ignore)))

(* Element 0 runs inside the task tree: with a grain covering the whole
   tail, parallel_map/init spawn exactly one task — the element-0 seed —
   and the trace/oracle accounting shows it. *)
let test_element0_accounting () =
  Test_util.with_pool ~workers:1 (fun pool ->
      let n = 64 in
      let check_spawns name expected f =
        Wool.Stats.reset pool;
        f ();
        let s = Wool.Stats.aggregate pool in
        Alcotest.(check int) (name ^ " spawns") expected s.Wool.Pool.spawns
      in
      check_spawns "map grain>=n" 1 (fun () ->
          let got =
            Wool.run pool (fun ctx ->
                Wool.parallel_map ctx ~grain:n (fun x -> x * 2)
                  (Array.init n Fun.id))
          in
          Alcotest.(check (array int)) "map result"
            (Array.init n (fun i -> i * 2))
            got);
      check_spawns "init grain>=n" 1 (fun () ->
          let got =
            Wool.run pool (fun ctx ->
                Wool.parallel_init ctx ~grain:n n (fun i -> i + 100))
          in
          Alcotest.(check (array int)) "init result"
            (Array.init n (fun i -> i + 100))
            got);
      check_spawns "map singleton" 1 (fun () ->
          let got =
            Wool.run pool (fun ctx -> Wool.parallel_map ctx Fun.id [| 9 |])
          in
          Alcotest.(check (array int)) "singleton result" [| 9 |] got);
      check_spawns "map empty" 0 (fun () ->
          let got =
            Wool.run pool (fun ctx -> Wool.parallel_map ctx Fun.id [||])
          in
          Alcotest.(check (array int)) "empty result" [||] got);
      (* element 0 is a real task: it sees the trace stream like any
         other spawn (1 spawn event, 1 matching join) *)
      ())

(* Element 0 goes through the same unwind path as the rest of the tree:
   an exception from f xs.(0) propagates out of the combinator. *)
let test_element0_unwind () =
  Test_util.with_pool ~workers:1 (fun pool ->
      match
        Wool.run pool (fun ctx ->
            Wool.parallel_map ctx
              (fun x -> if x = 0 then failwith "boom" else x)
              [| 0; 1; 2 |])
      with
      | _ -> Alcotest.fail "element-0 exception swallowed"
      | exception Failure msg ->
          Alcotest.(check string) "exception payload" "boom" msg)

(* The purity-contract pin (mirrors the submit-layer Dup-drain test):
   force the submitted body to execute twice, with a rope reduction —
   spawn_idempotent underneath — inside it. The body observably runs
   twice, the computed value is identical both times, the ticket settles
   once, and the pool invariants stay green. Swept over an exactly-once
   mode and both at-least-once modes. *)
let test_duplicated_body_on_relaxed () =
  List.iter
    (fun (nm, mode) ->
      let relaxed = Wool.Mode.is_relaxed mode in
      let plan =
        Wool.Fault.Plan.make ~name:"dup-drain" ~seed:7
          [
            {
              Wool.Fault.Plan.site = Wool.Fault.Site.Drain;
              kind = Wool.Fault.Kind.Dup;
              rate = 1.0;
              max_fires = 8;
            };
          ]
      in
      let pool =
        Test_util.create ~workers:1 ~mode ~faults:plan ~allow_relaxed:relaxed ()
      in
      let runs = Atomic.make 0 in
      let n = 500 in
      let expected = n * (n - 1) / 2 in
      let tk =
        Wool.Submit.submit ~idempotent:true pool (fun ctx ->
            Atomic.incr runs;
            R.reduce ctx ~split:(R.Lazy_split 16) ~neutral:0 ~combine:( + )
              Fun.id
              (R.build ctx n Fun.id))
      in
      Alcotest.(check int) (nm ^ " run alongside") 0
        (Wool.run pool (fun _ctx -> 0));
      Alcotest.(check int) (nm ^ " body executed twice") 2 (Atomic.get runs);
      Alcotest.(check int) (nm ^ " result settles once, correctly") expected
        (Wool.Submit.await tk);
      Alcotest.(check (list string)) (nm ^ " invariants") []
        (Wool.Invariants.check pool);
      Wool.shutdown pool)
    (("private", Wool.Private) :: Test_util.relaxed_modes)

(* Relaxed pools may duplicate rope leaf bodies; the results must not
   show it. Multi-worker at-least-once sweep: occurrence counters >= 1,
   value exact. *)
let test_relaxed_at_least_once_coverage () =
  List.iter
    (fun (nm, mode) ->
      Test_util.with_pool ~workers:4 ~mode (fun pool ->
          let n = 2000 in
          let hits = Array.init n (fun _ -> Atomic.make 0) in
          let data = Array.init n (fun i -> i * 13 mod 257) in
          let got =
            Wool.run pool (fun ctx ->
                R.reduce ctx ~split:(R.Lazy_split 4) ~neutral:0 ~combine:( + )
                  Fun.id
                  (R.build ctx ~split:(R.Lazy_split 4) n (fun i ->
                       Atomic.incr hits.(i);
                       data.(i))))
          in
          Alcotest.(check int) (nm ^ " exact sum")
            (Array.fold_left ( + ) 0 data)
            got;
          Array.iteri
            (fun i c ->
              if Atomic.get c < 1 then
                Alcotest.failf "%s: element %d never initialised" nm i)
            hits))
    Test_util.relaxed_modes

(* ---- qcheck properties (private mode; the mode sweep above covers the
   rest) ---- *)

let qcheck_pool f =
  Test_util.with_pool ~workers:2 (fun pool -> Wool.run pool f)

let arb_input =
  QCheck.pair
    QCheck.(list_of_size (Gen.int_range 0 300) small_signed_int)
    (QCheck.make
       QCheck.Gen.(
         map2
           (fun lazy_ c -> if lazy_ then R.Lazy_split c else R.Eager c)
           bool (int_range 1 40)))

let qcheck_map =
  QCheck.Test.make ~name:"rope map = Array.map" ~count:30 arb_input
    (fun (xs, split) ->
      let arr = Array.of_list xs in
      qcheck_pool (fun ctx ->
          R.to_array (R.map ctx ~split (fun x -> x - 7) (R.of_array ~leaf:8 arr)))
      = Array.map (fun x -> x - 7) arr)

let qcheck_reduce =
  QCheck.Test.make ~name:"rope reduce = fold_left" ~count:30 arb_input
    (fun (xs, split) ->
      let arr = Array.of_list xs in
      qcheck_pool (fun ctx ->
          R.reduce ctx ~split ~neutral:0 ~combine:( + ) Fun.id
            (R.of_array ~leaf:8 arr))
      = Array.fold_left ( + ) 0 arr)

let qcheck_filter =
  QCheck.Test.make ~name:"rope filter = List.filter" ~count:30 arb_input
    (fun (xs, split) ->
      let keep x = x mod 3 = 0 in
      qcheck_pool (fun ctx ->
          R.to_list (R.filter ctx ~split keep (R.of_list xs)))
      = List.filter keep xs)

let qcheck_scan =
  QCheck.Test.make ~name:"rope scan = running prefix" ~count:30 arb_input
    (fun (xs, split) ->
      let expected =
        List.rev
          (snd
             (List.fold_left
                (fun (acc, out) x -> (acc + x, (acc + x) :: out))
                (0, []) xs))
      in
      qcheck_pool (fun ctx ->
          R.to_list
            (R.scan ctx ~split ~neutral:0 ~combine:( + ) (R.of_list xs)))
      = expected)

let qcheck_append =
  QCheck.Test.make ~name:"rope append = list append (and stays balanced)"
    ~count:50
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 400) small_signed_int)
        (list_of_size (Gen.int_range 0 400) small_signed_int))
    (fun (xs, ys) ->
      let t = R.append (R.of_list xs) (R.of_list ys) in
      R.to_list t = xs @ ys
      && R.depth t <= ilog2 (max 1 (R.length t)) + 2)

let suite =
  [
    ( "ropes",
      [
        Alcotest.test_case "of_array round trip" `Quick
          test_of_array_round_trip;
        Alcotest.test_case "of_array copies" `Quick test_of_array_copies;
        Alcotest.test_case "get" `Quick test_get;
        Alcotest.test_case "list round trip" `Quick test_list_round_trip;
        Alcotest.test_case "append" `Quick test_append_correct;
        Alcotest.test_case "append merges small" `Quick
          test_append_small_merges;
        Alcotest.test_case "append skew rebalances" `Quick
          test_append_skew_stays_balanced;
        Alcotest.test_case "ops vs oracles all modes" `Slow
          test_ops_match_oracles;
        Alcotest.test_case "scan non-commutative" `Quick
          test_scan_non_commutative;
        Alcotest.test_case "empty and singleton" `Quick
          test_ops_empty_and_singleton;
        Alcotest.test_case "bad split rejected" `Quick test_bad_split_rejected;
        Alcotest.test_case "lazy 1-worker zero spawns" `Quick
          test_lazy_one_worker_zero_spawns;
        Alcotest.test_case "pressure false on 1 worker" `Quick
          test_steal_pressure_single_worker_false;
        Alcotest.test_case "pressure under starving thieves" `Quick
          test_steal_pressure_hungry_thieves;
        QCheck_alcotest.to_alcotest qcheck_map;
        QCheck_alcotest.to_alcotest qcheck_reduce;
        QCheck_alcotest.to_alcotest qcheck_filter;
        QCheck_alcotest.to_alcotest qcheck_scan;
        QCheck_alcotest.to_alcotest qcheck_append;
      ] );
    ( "parallel helpers",
      [
        Alcotest.test_case "grain validation" `Quick test_grain_validation;
        Alcotest.test_case "element-0 accounting" `Quick
          test_element0_accounting;
        Alcotest.test_case "element-0 unwind" `Quick test_element0_unwind;
        Alcotest.test_case "duplicated body (Dup drain)" `Quick
          test_duplicated_body_on_relaxed;
        Alcotest.test_case "relaxed at-least-once coverage" `Slow
          test_relaxed_at_least_once_coverage;
      ] );
  ]
