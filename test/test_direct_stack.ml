module Ds = Wool_deque.Direct_stack

let mk ?(publicity = Ds.All_public) ?(capacity = 1024) () =
  Ds.create ~capacity ~publicity ~dummy:(-1) ()

let expect_task what = function
  | Ds.Task (v, public) -> (v, public)
  | Ds.Stolen _ -> Alcotest.failf "%s: expected inlined task" what

let expect_stolen what = function
  | Ds.Task _ -> Alcotest.failf "%s: expected stolen" what
  | Ds.Stolen { thief; index } -> (thief, index)

let test_lifo () =
  let t = mk () in
  List.iter (Ds.push t) [ 1; 2; 3 ];
  Alcotest.(check int) "depth" 3 (Ds.depth t);
  Alcotest.(check int) "pop 3" 3 (fst (expect_task "a" (Ds.pop t)));
  Alcotest.(check int) "pop 2" 2 (fst (expect_task "b" (Ds.pop t)));
  Alcotest.(check int) "pop 1" 1 (fst (expect_task "c" (Ds.pop t)));
  Alcotest.(check int) "empty" 0 (Ds.depth t)

let test_pop_empty () =
  let t = mk () in
  Alcotest.check_raises "empty pop"
    (Invalid_argument "Direct_stack.pop: empty stack") (fun () ->
      ignore (Ds.pop t))

let test_all_private_never_stealable () =
  let t = mk ~publicity:Ds.All_private () in
  List.iter (Ds.push t) [ 1; 2; 3 ];
  (match Ds.steal t ~thief:1 with
  | Ds.Fail -> ()
  | Ds.Stolen_task _ | Ds.Backoff -> Alcotest.fail "stole a private task");
  let _, public = expect_task "pop" (Ds.pop t) in
  Alcotest.(check bool) "private join" false public;
  let s = Ds.stats t in
  Alcotest.(check int) "inlined private" 1 s.Ds.inlined_private;
  Alcotest.(check int) "failed steals" 1 s.Ds.failed_steals

let test_all_public_steal_order () =
  let t = mk () in
  List.iter (Ds.push t) [ 10; 20; 30 ];
  (match Ds.steal t ~thief:1 with
  | Ds.Stolen_task (v, idx) ->
      Alcotest.(check int) "oldest first" 10 v;
      Alcotest.(check int) "index 0" 0 idx
  | Ds.Fail | Ds.Backoff -> Alcotest.fail "steal failed");
  match Ds.steal t ~thief:2 with
  | Ds.Stolen_task (v, _) -> Alcotest.(check int) "next oldest" 20 v
  | Ds.Fail | Ds.Backoff -> Alcotest.fail "second steal failed"

let test_steal_empty () =
  let t = mk () in
  match Ds.steal t ~thief:1 with
  | Ds.Fail -> ()
  | Ds.Stolen_task _ | Ds.Backoff -> Alcotest.fail "stole from empty stack"

let test_join_with_completed_thief () =
  let t = mk () in
  Ds.push t 7;
  let idx =
    match Ds.steal t ~thief:4 with
    | Ds.Stolen_task (v, idx) ->
        Alcotest.(check int) "payload" 7 v;
        idx
    | Ds.Fail | Ds.Backoff -> Alcotest.fail "steal failed"
  in
  Ds.complete_steal t ~index:idx;
  let thief, index = expect_stolen "join" (Ds.pop t) in
  (* The thief already finished, so the owner's exchange saw DONE. *)
  Alcotest.(check int) "already done" (-1) thief;
  Ds.reclaim t ~index;
  Alcotest.(check int) "reclaimed" 0 (Ds.depth t);
  Alcotest.(check int) "bot reset" 0 (Ds.bot_index t)

let test_join_with_running_thief () =
  let t = mk () in
  Ds.push t 9;
  let idx =
    match Ds.steal t ~thief:2 with
    | Ds.Stolen_task (_, idx) -> idx
    | Ds.Fail | Ds.Backoff -> Alcotest.fail "steal failed"
  in
  let thief, index = expect_stolen "join" (Ds.pop t) in
  Alcotest.(check int) "thief id" 2 thief;
  Alcotest.(check bool) "not done yet" false (Ds.stolen_done t ~index);
  Ds.complete_steal t ~index:idx;
  Alcotest.(check bool) "done now" true (Ds.stolen_done t ~index);
  Ds.reclaim t ~index

let test_reuse_after_reclaim () =
  let t = mk () in
  Ds.push t 1;
  (match Ds.steal t ~thief:1 with
  | Ds.Stolen_task (_, idx) -> Ds.complete_steal t ~index:idx
  | Ds.Fail | Ds.Backoff -> Alcotest.fail "steal failed");
  let _, index = expect_stolen "join" (Ds.pop t) in
  Ds.reclaim t ~index;
  (* the slot must be cleanly reusable *)
  Ds.push t 2;
  Alcotest.(check int) "reused slot" 2 (fst (expect_task "pop" (Ds.pop t)))

let test_adaptive_window_and_trip_wire () =
  let t = mk ~publicity:(Ds.Adaptive 2) () in
  for i = 1 to 5 do
    Ds.push t i
  done;
  (* only the bottom two descriptors are public *)
  (match Ds.steal t ~thief:1 with
  | Ds.Stolen_task (v, idx) ->
      Alcotest.(check int) "first public" 1 v;
      Ds.complete_steal t ~index:idx
  | Ds.Fail | Ds.Backoff -> Alcotest.fail "steal 1 failed");
  (match Ds.steal t ~thief:1 with
  | Ds.Stolen_task (v, idx) ->
      Alcotest.(check int) "trip wire slot" 2 v;
      Ds.complete_steal t ~index:idx
  | Ds.Fail | Ds.Backoff -> Alcotest.fail "steal 2 failed");
  (* the window is exhausted until the owner services the trip wire *)
  (match Ds.steal t ~thief:1 with
  | Ds.Fail -> ()
  | Ds.Stolen_task _ | Ds.Backoff -> Alcotest.fail "stole beyond the window");
  (* any owner operation services the publish request *)
  Ds.push t 6;
  (match Ds.steal t ~thief:1 with
  | Ds.Stolen_task (v, idx) ->
      Alcotest.(check int) "published" 3 v;
      Ds.complete_steal t ~index:idx
  | Ds.Fail | Ds.Backoff -> Alcotest.fail "steal after publish failed");
  let s = Ds.stats t in
  Alcotest.(check int) "publish events" 1 s.Ds.publish_events;
  Alcotest.(check int) "steals" 3 s.Ds.steals

(* Regression: a privatize that fires when the shrunken window holds no
   live public descriptor at or above [bot] used to leave the trip index
   below [bot] — a wire no steal could ever reach, so publication stopped
   forever and the whole stack became unstealable. The fix disarms the
   wire and re-arms it on the next push, which publishes itself. *)
let test_trip_wire_survives_privatize_below_bot () =
  let t = mk ~capacity:64 ~publicity:(Ds.Adaptive 20) () in
  (* 21 pushes: slots 0..19 public (window 20, trip at 19), 20 private *)
  for i = 0 to 20 do
    Ds.push t i
  done;
  (* a thief drains the four bottom slots; bot ends at 4, well below the
     trip wire at 19, which therefore never fires *)
  for expect = 0 to 3 do
    match Ds.steal t ~thief:1 with
    | Ds.Stolen_task (v, idx) ->
        Alcotest.(check int) "steal order" expect v;
        Ds.complete_steal t ~index:idx
    | Ds.Fail | Ds.Backoff -> Alcotest.failf "steal of slot %d failed" expect
  done;
  (* owner: one private inline (slot 20), then 16 consecutive public
     inlines (19 down to 4) — exactly the privatize threshold, reached on
     the inline of slot 4 where [max bot i = bot]: nothing public at or
     above [bot] is left alive *)
  for i = 20 downto 4 do
    Alcotest.(check int) "inline order" i (fst (expect_task "inline" (Ds.pop t)))
  done;
  let s = Ds.stats t in
  Alcotest.(check int) "privatized once" 1 s.Ds.privatize_events;
  (* the next spawn must be stealable again: the re-armed wire publishes
     the push itself (before the fix this task stayed private and the
     stack was permanently unstealable) *)
  Ds.push t 100;
  (match Ds.steal t ~thief:2 with
  | Ds.Stolen_task (v, idx) ->
      Alcotest.(check int) "re-armed push stolen" 100 v;
      Ds.complete_steal t ~index:idx
  | Ds.Fail | Ds.Backoff -> Alcotest.fail "re-armed push was not stealable");
  (* that steal took the wire descriptor, so the owner's next operation
     services a publish request: the window is live again *)
  (match Ds.pop t with
  | Ds.Task _ -> Alcotest.fail "expected the stolen join"
  | Ds.Stolen { index; _ } -> Ds.reclaim t ~index);
  let s = Ds.stats t in
  Alcotest.(check int) "wire re-armed and sprung" 1 s.Ds.publish_events;
  (* drain the thief-1 steals and verify a clean shutdown state *)
  while Ds.depth t > 0 do
    match Ds.pop t with
    | Ds.Task _ -> Alcotest.fail "leftover inline"
    | Ds.Stolen { index; _ } -> Ds.reclaim t ~index
  done;
  Alcotest.(check (list string)) "quiescent" [] (Ds.check_quiescent t)

let test_privatize_after_public_inlines () =
  let t = mk ~publicity:(Ds.Adaptive 2) () in
  (* Inline public tasks repeatedly with no stealing: the owner should
     eventually privatise the window. *)
  for _ = 1 to 20 do
    Ds.push t 1;
    Ds.push t 2;
    ignore (Ds.pop t);
    ignore (Ds.pop t)
  done;
  let s = Ds.stats t in
  Alcotest.(check bool) "privatized" true (s.Ds.privatize_events >= 1);
  Alcotest.(check bool) "some private joins happened" true
    (s.Ds.inlined_private > 0)

let test_stats_counters () =
  let t = mk () in
  Ds.push t 1;
  Ds.push t 2;
  ignore (Ds.pop t);
  ignore (Ds.pop t);
  let s = Ds.stats t in
  Alcotest.(check int) "spawns" 2 s.Ds.spawns;
  Alcotest.(check int) "inlined public" 2 s.Ds.inlined_public;
  Ds.reset_stats t;
  let s = Ds.stats t in
  Alcotest.(check int) "reset" 0 s.Ds.spawns

let test_capacity_overflow () =
  let t = mk ~capacity:4 () in
  for i = 1 to 4 do
    Ds.push t i
  done;
  Alcotest.check_raises "overflow" Ds.Pool_overflow (fun () -> Ds.push t 5);
  (* the raise must precede any mutation: the stack still works *)
  Alcotest.(check int) "depth untouched" 4 (Ds.depth t);
  for i = 4 downto 1 do
    match Ds.pop t with
    | Ds.Task (v, _) -> Alcotest.(check int) "pops survive overflow" i v
    | Ds.Stolen _ -> Alcotest.fail "unexpected steal"
  done;
  Alcotest.(check (list string)) "quiescent after overflow" []
    (Ds.check_quiescent t)

let test_create_validation () =
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Direct_stack.create: capacity") (fun () ->
      ignore (Ds.create ~capacity:0 ~dummy:0 ()));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Direct_stack.create: adaptive window must be positive")
    (fun () -> ignore (Ds.create ~publicity:(Ds.Adaptive 0) ~dummy:0 ()))

(* Model-based sequential property: with no thieves, the direct stack is a
   plain LIFO stack. *)
let qcheck_sequential_stack_model =
  QCheck.Test.make ~name:"direct stack = LIFO stack (owner only)" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 100) (option small_nat))
    (fun ops ->
      (* Some n = push n; None = pop *)
      let t = mk ~capacity:256 () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              if List.length !model >= 256 then true
              else begin
                Ds.push t v;
                model := v :: !model;
                true
              end
          | None -> (
              match !model with
              | [] -> true (* skip: popping empty is a precondition violation *)
              | expect :: rest -> (
                  model := rest;
                  match Ds.pop t with
                  | Ds.Task (v, _) -> v = expect
                  | Ds.Stolen _ -> false)))
        ops)

(* The same owner-only list-model property under Adaptive publicity (the
   mirror of test_chase_lev's qcheck_owner_model): runs of public inlines
   privatise the window and re-arm the trip wire mid-sequence, none of
   which may disturb LIFO semantics. *)
let qcheck_owner_model =
  QCheck.Test.make ~name:"direct stack adaptive = LIFO stack (owner only)"
    ~count:300
    QCheck.(
      pair (int_range 1 8) (list_of_size (Gen.int_range 0 200) (option small_nat)))
    (fun (window, ops) ->
      let t = mk ~publicity:(Ds.Adaptive window) ~capacity:256 () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              if List.length !model >= 256 then true
              else begin
                Ds.push t v;
                model := v :: !model;
                true
              end
          | None -> (
              match !model with
              | [] -> true
              | expect :: rest -> (
                  model := rest;
                  match Ds.pop t with
                  | Ds.Task (v, _) -> v = expect
                  | Ds.Stolen _ -> false)))
        ops
      && (Ds.check_quiescent t = []) = (!model = []))

(* Deterministic regression for the delayed-CAS / recycled-descriptor
   back-off (paper §III-A): thief 2 reads TASK at slot 1 and stalls in
   the Pre_cas window while the owner inlines that task, joins a
   finished steal, reclaims [bot] below the thief's probe point and
   refills both slots. The delayed CAS then wins against the *recycled*
   descriptor; the bot re-read must restore the state word and return
   [Backoff], leaving the refilled tasks stealable bottom-up. *)
let test_recycled_descriptor_backoff () =
  let t = mk ~capacity:4 () in
  Ds.push t 10;
  Ds.push t 11;
  (match Ds.steal t ~thief:1 with
  | Ds.Stolen_task (10, 0) -> Ds.complete_steal t ~index:0
  | _ -> Alcotest.fail "expected to steal task 10 at slot 0");
  let interfere = function
    | Ds.Pre_cas ->
        let v, public = expect_task "inline 11" (Ds.pop t) in
        Alcotest.(check int) "inlined 11" 11 v;
        Alcotest.(check bool) "was public" true public;
        let thief, index = expect_stolen "join 10" (Ds.pop t) in
        Alcotest.(check int) "thief already done" (-1) thief;
        Ds.reclaim t ~index;
        Ds.push t 12;
        Ds.push t 13 (* recycles slot 1's descriptor *);
        false
    | Ds.Post_cas | Ds.Trip -> false
  in
  (match Ds.steal t ~interfere ~thief:2 with
  | Ds.Backoff -> ()
  | Ds.Stolen_task (v, _) -> Alcotest.failf "stole recycled task %d" v
  | Ds.Fail -> Alcotest.fail "expected Backoff, got Fail");
  let s = Ds.stats t in
  Alcotest.(check int) "one back-off" 1 s.Ds.backoffs;
  (* the restore left both refilled tasks live and bottom-most-first *)
  (match Ds.steal t ~thief:2 with
  | Ds.Stolen_task (12, 0) -> Ds.complete_steal t ~index:0
  | _ -> Alcotest.fail "expected 12 at slot 0 after back-off");
  (match Ds.steal t ~thief:2 with
  | Ds.Stolen_task (13, 1) -> Ds.complete_steal t ~index:1
  | _ -> Alcotest.fail "expected 13 at slot 1 after back-off");
  let _, index = expect_stolen "join 13" (Ds.pop t) in
  Ds.reclaim t ~index;
  let _, index = expect_stolen "join 12" (Ds.pop t) in
  Ds.reclaim t ~index;
  Alcotest.(check (list string)) "quiescent" [] (Ds.check_quiescent t)

(* Concurrency soak: one owner, several thief domains hammering the same
   stack. Every task must execute exactly once, whether inlined or stolen,
   and the paper's claim that ABA back-offs are rare gets checked. *)
let concurrent_soak ~publicity ~thieves ~batches ~batch () =
  let total = batches * batch in
  let executed = Array.init total (fun _ -> Atomic.make 0) in
  let t =
    Ds.create ~capacity:(batch + 8) ~publicity ~dummy:(-1) ()
  in
  let stop = Atomic.make false in
  let thief_domains =
    List.init thieves (fun k ->
        Domain.spawn (fun () ->
            let tid = k + 1 in
            let fails = ref 0 in
            while not (Atomic.get stop) do
              match Ds.steal t ~thief:tid with
              | Ds.Stolen_task (payload, index) ->
                  Atomic.incr executed.(payload);
                  Ds.complete_steal t ~index;
                  fails := 0
              | Ds.Fail | Ds.Backoff ->
                  incr fails;
                  Domain.cpu_relax ();
                  if !fails land 1023 = 0 then Unix.sleepf 0.0002
            done))
  in
  for b = 0 to batches - 1 do
    for i = 0 to batch - 1 do
      Ds.push t ((b * batch) + i)
    done;
    for _ = 1 to batch do
      match Ds.pop t with
      | Ds.Task (payload, _) -> Atomic.incr executed.(payload)
      | Ds.Stolen { thief; index } ->
          if thief >= 0 then begin
            let spins = ref 0 in
            while not (Ds.stolen_done t ~index) do
              Domain.cpu_relax ();
              incr spins;
              if !spins land 4095 = 0 then Unix.sleepf 0.0002
            done
          end;
          Ds.reclaim t ~index
    done
  done;
  Atomic.set stop true;
  List.iter Domain.join thief_domains;
  Array.iteri
    (fun i c ->
      let n = Atomic.get c in
      if n <> 1 then Alcotest.failf "task %d executed %d times" i n)
    executed;
  let s = Ds.stats t in
  Alcotest.(check int) "all tasks accounted" total
    (s.Ds.inlined_private + s.Ds.inlined_public + s.Ds.joins_stolen);
  Alcotest.(check int) "steals equal stolen joins" s.Ds.joins_stolen s.Ds.steals;
  (* §III-A: "back offs are infrequent, always below 1% of successful
     steals" — allow slack for the scheduling noise of a time-shared box. *)
  if s.Ds.steals > 100 then
    Alcotest.(check bool)
      (Printf.sprintf "backoffs rare (%d/%d)" s.Ds.backoffs s.Ds.steals)
      true
      (float_of_int s.Ds.backoffs <= 0.05 *. float_of_int s.Ds.steals)

let test_soak_public () =
  concurrent_soak ~publicity:Ds.All_public ~thieves:3 ~batches:400 ~batch:32 ()

let test_soak_adaptive () =
  concurrent_soak ~publicity:(Ds.Adaptive 2) ~thieves:3 ~batches:400 ~batch:32 ()

let test_soak_private () =
  concurrent_soak ~publicity:Ds.All_private ~thieves:2 ~batches:100 ~batch:32 ()

let suite =
  [
    ( "direct_stack",
      [
        Alcotest.test_case "LIFO" `Quick test_lifo;
        Alcotest.test_case "pop empty" `Quick test_pop_empty;
        Alcotest.test_case "all-private unstealable" `Quick
          test_all_private_never_stealable;
        Alcotest.test_case "steal order" `Quick test_all_public_steal_order;
        Alcotest.test_case "steal empty" `Quick test_steal_empty;
        Alcotest.test_case "join after thief done" `Quick
          test_join_with_completed_thief;
        Alcotest.test_case "join with running thief" `Quick
          test_join_with_running_thief;
        Alcotest.test_case "slot reuse" `Quick test_reuse_after_reclaim;
        Alcotest.test_case "trip wire" `Quick test_adaptive_window_and_trip_wire;
        Alcotest.test_case "trip wire survives privatize below bot" `Quick
          test_trip_wire_survives_privatize_below_bot;
        Alcotest.test_case "privatize" `Quick test_privatize_after_public_inlines;
        Alcotest.test_case "stats" `Quick test_stats_counters;
        Alcotest.test_case "overflow" `Quick test_capacity_overflow;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        QCheck_alcotest.to_alcotest qcheck_sequential_stack_model;
        QCheck_alcotest.to_alcotest qcheck_owner_model;
        Alcotest.test_case "recycled-descriptor back-off" `Quick
          test_recycled_descriptor_backoff;
        Alcotest.test_case "soak all-public" `Slow test_soak_public;
        Alcotest.test_case "soak adaptive" `Slow test_soak_adaptive;
        Alcotest.test_case "soak all-private" `Slow test_soak_private;
      ] );
  ]
