(* Fault injection, exception robustness, and the stall watchdog. *)

module F = Wool.Fault
module Json = Wool_trace.Json

let all_modes = Test_util.all_modes
let fib = Test_util.fib
let fib_serial = Test_util.fib_serial

(* ---- plans and injectors ---- *)

let test_plan_deterministic () =
  for seed = 0 to 9 do
    let a = F.Plan.random ~seed () in
    let b = F.Plan.random ~seed () in
    Alcotest.(check bool) "equal plans" true (a = b)
  done;
  let a = F.Plan.random ~seed:1 () in
  let b = F.Plan.random ~seed:2 () in
  Alcotest.(check bool) "different seeds differ" false (a.F.Plan.rules = b.F.Plan.rules)

let test_injector_deterministic () =
  let plan = F.Plan.random ~seed:42 () in
  let sites = F.Site.all @ F.Site.all @ F.Site.all in
  let stream worker =
    let inj = F.Injector.make plan ~worker in
    List.concat_map
      (fun _ -> List.map (fun s -> F.Injector.fire inj s) sites)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "same worker, same stream" true (stream 0 = stream 0);
  (* a second worker draws from an independent stream; over hundreds of
     coin flips they cannot coincide *)
  Alcotest.(check bool) "workers independent" false (stream 0 = stream 1)

let test_injector_counts () =
  let plan = F.Plan.random ~seed:7 () in
  let inj = F.Injector.make plan ~worker:0 in
  let fired = ref 0 in
  for _ = 1 to 200 do
    List.iter
      (fun s -> if F.Injector.fire inj s <> None then incr fired)
      F.Site.all
  done;
  Alcotest.(check int) "stats total = fires" !fired
    (F.Stats.total (F.Injector.stats inj));
  Alcotest.(check int) "fires counter" !fired (F.Injector.fires inj)

let test_plan_validation () =
  let bad site kind =
    try
      ignore
        (F.Plan.make ~seed:0
           [ { F.Plan.site; kind; rate = 0.5; max_fires = -1 } ]
          : F.Plan.t);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "raise_exn only at spawn" true
    (bad F.Site.Join F.Kind.Raise_exn);
  Alcotest.(check bool) "fail_steal not at publish" true
    (bad F.Site.Publish F.Kind.Fail_steal);
  Alcotest.(check bool) "fail_steal at pre-cas ok" false
    (bad F.Site.Pre_steal_cas F.Kind.Fail_steal);
  Alcotest.(check bool) "site names round-trip" true
    (List.for_all
       (fun s -> F.Site.of_name (F.Site.name s) = Some s)
       F.Site.all)

(* ---- faults perturb, never corrupt ---- *)

let test_fib_under_faults_all_modes () =
  List.iter
    (fun (name, mode) ->
      (* no exception rules: every run must produce the right answer *)
      let plan = F.Plan.random ~exceptions:false ~seed:11 () in
      let config = Wool.Config.make ~workers:4 ~mode ~allow_relaxed:(Wool.Mode.is_relaxed mode) ~faults:plan () in
      let pool = Wool.create ~config () in
      for _ = 1 to 3 do
        Alcotest.(check int) (name ^ " fib under faults") (fib_serial 16)
          (Wool.run pool (fun ctx -> fib ctx 16));
        Alcotest.(check (list string)) (name ^ " invariants") []
          (Wool.Invariants.check pool)
      done;
      Wool.shutdown pool)
    all_modes

let test_forced_steal_failures_counted () =
  (* a plan that aborts half of all steal attempts must still finish and
     must actually fire *)
  let plan =
    F.Plan.make ~name:"half-fail" ~seed:5
      [
        {
          F.Plan.site = F.Site.Pre_steal_cas;
          kind = F.Kind.Fail_steal;
          rate = 0.5;
          max_fires = -1;
        };
      ]
  in
  let config = Wool.Config.make ~workers:4 ~faults:plan () in
  let pool = Wool.create ~config () in
  (* On a time-sliced box a single run may see only a handful of steal
     attempts, each skipped with probability 1/2 — repeat until the plan
     fires (the fire counters accumulate across runs). *)
  let runs = ref 0 in
  while F.Stats.total (Wool.fault_stats pool) = 0 && !runs < 20 do
    incr runs;
    Alcotest.(check int) "result" (fib_serial 18)
      (Wool.run pool (fun ctx -> fib ctx 18))
  done;
  let stats = Wool.fault_stats pool in
  Alcotest.(check bool) "fired" true (F.Stats.total stats > 0);
  Alcotest.(check bool) "fired at pre-cas" true
    (F.Stats.count stats F.Site.Pre_steal_cas > 0);
  Alcotest.(check (list string)) "invariants" [] (Wool.Invariants.check pool);
  Wool.shutdown pool

let test_injected_exception_pool_survives () =
  List.iter
    (fun (name, mode) ->
      let plan =
        F.Plan.make ~name:"one-shot-exn" ~seed:9
          [
            {
              F.Plan.site = F.Site.Spawn;
              kind = F.Kind.Raise_exn;
              rate = 1.0;
              max_fires = 1;
            };
          ]
      in
      let workers = 2 in
      let config = Wool.Config.make ~workers ~mode ~allow_relaxed:(Wool.Mode.is_relaxed mode) ~faults:plan () in
      let pool = Wool.create ~config () in
      (* the very first spawn raises; each worker can fire at most once,
         so a bounded number of retries must reach a clean run *)
      let rec go attempts =
        if attempts > workers + 1 then
          Alcotest.fail (name ^ ": exception rule never exhausted")
        else
          match Wool.run pool (fun ctx -> fib ctx 12) with
          | v -> (attempts, v)
          | exception F.Injected _ ->
              Alcotest.(check (list string))
                (name ^ " invariants after injected exn")
                []
                (Wool.Invariants.check pool);
              go (attempts + 1)
      in
      let attempts, v = go 1 in
      Alcotest.(check int) (name ^ " result after retries") (fib_serial 12) v;
      Alcotest.(check bool) (name ^ " first run raised") true (attempts > 1);
      Wool.shutdown pool)
    all_modes

(* ---- exception propagation from genuinely stolen tasks ---- *)

exception Boom of int

let () =
  Printexc.register_printer (function
    | Boom n -> Some (Printf.sprintf "Boom(%d)" n)
    | _ -> None)

(* The failing task publishes its executing worker through [started]
   before raising; the parent spins until then, so by the time it joins,
   the task has provably been stolen (it runs on another worker while
   the parent is still inside [run]). The body also leaves two unjoined
   children behind: the unwind must drain them — each exactly once —
   before the exception crosses the steal boundary. *)
let await_flag = Test_util.await_flag

(* Relaxed pools refuse plain [spawn]; a sweeping test picks the spawn
   form the mode's contract allows. The bodies here are test probes —
   counters and raises the at-least-once reruns are allowed to repeat. *)
let spawn_for mode =
  if Wool.Mode.is_relaxed mode then Wool.spawn_idempotent else Wool.spawn

let stolen_exception_scenario mode =
  let spawn = spawn_for mode in
  let config =
    Wool.Config.make ~workers:2 ~mode ~allow_relaxed:(Wool.Mode.is_relaxed mode) ~publicity:Wool.All_public ()
  in
  let pool = Wool.create ~config () in
  let started = Atomic.make (-1) in
  let child_runs = Atomic.make 0 in
  Fun.protect
    ~finally:(fun () -> Wool.shutdown pool)
    (fun () ->
      ignore
        (Wool.run pool (fun ctx ->
             let f =
               spawn ctx (fun ctx ->
                   let c1 =
                     spawn ctx (fun _ ->
                         Atomic.incr child_runs;
                         1)
                   in
                   let c2 =
                     spawn ctx (fun _ ->
                         Atomic.incr child_runs;
                         2)
                   in
                   Atomic.set started (Wool.self_id ctx);
                   if Atomic.get started >= 0 then raise (Boom 42);
                   let v2 = Wool.join ctx c2 in
                   v2 + Wool.join ctx c1)
             in
             await_flag started;
             Wool.join ctx f)
          : int));
  `Completed

let test_stolen_exception_all_modes () =
  Printexc.record_backtrace true;
  List.iter
    (fun (name, mode) ->
      let caught = ref false in
      let bt_frames = ref 0 in
      (try ignore (stolen_exception_scenario mode : [ `Completed ])
       with Boom 42 ->
         caught := true;
         bt_frames := Printexc.raw_backtrace_length (Printexc.get_raw_backtrace ()));
      Alcotest.(check bool) (name ^ " Boom propagated") true !caught;
      if Printexc.backtrace_status () then
        Alcotest.(check bool)
          (name ^ " backtrace preserved across steal")
          true (!bt_frames > 0))
    all_modes

let test_stolen_exception_drains_children () =
  List.iter
    (fun (name, mode) ->
      let config =
        Wool.Config.make ~workers:2 ~mode ~allow_relaxed:(Wool.Mode.is_relaxed mode) ~publicity:Wool.All_public ()
      in
      let pool = Wool.create ~config () in
      let spawn = spawn_for mode in
      let started = Atomic.make (-1) in
      let child_runs = Atomic.make 0 in
      (try
         ignore
           (Wool.run pool (fun ctx ->
                let f =
                  spawn ctx (fun ctx ->
                      let c1 =
                        spawn ctx (fun _ ->
                            Atomic.incr child_runs;
                            1)
                      in
                      let c2 =
                        spawn ctx (fun _ ->
                            Atomic.incr child_runs;
                            2)
                      in
                      Atomic.set started (Wool.self_id ctx);
                      if Atomic.get started >= 0 then raise (Boom 7);
                      let v2 = Wool.join ctx c2 in
                      v2 + Wool.join ctx c1)
                in
                await_flag started;
                Wool.join ctx f)
             : int)
       with Boom 7 -> ());
      (* at-least-once modes may legally rerun a drained child; the
         exactly-once modes must not *)
      if Wool.Mode.is_relaxed mode then
        Alcotest.(check bool)
          (name ^ " children each ran at least once")
          true
          (Atomic.get child_runs >= 2)
      else
        Alcotest.(check int) (name ^ " children each ran once") 2
          (Atomic.get child_runs);
      Alcotest.(check (list string)) (name ^ " invariants") []
        (Wool.Invariants.check pool);
      (* the pool stays usable after the unwind *)
      Alcotest.(check int) (name ^ " pool reusable") (fib_serial 12)
        (Wool.run pool (fun ctx -> fib ctx 12));
      Wool.shutdown pool)
    all_modes

let test_exception_unwind_nested_depth () =
  (* exception under several live ancestor frames: everything spawned on
     the way down must be joined or drained *)
  List.iter
    (fun (_name, mode) ->
      let spawn = spawn_for mode in
      let pool = Test_util.create ~workers:2 ~mode () in
      (* the raise always arrives through the LIFO-most join, with the
         sibling [f] still unjoined at every one of the 12 levels — the
         unwind must drain each of them *)
      let rec deep ctx n =
        if n = 0 then raise (Boom n)
        else begin
          let f = spawn ctx (fun _ -> n) in
          let g = spawn ctx (fun ctx -> deep ctx (n - 1)) in
          (* explicit sequencing: [+] would evaluate right-to-left *)
          let gv = Wool.join ctx g in
          gv + Wool.join ctx f
        end
      in
      (try ignore (Wool.run pool (fun ctx -> deep ctx 12) : int)
       with Boom _ -> ());
      Alcotest.(check (list string)) "invariants after nested unwind" []
        (Wool.Invariants.check pool);
      Alcotest.(check int) "pool reusable" (fib_serial 10)
        (Wool.run pool (fun ctx -> fib ctx 10));
      Wool.shutdown pool)
    all_modes

(* ---- shutdown discipline ---- *)

let test_shutdown_idempotent () =
  let pool = Test_util.create ~workers:2 () in
  Alcotest.(check int) "runs" (fib_serial 10)
    (Wool.run pool (fun ctx -> fib ctx 10));
  Wool.shutdown pool;
  Wool.shutdown pool;
  Wool.shutdown pool;
  (* with_pool's Fun.protect shuts down a pool the body already shut *)
  Test_util.with_pool ~workers:2 (fun pool ->
      ignore (Wool.run pool (fun ctx -> fib ctx 8) : int);
      Wool.shutdown pool)

let test_use_after_shutdown_raises () =
  let pool = Test_util.create ~workers:2 () in
  let saved = ref None in
  ignore (Wool.run pool (fun ctx -> saved := Some ctx) : unit);
  Wool.shutdown pool;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Wool.run: pool is shut down") (fun () ->
      ignore (Wool.run pool (fun _ -> 0) : int));
  match !saved with
  | None -> Alcotest.fail "ctx not captured"
  | Some ctx ->
      Alcotest.check_raises "spawn after shutdown"
        (Invalid_argument "Wool.spawn: pool is shut down") (fun () ->
          ignore (Wool.spawn ctx (fun _ -> 0) : int Wool.future))

(* ---- the stall watchdog ---- *)

let test_watchdog_fires_on_stall () =
  let config =
    Wool.Config.make ~workers:1 ~trace:true ~watchdog_interval_ns:10_000_000
      ~watchdog_stalls:3 ()
  in
  let pool = Wool.create ~config () in
  let reports = ref [] in
  Wool.set_on_stall pool (fun r -> reports := r :: !reports);
  (* a worker that makes no scheduler transitions for 0.5s while a run
     is active is exactly what the watchdog exists to catch *)
  Wool.run pool (fun _ -> Unix.sleepf 0.5);
  Wool.shutdown pool;
  Alcotest.(check bool) "watchdog fired" true (Wool.stalls_fired pool >= 1);
  Alcotest.(check bool) "report delivered" true (!reports <> []);
  List.iter
    (fun r ->
      match Json.validate r with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("stall report not valid JSON: " ^ e))
    !reports;
  let r = List.hd !reports in
  let contains needle = Test_util.contains r needle in
  Alcotest.(check bool) "report type tag" true
    (contains "\"type\":\"wool_stall_report\"");
  Alcotest.(check bool) "report has workers" true (contains "\"workers\"")

let test_watchdog_quiet_on_healthy_run () =
  let config =
    Wool.Config.make ~workers:2 ~watchdog_interval_ns:5_000_000
      ~watchdog_stalls:60 ()
  in
  let pool = Wool.create ~config () in
  for _ = 1 to 3 do
    Alcotest.(check int) "fib" (fib_serial 18)
      (Wool.run pool (fun ctx -> fib ctx 18))
  done;
  Wool.shutdown pool;
  Alcotest.(check int) "no stall reports" 0 (Wool.stalls_fired pool)

let test_stall_report_always_valid () =
  (* callable at any time, on any pool, watchdog or not *)
  List.iter
    (fun (_name, mode) ->
      let pool = Test_util.create ~workers:2 ~mode () in
      ignore (Wool.run pool (fun ctx -> fib ctx 10) : int);
      (match Json.validate (Wool.stall_report pool) with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("invalid report: " ^ e));
      Wool.shutdown pool)
    all_modes

let test_fault_stats_json () =
  let plan = F.Plan.random ~exceptions:false ~seed:3 () in
  let pool =
    Wool.create ~config:(Wool.Config.make ~workers:2 ~faults:plan ()) ()
  in
  ignore (Wool.run pool (fun ctx -> fib ctx 14) : int);
  (match Json.validate (F.Stats.to_json (Wool.fault_stats pool)) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invalid fault stats JSON: " ^ e));
  Wool.shutdown pool

let suite =
  [
    ( "fault",
      [
        Alcotest.test_case "plan deterministic" `Quick test_plan_deterministic;
        Alcotest.test_case "injector deterministic" `Quick
          test_injector_deterministic;
        Alcotest.test_case "injector counts" `Quick test_injector_counts;
        Alcotest.test_case "plan validation" `Quick test_plan_validation;
        Alcotest.test_case "fib under faults all modes" `Slow
          test_fib_under_faults_all_modes;
        Alcotest.test_case "forced steal failures" `Quick
          test_forced_steal_failures_counted;
        Alcotest.test_case "injected exception pool survives" `Slow
          test_injected_exception_pool_survives;
        Alcotest.test_case "stolen exception all modes" `Slow
          test_stolen_exception_all_modes;
        Alcotest.test_case "stolen exception drains children" `Slow
          test_stolen_exception_drains_children;
        Alcotest.test_case "nested unwind depth" `Quick
          test_exception_unwind_nested_depth;
        Alcotest.test_case "shutdown idempotent" `Quick
          test_shutdown_idempotent;
        Alcotest.test_case "use after shutdown" `Quick
          test_use_after_shutdown_raises;
        Alcotest.test_case "watchdog fires on stall" `Quick
          test_watchdog_fires_on_stall;
        Alcotest.test_case "watchdog quiet when healthy" `Slow
          test_watchdog_quiet_on_healthy_run;
        Alcotest.test_case "stall report valid JSON" `Quick
          test_stall_report_always_valid;
        Alcotest.test_case "fault stats JSON" `Quick test_fault_stats_json;
      ] );
  ]
