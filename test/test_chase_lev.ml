module Cl = Wool_deque.Chase_lev

let mk ?(capacity = 4) () = Cl.create ~capacity ~dummy:(-1) ()

let test_lifo_pop () =
  let d = mk () in
  List.iter (Cl.push d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "pop 3" (Some 3) (Cl.pop d);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Cl.pop d);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Cl.pop d);
  Alcotest.(check (option int)) "empty" None (Cl.pop d)

let test_fifo_steal () =
  let d = mk () in
  List.iter (Cl.push d) [ 1; 2; 3 ];
  (match Cl.steal d with
  | `Stolen v -> Alcotest.(check int) "oldest" 1 v
  | `Empty | `Retry -> Alcotest.fail "steal failed");
  match Cl.steal d with
  | `Stolen v -> Alcotest.(check int) "next" 2 v
  | `Empty | `Retry -> Alcotest.fail "steal failed"

let test_steal_empty () =
  let d = mk () in
  (match Cl.steal d with
  | `Empty -> ()
  | `Stolen _ | `Retry -> Alcotest.fail "expected empty");
  Cl.push d 1;
  ignore (Cl.pop d);
  match Cl.steal d with
  | `Empty -> ()
  | `Stolen _ | `Retry -> Alcotest.fail "expected empty after drain"

let test_growth () =
  let d = mk ~capacity:2 () in
  let n = 1000 in
  for i = 1 to n do
    Cl.push d i
  done;
  Alcotest.(check int) "size" n (Cl.size d);
  for i = n downto 1 do
    Alcotest.(check (option int)) "pop order" (Some i) (Cl.pop d)
  done

let test_interleaved_push_pop_steal () =
  let d = mk () in
  Cl.push d 1;
  Cl.push d 2;
  Alcotest.(check (option int)) "pop newest" (Some 2) (Cl.pop d);
  Cl.push d 3;
  (match Cl.steal d with
  | `Stolen v -> Alcotest.(check int) "steal oldest" 1 v
  | `Empty | `Retry -> Alcotest.fail "steal failed");
  Alcotest.(check (option int)) "pop last" (Some 3) (Cl.pop d);
  Alcotest.(check (option int)) "drained" None (Cl.pop d)

let test_size () =
  let d = mk () in
  Alcotest.(check int) "empty" 0 (Cl.size d);
  Cl.push d 1;
  Cl.push d 2;
  Alcotest.(check int) "two" 2 (Cl.size d);
  ignore (Cl.steal d);
  Alcotest.(check int) "one" 1 (Cl.size d)

let qcheck_owner_model =
  QCheck.Test.make ~name:"chase-lev owner ops = list stack" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 200) (option small_nat))
    (fun ops ->
      let d = mk () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              Cl.push d v;
              model := v :: !model;
              true
          | None -> (
              match (!model, Cl.pop d) with
              | [], None -> true
              | x :: rest, Some y ->
                  model := rest;
                  x = y
              | [], Some _ | _ :: _, None -> false))
        ops)

(* Owner pushes/pops a known workload while thieves steal; every element
   must be consumed exactly once across both sides. *)
let test_concurrent_sum () =
  let d = mk () in
  let n = 20_000 in
  let stolen_sum = Atomic.make 0 in
  let stop = Atomic.make false in
  let thieves =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let fails = ref 0 in
            while not (Atomic.get stop) do
              match Cl.steal d with
              | `Stolen v ->
                  ignore (Atomic.fetch_and_add stolen_sum v : int);
                  fails := 0
              | `Empty | `Retry ->
                  incr fails;
                  Domain.cpu_relax ();
                  if !fails land 1023 = 0 then Unix.sleepf 0.0002
            done))
  in
  let popped_sum = ref 0 in
  for i = 1 to n do
    Cl.push d i;
    if i land 3 = 0 then begin
      match Cl.pop d with Some v -> popped_sum := !popped_sum + v | None -> ()
    end
  done;
  let rec drain () =
    match Cl.pop d with
    | Some v ->
        popped_sum := !popped_sum + v;
        drain ()
    | None -> ()
  in
  drain ();
  (* thieves may still hold `Retry races; wait for the deque to settle *)
  ignore
    (Test_util.spin_until (fun () ->
         drain ();
         Cl.size d = 0)
      : bool);
  Atomic.set stop true;
  List.iter Domain.join thieves;
  drain ();
  let expected = n * (n + 1) / 2 in
  Alcotest.(check int) "sum conserved" expected
    (!popped_sum + Atomic.get stolen_sum)

let suite =
  [
    ( "chase_lev",
      [
        Alcotest.test_case "LIFO pop" `Quick test_lifo_pop;
        Alcotest.test_case "FIFO steal" `Quick test_fifo_steal;
        Alcotest.test_case "steal empty" `Quick test_steal_empty;
        Alcotest.test_case "growth" `Quick test_growth;
        Alcotest.test_case "interleaved" `Quick test_interleaved_push_pop_steal;
        Alcotest.test_case "size" `Quick test_size;
        QCheck_alcotest.to_alcotest qcheck_owner_model;
        Alcotest.test_case "concurrent sum" `Slow test_concurrent_sum;
      ] );
  ]
