module T = Wool_sim.Trace
module E = Wool_sim.Engine
module P = Wool_sim.Policy
module W = Wool_workloads.Workload
module Ev = Wool_trace.Event
module Ring = Wool_trace.Ring
module Json = Wool_trace.Json
module Chrome = Wool_trace.Chrome
module Summary = Wool_trace.Summary

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_create_validation () =
  Alcotest.check_raises "workers" (Invalid_argument "Trace.create: workers must be positive")
    (fun () -> ignore (T.create ~workers:0 ~horizon:10 ()));
  Alcotest.check_raises "horizon" (Invalid_argument "Trace.create: horizon must be positive")
    (fun () -> ignore (T.create ~workers:1 ~horizon:0 ()));
  Alcotest.check_raises "buckets" (Invalid_argument "Trace.create: buckets must be positive")
    (fun () -> ignore (T.create ~buckets:0 ~workers:1 ~horizon:10 ()))

let test_record_and_dominant () =
  let t = T.create ~buckets:10 ~workers:2 ~horizon:1000 () in
  Alcotest.(check (option int)) "empty" None (T.dominant t ~worker:0 ~bucket:0);
  T.record t ~worker:0 ~start:0 ~cycles:50 ~category:2;
  T.record t ~worker:0 ~start:50 ~cycles:10 ~category:3;
  (* category 2 dominates bucket 0 *)
  Alcotest.(check (option int)) "dominant" (Some 2) (T.dominant t ~worker:0 ~bucket:0);
  Alcotest.(check (option int)) "other worker untouched" None
    (T.dominant t ~worker:1 ~bucket:0)

let test_record_spans_buckets () =
  let t = T.create ~buckets:10 ~workers:1 ~horizon:1000 () in
  (* 300 cycles from t=0 covers buckets 0..2 *)
  T.record t ~worker:0 ~start:0 ~cycles:300 ~category:2;
  List.iter
    (fun b ->
      Alcotest.(check (option int))
        (Printf.sprintf "bucket %d" b)
        (Some 2)
        (T.dominant t ~worker:0 ~bucket:b))
    [ 0; 1; 2 ];
  Alcotest.(check (option int)) "bucket 3 empty" None
    (T.dominant t ~worker:0 ~bucket:3)

let test_clamping () =
  let t = T.create ~buckets:4 ~workers:1 ~horizon:100 () in
  (* beyond the horizon: lands in the last bucket, no exception *)
  T.record t ~worker:0 ~start:500 ~cycles:10 ~category:1;
  Alcotest.(check (option int)) "clamped" (Some 1) (T.dominant t ~worker:0 ~bucket:3)

let test_utilization () =
  let t = T.create ~buckets:10 ~workers:2 ~horizon:1000 () in
  T.record t ~worker:0 ~start:0 ~cycles:500 ~category:2;
  Alcotest.(check (float 1e-9)) "half busy" 0.5 (T.utilization t ~worker:0);
  Alcotest.(check (float 1e-9)) "idle worker" 0.0 (T.utilization t ~worker:1)

let test_record_validation () =
  let t = T.create ~workers:1 ~horizon:100 () in
  Alcotest.check_raises "bad worker" (Invalid_argument "Trace.record: bad worker")
    (fun () -> T.record t ~worker:5 ~start:0 ~cycles:1 ~category:0);
  Alcotest.check_raises "bad category" (Invalid_argument "Trace.record: bad category")
    (fun () -> T.record t ~worker:0 ~start:0 ~cycles:1 ~category:9)

let test_render () =
  let t = T.create ~buckets:20 ~workers:2 ~horizon:1000 () in
  T.record t ~worker:0 ~start:0 ~cycles:900 ~category:2;
  T.record t ~worker:1 ~start:0 ~cycles:200 ~category:3;
  let s = T.render t in
  Alcotest.(check bool) "worker rows" true (contains s "w0" && contains s "w1");
  Alcotest.(check bool) "app glyph" true (contains s "#");
  Alcotest.(check bool) "steal glyph" true (contains s ".");
  Alcotest.(check bool) "legend" true (contains s "legend")

let test_engine_integration () =
  (* two-pass: measure, then trace the identical (deterministic) run *)
  let root = W.root (W.stress ~reps:4 ~height:6 ~leaf_iters:1024 ()) in
  let first = E.run ~seed:5 ~policy:P.wool ~workers:4 root in
  let trace = T.create ~workers:4 ~horizon:first.E.time () in
  let second = E.run ~seed:5 ~trace ~policy:P.wool ~workers:4 root in
  Alcotest.(check int) "identical replay" first.E.time second.E.time;
  Alcotest.(check int) "same trace hash" first.E.trace_hash second.E.trace_hash;
  (* worker 0 starts the root: it must be busy early *)
  Alcotest.(check bool) "worker 0 active" true
    (T.utilization trace ~worker:0 > 0.5);
  Alcotest.(check bool) "renders" true (String.length (T.render trace) > 100)

(* ---- shared event vocabulary (Wool_trace) ---- *)

let check_event msg (a : Ev.t) (b : Ev.t) =
  Alcotest.(check (list int))
    msg
    [ a.Ev.ts; a.Ev.worker; Ev.tag_to_int a.Ev.tag; a.Ev.a; a.Ev.b ]
    [ b.Ev.ts; b.Ev.worker; Ev.tag_to_int b.Ev.tag; b.Ev.a; b.Ev.b ]

let test_tag_round_trips () =
  Alcotest.(check int) "n_tags" Ev.n_tags (Array.length Ev.all_tags);
  Alcotest.(check int) "sixteen tags" 16 Ev.n_tags;
  let tag_int = function Some t -> Ev.tag_to_int t | None -> -1 in
  Array.iteri
    (fun i tag ->
      Alcotest.(check int) "to_int is the index" i (Ev.tag_to_int tag);
      Alcotest.(check int)
        (Printf.sprintf "of_int round trip %d" i)
        i
        (tag_int (Ev.tag_of_int i));
      Alcotest.(check int)
        (Printf.sprintf "of_name round trip %s" (Ev.tag_name tag))
        i
        (tag_int (Ev.tag_of_name (Ev.tag_name tag))))
    Ev.all_tags;
  Alcotest.(check int) "bad int" (-1) (tag_int (Ev.tag_of_int Ev.n_tags));
  Alcotest.(check int) "bad name" (-1) (tag_int (Ev.tag_of_name "quux"))

let test_event_json_round_trip () =
  Array.iter
    (fun tag ->
      let e = { Ev.ts = 123456789; worker = 3; tag; a = 17; b = -1 } in
      let js = Ev.to_json e in
      Alcotest.(check bool)
        (Printf.sprintf "%s is valid JSON" (Ev.tag_name tag))
        true
        (Json.validate js = Ok ());
      check_event (Ev.tag_name tag) e (Ev.of_json_exn js))
    Ev.all_tags;
  (* field order independence *)
  let e =
    Ev.of_json_exn {|{"b":2,"a":1,"tag":"steal_ok","w":0,"ts":42}|}
  in
  check_event "shuffled fields" { Ev.ts = 42; worker = 0; tag = Ev.Steal_ok; a = 1; b = 2 } e

let test_json_validate_rejects () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) (Printf.sprintf "rejects %s" bad) true
        (match Json.validate bad with Ok () -> false | Error _ -> true))
    [ ""; "{"; "[1,]"; {|{"a":}|}; {|{"a":1}}|}; "nul"; {|"unterminated|};
      "[1 2]"; "{1:2}" ]

let test_ring_record_snapshot () =
  let r = Ring.create ~capacity:8 in
  for i = 0 to 4 do
    Ring.record r ~ts:(100 + i) ~tag:Ev.Spawn ~a:i ~b:(-1)
  done;
  Alcotest.(check int) "written" 5 (Ring.written r);
  Alcotest.(check int) "no drops" 0 (Ring.dropped r);
  let evs = Ring.snapshot r ~worker:3 in
  Alcotest.(check int) "snapshot size" 5 (Array.length evs);
  Array.iteri
    (fun i e ->
      check_event
        (Printf.sprintf "event %d" i)
        { Ev.ts = 100 + i; worker = 3; tag = Ev.Spawn; a = i; b = -1 }
        e)
    evs

let test_ring_overflow_drops_oldest () =
  let r = Ring.create ~capacity:4 in
  for i = 0 to 9 do
    Ring.record r ~ts:i ~tag:Ev.Steal_attempt ~a:(-1) ~b:0
  done;
  Alcotest.(check int) "dropped" 6 (Ring.dropped r);
  let evs = Ring.snapshot r ~worker:0 in
  Alcotest.(check int) "keeps capacity" 4 (Array.length evs);
  Alcotest.(check (list int)) "newest survive, oldest-first" [ 6; 7; 8; 9 ]
    (Array.to_list (Array.map (fun e -> e.Ev.ts) evs));
  Ring.clear r;
  Alcotest.(check int) "clear resets" 0 (Ring.written r);
  Alcotest.(check int) "clear empties" 0 (Array.length (Ring.snapshot r ~worker:0))

let test_chrome_export_is_valid_json () =
  let events =
    [|
      { Ev.ts = 1000; worker = 0; tag = Ev.Spawn; a = 0; b = -1 };
      { Ev.ts = 2000; worker = 1; tag = Ev.Steal_ok; a = 0; b = 0 };
      { Ev.ts = 2500; worker = 0; tag = Ev.Join_stolen; a = 0; b = 1 };
    |]
  in
  let s = Chrome.to_string events in
  Alcotest.(check bool) "valid JSON" true (Json.validate s = Ok ());
  Alcotest.(check bool) "traceEvents array" true (contains s "\"traceEvents\"");
  Alcotest.(check bool) "one lane per worker" true
    (contains s "worker 0" && contains s "worker 1");
  Alcotest.(check bool) "instant events" true (contains s {|"ph":"i"|});
  Alcotest.(check bool) "tag names surface" true (contains s "steal_ok")

let test_sim_event_stream () =
  let root = W.root (W.stress ~reps:4 ~height:6 ~leaf_iters:1024 ()) in
  let first = E.run ~seed:5 ~policy:P.wool ~workers:4 root in
  let trace = T.create ~workers:4 ~horizon:first.E.time () in
  let second = E.run ~seed:5 ~trace ~policy:P.wool ~workers:4 root in
  let events = T.events trace in
  Alcotest.(check bool) "events recorded" true (Array.length events > 0);
  Alcotest.(check int) "no drops" 0 (T.events_dropped trace);
  (* merged stream is time-sorted *)
  for i = 1 to Array.length events - 1 do
    Alcotest.(check bool) "sorted" true
      (events.(i - 1).Ev.ts <= events.(i).Ev.ts)
  done;
  let summary = Summary.make events in
  Alcotest.(check int) "steal_ok matches engine steals" second.E.steals
    (Summary.steals_observed summary);
  Alcotest.(check int) "leap_steal matches engine" second.E.leap_steals
    (Summary.count summary Ev.Leap_steal);
  Alcotest.(check bool) "spawns observed" true
    (Summary.count summary Ev.Spawn > 0)

let suite =
  [
    ( "trace.event",
      [
        Alcotest.test_case "tag round trips" `Quick test_tag_round_trips;
        Alcotest.test_case "event JSON round trip" `Quick test_event_json_round_trip;
        Alcotest.test_case "validator rejects junk" `Quick test_json_validate_rejects;
        Alcotest.test_case "ring record/snapshot" `Quick test_ring_record_snapshot;
        Alcotest.test_case "ring overflow" `Quick test_ring_overflow_drops_oldest;
        Alcotest.test_case "chrome export" `Quick test_chrome_export_is_valid_json;
        Alcotest.test_case "sim event stream" `Quick test_sim_event_stream;
      ] );
    ( "trace",
      [
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "record and dominant" `Quick test_record_and_dominant;
        Alcotest.test_case "spanning buckets" `Quick test_record_spans_buckets;
        Alcotest.test_case "clamping" `Quick test_clamping;
        Alcotest.test_case "utilization" `Quick test_utilization;
        Alcotest.test_case "record validation" `Quick test_record_validation;
        Alcotest.test_case "render" `Quick test_render;
        Alcotest.test_case "engine integration" `Quick test_engine_integration;
      ] );
  ]
