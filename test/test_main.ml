(* Entry point aggregating every suite; `dune runtest` runs it. *)

let () =
  Alcotest.run "wool"
    (Test_rng.suite @ Test_stats.suite @ Test_heap.suite @ Test_table.suite
   @ Test_plot.suite @ Test_clock.suite @ Test_layout.suite
   @ Test_task_state.suite
   @ Test_direct_stack.suite @ Test_chase_lev.suite @ Test_locked_deque.suite
   @ Test_pool.suite @ Test_submit.suite @ Test_lifecycle.suite @ Test_fault.suite @ Test_policy.suite @ Test_topology.suite @ Test_cactus.suite @ Test_task_tree.suite @ Test_metrics.suite @ Test_model.suite
   @ Test_sim_deque.suite @ Test_engine.suite @ Test_loop_sim.suite
   @ Test_trace.suite @ Test_real_trace.suite
   @ Test_ropes.suite
   @ Test_workloads.suite @ Test_extra_workloads.suite @ Test_cholesky.suite
   @ Test_report.suite @ Test_bench.suite @ Test_check.suite)
